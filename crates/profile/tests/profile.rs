//! End-to-end profile coverage: real telemetry streams produced through
//! the span API, exported to JSONL, and pushed through ingestion,
//! folding, tables, and merging — including the ISSUE acceptance checks
//! (flame root within 1% of summed burst spans, weighted sampled totals,
//! two-rank merges with skewed clocks) and a CLI smoke test.

use dcmesh_profile::{flame, fold, ingest, merge, table};
use dcmesh_telemetry as telemetry;
use telemetry::{export, sink, AttrValue, TelemetryLevel};

/// Produces a two-burst workload through the real span API and returns
/// its JSONL dump.
fn produce_jsonl() -> String {
    telemetry::with_level(TelemetryLevel::Full, || {
        sink::clear();
        for (burst_idx, mode) in [(0u64, "STANDARD"), (1u64, "FLOAT_TO_BF16")] {
            let _burst = telemetry::span("burst")
                .attr("burst_index", AttrValue::U64(burst_idx))
                .attr("mode", AttrValue::Str(mode))
                .enter();
            for _step in 0..3 {
                let _qd = telemetry::span("qd_step").enter();
                {
                    let mut g = telemetry::span("CGEMM")
                        .attr("m", AttrValue::U64(128))
                        .attr("n", AttrValue::U64(896))
                        .attr("k", AttrValue::U64(4096))
                        .attr("mode", AttrValue::Str(mode))
                        .enter();
                    g.end_attr("wall_s", AttrValue::F64(2e-3));
                    g.end_attr(
                        "device_s",
                        AttrValue::F64(if mode == "STANDARD" { 4e-3 } else { 1e-3 }),
                    );
                    std::hint::black_box((0..500).sum::<u64>());
                }
            }
        }
        let events = sink::drain();
        export::jsonl(&events)
    })
}

#[test]
fn flame_root_matches_summed_burst_spans_within_1pct() {
    let jsonl = produce_jsonl();
    let trace = ingest::ingest_jsonl(&jsonl);
    let burst_total: f64 = trace.spans_named("burst").map(|s| s.dur_ns() as f64).sum();
    assert!(burst_total > 0.0);

    let folded = fold::fold(
        &trace,
        &fold::FoldOptions { root: Some("burst".into()), ..Default::default() },
    );
    let tree = flame::build_tree(&folded);
    let rel = (tree.total_ns - burst_total).abs() / burst_total;
    assert!(
        rel < 0.01,
        "flame root {} vs summed bursts {} ({}% off)",
        tree.total_ns,
        burst_total,
        rel * 100.0
    );

    // The SVG really renders that root.
    let svg = flame::render_svg(&tree, "acceptance");
    assert!(svg.contains("burst") && svg.contains("qd_step") && svg.contains("CGEMM"));
}

#[test]
fn table_speedups_from_real_stream() {
    let trace = ingest::ingest_jsonl(&produce_jsonl());
    let rows = table::gemm_table(&trace);
    let bf16 = rows
        .iter()
        .find(|r| r.mode == "FLOAT_TO_BF16")
        .expect("bf16 rows present");
    assert_eq!(bf16.calls, 3.0);
    // device_s 4e-3 baseline vs 1e-3: exactly 4x on modelled device time.
    assert!((bf16.speedup_vs_fp32.unwrap() - 4.0).abs() < 1e-9, "{bf16:?}");
    let phases = table::phase_table(&trace);
    assert!(phases.iter().all(|p| p.phase != "burst"), "bursts are not phases");
}

#[test]
fn sampled_stream_weights_sum_to_total_calls() {
    let jsonl = telemetry::with_level(TelemetryLevel::Events, || {
        sink::clear();
        let saved = telemetry::sample_interval();
        telemetry::set_sample_interval(8);
        telemetry::span::reset_sample_counter();
        for _ in 0..64 {
            let _g = telemetry::sampled_span("CGEMM")
                .attr("m", AttrValue::U64(16))
                .attr("n", AttrValue::U64(16))
                .attr("k", AttrValue::U64(16))
                .attr("mode", AttrValue::Str("TF32"))
                .enter();
        }
        telemetry::set_sample_interval(saved);
        export::jsonl(&sink::drain())
    });
    let trace = ingest::ingest_jsonl(&jsonl);
    assert_eq!(trace.spans.len(), 8, "64 calls at 1-in-8");
    let weighted: f64 = trace.spans.iter().map(|s| s.weight).sum();
    assert_eq!(weighted, 64.0, "weights reconstruct the call population");
    let rows = table::gemm_table(&trace);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].calls, 64.0);
}

#[test]
fn two_rank_merge_aligns_skewed_clocks() {
    // Two synthetic rank dumps whose epochs differ by 2ms; both record a
    // burst starting at local ts 1µs.
    let mk = |rank: u64, epoch: u64| {
        format!(
            "{{\"seq\":0,\"ts_ns\":0,\"kind\":\"i\",\"name\":\"telemetry_meta\",\
             \"track\":\"host\",\"tid\":0,\"args\":{{\"run_epoch\":{epoch},\"rank\":{rank},\
             \"sample_n\":1}}}}\n\
             {{\"seq\":1,\"ts_ns\":1000,\"kind\":\"B\",\"name\":\"burst\",\"track\":\"host\",\
             \"tid\":0,\"args\":{{}}}}\n\
             {{\"seq\":2,\"ts_ns\":51000,\"kind\":\"E\",\"name\":\"burst\",\"track\":\"host\",\
             \"tid\":0,\"args\":{{}}}}"
        )
    };
    let r0 = mk(0, 10_000_000);
    let r1 = mk(1, 12_000_000);
    let merged = merge::merge_jsonl(&[&r0, &r1]);
    let doc = telemetry::json::parse(&merged).expect("valid Chrome trace JSON");
    let rows = doc.get("traceEvents").unwrap().as_array().unwrap();

    // Two host pids, each with a labelled process_name metadata row.
    for rank in [0u64, 1] {
        let pid = merge::host_pid(rank) as f64;
        assert!(
            rows.iter().any(|r| r.get("pid").unwrap().as_f64() == Some(pid)
                && r.get("ph").unwrap().as_str() == Some("M")),
            "missing process_name for rank {rank}"
        );
        let b = rows
            .iter()
            .find(|r| {
                r.get("pid").unwrap().as_f64() == Some(pid)
                    && r.get("ph").unwrap().as_str() == Some("B")
            })
            .unwrap();
        let ts = b.get("ts").unwrap().as_f64().unwrap();
        // Rank 0: 1µs. Rank 1: 1µs local + 2000µs epoch skew.
        let expect = 1.0 + rank as f64 * 2000.0;
        assert_eq!(ts, expect, "rank {rank} begin at {ts}");
    }
}

#[test]
fn truncated_real_stream_still_folds() {
    let jsonl = produce_jsonl();
    // Cut the dump mid-way through: drop the last 40% of lines plus tear
    // the final kept line in half.
    let lines: Vec<&str> = jsonl.lines().collect();
    let keep = lines.len() * 6 / 10;
    let mut torn = lines[..keep].join("\n");
    torn.push('\n');
    torn.push_str(&lines[keep][..lines[keep].len() / 2]);

    let trace = ingest::ingest_jsonl(&torn);
    assert!(trace.skipped_lines >= 1, "torn line counted");
    assert!(trace.truncated_spans > 0, "open spans closed at the tail");
    assert!(!trace.warnings.is_empty());
    let folded = fold::fold(&trace, &fold::FoldOptions::default());
    assert!(folded.total_ns() > 0.0, "partial trace still yields a flamegraph");
}

#[test]
fn cli_flame_table_and_merge_smoke() {
    let dir = std::env::temp_dir().join(format!("dcmesh_profile_cli_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let events = dir.join("events.jsonl");
    std::fs::write(&events, produce_jsonl()).unwrap();

    let bin = env!("CARGO_BIN_EXE_profile");
    let svg = dir.join("flame.svg");
    let out = std::process::Command::new(bin)
        .args([
            "flame",
            events.to_str().unwrap(),
            "--root",
            "burst",
            "--svg",
            svg.to_str().unwrap(),
        ])
        .output()
        .expect("run profile flame");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let svg_text = std::fs::read_to_string(&svg).unwrap();
    assert!(svg_text.starts_with("<svg") && svg_text.contains("CGEMM"));

    let json = dir.join("table.json");
    let out = std::process::Command::new(bin)
        .args(["table", events.to_str().unwrap(), "--json", json.to_str().unwrap()])
        .output()
        .expect("run profile table");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CGEMM") && stdout.contains("speedup"), "{stdout}");
    assert!(std::fs::read_to_string(&json).unwrap().contains("\"routine\":\"CGEMM\""));

    let merged = dir.join("merged.json");
    let out = std::process::Command::new(bin)
        .args([
            "merge",
            events.to_str().unwrap(),
            events.to_str().unwrap(),
            "--out",
            merged.to_str().unwrap(),
        ])
        .output()
        .expect("run profile merge");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = telemetry::json::parse(&std::fs::read_to_string(&merged).unwrap()).unwrap();
    assert!(doc.get("traceEvents").unwrap().as_array().unwrap().len() > 4);

    std::fs::remove_dir_all(&dir).ok();
}

//! The offline precision advisor: archived accuracy evidence joined
//! against the xe-gpu roofline model into a per-callsite mode plan.
//!
//! For every (callsite, shape-class) key in the archive the advisor
//! splits the observed modes into **failed** (any escalation, rollback,
//! ABFT violation, health violation, or non-finite output attributed to
//! the key) and **clean**, derives the *minimum safe rank* on the
//! supervisor's escalation ladder — one rung above the strongest mode
//! that ever failed — and then prices every ladder mode at or above
//! that rank with [`XeStackModel::mode_predictions`], recommending the
//! cheapest. That is exactly the decision the run supervisor reaches
//! *reactively* (fail → rollback → escalate); the advisor reaches it
//! offline from history, so the next run can start there and skip the
//! failures. The emitted `advice.json` (schema v1) is the artifact the
//! ROADMAP's online mode autotuner will consume.
//!
//! Accuracy headroom is reported per key as
//! `log10(budget / residual_max)` over the ABFT defect/bound histogram
//! of the recommended mode (budget 1.0 = the ABFT bound itself): how
//! many decades the observed worst residual sits below the acceptance
//! threshold. Negative headroom means the mode has already violated
//! the bound — such a mode is also marked failed.

use crate::archive::RunRecord;
use dcmesh_telemetry::json;
use dcmesh_telemetry::ledger::Row;
use mkl_lite::device::Domain;
use mkl_lite::ComputeMode;
use std::collections::BTreeMap;
use xe_gpu::{XeStackModel, MAX_1550_STACK};

/// Schema version of `advice.json`.
pub const ADVICE_SCHEMA_VERSION: u64 = 1;

/// Residual-ratio acceptance budget: ABFT ratios are defect/bound, so
/// 1.0 is the bound itself.
pub const RESIDUAL_BUDGET: f64 = 1.0;

/// Evidence about one mode observed at a (callsite, shape) key.
#[derive(Clone, Debug, PartialEq)]
pub struct ModeEvidence {
    /// The mode's ledger label (`"FLOAT_TO_BF16"`, `"STANDARD"`, …).
    pub mode: String,
    /// BLAS calls recorded in the mode.
    pub calls: u64,
    /// Whether the mode ever failed at this key (escalation, rollback,
    /// ABFT/health violation, or non-finite output attributed to it).
    pub failed: bool,
    /// Largest finite residual ratio observed (0 when none recorded).
    pub residual_max: f64,
    /// ABFT checks backing the residual evidence.
    pub abft_checks: u64,
}

/// The advisor's plan for one (callsite, shape-class) key.
#[derive(Clone, Debug)]
pub struct CallsiteAdvice {
    /// Callsite ID.
    pub callsite: String,
    /// Shape class (`"MxNxK"`).
    pub shape: String,
    /// Everything the archive observed per mode, ladder order.
    pub observed: Vec<ModeEvidence>,
    /// Weakest ladder mode the failure evidence allows.
    pub min_safe_mode: ComputeMode,
    /// Recommended mode: cheapest predicted among rank ≥ min safe.
    pub recommended_mode: ComputeMode,
    /// Modelled seconds per call in the recommended mode.
    pub predicted_seconds: f64,
    /// Modelled speedup of the recommendation over FP32.
    pub predicted_speedup_vs_fp32: f64,
    /// `log10(budget / residual_max)` for the recommended mode's
    /// observed residuals (`None` without residual evidence).
    pub headroom_decades: Option<f64>,
}

/// A full advisory plan plus its provenance.
#[derive(Clone, Debug)]
pub struct Advice {
    /// Runs the evidence was drawn from.
    pub runs: u64,
    /// Per-key plans, sorted by (callsite, shape).
    pub plan: Vec<CallsiteAdvice>,
}

/// Maps a callsite's routine suffix to its BLAS domain (`md/cgemm` →
/// complex32). Unknown routines price as Real32 — the conservative
/// single-plane case.
fn domain_of_callsite(callsite: &str) -> Domain {
    let routine = callsite.rsplit('/').next().unwrap_or(callsite).to_ascii_lowercase();
    match routine.chars().next() {
        Some('c') => Domain::Complex32,
        Some('z') => Domain::Complex64,
        Some('d') => Domain::Real64,
        _ => Domain::Real32,
    }
}

/// Parses a `"MxNxK"` shape class back to dims.
fn parse_shape(shape: &str) -> Option<(usize, usize, usize)> {
    let mut it = shape.split('x').map(|d| d.parse::<usize>().ok());
    Some((it.next()??, it.next()??, it.next()??))
}

fn failed(r: &Row) -> bool {
    let s = &r.stats;
    s.escalations > 0
        || s.rollbacks > 0
        || s.abft_violations > 0
        || s.health_violations > 0
        || s.nonfinite_outputs > 0
        || (s.residuals.count > 0 && s.residuals.max > RESIDUAL_BUDGET)
}

/// Builds the advisory plan from archived runs. Only GEMM-shaped keys
/// (a parseable `MxNxK` shape class) are planned — supervisor rows and
/// other shapeless entries carry attribution evidence but are not
/// themselves mode choices.
pub fn advise(records: &[RunRecord]) -> Advice {
    // Fold evidence across runs per (callsite, shape, mode).
    let mut evidence: BTreeMap<(String, String), BTreeMap<String, ModeEvidence>> = BTreeMap::new();
    for rec in records {
        for row in &rec.entries {
            if parse_shape(&row.shape).is_none() {
                continue;
            }
            let key = (row.callsite.clone(), row.shape.clone());
            let e = evidence
                .entry(key)
                .or_default()
                .entry(row.mode.clone())
                .or_insert_with(|| ModeEvidence {
                    mode: row.mode.clone(),
                    calls: 0,
                    failed: false,
                    residual_max: 0.0,
                    abft_checks: 0,
                });
            e.calls += row.stats.calls;
            e.failed |= failed(row);
            e.abft_checks += row.stats.abft_checks;
            if row.stats.residuals.max > e.residual_max {
                e.residual_max = row.stats.residuals.max;
            }
        }
    }

    let model = XeStackModel::new(MAX_1550_STACK);
    let mut plan = Vec::new();
    for ((callsite, shape), modes) in evidence {
        let (m, n, k) = parse_shape(&shape).expect("filtered above");
        // Ladder-ordered evidence; unparseable mode labels are kept in
        // the evidence list but cannot constrain the ladder choice.
        let mut observed: Vec<(Option<ComputeMode>, ModeEvidence)> = modes
            .into_values()
            .map(|e| (ComputeMode::from_env_value(&e.mode).ok(), e))
            .collect();
        observed.sort_by_key(|(mode, _)| mode.map(|m| m.escalation_rank()).unwrap_or(usize::MAX));

        // One rung above the strongest mode that ever failed. The
        // supervisor would have settled exactly there after walking the
        // ladder reactively.
        let min_rank = observed
            .iter()
            .filter(|(mode, e)| e.failed && mode.is_some())
            .map(|(mode, _)| mode.expect("filtered").escalation_rank() + 1)
            .max()
            .unwrap_or(0);
        let min_safe_mode = *ComputeMode::ESCALATION_LADDER
            .iter()
            .find(|m| m.escalation_rank() >= min_rank)
            .unwrap_or(&ComputeMode::Standard);

        let preds = model.mode_predictions(domain_of_callsite(&callsite), m, n, k);
        let best = preds
            .iter()
            .filter(|p| p.mode.escalation_rank() >= min_rank)
            .min_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("finite model times"))
            .copied()
            .unwrap_or_else(|| *preds.last().expect("ladder nonempty"));

        let headroom = observed
            .iter()
            .find(|(mode, e)| *mode == Some(best.mode) && e.residual_max > 0.0)
            .map(|(_, e)| (RESIDUAL_BUDGET / e.residual_max).log10());

        plan.push(CallsiteAdvice {
            callsite,
            shape,
            observed: observed.into_iter().map(|(_, e)| e).collect(),
            min_safe_mode,
            recommended_mode: best.mode,
            predicted_seconds: best.seconds,
            predicted_speedup_vs_fp32: best.speedup_vs_fp32,
            headroom_decades: headroom,
        });
    }
    Advice { runs: records.len() as u64, plan }
}

fn mode_label(mode: ComputeMode) -> &'static str {
    mode.env_value().unwrap_or("STANDARD")
}

/// Serialises a plan as the `advice.json` document (schema v1).
pub fn advice_json(a: &Advice) -> String {
    let mut out = format!(
        "{{\n  \"schema\": {ADVICE_SCHEMA_VERSION},\n  \"runs\": {},\n  \"plan\": [",
        a.runs
    );
    for (i, p) in a.plan.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let headroom = match p.headroom_decades {
            Some(h) => json::number(h),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\n    {{\"callsite\":{},\"shape\":{},\"min_safe_mode\":{},\
             \"recommended_mode\":{},\"predicted_seconds\":{},\
             \"predicted_speedup_vs_fp32\":{},\"headroom_decades\":{headroom},\
             \"observed\":[",
            json::escape_string(&p.callsite),
            json::escape_string(&p.shape),
            json::escape_string(mode_label(p.min_safe_mode)),
            json::escape_string(mode_label(p.recommended_mode)),
            json::number(p.predicted_seconds),
            json::number(p.predicted_speedup_vs_fp32),
        ));
        for (j, e) in p.observed.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"mode\":{},\"calls\":{},\"failed\":{},\"residual_max\":{},\"abft_checks\":{}}}",
                json::escape_string(&e.mode),
                e.calls,
                e.failed,
                json::number(e.residual_max),
                e.abft_checks
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders the plan as a fixed-width terminal table.
pub fn render_advice(a: &Advice) -> String {
    let mut out = format!("dcmesh precision advisor — evidence from {} run(s)\n", a.runs);
    out.push_str(&format!(
        "{:<34} {:>20} {:<16} {:<16} {:>12} {:>8} {:>9}\n",
        "CALLSITE", "SHAPE", "MIN_SAFE", "RECOMMEND", "PRED_S", "SPEEDUP", "HEADROOM"
    ));
    for p in &a.plan {
        let headroom = match p.headroom_decades {
            Some(h) => format!("{h:.1}"),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "{:<34} {:>20} {:<16} {:<16} {:>12.3e} {:>8.2} {:>9}\n",
            p.callsite,
            p.shape,
            mode_label(p.min_safe_mode),
            mode_label(p.recommended_mode),
            p.predicted_seconds,
            p.predicted_speedup_vs_fp32,
            headroom
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_telemetry::ledger::{ResidualHist, Stats};

    fn record(entries: Vec<Row>) -> RunRecord {
        RunRecord {
            run_id: "r".to_string(),
            deck_hash: "0x0".to_string(),
            ranks: 1,
            domains: 0,
            mode_policy: "FLOAT_TO_BF16".to_string(),
            telemetry_level: "full".to_string(),
            sample_period: 1,
            elapsed_ms: 0,
            restarts: 0,
            heartbeat_misses: 0,
            escalations: 0,
            sdc_recoveries: 0,
            source: "-".to_string(),
            entries,
        }
    }

    fn row(cs: &str, mode: &str, esc: u64, nonfin: u64, residual: Option<f64>) -> Row {
        let mut h = ResidualHist::default();
        if let Some(r) = residual {
            h.observe(r);
        }
        Row {
            callsite: cs.to_string(),
            shape: "128x1024x4096".to_string(),
            mode: mode.to_string(),
            stats: Stats {
                calls: 100,
                wall_s: 1.0,
                escalations: esc,
                nonfinite_outputs: nonfin,
                abft_checks: if residual.is_some() { 10 } else { 0 },
                residuals: h,
                ..Stats::default()
            },
        }
    }

    #[test]
    fn failed_bf16_recommends_at_least_the_settled_rung() {
        // BF16 failed (escalated away, non-finite outputs); BF16x2 ran
        // clean. The supervisor settled at x2, so the advisor must not
        // recommend anything weaker.
        let rec = record(vec![
            row("md/cgemm", "FLOAT_TO_BF16", 1, 2, None),
            row("md/cgemm", "FLOAT_TO_BF16X2", 0, 0, Some(1e-6)),
        ]);
        let a = advise(&[rec]);
        assert_eq!(a.plan.len(), 1);
        let p = &a.plan[0];
        assert_eq!(p.min_safe_mode, ComputeMode::FloatToBf16x2);
        assert!(
            p.recommended_mode.escalation_rank() >= ComputeMode::FloatToBf16x2.escalation_rank(),
            "recommended {:?} weaker than the settled rung",
            p.recommended_mode
        );
        // The model prices TF32 below BF16x2 at this DCMESH shape, and
        // TF32 also ranks above x2 on the ladder — faster AND stronger,
        // so the advisor prefers it over merely settling at x2.
        assert_eq!(p.recommended_mode, ComputeMode::FloatToTf32);
        assert!(p.predicted_speedup_vs_fp32 > 1.0);
        // Headroom comes from the recommended mode's own residual
        // evidence; TF32 never ran, so there is none yet.
        assert!(p.headroom_decades.is_none());
    }

    #[test]
    fn clean_history_recommends_the_cheapest_mode() {
        let rec = record(vec![row("md/cgemm", "FLOAT_TO_BF16", 0, 0, Some(1e-8))]);
        let a = advise(&[rec]);
        let p = &a.plan[0];
        assert_eq!(p.min_safe_mode, ComputeMode::FloatToBf16);
        // No failures anywhere: the cheapest predicted ladder mode wins,
        // and at the DCMESH shape that is BF16 itself.
        assert_eq!(p.recommended_mode, ComputeMode::FloatToBf16);
        // Recommended mode has residual evidence: 8 decades of headroom.
        let h = p.headroom_decades.expect("bf16 residual evidence");
        assert!((h - 8.0).abs() < 0.5, "headroom {h} decades");
    }

    #[test]
    fn residual_over_budget_counts_as_failure() {
        let rec = record(vec![row("md/cgemm", "FLOAT_TO_BF16", 0, 0, Some(2.0))]);
        let a = advise(&[rec]);
        assert!(a.plan[0].observed[0].failed);
        assert!(a.plan[0].min_safe_mode.escalation_rank() >= 1);
    }

    #[test]
    fn shapeless_rows_are_not_planned() {
        let mut r = row("supervisor/burst", "FLOAT_TO_BF16", 1, 0, None);
        r.shape = "-".to_string();
        let a = advise(&[record(vec![r])]);
        assert!(a.plan.is_empty());
    }

    #[test]
    fn advice_json_renders_and_is_valid() {
        let rec = record(vec![
            row("md/cgemm", "FLOAT_TO_BF16", 1, 1, None),
            row("md/cgemm", "FLOAT_TO_BF16X2", 0, 0, Some(1e-6)),
        ]);
        let a = advise(&[rec]);
        let text = advice_json(&a);
        let doc = json::parse(&text).expect("advice.json parses");
        assert_eq!(doc.get("schema").unwrap().as_f64(), Some(1.0));
        let plan = doc.get("plan").unwrap().as_array().unwrap();
        assert_eq!(plan.len(), 1);
        let p = &plan[0];
        assert_eq!(p.get("recommended_mode").unwrap().as_str(), Some("FLOAT_TO_TF32"));
        assert_eq!(p.get("min_safe_mode").unwrap().as_str(), Some("FLOAT_TO_BF16X2"));
        let observed = p.get("observed").unwrap().as_array().unwrap();
        assert_eq!(observed.len(), 2);
        let table = render_advice(&a);
        assert!(table.contains("md/cgemm"), "{table}");
    }

    #[test]
    fn domain_inference_from_routine_name() {
        assert_eq!(domain_of_callsite("md/cgemm"), Domain::Complex32);
        assert_eq!(domain_of_callsite("scf/zgemm"), Domain::Complex64);
        assert_eq!(domain_of_callsite("x/dgemm"), Domain::Real64);
        assert_eq!(domain_of_callsite("x/sgemm"), Domain::Real32);
    }
}

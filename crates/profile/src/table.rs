//! Per-phase / per-mode attribution tables from a span trace.
//!
//! Reproduces the shape of the paper's Tables VI/VII from a recorded
//! `events.jsonl` instead of a live run: every BLAS call span (identified
//! by its `m`/`n`/`k`/`mode` attributes) is grouped by
//! (routine, mode, shape) with weighted call counts, mean host wall time,
//! mean modelled device time, and the speedup against the FP32
//! (`STANDARD`) baseline of the same routine and shape. A second table
//! attributes phase-level wall time (`qd_propagate`, `eigensolve`, ...)
//! to the precision mode of the enclosing `burst` — the Figure 3a view.

use crate::ingest::{Span, Trace};
use dcmesh_telemetry::json;
use std::collections::BTreeMap;

/// The `mode` attribute value of the FP32 baseline.
pub const BASELINE_MODE: &str = "STANDARD";

/// One (routine, mode, shape) row of the GEMM attribution table.
#[derive(Clone, Debug)]
pub struct CallRow {
    /// BLAS routine name.
    pub routine: String,
    /// Compute-mode attribute value.
    pub mode: String,
    /// Rows of C.
    pub m: u64,
    /// Columns of C.
    pub n: u64,
    /// Inner dimension.
    pub k: u64,
    /// Weighted call count (sampled spans count `sample_weight` each).
    pub calls: f64,
    /// Mean host wall seconds per call.
    pub mean_wall_s: f64,
    /// Mean modelled device seconds per call, when the producer had a
    /// device model installed.
    pub mean_device_s: Option<f64>,
    /// Baseline mean device (or wall) seconds divided by this row's —
    /// >1 means the mode is faster than FP32. `None` without a baseline.
    pub speedup_vs_fp32: Option<f64>,
}

impl CallRow {
    /// The per-call timing to attribute: modelled device time when
    /// available, host wall time otherwise (mirrors
    /// `CallRecord::effective_seconds`).
    pub fn effective_s(&self) -> f64 {
        self.mean_device_s.unwrap_or(self.mean_wall_s)
    }
}

/// One (phase, mode) row of the phase attribution table.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Phase span name.
    pub phase: String,
    /// Mode of the enclosing `burst` (or `-` outside any burst).
    pub mode: String,
    /// Weighted inclusive nanoseconds.
    pub total_ns: f64,
    /// Share of the summed phase time.
    pub share: f64,
}

/// True when a span looks like a BLAS call (carries the shape + mode
/// attributes `mkl_lite::verbose::logged` stamps).
fn is_blas_call(span: &Span) -> bool {
    span.attr_f64("m").is_some()
        && span.attr_f64("n").is_some()
        && span.attr_f64("k").is_some()
        && span.attr_str("mode").is_some()
}

/// Incremental table building: feed spans one at a time (streaming
/// ingestion) and materialise the GEMM and phase tables at the end.
/// [`gemm_table`] / [`phase_table`] are batch wrappers over this, so
/// both paths produce identical rows. Memory is bounded by the number
/// of distinct (routine, shape, mode) and (phase, mode) groups, never
/// by the stream length.
#[derive(Clone, Debug, Default)]
pub struct TableAccum {
    gemm_groups: BTreeMap<(String, u64, u64, u64, String), GemmAcc>,
    phase_groups: BTreeMap<(String, String), f64>,
}

#[derive(Clone, Debug, Default)]
struct GemmAcc {
    calls: f64,
    wall_s: f64,
    device_s: f64,
    device_samples: f64,
}

impl TableAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        TableAccum::default()
    }

    /// Folds one span into both tables.
    pub fn add_span(&mut self, span: &Span) {
        if is_blas_call(span) {
            let key = (
                span.name.clone(),
                span.attr_f64("m").unwrap_or(0.0) as u64,
                span.attr_f64("n").unwrap_or(0.0) as u64,
                span.attr_f64("k").unwrap_or(0.0) as u64,
                span.attr_str("mode").unwrap_or("-").to_string(),
            );
            let wall = span.attr_f64("wall_s").unwrap_or(span.dur_ns() as f64 / 1e9);
            let acc = self.gemm_groups.entry(key).or_default();
            acc.calls += span.weight;
            acc.wall_s += wall * span.weight;
            if let Some(dev) = span.attr_f64("device_s") {
                acc.device_s += dev * span.weight;
                acc.device_samples += span.weight;
            }
        }
        if PHASES.contains(&span.name.as_str()) {
            let mode = span.burst_mode.as_deref().unwrap_or("-");
            *self.phase_groups.entry((span.name.clone(), mode.to_string())).or_insert(0.0) +=
                span.dur_ns() as f64 * span.weight;
        }
    }

    /// The per-(routine, mode, shape) call table, baseline speedups
    /// included. Rows are sorted by routine, then shape, then mode, so
    /// the FP32 baseline and its low-precision variants sit adjacent.
    pub fn gemm_rows(&self) -> Vec<CallRow> {
        let mut rows: Vec<CallRow> = self
            .gemm_groups
            .iter()
            .map(|((routine, m, n, k, mode), acc)| CallRow {
                routine: routine.clone(),
                mode: mode.clone(),
                m: *m,
                n: *n,
                k: *k,
                calls: acc.calls,
                mean_wall_s: acc.wall_s / acc.calls.max(1e-12),
                mean_device_s: (acc.device_samples > 0.0)
                    .then(|| acc.device_s / acc.device_samples),
                speedup_vs_fp32: None,
            })
            .collect();

        // Baseline per (routine, shape): the STANDARD row's effective time.
        let baselines: BTreeMap<(String, u64, u64, u64), f64> = rows
            .iter()
            .filter(|r| r.mode == BASELINE_MODE)
            .map(|r| ((r.routine.clone(), r.m, r.n, r.k), r.effective_s()))
            .collect();
        for row in &mut rows {
            if let Some(base) = baselines.get(&(row.routine.clone(), row.m, row.n, row.k)) {
                let own = row.effective_s();
                if own > 0.0 {
                    row.speedup_vs_fp32 = Some(base / own);
                }
            }
        }
        rows.sort_by(|a, b| {
            (&a.routine, a.m, a.n, a.k, &a.mode).cmp(&(&b.routine, b.m, b.n, b.k, &b.mode))
        });
        rows
    }

    /// The per-(phase, mode) wall-time attribution table, sorted by
    /// descending total.
    pub fn phase_rows(&self) -> Vec<PhaseRow> {
        let grand: f64 = self.phase_groups.values().sum();
        let mut rows: Vec<PhaseRow> = self
            .phase_groups
            .iter()
            .map(|((phase, mode), total_ns)| PhaseRow {
                phase: phase.clone(),
                mode: mode.clone(),
                total_ns: *total_ns,
                share: total_ns / grand.max(1.0),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_ns.partial_cmp(&a.total_ns).unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }
}

/// Builds the per-(routine, mode, shape) call table from a full trace.
pub fn gemm_table(trace: &Trace) -> Vec<CallRow> {
    let mut acc = TableAccum::new();
    for span in &trace.spans {
        acc.add_span(span);
    }
    acc.gemm_rows()
}

/// Phase span names attributed in the Figure 3a-style table.
pub const PHASES: &[&str] = &[
    "qd_propagate",
    "qd_nonlocal",
    "qd_energy",
    "qd_remap_occ",
    "qd_shadow",
    "qd_field",
    "eigensolve",
    "scf_refresh",
    "initial_scf",
    "md_step",
];

/// Builds the per-(phase, mode) wall-time attribution table from a full
/// trace. Attribution uses the span's stack-resolved `burst_mode`, so
/// the streaming path needs no retained burst spans.
pub fn phase_table(trace: &Trace) -> Vec<PhaseRow> {
    let mut acc = TableAccum::new();
    for span in &trace.spans {
        acc.add_span(span);
    }
    acc.phase_rows()
}

/// Renders the GEMM table as aligned text (the Tables VI/VII layout).
pub fn render_gemm_table(rows: &[CallRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<16} {:>6} {:>6} {:>6} {:>10} {:>12} {:>12} {:>9}\n",
        "routine", "mode", "m", "n", "k", "calls", "wall ms", "device ms", "speedup"
    ));
    for r in rows {
        let dev = r
            .mean_device_s
            .map(|d| format!("{:.4}", d * 1e3))
            .unwrap_or_else(|| "-".to_string());
        let spd = r
            .speedup_vs_fp32
            .map(|s| format!("{s:.2}x"))
            .unwrap_or_else(|| "-".to_string());
        out.push_str(&format!(
            "{:<8} {:<16} {:>6} {:>6} {:>6} {:>10.1} {:>12.4} {:>12} {:>9}\n",
            r.routine,
            r.mode,
            r.m,
            r.n,
            r.k,
            r.calls,
            r.mean_wall_s * 1e3,
            dev,
            spd
        ));
    }
    out
}

/// Renders the phase table as aligned text (the Figure 3a layout).
pub fn render_phase_table(rows: &[PhaseRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14} {:<16} {:>12} {:>8}\n", "phase", "mode", "total ms", "share"));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:<16} {:>12.3} {:>7.1}%\n",
            r.phase,
            r.mode,
            r.total_ns / 1e6,
            r.share * 100.0
        ));
    }
    out
}

/// Serialises the GEMM table as a JSON array for machine comparison
/// (`gemm_hostperf --from-trace` consumes this).
pub fn gemm_table_json(rows: &[CallRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  {{\"routine\":{},\"mode\":{},\"m\":{},\"n\":{},\"k\":{},\"calls\":{},\
             \"mean_wall_s\":{},\"mean_device_s\":{},\"speedup_vs_fp32\":{}}}",
            json::escape_string(&r.routine),
            json::escape_string(&r.mode),
            r.m,
            r.n,
            r.k,
            json::number(r.calls),
            json::number(r.mean_wall_s),
            r.mean_device_s.map(json::number).unwrap_or_else(|| "null".to_string()),
            r.speedup_vs_fp32.map(json::number).unwrap_or_else(|| "null".to_string()),
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_jsonl;

    fn call(ts: u64, routine: &str, mode: &str, dev_ms: f64, weight: f64) -> String {
        let w = if weight > 1.0 { format!(",\"sample_weight\":{weight}") } else { String::new() };
        [
            format!(
                "{{\"seq\":0,\"ts_ns\":{ts},\"kind\":\"B\",\"name\":\"{routine}\",\
                 \"track\":\"host\",\"tid\":0,\"args\":{{\"m\":128,\"n\":896,\"k\":4096,\
                 \"mode\":\"{mode}\"{w}}}}}"
            ),
            format!(
                "{{\"seq\":1,\"ts_ns\":{},\"kind\":\"E\",\"name\":\"{routine}\",\
                 \"track\":\"host\",\"tid\":0,\"args\":{{\"wall_s\":0.002,\"device_s\":{}}}}}",
                ts + 1000,
                dev_ms / 1e3
            ),
        ]
        .join("\n")
    }

    #[test]
    fn gemm_table_groups_and_computes_speedup() {
        let text = [
            call(0, "CGEMM", "STANDARD", 4.0, 1.0),
            call(2000, "CGEMM", "STANDARD", 4.0, 1.0),
            call(4000, "CGEMM", "FLOAT_TO_BF16", 1.0, 1.0),
        ]
        .join("\n");
        let rows = gemm_table(&ingest_jsonl(&text));
        assert_eq!(rows.len(), 2);
        let std = rows.iter().find(|r| r.mode == "STANDARD").unwrap();
        assert_eq!(std.calls, 2.0);
        assert!((std.mean_device_s.unwrap() - 4e-3).abs() < 1e-12);
        assert!((std.speedup_vs_fp32.unwrap() - 1.0).abs() < 1e-9);
        let bf16 = rows.iter().find(|r| r.mode == "FLOAT_TO_BF16").unwrap();
        assert!((bf16.speedup_vs_fp32.unwrap() - 4.0).abs() < 1e-9, "{bf16:?}");
    }

    #[test]
    fn weighted_calls_count_their_sample_interval() {
        let rows = gemm_table(&ingest_jsonl(&call(0, "SGEMM", "TF32", 1.0, 16.0)));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].calls, 16.0);
        assert_eq!(rows[0].speedup_vs_fp32, None, "no baseline row");
    }

    #[test]
    fn phase_table_attributes_burst_mode() {
        let text = [
            "{\"seq\":0,\"ts_ns\":0,\"kind\":\"B\",\"name\":\"burst\",\"track\":\"host\",\
             \"tid\":0,\"args\":{\"mode\":\"BF16X2\"}}"
                .to_string(),
            "{\"seq\":1,\"ts_ns\":10,\"kind\":\"B\",\"name\":\"qd_propagate\",\
             \"track\":\"host\",\"tid\":0,\"args\":{}}"
                .to_string(),
            "{\"seq\":2,\"ts_ns\":60,\"kind\":\"E\",\"name\":\"qd_propagate\",\
             \"track\":\"host\",\"tid\":0,\"args\":{}}"
                .to_string(),
            "{\"seq\":3,\"ts_ns\":100,\"kind\":\"E\",\"name\":\"burst\",\"track\":\"host\",\
             \"tid\":0,\"args\":{}}"
                .to_string(),
        ]
        .join("\n");
        let rows = phase_table(&ingest_jsonl(&text));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].phase, "qd_propagate");
        assert_eq!(rows[0].mode, "BF16X2");
        assert_eq!(rows[0].total_ns, 50.0);
        assert!((rows[0].share - 1.0).abs() < 1e-12);
    }

    #[test]
    fn renderers_and_json_are_parseable() {
        let text = call(0, "ZGEMM", "STANDARD", 2.0, 1.0);
        let trace = ingest_jsonl(&text);
        let rows = gemm_table(&trace);
        let rendered = render_gemm_table(&rows);
        assert!(rendered.contains("ZGEMM"));
        assert!(rendered.contains("1.00x"));
        let js = gemm_table_json(&rows);
        let doc = json::parse(&js).expect("table JSON parses");
        let arr = doc.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("routine").unwrap().as_str(), Some("ZGEMM"));
        assert_eq!(arr[0].get("mean_device_s").unwrap().as_f64(), Some(2e-3));
        let _ = render_phase_table(&phase_table(&trace));
    }
}

//! `profile`: trace analysis CLI over `events.jsonl` telemetry dumps.
//!
//! ```text
//! profile flame  <events.jsonl> [--root NAME] [--by-mode] [--by-shape]
//!                [--svg PATH] [--ansi] [--folded PATH] [--metrics PATH]
//! profile table  <events.jsonl> [--json PATH] [--metrics PATH]
//! profile fold   <events.jsonl> [--root NAME] [--by-mode] [--by-shape]
//! profile merge  <a.jsonl> <b.jsonl> [...] --out merged.json
//! profile diff   <base.jsonl> <test.jsonl> [--root NAME] [--by-mode]
//!                [--by-shape] [--svg PATH] [--ansi]
//! ```
//!
//! `flame` writes a self-contained SVG (`--svg`) and/or an ANSI terminal
//! flamegraph (`--ansi`); with neither flag it prints collapsed stacks to
//! stdout (inferno-compatible). `table` prints the per-(routine, mode,
//! shape) GEMM attribution table and the per-phase table; `--json` also
//! writes the machine-readable GEMM rows. `merge` joins several ranks'
//! dumps into one Chrome trace with per-rank pids and epoch-aligned
//! clocks. `diff` compares two dumps as a red/blue differential
//! flamegraph (layout from the test profile, red = frame grew, blue =
//! shrank); with neither `--svg` nor `--ansi` it prints the two-count
//! `difffolded` collapsed text. All subcommands print ingestion/coverage
//! warnings to stderr; `--metrics metrics.prom` adds producer-side drop
//! counters to that check.

use dcmesh_profile::{diff, flame, fold, ingest, merge, table};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  profile flame  <events.jsonl> [--root NAME] [--by-mode] [--by-shape] \
         [--svg PATH] [--ansi] [--folded PATH] [--metrics PATH]\n  profile table  \
         <events.jsonl> [--json PATH] [--metrics PATH]\n  profile fold   <events.jsonl> \
         [--root NAME] [--by-mode] [--by-shape]\n  profile merge  <a.jsonl> <b.jsonl> [...] \
         --out merged.json\n  profile diff   <base.jsonl> <test.jsonl> [--root NAME] \
         [--by-mode] [--by-shape] [--svg PATH] [--ansi]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("profile: cannot read {path}: {e}");
        ExitCode::from(1)
    })
}

fn write(path: &str, content: &str) -> Result<(), ExitCode> {
    std::fs::write(path, content).map_err(|e| {
        eprintln!("profile: cannot write {path}: {e}");
        ExitCode::from(1)
    })
}

/// Pulls `--flag VALUE` out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Pulls a bare `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn ingest_with_warnings(
    input: &str,
    metrics_path: Option<String>,
) -> Result<ingest::Trace, ExitCode> {
    let trace = ingest::ingest_jsonl(&read(input)?);
    let prom = match metrics_path {
        Some(p) => Some(read(&p)?),
        None => None,
    };
    for w in ingest::coverage_warnings(&trace, prom.as_deref()) {
        eprintln!("profile: warning: {w}");
    }
    Ok(trace)
}

fn fold_opts(args: &mut Vec<String>) -> fold::FoldOptions {
    fold::FoldOptions {
        root: take_value(args, "--root"),
        by_mode: take_flag(args, "--by-mode"),
        by_shape: take_flag(args, "--by-shape"),
    }
}

fn cmd_flame(mut args: Vec<String>) -> Result<(), ExitCode> {
    let svg_path = take_value(&mut args, "--svg");
    let folded_path = take_value(&mut args, "--folded");
    let metrics = take_value(&mut args, "--metrics");
    let ansi = take_flag(&mut args, "--ansi");
    let opts = fold_opts(&mut args);
    let [input] = args.as_slice() else { return Err(usage()) };

    let trace = ingest_with_warnings(input, metrics)?;
    let folded = fold::fold(&trace, &opts);
    if folded.lines.is_empty() {
        eprintln!("profile: warning: no spans folded (empty trace or --root matched nothing)");
    }
    let tree = flame::build_tree(&folded);
    let title = match &opts.root {
        Some(r) => format!("{input} (root: {r})"),
        None => input.clone(),
    };
    if let Some(p) = &svg_path {
        write(p, &flame::render_svg(&tree, &title))?;
        eprintln!("profile: wrote {p} ({:.3} ms total)", tree.total_ns / 1e6);
    }
    if let Some(p) = &folded_path {
        write(p, &folded.to_collapsed())?;
    }
    if ansi {
        print!("{}", flame::render_ansi(&tree));
    } else if svg_path.is_none() && folded_path.is_none() {
        print!("{}", folded.to_collapsed());
    }
    Ok(())
}

fn cmd_table(mut args: Vec<String>) -> Result<(), ExitCode> {
    let json_path = take_value(&mut args, "--json");
    let metrics = take_value(&mut args, "--metrics");
    let [input] = args.as_slice() else { return Err(usage()) };

    let trace = ingest_with_warnings(input, metrics)?;
    let rows = table::gemm_table(&trace);
    println!("== BLAS calls by (routine, mode, shape) — speedup vs FP32 ==");
    print!("{}", table::render_gemm_table(&rows));
    let phases = table::phase_table(&trace);
    if !phases.is_empty() {
        println!("\n== Phase wall time by enclosing burst mode ==");
        print!("{}", table::render_phase_table(&phases));
    }
    if let Some(p) = &json_path {
        write(p, &table::gemm_table_json(&rows))?;
        eprintln!("profile: wrote {p} ({} rows)", rows.len());
    }
    Ok(())
}

fn cmd_fold(mut args: Vec<String>) -> Result<(), ExitCode> {
    let opts = fold_opts(&mut args);
    let [input] = args.as_slice() else { return Err(usage()) };
    let trace = ingest_with_warnings(input, None)?;
    print!("{}", fold::fold(&trace, &opts).to_collapsed());
    Ok(())
}

fn cmd_diff(mut args: Vec<String>) -> Result<(), ExitCode> {
    let svg_path = take_value(&mut args, "--svg");
    let ansi = take_flag(&mut args, "--ansi");
    let opts = fold_opts(&mut args);
    let [base_path, test_path] = args.as_slice() else { return Err(usage()) };

    let base = fold::fold(&ingest_with_warnings(base_path, None)?, &opts);
    let test = fold::fold(&ingest_with_warnings(test_path, None)?, &opts);
    if base.lines.is_empty() && test.lines.is_empty() {
        eprintln!("profile: warning: nothing to diff (empty traces or --root matched nothing)");
    }
    let tree = diff::build_diff_tree(&base, &test);
    if let Some(p) = &svg_path {
        let title = format!("{base_path} → {test_path}");
        write(p, &diff::render_diff_svg(&tree, &title))?;
        eprintln!(
            "profile: wrote {p} (base {:.3} ms → test {:.3} ms)",
            tree.base_total_ns / 1e6,
            tree.test_total_ns / 1e6
        );
    }
    if ansi {
        print!("{}", diff::render_diff_ansi(&tree));
    } else if svg_path.is_none() {
        print!("{}", diff::to_collapsed_diff(&base, &test));
    }
    Ok(())
}

fn cmd_merge(mut args: Vec<String>) -> Result<(), ExitCode> {
    let Some(out) = take_value(&mut args, "--out") else { return Err(usage()) };
    if args.is_empty() {
        return Err(usage());
    }
    let texts: Vec<String> = args.iter().map(|p| read(p)).collect::<Result<_, _>>()?;
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    write(&out, &merge::merge_jsonl(&refs))?;
    eprintln!("profile: merged {} stream(s) into {out}", refs.len());
    Ok(())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    let result = match cmd.as_str() {
        "flame" => cmd_flame(argv),
        "table" => cmd_table(argv),
        "fold" => cmd_fold(argv),
        "merge" => cmd_merge(argv),
        "diff" => cmd_diff(argv),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

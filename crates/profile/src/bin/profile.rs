//! `profile`: trace analysis CLI over `events.jsonl` telemetry dumps.
//!
//! ```text
//! profile flame  <events.jsonl> [--stream] [--root NAME] [--by-mode] [--by-shape]
//!                [--svg PATH] [--ansi] [--folded PATH] [--metrics PATH]
//! profile table  <events.jsonl> [--stream] [--json PATH] [--metrics PATH]
//! profile fold   <events.jsonl> [--stream] [--root NAME] [--by-mode] [--by-shape]
//! profile merge  <a.jsonl> <b.jsonl> [...] --out merged.json
//! profile diff   <base.jsonl> <test.jsonl> [--root NAME] [--by-mode]
//!                [--by-shape] [--svg PATH] [--ansi]
//! profile watch  <run-dir|events.jsonl> [...] [--interval-ms N] [--once]
//!                [--prom PATH]
//! profile synth  --out PATH [--min-bytes N]
//! profile synth  --ledger-dir DIR [--slow-callsite CS] [--slow-factor F]
//! profile archive <run-dir> --archive PATH [--mode-policy P]
//! profile trend  --archive PATH [--bench BENCH_gemm.json] [--svg PATH]
//! profile advise --archive PATH [--out advice.json] [--deck HASH]
//! ```
//!
//! `flame` writes a self-contained SVG (`--svg`) and/or an ANSI terminal
//! flamegraph (`--ansi`); with neither flag it prints collapsed stacks to
//! stdout (inferno-compatible). `table` prints the per-(routine, mode,
//! shape) GEMM attribution table and the per-phase table; `--json` also
//! writes the machine-readable GEMM rows. `merge` joins several ranks'
//! dumps into one Chrome trace with per-rank pids and epoch-aligned
//! clocks. `diff` compares two dumps as a red/blue differential
//! flamegraph (layout from the test profile, red = frame grew, blue =
//! shrank); with neither `--svg` nor `--ansi` it prints the two-count
//! `difffolded` collapsed text. All subcommands print ingestion/coverage
//! warnings to stderr; `--metrics metrics.prom` adds producer-side drop
//! counters to that check.
//!
//! `--stream` on `flame`/`table`/`fold` reads the input incrementally —
//! memory stays bounded by the open-span depth plus the fold/table group
//! count, never by the dump size — and produces byte-identical output to
//! the batch path. `watch` tails live streams (re-scanning run
//! directories for per-rank `events*.jsonl`) and redraws the merged
//! precision ledger every `--interval-ms` (default 1000); `--once` prints
//! a single snapshot and exits, `--prom` additionally maintains a
//! Prometheus scrape file. `synth` writes a deterministic synthetic dump
//! of at least `--min-bytes` (default 100 MiB) for exercising the
//! streaming path; with `--ledger-dir` it instead writes a deterministic
//! synthetic run directory (a `ledger.json`) for exercising the cross-run
//! machinery, optionally with a planted per-callsite slowdown.
//!
//! The cross-run trio: `archive` folds a finished run directory into the
//! append-only `runs.jsonl` store (idempotent per content-derived run
//! id); `trend` compares each key's newest archived run against the
//! median/MAD baseline of its priors and **exits 1 when any wall-time,
//! time-misfit, escalation-rate, or residual-shift regression is
//! flagged** (0 clean, 2 usage) — wire it straight into CI; `advise`
//! joins the archived accuracy evidence against the xe-gpu roofline
//! model and writes the per-callsite recommended-mode plan
//! (`advice.json`, schema v1).

use dcmesh_profile::{advise, archive, diff, flame, fold, ingest, merge, table, trend, watch};
use std::io::{BufRead, BufReader, IsTerminal, Write as _};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  profile flame  <events.jsonl> [--stream] [--root NAME] [--by-mode] \
         [--by-shape] [--svg PATH] [--ansi] [--folded PATH] [--metrics PATH]\n  profile table  \
         <events.jsonl> [--stream] [--json PATH] [--metrics PATH]\n  profile fold   \
         <events.jsonl> [--stream] [--root NAME] [--by-mode] [--by-shape]\n  profile merge  \
         <a.jsonl> <b.jsonl> [...] --out merged.json\n  profile diff   <base.jsonl> \
         <test.jsonl> [--root NAME] [--by-mode] [--by-shape] [--svg PATH] [--ansi]\n  \
         profile watch  <run-dir|events.jsonl> [...] [--interval-ms N] [--once] [--prom PATH]\n  \
         profile synth  --out PATH [--min-bytes N]\n  \
         profile synth  --ledger-dir DIR [--slow-callsite CS] [--slow-factor F]\n  \
         profile archive <run-dir> --archive PATH [--mode-policy P]\n  \
         profile trend  --archive PATH [--bench BENCH_gemm.json] [--svg PATH]\n  \
         profile advise --archive PATH [--out advice.json] [--deck HASH]"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("profile: cannot read {path}: {e}");
        ExitCode::from(1)
    })
}

fn write(path: &str, content: &str) -> Result<(), ExitCode> {
    std::fs::write(path, content).map_err(|e| {
        eprintln!("profile: cannot write {path}: {e}");
        ExitCode::from(1)
    })
}

/// Pulls `--flag VALUE` out of `args`, if present.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Pulls a bare `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn print_warnings(trace: &ingest::Trace, metrics_path: Option<String>) -> Result<(), ExitCode> {
    let prom = match metrics_path {
        Some(p) => Some(read(&p)?),
        None => None,
    };
    for w in ingest::coverage_warnings(trace, prom.as_deref()) {
        eprintln!("profile: warning: {w}");
    }
    Ok(())
}

fn ingest_with_warnings(
    input: &str,
    metrics_path: Option<String>,
) -> Result<ingest::Trace, ExitCode> {
    let trace = ingest::ingest_jsonl(&read(input)?);
    print_warnings(&trace, metrics_path)?;
    Ok(trace)
}

/// Streams `input` line by line through a [`ingest::StreamingIngester`],
/// handing every closed span to `on_span` as soon as it closes. Memory
/// is bounded by the open-span depth; the returned trace carries the
/// end-of-stream warnings and counters (its record vectors are already
/// drained). Lines are fed exactly as the batch path's `str::lines()`
/// would produce them, so both paths emit bit-identical output.
fn stream_spans(
    input: &str,
    mut on_span: impl FnMut(&ingest::Span),
) -> Result<ingest::Trace, ExitCode> {
    let file = std::fs::File::open(input).map_err(|e| {
        eprintln!("profile: cannot read {input}: {e}");
        ExitCode::from(1)
    })?;
    let mut reader = BufReader::new(file);
    let mut ing = ingest::StreamingIngester::new();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let n = reader.read_until(b'\n', &mut buf).map_err(|e| {
            eprintln!("profile: read error on {input}: {e}");
            ExitCode::from(1)
        })?;
        if n == 0 {
            break;
        }
        let mut end = buf.len();
        if buf.get(end.wrapping_sub(1)) == Some(&b'\n') {
            end -= 1;
        }
        if buf.get(end.wrapping_sub(1)) == Some(&b'\r') {
            end -= 1;
        }
        let line = String::from_utf8_lossy(&buf[..end]);
        ing.feed_line(&line);
        for span in ing.take_closed_spans() {
            on_span(&span);
        }
        ing.take_closed_instants();
        ing.take_closed_device();
    }
    let mut trace = ing.finish();
    for span in trace.spans.drain(..) {
        on_span(&span);
    }
    trace.instants.clear();
    trace.device.clear();
    Ok(trace)
}

fn fold_opts(args: &mut Vec<String>) -> fold::FoldOptions {
    fold::FoldOptions {
        root: take_value(args, "--root"),
        by_mode: take_flag(args, "--by-mode"),
        by_shape: take_flag(args, "--by-shape"),
    }
}

fn cmd_flame(mut args: Vec<String>) -> Result<(), ExitCode> {
    let svg_path = take_value(&mut args, "--svg");
    let folded_path = take_value(&mut args, "--folded");
    let metrics = take_value(&mut args, "--metrics");
    let ansi = take_flag(&mut args, "--ansi");
    let stream = take_flag(&mut args, "--stream");
    let opts = fold_opts(&mut args);
    let [input] = args.as_slice() else { return Err(usage()) };

    let folded = if stream {
        let mut acc = fold::FoldAccum::new(opts.clone());
        let trace = stream_spans(input, |s| acc.add_span(s))?;
        print_warnings(&trace, metrics)?;
        acc.finish()
    } else {
        let trace = ingest_with_warnings(input, metrics)?;
        fold::fold(&trace, &opts)
    };
    if folded.lines.is_empty() {
        eprintln!("profile: warning: no spans folded (empty trace or --root matched nothing)");
    }
    let tree = flame::build_tree(&folded);
    let title = match &opts.root {
        Some(r) => format!("{input} (root: {r})"),
        None => input.clone(),
    };
    if let Some(p) = &svg_path {
        write(p, &flame::render_svg(&tree, &title))?;
        eprintln!("profile: wrote {p} ({:.3} ms total)", tree.total_ns / 1e6);
    }
    if let Some(p) = &folded_path {
        write(p, &folded.to_collapsed())?;
    }
    if ansi {
        print!("{}", flame::render_ansi(&tree));
    } else if svg_path.is_none() && folded_path.is_none() {
        print!("{}", folded.to_collapsed());
    }
    Ok(())
}

fn cmd_table(mut args: Vec<String>) -> Result<(), ExitCode> {
    let json_path = take_value(&mut args, "--json");
    let metrics = take_value(&mut args, "--metrics");
    let stream = take_flag(&mut args, "--stream");
    let [input] = args.as_slice() else { return Err(usage()) };

    let mut acc = table::TableAccum::new();
    if stream {
        let trace = stream_spans(input, |s| acc.add_span(s))?;
        print_warnings(&trace, metrics)?;
    } else {
        let trace = ingest_with_warnings(input, metrics)?;
        for span in &trace.spans {
            acc.add_span(span);
        }
    }
    let rows = acc.gemm_rows();
    println!("== BLAS calls by (routine, mode, shape) — speedup vs FP32 ==");
    print!("{}", table::render_gemm_table(&rows));
    let phases = acc.phase_rows();
    if !phases.is_empty() {
        println!("\n== Phase wall time by enclosing burst mode ==");
        print!("{}", table::render_phase_table(&phases));
    }
    if let Some(p) = &json_path {
        write(p, &table::gemm_table_json(&rows))?;
        eprintln!("profile: wrote {p} ({} rows)", rows.len());
    }
    Ok(())
}

fn cmd_fold(mut args: Vec<String>) -> Result<(), ExitCode> {
    let stream = take_flag(&mut args, "--stream");
    let opts = fold_opts(&mut args);
    let [input] = args.as_slice() else { return Err(usage()) };
    let folded = if stream {
        let mut acc = fold::FoldAccum::new(opts.clone());
        let trace = stream_spans(input, |s| acc.add_span(s))?;
        print_warnings(&trace, None)?;
        acc.finish()
    } else {
        let trace = ingest_with_warnings(input, None)?;
        fold::fold(&trace, &opts)
    };
    print!("{}", folded.to_collapsed());
    Ok(())
}

fn cmd_diff(mut args: Vec<String>) -> Result<(), ExitCode> {
    let svg_path = take_value(&mut args, "--svg");
    let ansi = take_flag(&mut args, "--ansi");
    let opts = fold_opts(&mut args);
    let [base_path, test_path] = args.as_slice() else { return Err(usage()) };

    let base = fold::fold(&ingest_with_warnings(base_path, None)?, &opts);
    let test = fold::fold(&ingest_with_warnings(test_path, None)?, &opts);
    if base.lines.is_empty() && test.lines.is_empty() {
        eprintln!("profile: warning: nothing to diff (empty traces or --root matched nothing)");
    }
    let tree = diff::build_diff_tree(&base, &test);
    if let Some(p) = &svg_path {
        let title = format!("{base_path} → {test_path}");
        write(p, &diff::render_diff_svg(&tree, &title))?;
        eprintln!(
            "profile: wrote {p} (base {:.3} ms → test {:.3} ms)",
            tree.base_total_ns / 1e6,
            tree.test_total_ns / 1e6
        );
    }
    if ansi {
        print!("{}", diff::render_diff_ansi(&tree));
    } else if svg_path.is_none() {
        print!("{}", diff::to_collapsed_diff(&base, &test));
    }
    Ok(())
}

fn cmd_merge(mut args: Vec<String>) -> Result<(), ExitCode> {
    let Some(out) = take_value(&mut args, "--out") else { return Err(usage()) };
    if args.is_empty() {
        return Err(usage());
    }
    let texts: Vec<String> = args.iter().map(|p| read(p)).collect::<Result<_, _>>()?;
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    write(&out, &merge::merge_jsonl(&refs))?;
    eprintln!("profile: merged {} stream(s) into {out}", refs.len());
    Ok(())
}

fn cmd_watch(mut args: Vec<String>) -> Result<(), ExitCode> {
    let interval_ms: u64 = match take_value(&mut args, "--interval-ms") {
        Some(v) => v.parse().map_err(|_| usage())?,
        None => 1000,
    };
    let once = take_flag(&mut args, "--once");
    let prom_path = take_value(&mut args, "--prom");
    if args.is_empty() {
        return Err(usage());
    }
    let mut session = watch::WatchSession::new(&args);
    let tty = std::io::stdout().is_terminal();
    loop {
        session.tick();
        if let Some(p) = &prom_path {
            watch::write_atomic(std::path::Path::new(p), &session.prometheus()).map_err(|e| {
                eprintln!("profile: cannot write {p}: {e}");
                ExitCode::from(1)
            })?;
        }
        let mut out = String::new();
        if tty && !once {
            // Clear + home, so the dashboard redraws in place.
            out.push_str("\x1b[2J\x1b[H");
        }
        out.push_str(&session.render());
        print!("{out}");
        let _ = std::io::stdout().flush();
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// Deterministic synthetic event stream: repeated bursts of QD steps
/// with CGEMM leaf spans (callsite/shape/mode attributes included) plus
/// a sprinkle of instants and a few malformed lines, until the dump
/// reaches `--min-bytes`. Every run produces identical bytes — the
/// streaming-vs-batch CI gate depends on that.
fn cmd_synth(mut args: Vec<String>) -> Result<(), ExitCode> {
    if let Some(dir) = take_value(&mut args, "--ledger-dir") {
        return cmd_synth_ledger(dir, args);
    }
    let Some(out_path) = take_value(&mut args, "--out") else { return Err(usage()) };
    let min_bytes: u64 = match take_value(&mut args, "--min-bytes") {
        Some(v) => v.parse().map_err(|_| usage())?,
        None => 100 * 1024 * 1024,
    };
    if !args.is_empty() {
        return Err(usage());
    }
    let file = std::fs::File::create(&out_path).map_err(|e| {
        eprintln!("profile: cannot write {out_path}: {e}");
        ExitCode::from(1)
    })?;
    let mut w = std::io::BufWriter::new(file);
    let mut written: u64 = 0;
    let mut seq: u64 = 0;
    let mut ts: u64 = 0;
    // Fixed-seed LCG: shape and timing variety without `rand`.
    let mut lcg: u64 = 0x9e3779b97f4a7c15;
    let mut next = |m: u64| {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (lcg >> 33) % m
    };
    let emit = |w: &mut std::io::BufWriter<std::fs::File>,
                    written: &mut u64,
                    line: String|
     -> Result<(), ExitCode> {
        *written += line.len() as u64 + 1;
        writeln!(w, "{line}").map_err(|e| {
            eprintln!("profile: write error on {out_path}: {e}");
            ExitCode::from(1)
        })
    };
    let event = |seq: u64, ts: u64, kind: &str, name: &str, args: &str| {
        format!(
            "{{\"seq\":{seq},\"ts_ns\":{ts},\"kind\":\"{kind}\",\"name\":\"{name}\",\
             \"track\":\"host\",\"tid\":0,\"args\":{{{args}}}}}"
        )
    };
    emit(
        &mut w,
        &mut written,
        event(seq, ts, "i", "telemetry_meta", "\"run_epoch\":1000000,\"rank\":0,\"sample_n\":1"),
    )?;
    const MODES: [&str; 3] = ["BF16X2", "FLOAT_TO_BF16", "STANDARD"];
    const SHAPES: [(u64, u64, u64); 4] =
        [(64, 448, 2048), (128, 896, 4096), (256, 896, 4096), (64, 64, 64)];
    let mut burst = 0u64;
    while written < min_bytes {
        let mode = MODES[(burst % 3) as usize];
        seq += 1;
        emit(&mut w, &mut written, event(seq, ts, "B", "burst", &format!("\"mode\":\"{mode}\"")))?;
        for _ in 0..8 {
            seq += 1;
            ts += 1 + next(100);
            emit(&mut w, &mut written, event(seq, ts, "B", "qd_step", ""))?;
            seq += 1;
            ts += 1;
            emit(&mut w, &mut written, event(seq, ts, "B", "qd_propagate", ""))?;
            for _ in 0..4 {
                let (m, n, k) = SHAPES[next(4) as usize];
                seq += 1;
                ts += 1;
                emit(
                    &mut w,
                    &mut written,
                    event(
                        seq,
                        ts,
                        "B",
                        "CGEMM",
                        &format!(
                            "\"callsite\":\"lfd::qd_propagate/cgemm\",\"m\":{m},\"n\":{n},\
                             \"k\":{k},\"mode\":\"{mode}\""
                        ),
                    ),
                )?;
                seq += 1;
                ts += 100 + next(5000);
                emit(
                    &mut w,
                    &mut written,
                    event(seq, ts, "E", "CGEMM", &format!("\"wall_s\":{}e-6", 1 + next(50))),
                )?;
            }
            seq += 1;
            ts += 1 + next(200);
            emit(&mut w, &mut written, event(seq, ts, "E", "qd_propagate", ""))?;
            seq += 1;
            ts += 1;
            emit(&mut w, &mut written, event(seq, ts, "E", "qd_step", ""))?;
        }
        if burst % 97 == 11 {
            seq += 1;
            emit(
                &mut w,
                &mut written,
                event(
                    seq,
                    ts,
                    "i",
                    "rollback",
                    &format!("\"step\":{burst},\"mode\":\"{mode}\""),
                ),
            )?;
        }
        if burst % 193 == 42 {
            // A torn line, as a crashed writer would leave behind.
            emit(&mut w, &mut written, format!("{{\"seq\":{seq},\"ts_ns\":{ts},\"ki"))?;
        }
        seq += 1;
        ts += 1 + next(50);
        emit(&mut w, &mut written, event(seq, ts, "E", "burst", ""))?;
        burst += 1;
    }
    w.flush().map_err(|e| {
        eprintln!("profile: write error on {out_path}: {e}");
        ExitCode::from(1)
    })?;
    eprintln!("profile: wrote {out_path} ({written} bytes, {burst} bursts)");
    Ok(())
}

/// `synth --ledger-dir`: a deterministic synthetic run directory (just
/// a schema-v2 `ledger.json`) for exercising the cross-run archive and
/// sentinel without running physics. `--slow-callsite`/`--slow-factor`
/// plant a wall-time slowdown at exactly one callsite — the CI trend
/// gate archives a clean and a slowed directory and asserts the
/// sentinel flags that callsite and nothing else.
fn cmd_synth_ledger(dir: String, mut args: Vec<String>) -> Result<(), ExitCode> {
    use dcmesh_telemetry::ledger::{LedgerMeta, ResidualHist, Row, Stats};
    let slow_callsite = take_value(&mut args, "--slow-callsite");
    let slow_factor: f64 = match take_value(&mut args, "--slow-factor") {
        Some(v) => v.parse().map_err(|_| usage())?,
        None => 1.0,
    };
    if !args.is_empty() {
        return Err(usage());
    }
    let mk_row = |callsite: &str, shape: &str, mode: &str, calls: u64, wall_s: f64, device_s: f64| {
        let mut residuals = ResidualHist::default();
        for i in 0..calls.min(32) {
            residuals.observe(1e-7 * (1.0 + (i % 7) as f64));
        }
        let factor = match &slow_callsite {
            Some(cs) if cs == callsite => slow_factor,
            _ => 1.0,
        };
        Row {
            callsite: callsite.to_string(),
            shape: shape.to_string(),
            mode: mode.to_string(),
            stats: Stats {
                calls,
                wall_s: wall_s * factor,
                device_s,
                device_samples: calls,
                abft_checks: calls.min(32),
                residuals,
                ..Stats::default()
            },
        }
    };
    let rows = vec![
        mk_row("lfd::qd_propagate/cgemm", "128x1024x4096", "FLOAT_TO_BF16", 180, 0.90, 0.45),
        mk_row("lfd::orth/cgemm", "128x128x4096", "FLOAT_TO_BF16", 60, 0.12, 0.06),
        mk_row("qxmd::forces/sgemm", "128x512x2048", "STANDARD", 40, 0.30, 0.20),
    ];
    let meta = LedgerMeta {
        version: dcmesh_telemetry::ledger::LEDGER_SCHEMA_VERSION,
        deck_hash: "0x5e1ec7ab1e000001".to_string(),
        ranks: 1,
        telemetry_level: "full".to_string(),
        sample_period: 1,
        rows: rows.len() as u64,
    };
    let path = std::path::Path::new(&dir);
    std::fs::create_dir_all(path).map_err(|e| {
        eprintln!("profile: cannot create {dir}: {e}");
        ExitCode::from(1)
    })?;
    let doc = dcmesh_telemetry::ledger::rows_json_with_meta(&meta, &rows);
    let ledger_path = path.join("ledger.json");
    write(&ledger_path.display().to_string(), &doc)?;
    eprintln!(
        "profile: wrote {} ({} rows{})",
        ledger_path.display(),
        rows.len(),
        match &slow_callsite {
            Some(cs) => format!(", {cs} slowed {slow_factor}x"),
            None => String::new(),
        }
    );
    Ok(())
}

fn cmd_archive(mut args: Vec<String>) -> Result<(), ExitCode> {
    let Some(archive_path) = take_value(&mut args, "--archive") else { return Err(usage()) };
    let mode_policy = take_value(&mut args, "--mode-policy");
    let [run_dir] = args.as_slice() else { return Err(usage()) };
    let rec = archive::collect_run(std::path::Path::new(run_dir), mode_policy.as_deref())
        .map_err(|e| {
            eprintln!("profile: {e}");
            ExitCode::from(1)
        })?;
    let appended =
        archive::append(std::path::Path::new(&archive_path), &rec).map_err(|e| {
            eprintln!("profile: {e}");
            ExitCode::from(1)
        })?;
    if appended {
        eprintln!(
            "profile: archived {} ({} ledger rows, deck {}, {} rank(s), policy {})",
            rec.run_id,
            rec.entries.len(),
            rec.deck_hash,
            rec.ranks,
            rec.mode_policy
        );
    } else {
        eprintln!("profile: {} already archived, skipped", rec.run_id);
    }
    Ok(())
}

fn read_archive_records(path: &str) -> Result<Vec<archive::RunRecord>, ExitCode> {
    let (records, warnings) = archive::read_archive(std::path::Path::new(path)).map_err(|e| {
        eprintln!("profile: {e}");
        ExitCode::from(1)
    })?;
    for w in warnings {
        eprintln!("profile: warning: {w}");
    }
    Ok(records)
}

fn cmd_trend(mut args: Vec<String>) -> Result<(), ExitCode> {
    let Some(archive_path) = take_value(&mut args, "--archive") else { return Err(usage()) };
    let bench = take_value(&mut args, "--bench");
    let svg_path = take_value(&mut args, "--svg");
    if !args.is_empty() {
        return Err(usage());
    }
    let records = read_archive_records(&archive_path)?;
    let mut groups = trend::build_groups(&records);
    if let Some(b) = &bench {
        let extra = trend::bench_history_groups(&read(b)?).map_err(|e| {
            eprintln!("profile: {b}: {e}");
            ExitCode::from(1)
        })?;
        groups.extend(extra);
    }
    let regressions = trend::detect(&groups);
    print!("{}", trend::render_report(&groups, &regressions));
    if let Some(p) = &svg_path {
        write(p, &trend::render_svg(&groups, &regressions))?;
        eprintln!("profile: wrote {p}");
    }
    if regressions.is_empty() {
        Ok(())
    } else {
        eprintln!("profile: {} regression(s) flagged", regressions.len());
        Err(ExitCode::from(1))
    }
}

fn cmd_advise(mut args: Vec<String>) -> Result<(), ExitCode> {
    let Some(archive_path) = take_value(&mut args, "--archive") else { return Err(usage()) };
    let out = take_value(&mut args, "--out");
    let deck = take_value(&mut args, "--deck");
    if !args.is_empty() {
        return Err(usage());
    }
    let mut records = read_archive_records(&archive_path)?;
    if let Some(hash) = &deck {
        records.retain(|r| &r.deck_hash == hash);
        if records.is_empty() {
            eprintln!("profile: no archived runs with deck hash {hash}");
            return Err(ExitCode::from(1));
        }
    }
    let plan = advise::advise(&records);
    print!("{}", advise::render_advice(&plan));
    if let Some(p) = &out {
        write(p, &advise::advice_json(&plan))?;
        eprintln!("profile: wrote {p} ({} callsite plan(s))", plan.plan.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    let result = match cmd.as_str() {
        "flame" => cmd_flame(argv),
        "table" => cmd_table(argv),
        "fold" => cmd_fold(argv),
        "merge" => cmd_merge(argv),
        "diff" => cmd_diff(argv),
        "watch" => cmd_watch(argv),
        "synth" => cmd_synth(argv),
        "archive" => cmd_archive(argv),
        "trend" => cmd_trend(argv),
        "advise" => cmd_advise(argv),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(code) => code,
    }
}

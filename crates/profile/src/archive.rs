//! The cross-run archive: an append-only `runs.jsonl` store folding
//! finished runs' precision ledgers into one longitudinal record.
//!
//! One line per archived run (schema-versioned, unknown schemas are
//! skipped with a warning, never misread), carrying the run's identity
//! — deck hash, fleet shape, mode policy — next to its full per-
//! (callsite, shape-class, mode) ledger rows. `profile trend` reads
//! this store to compute robust per-key baselines across runs, and
//! `profile advise` joins it against the xe-gpu roofline model to
//! recommend per-callsite modes.
//!
//! [`collect_run`] understands both run-directory layouts the repo
//! produces: a single-process artifact directory (`ledger.json` at the
//! root, as written by `telemetry_check`) and a sharded run directory
//! (`trace/ledger-rank*.json` snapshots plus `MANIFEST.json` /
//! `report.json`, as written by `dcmesh-shard`). Per-rank ledgers are
//! merged through the order-independent [`ledger::merge_rows`], so the
//! archived rows are bit-identical no matter how the rank files are
//! enumerated.
//!
//! Appending is idempotent: the run id is a content fingerprint
//! (directory name + FNV-1a/64 of the merged rows), so re-archiving
//! the same finished run is a no-op rather than a duplicate baseline
//! sample.

use dcmesh_telemetry::json::{self, JsonValue};
use dcmesh_telemetry::ledger::{self, LedgerMeta, Row};
use std::path::{Path, PathBuf};

/// Schema version of a `runs.jsonl` line.
pub const ARCHIVE_SCHEMA_VERSION: u64 = 1;

/// One archived run: identity, fleet shape, supervision outcome, and
/// the full merged precision-ledger rows.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Content-derived id (`"{dir_name}-{fnv16}"`), the idempotency key.
    pub run_id: String,
    /// FNV-1a/64 of the canonical deck text (`"0x…"`), `"-"` if unknown.
    pub deck_hash: String,
    /// Fleet rank count (1 for single-process runs).
    pub ranks: u64,
    /// Domain count (0 when the run was not sharded).
    pub domains: u64,
    /// Start mode plus de-escalation setting, e.g.
    /// `"FLOAT_TO_BF16+deesc2"`; `"-"` when no manifest recorded one.
    pub mode_policy: String,
    /// Telemetry level the run recorded at.
    pub telemetry_level: String,
    /// Span sampling interval during the run.
    pub sample_period: u64,
    /// Wall-clock milliseconds of the whole run (0 when unknown).
    pub elapsed_ms: u64,
    /// Rank respawns performed (sharded runs).
    pub restarts: u64,
    /// Heartbeat timeouts declared (sharded runs).
    pub heartbeat_misses: u64,
    /// Total precision escalations across all ledger rows.
    pub escalations: u64,
    /// Total SDC recoveries reported (sharded runs; 0 when unknown).
    pub sdc_recoveries: u64,
    /// The run directory this record was folded from.
    pub source: String,
    /// Merged ledger rows, sorted by (callsite, shape, mode).
    pub entries: Vec<Row>,
}

fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Default archive path under an archive root directory.
pub fn runs_path(archive_dir: &Path) -> PathBuf {
    archive_dir.join("runs.jsonl")
}

fn read_to_string(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads every per-rank ledger snapshot under `run_dir/trace/`.
fn rank_ledgers(run_dir: &Path) -> Result<Vec<(LedgerMeta, Vec<Row>)>, String> {
    let trace = run_dir.join("trace");
    let mut names: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&trace) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if name.starts_with("ledger-rank") && name.ends_with(".json") {
                names.push(e.path());
            }
        }
    }
    // Deterministic enumeration; merge_rows is order-independent anyway,
    // but sorted inputs make the whole fold reproducible byte-for-byte.
    names.sort();
    names
        .iter()
        .map(|p| ledger::parse_ledger(&read_to_string(p)?).map_err(|e| format!("{}: {e}", p.display())))
        .collect()
}

/// Folds a finished run directory into a [`RunRecord`].
///
/// `mode_policy_override` wins over anything found in the manifest —
/// the hook for single-process runs whose directory carries no
/// `MANIFEST.json` (the caller knows what `MKL_BLAS_COMPUTE_MODE` it
/// ran under).
pub fn collect_run(
    run_dir: &Path,
    mode_policy_override: Option<&str>,
) -> Result<RunRecord, String> {
    // Ledger rows: root ledger.json (single-process) or merged per-rank
    // snapshots (sharded). Root wins when both exist — it is the
    // already-merged document.
    let root_ledger = run_dir.join("ledger.json");
    let (meta, entries) = if root_ledger.is_file() {
        ledger::parse_ledger(&read_to_string(&root_ledger)?)
            .map_err(|e| format!("{}: {e}", root_ledger.display()))?
    } else {
        let per_rank = rank_ledgers(run_dir)?;
        if per_rank.is_empty() {
            return Err(format!(
                "{}: no ledger.json and no trace/ledger-rank*.json — nothing to archive",
                run_dir.display()
            ));
        }
        // Any rank's header works for level/period/deck (stamped
        // identically fleet-wide); take the max rank count seen so a
        // degraded fleet still reports its configured size.
        let meta = per_rank
            .iter()
            .map(|(m, _)| m.clone())
            .max_by_key(|m| m.ranks)
            .expect("nonempty");
        let sources: Vec<Vec<Row>> = per_rank.into_iter().map(|(_, rows)| rows).collect();
        (meta, ledger::merge_rows(&sources))
    };

    let mut rec = RunRecord {
        run_id: String::new(),
        deck_hash: meta.deck_hash,
        ranks: meta.ranks,
        domains: 0,
        mode_policy: "-".to_string(),
        telemetry_level: meta.telemetry_level,
        sample_period: meta.sample_period,
        elapsed_ms: 0,
        restarts: 0,
        heartbeat_misses: 0,
        escalations: entries.iter().map(|r| r.stats.escalations).sum(),
        sdc_recoveries: 0,
        source: run_dir.display().to_string(),
        entries,
    };

    // Sharded-run context, when present.
    if let Ok(text) = std::fs::read_to_string(run_dir.join("MANIFEST.json")) {
        if let Ok(doc) = json::parse(&text) {
            let num = |f: &str| doc.get(f).and_then(JsonValue::as_f64);
            if let Some(d) = num("n_domains") {
                rec.domains = d as u64;
            }
            if let Some(r) = num("ranks") {
                rec.ranks = r as u64;
            }
            if let Some(mode) = doc.get("start_mode").and_then(JsonValue::as_str) {
                rec.mode_policy = match num("deescalate_after") {
                    Some(n) => format!("{mode}+deesc{}", n as u64),
                    None => mode.to_string(),
                };
            }
        }
    }
    if let Ok(text) = std::fs::read_to_string(run_dir.join("report.json")) {
        if let Ok(doc) = json::parse(&text) {
            let num = |f: &str| doc.get(f).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
            rec.elapsed_ms = num("elapsed_ms");
            rec.restarts = num("restarts");
            rec.heartbeat_misses = num("heartbeat_misses");
            if let Some(domains) = doc.get("domains").and_then(JsonValue::as_array) {
                rec.sdc_recoveries = domains
                    .iter()
                    .map(|d| d.get("sdc_recoveries").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64)
                    .sum();
            }
        }
    }
    if let Some(policy) = mode_policy_override {
        rec.mode_policy = policy.to_string();
    }

    // Content fingerprint: directory name + hash of the serialized rows.
    // Re-archiving the identical finished run reproduces the id.
    let dir_name = run_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "run".to_string());
    let row_bytes: String = rec.entries.iter().map(ledger::row_json).collect();
    rec.run_id = format!("{dir_name}-{:016x}", fnv1a64(row_bytes.as_bytes()));
    Ok(rec)
}

/// Serialises a record as one `runs.jsonl` line (no trailing newline).
pub fn record_json(r: &RunRecord) -> String {
    let mut out = format!(
        "{{\"schema\":{ARCHIVE_SCHEMA_VERSION},\"run_id\":{},\"deck_hash\":{},\
         \"ranks\":{},\"domains\":{},\"mode_policy\":{},\"telemetry_level\":{},\
         \"sample_period\":{},\"elapsed_ms\":{},\"restarts\":{},\
         \"heartbeat_misses\":{},\"escalations\":{},\"sdc_recoveries\":{},\
         \"source\":{},\"entries\":[",
        json::escape_string(&r.run_id),
        json::escape_string(&r.deck_hash),
        r.ranks,
        r.domains,
        json::escape_string(&r.mode_policy),
        json::escape_string(&r.telemetry_level),
        r.sample_period,
        r.elapsed_ms,
        r.restarts,
        r.heartbeat_misses,
        r.escalations,
        r.sdc_recoveries,
        json::escape_string(&r.source),
    );
    for (i, row) in r.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&ledger::row_json(row));
    }
    out.push_str("]}");
    out
}

/// Parses one `runs.jsonl` line back into a [`RunRecord`].
pub fn parse_record(line: &str) -> Result<RunRecord, String> {
    let doc = json::parse(line).map_err(|e| format!("line does not parse: {e}"))?;
    let schema = doc.get("schema").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
    if schema != ARCHIVE_SCHEMA_VERSION {
        return Err(format!(
            "unknown archive schema {schema} (supported: {ARCHIVE_SCHEMA_VERSION})"
        ));
    }
    let s = |f: &str| {
        doc.get(f)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("record missing string field {f:?}"))
    };
    let n = |f: &str| doc.get(f).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "record has no entries array".to_string())?
        .iter()
        .map(ledger::parse_row)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunRecord {
        run_id: s("run_id")?,
        deck_hash: s("deck_hash")?,
        ranks: n("ranks"),
        domains: n("domains"),
        mode_policy: s("mode_policy")?,
        telemetry_level: s("telemetry_level")?,
        sample_period: n("sample_period"),
        elapsed_ms: n("elapsed_ms"),
        restarts: n("restarts"),
        heartbeat_misses: n("heartbeat_misses"),
        escalations: n("escalations"),
        sdc_recoveries: n("sdc_recoveries"),
        source: s("source")?,
        entries,
    })
}

/// Reads every readable record from an archive file, in append order.
/// Unknown schemas and malformed lines become warnings, not errors —
/// a future-schema line must never block reading the rest.
pub fn read_archive(path: &Path) -> Result<(Vec<RunRecord>, Vec<String>), String> {
    let text = read_to_string(path)?;
    let mut records = Vec::new();
    let mut warnings = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Ok(r) => records.push(r),
            Err(e) => warnings.push(format!("{}:{}: {e}", path.display(), i + 1)),
        }
    }
    Ok((records, warnings))
}

/// Appends a record to the archive unless its `run_id` is already
/// present. Returns `true` when the record was written, `false` on the
/// idempotent skip.
pub fn append(path: &Path, rec: &RunRecord) -> Result<bool, String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    if path.is_file() {
        let (existing, _) = read_archive(path)?;
        if existing.iter().any(|r| r.run_id == rec.run_id) {
            return Ok(false);
        }
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    writeln!(f, "{}", record_json(rec)).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_telemetry::ledger::{ResidualHist, Stats};

    fn test_record(run_id: &str) -> RunRecord {
        let mut h = ResidualHist::default();
        h.observe(1e-6);
        RunRecord {
            run_id: run_id.to_string(),
            deck_hash: "0x00000000deadbeef".to_string(),
            ranks: 4,
            domains: 4,
            mode_policy: "FLOAT_TO_BF16+deesc2".to_string(),
            telemetry_level: "full".to_string(),
            sample_period: 1,
            elapsed_ms: 1234,
            restarts: 1,
            heartbeat_misses: 1,
            escalations: 2,
            sdc_recoveries: 0,
            source: "/tmp/run".to_string(),
            entries: vec![Row {
                callsite: "md/cgemm".to_string(),
                shape: "128x1024x4096".to_string(),
                mode: "FLOAT_TO_BF16".to_string(),
                stats: Stats {
                    calls: 10,
                    wall_s: 0.5,
                    device_s: 0.25,
                    device_samples: 10,
                    escalations: 2,
                    residuals: h,
                    ..Stats::default()
                },
            }],
        }
    }

    #[test]
    fn record_round_trips() {
        let rec = test_record("runA-0123");
        let line = record_json(&rec);
        let parsed = parse_record(&line).expect("parses");
        assert_eq!(parsed, rec);
        // And the re-serialisation is byte-identical.
        assert_eq!(record_json(&parsed), line);
    }

    #[test]
    fn unknown_schema_is_a_warning_not_an_error() {
        let dir = std::env::temp_dir().join(format!("dcmesh-archive-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.jsonl");
        let good = record_json(&test_record("good-run"));
        std::fs::write(&path, format!("{good}\n{{\"schema\":99,\"run_id\":\"future\"}}\nnot json\n"))
            .unwrap();
        let (records, warnings) = read_archive(&path).expect("readable");
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].run_id, "good-run");
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_is_idempotent_by_run_id() {
        let dir = std::env::temp_dir().join(format!("dcmesh-archive-idem-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("runs.jsonl");
        std::fs::remove_file(&path).ok();
        let rec = test_record("same-run");
        assert!(append(&path, &rec).expect("first append"));
        assert!(!append(&path, &rec).expect("second append skipped"));
        let mut other = test_record("other-run");
        other.escalations = 9;
        assert!(append(&path, &other).expect("different run appends"));
        let (records, _) = read_archive(&path).expect("readable");
        assert_eq!(records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collect_run_merges_rank_ledgers_order_independently() {
        use dcmesh_telemetry::ledger::{rows_json_with_meta, LedgerMeta};
        let dir = std::env::temp_dir().join(format!("dcmesh-archive-collect-{}", std::process::id()));
        let trace = dir.join("trace");
        std::fs::create_dir_all(&trace).unwrap();
        let meta = LedgerMeta {
            version: 2,
            deck_hash: "0x1111111111111111".to_string(),
            ranks: 2,
            telemetry_level: "full".to_string(),
            sample_period: 1,
            rows: 1,
        };
        let mk = |wall: f64| {
            vec![Row {
                callsite: "md/cgemm".to_string(),
                shape: "64x64x64".to_string(),
                mode: "STANDARD".to_string(),
                stats: Stats {
                    calls: 1,
                    wall_s: wall,
                    ..Stats::default()
                },
            }]
        };
        std::fs::write(trace.join("ledger-rank0.json"), rows_json_with_meta(&meta, &mk(0.25))).unwrap();
        std::fs::write(trace.join("ledger-rank1.json"), rows_json_with_meta(&meta, &mk(1e-9))).unwrap();
        let rec = collect_run(&dir, Some("STANDARD")).expect("collects");
        assert_eq!(rec.ranks, 2);
        assert_eq!(rec.deck_hash, "0x1111111111111111");
        assert_eq!(rec.mode_policy, "STANDARD");
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].stats.calls, 2);
        assert_eq!(rec.entries[0].stats.wall_s.to_bits(), (0.25f64 + 1e-9).to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }
}

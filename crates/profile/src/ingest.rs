//! JSONL trace ingestion: events back into a validated span forest.
//!
//! The telemetry exporter writes one JSON object per line ([`export::jsonl`]):
//! a `telemetry_meta` header (run epoch, rank, sampling interval) followed
//! by `B`/`E` span pairs, `i` instants, and `X` device slices. Real dumps
//! are imperfect — the sink ring drops the oldest events under pressure and
//! a crashed run truncates the tail mid-span — so ingestion is **tolerant**:
//!
//! * a line that fails to parse is counted and skipped (truncated tails);
//! * an `E` with no matching open `B` is counted as an orphan;
//! * an `E` that matches a deeper frame closes the intervening frames at
//!   the same timestamp and marks them truncated (their own `E`s were
//!   dropped);
//! * frames still open at end-of-stream are closed at the last observed
//!   timestamp and marked truncated.
//!
//! Every reconstructed [`Span`] carries its ancestor path (so folding is a
//! string join), its `sample_weight` (1 when unsampled), and its **self
//! time** (duration minus children), computed incrementally during the
//! stack replay.

use dcmesh_telemetry::json::{self, JsonValue};
use std::collections::BTreeMap;

/// Stream metadata from the `telemetry_meta` header line.
#[derive(Clone, Debug, Default)]
pub struct Meta {
    /// Wall-clock UNIX ns of the producer's telemetry epoch (`ts_ns` zero).
    pub run_epoch_unix_ns: u64,
    /// Producing process's rank / divide-and-conquer domain id.
    pub rank: u64,
    /// Sampling interval N the producer used for call spans.
    pub sample_n: u64,
    /// False when the stream had no `telemetry_meta` line (legacy dump).
    pub present: bool,
}

/// One reconstructed host span.
#[derive(Clone, Debug)]
pub struct Span {
    /// Span name (`burst`, `qd_step`, `CGEMM`, ...).
    pub name: String,
    /// Telemetry thread id of the recording thread.
    pub tid: u64,
    /// Begin timestamp (ns since the producer's epoch).
    pub start_ns: u64,
    /// End timestamp.
    pub end_ns: u64,
    /// Ancestor names, root first, excluding this span.
    pub stack: Vec<String>,
    /// Sampling weight: the producer's 1-in-N interval, 1 when unsampled.
    pub weight: f64,
    /// Begin and end attributes, merged (end wins on key collision).
    pub attrs: BTreeMap<String, JsonValue>,
    /// Nanoseconds not covered by child spans.
    pub self_ns: u64,
    /// True when the matching `E` was missing (dropped or truncated).
    pub truncated: bool,
}

impl Span {
    /// Inclusive duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Numeric attribute, if present.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attrs.get(key).and_then(JsonValue::as_f64)
    }

    /// String attribute, if present.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).and_then(JsonValue::as_str)
    }
}

/// One instant (`i`) event.
#[derive(Clone, Debug)]
pub struct InstantEvent {
    /// Event name (`escalation`, `rollback`, ...).
    pub name: String,
    /// Timestamp (ns since epoch).
    pub ts_ns: u64,
    /// Recording thread.
    pub tid: u64,
    /// Event attributes.
    pub attrs: BTreeMap<String, JsonValue>,
}

/// One device-track complete (`X`) slice.
#[derive(Clone, Debug)]
pub struct DeviceSlice {
    /// Kernel name.
    pub name: String,
    /// Start on the simulated device clock (ns).
    pub start_ns: u64,
    /// Modelled duration (ns).
    pub dur_ns: u64,
    /// Slice attributes.
    pub attrs: BTreeMap<String, JsonValue>,
}

/// A fully ingested trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Stream metadata (default/absent for legacy dumps).
    pub meta: Meta,
    /// Reconstructed host spans, in close order.
    pub spans: Vec<Span>,
    /// Instant events in stream order.
    pub instants: Vec<InstantEvent>,
    /// Device-track slices in stream order.
    pub device: Vec<DeviceSlice>,
    /// Human-readable ingestion warnings (coverage, recovery actions).
    pub warnings: Vec<String>,
    /// Lines that failed to parse as JSON.
    pub skipped_lines: u64,
    /// `E` events with no open frame to close.
    pub orphan_ends: u64,
    /// Spans closed without their own `E` (dropped events or truncation).
    pub truncated_spans: u64,
}

impl Trace {
    /// Spans named `name`.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

/// An open frame during stack replay.
struct OpenFrame {
    name: String,
    start_ns: u64,
    weight: f64,
    attrs: BTreeMap<String, JsonValue>,
    /// Sum of direct children's inclusive durations.
    children_ns: u64,
}

fn attrs_of(row: &JsonValue) -> BTreeMap<String, JsonValue> {
    match row.get("args") {
        Some(JsonValue::Object(m)) => m.clone(),
        _ => BTreeMap::new(),
    }
}

/// Parses a Prometheus text dump and returns the value of `series`
/// (first sample wins), if present.
pub fn prom_value(dump: &str, series: &str) -> Option<f64> {
    dump.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.split_once(' ')?;
            (name == series || name.starts_with(&format!("{series}{{")))
                .then(|| value.trim().parse::<f64>().ok())
                .flatten()
        })
        .next()
}

/// Ingests a JSONL event dump. Never fails: malformed input degrades into
/// counted warnings rather than errors, because a truncated trace from a
/// crashed run is exactly what one most wants to profile.
pub fn ingest_jsonl(text: &str) -> Trace {
    let mut trace = Trace::default();
    // Per-tid stacks of open frames.
    let mut stacks: BTreeMap<u64, Vec<OpenFrame>> = BTreeMap::new();
    let mut last_ts: u64 = 0;

    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let row = match json::parse(line) {
            Ok(v) => v,
            Err(_) => {
                trace.skipped_lines += 1;
                continue;
            }
        };
        let name = row.get("name").and_then(JsonValue::as_str).unwrap_or("").to_string();
        let kind = row.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        let ts_ns = row.get("ts_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let tid = row.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let track = row.get("track").and_then(JsonValue::as_str).unwrap_or("host");
        let attrs = attrs_of(&row);

        if name == "telemetry_meta" {
            trace.meta = Meta {
                run_epoch_unix_ns: attrs
                    .get("run_epoch")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0) as u64,
                rank: attrs.get("rank").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
                sample_n: attrs.get("sample_n").and_then(JsonValue::as_f64).unwrap_or(1.0)
                    as u64,
                present: true,
            };
            continue;
        }
        if track == "host" {
            last_ts = last_ts.max(ts_ns);
        }

        match kind {
            "B" => {
                let weight = attrs
                    .get("sample_weight")
                    .and_then(JsonValue::as_f64)
                    .filter(|w| *w >= 1.0)
                    .unwrap_or(1.0);
                stacks.entry(tid).or_default().push(OpenFrame {
                    name,
                    start_ns: ts_ns,
                    weight,
                    attrs,
                    children_ns: 0,
                });
            }
            "E" => {
                let stack = stacks.entry(tid).or_default();
                match stack.iter().rposition(|f| f.name == name) {
                    None => trace.orphan_ends += 1,
                    Some(pos) => {
                        // Frames above `pos` lost their own E events: close
                        // them at this timestamp, innermost first.
                        while stack.len() > pos + 1 {
                            close_frame(&mut trace, stack, tid, ts_ns, BTreeMap::new(), true);
                        }
                        close_frame(&mut trace, stack, tid, ts_ns, attrs, false);
                    }
                }
            }
            "i" => trace.instants.push(InstantEvent { name, ts_ns, tid, attrs }),
            "X" => {
                let dur_ns =
                    row.get("dur_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
                trace.device.push(DeviceSlice { name, start_ns: ts_ns, dur_ns, attrs });
            }
            _ => trace.skipped_lines += 1,
        }
    }

    // Close whatever survives to end-of-stream as truncated.
    for (&tid, stack) in stacks.iter_mut() {
        while !stack.is_empty() {
            close_frame(&mut trace, stack, tid, last_ts, BTreeMap::new(), true);
        }
    }

    if trace.skipped_lines > 0 {
        trace
            .warnings
            .push(format!("{} malformed line(s) skipped (truncated dump?)", trace.skipped_lines));
    }
    if trace.orphan_ends > 0 {
        trace.warnings.push(format!(
            "{} span end(s) had no matching begin (ring dropped the begins)",
            trace.orphan_ends
        ));
    }
    if trace.truncated_spans > 0 {
        trace.warnings.push(format!(
            "{} span(s) closed without their end event (dropped or truncated)",
            trace.truncated_spans
        ));
    }
    if !trace.meta.present {
        trace.warnings.push(
            "no telemetry_meta header: rank defaults to 0 and clocks cannot be aligned"
                .to_string(),
        );
    }
    trace
}

/// Pops the innermost open frame on `stack` into `trace.spans`.
fn close_frame(
    trace: &mut Trace,
    stack: &mut Vec<OpenFrame>,
    tid: u64,
    end_ns: u64,
    end_attrs: BTreeMap<String, JsonValue>,
    truncated: bool,
) {
    let frame = stack.pop().expect("caller checked non-empty");
    let dur = end_ns.saturating_sub(frame.start_ns);
    if let Some(parent) = stack.last_mut() {
        parent.children_ns += dur;
    }
    let mut attrs = frame.attrs;
    attrs.extend(end_attrs);
    if truncated {
        trace.truncated_spans += 1;
    }
    trace.spans.push(Span {
        name: frame.name,
        tid,
        start_ns: frame.start_ns,
        end_ns,
        stack: stack.iter().map(|f| f.name.clone()).collect(),
        weight: frame.weight,
        attrs,
        self_ns: dur.saturating_sub(frame.children_ns),
        truncated,
    });
}

/// Coverage diagnostics combining the ingested stream's own counters with
/// the producer-side drop counters from a `metrics.prom` dump, when one is
/// available next to the trace.
pub fn coverage_warnings(trace: &Trace, metrics_prom: Option<&str>) -> Vec<String> {
    let mut out = trace.warnings.clone();
    if let Some(dump) = metrics_prom {
        for (series, what) in [
            ("telemetry_dropped_events", "sink ring dropped event(s)"),
            ("telemetry_truncated_attrs", "attribute(s) were truncated"),
            ("mkl_verbose_dropped_records", "verbose call record(s) dropped"),
        ] {
            if let Some(v) = prom_value(dump, series) {
                if v > 0.0 {
                    out.push(format!(
                        "producer reported {v} {what} ({series}); totals underestimate the run"
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, kind: &str, name: &str, ts: u64, extra: &str) -> String {
        format!(
            "{{\"seq\":{seq},\"ts_ns\":{ts},\"kind\":\"{kind}\",\"name\":\"{name}\",\
             \"track\":\"host\",\"tid\":0,\"args\":{{{extra}}}}}"
        )
    }

    #[test]
    fn balanced_stream_reconstructs_forest() {
        let text = [
            line(0, "B", "burst", 0, "\"mode\":\"STANDARD\""),
            line(1, "B", "qd_step", 10, ""),
            line(2, "B", "CGEMM", 20, "\"m\":8"),
            line(3, "E", "CGEMM", 30, "\"wall_s\":0.5"),
            line(4, "E", "qd_step", 90, ""),
            line(5, "E", "burst", 100, ""),
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans.len(), 3);
        let gemm = t.spans_named("CGEMM").next().unwrap();
        assert_eq!(gemm.stack, vec!["burst".to_string(), "qd_step".to_string()]);
        assert_eq!(gemm.dur_ns(), 10);
        assert_eq!(gemm.attr_f64("m"), Some(8.0));
        assert_eq!(gemm.attr_f64("wall_s"), Some(0.5), "end attrs merged in");
        let step = t.spans_named("qd_step").next().unwrap();
        assert_eq!(step.self_ns, 80 - 10, "self excludes the CGEMM child");
        let burst = t.spans_named("burst").next().unwrap();
        assert_eq!(burst.self_ns, 100 - 80);
        assert_eq!(t.truncated_spans, 0);
        assert!(t.warnings.iter().any(|w| w.contains("telemetry_meta")), "{:?}", t.warnings);
    }

    #[test]
    fn truncated_tail_closes_open_spans() {
        let text = [
            line(0, "B", "burst", 0, ""),
            line(1, "B", "qd_step", 10, ""),
            "{\"seq\":2,\"ts_ns\":20,\"ki".to_string(), // torn final line
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.skipped_lines, 1);
        assert_eq!(t.spans.len(), 2);
        assert!(t.spans.iter().all(|s| s.truncated));
        assert!(t.spans.iter().all(|s| s.end_ns == 10), "closed at last seen ts");
    }

    #[test]
    fn dropped_begin_counts_orphan_end() {
        let text = [line(5, "E", "CGEMM", 50, ""), line(6, "B", "x", 60, ""), line(7, "E", "x", 70, "")]
            .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.orphan_ends, 1);
        assert_eq!(t.spans.len(), 1);
    }

    #[test]
    fn dropped_end_recovers_via_outer_close() {
        // CGEMM's E was dropped; qd_step's E closes both.
        let text = [
            line(0, "B", "qd_step", 0, ""),
            line(1, "B", "CGEMM", 10, ""),
            line(2, "E", "qd_step", 40, ""),
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans.len(), 2);
        let gemm = t.spans_named("CGEMM").next().unwrap();
        assert!(gemm.truncated);
        assert_eq!(gemm.end_ns, 40);
        let step = t.spans_named("qd_step").next().unwrap();
        assert!(!step.truncated);
        assert_eq!(t.truncated_spans, 1);
    }

    #[test]
    fn meta_line_populates_meta() {
        let meta = "{\"seq\":0,\"ts_ns\":0,\"kind\":\"i\",\"name\":\"telemetry_meta\",\
                    \"track\":\"host\",\"tid\":0,\"args\":{\"run_epoch\":123456,\"rank\":3,\
                    \"sample_n\":16}}";
        let t = ingest_jsonl(meta);
        assert!(t.meta.present);
        assert_eq!(t.meta.run_epoch_unix_ns, 123_456);
        assert_eq!(t.meta.rank, 3);
        assert_eq!(t.meta.sample_n, 16);
        assert!(t.warnings.is_empty());
    }

    #[test]
    fn sample_weight_lands_on_span() {
        let text = [
            line(0, "B", "CGEMM", 0, "\"sample_weight\":16"),
            line(1, "E", "CGEMM", 10, ""),
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans[0].weight, 16.0);
    }

    #[test]
    fn zero_length_span_is_kept() {
        let text = [line(0, "B", "noop", 5, ""), line(1, "E", "noop", 5, "")].join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].dur_ns(), 0);
        assert_eq!(t.spans[0].self_ns, 0);
    }

    #[test]
    fn prom_value_reads_series() {
        let dump = "# HELP x y\n# TYPE x gauge\ntelemetry_dropped_events 42\nother 7\n";
        assert_eq!(prom_value(dump, "telemetry_dropped_events"), Some(42.0));
        assert_eq!(prom_value(dump, "missing"), None);
        let t = ingest_jsonl("");
        let warns = coverage_warnings(&t, Some(dump));
        assert!(warns.iter().any(|w| w.contains("sink ring dropped")), "{warns:?}");
    }
}

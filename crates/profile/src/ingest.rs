//! JSONL trace ingestion: events back into a validated span forest.
//!
//! The telemetry exporter writes one JSON object per line ([`export::jsonl`]):
//! a `telemetry_meta` header (run epoch, rank, sampling interval) followed
//! by `B`/`E` span pairs, `i` instants, and `X` device slices. Real dumps
//! are imperfect — the sink ring drops the oldest events under pressure and
//! a crashed run truncates the tail mid-span — so ingestion is **tolerant**:
//!
//! * a line that fails to parse is counted and skipped (truncated tails);
//! * an `E` with no matching open `B` is counted as an orphan;
//! * an `E` that matches a deeper frame closes the intervening frames at
//!   the same timestamp and marks them truncated (their own `E`s were
//!   dropped);
//! * frames still open at end-of-stream are closed at the last observed
//!   timestamp and marked truncated.
//!
//! Every reconstructed [`Span`] carries its ancestor path (so folding is a
//! string join), its `sample_weight` (1 when unsampled), and its **self
//! time** (duration minus children), computed incrementally during the
//! stack replay.
//!
//! Ingestion is **streaming-first**: [`StreamingIngester`] folds one line
//! at a time in bounded memory (the only retained state is the open-frame
//! stacks plus whatever closed records the consumer hasn't drained via
//! [`StreamingIngester::take_closed_spans`]), and the batch entry point
//! [`ingest_jsonl`] is a thin wrapper that feeds every line and calls
//! [`StreamingIngester::finish`] — so the batch and streaming paths are
//! bit-identical by construction.

use dcmesh_telemetry::json::{self, JsonValue};
use std::collections::BTreeMap;

/// Stream metadata from the `telemetry_meta` header line.
#[derive(Clone, Debug, Default)]
pub struct Meta {
    /// Wall-clock UNIX ns of the producer's telemetry epoch (`ts_ns` zero).
    pub run_epoch_unix_ns: u64,
    /// Producing process's rank / divide-and-conquer domain id.
    pub rank: u64,
    /// Sampling interval N the producer used for call spans.
    pub sample_n: u64,
    /// False when the stream had no `telemetry_meta` line (legacy dump).
    pub present: bool,
}

/// One reconstructed host span.
#[derive(Clone, Debug)]
pub struct Span {
    /// Span name (`burst`, `qd_step`, `CGEMM`, ...).
    pub name: String,
    /// Telemetry thread id of the recording thread.
    pub tid: u64,
    /// Begin timestamp (ns since the producer's epoch).
    pub start_ns: u64,
    /// End timestamp.
    pub end_ns: u64,
    /// Ancestor names, root first, excluding this span.
    pub stack: Vec<String>,
    /// Sampling weight: the producer's 1-in-N interval, 1 when unsampled.
    pub weight: f64,
    /// Begin and end attributes, merged (end wins on key collision).
    pub attrs: BTreeMap<String, JsonValue>,
    /// Nanoseconds not covered by child spans.
    pub self_ns: u64,
    /// True when the matching `E` was missing (dropped or truncated).
    pub truncated: bool,
    /// Compute mode of the enclosing `burst` span (or of this span, if
    /// it *is* a burst), resolved from the open-frame stack at close
    /// time. Stack-based so streaming consumers never need to retain
    /// closed bursts for time-containment lookups.
    pub burst_mode: Option<String>,
}

impl Span {
    /// Inclusive duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Numeric attribute, if present.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        self.attrs.get(key).and_then(JsonValue::as_f64)
    }

    /// String attribute, if present.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).and_then(JsonValue::as_str)
    }
}

/// One instant (`i`) event.
#[derive(Clone, Debug)]
pub struct InstantEvent {
    /// Event name (`escalation`, `rollback`, ...).
    pub name: String,
    /// Timestamp (ns since epoch).
    pub ts_ns: u64,
    /// Recording thread.
    pub tid: u64,
    /// Event attributes.
    pub attrs: BTreeMap<String, JsonValue>,
}

/// One device-track complete (`X`) slice.
#[derive(Clone, Debug)]
pub struct DeviceSlice {
    /// Kernel name.
    pub name: String,
    /// Start on the simulated device clock (ns).
    pub start_ns: u64,
    /// Modelled duration (ns).
    pub dur_ns: u64,
    /// Slice attributes.
    pub attrs: BTreeMap<String, JsonValue>,
}

/// Maximum offending lines identified individually in the skip report;
/// beyond this only the total is kept (a corrupt multi-GB stream must
/// not grow an unbounded report).
pub const MAX_SKIP_REPORT: usize = 8;

/// Location of one malformed input line, for the skip report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkipRecord {
    /// 1-based line number in the stream.
    pub line_no: u64,
    /// Byte offset of the line's first byte (assumes LF line endings).
    pub byte_offset: u64,
}

/// A fully ingested trace.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Stream metadata (default/absent for legacy dumps).
    pub meta: Meta,
    /// Reconstructed host spans, in close order.
    pub spans: Vec<Span>,
    /// Instant events in stream order.
    pub instants: Vec<InstantEvent>,
    /// Device-track slices in stream order.
    pub device: Vec<DeviceSlice>,
    /// Human-readable ingestion warnings (coverage, recovery actions).
    pub warnings: Vec<String>,
    /// Lines that failed to parse as JSON.
    pub skipped_lines: u64,
    /// Locations of the first [`MAX_SKIP_REPORT`] malformed lines.
    pub skipped: Vec<SkipRecord>,
    /// `E` events with no open frame to close.
    pub orphan_ends: u64,
    /// Spans closed without their own `E` (dropped events or truncation).
    pub truncated_spans: u64,
}

impl Trace {
    /// Spans named `name`.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.name == name)
    }
}

/// An open frame during stack replay.
struct OpenFrame {
    name: String,
    start_ns: u64,
    weight: f64,
    attrs: BTreeMap<String, JsonValue>,
    /// Sum of direct children's inclusive durations.
    children_ns: u64,
}

fn attrs_of(row: &JsonValue) -> BTreeMap<String, JsonValue> {
    match row.get("args") {
        Some(JsonValue::Object(m)) => m.clone(),
        _ => BTreeMap::new(),
    }
}

/// Parses a Prometheus text dump and returns the value of `series`
/// (first sample wins), if present.
pub fn prom_value(dump: &str, series: &str) -> Option<f64> {
    dump.lines()
        .filter(|l| !l.starts_with('#'))
        .filter_map(|l| {
            let (name, value) = l.split_once(' ')?;
            (name == series || name.starts_with(&format!("{series}{{")))
                .then(|| value.trim().parse::<f64>().ok())
                .flatten()
        })
        .next()
}

/// Ingests a JSONL event dump. Never fails: malformed input degrades into
/// counted warnings rather than errors, because a truncated trace from a
/// crashed run is exactly what one most wants to profile.
///
/// This is the batch convenience over [`StreamingIngester`]: every line
/// is fed through the same incremental machinery, so the result is
/// bit-identical to a chunked streaming run over the same bytes.
pub fn ingest_jsonl(text: &str) -> Trace {
    let mut ing = StreamingIngester::new();
    for line in text.lines() {
        ing.feed_line(line);
    }
    ing.finish()
}

/// Incremental JSONL ingestion in bounded memory.
///
/// Feed one line at a time with [`feed_line`](Self::feed_line); closed
/// records accumulate in the internal [`Trace`] until drained with
/// [`take_closed_spans`](Self::take_closed_spans) (and the instant /
/// device equivalents). A consumer that drains after every chunk holds
/// only the open-frame stacks — O(max span depth × threads) — no matter
/// how many gigabytes flow through. [`finish`](Self::finish) closes
/// still-open frames as truncated and returns the trace with the
/// end-of-stream warnings attached.
#[derive(Default)]
pub struct StreamingIngester {
    trace: Trace,
    /// Per-tid stacks of open frames.
    stacks: BTreeMap<u64, Vec<OpenFrame>>,
    /// Maximum host-track timestamp observed (close point for truncated
    /// frames at end of stream).
    last_ts: u64,
    /// 1-based number of the next line to be fed.
    next_line_no: u64,
    /// Byte offset of the next line's first byte (LF endings assumed).
    byte_offset: u64,
}

impl StreamingIngester {
    /// A fresh ingester at line 1, byte 0.
    pub fn new() -> Self {
        StreamingIngester::default()
    }

    /// Stream metadata seen so far (populated once the `telemetry_meta`
    /// header line has been fed).
    pub fn meta(&self) -> &Meta {
        &self.trace.meta
    }

    /// Spans closed so far, draining them from the internal trace.
    pub fn take_closed_spans(&mut self) -> Vec<Span> {
        std::mem::take(&mut self.trace.spans)
    }

    /// Instants seen so far, draining them from the internal trace.
    pub fn take_closed_instants(&mut self) -> Vec<InstantEvent> {
        std::mem::take(&mut self.trace.instants)
    }

    /// Device slices seen so far, draining them from the internal trace.
    pub fn take_closed_device(&mut self) -> Vec<DeviceSlice> {
        std::mem::take(&mut self.trace.device)
    }

    /// Feeds one line (without its trailing newline). Malformed lines
    /// are counted — and the first [`MAX_SKIP_REPORT`] located by line
    /// number and byte offset — never fatal.
    pub fn feed_line(&mut self, line: &str) {
        self.next_line_no += 1;
        let line_no = self.next_line_no;
        let line_start = self.byte_offset;
        self.byte_offset += line.len() as u64 + 1;
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.trim().is_empty() {
            return;
        }
        let row = match json::parse(line) {
            Ok(v) => v,
            Err(_) => {
                self.record_skip(line_no, line_start);
                return;
            }
        };
        let name = row.get("name").and_then(JsonValue::as_str).unwrap_or("").to_string();
        let kind = row.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        let ts_ns = row.get("ts_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let tid = row.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let track = row.get("track").and_then(JsonValue::as_str).unwrap_or("host");
        let attrs = attrs_of(&row);

        if name == "telemetry_meta" {
            self.trace.meta = Meta {
                run_epoch_unix_ns: attrs
                    .get("run_epoch")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(0.0) as u64,
                rank: attrs.get("rank").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
                sample_n: attrs.get("sample_n").and_then(JsonValue::as_f64).unwrap_or(1.0)
                    as u64,
                present: true,
            };
            return;
        }
        if track == "host" {
            self.last_ts = self.last_ts.max(ts_ns);
        }

        match kind {
            "B" => {
                let weight = attrs
                    .get("sample_weight")
                    .and_then(JsonValue::as_f64)
                    .filter(|w| *w >= 1.0)
                    .unwrap_or(1.0);
                self.stacks.entry(tid).or_default().push(OpenFrame {
                    name,
                    start_ns: ts_ns,
                    weight,
                    attrs,
                    children_ns: 0,
                });
            }
            "E" => {
                let stack = self.stacks.entry(tid).or_default();
                match stack.iter().rposition(|f| f.name == name) {
                    None => self.trace.orphan_ends += 1,
                    Some(pos) => {
                        // Frames above `pos` lost their own E events: close
                        // them at this timestamp, innermost first.
                        while stack.len() > pos + 1 {
                            close_frame(&mut self.trace, stack, tid, ts_ns, BTreeMap::new(), true);
                        }
                        close_frame(&mut self.trace, stack, tid, ts_ns, attrs, false);
                    }
                }
            }
            "i" => self.trace.instants.push(InstantEvent { name, ts_ns, tid, attrs }),
            "X" => {
                let dur_ns =
                    row.get("dur_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
                self.trace.device.push(DeviceSlice { name, start_ns: ts_ns, dur_ns, attrs });
            }
            _ => self.record_skip(line_no, line_start),
        }
    }

    fn record_skip(&mut self, line_no: u64, byte_offset: u64) {
        self.trace.skipped_lines += 1;
        if self.trace.skipped.len() < MAX_SKIP_REPORT {
            self.trace.skipped.push(SkipRecord { line_no, byte_offset });
        }
    }

    /// Closes still-open frames as truncated, attaches the end-of-stream
    /// warnings, and returns the trace (minus anything already drained).
    pub fn finish(mut self) -> Trace {
        for (&tid, stack) in self.stacks.iter_mut() {
            while !stack.is_empty() {
                close_frame(&mut self.trace, stack, tid, self.last_ts, BTreeMap::new(), true);
            }
        }
        let trace = &mut self.trace;
        if trace.skipped_lines > 0 {
            let mut w = format!(
                "{} malformed line(s) skipped (truncated dump?); first at {}",
                trace.skipped_lines,
                trace
                    .skipped
                    .iter()
                    .map(|s| format!("line {} (byte {})", s.line_no, s.byte_offset))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            if trace.skipped_lines > trace.skipped.len() as u64 {
                w.push_str(", ...");
            }
            trace.warnings.push(w);
        }
        if trace.orphan_ends > 0 {
            trace.warnings.push(format!(
                "{} span end(s) had no matching begin (ring dropped the begins)",
                trace.orphan_ends
            ));
        }
        if trace.truncated_spans > 0 {
            trace.warnings.push(format!(
                "{} span(s) closed without their end event (dropped or truncated)",
                trace.truncated_spans
            ));
        }
        if !trace.meta.present {
            trace.warnings.push(
                "no telemetry_meta header: rank defaults to 0 and clocks cannot be aligned"
                    .to_string(),
            );
        }
        self.trace
    }
}

/// Pops the innermost open frame on `stack` into `trace.spans`.
fn close_frame(
    trace: &mut Trace,
    stack: &mut Vec<OpenFrame>,
    tid: u64,
    end_ns: u64,
    end_attrs: BTreeMap<String, JsonValue>,
    truncated: bool,
) {
    let frame = stack.pop().expect("caller checked non-empty");
    let dur = end_ns.saturating_sub(frame.start_ns);
    if let Some(parent) = stack.last_mut() {
        parent.children_ns += dur;
    }
    let mut attrs = frame.attrs;
    attrs.extend(end_attrs);
    if truncated {
        trace.truncated_spans += 1;
    }
    // Resolve the enclosing burst's compute mode from the open-frame
    // stack (innermost burst wins; the span's own mode if it *is* a
    // burst). Doing this at close time keeps the streaming path free of
    // any need to retain closed bursts.
    let burst_mode = if frame.name == "burst" {
        attrs.get("mode").and_then(JsonValue::as_str).map(str::to_string)
    } else {
        stack
            .iter()
            .rev()
            .find(|f| f.name == "burst")
            .and_then(|f| f.attrs.get("mode"))
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    };
    trace.spans.push(Span {
        name: frame.name,
        tid,
        start_ns: frame.start_ns,
        end_ns,
        stack: stack.iter().map(|f| f.name.clone()).collect(),
        weight: frame.weight,
        attrs,
        self_ns: dur.saturating_sub(frame.children_ns),
        truncated,
        burst_mode,
    });
}

/// Coverage diagnostics combining the ingested stream's own counters with
/// the producer-side drop counters from a `metrics.prom` dump, when one is
/// available next to the trace.
pub fn coverage_warnings(trace: &Trace, metrics_prom: Option<&str>) -> Vec<String> {
    let mut out = trace.warnings.clone();
    if let Some(dump) = metrics_prom {
        for (series, what) in [
            ("telemetry_dropped_events", "sink ring dropped event(s)"),
            ("telemetry_truncated_attrs", "attribute(s) were truncated"),
            ("mkl_verbose_dropped_records", "verbose call record(s) dropped"),
        ] {
            if let Some(v) = prom_value(dump, series) {
                if v > 0.0 {
                    out.push(format!(
                        "producer reported {v} {what} ({series}); totals underestimate the run"
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(seq: u64, kind: &str, name: &str, ts: u64, extra: &str) -> String {
        format!(
            "{{\"seq\":{seq},\"ts_ns\":{ts},\"kind\":\"{kind}\",\"name\":\"{name}\",\
             \"track\":\"host\",\"tid\":0,\"args\":{{{extra}}}}}"
        )
    }

    #[test]
    fn balanced_stream_reconstructs_forest() {
        let text = [
            line(0, "B", "burst", 0, "\"mode\":\"STANDARD\""),
            line(1, "B", "qd_step", 10, ""),
            line(2, "B", "CGEMM", 20, "\"m\":8"),
            line(3, "E", "CGEMM", 30, "\"wall_s\":0.5"),
            line(4, "E", "qd_step", 90, ""),
            line(5, "E", "burst", 100, ""),
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans.len(), 3);
        let gemm = t.spans_named("CGEMM").next().unwrap();
        assert_eq!(gemm.stack, vec!["burst".to_string(), "qd_step".to_string()]);
        assert_eq!(gemm.dur_ns(), 10);
        assert_eq!(gemm.attr_f64("m"), Some(8.0));
        assert_eq!(gemm.attr_f64("wall_s"), Some(0.5), "end attrs merged in");
        let step = t.spans_named("qd_step").next().unwrap();
        assert_eq!(step.self_ns, 80 - 10, "self excludes the CGEMM child");
        let burst = t.spans_named("burst").next().unwrap();
        assert_eq!(burst.self_ns, 100 - 80);
        assert_eq!(t.truncated_spans, 0);
        assert!(t.warnings.iter().any(|w| w.contains("telemetry_meta")), "{:?}", t.warnings);
    }

    #[test]
    fn truncated_tail_closes_open_spans() {
        let text = [
            line(0, "B", "burst", 0, ""),
            line(1, "B", "qd_step", 10, ""),
            "{\"seq\":2,\"ts_ns\":20,\"ki".to_string(), // torn final line
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.skipped_lines, 1);
        assert_eq!(t.spans.len(), 2);
        assert!(t.spans.iter().all(|s| s.truncated));
        assert!(t.spans.iter().all(|s| s.end_ns == 10), "closed at last seen ts");
    }

    #[test]
    fn dropped_begin_counts_orphan_end() {
        let text = [line(5, "E", "CGEMM", 50, ""), line(6, "B", "x", 60, ""), line(7, "E", "x", 70, "")]
            .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.orphan_ends, 1);
        assert_eq!(t.spans.len(), 1);
    }

    #[test]
    fn dropped_end_recovers_via_outer_close() {
        // CGEMM's E was dropped; qd_step's E closes both.
        let text = [
            line(0, "B", "qd_step", 0, ""),
            line(1, "B", "CGEMM", 10, ""),
            line(2, "E", "qd_step", 40, ""),
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans.len(), 2);
        let gemm = t.spans_named("CGEMM").next().unwrap();
        assert!(gemm.truncated);
        assert_eq!(gemm.end_ns, 40);
        let step = t.spans_named("qd_step").next().unwrap();
        assert!(!step.truncated);
        assert_eq!(t.truncated_spans, 1);
    }

    #[test]
    fn meta_line_populates_meta() {
        let meta = "{\"seq\":0,\"ts_ns\":0,\"kind\":\"i\",\"name\":\"telemetry_meta\",\
                    \"track\":\"host\",\"tid\":0,\"args\":{\"run_epoch\":123456,\"rank\":3,\
                    \"sample_n\":16}}";
        let t = ingest_jsonl(meta);
        assert!(t.meta.present);
        assert_eq!(t.meta.run_epoch_unix_ns, 123_456);
        assert_eq!(t.meta.rank, 3);
        assert_eq!(t.meta.sample_n, 16);
        assert!(t.warnings.is_empty());
    }

    #[test]
    fn sample_weight_lands_on_span() {
        let text = [
            line(0, "B", "CGEMM", 0, "\"sample_weight\":16"),
            line(1, "E", "CGEMM", 10, ""),
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans[0].weight, 16.0);
    }

    #[test]
    fn zero_length_span_is_kept() {
        let text = [line(0, "B", "noop", 5, ""), line(1, "E", "noop", 5, "")].join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].dur_ns(), 0);
        assert_eq!(t.spans[0].self_ns, 0);
    }

    #[test]
    fn skip_report_locates_malformed_lines() {
        let good = line(0, "B", "burst", 0, "");
        let bad1 = "not json at all";
        let good2 = line(1, "E", "burst", 10, "");
        let bad2 = "{torn";
        let text = [good.as_str(), bad1, good2.as_str(), bad2].join("\n");
        let t = ingest_jsonl(&text);
        assert_eq!(t.skipped_lines, 2);
        assert_eq!(
            t.skipped,
            vec![
                SkipRecord { line_no: 2, byte_offset: good.len() as u64 + 1 },
                SkipRecord {
                    line_no: 4,
                    byte_offset: (good.len() + 1 + bad1.len() + 1 + good2.len() + 1) as u64,
                },
            ]
        );
        let w = t.warnings.iter().find(|w| w.contains("malformed")).unwrap();
        assert!(w.contains("line 2 (byte"), "{w}");
        assert!(w.contains("line 4 (byte"), "{w}");
        assert!(!w.contains(", ..."), "all offenders listed: {w}");
    }

    #[test]
    fn skip_report_caps_at_max() {
        let text: Vec<String> = (0..MAX_SKIP_REPORT + 3).map(|i| format!("junk {i}")).collect();
        let t = ingest_jsonl(&text.join("\n"));
        assert_eq!(t.skipped_lines, (MAX_SKIP_REPORT + 3) as u64);
        assert_eq!(t.skipped.len(), MAX_SKIP_REPORT);
        let w = t.warnings.iter().find(|w| w.contains("malformed")).unwrap();
        assert!(w.ends_with(", ..."), "overflow marker present: {w}");
    }

    #[test]
    fn streaming_drains_match_batch() {
        let text = [
            line(0, "B", "burst", 0, "\"mode\":\"BF16X2\""),
            line(1, "B", "CGEMM", 10, "\"m\":8"),
            line(2, "E", "CGEMM", 30, ""),
            line(3, "i", "escalation", 40, ""),
            line(4, "E", "burst", 100, ""),
            line(5, "B", "qd_step", 110, ""), // left open: truncated
        ]
        .join("\n");
        let batch = ingest_jsonl(&text);

        let mut ing = StreamingIngester::new();
        let mut spans = Vec::new();
        let mut instants = Vec::new();
        for l in text.lines() {
            ing.feed_line(l);
            // Drain after every line — the harshest bounded-memory mode.
            spans.extend(ing.take_closed_spans());
            instants.extend(ing.take_closed_instants());
        }
        let tail = ing.finish();
        spans.extend(tail.spans);
        instants.extend(tail.instants);

        assert_eq!(spans.len(), batch.spans.len());
        for (a, b) in spans.iter().zip(&batch.spans) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.start_ns, b.start_ns);
            assert_eq!(a.end_ns, b.end_ns);
            assert_eq!(a.self_ns, b.self_ns);
            assert_eq!(a.stack, b.stack);
            assert_eq!(a.truncated, b.truncated);
            assert_eq!(a.burst_mode, b.burst_mode);
        }
        assert_eq!(instants.len(), batch.instants.len());
        assert_eq!(tail.warnings, batch.warnings);
    }

    #[test]
    fn burst_mode_resolves_from_open_stack() {
        let text = [
            line(0, "B", "burst", 0, "\"mode\":\"BF16X2\""),
            line(1, "B", "qd_step", 5, ""),
            line(2, "B", "qd_propagate", 10, ""),
            line(3, "E", "qd_propagate", 20, ""),
            line(4, "E", "qd_step", 25, ""),
            line(5, "E", "burst", 30, ""),
            line(6, "B", "orphan_phase", 40, ""),
            line(7, "E", "orphan_phase", 50, ""),
        ]
        .join("\n");
        let t = ingest_jsonl(&text);
        let prop = t.spans_named("qd_propagate").next().unwrap();
        assert_eq!(prop.burst_mode.as_deref(), Some("BF16X2"));
        let burst = t.spans_named("burst").next().unwrap();
        assert_eq!(burst.burst_mode.as_deref(), Some("BF16X2"), "a burst carries its own mode");
        let orphan = t.spans_named("orphan_phase").next().unwrap();
        assert_eq!(orphan.burst_mode, None, "no enclosing burst");
    }

    #[test]
    fn prom_value_reads_series() {
        let dump = "# HELP x y\n# TYPE x gauge\ntelemetry_dropped_events 42\nother 7\n";
        assert_eq!(prom_value(dump, "telemetry_dropped_events"), Some(42.0));
        assert_eq!(prom_value(dump, "missing"), None);
        let t = ingest_jsonl("");
        let warns = coverage_warnings(&t, Some(dump));
        assert!(warns.iter().any(|w| w.contains("sink ring dropped")), "{warns:?}");
    }
}

//! `dcmesh-profile`: trace analysis over the dcmesh telemetry stream.
//!
//! The telemetry crate records; this crate answers questions. It turns an
//! `events.jsonl` dump (written by `dcmesh-telemetry`'s JSONL exporter)
//! into the three artefacts the paper builds its performance story from:
//!
//! * **Flamegraphs** ([`fold`], [`flame`]) — collapsed-stack folding of
//!   the span forest (`burst;qd_step;CGEMM 1234`) with per-precision-mode
//!   and per-shape grouping, rendered to a self-contained SVG or an ANSI
//!   terminal view — the Figure 3 cost-breakdown picture.
//! * **Attribution tables** ([`table`]) — per-(routine, mode, shape)
//!   mean wall and modelled device times with speedups against the FP32
//!   baseline — the Tables VI/VII shape.
//! * **Merged multi-rank traces** ([`merge`]) — several ranks' dumps
//!   joined into one Chrome trace with per-rank pids, clock-aligned via
//!   the shared `run_epoch` stamped in each stream's `telemetry_meta`
//!   header.
//! * **Differential flamegraphs** ([`diff`]) — two traces compared
//!   frame by frame in the red/blue convention (red = grew, blue =
//!   shrank): the before/after view for compute-mode switches and
//!   kernel changes.
//! * **Live watch** ([`watch`]) — tail `events*.jsonl` streams mid-run
//!   (single-process or one per shard rank) and render the merged
//!   per-(callsite, shape, mode) precision ledger as it evolves, with
//!   an optional Prometheus scrape file.
//! * **Run archive** ([`archive`]) — fold a finished run directory's
//!   precision ledger, shard manifest, and run report into one line of
//!   an append-only `runs.jsonl`, keyed by a content-hashed run id so
//!   re-archiving is idempotent.
//! * **Regression sentinel** ([`trend`]) — per-(callsite, shape, mode)
//!   baselines over the archive with median/MAD robust statistics;
//!   flags wall-time, time-misfit, escalation-rate, and
//!   residual-histogram-shift regressions, renders ANSI sparkline and
//!   SVG reports, and exits nonzero for CI.
//! * **Offline precision advisor** ([`advise`]) — joins archived
//!   ledger evidence against the `XeStackModel` roofline to emit a
//!   per-callsite recommended-mode plan (`advice.json`) with predicted
//!   cost and error-budget headroom.
//!
//! Ingestion ([`ingest`]) is deliberately forgiving: ring-dropped events
//! and truncated tails degrade into counted warnings, not errors, and
//! `sample_weight` attributes from span-aware sampling rescale every
//! downstream total so sampled and full traces are comparable. It is
//! also streaming-first: [`ingest::StreamingIngester`] folds a stream
//! line by line in memory bounded by the open-span depth, and the batch
//! [`ingest_jsonl`] is a thin wrapper over it, so batch and `--stream`
//! outputs are bit-identical by construction.
//!
//! The `profile` binary in this crate exposes all of it as a CLI:
//! `profile flame`, `profile table`, `profile merge`, `profile fold`,
//! `profile diff`, `profile watch`, `profile synth`, `profile archive`,
//! `profile trend`, `profile advise`.

pub mod advise;
pub mod archive;
pub mod diff;
pub mod flame;
pub mod fold;
pub mod ingest;
pub mod merge;
pub mod table;
pub mod trend;
pub mod watch;

pub use advise::{advise, advice_json, Advice, CallsiteAdvice};
pub use archive::{append as archive_append, collect_run, read_archive, RunRecord};
pub use diff::{build_diff_tree, render_diff_ansi, render_diff_svg, to_collapsed_diff, DiffFrame};
pub use flame::{build_tree, render_ansi, render_svg, Frame};
pub use fold::{fold, FoldOptions, Folded};
pub use ingest::{coverage_warnings, ingest_jsonl, Meta, Span, StreamingIngester, Trace};
pub use merge::merge_jsonl;
pub use table::{gemm_table, gemm_table_json, phase_table, CallRow, PhaseRow, TableAccum};
pub use watch::{WatchLedger, WatchSession};

//! The regression sentinel: per-(callsite, shape-class, mode) baselines
//! across archived runs, with robust statistics and CI exit semantics.
//!
//! For every key present in at least two archived runs the sentinel
//! compares the **newest** run against the median/MAD of all prior
//! runs (robust to one historic outlier — a single bad run does not
//! poison the baseline the way a mean would):
//!
//! * **wall-time** — newest wall seconds *per call* beyond 1.5× the
//!   prior median AND 4 scaled-MADs above it (both conditions, so a
//!   noisy-but-flat series is not flagged on variance alone);
//! * **time-misfit** — same rule on observed/modelled seconds: the
//!   kernel got slower *relative to the roofline model*, the signature
//!   of a software regression rather than a bigger problem size;
//! * **escalation-rate** — newest per-run escalation count at least
//!   `max(1, 4·MAD)` above the prior median: a run that newly needs
//!   stronger precision is flagged even when the absolute counts are
//!   tiny (the floor of 1 keeps a 0→1 step visible);
//! * **residual-shift** — the residual histogram's weighted-mean decade
//!   moved a full decade up from the prior median: accuracy decayed
//!   even if nothing escalated yet.
//!
//! The `BENCH_gemm.json` `history` array joins the same machinery as
//! synthetic per-mode groups, so nightly host-perf history is watched
//! by the same thresholds.
//!
//! Reports render as ANSI text with Unicode sparklines or as a
//! self-contained SVG; the CLI exits 1 when any regression is flagged
//! (2 on usage/IO errors), so CI can gate on it directly.

use crate::archive::RunRecord;
use dcmesh_telemetry::json::{self, JsonValue};
use std::collections::BTreeMap;

/// Newest/median ratio beyond which wall-per-call and misfit count as
/// regressed (combined with the MAD condition below).
pub const RATIO_THRESHOLD: f64 = 1.5;
/// How many scaled MADs above the prior median the newest sample must
/// sit (MAD × 1.4826 estimates σ for normal noise).
pub const MAD_K: f64 = 4.0;
const MAD_SCALE: f64 = 1.4826;
/// Decades the residual-histogram center must rise to count as shifted.
pub const RESIDUAL_SHIFT_DECADES: f64 = 1.0;

/// One key's longitudinal series across the archive, oldest first.
/// Only runs in which the key appears contribute a sample.
#[derive(Clone, Debug)]
pub struct TrendGroup {
    /// Callsite ID.
    pub callsite: String,
    /// Shape class.
    pub shape: String,
    /// Compute-mode label.
    pub mode: String,
    /// Run ids contributing samples, aligned with the series below.
    pub run_ids: Vec<String>,
    /// Wall seconds per call.
    pub wall_per_call: Vec<f64>,
    /// Observed/modelled time misfit (`None` when no device sample).
    pub misfit: Vec<Option<f64>>,
    /// Escalations attributed to the key, per run.
    pub escalations: Vec<f64>,
    /// Residual-histogram weighted-mean decade (`None` when empty).
    pub residual_center: Vec<Option<f64>>,
}

/// What regressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegressionKind {
    /// Wall seconds per call grew.
    WallTime,
    /// Observed/modelled misfit grew.
    TimeMisfit,
    /// Escalation count stepped up.
    EscalationRate,
    /// Residual histogram shifted toward larger errors.
    ResidualShift,
}

impl RegressionKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RegressionKind::WallTime => "wall-time",
            RegressionKind::TimeMisfit => "time-misfit",
            RegressionKind::EscalationRate => "escalation-rate",
            RegressionKind::ResidualShift => "residual-shift",
        }
    }
}

/// One flagged regression.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Callsite ID.
    pub callsite: String,
    /// Shape class.
    pub shape: String,
    /// Compute-mode label.
    pub mode: String,
    /// Which metric regressed.
    pub kind: RegressionKind,
    /// Prior-runs median of the metric.
    pub baseline: f64,
    /// Newest run's value.
    pub newest: f64,
}

/// Median of a non-empty slice (midpoint average for even lengths).
pub fn median(values: &[f64]) -> f64 {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in series"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Median absolute deviation around the median.
pub fn mad(values: &[f64]) -> f64 {
    let m = median(values);
    let dev: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&dev)
}

/// Weighted-mean bucket decade of a residual histogram: the scalar
/// "center of mass" the residual-shift rule compares across runs.
/// Bucket `i` has upper bound `1e(i-12)`; the overflow bucket counts as
/// one decade above the last finite one.
fn residual_center(h: &dcmesh_telemetry::ledger::ResidualHist) -> Option<f64> {
    if h.count == 0 {
        return None;
    }
    let total: u64 = h.buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let weighted: f64 = h
        .buckets
        .iter()
        .enumerate()
        .map(|(i, &n)| i as f64 * n as f64)
        .sum();
    Some(weighted / total as f64)
}

/// Folds archived runs (append order — oldest first) into per-key
/// longitudinal groups.
pub fn build_groups(records: &[RunRecord]) -> Vec<TrendGroup> {
    let mut groups: BTreeMap<(String, String, String), TrendGroup> = BTreeMap::new();
    for rec in records {
        for row in &rec.entries {
            if row.stats.calls == 0 && row.stats.escalations == 0 && row.stats.residuals.count == 0
            {
                continue;
            }
            let key = (row.callsite.clone(), row.shape.clone(), row.mode.clone());
            let g = groups.entry(key).or_insert_with(|| TrendGroup {
                callsite: row.callsite.clone(),
                shape: row.shape.clone(),
                mode: row.mode.clone(),
                run_ids: Vec::new(),
                wall_per_call: Vec::new(),
                misfit: Vec::new(),
                escalations: Vec::new(),
                residual_center: Vec::new(),
            });
            g.run_ids.push(rec.run_id.clone());
            g.wall_per_call.push(if row.stats.calls > 0 {
                row.stats.wall_s / row.stats.calls as f64
            } else {
                0.0
            });
            g.misfit.push(row.stats.time_misfit());
            g.escalations.push(row.stats.escalations as f64);
            g.residual_center.push(residual_center(&row.stats.residuals));
        }
    }
    groups.into_values().collect()
}

/// The ratio+MAD rule shared by wall-time and misfit: newest beyond
/// `RATIO_THRESHOLD`× the prior median AND `MAD_K` scaled MADs above it.
fn ratio_mad_regressed(priors: &[f64], newest: f64) -> Option<f64> {
    if priors.is_empty() {
        return None;
    }
    let m = median(priors);
    if m <= 0.0 {
        return None;
    }
    let sigma = MAD_SCALE * mad(priors);
    (newest > m * RATIO_THRESHOLD && newest > m + MAD_K * sigma).then_some(m)
}

/// Flags regressions in the newest run of every group with at least
/// one prior sample.
pub fn detect(groups: &[TrendGroup]) -> Vec<Regression> {
    let mut out = Vec::new();
    for g in groups {
        let n = g.wall_per_call.len();
        if n < 2 {
            continue;
        }
        let mut flag = |kind, baseline, newest| {
            out.push(Regression {
                callsite: g.callsite.clone(),
                shape: g.shape.clone(),
                mode: g.mode.clone(),
                kind,
                baseline,
                newest,
            })
        };

        let (priors, newest) = g.wall_per_call.split_at(n - 1);
        if newest[0] > 0.0 {
            if let Some(m) = ratio_mad_regressed(priors, newest[0]) {
                flag(RegressionKind::WallTime, m, newest[0]);
            }
        }

        let misfits: Vec<f64> = g.misfit[..n - 1].iter().copied().flatten().collect();
        if let Some(newest_misfit) = g.misfit[n - 1] {
            if let Some(m) = ratio_mad_regressed(&misfits, newest_misfit) {
                flag(RegressionKind::TimeMisfit, m, newest_misfit);
            }
        }

        let (esc_priors, esc_newest) = g.escalations.split_at(n - 1);
        let em = median(esc_priors);
        let floor = (MAD_K * MAD_SCALE * mad(esc_priors)).max(1.0);
        if esc_newest[0] >= em + floor {
            flag(RegressionKind::EscalationRate, em, esc_newest[0]);
        }

        let centers: Vec<f64> = g.residual_center[..n - 1].iter().copied().flatten().collect();
        if let (Some(newest_c), false) = (g.residual_center[n - 1], centers.is_empty()) {
            let cm = median(&centers);
            if newest_c >= cm + RESIDUAL_SHIFT_DECADES {
                flag(RegressionKind::ResidualShift, cm, newest_c);
            }
        }
    }
    out
}

/// Parses `BENCH_gemm.json`'s dated `history` array into synthetic
/// trend groups (`bench/<series>` callsites, one mode per group), so
/// the nightly host-perf history rides the same sentinel.
pub fn bench_history_groups(bench_json: &str) -> Result<Vec<TrendGroup>, String> {
    let doc = json::parse(bench_json).map_err(|e| format!("BENCH json does not parse: {e}"))?;
    let Some(history) = doc.get("history").and_then(JsonValue::as_array) else {
        return Ok(Vec::new());
    };
    // (series, mode) -> (dates, values)
    let mut groups: BTreeMap<(String, String), (Vec<String>, Vec<f64>)> = BTreeMap::new();
    for entry in history {
        let date = entry
            .get("date")
            .and_then(JsonValue::as_str)
            .unwrap_or("-")
            .to_string();
        let JsonValue::Object(members) = entry else { continue };
        for (key, val) in members {
            let Some(series) = key.strip_suffix("_ns_per_call") else { continue };
            let JsonValue::Object(modes) = val else { continue };
            for (mode, ns) in modes {
                if let Some(ns) = ns.as_f64() {
                    let g = groups
                        .entry((series.to_string(), mode.clone()))
                        .or_default();
                    g.0.push(date.clone());
                    g.1.push(ns * 1e-9);
                }
            }
        }
    }
    Ok(groups
        .into_iter()
        .map(|((series, mode), (dates, secs))| {
            let len = secs.len();
            TrendGroup {
                callsite: format!("bench/{series}"),
                shape: "-".to_string(),
                mode,
                run_ids: dates,
                wall_per_call: secs,
                misfit: vec![None; len],
                escalations: vec![0.0; len],
                residual_center: vec![None; len],
            }
        })
        .collect())
}

const SPARK_CHARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a numeric series as a Unicode sparkline (min→max scaled).
pub fn sparkline(values: &[f64]) -> String {
    if values.is_empty() {
        return String::new();
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            let t = ((v - lo) / span * 7.0).round() as usize;
            SPARK_CHARS[t.min(7)]
        })
        .collect()
}

/// Renders the ANSI trend report: every multi-run group with its
/// wall-per-call sparkline, regressions flagged inline in red.
pub fn render_report(groups: &[TrendGroup], regressions: &[Regression]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "dcmesh trend sentinel — {} group(s), {} regression(s)\n",
        groups.iter().filter(|g| g.wall_per_call.len() >= 2).count(),
        regressions.len()
    ));
    out.push_str(&format!(
        "{:<34} {:>20} {:<16} {:>5} {:>12} {:<14} {}\n",
        "CALLSITE", "SHAPE", "MODE", "RUNS", "WALL/CALL", "SPARK", "FLAGS"
    ));
    for g in groups {
        let n = g.wall_per_call.len();
        if n < 2 {
            continue;
        }
        let flags: Vec<String> = regressions
            .iter()
            .filter(|r| r.callsite == g.callsite && r.shape == g.shape && r.mode == g.mode)
            .map(|r| {
                format!(
                    "\x1b[31m{}: {:.3} -> {:.3}\x1b[0m",
                    r.kind.label(),
                    r.baseline,
                    r.newest
                )
            })
            .collect();
        out.push_str(&format!(
            "{:<34} {:>20} {:<16} {:>5} {:>12.3e} {:<14} {}\n",
            g.callsite,
            g.shape,
            g.mode,
            n,
            g.wall_per_call[n - 1],
            sparkline(&g.wall_per_call),
            flags.join("  ")
        ));
    }
    for r in regressions {
        out.push_str(&format!(
            "REGRESSION {} at {} {} {}: baseline {:.4} newest {:.4}\n",
            r.kind.label(),
            r.callsite,
            r.shape,
            r.mode,
            r.baseline,
            r.newest
        ));
    }
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders a self-contained SVG trend report: one sparkline polyline
/// per multi-run group, flagged groups drawn in red with their
/// regression labels.
pub fn render_svg(groups: &[TrendGroup], regressions: &[Regression]) -> String {
    let rows: Vec<&TrendGroup> = groups.iter().filter(|g| g.wall_per_call.len() >= 2).collect();
    let row_h = 26.0;
    let label_w = 560.0;
    let spark_w = 260.0;
    let width = label_w + spark_w + 20.0;
    let height = 40.0 + rows.len() as f64 * row_h;
    let mut out = format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         font-family=\"monospace\" font-size=\"12\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n\
         <text x=\"10\" y=\"20\" font-size=\"14\">dcmesh trend sentinel — {} regression(s)</text>\n",
        regressions.len()
    );
    for (i, g) in rows.iter().enumerate() {
        let y = 40.0 + i as f64 * row_h;
        let flagged: Vec<&Regression> = regressions
            .iter()
            .filter(|r| r.callsite == g.callsite && r.shape == g.shape && r.mode == g.mode)
            .collect();
        let color = if flagged.is_empty() { "#2a6fdb" } else { "#cc2222" };
        let flags = if flagged.is_empty() {
            String::new()
        } else {
            let kinds: Vec<&str> = flagged.iter().map(|r| r.kind.label()).collect();
            format!(" [{}]", kinds.join(","))
        };
        out.push_str(&format!(
            "<text x=\"10\" y=\"{:.0}\" fill=\"{color}\">{}</text>\n",
            y + 14.0,
            xml_escape(&format!("{} {} {}{}", g.callsite, g.shape, g.mode, flags))
        ));
        // Polyline over the series, min→max normalised into the row box.
        let vals = &g.wall_per_call;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in vals {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let pts: Vec<String> = vals
            .iter()
            .enumerate()
            .map(|(j, &v)| {
                let x = label_w
                    + spark_w * (j as f64 / (vals.len() - 1).max(1) as f64);
                let py = y + 18.0 - 14.0 * ((v - lo) / span);
                format!("{x:.1},{py:.1}")
            })
            .collect();
        out.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
            pts.join(" ")
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::RunRecord;
    use dcmesh_telemetry::ledger::{ResidualHist, Stats};

    fn record(run_id: &str, rows: Vec<(&str, u64, f64, u64)>) -> RunRecord {
        // rows: (callsite, calls, wall_s, escalations)
        RunRecord {
            run_id: run_id.to_string(),
            deck_hash: "0x0".to_string(),
            ranks: 1,
            domains: 0,
            mode_policy: "FLOAT_TO_BF16".to_string(),
            telemetry_level: "full".to_string(),
            sample_period: 1,
            elapsed_ms: 0,
            restarts: 0,
            heartbeat_misses: 0,
            escalations: rows.iter().map(|r| r.3).sum(),
            sdc_recoveries: 0,
            source: "-".to_string(),
            entries: rows
                .into_iter()
                .map(|(cs, calls, wall, esc)| dcmesh_telemetry::ledger::Row {
                    callsite: cs.to_string(),
                    shape: "128x128x128".to_string(),
                    mode: "FLOAT_TO_BF16".to_string(),
                    stats: Stats {
                        calls,
                        wall_s: wall,
                        escalations: esc,
                        ..Stats::default()
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn planted_slowdown_flags_exactly_that_callsite() {
        // Two runs; md/cgemm slows 3x in the second, md/sgemm stays flat.
        let runs = vec![
            record("run1", vec![("md/cgemm", 100, 1.0, 0), ("md/sgemm", 100, 2.0, 0)]),
            record("run2", vec![("md/cgemm", 100, 3.0, 0), ("md/sgemm", 100, 2.0, 0)]),
        ];
        let groups = build_groups(&runs);
        let regs = detect(&groups);
        let wall: Vec<&Regression> =
            regs.iter().filter(|r| r.kind == RegressionKind::WallTime).collect();
        assert_eq!(wall.len(), 1, "{regs:?}");
        assert_eq!(wall[0].callsite, "md/cgemm");
        assert!((wall[0].newest / wall[0].baseline - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_to_one_escalation_step_is_flagged() {
        let runs = vec![
            record("clean", vec![("md/cgemm", 100, 1.0, 0)]),
            record("fault", vec![("md/cgemm", 100, 1.0, 1)]),
        ];
        let regs = detect(&build_groups(&runs));
        assert!(
            regs.iter()
                .any(|r| r.kind == RegressionKind::EscalationRate && r.callsite == "md/cgemm"),
            "{regs:?}"
        );
    }

    #[test]
    fn flat_series_is_not_flagged() {
        let runs = vec![
            record("a", vec![("md/cgemm", 100, 1.00, 0)]),
            record("b", vec![("md/cgemm", 100, 1.02, 0)]),
            record("c", vec![("md/cgemm", 100, 0.99, 0)]),
            record("d", vec![("md/cgemm", 100, 1.01, 0)]),
        ];
        assert!(detect(&build_groups(&runs)).is_empty());
    }

    #[test]
    fn robust_baseline_survives_one_historic_outlier() {
        // One freak-slow historic run must not raise the baseline enough
        // to hide a real 3x regression against the typical value.
        let runs = vec![
            record("a", vec![("md/cgemm", 100, 1.0, 0)]),
            record("freak", vec![("md/cgemm", 100, 40.0, 0)]),
            record("c", vec![("md/cgemm", 100, 1.0, 0)]),
            record("d", vec![("md/cgemm", 100, 1.1, 0)]),
            record("bad", vec![("md/cgemm", 100, 3.0, 0)]),
        ];
        let regs = detect(&build_groups(&runs));
        assert!(
            regs.iter().any(|r| r.kind == RegressionKind::WallTime),
            "median/MAD baseline should still catch the 3x step: {regs:?}"
        );
    }

    #[test]
    fn residual_shift_detected() {
        let mk = |exp: i32| {
            let mut h = ResidualHist::default();
            for _ in 0..50 {
                h.observe(10f64.powi(exp));
            }
            let mut rec = record("r", vec![]);
            rec.entries.push(dcmesh_telemetry::ledger::Row {
                callsite: "md/cgemm".to_string(),
                shape: "64x64x64".to_string(),
                mode: "FLOAT_TO_BF16".to_string(),
                stats: Stats { abft_checks: 50, residuals: h, ..Stats::default() },
            });
            rec
        };
        let mut a = mk(-8);
        a.run_id = "a".to_string();
        let mut b = mk(-5);
        b.run_id = "b".to_string();
        let regs = detect(&build_groups(&[a, b]));
        assert!(
            regs.iter().any(|r| r.kind == RegressionKind::ResidualShift),
            "3-decade shift should flag: {regs:?}"
        );
    }

    #[test]
    fn bench_history_parses_into_groups() {
        let text = r#"{
            "history": [
                {"date":"2026-08-06","hit_ratio":0.98,
                 "sgemm_128x1920_ns_per_call":{"STANDARD":100.0,"FLOAT_TO_BF16X2":190.0}},
                {"date":"2026-08-07","hit_ratio":0.98,
                 "sgemm_128x1920_ns_per_call":{"STANDARD":102.0,"FLOAT_TO_BF16X2":500.0}}
            ]
        }"#;
        let groups = bench_history_groups(text).expect("parses");
        assert_eq!(groups.len(), 2);
        let x2 = groups
            .iter()
            .find(|g| g.mode == "FLOAT_TO_BF16X2")
            .expect("x2 group");
        assert_eq!(x2.callsite, "bench/sgemm_128x1920");
        assert_eq!(x2.wall_per_call.len(), 2);
        let regs = detect(&groups);
        assert!(
            regs.iter()
                .any(|r| r.kind == RegressionKind::WallTime && r.mode == "FLOAT_TO_BF16X2"),
            "2.6x bench step should flag: {regs:?}"
        );
        assert!(!regs.iter().any(|r| r.mode == "STANDARD"), "{regs:?}");
    }

    #[test]
    fn sparkline_and_reports_render() {
        let runs = vec![
            record("a", vec![("md/cgemm", 100, 1.0, 0)]),
            record("b", vec![("md/cgemm", 100, 3.0, 1)]),
        ];
        let groups = build_groups(&runs);
        let regs = detect(&groups);
        assert!(!regs.is_empty());
        let spark = sparkline(&[1.0, 2.0, 3.0]);
        assert_eq!(spark.chars().count(), 3);
        let report = render_report(&groups, &regs);
        assert!(report.contains("md/cgemm"), "{report}");
        assert!(report.contains("REGRESSION"), "{report}");
        let svg = render_svg(&groups, &regs);
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("polyline"), "{svg}");
        assert!(svg.contains("md/cgemm"), "{svg}");
    }
}

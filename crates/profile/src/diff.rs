//! Differential (red/blue) flamegraphs: two folded profiles compared
//! frame by frame.
//!
//! The classic before/after question — "which frames got slower when we
//! switched compute modes / changed the kernel?" — answered in the
//! Brendan Gregg differential-flamegraph convention: the layout (frame
//! widths) comes from the **test** profile, while the colour encodes the
//! per-frame change against the **base** profile. Red = the frame grew
//! (regression), blue = it shrank (improvement), near-white = unchanged.
//! Intensity scales with the delta's share of the largest observed
//! delta, on a square-root ramp so small-but-real changes stay visible.
//!
//! Frames present only in the base (they vanished entirely) have zero
//! width in the test layout and therefore do not appear in the SVG —
//! the standard limitation of the layout-from-test convention. The ANSI
//! renderer and the two-count collapsed output show them regardless, so
//! no delta is silently dropped.
//!
//! The two-count collapsed text ([`to_collapsed_diff`]) is the
//! `difffolded.pl` format (`stack base_ns test_ns`), consumable by the
//! external flamegraph toolchain as well.

use crate::flame::Frame;
use crate::fold::Folded;
use std::collections::BTreeMap;

/// One node of the differential flame tree: the union of both profiles'
/// stacks, carrying totals from each side.
#[derive(Clone, Debug, Default)]
pub struct DiffFrame {
    /// Frame label.
    pub name: String,
    /// Weighted self nanoseconds in the base profile.
    pub base_self_ns: f64,
    /// Weighted self nanoseconds in the test profile.
    pub test_self_ns: f64,
    /// Inclusive nanoseconds in the base profile.
    pub base_total_ns: f64,
    /// Inclusive nanoseconds in the test profile.
    pub test_total_ns: f64,
    /// Child frames by label (union of both sides).
    pub children: BTreeMap<String, DiffFrame>,
}

impl DiffFrame {
    /// Signed inclusive change, test − base (positive = regression).
    pub fn delta_ns(&self) -> f64 {
        self.test_total_ns - self.base_total_ns
    }

    /// Depth of the subtree rooted here (a leaf is 1).
    pub fn depth(&self) -> usize {
        1 + self.children.values().map(DiffFrame::depth).max().unwrap_or(0)
    }

    /// Largest |delta| in the subtree — the colour normaliser.
    fn max_abs_delta(&self) -> f64 {
        self.children
            .values()
            .map(DiffFrame::max_abs_delta)
            .fold(self.delta_ns().abs(), f64::max)
    }
}

fn add_side(root: &mut DiffFrame, folded: &Folded, test_side: bool) {
    for (stack, ns) in &folded.lines {
        let mut node = &mut *root;
        if test_side {
            node.test_total_ns += ns;
        } else {
            node.base_total_ns += ns;
        }
        for part in stack.split(';') {
            node = node
                .children
                .entry(part.to_string())
                .or_insert_with(|| DiffFrame { name: part.to_string(), ..Default::default() });
            if test_side {
                node.test_total_ns += ns;
            } else {
                node.base_total_ns += ns;
            }
        }
        if test_side {
            node.test_self_ns += ns;
        } else {
            node.base_self_ns += ns;
        }
    }
}

/// Builds the union flame tree of two folded sets. The returned root is
/// the synthetic `all` frame; its two totals are the two grand totals.
pub fn build_diff_tree(base: &Folded, test: &Folded) -> DiffFrame {
    let mut root = DiffFrame { name: "all".to_string(), ..Default::default() };
    add_side(&mut root, base, false);
    add_side(&mut root, test, true);
    root
}

/// The test-side frame tree of a diff (same shape as [`Frame`]), for
/// callers wanting the plain flame view of the test profile.
pub fn test_tree(root: &DiffFrame) -> Frame {
    Frame {
        name: root.name.clone(),
        self_ns: root.test_self_ns,
        total_ns: root.test_total_ns,
        children: root
            .children
            .values()
            .filter(|c| c.test_total_ns > 0.0)
            .map(|c| (c.name.clone(), test_tree(c)))
            .collect(),
    }
}

/// White→red for regressions, white→blue for improvements, on a
/// square-root intensity ramp.
fn diff_color(delta: f64, max_abs: f64) -> (u8, u8, u8) {
    if max_abs <= 0.0 || delta == 0.0 {
        return (245, 245, 245);
    }
    let t = (delta.abs() / max_abs).clamp(0.0, 1.0).sqrt();
    if delta > 0.0 {
        (250 - (30.0 * t) as u8, 250 - (195.0 * t) as u8, 250 - (205.0 * t) as u8)
    } else {
        (250 - (190.0 * t) as u8, 250 - (155.0 * t) as u8, 250 - (30.0 * t) as u8)
    }
}

const ROW_H: f64 = 17.0;
const WIDTH: f64 = 1200.0;
const PAD: f64 = 10.0;
const CHAR_W: f64 = 7.2;

fn svg_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// `+1.234 ms (+5.6%)`-style delta description; the percentage is
/// relative to the base (absent when the frame is new).
fn delta_text(frame: &DiffFrame) -> String {
    let d = frame.delta_ns();
    if frame.base_total_ns > 0.0 {
        format!("{:+.3} ms ({:+.1}%)", d / 1e6, 100.0 * d / frame.base_total_ns)
    } else {
        format!("{:+.3} ms (new)", d / 1e6)
    }
}

#[allow(clippy::too_many_arguments)]
fn svg_frame(
    out: &mut String,
    frame: &DiffFrame,
    x: f64,
    depth: usize,
    max_depth: usize,
    scale: f64,
    max_abs: f64,
) {
    let w = frame.test_total_ns * scale;
    if w < 0.3 {
        return;
    }
    let y = PAD + (max_depth - depth) as f64 * ROW_H;
    let (r, g, b) = diff_color(frame.delta_ns(), max_abs);
    let title = format!(
        "{} — base {:.3} ms → test {:.3} ms, {}",
        svg_escape(&frame.name),
        frame.base_total_ns / 1e6,
        frame.test_total_ns / 1e6,
        delta_text(frame),
    );
    out.push_str(&format!(
        "<g><title>{title}</title><rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" \
         height=\"{:.1}\" fill=\"rgb({r},{g},{b})\" stroke=\"#bbb\" stroke-width=\"0.4\" \
         rx=\"2\"/>",
        ROW_H - 1.0
    ));
    let max_chars = ((w - 6.0) / CHAR_W) as usize;
    if max_chars >= 3 {
        let label: String = if frame.name.chars().count() <= max_chars {
            frame.name.clone()
        } else {
            let head: String = frame.name.chars().take(max_chars.saturating_sub(2)).collect();
            format!("{head}..")
        };
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.1}\" font-size=\"12\" font-family=\"monospace\">{}</text>",
            x + 3.0,
            y + ROW_H - 5.0,
            svg_escape(&label)
        ));
    }
    out.push_str("</g>\n");
    let mut cx = x;
    for child in frame.children.values() {
        svg_frame(out, child, cx, depth + 1, max_depth, scale, max_abs);
        cx += child.test_total_ns * scale;
    }
}

/// Renders the differential flame tree as a self-contained SVG: layout
/// from the test profile, red/blue colouring by delta against the base.
pub fn render_diff_svg(root: &DiffFrame, title: &str) -> String {
    let max_depth = root.depth().saturating_sub(1).max(1);
    let height = PAD * 2.0 + (max_depth + 1) as f64 * ROW_H + 24.0;
    let scale =
        if root.test_total_ns > 0.0 { (WIDTH - 2.0 * PAD) / root.test_total_ns } else { 0.0 };
    let max_abs = root.max_abs_delta();
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH} {height:.0}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6e3\"/>\n\
         <text x=\"{PAD}\" y=\"{:.0}\" font-size=\"14\" font-family=\"monospace\">{} — base \
         {:.3} ms → test {:.3} ms ({}) — red grew, blue shrank</text>\n",
        height - 8.0,
        svg_escape(title),
        root.base_total_ns / 1e6,
        root.test_total_ns / 1e6,
        delta_text(root),
    ));
    svg_frame(&mut out, root, PAD, 0, max_depth, scale, max_abs);
    out.push_str("</svg>\n");
    out
}

fn ansi_frame(out: &mut String, frame: &DiffFrame, depth: usize, max_abs: f64, bar_w: usize) {
    let d = frame.delta_ns();
    // Keep frames whose *subtree* still carries a visible delta, so a
    // small parent never hides a large child.
    if max_abs > 0.0 && frame.max_abs_delta() / max_abs < 0.005 {
        return;
    }
    let share = if max_abs > 0.0 { (d.abs() / max_abs).clamp(0.0, 1.0) } else { 0.0 };
    let filled = ((share * bar_w as f64).round() as usize).min(bar_w);
    let (r, g, b) = diff_color(d, max_abs);
    out.push_str(&format!(
        "{:indent$}\x1b[38;2;{r};{g};{b}m{:<bar$}\x1b[0m {:>22}  {}\n",
        "",
        if filled > 0 { "█".repeat(filled) } else { "·".to_string() },
        delta_text(frame),
        frame.name,
        indent = depth * 2,
        bar = bar_w.saturating_sub(depth * 2).max(1),
    ));
    // Worst regressions first, then the biggest improvements.
    let mut kids: Vec<&DiffFrame> = frame.children.values().collect();
    kids.sort_by(|a, b| {
        b.delta_ns().partial_cmp(&a.delta_ns()).unwrap_or(std::cmp::Ordering::Equal)
    });
    for child in kids {
        ansi_frame(out, child, depth + 1, max_abs, bar_w);
    }
}

/// Renders the diff for a terminal: depth-indented union tree (vanished
/// frames included), red/blue bars proportional to each frame's share of
/// the largest delta, worst regressions first.
pub fn render_diff_ansi(root: &DiffFrame) -> String {
    let mut out = String::new();
    ansi_frame(&mut out, root, 0, root.max_abs_delta(), 24);
    out
}

/// The `difffolded.pl` two-count collapsed format: one line per union
/// stack, `stack base_ns test_ns`. Deterministic (sorted) and lossless —
/// vanished and new stacks carry an explicit 0 on the missing side.
pub fn to_collapsed_diff(base: &Folded, test: &Folded) -> String {
    let mut stacks: BTreeMap<&str, (f64, f64)> = BTreeMap::new();
    for (stack, ns) in &base.lines {
        stacks.entry(stack).or_default().0 = *ns;
    }
    for (stack, ns) in &test.lines {
        stacks.entry(stack).or_default().1 = *ns;
    }
    let mut out = String::new();
    for (stack, (b, t)) in stacks {
        out.push_str(&format!("{stack} {} {}\n", b.round() as u64, t.round() as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn folded(lines: &[(&str, f64)]) -> Folded {
        let mut f = Folded::default();
        for (stack, ns) in lines {
            f.lines.insert(stack.to_string(), *ns);
        }
        f
    }

    fn base() -> Folded {
        folded(&[
            ("burst;qd_step;CGEMM", 600.0),
            ("burst;qd_step", 300.0),
            ("burst;old_phase", 100.0),
        ])
    }

    fn test_profile() -> Folded {
        folded(&[
            ("burst;qd_step;CGEMM", 900.0),
            ("burst;qd_step", 250.0),
            ("burst;new_phase", 50.0),
        ])
    }

    #[test]
    fn union_tree_carries_both_sides() {
        let root = build_diff_tree(&base(), &test_profile());
        assert_eq!(root.base_total_ns, 1000.0);
        assert_eq!(root.test_total_ns, 1200.0);
        assert_eq!(root.delta_ns(), 200.0);
        let burst = &root.children["burst"];
        let gemm = &burst.children["qd_step"].children["CGEMM"];
        assert_eq!(gemm.delta_ns(), 300.0, "regressed frame");
        assert_eq!(burst.children["qd_step"].delta_ns(), 250.0, "300 self shrink +300 child");
        // Vanished and new frames both exist in the union.
        assert_eq!(burst.children["old_phase"].test_total_ns, 0.0);
        assert_eq!(burst.children["new_phase"].base_total_ns, 0.0);
        assert_eq!(root.max_abs_delta(), 300.0);
    }

    #[test]
    fn svg_layout_is_test_sided_and_colour_coded() {
        let root = build_diff_tree(&base(), &test_profile());
        let svg = render_diff_svg(&root, "diff");
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("CGEMM"));
        assert!(svg.contains("new_phase"), "new frames are part of the test layout");
        assert!(!svg.contains("old_phase"), "vanished frames have zero test width");
        // CGEMM regressed by the full max delta: saturated red (220,55,45).
        assert!(svg.contains("rgb(220,55,45)"), "missing saturated red: {svg}");
        assert!(svg.contains("red grew, blue shrank"));
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
    }

    #[test]
    fn ansi_shows_vanished_frames() {
        let root = build_diff_tree(&base(), &test_profile());
        let text = render_diff_ansi(&root);
        assert!(text.contains("old_phase"), "vanished frame dropped: {text}");
        assert!(text.contains("CGEMM"));
        let gemm = text.find("CGEMM").unwrap();
        let old = text.find("old_phase").unwrap();
        assert!(gemm < old, "regressions must come before improvements");
        assert!(text.contains("(new)"));
    }

    #[test]
    fn collapsed_diff_is_two_count_and_lossless() {
        let text = to_collapsed_diff(&base(), &test_profile());
        assert!(text.contains("burst;qd_step;CGEMM 600 900\n"));
        assert!(text.contains("burst;old_phase 100 0\n"), "{text}");
        assert!(text.contains("burst;new_phase 0 50\n"));
    }

    #[test]
    fn identical_profiles_diff_to_neutral() {
        let root = build_diff_tree(&base(), &base());
        assert_eq!(root.delta_ns(), 0.0);
        assert_eq!(root.max_abs_delta(), 0.0);
        let svg = render_diff_svg(&root, "same");
        assert!(svg.contains("rgb(245,245,245)"), "unchanged frames are near-white");
        // Empty-vs-empty must not divide by zero.
        let empty = build_diff_tree(&Folded::default(), &Folded::default());
        let _ = render_diff_svg(&empty, "empty");
        let _ = render_diff_ansi(&empty);
    }

    #[test]
    fn test_tree_projection_matches_plain_flame_shape() {
        let root = build_diff_tree(&base(), &test_profile());
        let plain = test_tree(&root);
        assert_eq!(plain.total_ns, 1200.0);
        assert!(!plain.children["burst"].children.contains_key("old_phase"));
        assert_eq!(plain.children["burst"].children["qd_step"].children["CGEMM"].total_ns, 900.0);
    }
}

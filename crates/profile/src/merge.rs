//! Multi-rank trace merging into one Chrome trace-event document.
//!
//! Each rank of a divide-and-conquer run exports its own `events.jsonl`
//! with timestamps measured from its own process epoch. The
//! `telemetry_meta` header stamps that epoch as wall-clock UNIX ns
//! (`run_epoch`), so merging aligns clocks by offsetting every rank's
//! stream by `run_epoch − min(run_epochs)` — rank clocks land on one
//! shared timeline without any cross-process synchronisation at runtime.
//!
//! Each rank maps to a pid pair (`rank*2+1` host, `rank*2+2` device) with
//! `process_name` metadata rows, so Perfetto renders an N-rank run as N
//! labelled process groups.

use dcmesh_telemetry::json::{self, JsonValue};

/// One input stream, parsed.
struct RankStream {
    rank: u64,
    /// Nanosecond offset to add to every timestamp.
    offset_ns: u64,
    /// Non-meta event rows in stream order.
    rows: Vec<JsonValue>,
}

/// Chrome-trace pid of a rank's host track.
pub fn host_pid(rank: u64) -> u64 {
    rank * 2 + 1
}

/// Chrome-trace pid of a rank's device track.
pub fn device_pid(rank: u64) -> u64 {
    rank * 2 + 2
}

fn meta_of(rows: &[JsonValue]) -> (u64, u64) {
    for row in rows {
        if row.get("name").and_then(JsonValue::as_str) == Some("telemetry_meta") {
            let args = row.get("args");
            let epoch = args
                .and_then(|a| a.get("run_epoch"))
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0) as u64;
            let rank =
                args.and_then(|a| a.get("rank")).and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
            return (epoch, rank);
        }
    }
    (0, 0)
}

fn micros(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// Merges several ranks' JSONL dumps into one Chrome trace-event JSON
/// document with per-rank pids and epoch-aligned timestamps. Inputs with
/// duplicate or missing rank ids fall back to their index so pids stay
/// unique. Unparseable lines are skipped (same tolerance as ingestion).
pub fn merge_jsonl(inputs: &[&str]) -> String {
    let mut streams: Vec<RankStream> = Vec::with_capacity(inputs.len());
    for (idx, text) in inputs.iter().enumerate() {
        let rows: Vec<JsonValue> =
            text.lines().filter(|l| !l.trim().is_empty()).filter_map(|l| json::parse(l).ok()).collect();
        let (epoch, mut rank) = meta_of(&rows);
        if streams.iter().any(|s| s.rank == rank) {
            rank = idx as u64;
        }
        let rows = rows
            .into_iter()
            .filter(|r| r.get("name").and_then(JsonValue::as_str) != Some("telemetry_meta"))
            .collect();
        streams.push(RankStream { rank, offset_ns: epoch, rows });
    }
    let min_epoch = streams.iter().map(|s| s.offset_ns).min().unwrap_or(0);
    for s in &mut streams {
        s.offset_ns -= min_epoch;
    }

    let mut out_rows: Vec<String> = Vec::new();
    for s in &streams {
        out_rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"rank {} host\"}}}}",
            host_pid(s.rank),
            s.rank
        ));
        out_rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"rank {} xe-gpu (modelled)\"}}}}",
            device_pid(s.rank),
            s.rank
        ));
    }
    for s in &streams {
        for row in &s.rows {
            let kind = row.get("kind").and_then(JsonValue::as_str).unwrap_or("");
            if !matches!(kind, "B" | "E" | "i" | "X") {
                continue;
            }
            let track = row.get("track").and_then(JsonValue::as_str).unwrap_or("host");
            let (pid, tid) = if track == "device" {
                (device_pid(s.rank), 0)
            } else {
                (
                    host_pid(s.rank),
                    row.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64,
                )
            };
            let ts_ns = row.get("ts_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64
                + s.offset_ns;
            let name = row.get("name").and_then(JsonValue::as_str).unwrap_or("?");
            let mut line = format!(
                "{{\"ph\":\"{kind}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"name\":{}",
                micros(ts_ns),
                json::escape_string(name)
            );
            if kind == "X" {
                let dur_ns = row.get("dur_ns").and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
                line.push_str(&format!(",\"dur\":{}", micros(dur_ns)));
            }
            if kind == "i" {
                line.push_str(",\"s\":\"t\"");
            }
            line.push_str(&format!(",\"cat\":\"{track}\""));
            if let Some(JsonValue::Object(args)) = row.get("args") {
                if !args.is_empty() {
                    let body: Vec<String> = args
                        .iter()
                        .map(|(k, v)| {
                            let val = match v {
                                JsonValue::String(sv) => json::escape_string(sv),
                                JsonValue::Number(n) => json::number(*n),
                                JsonValue::Bool(b) => b.to_string(),
                                _ => "null".to_string(),
                            };
                            format!("{}:{}", json::escape_string(k), val)
                        })
                        .collect();
                    line.push_str(&format!(",\"args\":{{{}}}", body.join(",")));
                }
            }
            line.push('}');
            out_rows.push(line);
        }
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n", out_rows.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(rank: u64, epoch: u64, name: &str, ts: u64) -> String {
        [
            format!(
                "{{\"seq\":0,\"ts_ns\":0,\"kind\":\"i\",\"name\":\"telemetry_meta\",\
                 \"track\":\"host\",\"tid\":0,\"args\":{{\"run_epoch\":{epoch},\
                 \"rank\":{rank},\"sample_n\":1}}}}"
            ),
            format!(
                "{{\"seq\":1,\"ts_ns\":{ts},\"kind\":\"B\",\"name\":\"{name}\",\
                 \"track\":\"host\",\"tid\":0,\"args\":{{}}}}"
            ),
            format!(
                "{{\"seq\":2,\"ts_ns\":{},\"kind\":\"E\",\"name\":\"{name}\",\
                 \"track\":\"host\",\"tid\":0,\"args\":{{}}}}",
                ts + 1_000
            ),
        ]
        .join("\n")
    }

    #[test]
    fn two_ranks_merge_with_aligned_clocks() {
        // Rank 1 started 5µs after rank 0: its events shift right by 5µs.
        let r0 = stream(0, 1_000_000, "burst", 2_000);
        let r1 = stream(1, 1_005_000, "burst", 2_000);
        let merged = merge_jsonl(&[&r0, &r1]);
        let doc = json::parse(&merged).expect("merged trace is valid JSON");
        let rows = doc.get("traceEvents").unwrap().as_array().unwrap();

        let pids: std::collections::BTreeSet<u64> = rows
            .iter()
            .map(|r| r.get("pid").unwrap().as_f64().unwrap() as u64)
            .collect();
        assert!(pids.contains(&host_pid(0)) && pids.contains(&host_pid(1)), "{pids:?}");

        let begin_ts = |pid: u64| {
            rows.iter()
                .find(|r| {
                    r.get("pid").unwrap().as_f64() == Some(pid as f64)
                        && r.get("ph").unwrap().as_str() == Some("B")
                })
                .unwrap()
                .get("ts")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(begin_ts(host_pid(0)), 2.0, "earliest rank keeps its own clock");
        assert_eq!(begin_ts(host_pid(1)), 7.0, "5µs skew applied to the later rank");
    }

    #[test]
    fn duplicate_ranks_fall_back_to_index() {
        let r0 = stream(0, 100, "a", 0);
        let dup = stream(0, 100, "b", 0);
        let merged = merge_jsonl(&[&r0, &dup]);
        let doc = json::parse(&merged).unwrap();
        let pids: std::collections::BTreeSet<u64> = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|r| r.get("pid").unwrap().as_f64().unwrap() as u64)
            .collect();
        assert!(pids.contains(&host_pid(0)) && pids.contains(&host_pid(1)));
    }

    #[test]
    fn device_rows_keep_their_duration() {
        let text = [
            "{\"seq\":0,\"ts_ns\":0,\"kind\":\"i\",\"name\":\"telemetry_meta\",\"track\":\"host\",\
             \"tid\":0,\"args\":{\"run_epoch\":1,\"rank\":0,\"sample_n\":1}}",
            "{\"seq\":1,\"ts_ns\":500,\"kind\":\"X\",\"name\":\"zgemm_kernel\",\
             \"track\":\"device\",\"tid\":0,\"dur_ns\":2500,\"args\":{\"mode\":\"TF32\"}}",
        ]
        .join("\n");
        let merged = merge_jsonl(&[&text]);
        let doc = json::parse(&merged).unwrap();
        let x = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|r| r.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(x.get("pid").unwrap().as_f64(), Some(device_pid(0) as f64));
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(2.5));
        assert_eq!(x.get("args").unwrap().get("mode").unwrap().as_str(), Some("TF32"));
    }

    #[test]
    fn meta_lines_never_leak_into_output() {
        let r0 = stream(0, 1, "a", 0);
        let merged = merge_jsonl(&[&r0]);
        assert!(!merged.contains("telemetry_meta"));
    }
}

//! Collapsed-stack folding: the span forest as `a;b;c <ns>` lines.
//!
//! The output format is the Brendan-Gregg collapsed-stack convention
//! consumed by `inferno` / `flamegraph.pl`: one line per unique stack,
//! frames joined by `;`, a space, and an integer count. Counts here are
//! **weighted self nanoseconds** — each span contributes
//! `self_ns × sample_weight`, so a 1-in-16 sampled stream folds to totals
//! comparable with an unsampled one.
//!
//! Grouping options decorate leaf frames with the precision mode
//! (`CGEMM[FLOAT_TO_BF16]`) and/or the GEMM shape (`CGEMM(128x896x4096)`)
//! so per-mode and per-shape cost splits show up as separate flame towers,
//! the view the paper's Figure 3 takes.

use crate::ingest::{Span, Trace};
use std::collections::BTreeMap;

/// Folding configuration.
#[derive(Clone, Debug, Default)]
pub struct FoldOptions {
    /// Keep only trees rooted at this span name (e.g. `burst`), so the
    /// flame root total equals the summed duration of those spans.
    pub root: Option<String>,
    /// Decorate leaf frames with the `mode` attribute.
    pub by_mode: bool,
    /// Decorate leaf frames with the `m`/`n`/`k` attributes.
    pub by_shape: bool,
}

/// Folded stacks: canonical stack string → weighted self nanoseconds.
#[derive(Clone, Debug, Default)]
pub struct Folded {
    /// `a;b;c` → weighted ns.
    pub lines: BTreeMap<String, f64>,
}

impl Folded {
    /// Total weighted nanoseconds across all stacks.
    pub fn total_ns(&self) -> f64 {
        self.lines.values().sum()
    }

    /// Renders the collapsed-stack text (sorted, deterministic), with
    /// integer counts as the downstream tools expect.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (stack, ns) in &self.lines {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&format!("{}\n", ns.round() as u64));
        }
        out
    }
}

/// The frame label for `span`, with optional mode/shape decoration.
fn frame_label(span: &Span, opts: &FoldOptions) -> String {
    let mut label = span.name.clone();
    if opts.by_mode {
        if let Some(mode) = span.attr_str("mode") {
            label.push_str(&format!("[{mode}]"));
        }
    }
    if opts.by_shape {
        if let (Some(m), Some(n), Some(k)) =
            (span.attr_f64("m"), span.attr_f64("n"), span.attr_f64("k"))
        {
            label.push_str(&format!("({m}x{n}x{k})"));
        }
    }
    label
}

/// True when the span belongs to a tree rooted at `root`.
fn under_root(span: &Span, root: &str) -> bool {
    span.stack.first().map(String::as_str) == Some(root)
        || (span.stack.is_empty() && span.name == root)
}

/// Incremental folding: feed spans one at a time (streaming ingestion)
/// and take the [`Folded`] result at the end. [`fold`] is the batch
/// wrapper over this, so both paths produce identical output.
#[derive(Clone, Debug, Default)]
pub struct FoldAccum {
    opts: FoldOptions,
    folded: Folded,
}

impl FoldAccum {
    /// An empty accumulator with the given options.
    pub fn new(opts: FoldOptions) -> Self {
        FoldAccum { opts, folded: Folded::default() }
    }

    /// Folds one span in.
    pub fn add_span(&mut self, span: &Span) {
        if let Some(root) = &self.opts.root {
            if !under_root(span, root) {
                return;
            }
        }
        if span.self_ns == 0 {
            return;
        }
        let mut stack = span.stack.join(";");
        if !stack.is_empty() {
            stack.push(';');
        }
        stack.push_str(&frame_label(span, &self.opts));
        *self.folded.lines.entry(stack).or_insert(0.0) += span.self_ns as f64 * span.weight;
    }

    /// The folded result so far.
    pub fn finish(self) -> Folded {
        self.folded
    }
}

/// Folds a trace into collapsed stacks of weighted self time.
pub fn fold(trace: &Trace, opts: &FoldOptions) -> Folded {
    let mut acc = FoldAccum::new(opts.clone());
    for span in &trace.spans {
        acc.add_span(span);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::ingest_jsonl;

    fn line(kind: &str, name: &str, ts: u64, extra: &str) -> String {
        format!(
            "{{\"seq\":0,\"ts_ns\":{ts},\"kind\":\"{kind}\",\"name\":\"{name}\",\
             \"track\":\"host\",\"tid\":0,\"args\":{{{extra}}}}}"
        )
    }

    fn demo_trace() -> Trace {
        ingest_jsonl(
            &[
                line("B", "initial_scf", 0, ""),
                line("E", "initial_scf", 50, ""),
                line("B", "burst", 100, ""),
                line("B", "qd_step", 110, ""),
                line("B", "CGEMM", 120, "\"mode\":\"FLOAT_TO_BF16\",\"m\":8,\"n\":4,\"k\":2"),
                line("E", "CGEMM", 150, ""),
                line("E", "qd_step", 180, ""),
                line("E", "burst", 200, ""),
            ]
            .join("\n"),
        )
    }

    #[test]
    fn folds_self_time_per_stack() {
        let folded = fold(&demo_trace(), &FoldOptions::default());
        assert_eq!(folded.lines.get("burst;qd_step;CGEMM"), Some(&30.0));
        assert_eq!(folded.lines.get("burst;qd_step"), Some(&40.0), "70 incl - 30 child");
        assert_eq!(folded.lines.get("burst"), Some(&30.0), "100 incl - 70 child");
        assert_eq!(folded.lines.get("initial_scf"), Some(&50.0));
        // Inclusive root total is recoverable: 30+40+20 = burst's 100ns.
        let burst_total: f64 = folded
            .lines
            .iter()
            .filter(|(k, _)| k.starts_with("burst"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(burst_total, 100.0);
    }

    #[test]
    fn root_filter_excludes_other_trees() {
        let folded =
            fold(&demo_trace(), &FoldOptions { root: Some("burst".into()), ..Default::default() });
        assert!(folded.lines.keys().all(|k| k.starts_with("burst")));
        assert_eq!(folded.total_ns(), 100.0);
    }

    #[test]
    fn mode_and_shape_decorate_leaves() {
        let opts = FoldOptions { by_mode: true, by_shape: true, ..Default::default() };
        let folded = fold(&demo_trace(), &opts);
        assert!(
            folded.lines.contains_key("burst;qd_step;CGEMM[FLOAT_TO_BF16](8x4x2)"),
            "{:?}",
            folded.lines.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn weights_rescale_counts() {
        let t = ingest_jsonl(
            &[
                line("B", "CGEMM", 0, "\"sample_weight\":16"),
                line("E", "CGEMM", 10, ""),
            ]
            .join("\n"),
        );
        let folded = fold(&t, &FoldOptions::default());
        assert_eq!(folded.lines.get("CGEMM"), Some(&160.0));
        assert_eq!(folded.to_collapsed(), "CGEMM 160\n");
    }
}

//! Flamegraph rendering from folded stacks.
//!
//! Two self-contained renderers, no external tooling required:
//!
//! * [`render_svg`] — a static SVG in the classic flamegraph layout
//!   (root at the bottom, callees stacked upward, width ∝ inclusive
//!   time). Every rect carries a `<title>` tooltip with the exact
//!   nanosecond total and percentage, so the file is explorable in any
//!   browser without JavaScript.
//! * [`render_ansi`] — a terminal rendering: one line per frame,
//!   depth-indented, with a 256-colour bar scaled to the frame's share
//!   of the root.
//!
//! Both render the same [`Frame`] tree built by [`build_tree`] from a
//! [`Folded`] set, so the folded text, the SVG, and the terminal view
//! always agree on totals.

use crate::fold::Folded;
use std::collections::BTreeMap;

/// One node of the flame tree.
#[derive(Clone, Debug, Default)]
pub struct Frame {
    /// Frame label.
    pub name: String,
    /// Weighted self nanoseconds attributed directly to this frame.
    pub self_ns: f64,
    /// Weighted inclusive nanoseconds (self + children).
    pub total_ns: f64,
    /// Child frames by label.
    pub children: BTreeMap<String, Frame>,
}

impl Frame {
    /// Depth of the subtree rooted here (a leaf is 1).
    pub fn depth(&self) -> usize {
        1 + self.children.values().map(Frame::depth).max().unwrap_or(0)
    }
}

/// Builds the flame tree from folded stacks. The returned root is the
/// synthetic `all` frame whose total is the folded grand total.
pub fn build_tree(folded: &Folded) -> Frame {
    let mut root = Frame { name: "all".to_string(), ..Default::default() };
    for (stack, ns) in &folded.lines {
        let mut node = &mut root;
        node.total_ns += ns;
        for part in stack.split(';') {
            node = node
                .children
                .entry(part.to_string())
                .or_insert_with(|| Frame { name: part.to_string(), ..Default::default() });
            node.total_ns += ns;
        }
        node.self_ns += ns;
    }
    root
}

/// Deterministic warm colour for a frame name (flamegraph convention:
/// reds/oranges/yellows, hashed so the same frame keeps its colour across
/// renders).
fn color(name: &str) -> (u8, u8, u8) {
    let mut h: u32 = 2166136261;
    for b in name.bytes() {
        h = (h ^ b as u32).wrapping_mul(16777619);
    }
    let r = 205 + (h % 50) as u8;
    let g = 80 + ((h >> 8) % 150) as u8;
    let b = ((h >> 16) % 55) as u8;
    (r, g, b)
}

const ROW_H: f64 = 17.0;
const WIDTH: f64 = 1200.0;
const PAD: f64 = 10.0;
/// Approximate character width of the 12px monospace labels.
const CHAR_W: f64 = 7.2;

fn svg_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn svg_frame(
    out: &mut String,
    frame: &Frame,
    x: f64,
    depth: usize,
    max_depth: usize,
    scale: f64,
    root_total: f64,
) {
    let w = frame.total_ns * scale;
    if w < 0.3 {
        return;
    }
    // Root at the bottom, callees stacked upward.
    let y = PAD + (max_depth - depth) as f64 * ROW_H;
    let (r, g, b) = color(&frame.name);
    let pct = 100.0 * frame.total_ns / root_total.max(1.0);
    let title = format!(
        "{} — {:.3} ms ({:.2}%)",
        svg_escape(&frame.name),
        frame.total_ns / 1e6,
        pct
    );
    out.push_str(&format!(
        "<g><title>{title}</title><rect x=\"{x:.2}\" y=\"{y:.1}\" width=\"{w:.2}\" \
         height=\"{:.1}\" fill=\"rgb({r},{g},{b})\" rx=\"2\"/>",
        ROW_H - 1.0
    ));
    let max_chars = ((w - 6.0) / CHAR_W) as usize;
    if max_chars >= 3 {
        let label: String = if frame.name.chars().count() <= max_chars {
            frame.name.clone()
        } else {
            let head: String = frame.name.chars().take(max_chars.saturating_sub(2)).collect();
            format!("{head}..")
        };
        out.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.1}\" font-size=\"12\" font-family=\"monospace\">{}</text>",
            x + 3.0,
            y + ROW_H - 5.0,
            svg_escape(&label)
        ));
    }
    out.push_str("</g>\n");
    let mut cx = x;
    for child in frame.children.values() {
        svg_frame(out, child, cx, depth + 1, max_depth, scale, root_total);
        cx += child.total_ns * scale;
    }
}

/// Renders the flame tree as a self-contained SVG document.
pub fn render_svg(root: &Frame, title: &str) -> String {
    let max_depth = root.depth().saturating_sub(1).max(1);
    let height = PAD * 2.0 + (max_depth + 1) as f64 * ROW_H + 24.0;
    let scale = if root.total_ns > 0.0 { (WIDTH - 2.0 * PAD) / root.total_ns } else { 0.0 };
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH} {height:.0}\">\n\
         <rect width=\"100%\" height=\"100%\" fill=\"#fdf6e3\"/>\n\
         <text x=\"{PAD}\" y=\"{:.0}\" font-size=\"14\" font-family=\"monospace\">{} — \
         total {:.3} ms</text>\n",
        height - 8.0,
        svg_escape(title),
        root.total_ns / 1e6
    ));
    svg_frame(&mut out, root, PAD, 0, max_depth, scale, root.total_ns);
    out.push_str("</svg>\n");
    out
}

fn ansi_frame(out: &mut String, frame: &Frame, depth: usize, root_total: f64, bar_w: usize) {
    let pct = 100.0 * frame.total_ns / root_total.max(1.0);
    if pct < 0.05 {
        return;
    }
    let filled = ((pct / 100.0) * bar_w as f64).round() as usize;
    let (r, g, b) = color(&frame.name);
    out.push_str(&format!(
        "{:indent$}\x1b[38;2;{r};{g};{b}m{:<bar$}\x1b[0m {:>6.2}% {:>10.3} ms  {}\n",
        "",
        "█".repeat(filled.max(1).min(bar_w)),
        pct,
        frame.total_ns / 1e6,
        frame.name,
        indent = depth * 2,
        bar = bar_w.saturating_sub(depth * 2).max(1),
    ));
    // Largest children first, the terminal-friendly reading order.
    let mut kids: Vec<&Frame> = frame.children.values().collect();
    kids.sort_by(|a, b| b.total_ns.partial_cmp(&a.total_ns).unwrap_or(std::cmp::Ordering::Equal));
    for child in kids {
        ansi_frame(out, child, depth + 1, root_total, bar_w);
    }
}

/// Renders the flame tree for a terminal: depth-indented frames with
/// truecolour bars proportional to their share of the root.
pub fn render_ansi(root: &Frame) -> String {
    let mut out = String::new();
    ansi_frame(&mut out, root, 0, root.total_ns, 32);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::Folded;

    fn folded() -> Folded {
        let mut f = Folded::default();
        f.lines.insert("burst".to_string(), 100.0);
        f.lines.insert("burst;qd_step".to_string(), 300.0);
        f.lines.insert("burst;qd_step;CGEMM".to_string(), 600.0);
        f
    }

    #[test]
    fn tree_totals_are_inclusive() {
        let root = build_tree(&folded());
        assert_eq!(root.total_ns, 1000.0);
        let burst = &root.children["burst"];
        assert_eq!(burst.total_ns, 1000.0);
        assert_eq!(burst.self_ns, 100.0);
        let step = &burst.children["qd_step"];
        assert_eq!(step.total_ns, 900.0);
        assert_eq!(step.children["CGEMM"].total_ns, 600.0);
        assert_eq!(root.depth(), 4);
    }

    #[test]
    fn svg_contains_all_frames_and_is_well_formed() {
        let root = build_tree(&folded());
        let svg = render_svg(&root, "test flame");
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        for name in ["burst", "qd_step", "CGEMM"] {
            assert!(svg.contains(name), "missing {name}");
        }
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        assert!(svg.contains("total 0.001 ms"));
    }

    #[test]
    fn svg_escapes_markup_in_names() {
        let mut f = Folded::default();
        f.lines.insert("a<b>&\"c\"".to_string(), 10.0);
        let svg = render_svg(&build_tree(&f), "t");
        assert!(!svg.contains("a<b>"));
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
    }

    #[test]
    fn ansi_orders_children_by_weight() {
        let root = build_tree(&folded());
        let text = render_ansi(&root);
        let all_pos = text.find("all").unwrap();
        let burst_pos = text.find("burst").unwrap();
        let gemm_pos = text.find("CGEMM").unwrap();
        assert!(all_pos < burst_pos && burst_pos < gemm_pos);
        assert!(text.contains("100.00%"));
    }

    #[test]
    fn empty_fold_renders_without_panic() {
        let root = build_tree(&Folded::default());
        assert_eq!(root.total_ns, 0.0);
        let svg = render_svg(&root, "empty");
        assert!(svg.contains("</svg>"));
        let _ = render_ansi(&root);
    }
}

//! Live precision observatory: tail event streams mid-run and render
//! the merged per-callsite ledger as it evolves.
//!
//! A supervised run (or each rank of a sharded one) appends telemetry
//! to `events*.jsonl` as bursts commit. [`WatchSession`] tails any
//! number of those streams — re-scanning a run directory each tick so
//! ranks that appear late (respawns, slow starts) are picked up —
//! feeds the new bytes through a per-stream [`StreamingIngester`], and
//! folds the closed spans and instants into a merged ledger keyed by
//! (callsite, shape-class, mode). The result renders through the same
//! `dcmesh_telemetry::ledger` table/Prometheus formatters the
//! in-process ledger uses, so a live `profile watch` pane and the
//! end-of-run `ledger.json` speak one schema.
//!
//! The stream-derived ledger is an *estimate* of the in-process one:
//! BLAS spans are 1-in-N sampled, so call counts and times are
//! `sample_weight`-rescaled expectations, while escalation / rollback /
//! ABFT-violation instants are unsampled and therefore exact.

use crate::ingest::StreamingIngester;
use dcmesh_telemetry::ledger::{self, Row, Stats};
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// One tailed stream: a file we re-open each tick and read from the
/// last observed offset, carrying any torn final line until its
/// newline arrives.
struct Tail {
    path: PathBuf,
    /// Bytes fully consumed (complete lines fed to the ingester).
    offset: u64,
    /// Bytes after the last newline — a line still being written.
    partial: Vec<u8>,
    ingester: StreamingIngester,
}

impl Tail {
    fn new(path: PathBuf) -> Tail {
        Tail { path, offset: 0, partial: Vec::new(), ingester: StreamingIngester::new() }
    }

    /// Reads everything new since the last poll and feeds the complete
    /// lines. Returns the number of lines fed. A vanished or
    /// not-yet-created file is simply "no new data"; a file that
    /// *shrank* was restarted by its writer (a respawned rank begins a
    /// fresh stream), so the tail rewinds and re-reads it.
    fn poll(&mut self) -> u64 {
        let Ok(mut f) = std::fs::File::open(&self.path) else { return 0 };
        let consumed = self.offset + self.partial.len() as u64;
        if f.metadata().map(|m| m.len() < consumed).unwrap_or(false) {
            self.offset = 0;
            self.partial.clear();
            self.ingester = StreamingIngester::new();
        }
        if f.seek(SeekFrom::Start(self.offset + self.partial.len() as u64)).is_err() {
            return 0;
        }
        let mut buf = Vec::new();
        if f.read_to_end(&mut buf).is_err() || buf.is_empty() {
            return 0;
        }
        self.partial.extend_from_slice(&buf);
        let mut fed = 0;
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let rest = self.partial.split_off(nl + 1);
            let line_bytes = std::mem::replace(&mut self.partial, rest);
            self.offset += line_bytes.len() as u64;
            let line = String::from_utf8_lossy(&line_bytes[..line_bytes.len() - 1]);
            self.ingester.feed_line(&line);
            fed += 1;
        }
        fed
    }
}

/// Merged stream-derived ledger across every tailed rank.
#[derive(Default)]
pub struct WatchLedger {
    groups: BTreeMap<(String, String, String), WatchAcc>,
}

#[derive(Default)]
struct WatchAcc {
    calls: f64,
    wall_s: f64,
    device_s: f64,
    device_samples: f64,
    escalations: u64,
    rollbacks: u64,
    nonfinite_outputs: u64,
    abft_violations: u64,
}

impl WatchLedger {
    fn entry(&mut self, callsite: String, shape: String, mode: String) -> &mut WatchAcc {
        self.groups.entry((callsite, shape, mode)).or_default()
    }

    /// Folds one closed span in: BLAS call spans (those carrying
    /// `m`/`n`/`k`/`mode` attributes) contribute weighted call counts
    /// and times under their `callsite` attribute.
    pub fn add_span(&mut self, span: &crate::ingest::Span) {
        let (Some(m), Some(n), Some(k), Some(mode)) = (
            span.attr_f64("m"),
            span.attr_f64("n"),
            span.attr_f64("k"),
            span.attr_str("mode"),
        ) else {
            return;
        };
        let callsite = span
            .attr_str("callsite")
            .map(str::to_string)
            .unwrap_or_else(|| format!("app/{}", span.name.to_lowercase()));
        let shape = ledger::shape_class(m as usize, n as usize, k as usize).to_string();
        let mode = mode.to_string();
        let wall = span.attr_f64("wall_s").unwrap_or(span.dur_ns() as f64 / 1e9);
        let device = span.attr_f64("device_s");
        let acc = self.entry(callsite, shape, mode);
        acc.calls += span.weight;
        acc.wall_s += wall * span.weight;
        if let Some(d) = device {
            acc.device_s += d * span.weight;
            acc.device_samples += span.weight;
        }
    }

    /// Folds one instant in: escalations, rollbacks, ABFT violations
    /// and non-finite outputs each bump their attributed row.
    pub fn add_instant(&mut self, ev: &crate::ingest::InstantEvent) {
        let attr = |key: &str| ev.attrs.get(key).and_then(|v| v.as_str());
        match ev.name.as_str() {
            "escalation" => {
                let mode = attr("from").unwrap_or("-").to_string();
                self.entry("supervisor/burst".into(), "-".into(), mode).escalations += 1;
            }
            "rollback" => {
                let mode = attr("mode").unwrap_or("-").to_string();
                self.entry("supervisor/burst".into(), "-".into(), mode).rollbacks += 1;
            }
            "abft_violation" => {
                let callsite = attr("callsite")
                    .map(str::to_string)
                    .unwrap_or_else(|| "app/abft".to_string());
                let mode = attr("mode").unwrap_or("-").to_string();
                self.entry(callsite, "-".into(), mode).abft_violations += 1;
            }
            "nonfinite_output" => {
                let callsite = attr("callsite")
                    .map(str::to_string)
                    .unwrap_or_else(|| "app/nonfinite".to_string());
                let mode = attr("mode").unwrap_or("-").to_string();
                self.entry(callsite, "-".into(), mode).nonfinite_outputs += 1;
            }
            _ => {}
        }
    }

    /// The merged rows in `dcmesh_telemetry::ledger` form, ready for
    /// [`ledger::render_rows`] / [`ledger::rows_prometheus`].
    pub fn rows(&self) -> Vec<Row> {
        self.groups
            .iter()
            .map(|((callsite, shape, mode), acc)| Row {
                callsite: callsite.clone(),
                shape: shape.clone(),
                mode: mode.clone(),
                stats: Stats {
                    calls: acc.calls.round() as u64,
                    wall_s: acc.wall_s,
                    device_s: acc.device_s,
                    device_samples: acc.device_samples.round() as u64,
                    escalations: acc.escalations,
                    rollbacks: acc.rollbacks,
                    nonfinite_outputs: acc.nonfinite_outputs,
                    abft_violations: acc.abft_violations,
                    ..Stats::default()
                },
            })
            .collect()
    }
}

/// A live watch over one or more event streams.
pub struct WatchSession {
    /// Directory to re-scan for `events*.jsonl` each tick, when the
    /// watch target is a run directory.
    scan_dirs: Vec<PathBuf>,
    tails: Vec<Tail>,
    ledger: WatchLedger,
    /// Total lines fed across all streams.
    pub lines_fed: u64,
}

/// True for file names the run layer writes event streams to:
/// `events.jsonl`, `events-rank3.jsonl`, `events-coord.jsonl`.
fn is_event_stream(name: &str) -> bool {
    name.starts_with("events") && name.ends_with(".jsonl")
}

impl WatchSession {
    /// A session over explicit stream files and/or run directories.
    /// Directories are re-scanned on every [`tick`](Self::tick): both
    /// the directory itself and its `trace/` subdirectory are checked
    /// for `events*.jsonl`, so per-rank streams that appear mid-run
    /// (respawned ranks) are picked up automatically.
    pub fn new(targets: &[String]) -> WatchSession {
        let mut s = WatchSession {
            scan_dirs: Vec::new(),
            tails: Vec::new(),
            ledger: WatchLedger::default(),
            lines_fed: 0,
        };
        for t in targets {
            let p = PathBuf::from(t);
            if p.is_dir() {
                s.scan_dirs.push(p.clone());
                s.scan_dirs.push(p.join("trace"));
            } else {
                s.add_stream(p);
            }
        }
        s
    }

    fn add_stream(&mut self, path: PathBuf) {
        if self.tails.iter().any(|t| t.path == path) {
            return;
        }
        self.tails.push(Tail::new(path));
    }

    fn rescan(&mut self) {
        let mut found: Vec<PathBuf> = Vec::new();
        for dir in &self.scan_dirs {
            let Ok(entries) = std::fs::read_dir(dir) else { continue };
            for e in entries.flatten() {
                let name = e.file_name();
                if is_event_stream(&name.to_string_lossy()) {
                    found.push(e.path());
                }
            }
        }
        found.sort();
        for p in found {
            self.add_stream(p);
        }
    }

    /// One poll cycle: rescan directories, drain new lines from every
    /// stream, fold the closed records into the merged ledger. Returns
    /// the number of lines consumed this tick.
    pub fn tick(&mut self) -> u64 {
        self.rescan();
        let mut fed = 0;
        for tail in &mut self.tails {
            fed += tail.poll();
            for span in tail.ingester.take_closed_spans() {
                self.ledger.add_span(&span);
            }
            for ev in tail.ingester.take_closed_instants() {
                self.ledger.add_instant(&ev);
            }
            // Device slices are folded into spans via their `device_s`
            // attributes; drain to keep memory bounded.
            tail.ingester.take_closed_device();
        }
        self.lines_fed += fed;
        fed
    }

    /// The merged ledger rows at this instant.
    pub fn rows(&self) -> Vec<Row> {
        self.ledger.rows()
    }

    /// Per-stream status lines: path, bytes consumed, rank when known.
    pub fn stream_status(&self) -> Vec<String> {
        self.tails
            .iter()
            .map(|t| {
                let meta = t.ingester.meta();
                let rank = if meta.present { format!("rank {}", meta.rank) } else { "rank ?".into() };
                format!("{} ({rank}, {} bytes)", t.path.display(), t.offset)
            })
            .collect()
    }

    /// Renders the dashboard: stream roster plus the merged ledger
    /// table, through the shared `ledger` renderer.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== dcmesh precision observatory — {} stream(s), {} line(s) ==\n",
            self.tails.len(),
            self.lines_fed
        ));
        for s in self.stream_status() {
            out.push_str("  ");
            out.push_str(&s);
            out.push('\n');
        }
        let rows = self.rows();
        if rows.is_empty() {
            out.push_str("(no ledger entries yet)\n");
        } else {
            out.push('\n');
            out.push_str(&ledger::render_rows(&rows));
        }
        out
    }

    /// The merged ledger as a Prometheus scrape body.
    pub fn prometheus(&self) -> String {
        ledger::rows_prometheus(&self.rows())
    }
}

/// Writes `text` to `path` via a sibling temp file and rename, so a
/// concurrent scraper never reads a half-written body.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(kind: &str, name: &str, ts: u64, extra: &str) -> String {
        format!(
            "{{\"seq\":0,\"ts_ns\":{ts},\"kind\":\"{kind}\",\"name\":\"{name}\",\
             \"track\":\"host\",\"tid\":0,\"args\":{{{extra}}}}}\n"
        )
    }

    fn demo_stream() -> String {
        [
            line(
                "i",
                "telemetry_meta",
                0,
                "\"run_epoch\":100,\"rank\":2,\"sample_n\":1",
            ),
            line(
                "B",
                "CGEMM",
                10,
                "\"callsite\":\"lfd::eigensolve/cgemm\",\"m\":64,\"n\":64,\"k\":64,\
                 \"mode\":\"FLOAT_TO_BF16\"",
            ),
            line("E", "CGEMM", 20, "\"wall_s\":0.25"),
            line("i", "escalation", 30, "\"from\":\"FLOAT_TO_BF16\",\"to\":\"STANDARD\""),
            line("i", "rollback", 30, "\"step\":4,\"mode\":\"FLOAT_TO_BF16\""),
        ]
        .concat()
    }

    #[test]
    fn tailed_stream_builds_ledger_rows() {
        let dir = std::env::temp_dir().join("dcmesh_watch_test_a");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events-rank2.jsonl");
        std::fs::write(&path, demo_stream()).unwrap();

        let mut s = WatchSession::new(&[dir.to_string_lossy().to_string()]);
        s.tick();
        let rows = s.rows();
        let gemm = rows
            .iter()
            .find(|r| r.callsite == "lfd::eigensolve/cgemm")
            .expect("gemm row");
        assert_eq!(gemm.shape, "64x64x64");
        assert_eq!(gemm.mode, "FLOAT_TO_BF16");
        assert_eq!(gemm.stats.calls, 1);
        assert!((gemm.stats.wall_s - 0.25).abs() < 1e-12);
        let sup = rows
            .iter()
            .find(|r| r.callsite == "supervisor/burst" && r.mode == "FLOAT_TO_BF16")
            .expect("supervisor row");
        assert_eq!(sup.stats.escalations, 1);
        assert_eq!(sup.stats.rollbacks, 1);
        assert!(s.render().contains("lfd::eigensolve/cgemm"));
        assert!(s.prometheus().contains("dcmesh_ledger_escalations_total"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_writes_wait_for_the_newline() {
        let dir = std::env::temp_dir().join("dcmesh_watch_test_b");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let full = demo_stream();
        // First write stops mid-line; the tail must hold the fragment.
        let cut = full.len() - 20;
        std::fs::write(&path, &full[..cut]).unwrap();
        let mut s = WatchSession::new(&[path.to_string_lossy().to_string()]);
        s.tick();
        let before = s.rows();
        assert!(before
            .iter()
            .all(|r| !(r.callsite == "supervisor/burst" && r.stats.rollbacks > 0)));
        // The rest of the stream arrives; the torn line completes.
        std::fs::write(&path, &full).unwrap();
        s.tick();
        let after = s.rows();
        assert!(after
            .iter()
            .any(|r| r.callsite == "supervisor/burst" && r.stats.rollbacks == 1));
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! End-to-end ABFT checksum verification against injected bit flips.
//!
//! Lives in its own integration binary because both the fault plan and
//! the ABFT sampler are process-global: unit tests running in parallel
//! in the library binary would consume one-shot triggers or shift the
//! shared GEMM call counter. Within this binary a mutex serialises the
//! tests for the same reason.

use mkl_lite::{
    abft_check_count, cgemm, clear_abft, clear_fault_plan, dgemm, install_abft,
    install_bit_flip_plan, install_fault_plan, sgemm, take_abft_violation, with_compute_mode,
    zgemm, BitFlipPlan, ComputeMode, FaultKind, FaultPlan, FaultSite, Op,
};

use dcmesh_numerics::{c32, c64, C32, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

static ABFT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    let guard = ABFT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    clear_fault_plan();
    clear_abft();
    guard
}

fn rand_f64(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn rand_c64(rng: &mut StdRng, len: usize) -> Vec<C64> {
    (0..len).map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
}

fn rand_c32(rng: &mut StdRng, len: usize) -> Vec<C32> {
    (0..len)
        .map(|_| c32(rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)))
        .collect()
}

#[test]
fn clean_gemms_pass_in_every_mode() {
    let _g = locked();
    install_abft(1);
    let mut rng = StdRng::seed_from_u64(11);
    let (m, n, k) = (13, 9, 40);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let b: Vec<f32> = (0..n * k).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    for mode in ComputeMode::ALL {
        let mut c: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        with_compute_mode(mode, || {
            sgemm(Op::None, Op::Trans, m, n, k, 1.5, &a, k, &b, k, 0.75, &mut c, n);
        });
        assert!(take_abft_violation().is_none(), "false positive in mode {mode:?}");
    }
    // Complex path, conjugate transpose, beta accumulation.
    let za = rand_c32(&mut rng, 8 * 6);
    let zb = rand_c32(&mut rng, 8 * 7);
    for mode in ComputeMode::ALL {
        let mut zc = rand_c32(&mut rng, 6 * 7);
        with_compute_mode(mode, || {
            cgemm(
                Op::ConjTrans,
                Op::None,
                6,
                7,
                8,
                c32(0.5, -1.0),
                &za,
                6,
                &zb,
                7,
                c32(-0.25, 0.5),
                &mut zc,
                7,
            );
        });
        assert!(take_abft_violation().is_none(), "complex false positive in mode {mode:?}");
    }
    clear_abft();
}

#[test]
fn exponent_flip_is_detected_and_reported() {
    let _g = locked();
    install_abft(1);
    // Flip a high exponent bit of one output element of the next call:
    // finite but ~2^512 off — invisible to non-finite health checks.
    install_bit_flip_plan(&BitFlipPlan::new(3).with_flip(0, 61));
    let mut rng = StdRng::seed_from_u64(12);
    let (m, n, k) = (8, 8, 16);
    let a = rand_f64(&mut rng, m * k);
    let b = rand_f64(&mut rng, k * n);
    let mut c = vec![0.0f64; m * n];
    dgemm(Op::None, Op::None, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n);
    clear_fault_plan();
    let v = take_abft_violation().expect("exponent flip must trip the checksum");
    assert_eq!(v.routine, "DGEMM");
    assert!(v.to_string().contains("DGEMM"), "display: {v}");
    assert!(c.iter().all(|x| x.is_finite()), "flip was supposed to stay finite");
    // Taking the violation clears the pending slot.
    assert!(take_abft_violation().is_none());
    clear_abft();
}

#[test]
fn complex_flip_detected_with_beta_accumulation() {
    let _g = locked();
    install_abft(1);
    install_bit_flip_plan(&BitFlipPlan::new(9).with_flip(0, 61));
    let mut rng = StdRng::seed_from_u64(13);
    let (m, n, k) = (6, 7, 9);
    let a = rand_c64(&mut rng, k * m);
    let b = rand_c64(&mut rng, k * n);
    let mut c = rand_c64(&mut rng, m * n);
    zgemm(
        Op::ConjTrans,
        Op::None,
        m,
        n,
        k,
        c64(0.5, -0.25),
        &a,
        m,
        &b,
        n,
        c64(0.25, 0.5),
        &mut c,
        n,
    );
    clear_fault_plan();
    assert!(take_abft_violation().is_some(), "complex flip escaped the checksum");
    clear_abft();
}

#[test]
fn sampling_period_skips_unsampled_calls() {
    let _g = locked();
    install_abft(3);
    let a = vec![1.0f64; 4];
    let b = vec![1.0f64; 4];
    let before = abft_check_count();
    for _ in 0..6 {
        let mut c = vec![0.0f64; 4];
        dgemm(Op::None, Op::None, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 2);
    }
    let checked = abft_check_count() - before;
    assert_eq!(checked, 2, "period-3 sampling over 6 calls must check 2");
    clear_abft();
}

#[test]
fn unsampled_flip_escapes_sampled_check() {
    // The documented coverage boundary: 1-in-N sampling misses flips on
    // unchecked calls. (Those are the domain of verify_bursts.)
    let _g = locked();
    install_abft(2); // checks relative calls 0, 2, 4, ...
    install_bit_flip_plan(&BitFlipPlan::new(1).with_flip(1, 61));
    let a = vec![1.0f64; 9];
    let b = vec![0.5f64; 9];
    for _ in 0..4 {
        let mut c = vec![0.0f64; 9];
        dgemm(Op::None, Op::None, 3, 3, 3, 1.0, &a, 3, &b, 3, 0.0, &mut c, 3);
    }
    clear_fault_plan();
    assert!(take_abft_violation().is_none(), "flip on an unsampled call must escape");
    clear_abft();
}

#[test]
fn nan_in_output_violates() {
    let _g = locked();
    install_abft(1);
    install_fault_plan(FaultPlan::new(1).with_site(FaultSite::once(0, FaultKind::Nan)));
    let a = vec![1.0f64; 9];
    let b = vec![1.0f64; 9];
    let mut c = vec![0.0f64; 9];
    dgemm(Op::None, Op::None, 3, 3, 3, 1.0, &a, 3, &b, 3, 0.0, &mut c, 3);
    clear_fault_plan();
    assert!(take_abft_violation().is_some(), "NaN row sum must violate");
    clear_abft();
}

//! End-to-end test of the paper's headline workflow: the compute mode is
//! picked up from `MKL_BLAS_COMPUTE_MODE` with **no code changes** at the
//! call sites.
//!
//! This lives in its own integration-test binary so the environment
//! variable is set before the library's lazy global initialisation runs —
//! exactly how the artifact's `export MKL_BLAS_COMPUTE_MODE=...` workflow
//! behaves for a fresh process.

use dcmesh_numerics::{c32, C32};
use mkl_lite::{cgemm, ComputeMode, Op};

#[test]
fn mode_read_from_environment_on_first_use() {
    // SAFETY: set before any other thread can call into mkl-lite (this is
    // the first and only test in this binary, and the lazy init has not
    // run yet).
    unsafe { std::env::set_var(mkl_lite::COMPUTE_MODE_ENV, "FLOAT_TO_TF32") };

    assert_eq!(mkl_lite::compute_mode(), ComputeMode::FloatToTf32);

    // A value that TF32 rounds but FP32 keeps: 1 + 2^-12.
    let x = 1.0 + 2f32.powi(-12);
    let a = [c32(x, 0.0)];
    let b = [c32(1.0, 0.0)];
    let mut c = [C32::zero()];
    cgemm(Op::None, Op::None, 1, 1, 1, C32::one(), &a, 1, &b, 1, C32::zero(), &mut c, 1);
    assert_eq!(c[0].re, 1.0, "TF32 mode from the environment must round the input");

    // Runtime override still wins afterwards (the library API the paper's
    // env-var method wraps).
    mkl_lite::set_compute_mode(ComputeMode::Standard);
    cgemm(Op::None, Op::None, 1, 1, 1, C32::one(), &a, 1, &b, 1, C32::zero(), &mut c, 1);
    assert_eq!(c[0].re, x, "standard mode must keep full FP32 input precision");
}

//! End-to-end guarantee behind the zero-skip removal in the GEMM kernel:
//! a fault-injected Inf must stay visible through downstream products,
//! even when the row of A multiplying it is all zeros (0·Inf = NaN).
//!
//! Lives in its own integration binary because a [`FaultPlan`] is
//! process-global: unit tests running in parallel in the library binary
//! could consume the one-shot trigger or receive the corruption instead.

use mkl_lite::{
    clear_fault_plan, install_fault_plan, set_compute_mode, sgemm, ComputeMode, FaultKind,
    FaultPlan, FaultSite, Op,
};

#[test]
fn fault_plan_inf_visible_through_downstream_gemm() {
    set_compute_mode(ComputeMode::Standard);
    let n = 3;
    let ident: Vec<f32> = (0..n * n).map(|i| if i % (n + 1) == 0 { 1.0 } else { 0.0 }).collect();
    let ones = vec![1.0f32; n * n];

    // Inject +Inf into the output of the next SGEMM, exactly as the
    // robustness harness does between propagation steps.
    install_fault_plan(
        FaultPlan::new(7).with_site(FaultSite::once(0, FaultKind::Inf).on_routine("SGEMM")),
    );
    let mut b = vec![0.0f32; n * n];
    sgemm(Op::None, Op::None, n, n, n, 1.0, &ident, n, &ones, n, 0.0, &mut b, n);
    clear_fault_plan();
    assert!(b.iter().any(|x| x.is_infinite()), "fault plan did not fire");

    // Feed the corrupted matrix into a downstream product whose A has an
    // all-zero row. Every output row must carry Inf (nonzero rows) or NaN
    // (the zero row, via 0·Inf) — nothing may launder the fault away.
    let mut a = vec![1.0f32; n * n];
    for v in &mut a[..n] {
        *v = 0.0;
    }
    let mut c = vec![0.0f32; n * n];
    sgemm(Op::None, Op::None, n, n, n, 1.0, &a, n, &b, n, 0.0, &mut c, n);
    for i in 0..n {
        assert!(
            c[i * n..(i + 1) * n].iter().any(|x| !x.is_finite()),
            "row {i} lost the injected Inf: {c:?}"
        );
    }
}

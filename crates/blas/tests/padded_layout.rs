//! Padded-layout conformance tests.
//!
//! DCMESH always hands the library densely packed matrices (`ld == cols`),
//! which is exactly the case the zero-copy fast path in `layout.rs`
//! covers — so a bug in the strided (`ld > cols`) path would survive the
//! whole simulation test suite. These tests drive every routine variant
//! through padded layouts: random leading-dimension slack on A, B *and*
//! C, every `op` combination, every compute mode, checked against an
//! FP64 reference with the per-mode error budget. The C padding itself
//! must come back bit-identical — GEMM owns only the `m × n` interior.

use dcmesh_numerics::{c32, C32};
use mkl_lite::{cgemm, config::with_compute_mode, sgemm, ComputeMode, Op};
use rand::{Rng, SeedableRng};
use rand::rngs::StdRng;

const OPS: [Op; 3] = [Op::None, Op::Trans, Op::ConjTrans];

/// Fills a padded row-major `rows × cols` (ld = cols + pad) buffer with
/// random values in the interior and a recognisable sentinel in the pad.
fn padded_matrix(rng: &mut StdRng, rows: usize, cols: usize, pad: usize) -> (Vec<f32>, usize) {
    let ld = cols + pad;
    let mut a = vec![f32::NAN; rows * ld];
    for i in 0..rows {
        for j in 0..cols {
            a[i * ld + j] = rng.gen_range(-2.0f32..2.0);
        }
        for j in cols..ld {
            a[i * ld + j] = 7e7 + (i * ld + j) as f32;
        }
    }
    (a, ld)
}

/// FP64 reference `C ← α·op(A)·op(B) + β·C` honouring the same layout.
#[allow(clippy::too_many_arguments)]
fn reference(
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c0: &[f32],
    ldc: usize,
) -> Vec<f64> {
    let at = |i: usize, kk: usize| -> f64 {
        match transa {
            Op::None => a[i * lda + kk] as f64,
            Op::Trans | Op::ConjTrans => a[kk * lda + i] as f64,
        }
    };
    let bt = |kk: usize, j: usize| -> f64 {
        match transb {
            Op::None => b[kk * ldb + j] as f64,
            Op::Trans | Op::ConjTrans => b[j * ldb + kk] as f64,
        }
    };
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f64;
            for kk in 0..k {
                s += at(i, kk) * bt(kk, j);
            }
            out[i * n + j] = alpha as f64 * s + beta as f64 * c0[i * ldc + j] as f64;
        }
    }
    out
}

#[test]
fn sgemm_padded_every_op_and_mode_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0x5eed1);
    for case in 0..10 {
        let (m, n, k) =
            (rng.gen_range(1..9), rng.gen_range(1..9), rng.gen_range(1..17));
        let (pa, pb, pc) = (rng.gen_range(0..4), rng.gen_range(0..4), rng.gen_range(1..4));
        let alpha = rng.gen_range(-1.5f32..1.5);
        let beta = if case % 2 == 0 { 0.0 } else { rng.gen_range(-1.0f32..1.0) };
        for transa in OPS {
            for transb in OPS {
                let (ar, ac) = if transa == Op::None { (m, k) } else { (k, m) };
                let (br, bc) = if transb == Op::None { (k, n) } else { (n, k) };
                let (a, lda) = padded_matrix(&mut rng, ar, ac, pa);
                let (b, ldb) = padded_matrix(&mut rng, br, bc, pb);
                let (c0, ldc) = padded_matrix(&mut rng, m, n, pc);
                let want =
                    reference(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &c0, ldc);
                let amax = a.iter().filter(|x| x.abs() < 1e6).fold(0.0f32, |s, &x| s.max(x.abs()));
                let bmax = b.iter().filter(|x| x.abs() < 1e6).fold(0.0f32, |s, &x| s.max(x.abs()));
                for mode in ComputeMode::ALL {
                    let mut c = c0.clone();
                    with_compute_mode(mode, || {
                        sgemm(transa, transb, m, n, k, alpha, &a, lda, &b, ldb, beta, &mut c, ldc);
                    });
                    // Per-mode error budget, same model as the dense-layout
                    // property tests (paper §V-B).
                    let eps = 2f64.powi(-(mode.effective_mantissa_bits() as i32 - 1));
                    let tol = k as f64 * (alpha.abs() as f64 + 1.0) * amax as f64 * bmax as f64
                        * eps
                        * 4.0
                        + 1e-5;
                    for i in 0..m {
                        for j in 0..n {
                            let got = c[i * ldc + j] as f64;
                            let w = want[i * n + j];
                            assert!(
                                (got - w).abs() <= tol,
                                "{mode:?} {}{} ({m},{n},{k}) pads ({pa},{pb},{pc}) \
                                 C[{i},{j}] = {got} vs {w}, tol {tol}",
                                transa.letter(),
                                transb.letter()
                            );
                        }
                        // The C pad columns belong to the caller.
                        for j in n..ldc {
                            assert_eq!(
                                c[i * ldc + j].to_bits(),
                                c0[i * ldc + j].to_bits(),
                                "{mode:?} clobbered C padding at ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn cgemm_padded_every_op_and_mode_tracks_dense() {
    // Complex path: a padded call must agree (exactly — both sides take
    // the same arithmetic once layouts are normalised) with the same
    // product on densely repacked operands, for every op pair and mode.
    let mut rng = StdRng::seed_from_u64(0x5eed2);
    let repack = |x: &[f32], rows: usize, cols: usize, ld: usize| -> Vec<C32> {
        let mut out = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                let re = x[i * ld + j];
                out.push(c32(re, 0.25 - re * 0.5));
            }
        }
        out
    };
    let inflate = |x: &[f32], rows: usize, cols: usize, ld: usize| -> Vec<C32> {
        let mut out = vec![c32(4e4, -4e4); rows * ld];
        for i in 0..rows {
            for j in 0..cols {
                let re = x[i * ld + j];
                out[i * ld + j] = c32(re, 0.25 - re * 0.5);
            }
        }
        out
    };
    for _ in 0..6 {
        let (m, n, k) =
            (rng.gen_range(1..8), rng.gen_range(1..8), rng.gen_range(1..12));
        let (pa, pb, pc): (usize, usize, usize) =
            (rng.gen_range(1..4), rng.gen_range(1..4), rng.gen_range(1..4));
        for transa in OPS {
            for transb in OPS {
                let (ar, ac) = if transa == Op::None { (m, k) } else { (k, m) };
                let (br, bc) = if transb == Op::None { (k, n) } else { (n, k) };
                let (af, lda) = padded_matrix(&mut rng, ar, ac, pa);
                let (bf, ldb) = padded_matrix(&mut rng, br, bc, pb);
                let a_pad = inflate(&af, ar, ac, lda);
                let b_pad = inflate(&bf, br, bc, ldb);
                let a_dense = repack(&af, ar, ac, lda);
                let b_dense = repack(&bf, br, bc, ldb);
                let ldc = n + pc;
                for mode in ComputeMode::ALL {
                    let mut c_pad = vec![c32(-9.0, 9.0); m * ldc];
                    let mut c_dense = vec![C32::zero(); m * n];
                    with_compute_mode(mode, || {
                        cgemm(
                            transa, transb, m, n, k,
                            C32::one(), &a_pad, lda, &b_pad, ldb,
                            C32::zero(), &mut c_pad, ldc,
                        );
                        cgemm(
                            transa, transb, m, n, k,
                            C32::one(), &a_dense, ac, &b_dense, bc,
                            C32::zero(), &mut c_dense, n,
                        );
                    });
                    for i in 0..m {
                        for j in 0..n {
                            let got = c_pad[i * ldc + j];
                            let want = c_dense[i * n + j];
                            assert_eq!(
                                (got.re.to_bits(), got.im.to_bits()),
                                (want.re.to_bits(), want.im.to_bits()),
                                "{mode:?} {}{} ({m},{n},{k}) C[{i},{j}]: {got:?} vs {want:?}",
                                transa.letter(),
                                transb.letter()
                            );
                        }
                        for j in n..ldc {
                            let pad = c_pad[i * ldc + j];
                            assert_eq!(
                                (pad.re, pad.im),
                                (-9.0, 9.0),
                                "{mode:?} clobbered C padding at ({i},{j})"
                            );
                        }
                    }
                }
            }
        }
    }
}

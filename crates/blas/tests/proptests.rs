//! Property-based tests for the GEMM routines.

use dcmesh_numerics::{c32, C32, C64};
use mkl_lite::{cgemm, config::with_compute_mode, sgemm, ComputeMode, Op};
use proptest::prelude::*;

/// Strategy producing a (m, n, k) triple and flat matrix data.
fn gemm_case() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>)> {
    (1usize..12, 1usize..12, 1usize..24).prop_flat_map(|(m, n, k)| {
        let a = proptest::collection::vec(-2.0f32..2.0, m * k);
        let b = proptest::collection::vec(-2.0f32..2.0, k * n);
        (Just(m), Just(n), Just(k), a, b)
    })
}

fn ref_product_f64(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f64> {
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f64;
            for kk in 0..k {
                s += a[i * k + kk] as f64 * b[kk * n + j] as f64;
            }
            c[i * n + j] = s;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sgemm_standard_matches_f64_reference((m, n, k, a, b) in gemm_case()) {
        let mut c = vec![0.0f32; m * n];
        with_compute_mode(ComputeMode::Standard, || {
            sgemm(Op::None, Op::None, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n);
        });
        let r = ref_product_f64(&a, &b, m, n, k);
        for (x, y) in c.iter().zip(&r) {
            let scale = 1.0 + y.abs();
            prop_assert!((*x as f64 - y).abs() <= 1e-5 * scale);
        }
    }

    #[test]
    fn sgemm_every_mode_within_its_error_budget((m, n, k, a, b) in gemm_case()) {
        let r = ref_product_f64(&a, &b, m, n, k);
        // Magnitude scale for absolute tolerance: sum of |a||b| per entry.
        for mode in ComputeMode::ALL {
            let mut c = vec![0.0f32; m * n];
            with_compute_mode(mode, || {
                sgemm(Op::None, Op::None, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n);
            });
            // Per-entry bound: k * max|a| * max|b| * 2^-bits (plus slack for
            // accumulation), from the paper's §V-B model.
            let amax = a.iter().fold(0.0f32, |s, &x| s.max(x.abs())) as f64;
            let bmax = b.iter().fold(0.0f32, |s, &x| s.max(x.abs())) as f64;
            let eps = 2f64.powi(-(mode.effective_mantissa_bits() as i32 - 1));
            let tol = (k as f64) * amax * bmax * eps * 4.0 + 1e-6;
            for (i, (x, y)) in c.iter().zip(&r).enumerate() {
                prop_assert!(
                    (*x as f64 - y).abs() <= tol,
                    "{mode:?} ({m},{n},{k}) entry {i}: {x} vs {y}, tol {tol}"
                );
            }
        }
    }

    #[test]
    fn sgemm_transpose_consistency((m, n, k, a, b) in gemm_case()) {
        // op(A)=T on a pre-transposed A must equal op(A)=N on A.
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        with_compute_mode(ComputeMode::Standard, || {
            sgemm(Op::None, Op::None, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c1, n);
            sgemm(Op::Trans, Op::None, m, n, k, 1.0, &at, m, &b, n, 0.0, &mut c2, n);
        });
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn cgemm_3m_tracks_4m(
        (m, n, k, are, bre) in gemm_case(),
        seed in 0u64..1000,
    ) {
        let _ = seed;
        let a: Vec<C32> = are.iter().map(|&x| c32(x, -x * 0.5 + 0.1)).collect();
        let b: Vec<C32> = bre.iter().map(|&x| c32(0.3 - x, x)).collect();
        let mut c4 = vec![C32::zero(); m * n];
        let mut c3 = vec![C32::zero(); m * n];
        with_compute_mode(ComputeMode::Standard, || {
            cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::zero(), &mut c4, n);
        });
        with_compute_mode(ComputeMode::Complex3m, || {
            cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::zero(), &mut c3, n);
        });
        for (x, y) in c3.iter().zip(&c4) {
            let d = (x.to_c64() - y.to_c64()).abs();
            let scale = 1.0 + y.to_c64().abs();
            prop_assert!(d <= 1e-4 * (k as f64) * scale, "3M vs 4M: {d}");
        }
    }

    #[test]
    fn cgemm_conj_trans_is_adjoint(
        (m, _n, k, are, _b) in gemm_case(),
    ) {
        // <A x, y> == <x, A† y> for all x, y — verified on matrix columns.
        let a: Vec<C32> = are.iter().map(|&x| c32(x, x * 0.25 - 0.3)).collect();
        // x: k-vector as k x 1, y: m-vector as m x 1.
        let x: Vec<C32> = (0..k).map(|i| c32(i as f32 * 0.1 - 0.2, 0.05 * i as f32)).collect();
        let y: Vec<C32> = (0..m).map(|i| c32(0.3 - i as f32 * 0.07, 0.11 * i as f32)).collect();

        let mut ax = vec![C32::zero(); m];
        let mut ahy = vec![C32::zero(); k];
        with_compute_mode(ComputeMode::Standard, || {
            cgemm(Op::None, Op::None, m, 1, k, C32::one(), &a, k, &x, 1, C32::zero(), &mut ax, 1);
            cgemm(Op::ConjTrans, Op::None, k, 1, m, C32::one(), &a, k, &y, 1, C32::zero(), &mut ahy, 1);
        });
        let lhs: C64 = ax
            .iter()
            .zip(&y)
            .map(|(p, q)| q.to_c64().conj() * p.to_c64())
            .fold(C64::zero(), |s, v| s + v);
        let rhs: C64 = x
            .iter()
            .zip(&ahy)
            .map(|(p, q)| q.to_c64().conj() * p.to_c64())
            .fold(C64::zero(), |s, v| s + v);
        // <y, Ax> == <A†y, x>
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "{lhs:?} vs {rhs:?}");
    }

    #[test]
    fn gemm_linearity_in_alpha(
        (m, n, k, a, b) in gemm_case(),
        alpha in -3.0f32..3.0,
    ) {
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        with_compute_mode(ComputeMode::Standard, || {
            sgemm(Op::None, Op::None, m, n, k, alpha, &a, k, &b, n, 0.0, &mut c1, n);
            sgemm(Op::None, Op::None, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c2, n);
        });
        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - alpha * y).abs() <= 1e-4 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn cgemm_beta_accumulation(
        (m, n, k, are, bre) in gemm_case(),
    ) {
        let a: Vec<C32> = are.iter().map(|&x| c32(x, 0.2 * x)).collect();
        let b: Vec<C32> = bre.iter().map(|&x| c32(x, -0.1 * x)).collect();
        let c0: Vec<C32> = (0..m * n).map(|i| c32(i as f32 * 0.01, -0.02 * i as f32)).collect();
        // C = P + C0 must equal (P with beta 0) + C0.
        let mut c_acc = c0.clone();
        let mut c_p = vec![C32::zero(); m * n];
        with_compute_mode(ComputeMode::Standard, || {
            cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::one(), &mut c_acc, n);
            cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::zero(), &mut c_p, n);
        });
        for i in 0..m * n {
            let want = c_p[i].to_c64() + c0[i].to_c64();
            let got = c_acc[i].to_c64();
            prop_assert!((want - got).abs() < 1e-4 * (1.0 + want.abs()));
        }
    }
}

#[test]
fn env_var_example_from_paper_artifact() {
    // The artifact description's usage pattern: set the env var, run, and
    // the library must pick the mode up without code changes. We simulate
    // by parsing the documented values.
    for (value, mode) in [
        ("FLOAT_TO_BF16", ComputeMode::FloatToBf16),
        ("FLOAT_TO_BF16X2", ComputeMode::FloatToBf16x2),
        ("FLOAT_TO_BF16X3", ComputeMode::FloatToBf16x3),
        ("FLOAT_TO_TF32", ComputeMode::FloatToTf32),
        ("COMPLEX_3M", ComputeMode::Complex3m),
    ] {
        assert_eq!(ComputeMode::from_env_value(value).unwrap(), mode);
    }
}

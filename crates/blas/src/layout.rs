//! Matrix layout conventions and the BLAS `op()` argument.
//!
//! All matrices in this crate are **row-major** with an explicit leading
//! dimension `ld`: element `(i, j)` of an `m × n` matrix lives at index
//! `i * ld + j`, and `ld >= n`. This is the natural Rust layout; the GEMM
//! semantics (`m`, `n`, `k`, `op(A)`, `op(B)`) are the standard BLAS ones,
//! so the paper's dimension tables translate directly.

use dcmesh_numerics::Complex;
use dcmesh_numerics::Real;

/// The BLAS transposition argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Op {
    /// `op(X) = X`.
    #[default]
    None,
    /// `op(X) = Xᵀ`.
    Trans,
    /// `op(X) = X†` (conjugate transpose; equals `Trans` for real types).
    ConjTrans,
}

impl Op {
    /// One-letter BLAS spelling (`N`, `T`, `C`).
    pub fn letter(self) -> char {
        match self {
            Op::None => 'N',
            Op::Trans => 'T',
            Op::ConjTrans => 'C',
        }
    }

    /// The `(rows, cols)` of `op(X)` given the stored shape of `X`.
    pub fn applied_shape(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Op::None => (rows, cols),
            Op::Trans | Op::ConjTrans => (cols, rows),
        }
    }
}

/// Validates that a row-major `rows × cols` matrix with leading dimension
/// `ld` fits within `len` elements. Panics with a BLAS-style message if not.
#[track_caller]
pub fn check_matrix(name: &str, rows: usize, cols: usize, ld: usize, len: usize) {
    assert!(ld >= cols.max(1), "{name}: leading dimension {ld} < cols {cols}");
    if rows == 0 {
        return;
    }
    let needed = (rows - 1) * ld + cols;
    assert!(
        len >= needed,
        "{name}: buffer too small: need {needed} elements for {rows}x{cols} (ld {ld}), got {len}"
    );
}

/// Copies `op(A)` (where `A` is the stored `as_rows × as_cols` matrix) into
/// a dense row-major `out` buffer of shape `(out_rows, out_cols)` with
/// `ld = out_cols`. For real element types `ConjTrans` equals `Trans`.
pub fn materialize_op_real<T: Real>(
    op: Op,
    a: &[T],
    as_rows: usize,
    as_cols: usize,
    lda: usize,
    out: &mut Vec<T>,
) -> (usize, usize) {
    check_matrix("A", as_rows, as_cols, lda, a.len());
    let (r, c) = op.applied_shape(as_rows, as_cols);
    out.clear();
    out.reserve(r * c);
    match op {
        Op::None => {
            for i in 0..as_rows {
                out.extend_from_slice(&a[i * lda..i * lda + as_cols]);
            }
        }
        Op::Trans | Op::ConjTrans => {
            for j in 0..as_cols {
                for i in 0..as_rows {
                    out.push(a[i * lda + j]);
                }
            }
        }
    }
    (r, c)
}

/// Complex variant of [`materialize_op_real`]; `ConjTrans` conjugates.
pub fn materialize_op_complex<T: Real>(
    op: Op,
    a: &[Complex<T>],
    as_rows: usize,
    as_cols: usize,
    lda: usize,
    out: &mut Vec<Complex<T>>,
) -> (usize, usize) {
    check_matrix("A", as_rows, as_cols, lda, a.len());
    let (r, c) = op.applied_shape(as_rows, as_cols);
    out.clear();
    out.reserve(r * c);
    match op {
        Op::None => {
            for i in 0..as_rows {
                out.extend_from_slice(&a[i * lda..i * lda + as_cols]);
            }
        }
        Op::Trans => {
            for j in 0..as_cols {
                for i in 0..as_rows {
                    out.push(a[i * lda + j]);
                }
            }
        }
        Op::ConjTrans => {
            for j in 0..as_cols {
                for i in 0..as_rows {
                    out.push(a[i * lda + j].conj());
                }
            }
        }
    }
    (r, c)
}

/// Splits an interleaved complex matrix (row-major, leading dimension
/// `lda`) into separate dense real and imaginary planes with `ld = cols`.
pub fn deinterleave<T: Real>(
    a: &[Complex<T>],
    rows: usize,
    cols: usize,
    lda: usize,
    re: &mut Vec<T>,
    im: &mut Vec<T>,
) {
    check_matrix("A", rows, cols, lda, a.len());
    re.clear();
    im.clear();
    re.reserve(rows * cols);
    im.reserve(rows * cols);
    for i in 0..rows {
        for z in &a[i * lda..i * lda + cols] {
            re.push(z.re);
            im.push(z.im);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_numerics::c32;

    #[test]
    fn op_shapes() {
        assert_eq!(Op::None.applied_shape(3, 5), (3, 5));
        assert_eq!(Op::Trans.applied_shape(3, 5), (5, 3));
        assert_eq!(Op::ConjTrans.applied_shape(3, 5), (5, 3));
    }

    #[test]
    fn materialize_transpose_real() {
        // A = [1 2 3; 4 5 6] stored with lda = 4 (one padding column).
        let a = [1.0f32, 2.0, 3.0, 99.0, 4.0, 5.0, 6.0, 99.0];
        let mut out = Vec::new();
        let (r, c) = materialize_op_real(Op::Trans, &a, 2, 3, 4, &mut out);
        assert_eq!((r, c), (3, 2));
        assert_eq!(out, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn materialize_none_strips_padding() {
        let a = [1.0f64, 2.0, -1.0, 3.0, 4.0, -1.0];
        let mut out = Vec::new();
        let (r, c) = materialize_op_real(Op::None, &a, 2, 2, 3, &mut out);
        assert_eq!((r, c), (2, 2));
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conj_trans_conjugates_complex() {
        let a = [c32(1.0, 2.0), c32(3.0, -4.0)];
        let mut out = Vec::new();
        let (r, c) = materialize_op_complex(Op::ConjTrans, &a, 1, 2, 2, &mut out);
        assert_eq!((r, c), (2, 1));
        assert_eq!(out, vec![c32(1.0, -2.0), c32(3.0, 4.0)]);
    }

    #[test]
    fn deinterleave_planes() {
        let a = [c32(1.0, -1.0), c32(2.0, -2.0), c32(3.0, -3.0), c32(4.0, -4.0)];
        let (mut re, mut im) = (Vec::new(), Vec::new());
        deinterleave(&a, 2, 2, 2, &mut re, &mut im);
        assert_eq!(re, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(im, vec![-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn undersized_buffer_panics() {
        check_matrix("A", 4, 4, 4, 15);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn bad_ld_panics() {
        check_matrix("B", 2, 8, 4, 64);
    }

    #[test]
    fn empty_matrix_is_fine() {
        check_matrix("A", 0, 5, 5, 0);
    }
}

//! Matrix layout conventions and the BLAS `op()` argument.
//!
//! All matrices in this crate are **row-major** with an explicit leading
//! dimension `ld`: element `(i, j)` of an `m × n` matrix lives at index
//! `i * ld + j`, and `ld >= n`. This is the natural Rust layout; the GEMM
//! semantics (`m`, `n`, `k`, `op(A)`, `op(B)`) are the standard BLAS ones,
//! so the paper's dimension tables translate directly.

use crate::workspace::{take_empty, PooledBuf, Poolable};
use core::ops::Deref;
use dcmesh_numerics::Complex;
use dcmesh_numerics::Real;

/// The BLAS transposition argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Op {
    /// `op(X) = X`.
    #[default]
    None,
    /// `op(X) = Xᵀ`.
    Trans,
    /// `op(X) = X†` (conjugate transpose; equals `Trans` for real types).
    ConjTrans,
}

impl Op {
    /// One-letter BLAS spelling (`N`, `T`, `C`).
    pub fn letter(self) -> char {
        match self {
            Op::None => 'N',
            Op::Trans => 'T',
            Op::ConjTrans => 'C',
        }
    }

    /// The `(rows, cols)` of `op(X)` given the stored shape of `X`.
    pub fn applied_shape(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Op::None => (rows, cols),
            Op::Trans | Op::ConjTrans => (cols, rows),
        }
    }
}

/// Validates that a row-major `rows × cols` matrix with leading dimension
/// `ld` fits within `len` elements. Panics with a BLAS-style message if not.
#[track_caller]
pub fn check_matrix(name: &str, rows: usize, cols: usize, ld: usize, len: usize) {
    assert!(ld >= cols.max(1), "{name}: leading dimension {ld} < cols {cols}");
    if rows == 0 {
        return;
    }
    let needed = (rows - 1) * ld + cols;
    assert!(
        len >= needed,
        "{name}: buffer too small: need {needed} elements for {rows}x{cols} (ld {ld}), got {len}"
    );
}

/// Copies `op(A)` (where `A` is the stored `as_rows × as_cols` matrix) into
/// a dense row-major `out` buffer of shape `(out_rows, out_cols)` with
/// `ld = out_cols`. For real element types `ConjTrans` equals `Trans`.
pub fn materialize_op_real<T: Real>(
    op: Op,
    a: &[T],
    as_rows: usize,
    as_cols: usize,
    lda: usize,
    out: &mut Vec<T>,
) -> (usize, usize) {
    check_matrix("A", as_rows, as_cols, lda, a.len());
    let (r, c) = op.applied_shape(as_rows, as_cols);
    out.clear();
    out.reserve(r * c);
    match op {
        Op::None => {
            for i in 0..as_rows {
                out.extend_from_slice(&a[i * lda..i * lda + as_cols]);
            }
        }
        Op::Trans | Op::ConjTrans => {
            for j in 0..as_cols {
                for i in 0..as_rows {
                    out.push(a[i * lda + j]);
                }
            }
        }
    }
    (r, c)
}

/// Complex variant of [`materialize_op_real`]; `ConjTrans` conjugates.
pub fn materialize_op_complex<T: Real>(
    op: Op,
    a: &[Complex<T>],
    as_rows: usize,
    as_cols: usize,
    lda: usize,
    out: &mut Vec<Complex<T>>,
) -> (usize, usize) {
    check_matrix("A", as_rows, as_cols, lda, a.len());
    let (r, c) = op.applied_shape(as_rows, as_cols);
    out.clear();
    out.reserve(r * c);
    match op {
        Op::None => {
            for i in 0..as_rows {
                out.extend_from_slice(&a[i * lda..i * lda + as_cols]);
            }
        }
        Op::Trans => {
            for j in 0..as_cols {
                for i in 0..as_rows {
                    out.push(a[i * lda + j]);
                }
            }
        }
        Op::ConjTrans => {
            for j in 0..as_cols {
                for i in 0..as_rows {
                    out.push(a[i * lda + j].conj());
                }
            }
        }
    }
    (r, c)
}

/// A dense row-major view of `op(X)`: borrowed straight from the caller's
/// storage when no copy is needed, pool-materialised otherwise.
#[derive(Debug)]
pub enum OpView<'a, T: Poolable> {
    /// Zero-copy: the stored matrix *is* the applied operand
    /// (`op == Op::None` and `ld == cols`, so rows are contiguous).
    Borrowed(&'a [T]),
    /// `op(X)` materialised into pooled scratch.
    Owned(PooledBuf<T>),
}

impl<T: Poolable> Deref for OpView<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        match self {
            OpView::Borrowed(s) => s,
            OpView::Owned(b) => b,
        }
    }
}

/// Returns a dense (`ld == cols`) view of `op(A)` for a real matrix,
/// borrowing the caller's storage when `op == Op::None && lda == as_cols`
/// (the dominant GEMM case) and materialising into pooled scratch
/// otherwise. The applied shape is `op.applied_shape(as_rows, as_cols)`.
pub fn op_view_real<T: Real + Poolable>(
    op: Op,
    a: &[T],
    as_rows: usize,
    as_cols: usize,
    lda: usize,
) -> OpView<'_, T> {
    check_matrix("A", as_rows, as_cols, lda, a.len());
    if op == Op::None && lda == as_cols {
        return OpView::Borrowed(&a[..as_rows * as_cols]);
    }
    let mut out = take_empty::<T>(as_rows * as_cols);
    materialize_op_real(op, a, as_rows, as_cols, lda, out.vec_mut());
    OpView::Owned(out)
}

/// Applies `op` and separates the complex planes in one pass: writes dense
/// (`ld = cols`-of-the-applied-shape) real and imaginary planes of `op(A)`
/// into `re` / `im`, which must each hold `as_rows * as_cols` elements.
/// `ConjTrans` negates the imaginary plane. Returns the applied shape.
///
/// This replaces the old two-step materialise-then-deinterleave in the
/// complex GEMMs: no interleaved temporary exists at all.
pub fn deinterleave_op<T: Real>(
    op: Op,
    a: &[Complex<T>],
    as_rows: usize,
    as_cols: usize,
    lda: usize,
    re: &mut [T],
    im: &mut [T],
) -> (usize, usize) {
    check_matrix("A", as_rows, as_cols, lda, a.len());
    let (r, c) = op.applied_shape(as_rows, as_cols);
    assert_eq!(re.len(), r * c, "re plane length mismatch");
    assert_eq!(im.len(), r * c, "im plane length mismatch");
    match op {
        Op::None => {
            for i in 0..as_rows {
                let row = &a[i * lda..i * lda + as_cols];
                let re_row = &mut re[i * as_cols..(i + 1) * as_cols];
                let im_row = &mut im[i * as_cols..(i + 1) * as_cols];
                for ((z, rv), iv) in row.iter().zip(re_row).zip(im_row) {
                    *rv = z.re;
                    *iv = z.im;
                }
            }
        }
        Op::Trans => {
            // Output is as_cols × as_rows; iterate output rows (source
            // columns) so writes stay contiguous.
            for j in 0..as_cols {
                for i in 0..as_rows {
                    let z = a[i * lda + j];
                    re[j * as_rows + i] = z.re;
                    im[j * as_rows + i] = z.im;
                }
            }
        }
        Op::ConjTrans => {
            for j in 0..as_cols {
                for i in 0..as_rows {
                    let z = a[i * lda + j];
                    re[j * as_rows + i] = z.re;
                    im[j * as_rows + i] = -z.im;
                }
            }
        }
    }
    (r, c)
}

/// Splits an interleaved complex matrix (row-major, leading dimension
/// `lda`) into separate dense real and imaginary planes with `ld = cols`.
pub fn deinterleave<T: Real>(
    a: &[Complex<T>],
    rows: usize,
    cols: usize,
    lda: usize,
    re: &mut Vec<T>,
    im: &mut Vec<T>,
) {
    check_matrix("A", rows, cols, lda, a.len());
    re.clear();
    im.clear();
    re.reserve(rows * cols);
    im.reserve(rows * cols);
    for i in 0..rows {
        for z in &a[i * lda..i * lda + cols] {
            re.push(z.re);
            im.push(z.im);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_numerics::c32;

    #[test]
    fn op_shapes() {
        assert_eq!(Op::None.applied_shape(3, 5), (3, 5));
        assert_eq!(Op::Trans.applied_shape(3, 5), (5, 3));
        assert_eq!(Op::ConjTrans.applied_shape(3, 5), (5, 3));
    }

    #[test]
    fn materialize_transpose_real() {
        // A = [1 2 3; 4 5 6] stored with lda = 4 (one padding column).
        let a = [1.0f32, 2.0, 3.0, 99.0, 4.0, 5.0, 6.0, 99.0];
        let mut out = Vec::new();
        let (r, c) = materialize_op_real(Op::Trans, &a, 2, 3, 4, &mut out);
        assert_eq!((r, c), (3, 2));
        assert_eq!(out, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn materialize_none_strips_padding() {
        let a = [1.0f64, 2.0, -1.0, 3.0, 4.0, -1.0];
        let mut out = Vec::new();
        let (r, c) = materialize_op_real(Op::None, &a, 2, 2, 3, &mut out);
        assert_eq!((r, c), (2, 2));
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn conj_trans_conjugates_complex() {
        let a = [c32(1.0, 2.0), c32(3.0, -4.0)];
        let mut out = Vec::new();
        let (r, c) = materialize_op_complex(Op::ConjTrans, &a, 1, 2, 2, &mut out);
        assert_eq!((r, c), (2, 1));
        assert_eq!(out, vec![c32(1.0, -2.0), c32(3.0, 4.0)]);
    }

    #[test]
    fn deinterleave_planes() {
        let a = [c32(1.0, -1.0), c32(2.0, -2.0), c32(3.0, -3.0), c32(4.0, -4.0)];
        let (mut re, mut im) = (Vec::new(), Vec::new());
        deinterleave(&a, 2, 2, 2, &mut re, &mut im);
        assert_eq!(re, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(im, vec![-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn op_view_borrows_only_when_dense_and_untransposed() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        assert!(matches!(op_view_real(Op::None, &a, 2, 2, 2), OpView::Borrowed(_)));
        // Padded storage must materialise even for Op::None.
        let padded = [1.0f32, 2.0, -9.0, 3.0, 4.0, -9.0];
        let v = op_view_real(Op::None, &padded, 2, 2, 3);
        assert!(matches!(v, OpView::Owned(_)));
        assert_eq!(&*v, &[1.0, 2.0, 3.0, 4.0]);
        // Transposes always materialise.
        let v = op_view_real(Op::Trans, &a, 2, 2, 2);
        assert!(matches!(v, OpView::Owned(_)));
        assert_eq!(&*v, &[1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn op_view_borrow_trims_trailing_slack() {
        // Dense ld but extra elements after the matrix: the borrow must
        // cover exactly rows*cols.
        let a = [1.0f32, 2.0, 3.0, 4.0, 77.0];
        let v = op_view_real(Op::None, &a, 2, 2, 2);
        assert_eq!(v.len(), 4);
        assert_eq!(&*v, &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn deinterleave_op_matches_materialize_then_deinterleave() {
        // 2x3 complex matrix with lda = 4 (one padding column).
        let a = [
            c32(1.0, -1.0), c32(2.0, -2.0), c32(3.0, -3.0), c32(99.0, 99.0),
            c32(4.0, -4.0), c32(5.0, -5.0), c32(6.0, -6.0), c32(99.0, 99.0),
        ];
        for op in [Op::None, Op::Trans, Op::ConjTrans] {
            let (r, c) = op.applied_shape(2, 3);
            let mut re = vec![0.0f32; r * c];
            let mut im = vec![0.0f32; r * c];
            assert_eq!(deinterleave_op(op, &a, 2, 3, 4, &mut re, &mut im), (r, c));

            let mut mat = Vec::new();
            materialize_op_complex(op, &a, 2, 3, 4, &mut mat);
            let (mut re2, mut im2) = (Vec::new(), Vec::new());
            deinterleave(&mat, r, c, c, &mut re2, &mut im2);
            assert_eq!(re, re2, "{op:?} re");
            assert_eq!(im, im2, "{op:?} im");
        }
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn undersized_buffer_panics() {
        check_matrix("A", 4, 4, 4, 15);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn bad_ld_panics() {
        check_matrix("B", 2, 8, 4, 64);
    }

    #[test]
    fn empty_matrix_is_fine() {
        check_matrix("A", 0, 5, 5, 0);
    }
}

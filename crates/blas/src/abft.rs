//! ABFT-style row-checksum verification of GEMM outputs.
//!
//! Algorithm-based fault tolerance for `C ← α·op(A)·op(B) + β·C`: the
//! row sums of the output are linearly determined by the inputs,
//!
//! ```text
//! Σ_j C[i][j] = α·Σ_t op(A)[i][t]·(Σ_j op(B)[t][j]) + β·Σ_j C_pre[i][j]
//! ```
//!
//! so an O(m·n + m·k + k·n) check covers the O(m·n·k) product. A silent
//! bit flip in the output (or in the accumulator state that produced it)
//! breaks the identity by roughly the magnitude of the flipped value,
//! while legitimate rounding stays within a mode-aware bound derived
//! from the magnitude checksum `Σ|a|·|b|`.
//!
//! The bound is deliberately loose (large safety factor, linear in
//! `k + n`): a false positive here is *systematic* — the same data
//! re-trips the check after every rollback, so the supervisor would loop
//! forever. The price is that low-order mantissa flips hide inside the
//! rounding envelope of the active compute mode; those are the domain of
//! the supervisor's `verify_bursts` bit-compare, not of this check (see
//! DESIGN.md, "coverage boundaries").
//!
//! Checks are sampled 1-in-N by the process-wide GEMM call counter
//! (shared with [`crate::fault`], so fault-plan triggers and check
//! indices line up in tests). Verification runs *after* fault injection
//! so an injected flip lands between the product and its checksum.

use crate::layout::Op;
use crate::mode::ComputeMode;
use dcmesh_numerics::{Complex, C64};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Safety factor on the rounding bound. Generous on purpose: a missed
/// small-mantissa flip costs one extra `verify_bursts` replay, a false
/// positive costs the run.
const SAFETY: f64 = 64.0;

/// One detected checksum violation.
#[derive(Clone, Debug)]
pub struct AbftViolation {
    /// Routine whose output failed the check (`"SGEMM"`, ...).
    pub routine: &'static str,
    /// Absolute GEMM call index (process-wide counter).
    pub call: u64,
    /// Output row with the worst checksum defect.
    pub row: usize,
    /// Observed row sum `Σ_j C[i][j]`.
    pub observed: C64,
    /// Expected row sum from the input checksums.
    pub expected: C64,
    /// The rounding bound the defect exceeded.
    pub tolerance: f64,
    /// Compute mode active at the call.
    pub mode: ComputeMode,
}

impl core::fmt::Display for AbftViolation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} call {} row {}: row-sum {:.6e}{:+.6e}i, checksum expects {:.6e}{:+.6e}i \
             (defect {:.3e} > bound {:.3e}, mode {:?})",
            self.routine,
            self.call,
            self.row,
            self.observed.re,
            self.observed.im,
            self.expected.re,
            self.expected.im,
            (self.observed - self.expected).abs(),
            self.tolerance,
            self.mode,
        )
    }
}

struct AbftInstalled {
    period: u64,
    base_call: u64,
}

static INSTALLED: Mutex<Option<AbftInstalled>> = Mutex::new(None);
static ACTIVE: AtomicBool = AtomicBool::new(false);
static CHECKS: AtomicU64 = AtomicU64::new(0);
static VIOLATIONS: AtomicU64 = AtomicU64::new(0);
static PENDING: Mutex<Option<AbftViolation>> = Mutex::new(None);
static PENDING_FLAG: AtomicBool = AtomicBool::new(false);

/// Enables checksum verification of every `period`-th GEMM call
/// (counted from now; `1` checks every call). Replaces any previous
/// installation and drops a pending violation.
pub fn install_abft(period: u64) {
    assert!(period > 0, "ABFT period must be non-zero");
    let mut guard = INSTALLED.lock();
    *guard = Some(AbftInstalled {
        period,
        base_call: crate::fault::gemm_call_count(),
    });
    ACTIVE.store(true, Ordering::Relaxed);
    *PENDING.lock() = None;
    PENDING_FLAG.store(false, Ordering::Relaxed);
}

/// Disables checksum verification.
pub fn clear_abft() {
    let mut guard = INSTALLED.lock();
    *guard = None;
    ACTIVE.store(false, Ordering::Relaxed);
    *PENDING.lock() = None;
    PENDING_FLAG.store(false, Ordering::Relaxed);
}

/// True while verification is installed.
pub fn abft_installed() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Total checksum verifications performed by this process.
pub fn abft_check_count() -> u64 {
    CHECKS.load(Ordering::Relaxed)
}

/// Total violations detected by this process.
pub fn abft_violation_count() -> u64 {
    VIOLATIONS.load(Ordering::Relaxed)
}

/// Takes the pending violation, if any. The first violation after the
/// last take is kept; later ones only bump the counter (the supervisor
/// rolls back past all of them anyway).
pub fn take_abft_violation() -> Option<AbftViolation> {
    if !PENDING_FLAG.load(Ordering::Relaxed) {
        return None;
    }
    let mut guard = PENDING.lock();
    PENDING_FLAG.store(false, Ordering::Relaxed);
    guard.take()
}

/// Element types the checksum accumulates: everything is promoted to a
/// complex f64 (reals with a zero imaginary part).
pub(crate) trait AbftElem: Copy {
    /// The value as a complex f64.
    fn acc(self) -> C64;
    /// Unit roundoff of the element type.
    fn elem_eps() -> f64;
}

impl AbftElem for f32 {
    fn acc(self) -> C64 {
        C64 { re: self as f64, im: 0.0 }
    }
    fn elem_eps() -> f64 {
        f32::EPSILON as f64
    }
}

impl AbftElem for f64 {
    fn acc(self) -> C64 {
        C64 { re: self, im: 0.0 }
    }
    fn elem_eps() -> f64 {
        f64::EPSILON
    }
}

impl<T: AbftElem> AbftElem for Complex<T> {
    fn acc(self) -> C64 {
        C64 { re: self.re.acc().re, im: self.im.acc().re }
    }
    fn elem_eps() -> f64 {
        T::elem_eps()
    }
}

/// Scans a GEMM output for non-finite values (cheap O(m·n) pass, only
/// when telemetry events are on) and, on the first hit, records it in
/// the ledger and marks the callsite as the suspect for whatever
/// rollback/escalation the supervisor decides next. Runs after fault
/// injection so injected NaNs are attributed to the callsite that
/// produced them — the supervisor's own health check sees only the
/// recorded wavefunction, long after call context is gone.
pub(crate) fn probe_nonfinite<T: AbftElem>(
    routine: &'static str,
    c: &[T],
    m: usize,
    n: usize,
    k: usize,
    ldc: usize,
    mode: ComputeMode,
) {
    if !dcmesh_telemetry::events_enabled() || m == 0 || n == 0 {
        return;
    }
    if c.len() < (m - 1) * ldc + n {
        return;
    }
    let hit = (0..m).any(|i| {
        c[i * ldc..i * ldc + n].iter().any(|v| {
            let z = v.acc();
            !z.re.is_finite() || !z.im.is_finite()
        })
    });
    if hit {
        let cs = dcmesh_telemetry::callsite_for(routine);
        let mode_str = mode.env_value().unwrap_or("STANDARD");
        dcmesh_telemetry::ledger::record_nonfinite_output(cs, m, n, k, mode_str);
        dcmesh_telemetry::instant(
            "nonfinite_output",
            vec![
                dcmesh_telemetry::Attr {
                    key: "routine",
                    value: dcmesh_telemetry::AttrValue::Str(routine),
                },
                dcmesh_telemetry::Attr {
                    key: "callsite",
                    value: dcmesh_telemetry::AttrValue::Str(cs),
                },
                dcmesh_telemetry::Attr {
                    key: "mode",
                    value: dcmesh_telemetry::AttrValue::Str(mode_str),
                },
            ],
        );
    }
}

/// Unit roundoff of the product under `mode`, never smaller than the
/// element type's own.
fn mode_eps(mode: ComputeMode, elem_eps: f64) -> f64 {
    let m = match mode {
        ComputeMode::Standard | ComputeMode::Complex3m => elem_eps,
        ComputeMode::FloatToBf16 => 2f64.powi(-8),
        ComputeMode::FloatToBf16x2 => 2f64.powi(-16),
        ComputeMode::FloatToBf16x3 => 2f64.powi(-23),
        ComputeMode::FloatToTf32 => 2f64.powi(-11),
    };
    m.max(elem_eps)
}

/// Logical `op(X)[r][c]` of a stored matrix with leading dimension `ld`.
fn op_elem<T: AbftElem>(op: Op, s: &[T], ld: usize, r: usize, c: usize) -> C64 {
    match op {
        Op::None => s[r * ld + c].acc(),
        Op::Trans => s[c * ld + r].acc(),
        Op::ConjTrans => s[c * ld + r].acc().conj(),
    }
}

/// The β·C contribution captured before the product overwrites C.
pub(crate) struct PreSums {
    call: u64,
    /// `β·Σ_j C_pre[i][j]` per row.
    sums: Vec<C64>,
    /// `|β|·Σ_j |C_pre[i][j]|` per row.
    mags: Vec<f64>,
}

/// Decides whether this GEMM call is sampled and, if so, captures the
/// β-scaled row sums of C before the product. Must run before the
/// product is computed.
pub(crate) fn pre_gemm<T: AbftElem>(
    beta: T,
    c: &[T],
    m: usize,
    n: usize,
    ldc: usize,
) -> Option<PreSums> {
    if !ACTIVE.load(Ordering::Relaxed) || m == 0 || n == 0 {
        return None;
    }
    {
        let guard = INSTALLED.lock();
        let installed = guard.as_ref()?;
        let rel = crate::fault::gemm_call_count().saturating_sub(installed.base_call);
        if !rel.is_multiple_of(installed.period) {
            return None;
        }
    }
    // Let the GEMM's own shape validation report malformed storage.
    if c.len() < (m - 1) * ldc + n {
        return None;
    }
    let call = crate::fault::gemm_call_count();
    let beta_acc = beta.acc();
    let mut sums = vec![C64::zero(); m];
    let mut mags = vec![0.0f64; m];
    if beta_acc != C64::zero() {
        let beta_abs = beta_acc.abs();
        for i in 0..m {
            let mut s = C64::zero();
            let mut mag = 0.0f64;
            for j in 0..n {
                let v = c[i * ldc + j].acc();
                s += v;
                mag += v.abs();
            }
            sums[i] = beta_acc * s;
            mags[i] = beta_abs * mag;
        }
    }
    Some(PreSums { call, sums, mags })
}

/// Verifies the sampled call's output against the input checksums. Runs
/// after the product *and* after fault injection, so injected flips are
/// inside the checked window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn check_gemm<T: AbftElem>(
    routine: &'static str,
    pre: PreSums,
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &[T],
    ldc: usize,
    mode: ComputeMode,
) {
    CHECKS.fetch_add(1, Ordering::Relaxed);
    let alpha_acc = alpha.acc();
    let alpha_abs = alpha_acc.abs();

    // Column sums of op(B): v[t] = Σ_j op(B)[t][j].
    let mut bsum = vec![C64::zero(); k];
    let mut bmag = vec![0.0f64; k];
    if alpha_acc != C64::zero() {
        for t in 0..k {
            let mut s = C64::zero();
            let mut mag = 0.0f64;
            for j in 0..n {
                let v = op_elem(transb, b, ldb, t, j);
                s += v;
                mag += v.abs();
            }
            bsum[t] = s;
            bmag[t] = mag;
        }
    }

    let eps_total = SAFETY * mode_eps(mode, T::elem_eps()) * (k + n) as f64;
    let mut worst: Option<AbftViolation> = None;
    // Worst defect/bound ratio across the checked rows, for the ledger's
    // residual histogram. NaN is sticky: a poisoned row must reach the
    // overflow bucket, not be masked by a later finite row.
    let mut max_ratio = 0.0f64;
    let mut ratio_nan = false;
    for i in 0..m {
        let mut lhs = C64::zero();
        let mut mag = 0.0f64;
        if alpha_acc != C64::zero() {
            for t in 0..k {
                let av = op_elem(transa, a, lda, i, t);
                lhs += av * bsum[t];
                mag += av.abs() * bmag[t];
            }
        }
        let expected = alpha_acc * lhs + pre.sums[i];
        let bound = eps_total * (alpha_abs * mag + pre.mags[i]);
        let mut observed = C64::zero();
        for j in 0..n {
            observed += c[i * ldc + j].acc();
        }
        let defect = (observed - expected).abs();
        let ratio = if bound > 0.0 { defect / bound } else if defect > 0.0 { f64::INFINITY } else { 0.0 };
        if ratio.is_nan() {
            ratio_nan = true;
        } else if ratio > max_ratio {
            max_ratio = ratio;
        }
        // NaN/Inf in the row sum always violates (comparisons with NaN
        // are false, so check the complement).
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(defect <= bound) {
            let v = AbftViolation {
                routine,
                call: pre.call,
                row: i,
                observed,
                expected,
                tolerance: bound,
                mode,
            };
            // A NaN defect outranks any finite one (same complement trick).
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            let worse = match &worst {
                None => true,
                Some(w) => {
                    let wd = (w.observed - w.expected).abs();
                    !(defect <= wd)
                }
            };
            if worse {
                worst = Some(v);
            }
        }
    }

    if dcmesh_telemetry::events_enabled() {
        let cs = dcmesh_telemetry::callsite_for(routine);
        let mode_str = mode.env_value().unwrap_or("STANDARD");
        let final_ratio = if ratio_nan { f64::NAN } else { max_ratio };
        if worst.is_some() {
            dcmesh_telemetry::ledger::record_abft_violation(cs, m, n, k, mode_str, final_ratio);
        } else {
            dcmesh_telemetry::ledger::record_abft_check(cs, m, n, k, mode_str, final_ratio);
        }
    }

    if let Some(v) = worst {
        VIOLATIONS.fetch_add(1, Ordering::Relaxed);
        dcmesh_telemetry::instant(
            "abft_violation",
            vec![
                dcmesh_telemetry::Attr {
                    key: "routine",
                    value: dcmesh_telemetry::AttrValue::Str(v.routine),
                },
                dcmesh_telemetry::Attr {
                    key: "callsite",
                    value: dcmesh_telemetry::AttrValue::Str(dcmesh_telemetry::callsite_for(
                        v.routine,
                    )),
                },
                dcmesh_telemetry::Attr {
                    key: "mode",
                    value: dcmesh_telemetry::AttrValue::Str(
                        v.mode.env_value().unwrap_or("STANDARD"),
                    ),
                },
                dcmesh_telemetry::Attr {
                    key: "call",
                    value: dcmesh_telemetry::AttrValue::U64(v.call),
                },
                dcmesh_telemetry::Attr {
                    key: "detail",
                    value: dcmesh_telemetry::AttrValue::Text(v.to_string()),
                },
            ],
        );
        let mut guard = PENDING.lock();
        if guard.is_none() {
            *guard = Some(v);
            PENDING_FLAG.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    // Anything exercising the installed-plan statics lives in the
    // `abft_detection` integration binary: the sampling counter and the
    // pending-violation slot are process-global, and parallel unit tests
    // would race on them. Only pure functions are tested here.
    use super::*;

    #[test]
    fn mode_eps_is_monotone_in_precision() {
        let e32 = f32::EPSILON as f64;
        assert!(mode_eps(ComputeMode::FloatToBf16, e32) > mode_eps(ComputeMode::FloatToTf32, e32));
        assert!(
            mode_eps(ComputeMode::FloatToTf32, e32) > mode_eps(ComputeMode::FloatToBf16x2, e32)
        );
        // Never below the element type's own roundoff.
        assert_eq!(mode_eps(ComputeMode::FloatToBf16x3, e32), e32.max(2f64.powi(-23)));
        assert_eq!(mode_eps(ComputeMode::Standard, f64::EPSILON), f64::EPSILON);
    }
}

//! Global library configuration: compute mode and verbosity.
//!
//! Like oneMKL, the compute mode is process-global. It is initialised
//! lazily from `MKL_BLAS_COMPUTE_MODE` and can be overridden at runtime
//! (oneMKL's dedicated APIs). [`with_compute_mode`] provides scoped
//! overrides for experiments that sweep all modes in one process — the
//! paper had to re-launch the binary per mode; a library can do better.

use crate::mode::{ComputeMode, ParseModeError};
use crate::{COMPUTE_MODE_ENV, VERBOSE_ENV};
use parking_lot::{Mutex, ReentrantMutex};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Sentinel meaning "not yet initialised from the environment".
const MODE_UNSET: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);
static VERBOSE: OnceLock<u8> = OnceLock::new();
/// Serialises scoped overrides so concurrent `with_compute_mode` calls
/// cannot interleave their save/restore pairs. Reentrant so a scoped
/// closure may nest another override.
static OVERRIDE_LOCK: ReentrantMutex<()> = ReentrantMutex::new(());
/// Guards first-time environment initialisation.
static INIT_LOCK: Mutex<()> = Mutex::new(());

fn mode_to_u8(m: ComputeMode) -> u8 {
    ComputeMode::ALL.iter().position(|&x| x == m).expect("mode in ALL") as u8
}

fn mode_from_u8(v: u8) -> ComputeMode {
    ComputeMode::ALL[v as usize]
}

/// Returns the current global compute mode, initialising it from
/// `MKL_BLAS_COMPUTE_MODE` on first use.
///
/// An unparsable environment value panics: silently computing at the wrong
/// precision is the worst possible failure mode for a precision study.
/// Runners that want to surface the problem as a structured error instead
/// (so a supervisor can report it without killing the process) should call
/// [`try_compute_mode`] up front.
pub fn compute_mode() -> ComputeMode {
    try_compute_mode().unwrap_or_else(|e| panic!("invalid {COMPUTE_MODE_ENV}: {e}"))
}

/// Fallible variant of [`compute_mode`]: returns the parse error (which
/// lists the valid values) instead of panicking when the environment holds
/// an unrecognised `MKL_BLAS_COMPUTE_MODE`. The mode is **not** cached on
/// failure, so a corrected environment or an explicit
/// [`set_compute_mode`] recovers.
pub fn try_compute_mode() -> Result<ComputeMode, ParseModeError> {
    let v = MODE.load(Ordering::Acquire);
    if v != MODE_UNSET {
        return Ok(mode_from_u8(v));
    }
    let _g = INIT_LOCK.lock();
    let v = MODE.load(Ordering::Acquire);
    if v != MODE_UNSET {
        return Ok(mode_from_u8(v));
    }
    let mode = match std::env::var(COMPUTE_MODE_ENV) {
        Ok(s) => ComputeMode::from_env_value(&s)?,
        Err(_) => ComputeMode::Standard,
    };
    MODE.store(mode_to_u8(mode), Ordering::Release);
    Ok(mode)
}

/// Sets the global compute mode (overrides the environment).
pub fn set_compute_mode(mode: ComputeMode) {
    MODE.store(mode_to_u8(mode), Ordering::Release);
}

/// Clears any runtime override so the next call re-reads the environment.
pub fn reset_compute_mode() {
    MODE.store(MODE_UNSET, Ordering::Release);
}

/// Runs `f` with the compute mode temporarily set to `mode`, restoring the
/// previous mode afterwards (also on panic). Scoped overrides are
/// serialised process-wide, so two threads sweeping modes cannot corrupt
/// each other's settings; nested overrides from the same thread are fine.
pub fn with_compute_mode<R>(mode: ComputeMode, f: impl FnOnce() -> R) -> R {
    let _guard = OVERRIDE_LOCK.lock();
    let previous = compute_mode();
    set_compute_mode(mode);
    struct Restore(ComputeMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_compute_mode(self.0);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// The `MKL_VERBOSE` level: 0 = off, 1 = log calls, 2 = log calls with
/// timing detail (the paper uses `MKL_VERBOSE=2`).
pub fn verbose_level() -> u8 {
    *VERBOSE.get_or_init(|| {
        std::env::var(VERBOSE_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<u8>().ok())
            .unwrap_or(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: tests share process-global state; each test restores Standard.

    #[test]
    fn set_and_get_roundtrip() {
        for m in ComputeMode::ALL {
            set_compute_mode(m);
            assert_eq!(compute_mode(), m);
        }
        set_compute_mode(ComputeMode::Standard);
    }

    #[test]
    fn try_compute_mode_reports_the_set_mode() {
        set_compute_mode(ComputeMode::FloatToBf16x2);
        assert_eq!(try_compute_mode(), Ok(ComputeMode::FloatToBf16x2));
        set_compute_mode(ComputeMode::Standard);
    }

    #[test]
    fn scoped_override_restores() {
        set_compute_mode(ComputeMode::Standard);
        let inside = with_compute_mode(ComputeMode::FloatToTf32, compute_mode);
        assert_eq!(inside, ComputeMode::FloatToTf32);
        assert_eq!(compute_mode(), ComputeMode::Standard);
    }

    #[test]
    fn scoped_override_restores_on_panic() {
        set_compute_mode(ComputeMode::Standard);
        let r = std::panic::catch_unwind(|| {
            with_compute_mode(ComputeMode::FloatToBf16, || panic!("boom"))
        });
        assert!(r.is_err());
        assert_eq!(compute_mode(), ComputeMode::Standard);
    }

    #[test]
    fn nested_scoped_overrides() {
        set_compute_mode(ComputeMode::Standard);
        with_compute_mode(ComputeMode::FloatToBf16, || {
            assert_eq!(compute_mode(), ComputeMode::FloatToBf16);
            with_compute_mode(ComputeMode::Complex3m, || {
                assert_eq!(compute_mode(), ComputeMode::Complex3m);
            });
            assert_eq!(compute_mode(), ComputeMode::FloatToBf16);
        });
        assert_eq!(compute_mode(), ComputeMode::Standard);
    }
}

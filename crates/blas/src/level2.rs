//! Level-2 BLAS: matrix–vector products.
//!
//! DCMESH's per-orbital operations (applying the subspace phase matrix to
//! a single orbital's coefficient vector, projecting one wave function)
//! are GEMV-shaped. Level-2 routines are bandwidth-bound, so oneMKL's
//! alternative compute modes do not accelerate them — like oneMKL, these
//! run at native precision regardless of the global mode, and the
//! verbose log records them with `mode = STANDARD`. For the same reason
//! they never touch the [`crate::workspace`] pool: the kernels stream
//! straight from the caller's matrix with no low-precision scratch to
//! materialise.

use crate::device::{Domain, GemmDesc};
use crate::layout::{check_matrix, Op};
use crate::mode::ComputeMode;
use crate::verbose::logged;
use dcmesh_numerics::{Complex, Real, C32, C64};

/// `y ← α·op(A)·x + β·y` for a real matrix.
#[allow(clippy::too_many_arguments)]
pub fn sgemv(
    trans: Op,
    m: usize,
    n: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    x: &[f32],
    beta: f32,
    y: &mut [f32],
) {
    let desc = gemv_desc(Domain::Real32, trans, m, n);
    logged("SGEMV", trans, Op::None, desc, || {
        gemv_real(trans, m, n, alpha, a, lda, x, beta, y);
    });
}

/// `y ← α·op(A)·x + β·y` for a double-precision matrix.
#[allow(clippy::too_many_arguments)]
pub fn dgemv(
    trans: Op,
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) {
    let desc = gemv_desc(Domain::Real64, trans, m, n);
    logged("DGEMV", trans, Op::None, desc, || {
        gemv_real(trans, m, n, alpha, a, lda, x, beta, y);
    });
}

/// `y ← α·op(A)·x + β·y` for a complex single-precision matrix.
#[allow(clippy::too_many_arguments)]
pub fn cgemv(
    trans: Op,
    m: usize,
    n: usize,
    alpha: C32,
    a: &[C32],
    lda: usize,
    x: &[C32],
    beta: C32,
    y: &mut [C32],
) {
    let desc = gemv_desc(Domain::Complex32, trans, m, n);
    logged("CGEMV", trans, Op::None, desc, || {
        gemv_complex(trans, m, n, alpha, a, lda, x, beta, y);
    });
}

/// `y ← α·op(A)·x + β·y` for a complex double-precision matrix.
#[allow(clippy::too_many_arguments)]
pub fn zgemv(
    trans: Op,
    m: usize,
    n: usize,
    alpha: C64,
    a: &[C64],
    lda: usize,
    x: &[C64],
    beta: C64,
    y: &mut [C64],
) {
    let desc = gemv_desc(Domain::Complex64, trans, m, n);
    logged("ZGEMV", trans, Op::None, desc, || {
        gemv_complex(trans, m, n, alpha, a, lda, x, beta, y);
    });
}

fn gemv_desc(domain: Domain, trans: Op, m: usize, n: usize) -> GemmDesc {
    let (rows, cols) = trans.applied_shape(m, n);
    // A GEMV is a GEMM with n = 1; level-2 is mode-exempt.
    GemmDesc { domain, m: rows, n: 1, k: cols, mode: ComputeMode::Standard }
}

/// Expected x/y lengths for the stored `m × n` matrix under `trans`.
fn xy_lens(trans: Op, m: usize, n: usize) -> (usize, usize) {
    match trans {
        Op::None => (n, m),
        Op::Trans | Op::ConjTrans => (m, n),
    }
}

#[allow(clippy::too_many_arguments)]
fn gemv_real<T: Real>(
    trans: Op,
    m: usize,
    n: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    x: &[T],
    beta: T,
    y: &mut [T],
) {
    check_matrix("A", m, n, lda, a.len());
    let (xl, yl) = xy_lens(trans, m, n);
    assert_eq!(x.len(), xl, "x length");
    assert_eq!(y.len(), yl, "y length");
    for (i, yv) in y.iter_mut().enumerate() {
        let mut acc = T::ZERO;
        match trans {
            Op::None => {
                let row = &a[i * lda..i * lda + n];
                for (av, &xv) in row.iter().zip(x) {
                    acc += *av * xv;
                }
            }
            Op::Trans | Op::ConjTrans => {
                for (k, &xv) in x.iter().enumerate() {
                    acc += a[k * lda + i] * xv;
                }
            }
        }
        *yv = if beta == T::ZERO { alpha * acc } else { alpha * acc + beta * *yv };
    }
}

#[allow(clippy::too_many_arguments)]
fn gemv_complex<T: Real>(
    trans: Op,
    m: usize,
    n: usize,
    alpha: Complex<T>,
    a: &[Complex<T>],
    lda: usize,
    x: &[Complex<T>],
    beta: Complex<T>,
    y: &mut [Complex<T>],
) {
    check_matrix("A", m, n, lda, a.len());
    let (xl, yl) = xy_lens(trans, m, n);
    assert_eq!(x.len(), xl, "x length");
    assert_eq!(y.len(), yl, "y length");
    for (i, yv) in y.iter_mut().enumerate() {
        let mut acc = Complex::<T>::zero();
        match trans {
            Op::None => {
                let row = &a[i * lda..i * lda + n];
                for (av, &xv) in row.iter().zip(x) {
                    acc += av.mul_4m(xv);
                }
            }
            Op::Trans => {
                for (k, &xv) in x.iter().enumerate() {
                    acc += a[k * lda + i].mul_4m(xv);
                }
            }
            Op::ConjTrans => {
                for (k, &xv) in x.iter().enumerate() {
                    acc += a[k * lda + i].conj().mul_4m(xv);
                }
            }
        }
        let scaled = alpha.mul_4m(acc);
        *yv = if beta == Complex::zero() { scaled } else { scaled + beta.mul_4m(*yv) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::with_compute_mode;
    use dcmesh_numerics::c32;

    #[test]
    fn sgemv_matches_manual() {
        // A = [1 2; 3 4; 5 6] (3x2), x = [1, -1].
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0f32, -1.0];
        let mut y = [10.0f32, 10.0, 10.0];
        sgemv(Op::None, 3, 2, 2.0, &a, 2, &x, 1.0, &mut y);
        assert_eq!(y, [8.0, 8.0, 8.0]); // 2*(-1)+10, 2*(-1)+10, 2*(-1)+10
    }

    #[test]
    fn transpose_gemv() {
        let a = [1.0f64, 2.0, 3.0, 4.0]; // 2x2
        let x = [1.0f64, 1.0];
        let mut y = [0.0f64, 0.0];
        dgemv(Op::Trans, 2, 2, 1.0, &a, 2, &x, 0.0, &mut y);
        assert_eq!(y, [4.0, 6.0]); // columns summed
    }

    #[test]
    fn conj_trans_conjugates() {
        let a = [c32(0.0, 1.0)]; // 1x1 = i
        let x = [c32(1.0, 0.0)];
        let mut y = [C32::zero()];
        cgemv(Op::ConjTrans, 1, 1, C32::one(), &a, 1, &x, C32::zero(), &mut y);
        assert_eq!(y[0], c32(0.0, -1.0));
    }

    #[test]
    fn gemv_ignores_compute_mode() {
        // Level-2 is mode-exempt: results identical in BF16 mode.
        let a: Vec<C32> = (0..12).map(|i| c32(i as f32 * 0.371, -0.5 + i as f32 * 0.11)).collect();
        let x: Vec<C32> = (0..4).map(|i| c32(0.3 - i as f32 * 0.07, i as f32 * 0.05)).collect();
        let run = |mode| {
            let mut y = vec![C32::zero(); 3];
            with_compute_mode(mode, || {
                cgemv(Op::None, 3, 4, C32::one(), &a, 4, &x, C32::zero(), &mut y);
            });
            y
        };
        assert_eq!(run(ComputeMode::Standard), run(ComputeMode::FloatToBf16));
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        let a = [1.0f32];
        let x = [2.0f32];
        let mut y = [f32::NAN];
        sgemv(Op::None, 1, 1, 1.0, &a, 1, &x, 0.0, &mut y);
        assert_eq!(y[0], 2.0);
    }

    #[test]
    fn gemv_matches_gemm_column() {
        // GEMV must agree with GEMM at n=1.
        let m = 5;
        let k = 7;
        let a: Vec<C32> = (0..m * k).map(|i| c32((i as f32).sin(), (i as f32).cos())).collect();
        let x: Vec<C32> = (0..k).map(|i| c32(0.1 * i as f32, -0.2)).collect();
        let mut y_gemv = vec![C32::zero(); m];
        let mut y_gemm = vec![C32::zero(); m];
        with_compute_mode(ComputeMode::Standard, || {
            cgemv(Op::None, m, k, C32::one(), &a, k, &x, C32::zero(), &mut y_gemv);
            crate::gemm::cgemm(
                Op::None,
                Op::None,
                m,
                1,
                k,
                C32::one(),
                &a,
                k,
                &x,
                1,
                C32::zero(),
                &mut y_gemm,
                1,
            );
        });
        for (a, b) in y_gemv.iter().zip(&y_gemm) {
            assert!((a.to_c64() - b.to_c64()).abs() < 1e-5, "{a:?} vs {b:?}");
        }
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn wrong_vector_length_panics() {
        let a = [1.0f32, 2.0];
        let x = [1.0f32];
        let mut y = [0.0f32];
        sgemv(Op::None, 1, 2, 1.0, &a, 2, &x, 0.0, &mut y);
    }
}

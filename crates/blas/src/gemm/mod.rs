//! Level-3 GEMM routines with alternative-compute-mode dispatch.
//!
//! All four precision/domain combinations are provided with the standard
//! BLAS semantics `C ← α·op(A)·op(B) + β·C` on row-major matrices:
//!
//! * [`sgemm`] — `f32`; honours the `FLOAT_TO_*` modes.
//! * [`dgemm`] — `f64`; alternative modes do not apply (as in oneMKL,
//!   which only accelerates single-precision data types).
//! * [`cgemm`] — complex `f32`; honours `FLOAT_TO_*` *and* `COMPLEX_3M`.
//!   This is the routine DCMESH's nonlocal correction lives in.
//! * [`zgemm`] — complex `f64`; honours `COMPLEX_3M` only.
//!
//! Every call is logged through [`crate::verbose`] when recording is on.

pub mod kernel;
pub mod lowp;
pub(crate) mod pack;

use crate::config::compute_mode;
use crate::device::{Domain, GemmDesc};
use crate::layout::{check_matrix, deinterleave_op, op_view_real, Op};
use crate::mode::ComputeMode;
use crate::verbose::logged;
use crate::workspace;
use dcmesh_numerics::{Complex, Real, C32, C64};
use kernel::matmul_acc;
use lowp::matmul_acc_lowp;

/// Validates GEMM dimensions and returns the stored shapes of A and B.
#[track_caller]
fn stored_shapes(
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
) -> ((usize, usize), (usize, usize)) {
    let a_shape = match transa {
        Op::None => (m, k),
        Op::Trans | Op::ConjTrans => (k, m),
    };
    let b_shape = match transb {
        Op::None => (k, n),
        Op::Trans | Op::ConjTrans => (n, k),
    };
    (a_shape, b_shape)
}

/// Single-precision real GEMM: `C ← α·op(A)·op(B) + β·C`.
///
/// Honours the global compute mode: in the `FLOAT_TO_*` modes the product
/// is computed on BF16/TF32 component matrices with FP32 accumulation.
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    beta: f32,
    c: &mut [f32],
    ldc: usize,
) {
    let mode = compute_mode();
    let desc = GemmDesc { domain: Domain::Real32, m, n, k, mode };
    let abft = crate::abft::pre_gemm(beta, c, m, n, ldc);
    logged("SGEMM", transa, transb, desc, || {
        real_gemm_impl(mode, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    });
    crate::fault::post_gemm("SGEMM", c, m, n, ldc);
    crate::abft::probe_nonfinite("SGEMM", c, m, n, k, ldc, mode);
    if let Some(pre) = abft {
        crate::abft::check_gemm(
            "SGEMM", pre, transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc, mode,
        );
    }
}

/// Double-precision real GEMM. Alternative compute modes do not apply.
#[allow(clippy::too_many_arguments)]
pub fn dgemm(
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[f64],
    lda: usize,
    b: &[f64],
    ldb: usize,
    beta: f64,
    c: &mut [f64],
    ldc: usize,
) {
    let desc = GemmDesc { domain: Domain::Real64, m, n, k, mode: ComputeMode::Standard };
    let abft = crate::abft::pre_gemm(beta, c, m, n, ldc);
    logged("DGEMM", transa, transb, desc, || {
        real_gemm_impl(
            ComputeMode::Standard,
            transa,
            transb,
            m,
            n,
            k,
            alpha,
            a,
            lda,
            b,
            ldb,
            beta,
            c,
            ldc,
        );
    });
    crate::fault::post_gemm("DGEMM", c, m, n, ldc);
    crate::abft::probe_nonfinite("DGEMM", c, m, n, k, ldc, ComputeMode::Standard);
    if let Some(pre) = abft {
        crate::abft::check_gemm(
            "DGEMM",
            pre,
            transa,
            transb,
            m,
            n,
            k,
            alpha,
            a,
            lda,
            b,
            ldb,
            c,
            ldc,
            ComputeMode::Standard,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn real_gemm_impl<T: Real + LowpDispatch>(
    mode: ComputeMode,
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    let ((ar, ac), (br, bc)) = stored_shapes(transa, transb, m, n, k);
    check_matrix("A", ar, ac, lda, a.len());
    check_matrix("B", br, bc, ldb, b.len());
    check_matrix("C", m, n, ldc, c.len());
    if m == 0 || n == 0 {
        return;
    }

    // Fast path: alpha == 0 only scales C.
    if alpha == T::ZERO {
        scale_rows(c, m, n, ldc, beta);
        return;
    }

    // Zero-copy when `op == None` and the storage is dense; pooled scratch
    // otherwise. The product accumulator is pooled too, so the steady
    // state allocates nothing.
    let aview = op_view_real(transa, a, ar, ac, lda);
    let bview = op_view_real(transb, b, br, bc, ldb);

    let mut product = workspace::take_zeroed::<T>(m * n);
    T::matmul_dispatch(mode, &aview, &bview, &mut product, m, n, k);

    combine_rows(c, &product, m, n, ldc, alpha, beta);
}

/// Mode dispatch hook: `f32` supports the low-precision paths, `f64` is
/// always standard.
trait LowpDispatch: kernel::MicroArch {
    fn matmul_dispatch(
        mode: ComputeMode,
        a: &[Self],
        b: &[Self],
        acc: &mut [Self],
        m: usize,
        n: usize,
        k: usize,
    );
}

impl LowpDispatch for f32 {
    fn matmul_dispatch(
        mode: ComputeMode,
        a: &[f32],
        b: &[f32],
        acc: &mut [f32],
        m: usize,
        n: usize,
        k: usize,
    ) {
        matmul_acc_lowp(mode, a, b, acc, m, n, k);
    }
}

impl LowpDispatch for f64 {
    fn matmul_dispatch(
        _mode: ComputeMode,
        a: &[f64],
        b: &[f64],
        acc: &mut [f64],
        m: usize,
        n: usize,
        k: usize,
    ) {
        matmul_acc(a, b, acc, m, n, k);
    }
}

/// `C_block *= beta` over the logical m×n window of a padded matrix.
fn scale_rows<T: Real>(c: &mut [T], m: usize, n: usize, ldc: usize, beta: T) {
    if beta == T::ONE {
        return;
    }
    for i in 0..m {
        for v in &mut c[i * ldc..i * ldc + n] {
            // beta == 0 must overwrite (it may NOT read C, which can hold
            // uninitialised NaNs under BLAS semantics).
            *v = if beta == T::ZERO { T::ZERO } else { *v * beta };
        }
    }
}

/// `C ← α·P + β·C` over the logical window.
fn combine_rows<T: Real>(
    c: &mut [T],
    product: &[T],
    m: usize,
    n: usize,
    ldc: usize,
    alpha: T,
    beta: T,
) {
    for i in 0..m {
        let crow = &mut c[i * ldc..i * ldc + n];
        let prow = &product[i * n..i * n + n];
        if beta == T::ZERO {
            for (cv, &pv) in crow.iter_mut().zip(prow) {
                *cv = alpha * pv;
            }
        } else {
            for (cv, &pv) in crow.iter_mut().zip(prow) {
                *cv = alpha * pv + beta * *cv;
            }
        }
    }
}

/// Single-precision complex GEMM — the routine at the heart of the paper.
///
/// Honours every compute mode: `FLOAT_TO_*` modes quantise the real and
/// imaginary planes and run the four-product complex structure on the
/// emulated systolic arrays; `COMPLEX_3M` runs the three-multiplication
/// structure at native FP32 element precision.
#[allow(clippy::too_many_arguments)]
pub fn cgemm(
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: C32,
    a: &[C32],
    lda: usize,
    b: &[C32],
    ldb: usize,
    beta: C32,
    c: &mut [C32],
    ldc: usize,
) {
    let mode = compute_mode();
    let desc = GemmDesc { domain: Domain::Complex32, m, n, k, mode };
    let abft = crate::abft::pre_gemm(beta, c, m, n, ldc);
    logged("CGEMM", transa, transb, desc, || {
        complex_gemm_impl(mode, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    });
    crate::fault::post_gemm("CGEMM", c, m, n, ldc);
    crate::abft::probe_nonfinite("CGEMM", c, m, n, k, ldc, mode);
    if let Some(pre) = abft {
        crate::abft::check_gemm(
            "CGEMM", pre, transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc, mode,
        );
    }
}

/// Double-precision complex GEMM. Honours `COMPLEX_3M` only.
#[allow(clippy::too_many_arguments)]
pub fn zgemm(
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: C64,
    a: &[C64],
    lda: usize,
    b: &[C64],
    ldb: usize,
    beta: C64,
    c: &mut [C64],
    ldc: usize,
) {
    let mode = match compute_mode() {
        ComputeMode::Complex3m => ComputeMode::Complex3m,
        _ => ComputeMode::Standard,
    };
    let desc = GemmDesc { domain: Domain::Complex64, m, n, k, mode };
    let abft = crate::abft::pre_gemm(beta, c, m, n, ldc);
    logged("ZGEMM", transa, transb, desc, || {
        complex_gemm_impl(mode, transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    });
    crate::fault::post_gemm("ZGEMM", c, m, n, ldc);
    crate::abft::probe_nonfinite("ZGEMM", c, m, n, k, ldc, mode);
    if let Some(pre) = abft {
        crate::abft::check_gemm(
            "ZGEMM", pre, transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc, mode,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn complex_gemm_impl<T: Real + LowpDispatch>(
    mode: ComputeMode,
    transa: Op,
    transb: Op,
    m: usize,
    n: usize,
    k: usize,
    alpha: Complex<T>,
    a: &[Complex<T>],
    lda: usize,
    b: &[Complex<T>],
    ldb: usize,
    beta: Complex<T>,
    c: &mut [Complex<T>],
    ldc: usize,
) {
    let ((ar, ac), (br, bc)) = stored_shapes(transa, transb, m, n, k);
    check_matrix("A", ar, ac, lda, a.len());
    check_matrix("B", br, bc, ldb, b.len());
    check_matrix("C", m, n, ldc, c.len());
    if m == 0 || n == 0 {
        return;
    }
    if alpha == Complex::zero() {
        for i in 0..m {
            for v in &mut c[i * ldc..i * ldc + n] {
                *v = if beta == Complex::zero() { Complex::zero() } else { *v * beta };
            }
        }
        return;
    }

    // Apply op() and separate the planes in one pass, straight from the
    // caller's (possibly padded) storage into pooled scratch — no
    // interleaved temporary is ever built.
    let mut are = workspace::take_scratch::<T>(m * k);
    let mut aim = workspace::take_scratch::<T>(m * k);
    deinterleave_op(transa, a, ar, ac, lda, &mut are, &mut aim);
    let mut bre = workspace::take_scratch::<T>(k * n);
    let mut bim = workspace::take_scratch::<T>(k * n);
    deinterleave_op(transb, b, br, bc, ldb, &mut bre, &mut bim);

    let mut pre = workspace::take_zeroed::<T>(m * n);
    let mut pim = workspace::take_zeroed::<T>(m * n);
    if mode == ComputeMode::Complex3m {
        complex_product_3m(&are, &aim, &bre, &bim, &mut pre, &mut pim, m, n, k);
    } else {
        complex_product_4m(mode, &are, &aim, &bre, &bim, &mut pre, &mut pim, m, n, k);
    }

    // C ← α·P + β·C on the interleaved output.
    for i in 0..m {
        let crow = &mut c[i * ldc..i * ldc + n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let p = Complex { re: pre[i * n + j], im: pim[i * n + j] };
            let ap = alpha.mul_4m(p);
            *cv = if beta == Complex::zero() { ap } else { ap + beta.mul_4m(*cv) };
        }
    }
}

/// Conventional complex product structure: four real GEMMs
/// (`Re = ArBr − AiBi`, `Im = ArBi + AiBr`), each component product
/// running at the selected low-precision mode. `pre`/`pim` must arrive
/// zeroed (the kernel accumulates into them).
#[allow(clippy::too_many_arguments)]
fn complex_product_4m<T: Real + LowpDispatch>(
    mode: ComputeMode,
    are: &[T],
    aim: &[T],
    bre: &[T],
    bim: &[T],
    pre: &mut [T],
    pim: &mut [T],
    m: usize,
    n: usize,
    k: usize,
) {
    // Re += Ar·Br ; Re −= Ai·Bi (via negated copy so the accumulate kernel
    // stays add-only, like the hardware's signed-accumulate).
    T::matmul_dispatch(mode, are, bre, pre, m, n, k);
    let mut aim_neg = workspace::take_scratch::<T>(aim.len());
    for (d, &x) in aim_neg.iter_mut().zip(aim) {
        *d = -x;
    }
    T::matmul_dispatch(mode, &aim_neg, bim, pre, m, n, k);
    // Im += Ar·Bi ; Im += Ai·Br
    T::matmul_dispatch(mode, are, bim, pim, m, n, k);
    T::matmul_dispatch(mode, aim, bre, pim, m, n, k);
}

/// 3M complex product structure: three real GEMMs.
///
/// ```text
/// T1 = (Ar + Ai)·Br;  T2 = Ar·(Bi − Br);  T3 = Ai·(Br + Bi)
/// Re = T1 − T3;       Im = T1 + T2
/// ```
///
/// `pre`/`pim` are overwritten. All temporaries come from the workspace
/// pool.
#[allow(clippy::too_many_arguments)]
fn complex_product_3m<T: kernel::MicroArch>(
    are: &[T],
    aim: &[T],
    bre: &[T],
    bim: &[T],
    pre: &mut [T],
    pim: &mut [T],
    m: usize,
    n: usize,
    k: usize,
) {
    let mut a_sum = workspace::take_scratch::<T>(are.len());
    for (d, (&r, &i)) in a_sum.iter_mut().zip(are.iter().zip(aim)) {
        *d = r + i;
    }
    let mut b_diff = workspace::take_scratch::<T>(bre.len());
    let mut b_sum = workspace::take_scratch::<T>(bre.len());
    for ((db, ds), (&r, &i)) in
        b_diff.iter_mut().zip(b_sum.iter_mut()).zip(bre.iter().zip(bim))
    {
        *db = i - r;
        *ds = r + i;
    }

    let mut t1 = workspace::take_zeroed::<T>(m * n);
    let mut t2 = workspace::take_zeroed::<T>(m * n);
    let mut t3 = workspace::take_zeroed::<T>(m * n);
    matmul_acc(&a_sum, bre, &mut t1, m, n, k);
    matmul_acc(are, &b_diff, &mut t2, m, n, k);
    matmul_acc(aim, &b_sum, &mut t3, m, n, k);

    for (i, (p, q)) in pre.iter_mut().zip(pim.iter_mut()).enumerate() {
        *p = t1[i] - t3[i];
        *q = t1[i] + t2[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{set_compute_mode, with_compute_mode};
    use dcmesh_numerics::{c32, c64};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_c32(rng: &mut StdRng, len: usize) -> Vec<C32> {
        (0..len).map(|_| c32(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    fn rand_c64(rng: &mut StdRng, len: usize) -> Vec<C64> {
        (0..len).map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    /// Naive reference cgemm in f64 for validation.
    #[allow(clippy::too_many_arguments)]
    fn ref_cgemm(
        transa: Op,
        transb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: C64,
        a: &[C64],
        lda: usize,
        b: &[C64],
        ldb: usize,
        beta: C64,
        c: &mut [C64],
        ldc: usize,
    ) {
        let geta = |i: usize, kk: usize| match transa {
            Op::None => a[i * lda + kk],
            Op::Trans => a[kk * lda + i],
            Op::ConjTrans => a[kk * lda + i].conj(),
        };
        let getb = |kk: usize, j: usize| match transb {
            Op::None => b[kk * ldb + j],
            Op::Trans => b[j * ldb + kk],
            Op::ConjTrans => b[j * ldb + kk].conj(),
        };
        for i in 0..m {
            for j in 0..n {
                let mut s = C64::zero();
                for kk in 0..k {
                    s += geta(i, kk) * getb(kk, j);
                }
                let cv = &mut c[i * ldc + j];
                *cv = alpha * s + beta * *cv;
            }
        }
    }

    #[test]
    fn sgemm_matches_reference_all_ops() {
        set_compute_mode(ComputeMode::Standard);
        let mut rng = StdRng::seed_from_u64(5);
        let (m, n, k) = (7, 9, 11);
        for &ta in &[Op::None, Op::Trans] {
            for &tb in &[Op::None, Op::Trans] {
                let (a_shape, b_shape) = super::stored_shapes(ta, tb, m, n, k);
                let a: Vec<f32> =
                    (0..a_shape.0 * a_shape.1).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let b: Vec<f32> =
                    (0..b_shape.0 * b_shape.1).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let mut c: Vec<f32> = (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let c0 = c.clone();
                sgemm(ta, tb, m, n, k, 2.0, &a, a_shape.1, &b, b_shape.1, 0.5, &mut c, n);

                // reference in f64
                let a64: Vec<C64> = a.iter().map(|&x| c64(x as f64, 0.0)).collect();
                let b64: Vec<C64> = b.iter().map(|&x| c64(x as f64, 0.0)).collect();
                let mut c64v: Vec<C64> = c0.iter().map(|&x| c64(x as f64, 0.0)).collect();
                ref_cgemm(
                    ta,
                    tb,
                    m,
                    n,
                    k,
                    c64(2.0, 0.0),
                    &a64,
                    a_shape.1,
                    &b64,
                    b_shape.1,
                    c64(0.5, 0.0),
                    &mut c64v,
                    n,
                );
                for (i, (&x, &y)) in c.iter().zip(&c64v).enumerate() {
                    assert!(
                        (x as f64 - y.re).abs() < 1e-5,
                        "op({ta:?},{tb:?}) i={i}: {x} vs {}",
                        y.re
                    );
                }
            }
        }
    }

    #[test]
    fn cgemm_matches_reference_all_ops_and_modes() {
        let mut rng = StdRng::seed_from_u64(6);
        let (m, n, k) = (6, 5, 8);
        for &ta in &[Op::None, Op::Trans, Op::ConjTrans] {
            for &tb in &[Op::None, Op::Trans, Op::ConjTrans] {
                let (a_shape, b_shape) = super::stored_shapes(ta, tb, m, n, k);
                let a = rand_c32(&mut rng, a_shape.0 * a_shape.1);
                let b = rand_c32(&mut rng, b_shape.0 * b_shape.1);
                let c0 = rand_c32(&mut rng, m * n);
                let alpha = c32(1.25, -0.5);
                let beta = c32(0.25, 0.75);

                let a64: Vec<C64> = a.iter().map(|z| z.to_c64()).collect();
                let b64: Vec<C64> = b.iter().map(|z| z.to_c64()).collect();
                let mut cref: Vec<C64> = c0.iter().map(|z| z.to_c64()).collect();
                ref_cgemm(
                    ta,
                    tb,
                    m,
                    n,
                    k,
                    alpha.to_c64(),
                    &a64,
                    a_shape.1,
                    &b64,
                    b_shape.1,
                    beta.to_c64(),
                    &mut cref,
                    n,
                );

                for mode in ComputeMode::ALL {
                    let tol = match mode {
                        ComputeMode::FloatToBf16 => 0.1,
                        ComputeMode::FloatToTf32 => 0.02,
                        ComputeMode::FloatToBf16x2 => 1e-3,
                        _ => 1e-4,
                    };
                    let mut c = c0.clone();
                    with_compute_mode(mode, || {
                        cgemm(ta, tb, m, n, k, alpha, &a, a_shape.1, &b, b_shape.1, beta, &mut c, n);
                    });
                    for (i, (x, y)) in c.iter().zip(&cref).enumerate() {
                        let d = (x.to_c64() - *y).abs();
                        assert!(
                            d < tol,
                            "{mode:?} op({ta:?},{tb:?}) i={i}: {:?} vs {:?} (d={d})",
                            x,
                            y
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zgemm_standard_and_3m_agree_to_f64_accuracy() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, n, k) = (5, 6, 7);
        let a = rand_c64(&mut rng, m * k);
        let b = rand_c64(&mut rng, k * n);
        let mut c_std = vec![C64::zero(); m * n];
        let mut c_3m = vec![C64::zero(); m * n];
        with_compute_mode(ComputeMode::Standard, || {
            zgemm(Op::None, Op::None, m, n, k, C64::one(), &a, k, &b, n, C64::zero(), &mut c_std, n);
        });
        with_compute_mode(ComputeMode::Complex3m, || {
            zgemm(Op::None, Op::None, m, n, k, C64::one(), &a, k, &b, n, C64::zero(), &mut c_3m, n);
        });
        let mut max_d = 0.0f64;
        let mut any_diff = false;
        for (x, y) in c_std.iter().zip(&c_3m) {
            let d = (*x - *y).abs();
            max_d = max_d.max(d);
            if x != y {
                any_diff = true;
            }
        }
        assert!(max_d < 1e-13, "3M deviates too much: {max_d}");
        // The two algorithms round differently; identical output would
        // suggest 3M was not actually taken.
        assert!(any_diff, "3M path produced bit-identical results — suspicious");
    }

    #[test]
    fn beta_zero_overwrites_nan() {
        set_compute_mode(ComputeMode::Standard);
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [f32::NAN];
        sgemm(Op::None, Op::None, 1, 1, 2, 1.0, &a, 2, &b, 1, 0.0, &mut c, 1);
        assert_eq!(c[0], 11.0);

        let mut cz = [c32(f32::NAN, f32::NAN)];
        let az = [c32(1.0, 0.0)];
        let bz = [c32(2.0, 0.0)];
        cgemm(Op::None, Op::None, 1, 1, 1, C32::one(), &az, 1, &bz, 1, C32::zero(), &mut cz, 1);
        assert_eq!(cz[0], c32(2.0, 0.0));
    }

    #[test]
    fn alpha_zero_skips_product() {
        set_compute_mode(ComputeMode::Standard);
        // A deliberately contains NaN: with alpha == 0 BLAS must not touch it.
        let a = [f32::NAN];
        let b = [f32::NAN];
        let mut c = [7.0f32];
        sgemm(Op::None, Op::None, 1, 1, 1, 0.0, &a, 1, &b, 1, 2.0, &mut c, 1);
        assert_eq!(c[0], 14.0);
    }

    #[test]
    fn leading_dimension_padding_respected() {
        set_compute_mode(ComputeMode::Standard);
        // C has ldc = 3 with a padding column that must survive untouched.
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [1.0f32, 2.0, 3.0, 4.0];
        let mut c = [0.0f32, 0.0, -9.0, 0.0, 0.0, -9.0];
        sgemm(Op::None, Op::None, 2, 2, 2, 1.0, &a, 2, &b, 2, 0.0, &mut c, 3);
        assert_eq!(c, [1.0, 2.0, -9.0, 3.0, 4.0, -9.0]);
    }

    #[test]
    fn dgemm_ignores_low_precision_modes() {
        let a = vec![0.123456789012345f64; 16];
        let b = vec![0.987654321098765f64; 16];
        let run = |mode| {
            let mut c = vec![0.0f64; 16];
            with_compute_mode(mode, || {
                dgemm(Op::None, Op::None, 4, 4, 4, 1.0, &a, 4, &b, 4, 0.0, &mut c, 4);
            });
            c
        };
        assert_eq!(run(ComputeMode::Standard), run(ComputeMode::FloatToBf16));
    }

    #[test]
    fn steady_state_reuses_workspace_buffers() {
        // After warm-up calls per mode, repeated identical calls must not
        // grow the pool: no fresh Vecs (misses) and no capacity growth
        // (grows). This is the in-process proxy for the counting-allocator
        // gate in the `gemm_hostperf` bench. Two warm-up calls: the first
        // sizes the buffers, the second settles the LIFO pairing when the
        // pool was seeded by a different mode's checkout pattern.
        let mut rng = StdRng::seed_from_u64(42);
        let (m, n, k) = (16, 12, 24);
        let a = rand_c32(&mut rng, m * k);
        let b = rand_c32(&mut rng, k * n);
        crate::workspace::with_fresh_workspace(|| {
            for mode in ComputeMode::ALL {
                with_compute_mode(mode, || {
                    let mut c = vec![C32::zero(); m * n];
                    for _ in 0..2 {
                        cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::zero(), &mut c, n);
                    }
                    let warm = crate::workspace::stats::<f32>();
                    for _ in 0..3 {
                        cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::zero(), &mut c, n);
                    }
                    let after = crate::workspace::stats::<f32>();
                    assert_eq!(after.misses, warm.misses, "{mode:?}: pool missed in steady state");
                    assert_eq!(after.grows, warm.grows, "{mode:?}: pool grew in steady state");
                    assert!(after.takes > warm.takes, "{mode:?}: pool not used at all");
                });
            }
        });
    }

    #[test]
    fn fault_injected_inf_in_b_survives_zero_rows_of_a() {
        // End-to-end version of the kernel zero-skip regression: a
        // FaultPlan corrupts B with +Inf (via a GEMM writing into B's
        // buffer), and a downstream GEMM whose A has an all-zero row must
        // still surface the non-finite value in C as NaN — the pattern the
        // supervisor's health checks rely on.
        set_compute_mode(ComputeMode::Standard);
        let k = 4;
        let n = 3;
        // B: k×n, finite, then corrupt one element with Inf the same way
        // fault::post_gemm does.
        let mut b = vec![1.0f32; k * n];
        b[n + 2] = f32::INFINITY;
        // A: m×k with row 1 all zeros (e.g. an empty orbital block).
        let m = 2;
        let mut a = vec![0.5f32; m * k];
        for v in &mut a[k..2 * k] {
            *v = 0.0;
        }
        let mut c = vec![0.0f32; m * n];
        sgemm(Op::None, Op::None, m, n, k, 1.0, &a, k, &b, n, 0.0, &mut c, n);
        assert!(c[2].is_infinite(), "nonzero row: Inf must reach C, got {}", c[2]);
        assert!(
            c[n + 2].is_nan(),
            "zero row of A times Inf in B must be NaN (0·Inf), got {}",
            c[n + 2]
        );
    }

    #[test]
    fn cgemm_bf16_less_accurate_than_tf32() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, n, k) = (8, 8, 32);
        let a = rand_c32(&mut rng, m * k);
        let b = rand_c32(&mut rng, k * n);
        let mut exact = vec![C64::zero(); m * n];
        let a64: Vec<C64> = a.iter().map(|z| z.to_c64()).collect();
        let b64: Vec<C64> = b.iter().map(|z| z.to_c64()).collect();
        ref_cgemm(Op::None, Op::None, m, n, k, C64::one(), &a64, k, &b64, n, C64::zero(), &mut exact, n);

        let err = |mode| {
            let mut c = vec![C32::zero(); m * n];
            with_compute_mode(mode, || {
                cgemm(Op::None, Op::None, m, n, k, C32::one(), &a, k, &b, n, C32::zero(), &mut c, n);
            });
            c.iter()
                .zip(&exact)
                .map(|(x, y)| (x.to_c64() - *y).abs())
                .fold(0.0, f64::max)
        };
        let e_bf16 = err(ComputeMode::FloatToBf16);
        let e_tf32 = err(ComputeMode::FloatToTf32);
        let e_x3 = err(ComputeMode::FloatToBf16x3);
        assert!(e_bf16 > e_tf32, "bf16 {e_bf16} <= tf32 {e_tf32}");
        assert!(e_tf32 > e_x3, "tf32 {e_tf32} <= x3 {e_x3}");
    }
}

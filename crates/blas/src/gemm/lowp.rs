//! Low-precision (systolic-emulated) real GEMM paths.
//!
//! In the `FLOAT_TO_*` modes, oneMKL converts FP32 inputs to BF16/TF32
//! component matrices, multiplies the components on the XMX systolic
//! arrays and accumulates in FP32. Because BF16×BF16 and TF32×TF32
//! products are *exactly representable* in `f32` (8+8 and 11+11 significand
//! bits both fit in 24), running the component products through the regular
//! `f32` kernel reproduces the hardware arithmetic faithfully — the only
//! freedom left is summation order, which BLAS never specifies anyway.
//!
//! Component products covered per mode (subscripts are split-term indices,
//! 0 = leading):
//!
//! * BF16:   A₀B₀
//! * BF16x2: A₀B₀ + A₀B₁ + A₁B₀            (3 of 4; drops A₁B₁ ~ 2⁻³²)
//! * BF16x3: A₀B₀ + A₀B₁ + A₁B₀ + A₀B₂ + A₂B₀ + A₁B₁
//!   (6 of 9; dropped terms are ~2⁻⁴⁰ and below)
//! * TF32:   A₀B₀ with TF32 rounding
//!
//! Execution does *not* run one GEMM pass per covered term. Following the
//! cascaded-GEMM regrouping, the B operand is packed as partial-sum
//! planes `BSₜ = fl(Σ_{j ≤ d-1-t} bⱼ)` and only the `d` diagonal products
//! `Aₜ·BSₜ` run (see [`cascade_products`] and the `pack` module docs):
//! the same covered term set at 2 (x2) or 3 (x3) kernel passes, with all
//! passes sharing one packed buffer set and one FP32 register
//! accumulator per C tile. The partial-sum rounding perturbs each
//! covered term by ≤ 2⁻²⁴ relative — below every mode's split-residual
//! floor, as the error-ordering tests pin down.

use super::kernel::{gemm_packed, matmul_acc};
use super::pack;
use crate::mode::ComputeMode;
use crate::workspace::PooledBuf;

/// The `(a_component, b_component)` product list *covered* by a given
/// BF16 split depth, in decreasing order of magnitude. This is the
/// mathematical contract of each mode; see [`cascade_products`] for the
/// product list actually executed.
pub fn product_terms(depth: usize) -> &'static [(usize, usize)] {
    match depth {
        1 => &[(0, 0)],
        2 => &[(0, 0), (0, 1), (1, 0)],
        3 => &[(0, 0), (0, 1), (1, 0), (0, 2), (2, 0), (1, 1)],
        _ => panic!("unsupported split depth {depth}"),
    }
}

/// The diagonal `(a_plane, b_plane)` products actually executed for a
/// split depth: raw A plane `t` times cascaded B partial-sum plane `t`.
/// Expanding the cascades reproduces [`product_terms`] exactly:
/// `a₀(b₀+b₁+b₂) + a₁(b₀+b₁) + a₂b₀` covers `{00,01,02,10,11,20}`.
pub fn cascade_products(depth: usize) -> &'static [(usize, usize)] {
    const DIAG: [(usize, usize); 3] = [(0, 0), (1, 1), (2, 2)];
    assert!((1..=3).contains(&depth), "unsupported split depth {depth}");
    &DIAG[..depth]
}

/// `acc += op-materialised A · B` computed in the given low-precision mode.
///
/// `a` is dense `m × k`, `b` dense `k × n`, `acc` dense `m × n`; all
/// row-major without padding (callers materialise `op()` first). Rounding
/// and splitting happen inside the pack step of the blocked kernel, so
/// every source element is converted exactly once per k-block and all
/// product terms read the same packed planes. All scratch comes from the
/// thread-local workspace pool.
pub fn matmul_acc_lowp(
    mode: ComputeMode,
    a: &[f32],
    b: &[f32],
    acc: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(acc.len(), m * n, "C shape mismatch");
    match mode {
        ComputeMode::Standard | ComputeMode::Complex3m => {
            // Native FP32 element arithmetic (3M only changes the complex
            // product structure, handled a level above).
            matmul_acc(a, b, acc, m, n, k);
        }
        ComputeMode::FloatToTf32 => {
            gemm_packed(
                acc,
                m,
                n,
                k,
                1,
                1,
                cascade_products(1),
                |k0, kc, mr, bufs: &mut [PooledBuf<f32>; 3]| {
                    pack::pack_a_tf32(a, m, k, k0, kc, mr, &mut bufs[0]);
                },
                |k0, kc, nr, bufs: &mut [PooledBuf<f32>; 3]| {
                    pack::pack_b_tf32(b, n, k0, kc, nr, &mut bufs[0]);
                },
                None,
            );
        }
        ComputeMode::FloatToBf16 => {
            gemm_packed(
                acc,
                m,
                n,
                k,
                1,
                1,
                cascade_products(1),
                |k0, kc, mr, bufs: &mut [PooledBuf<f32>; 3]| {
                    pack::pack_a_bf16(a, m, k, k0, kc, mr, &mut bufs[0]);
                },
                |k0, kc, nr, bufs: &mut [PooledBuf<f32>; 3]| {
                    pack::pack_b_bf16(b, n, k0, kc, nr, &mut bufs[0]);
                },
                None,
            );
        }
        ComputeMode::FloatToBf16x2 | ComputeMode::FloatToBf16x3 => {
            let depth = mode.split_depth().expect("split mode");
            gemm_packed(
                acc,
                m,
                n,
                k,
                depth,
                depth,
                cascade_products(depth),
                |k0, kc, mr, bufs: &mut [PooledBuf<f32>; 3]| {
                    let [b0, b1, b2] = bufs;
                    let mut planes: [&mut [f32]; 3] = [b0, b1, b2];
                    pack::pack_a_split(a, m, k, k0, kc, mr, depth, &mut planes);
                },
                |k0, kc, nr, bufs: &mut [PooledBuf<f32>; 3]| {
                    let [b0, b1, b2] = bufs;
                    let mut planes: [&mut [f32]; 3] = [b0, b1, b2];
                    pack::pack_b_cascade(b, n, k0, kc, nr, depth, &mut planes);
                },
                None,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::kernel::matmul_reference;
    use dcmesh_numerics::split::split_slice_into;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(0.1..1.0f32)).collect()
    }

    /// Max relative elementwise error of `mode` vs the f64 exact product.
    fn mode_error(mode: ComputeMode, m: usize, n: usize, k: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random(&mut rng, m * k);
        let b = random(&mut rng, k * n);
        let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let exact = matmul_reference(&a64, &b64, m, n, k);
        let mut acc = vec![0.0f32; m * n];
        matmul_acc_lowp(mode, &a, &b, &mut acc, m, n, k);
        acc.iter()
            .zip(&exact)
            .map(|(&x, &y)| ((x as f64 - y) / y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn standard_mode_is_plain_f32() {
        let err = mode_error(ComputeMode::Standard, 16, 16, 32, 3);
        assert!(err < 1e-5, "fp32 err {err}");
    }

    #[test]
    fn error_ordering_bf16_tf32_x2_x3() {
        // Positive inputs => no cancellation => §V-B bound applies and the
        // mode ordering must be strict.
        let (m, n, k) = (24, 24, 64);
        let e_bf16 = mode_error(ComputeMode::FloatToBf16, m, n, k, 7);
        let e_tf32 = mode_error(ComputeMode::FloatToTf32, m, n, k, 7);
        let e_x2 = mode_error(ComputeMode::FloatToBf16x2, m, n, k, 7);
        let e_x3 = mode_error(ComputeMode::FloatToBf16x3, m, n, k, 7);
        assert!(e_bf16 > e_tf32, "bf16 {e_bf16} vs tf32 {e_tf32}");
        assert!(e_tf32 > e_x2, "tf32 {e_tf32} vs x2 {e_x2}");
        assert!(e_x2 > e_x3, "x2 {e_x2} vs x3 {e_x3}");
        // And the absolute levels sit near the §V-B predictions.
        assert!(e_bf16 < 2f64.powi(-6), "bf16 too wrong: {e_bf16}");
        assert!(e_x3 < 1e-5, "x3 must be f32-class: {e_x3}");
    }

    #[test]
    fn bf16_error_independent_of_matrix_size() {
        // The paper's §V-B claim, verified on the real GEMM path: relative
        // error does not grow with k for sign-uniform data.
        let e_small = mode_error(ComputeMode::FloatToBf16, 8, 8, 16, 11);
        let e_large = mode_error(ComputeMode::FloatToBf16, 8, 8, 1024, 11);
        assert!(
            e_large < e_small * 4.0,
            "bf16 error grew with k: {e_small} -> {e_large}"
        );
    }

    #[test]
    fn split_products_match_documented_counts() {
        assert_eq!(product_terms(1).len(), 1);
        assert_eq!(product_terms(2).len(), 3);
        assert_eq!(product_terms(3).len(), 6);
        // Magnitude ordering: term (i, j) has weight ~2^{-8(i+j)}.
        for terms in [product_terms(2), product_terms(3)] {
            let weights: Vec<usize> = terms.iter().map(|&(i, j)| i + j).collect();
            let mut sorted = weights.clone();
            sorted.sort_unstable();
            assert_eq!(weights, sorted, "terms must be in decreasing magnitude order");
        }
        // The executed cascade runs exactly `depth` diagonal products.
        for depth in 1..=3 {
            assert_eq!(cascade_products(depth).len(), depth);
            assert!(cascade_products(depth).iter().all(|&(i, j)| i == j));
        }
    }

    #[test]
    fn cascade_agrees_with_per_term_reference() {
        // The executed diagonal products over cascaded B planes must agree
        // with literally running every covered term as its own product
        // pass, up to the 2⁻²⁴-relative partial-sum rounding.
        let (m, n, k) = (9, 13, 40);
        let mut rng = StdRng::seed_from_u64(21);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
        for mode in [ComputeMode::FloatToBf16x2, ComputeMode::FloatToBf16x3] {
            let depth = mode.split_depth().unwrap();
            let split = |src: &[f32]| {
                let mut planes = vec![vec![0.0f32; src.len()]; depth];
                let mut views: Vec<&mut [f32]> = planes.iter_mut().map(|p| &mut p[..]).collect();
                split_slice_into(src, &mut views);
                planes
            };
            let ap = split(&a);
            let bp = split(&b);
            // Term-by-term reference in f64 (summation-order differences
            // are below the comparison tolerance).
            let mut reference = vec![0.0f64; m * n];
            for &(ia, ib) in product_terms(depth) {
                let a64: Vec<f64> = ap[ia].iter().map(|&x| x as f64).collect();
                let b64: Vec<f64> = bp[ib].iter().map(|&x| x as f64).collect();
                for (r, p) in reference.iter_mut().zip(matmul_reference(&a64, &b64, m, n, k)) {
                    *r += p;
                }
            }
            let mut acc = vec![0.0f32; m * n];
            matmul_acc_lowp(mode, &a, &b, &mut acc, m, n, k);
            for (i, (&x, &y)) in acc.iter().zip(&reference).enumerate() {
                let tol = 2f64.powi(-14) * (1.0 + y.abs());
                assert!(
                    ((x as f64) - y).abs() < tol,
                    "{mode:?} i={i}: cascade {x} vs per-term {y}"
                );
            }
        }
    }

    #[test]
    fn split_modes_propagate_nonfinite() {
        // A zero row of A times an Inf in B must still produce NaN through
        // the split-plane cascade (0·Inf), and a nonzero row must surface
        // the Inf itself — in every split mode.
        let (m, n, k) = (2, 3, 4);
        let mut a = vec![0.5f32; m * k];
        for v in &mut a[k..] {
            *v = 0.0; // row 1 all zero
        }
        for mode in [
            ComputeMode::FloatToBf16,
            ComputeMode::FloatToTf32,
            ComputeMode::FloatToBf16x2,
            ComputeMode::FloatToBf16x3,
        ] {
            for bad in [f32::INFINITY, f32::NAN] {
                let mut b = vec![1.0f32; k * n];
                b[n + 2] = bad;
                let mut acc = vec![0.0f32; m * n];
                matmul_acc_lowp(mode, &a, &b, &mut acc, m, n, k);
                assert!(
                    !acc[2].is_finite(),
                    "{mode:?}: nonzero row lost {bad} (got {})",
                    acc[2]
                );
                assert!(
                    acc[n + 2].is_nan(),
                    "{mode:?}: zero row × {bad} must be NaN, got {}",
                    acc[n + 2]
                );
                assert!(acc[0].is_finite(), "{mode:?}: finite column corrupted");
            }
        }
    }

    #[test]
    fn nonfinite_in_a_propagates_through_splits() {
        // Inf/NaN on the A side: the raw split planes carry the value in
        // plane 0 with zeroed corrections; products must surface it.
        let (m, n, k) = (2, 2, 3);
        for mode in [ComputeMode::FloatToBf16x2, ComputeMode::FloatToBf16x3] {
            for bad in [f32::INFINITY, f32::NAN] {
                let mut a = vec![1.0f32; m * k];
                a[1] = bad; // row 0
                let b = vec![1.0f32; k * n];
                let mut acc = vec![0.0f32; m * n];
                matmul_acc_lowp(mode, &a, &b, &mut acc, m, n, k);
                assert!(!acc[0].is_finite(), "{mode:?}: {bad} in A lost ({})", acc[0]);
                assert!(acc[n].is_finite(), "{mode:?}: clean row corrupted");
            }
        }
    }

    #[test]
    fn bf16_exact_for_bf16_inputs() {
        // Inputs already representable in BF16 suffer no conversion loss,
        // and products/accumulation are exact in f32 for small k.
        let a = vec![1.5f32, 2.0, 0.25, 3.0];
        let b = vec![0.5f32, 1.0, 2.0, 4.0];
        let mut acc = vec![0.0f32; 4];
        matmul_acc_lowp(ComputeMode::FloatToBf16, &a, &b, &mut acc, 2, 2, 2);
        let exact = matmul_reference(&a, &b, 2, 2, 2);
        assert_eq!(acc, exact);
    }
}

//! Low-precision (systolic-emulated) real GEMM paths.
//!
//! In the `FLOAT_TO_*` modes, oneMKL converts FP32 inputs to BF16/TF32
//! component matrices, multiplies the components on the XMX systolic
//! arrays and accumulates in FP32. Because BF16×BF16 and TF32×TF32
//! products are *exactly representable* in `f32` (8+8 and 11+11 significand
//! bits both fit in 24), running the component products through the regular
//! `f32` kernel reproduces the hardware arithmetic faithfully — the only
//! freedom left is summation order, which BLAS never specifies anyway.
//!
//! Component products kept per mode (subscripts are split-term indices,
//! 0 = leading):
//!
//! * BF16:   A₀B₀
//! * BF16x2: A₀B₀ + A₀B₁ + A₁B₀            (3 of 4; drops A₁B₁ ~ 2⁻³²)
//! * BF16x3: A₀B₀ + A₀B₁ + A₁B₀ + A₀B₂ + A₂B₀ + A₁B₁
//!   (6 of 9; dropped terms are ~2⁻⁴⁰ and below)
//! * TF32:   A₀B₀ with TF32 rounding

use super::kernel::matmul_acc;
use crate::mode::ComputeMode;
use crate::workspace::{take_scratch, PooledBuf};
use dcmesh_numerics::split::split_slice_into;
use dcmesh_numerics::{bf16, tf32};

/// The `(a_component, b_component)` product list for a given BF16 split
/// depth, in decreasing order of magnitude.
pub fn product_terms(depth: usize) -> &'static [(usize, usize)] {
    match depth {
        1 => &[(0, 0)],
        2 => &[(0, 0), (0, 1), (1, 0)],
        3 => &[(0, 0), (0, 1), (1, 0), (0, 2), (2, 0), (1, 1)],
        _ => panic!("unsupported split depth {depth}"),
    }
}

/// Splits a dense matrix into up to 3 pooled BF16 component planes
/// (fixed-size array so no container allocation; planes past `depth` are
/// zero-length pool checkouts).
fn split_matrix_pooled(src: &[f32], depth: usize) -> [PooledBuf<f32>; 3] {
    let len = |d: usize| if depth > d { src.len() } else { 0 };
    let mut planes = [take_scratch::<f32>(len(0)), take_scratch(len(1)), take_scratch(len(2))];
    {
        let [p0, p1, p2] = &mut planes;
        let mut views: [&mut [f32]; 3] = [&mut p0[..], &mut p1[..], &mut p2[..]];
        split_slice_into(src, &mut views[..depth]);
    }
    planes
}

/// `acc += op-materialised A · B` computed in the given low-precision mode.
///
/// `a` is dense `m × k`, `b` dense `k × n`, `acc` dense `m × n`; all
/// row-major without padding (callers materialise `op()` first). All
/// rounded copies and split planes come from the thread-local workspace
/// pool, and rounding/splitting runs chunk-parallel.
pub fn matmul_acc_lowp(
    mode: ComputeMode,
    a: &[f32],
    b: &[f32],
    acc: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
) {
    match mode {
        ComputeMode::Standard | ComputeMode::Complex3m => {
            // Native FP32 element arithmetic (3M only changes the complex
            // product structure, handled a level above).
            matmul_acc(a, b, acc, m, n, k);
        }
        ComputeMode::FloatToTf32 => {
            let mut ar = take_scratch::<f32>(a.len());
            let mut br = take_scratch::<f32>(b.len());
            tf32::round_slice_into(a, &mut ar);
            tf32::round_slice_into(b, &mut br);
            matmul_acc(&ar, &br, acc, m, n, k);
        }
        ComputeMode::FloatToBf16 => {
            let mut ar = take_scratch::<f32>(a.len());
            let mut br = take_scratch::<f32>(b.len());
            bf16::round_slice_into(a, &mut ar);
            bf16::round_slice_into(b, &mut br);
            matmul_acc(&ar, &br, acc, m, n, k);
        }
        ComputeMode::FloatToBf16x2 | ComputeMode::FloatToBf16x3 => {
            let depth = mode.split_depth().expect("split mode");
            let ap = split_matrix_pooled(a, depth);
            let bp = split_matrix_pooled(b, depth);
            for &(ia, ib) in product_terms(depth) {
                matmul_acc(&ap[ia], &bp[ib], acc, m, n, k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::kernel::matmul_reference;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(0.1..1.0f32)).collect()
    }

    /// Max relative elementwise error of `mode` vs the f64 exact product.
    fn mode_error(mode: ComputeMode, m: usize, n: usize, k: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random(&mut rng, m * k);
        let b = random(&mut rng, k * n);
        let a64: Vec<f64> = a.iter().map(|&x| x as f64).collect();
        let b64: Vec<f64> = b.iter().map(|&x| x as f64).collect();
        let exact = matmul_reference(&a64, &b64, m, n, k);
        let mut acc = vec![0.0f32; m * n];
        matmul_acc_lowp(mode, &a, &b, &mut acc, m, n, k);
        acc.iter()
            .zip(&exact)
            .map(|(&x, &y)| ((x as f64 - y) / y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn standard_mode_is_plain_f32() {
        let err = mode_error(ComputeMode::Standard, 16, 16, 32, 3);
        assert!(err < 1e-5, "fp32 err {err}");
    }

    #[test]
    fn error_ordering_bf16_tf32_x2_x3() {
        // Positive inputs => no cancellation => §V-B bound applies and the
        // mode ordering must be strict.
        let (m, n, k) = (24, 24, 64);
        let e_bf16 = mode_error(ComputeMode::FloatToBf16, m, n, k, 7);
        let e_tf32 = mode_error(ComputeMode::FloatToTf32, m, n, k, 7);
        let e_x2 = mode_error(ComputeMode::FloatToBf16x2, m, n, k, 7);
        let e_x3 = mode_error(ComputeMode::FloatToBf16x3, m, n, k, 7);
        assert!(e_bf16 > e_tf32, "bf16 {e_bf16} vs tf32 {e_tf32}");
        assert!(e_tf32 > e_x2, "tf32 {e_tf32} vs x2 {e_x2}");
        assert!(e_x2 > e_x3, "x2 {e_x2} vs x3 {e_x3}");
        // And the absolute levels sit near the §V-B predictions.
        assert!(e_bf16 < 2f64.powi(-6), "bf16 too wrong: {e_bf16}");
        assert!(e_x3 < 1e-5, "x3 must be f32-class: {e_x3}");
    }

    #[test]
    fn bf16_error_independent_of_matrix_size() {
        // The paper's §V-B claim, verified on the real GEMM path: relative
        // error does not grow with k for sign-uniform data.
        let e_small = mode_error(ComputeMode::FloatToBf16, 8, 8, 16, 11);
        let e_large = mode_error(ComputeMode::FloatToBf16, 8, 8, 1024, 11);
        assert!(
            e_large < e_small * 4.0,
            "bf16 error grew with k: {e_small} -> {e_large}"
        );
    }

    #[test]
    fn split_products_match_documented_counts() {
        assert_eq!(product_terms(1).len(), 1);
        assert_eq!(product_terms(2).len(), 3);
        assert_eq!(product_terms(3).len(), 6);
        // Magnitude ordering: term (i, j) has weight ~2^{-8(i+j)}.
        for terms in [product_terms(2), product_terms(3)] {
            let weights: Vec<usize> = terms.iter().map(|&(i, j)| i + j).collect();
            let mut sorted = weights.clone();
            sorted.sort_unstable();
            assert_eq!(weights, sorted, "terms must be in decreasing magnitude order");
        }
    }

    #[test]
    fn bf16_exact_for_bf16_inputs() {
        // Inputs already representable in BF16 suffer no conversion loss,
        // and products/accumulation are exact in f32 for small k.
        let a = vec![1.5f32, 2.0, 0.25, 3.0];
        let b = vec![0.5f32, 1.0, 2.0, 4.0];
        let mut acc = vec![0.0f32; 4];
        matmul_acc_lowp(ComputeMode::FloatToBf16, &a, &b, &mut acc, 2, 2, 2);
        let exact = matmul_reference(&a, &b, 2, 2, 2);
        assert_eq!(acc, exact);
    }
}

//! Operand packing for the blocked GEMM driver.
//!
//! The microkernel consumes *panels*: A is repacked into `mr`-row panels
//! where element `(i, kk)` of panel `p` lives at `p·mr·kc + kk·mr + i`, and
//! B into `nr`-column panels with element `(kk, j)` of panel `q` at
//! `q·nr·kc + kk·nr + j`. Both layouts make the microkernel's inner loop a
//! pair of contiguous streams regardless of the original leading
//! dimensions. Edge panels (when `m % mr != 0` or `n % nr != 0`) are
//! zero-padded; the padded lanes only ever touch accumulator rows/columns
//! that the writeback discards, so padding can never launder a non-finite
//! value into (or out of) a real output element.
//!
//! Packing is also where precision conversion happens: the low-precision
//! modes round or split elements *as they are packed*, so each source
//! element is converted exactly once per k-block sweep no matter how many
//! product terms later read the packed planes.
//!
//! For the BF16 split modes the two operands are packed differently:
//!
//! * A-side ([`pack_a_split`]): the raw split planes `a₀, a₁, a₂` from
//!   [`Split2`]/[`Split3`] (each BF16-representable).
//! * B-side ([`pack_b_cascade`]): *cascaded partial sums*
//!   `BS_t = fl(b₀ + … + b_{d-1-t})`, i.e. for depth 3 the planes
//!   `[b₀+b₁+b₂, b₀+b₁, b₀]` and for depth 2 `[b₀+b₁, b₀]`.
//!
//! Running only the diagonal products `Aₜ·BSₜ` then covers exactly the
//! documented term sets (`lowp::product_terms`) with `d` GEMM passes
//! instead of `3`/`6`: `a₀·(b₀+b₁+b₂) + a₁·(b₀+b₁) + a₂·b₀` expands to
//! `{00,01,02,10,11,20}`. The partial sums are rounded to `f32`
//! (relative perturbation ≤ 2⁻²⁴), which sits below the 2⁻¹⁶ / ≈2⁻²⁴
//! split-residual floors of the x2/x3 modes — the error-ordering tests
//! in `lowp` pin this down empirically.

use dcmesh_numerics::bf16::Bf16;
use dcmesh_numerics::split::{Split2, Split3};
use dcmesh_numerics::tf32::Tf32;
use dcmesh_numerics::Real;

/// Packs the `[k0, k0+kc)` k-slice of dense row-major `a` (`m × k`) into
/// `mr`-row panels, applying `f` to each element.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a_with<T: Real>(
    a: &[T],
    m: usize,
    k: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    dst: &mut [T],
    f: impl Fn(T) -> T,
) {
    let mpan = m.div_ceil(mr);
    for p in 0..mpan {
        let base = p * mr * kc;
        let r0 = p * mr;
        for i in 0..mr {
            let r = r0 + i;
            if r < m {
                let src = &a[r * k + k0..r * k + k0 + kc];
                for (kk, &v) in src.iter().enumerate() {
                    dst[base + kk * mr + i] = f(v);
                }
            } else {
                for kk in 0..kc {
                    dst[base + kk * mr + i] = T::ZERO;
                }
            }
        }
    }
}

/// Packs the `[k0, k0+kc)` k-slice of dense row-major `b` (`k × n`) into
/// `nr`-column panels, applying `f` to each element.
#[inline]
pub(crate) fn pack_b_with<T: Real>(
    b: &[T],
    n: usize,
    k0: usize,
    kc: usize,
    nr: usize,
    dst: &mut [T],
    f: impl Fn(T) -> T,
) {
    let npan = n.div_ceil(nr);
    for q in 0..npan {
        let base = q * nr * kc;
        let c0 = q * nr;
        let cols = nr.min(n - c0);
        for kk in 0..kc {
            let src = &b[(k0 + kk) * n + c0..(k0 + kk) * n + c0 + cols];
            let drow = &mut dst[base + kk * nr..base + (kk + 1) * nr];
            for (d, &v) in drow.iter_mut().zip(src) {
                *d = f(v);
            }
            for d in &mut drow[cols..] {
                *d = T::ZERO;
            }
        }
    }
}

/// Identity pack (STANDARD / f64 paths).
pub(crate) fn pack_a_copy<T: Real>(
    a: &[T],
    m: usize,
    k: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    dst: &mut [T],
) {
    pack_a_with(a, m, k, k0, kc, mr, dst, |x| x);
}

/// Identity pack (STANDARD / f64 paths).
pub(crate) fn pack_b_copy<T: Real>(
    b: &[T],
    n: usize,
    k0: usize,
    kc: usize,
    nr: usize,
    dst: &mut [T],
) {
    pack_b_with(b, n, k0, kc, nr, dst, |x| x);
}

/// Rounds to BF16 while packing A.
pub(crate) fn pack_a_bf16(a: &[f32], m: usize, k: usize, k0: usize, kc: usize, mr: usize, dst: &mut [f32]) {
    pack_a_with(a, m, k, k0, kc, mr, dst, Bf16::round_f32);
}

/// Rounds to BF16 while packing B (8-lane AVX2 fast path on full panel
/// rows, bit-identical to the scalar rounding).
pub(crate) fn pack_b_bf16(b: &[f32], n: usize, k0: usize, kc: usize, nr: usize, dst: &mut [f32]) {
    let use_vec = avx2_available() && nr.is_multiple_of(8);
    pack_b_rows(b, n, k0, kc, nr, dst, |src, drow| {
        #[cfg(target_arch = "x86_64")]
        if use_vec && src.len().is_multiple_of(8) {
            // SAFETY: avx2 checked above; src and drow have the same
            // length (a multiple of 8).
            unsafe { x86::bf16_round_row(src, drow.as_mut_ptr()) };
            return;
        }
        let _ = use_vec;
        for (d, &v) in drow.iter_mut().zip(src) {
            *d = Bf16::round_f32(v);
        }
    });
}

/// Rounds to TF32 while packing A.
pub(crate) fn pack_a_tf32(a: &[f32], m: usize, k: usize, k0: usize, kc: usize, mr: usize, dst: &mut [f32]) {
    pack_a_with(a, m, k, k0, kc, mr, dst, Tf32::round_f32);
}

/// Rounds to TF32 while packing B (8-lane AVX2 fast path on full panel
/// rows, bit-identical to the scalar rounding).
pub(crate) fn pack_b_tf32(b: &[f32], n: usize, k0: usize, kc: usize, nr: usize, dst: &mut [f32]) {
    let use_vec = avx2_available() && nr.is_multiple_of(8);
    pack_b_rows(b, n, k0, kc, nr, dst, |src, drow| {
        #[cfg(target_arch = "x86_64")]
        if use_vec && src.len().is_multiple_of(8) {
            // SAFETY: avx2 checked above; src and drow have the same
            // length (a multiple of 8).
            unsafe { x86::tf32_round_row(src, drow.as_mut_ptr()) };
            return;
        }
        let _ = use_vec;
        for (d, &v) in drow.iter_mut().zip(src) {
            *d = Tf32::round_f32(v);
        }
    });
}

/// Shared B-panel traversal: calls `row` once per panel row with the
/// source slice and the destination row prefix (`cols` elements), then
/// zero-fills the padded tail itself.
fn pack_b_rows(
    b: &[f32],
    n: usize,
    k0: usize,
    kc: usize,
    nr: usize,
    dst: &mut [f32],
    row: impl Fn(&[f32], &mut [f32]),
) {
    let npan = n.div_ceil(nr);
    for q in 0..npan {
        let base = q * nr * kc;
        let c0 = q * nr;
        let cols = nr.min(n - c0);
        for kk in 0..kc {
            let src = &b[(k0 + kk) * n + c0..(k0 + kk) * n + c0 + cols];
            let drow = &mut dst[base + kk * nr..base + (kk + 1) * nr];
            row(src, &mut drow[..cols]);
            for d in &mut drow[cols..] {
                *d = 0.0;
            }
        }
    }
}

/// Raw BF16 split planes of one element: `[a₀, a₁, a₂]` (unused planes 0).
#[inline(always)]
fn split_planes(x: f32, depth: usize) -> [f32; 3] {
    if depth == 2 {
        let s = Split2::new(x);
        [s.hi, s.lo, 0.0]
    } else {
        let s = Split3::new(x);
        [s.hi, s.mid, s.lo]
    }
}

/// Cascaded partial-sum planes of one element: plane `t` holds
/// `fl(b₀ + … + b_{depth-1-t})`. Non-finite values ride along unchanged:
/// `Split*::new` puts Inf/NaN in the leading term with zero corrections,
/// so every cascade plane is Inf/NaN too and 0·Inf / 0·NaN still fire in
/// all `d` products.
#[inline(always)]
fn cascade_planes(x: f32, depth: usize) -> [f32; 3] {
    if depth == 2 {
        let s = Split2::new(x);
        [s.hi + s.lo, s.hi, 0.0]
    } else {
        let s = Split3::new(x);
        let s01 = s.hi + s.mid;
        [s01 + s.lo, s01, s.hi]
    }
}

/// Packs A while splitting each element into its raw BF16 component
/// planes (`depth` ∈ {2, 3}).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a_split(
    a: &[f32],
    m: usize,
    k: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    depth: usize,
    planes: &mut [&mut [f32]; 3],
) {
    pack_planes_a(a, m, k, k0, kc, mr, depth, planes);
}

/// Packs B while converting each element into cascaded partial-sum planes
/// (`depth` ∈ {2, 3}); see the module docs for why the diagonal products
/// over these planes reproduce the full split-term sets.
///
/// B is the volume side of the split (`k × n` elements vs A's `m × k` at
/// the paper's tall-skinny shapes), so full-width panel rows take an
/// 8-lane AVX2 fast path when the host supports it; the vector split is
/// bit-identical to the scalar one (asserted by
/// `vector_cascade_matches_scalar`), so the fast path never changes
/// results, only speed.
pub(crate) fn pack_b_cascade(
    b: &[f32],
    n: usize,
    k0: usize,
    kc: usize,
    nr: usize,
    depth: usize,
    planes: &mut [&mut [f32]; 3],
) {
    let use_vec = avx2_available() && nr.is_multiple_of(8);
    let npan = n.div_ceil(nr);
    for q in 0..npan {
        let base = q * nr * kc;
        let c0 = q * nr;
        let cols = nr.min(n - c0);
        for kk in 0..kc {
            let src = &b[(k0 + kk) * n + c0..(k0 + kk) * n + c0 + cols];
            let row0 = base + kk * nr;
            #[cfg(target_arch = "x86_64")]
            if use_vec && cols == nr {
                // SAFETY: avx2 checked above; src has exactly nr (multiple
                // of 8) elements and each active plane has nr elements at
                // row0 (the panel row).
                unsafe {
                    x86::cascade_row(
                        src,
                        depth,
                        planes[0].as_mut_ptr().add(row0),
                        planes[1].as_mut_ptr().add(row0),
                        if depth > 2 { planes[2].as_mut_ptr().add(row0) } else { core::ptr::null_mut() },
                    );
                }
                continue;
            }
            let _ = use_vec;
            for (j, &v) in src.iter().enumerate() {
                let t = cascade_planes(v, depth);
                for (d, pl) in planes.iter_mut().take(depth).enumerate() {
                    pl[row0 + j] = t[d];
                }
            }
            for j in cols..nr {
                for pl in planes.iter_mut().take(depth) {
                    pl[row0 + j] = 0.0;
                }
            }
        }
    }
}

#[inline]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! 8-lane AVX2 replicas of the scalar BF16 split/cascade. Exact
    //! bit-compatibility with the scalar path is a hard requirement (the
    //! pack must not depend on the host's ISA beyond speed); the rounding
    //! uses the same integer round-to-nearest-even trick as
    //! `Bf16::from_f32`, including its NaN-quieting behaviour.
    use core::arch::x86_64::*;

    /// Vector `Bf16::round_f32`: RNE truncation to the high 16 bits, NaN
    /// lanes quietened exactly like the scalar (`(bits>>16)|0x0040`).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn bf16_round8(x: __m256) -> __m256 {
        let bits = _mm256_castps_si256(x);
        let lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16), _mm256_set1_epi32(1));
        let rounded =
            _mm256_add_epi32(_mm256_add_epi32(bits, _mm256_set1_epi32(0x7FFF)), lsb);
        let kept = _mm256_and_si256(rounded, _mm256_set1_epi32(0xFFFF_0000u32 as i32));
        let quiet = _mm256_or_si256(
            _mm256_and_si256(bits, _mm256_set1_epi32(0xFFFF_0000u32 as i32)),
            _mm256_set1_epi32(0x0040_0000),
        );
        let nan = _mm256_cmp_ps(x, x, _CMP_UNORD_Q);
        _mm256_blendv_ps(_mm256_castsi256_ps(kept), _mm256_castsi256_ps(quiet), nan)
    }

    /// Vector `Split3::new` (depth 3) / `Split2::new` (depth 2): returns
    /// the raw planes with corrections zeroed on non-finite leads, exactly
    /// like the scalar constructors.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn split8(x: __m256, depth: usize) -> (__m256, __m256, __m256) {
        let hi = bf16_round8(x);
        let abs_hi =
            _mm256_and_ps(hi, _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF)));
        let finite = _mm256_cmp_ps(abs_hi, _mm256_set1_ps(f32::INFINITY), _CMP_LT_OQ);
        let r1 = _mm256_sub_ps(x, hi);
        if depth == 2 {
            let lo = _mm256_and_ps(bf16_round8(r1), finite);
            (hi, lo, _mm256_setzero_ps())
        } else {
            let mid = _mm256_and_ps(bf16_round8(r1), finite);
            let lo = _mm256_and_ps(bf16_round8(_mm256_sub_ps(r1, mid)), finite);
            (hi, mid, lo)
        }
    }

    /// Vector `Tf32::round_f32`: RNE truncation of the low 13 mantissa
    /// bits. Unlike BF16, the scalar TF32 rounding passes non-finite
    /// values through untouched (no NaN quieting) — replicated here by
    /// blending on an all-ones-exponent test.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tf32_round8(x: __m256) -> __m256 {
        let bits = _mm256_castps_si256(x);
        let lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 13), _mm256_set1_epi32(1));
        let rounded = _mm256_and_si256(
            _mm256_add_epi32(_mm256_add_epi32(bits, _mm256_set1_epi32(0xFFF)), lsb),
            _mm256_set1_epi32(!0x1FFF),
        );
        let expmask = _mm256_set1_epi32(0x7F80_0000);
        let special =
            _mm256_cmpeq_epi32(_mm256_and_si256(bits, expmask), expmask);
        _mm256_blendv_ps(
            _mm256_castsi256_ps(rounded),
            x,
            _mm256_castsi256_ps(special),
        )
    }

    /// Rounds one full panel row (`src.len()` a multiple of 8) to BF16.
    ///
    /// # Safety
    /// Caller must have verified avx2 support and that `dst` addresses at
    /// least `src.len()` writable elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bf16_round_row(src: &[f32], dst: *mut f32) {
        debug_assert!(src.len().is_multiple_of(8));
        for j in (0..src.len()).step_by(8) {
            let x = _mm256_loadu_ps(src.as_ptr().add(j));
            _mm256_storeu_ps(dst.add(j), bf16_round8(x));
        }
    }

    /// Rounds one full panel row (`src.len()` a multiple of 8) to TF32.
    ///
    /// # Safety
    /// Caller must have verified avx2 support and that `dst` addresses at
    /// least `src.len()` writable elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tf32_round_row(src: &[f32], dst: *mut f32) {
        debug_assert!(src.len().is_multiple_of(8));
        for j in (0..src.len()).step_by(8) {
            let x = _mm256_loadu_ps(src.as_ptr().add(j));
            _mm256_storeu_ps(dst.add(j), tf32_round8(x));
        }
    }

    /// Splits 8 consecutive elements into their raw BF16 planes, spilled
    /// to stack rows for the caller to scatter into the panel layout.
    ///
    /// # Safety
    /// Caller must have verified avx2 support and that `src` addresses at
    /// least 8 readable elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn split_rows8(src: *const f32, depth: usize, out: &mut [[f32; 8]; 3]) {
        let x = _mm256_loadu_ps(src);
        let (hi, mid, lo) = split8(x, depth);
        _mm256_storeu_ps(out[0].as_mut_ptr(), hi);
        _mm256_storeu_ps(out[1].as_mut_ptr(), mid);
        if depth > 2 {
            _mm256_storeu_ps(out[2].as_mut_ptr(), lo);
        }
    }

    /// Packs one full panel row (`src.len() == nr`, multiple of 8) of
    /// cascaded partial-sum planes. `p2` is only read for depth 3.
    ///
    /// # Safety
    /// Caller must have verified avx2 support and that each non-null
    /// plane pointer addresses at least `src.len()` writable elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn cascade_row(
        src: &[f32],
        depth: usize,
        p0: *mut f32,
        p1: *mut f32,
        p2: *mut f32,
    ) {
        debug_assert_eq!(src.len() % 8, 0);
        for j in (0..src.len()).step_by(8) {
            let x = _mm256_loadu_ps(src.as_ptr().add(j));
            let (hi, mid, lo) = split8(x, depth);
            if depth == 2 {
                // mid holds the depth-2 correction term.
                _mm256_storeu_ps(p0.add(j), _mm256_add_ps(hi, mid));
                _mm256_storeu_ps(p1.add(j), hi);
            } else {
                let s01 = _mm256_add_ps(hi, mid);
                _mm256_storeu_ps(p0.add(j), _mm256_add_ps(s01, lo));
                _mm256_storeu_ps(p1.add(j), s01);
                _mm256_storeu_ps(p2.add(j), hi);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn pack_planes_a(
    a: &[f32],
    m: usize,
    k: usize,
    k0: usize,
    kc: usize,
    mr: usize,
    depth: usize,
    planes: &mut [&mut [f32]; 3],
) {
    let use_vec = avx2_available();
    let mpan = m.div_ceil(mr);
    for p in 0..mpan {
        let base = p * mr * kc;
        let r0 = p * mr;
        for i in 0..mr {
            let r = r0 + i;
            if r < m {
                let src = &a[r * k + k0..r * k + k0 + kc];
                let mut kk = 0;
                // The split math vectorises 8-wide even though the panel
                // layout forces an mr-strided scatter on the way out; the
                // scatter targets the (L1-resident) panel buffer, so the
                // rounding arithmetic is the part worth vectorising.
                #[cfg(target_arch = "x86_64")]
                if use_vec {
                    let mut tmp = [[0.0f32; 8]; 3];
                    while kk + 8 <= kc {
                        // SAFETY: avx2 checked above; src has >= kk+8
                        // elements.
                        unsafe { x86::split_rows8(src.as_ptr().add(kk), depth, &mut tmp) };
                        for (d, pl) in planes.iter_mut().take(depth).enumerate() {
                            for (j, &v) in tmp[d].iter().enumerate() {
                                pl[base + (kk + j) * mr + i] = v;
                            }
                        }
                        kk += 8;
                    }
                }
                let _ = use_vec;
                for (kk, &v) in src.iter().enumerate().skip(kk) {
                    let t = split_planes(v, depth);
                    for (d, pl) in planes.iter_mut().take(depth).enumerate() {
                        pl[base + kk * mr + i] = t[d];
                    }
                }
            } else {
                for kk in 0..kc {
                    for pl in planes.iter_mut().take(depth) {
                        pl[base + kk * mr + i] = 0.0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_panel_layout_and_padding() {
        // 3×4 matrix, mr = 2 → two panels, second padded by one row.
        let a: Vec<f32> = (1..=12).map(|x| x as f32).collect();
        let (m, k, mr, kc) = (3, 4, 2, 4);
        let mut dst = vec![f32::NAN; 2 * mr * kc];
        pack_a_copy(&a, m, k, 0, kc, mr, &mut dst);
        // Panel 0, kk = 0 holds column 0 of rows 0..2.
        assert_eq!(&dst[0..2], &[1.0, 5.0]);
        // Panel 1, kk = 3 holds column 3 of row 2 plus a zero pad lane.
        assert_eq!(&dst[mr * kc + 3 * mr..mr * kc + 4 * mr], &[12.0, 0.0]);
    }

    #[test]
    fn b_panel_layout_and_padding() {
        // 2×5 matrix, nr = 4 → two panels, second padded by three columns.
        let b: Vec<f32> = (1..=10).map(|x| x as f32).collect();
        let (n, nr, kc) = (5, 4, 2);
        let mut dst = vec![f32::NAN; 2 * nr * kc];
        pack_b_copy(&b, n, 0, kc, nr, &mut dst);
        // Panel 0, kk = 1 holds columns 0..4 of row 1.
        assert_eq!(&dst[nr..2 * nr], &[6.0, 7.0, 8.0, 9.0]);
        // Panel 1, kk = 0 holds column 4 then zero padding.
        assert_eq!(&dst[nr * kc..nr * kc + nr], &[5.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn k_slice_offsets_respected() {
        let a: Vec<f32> = (0..8).map(|x| x as f32).collect(); // 1×8
        let mut dst = vec![0.0f32; 4];
        pack_a_copy(&a, 1, 8, 4, 4, 1, &mut dst);
        assert_eq!(dst, [4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn cascade_planes_cover_term_sums() {
        let x = 0.1234567f32;
        let s = Split3::new(x);
        let c = cascade_planes(x, 3);
        assert_eq!(c[0], (s.hi + s.mid) + s.lo);
        assert_eq!(c[1], s.hi + s.mid);
        assert_eq!(c[2], s.hi);
        let s2 = Split2::new(x);
        let c2 = cascade_planes(x, 2);
        assert_eq!(c2[0], s2.hi + s2.lo);
        assert_eq!(c2[1], s2.hi);
    }

    #[test]
    fn cascade_preserves_nonfinite() {
        for depth in [2, 3] {
            let inf = cascade_planes(f32::INFINITY, depth);
            let nan = cascade_planes(f32::NAN, depth);
            for t in 0..depth {
                assert!(inf[t].is_infinite(), "depth {depth} plane {t}");
                assert!(nan[t].is_nan(), "depth {depth} plane {t}");
            }
        }
    }

    #[test]
    fn vector_cascade_matches_scalar() {
        // n == nr == 16 forces the AVX2 fast path (where available); the
        // packed planes must match the scalar per-element cascade bit for
        // bit, including NaN/Inf/subnormal/zero/overflow lanes.
        let specials = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
            1.0e-42,        // subnormal
            f32::MAX,       // rounds to Inf in BF16
            -f32::MAX,
            1.0,
            -1.5,
            0.1234567,
            3.9999998,
            -2.7182817,
            65504.0,
            1.0e30,
        ];
        let (n, nr, kc) = (16, 16, 3);
        let mut b = vec![0.0f32; kc * n];
        for (i, v) in b.iter_mut().enumerate() {
            *v = specials[i % specials.len()] * if i % 3 == 0 { 1.0 } else { 0.731 };
        }
        for depth in [2usize, 3] {
            let mut p0 = vec![0.0f32; nr * kc];
            let mut p1 = vec![0.0f32; nr * kc];
            let mut p2 = vec![0.0f32; nr * kc];
            {
                let mut planes: [&mut [f32]; 3] = [&mut p0, &mut p1, &mut p2];
                pack_b_cascade(&b, n, 0, kc, nr, depth, &mut planes);
            }
            for kk in 0..kc {
                for j in 0..n {
                    let expect = cascade_planes(b[kk * n + j], depth);
                    let got = [p0[kk * nr + j], p1[kk * nr + j], p2[kk * nr + j]];
                    for d in 0..depth {
                        assert_eq!(
                            got[d].to_bits(),
                            expect[d].to_bits(),
                            "depth {depth} kk={kk} j={j} plane {d}: {} vs {}",
                            got[d],
                            expect[d]
                        );
                    }
                }
            }
        }
    }

    fn special_values(len: usize) -> Vec<f32> {
        let specials = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            0.0,
            -0.0,
            f32::MIN_POSITIVE,
            1.0e-42,
            f32::MAX,
            -f32::MAX,
            1.0,
            -1.5,
            0.1234567,
            3.9999998,
            -2.7182817,
            65504.0,
            1.0e30,
        ];
        (0..len)
            .map(|i| specials[i % specials.len()] * if i % 3 == 0 { 1.0 } else { 0.731 })
            .collect()
    }

    #[test]
    fn vector_b_round_matches_scalar() {
        // n == nr == 16 forces the AVX2 fast path (where available); the
        // rounded panels must match scalar Bf16/Tf32 rounding bit for bit,
        // including NaN payloads (BF16 quietens, TF32 passes through).
        let (n, nr, kc) = (16, 16, 4);
        let b = special_values(kc * n);
        let mut got = vec![0.0f32; nr * kc];
        pack_b_bf16(&b, n, 0, kc, nr, &mut got);
        for kk in 0..kc {
            for j in 0..n {
                let expect = Bf16::round_f32(b[kk * n + j]);
                assert_eq!(
                    got[kk * nr + j].to_bits(),
                    expect.to_bits(),
                    "bf16 kk={kk} j={j}"
                );
            }
        }
        pack_b_tf32(&b, n, 0, kc, nr, &mut got);
        for kk in 0..kc {
            for j in 0..n {
                let expect = Tf32::round_f32(b[kk * n + j]);
                assert_eq!(
                    got[kk * nr + j].to_bits(),
                    expect.to_bits(),
                    "tf32 kk={kk} j={j}"
                );
            }
        }
    }

    #[test]
    fn vector_split_pack_matches_scalar() {
        // kc = 16 ≥ 8 exercises the vectorised A-split (where available),
        // including its scalar tail (kc not a multiple of 8 below).
        for (kc_full, kc_used) in [(16usize, 16usize), (16, 13)] {
            let (m, mr) = (3usize, 2usize);
            let a = special_values(m * kc_full);
            for depth in [2usize, 3] {
                let mpan = m.div_ceil(mr);
                let mut p0 = vec![0.0f32; mpan * mr * kc_used];
                let mut p1 = vec![0.0f32; mpan * mr * kc_used];
                let mut p2 = vec![0.0f32; mpan * mr * kc_used];
                {
                    let mut planes: [&mut [f32]; 3] = [&mut p0, &mut p1, &mut p2];
                    pack_a_split(&a, m, kc_full, 0, kc_used, mr, depth, &mut planes);
                }
                for r in 0..m {
                    for kk in 0..kc_used {
                        let expect = split_planes(a[r * kc_full + kk], depth);
                        let pbase = (r / mr) * mr * kc_used;
                        let idx = pbase + kk * mr + (r % mr);
                        let got = [p0[idx], p1[idx], p2[idx]];
                        for d in 0..depth {
                            assert_eq!(
                                got[d].to_bits(),
                                expect[d].to_bits(),
                                "depth {depth} r={r} kk={kk} plane {d}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn split_pack_matches_scalar_split() {
        let a: Vec<f32> = (0..12).map(|i| (i as f32 * 0.731).sin()).collect(); // 3×4
        let (m, k, mr, kc) = (3, 4, 4, 4);
        let mut p0 = vec![0.0f32; mr * kc];
        let mut p1 = vec![0.0f32; mr * kc];
        let mut p2 = vec![0.0f32; mr * kc];
        {
            let mut planes: [&mut [f32]; 3] = [&mut p0, &mut p1, &mut p2];
            pack_a_split(&a, m, k, 0, kc, mr, 3, &mut planes);
        }
        for r in 0..m {
            for kk in 0..k {
                let s = Split3::new(a[r * k + kk]);
                let idx = kk * mr + r;
                assert_eq!([p0[idx], p1[idx], p2[idx]], [s.hi, s.mid, s.lo]);
            }
        }
    }
}

//! The packed, blocked GEMM core shared by every dense path.
//!
//! All higher-level routines reduce to `acc += A · B` on dense row-major
//! operands (`A`: m×k, `B`: k×n, `acc`: m×n, no padding). The kernel is a
//! BLIS-style blocked driver:
//!
//! * the k dimension is tiled into `KC`-deep blocks;
//! * per block, A is packed into `mr`-row panels and B into `nr`-column
//!   panels ([`super::pack`]) held in pooled scratch — precision
//!   conversion (BF16/TF32 rounding, split-plane decomposition) happens
//!   during this pack, once per source element;
//! * a register-blocked `mr × nr` microkernel accumulates every product
//!   term for a C tile in registers before a single writeback, so the
//!   split-precision modes share both the packed operands *and* the FP32
//!   accumulator across their plane products.
//!
//! `f32` dispatches at runtime to an AVX2+FMA 6×16 microkernel when the
//! host supports it; everything else uses a safe generic register-blocked
//! kernel that LLVM auto-vectorises for the baseline target.
//!
//! Parallelism splits C into row blocks of `MC_PANELS · mr` rows. Each C
//! element is accumulated by exactly one microkernel call per k-block, in
//! a fixed (k-block, term, kk) order that does not depend on the thread
//! count — sequential and parallel runs are bit-identical by construction
//! (asserted by `seq_and_par_paths_bit_identical`).

use super::pack;
use crate::workspace::{take_scratch, Poolable, PooledBuf};
use dcmesh_numerics::Real;
use rayon::prelude::*;

/// Work (in scalar MACs) below which threading overhead dominates and the
/// driver runs its row blocks sequentially.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Depth of one packed k-block.
pub(crate) const KC: usize = 256;

/// Row panels per parallel C block: tasks own `MC_PANELS · mr` rows, so
/// the packed A block a task touches stays L2-resident while it sweeps
/// the packed B panels.
const MC_PANELS: usize = 16;

/// The microkernel signature: accumulate every `(a_plane, b_plane)` term
/// product into one `rows × cols` tile of `ctile` (a row-panel slice of
/// the accumulator, leading dimension `n`, tile origin column `j0`).
///
/// Packed-panel geometry: A plane `ta` holds the current `mr × kc` panel
/// at `a_off`, element `(i, kk)` at `a_off + kk·mr + i`; B plane `tb`
/// holds the `kc × nr` panel at `b_off`, element `(kk, j)` at
/// `b_off + kk·nr + j`.
type MicroFn<T> = fn(
    terms: &[(usize, usize)],
    pa: &[&[T]; 3],
    a_off: usize,
    pb: &[&[T]; 3],
    b_off: usize,
    kc: usize,
    ctile: &mut [T],
    n: usize,
    j0: usize,
    rows: usize,
    cols: usize,
);

/// A register-blocking choice plus the matching microkernel.
#[doc(hidden)]
#[derive(Clone, Copy)]
pub struct MicroKernel<T: 'static> {
    pub(crate) mr: usize,
    pub(crate) nr: usize,
    pub(crate) micro: MicroFn<T>,
}

/// Scalar types the packed driver can run on (`f32`/`f64`, mirroring
/// [`Poolable`]). The method is an implementation detail of the kernel
/// dispatch and not part of the crate's supported API.
pub trait MicroArch: Real + Poolable {
    #[doc(hidden)]
    fn microkernel() -> MicroKernel<Self>;
}

impl MicroArch for f32 {
    fn microkernel() -> MicroKernel<f32> {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return MicroKernel { mr: x86::MR, nr: x86::NR, micro: x86::micro_f32_fma };
            }
        }
        MicroKernel { mr: 4, nr: 8, micro: micro_generic::<f32, 4, 8> }
    }
}

impl MicroArch for f64 {
    fn microkernel() -> MicroKernel<f64> {
        // 4×4 keeps the accumulator tile within the baseline SSE2
        // register file; the generic body auto-vectorises.
        MicroKernel { mr: 4, nr: 4, micro: micro_generic::<f64, 4, 4> }
    }
}

/// `acc += a · b` for dense row-major operands.
///
/// * `a`: `m × k` (ld = k)
/// * `b`: `k × n` (ld = n)
/// * `acc`: `m × n` (ld = n), accumulated in place
pub fn matmul_acc<T: MicroArch>(a: &[T], b: &[T], acc: &mut [T], m: usize, n: usize, k: usize) {
    matmul_acc_with(a, b, acc, m, n, k, None);
}

/// [`matmul_acc`] with an explicit threading override (`None` = size
/// heuristic). Exposed to tests so the sequential and parallel schedules
/// can be compared bit-for-bit on identical inputs.
pub(crate) fn matmul_acc_with<T: MicroArch>(
    a: &[T],
    b: &[T],
    acc: &mut [T],
    m: usize,
    n: usize,
    k: usize,
    parallel: Option<bool>,
) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(acc.len(), m * n, "C shape mismatch");
    gemm_packed(
        acc,
        m,
        n,
        k,
        1,
        1,
        &[(0, 0)],
        |k0, kc, mr, bufs: &mut [PooledBuf<T>; 3]| {
            pack::pack_a_copy(a, m, k, k0, kc, mr, &mut bufs[0]);
        },
        |k0, kc, nr, bufs: &mut [PooledBuf<T>; 3]| {
            pack::pack_b_copy(b, n, k0, kc, nr, &mut bufs[0]);
        },
        parallel,
    );
}

/// The blocked driver: packs per k-block via the caller's closures, then
/// runs the microkernel over every C tile, accumulating all `terms`
/// plane-products from the same packed buffers.
///
/// `pack_a(k0, kc, mr, planes)` must fill `planes[0..planes_a]` with the
/// `mr`-row panel layout for the k-slice `[k0, k0+kc)`; `pack_b`
/// likewise with `nr`-column panels. Packing runs on the calling thread
/// only, so rayon workers never touch the workspace pool. No zero-skip
/// anywhere: IEEE demands 0·Inf = 0·NaN = NaN, so skipping zero entries
/// (or empty planes) would silently launder non-finite values out of the
/// product and hide them from the health checks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed<T, PA, PB>(
    acc: &mut [T],
    m: usize,
    n: usize,
    k: usize,
    planes_a: usize,
    planes_b: usize,
    terms: &[(usize, usize)],
    mut pack_a: PA,
    mut pack_b: PB,
    parallel: Option<bool>,
) where
    T: MicroArch,
    PA: FnMut(usize, usize, usize, &mut [PooledBuf<T>; 3]),
    PB: FnMut(usize, usize, usize, &mut [PooledBuf<T>; 3]),
{
    debug_assert!(planes_a <= 3 && planes_b <= 3);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let kern = T::microkernel();
    let (mr, nr) = (kern.mr, kern.nr);
    let kc_max = KC.min(k);
    let npan = n.div_ceil(nr);
    let a_len = m.div_ceil(mr) * mr * kc_max;
    let b_len = npan * nr * kc_max;
    let take3 = |planes: usize, len: usize| {
        let sz = |p: usize| if planes > p { len } else { 0 };
        [take_scratch::<T>(sz(0)), take_scratch::<T>(sz(1)), take_scratch::<T>(sz(2))]
    };
    let mut pa_bufs = take3(planes_a, a_len);
    let mut pb_bufs = take3(planes_b, b_len);
    let run_par = parallel.unwrap_or(m * n * k >= PAR_THRESHOLD);

    let mut k0 = 0;
    while k0 < k {
        let kc = KC.min(k - k0);
        pack_a(k0, kc, mr, &mut pa_bufs);
        pack_b(k0, kc, nr, &mut pb_bufs);
        let pa: [&[T]; 3] = [&pa_bufs[0], &pa_bufs[1], &pa_bufs[2]];
        let pb: [&[T]; 3] = [&pb_bufs[0], &pb_bufs[1], &pb_bufs[2]];

        // One task = MC_PANELS row panels of C. Looping q (B panel)
        // outside the row panels keeps each 16 KB B panel hot in L1
        // while the task's L2-resident A block sweeps past it.
        let block = |ci: usize, cblk: &mut [T]| {
            let rows_total = cblk.len() / n;
            for q in 0..npan {
                let j0 = q * nr;
                let cols = nr.min(n - j0);
                let b_off = q * nr * kc;
                let mut r0 = 0;
                let mut ir = 0;
                while r0 < rows_total {
                    let rows = mr.min(rows_total - r0);
                    let a_off = (ci * MC_PANELS + ir) * mr * kc;
                    (kern.micro)(
                        terms,
                        &pa,
                        a_off,
                        &pb,
                        b_off,
                        kc,
                        &mut cblk[r0 * n..],
                        n,
                        j0,
                        rows,
                        cols,
                    );
                    r0 += rows;
                    ir += 1;
                }
            }
        };
        if run_par {
            acc.par_chunks_mut(MC_PANELS * mr * n)
                .enumerate()
                .for_each(|(ci, cblk)| block(ci, cblk));
        } else {
            for (ci, cblk) in acc.chunks_mut(MC_PANELS * mr * n).enumerate() {
                block(ci, cblk);
            }
        }
        k0 += kc;
    }
}

/// Safe register-blocked microkernel; the compiler unrolls the constant
/// `MR × NR` tile and vectorises the inner loop for the baseline target.
#[allow(clippy::too_many_arguments)]
fn micro_generic<T: Real, const MR: usize, const NR: usize>(
    terms: &[(usize, usize)],
    pa: &[&[T]; 3],
    a_off: usize,
    pb: &[&[T]; 3],
    b_off: usize,
    kc: usize,
    ctile: &mut [T],
    n: usize,
    j0: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[T::ZERO; NR]; MR];
    for &(ta, tb) in terms {
        let ap = &pa[ta][a_off..a_off + MR * kc];
        let bp = &pb[tb][b_off..b_off + NR * kc];
        for kk in 0..kc {
            let arow = &ap[kk * MR..(kk + 1) * MR];
            let brow = &bp[kk * NR..(kk + 1) * NR];
            for i in 0..MR {
                let aik = arow[i];
                for (av, &bv) in acc[i].iter_mut().zip(brow) {
                    *av += aik * bv;
                }
            }
        }
    }
    for (i, accr) in acc.iter().enumerate().take(rows) {
        let crow = &mut ctile[i * n + j0..i * n + j0 + cols];
        for (cv, &av) in crow.iter_mut().zip(&accr[..cols]) {
            *cv += av;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! AVX2+FMA 6×16 f32 microkernel: 12 ymm accumulators, two B loads
    //! and six broadcast-FMA pairs per k step.
    use core::arch::x86_64::*;

    pub(super) const MR: usize = 6;
    pub(super) const NR: usize = 16;

    #[allow(clippy::too_many_arguments)]
    pub(super) fn micro_f32_fma(
        terms: &[(usize, usize)],
        pa: &[&[f32]; 3],
        a_off: usize,
        pb: &[&[f32]; 3],
        b_off: usize,
        kc: usize,
        ctile: &mut [f32],
        n: usize,
        j0: usize,
        rows: usize,
        cols: usize,
    ) {
        assert!(rows <= MR && cols <= NR && cols <= n);
        assert!(rows == 0 || ctile.len() >= (rows - 1) * n + j0 + cols);
        for &(ta, tb) in terms {
            assert!(pa[ta].len() >= a_off + MR * kc, "packed A panel out of range");
            assert!(pb[tb].len() >= b_off + NR * kc, "packed B panel out of range");
        }
        // SAFETY: `MicroArch::microkernel` only hands out this fn pointer
        // after `is_x86_feature_detected!` confirmed avx2+fma; all pointer
        // arithmetic below stays inside the ranges asserted above.
        unsafe { micro_f32_fma_impl(terms, pa, a_off, pb, b_off, kc, ctile, n, j0, rows, cols) }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn micro_f32_fma_impl(
        terms: &[(usize, usize)],
        pa: &[&[f32]; 3],
        a_off: usize,
        pb: &[&[f32]; 3],
        b_off: usize,
        kc: usize,
        ctile: &mut [f32],
        n: usize,
        j0: usize,
        rows: usize,
        cols: usize,
    ) {
        let mut acc = [[_mm256_setzero_ps(); 2]; MR];
        for &(ta, tb) in terms {
            let ap = pa[ta].as_ptr().add(a_off);
            let bp = pb[tb].as_ptr().add(b_off);
            for kk in 0..kc {
                let b0 = _mm256_loadu_ps(bp.add(kk * NR));
                let b1 = _mm256_loadu_ps(bp.add(kk * NR + 8));
                let arow = ap.add(kk * MR);
                for (i, accr) in acc.iter_mut().enumerate() {
                    let av = _mm256_set1_ps(*arow.add(i));
                    accr[0] = _mm256_fmadd_ps(av, b0, accr[0]);
                    accr[1] = _mm256_fmadd_ps(av, b1, accr[1]);
                }
            }
        }
        if cols == NR {
            for (i, accr) in acc.iter().enumerate().take(rows) {
                let c = ctile.as_mut_ptr().add(i * n + j0);
                _mm256_storeu_ps(c, _mm256_add_ps(_mm256_loadu_ps(c), accr[0]));
                _mm256_storeu_ps(c.add(8), _mm256_add_ps(_mm256_loadu_ps(c.add(8)), accr[1]));
            }
        } else {
            let mut tmp = [0.0f32; NR];
            for (i, accr) in acc.iter().enumerate().take(rows) {
                _mm256_storeu_ps(tmp.as_mut_ptr(), accr[0]);
                _mm256_storeu_ps(tmp.as_mut_ptr().add(8), accr[1]);
                let crow = ctile.as_mut_ptr().add(i * n + j0);
                for (j, &t) in tmp.iter().enumerate().take(cols) {
                    *crow.add(j) += t;
                }
            }
        }
    }
}

/// Reference (naive, sequential, jik-order) matmul for testing: returns
/// `A · B` as a fresh matrix. Kept deliberately different in loop order
/// and memory layout from the packed production kernel so the two are
/// independent implementations.
pub fn matmul_reference<T: Real>(a: &[T], b: &[T], m: usize, n: usize, k: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![T::ZERO; m * n];
    for j in 0..n {
        for i in 0..m {
            let mut s = T::ZERO;
            for kk in 0..k {
                s += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = s;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matches_reference_small() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, n, k) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 1, 9), (1, 8, 3)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut acc = vec![0.0; m * n];
            matmul_acc(&a, &b, &mut acc, m, n, k);
            let refc = matmul_reference(&a, &b, m, n, k);
            for (x, y) in acc.iter().zip(&refc) {
                assert!((x - y).abs() < 1e-12, "({m},{n},{k})");
            }
        }
    }

    #[test]
    fn matches_reference_ragged_shapes() {
        // m, n, k deliberately not multiples of any mr/nr/KC in use, plus
        // shapes that straddle the KC boundary, on both element widths.
        let shapes = [
            (13, 17, 130),
            (6, 16, 256),
            (7, 31, 257),
            (5, 33, 511),
            (23, 7, 300),
            (3, 66, 513),
        ];
        let mut rng = StdRng::seed_from_u64(9);
        for &(m, n, k) in &shapes {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut acc = vec![0.0; m * n];
            matmul_acc(&a, &b, &mut acc, m, n, k);
            let refc = matmul_reference(&a, &b, m, n, k);
            for (i, (x, y)) in acc.iter().zip(&refc).enumerate() {
                assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "f64 ({m},{n},{k}) i={i}");
            }

            let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let mut acc32 = vec![0.0f32; m * n];
            matmul_acc(&a32, &b32, &mut acc32, m, n, k);
            for (i, (x, y)) in acc32.iter().zip(&refc).enumerate() {
                // f32 accumulation (possibly FMA-fused) vs the f64 reference.
                let tol = 1e-4 * (1.0 + y.abs());
                assert!((*x as f64 - y).abs() < tol, "f32 ({m},{n},{k}) i={i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matches_reference_parallel_path() {
        // Big enough to exceed PAR_THRESHOLD and span several k-blocks.
        let (m, n, k) = (70, 65, 300);
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let mut acc = vec![0.0; m * n];
        matmul_acc(&a, &b, &mut acc, m, n, k);
        let refc = matmul_reference(&a, &b, m, n, k);
        for (i, (x, y)) in acc.iter().zip(&refc).enumerate() {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "i={i}: {x} vs {y}");
        }
    }

    #[test]
    fn seq_and_par_paths_bit_identical() {
        // The blocked schedule is shared: forcing the sequential and the
        // rayon path over the same inputs must agree bit-for-bit, for both
        // element widths and for shapes with ragged edge panels.
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n, k) in &[(37, 29, 300), (128, 96, 520), (5, 7, 9)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut seq = vec![0.0f64; m * n];
            let mut par = vec![0.0f64; m * n];
            matmul_acc_with(&a, &b, &mut seq, m, n, k, Some(false));
            matmul_acc_with(&a, &b, &mut par, m, n, k, Some(true));
            for (i, (x, y)) in seq.iter().zip(&par).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "f64 ({m},{n},{k}) i={i}");
            }

            let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let mut seq32 = vec![0.0f32; m * n];
            let mut par32 = vec![0.0f32; m * n];
            matmul_acc_with(&a32, &b32, &mut seq32, m, n, k, Some(false));
            matmul_acc_with(&a32, &b32, &mut par32, m, n, k, Some(true));
            for (i, (x, y)) in seq32.iter().zip(&par32).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "f32 ({m},{n},{k}) i={i}");
            }
        }
    }

    #[test]
    fn accumulates_rather_than_overwrites() {
        let a = [1.0f32, 0.0, 0.0, 1.0]; // I2
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut acc = [100.0f32, 100.0, 100.0, 100.0];
        matmul_acc(&a, &b, &mut acc, 2, 2, 2);
        assert_eq!(acc, [105.0, 106.0, 107.0, 108.0]);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut acc: Vec<f32> = vec![3.0; 6];
        // m == 0: A and C are empty, B still has its k*n elements.
        matmul_acc(&[], &[0.0; 15], &mut acc[..0], 0, 3, 5);
        // k == 0: nothing to accumulate.
        matmul_acc(&[], &[], &mut acc, 2, 3, 0);
        assert!(acc.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn zero_row_times_inf_propagates_nan() {
        // A's only row is all zeros; B holds an Inf. IEEE: 0·Inf = NaN,
        // and the kernel must not optimise it away.
        let a = [0.0f32, 0.0];
        let b = [1.0f32, f32::INFINITY, 2.0, 3.0];
        let mut acc = [0.0f32; 2];
        matmul_acc(&a, &b, &mut acc, 1, 2, 2);
        assert_eq!(acc[0], 0.0);
        assert!(acc[1].is_nan(), "0·Inf must produce NaN, got {}", acc[1]);
        // And the reference agrees.
        let r = matmul_reference(&a, &b, 1, 2, 2);
        assert!(r[1].is_nan());
    }

    #[test]
    fn zero_row_times_nan_propagates_on_parallel_path() {
        // Same property above PAR_THRESHOLD, through the blocked path.
        let (m, n, k) = (64, 64, 64);
        let a = vec![0.0f64; m * k];
        let mut b = vec![1.0f64; k * n];
        b[5 * n + 7] = f64::NAN;
        let mut acc = vec![0.0f64; m * n];
        matmul_acc(&a, &b, &mut acc, m, n, k);
        for i in 0..m {
            assert!(acc[i * n + 7].is_nan(), "row {i} lost the NaN");
        }
        assert_eq!(acc[0], 0.0, "columns without NaN stay zero");
    }

    #[test]
    fn edge_panel_padding_cannot_launder_nonfinite() {
        // Shapes with ragged edge panels where the padded lanes multiply
        // real non-finite data: the pad results are discarded, the real
        // outputs must still carry the NaN/Inf.
        let (m, n, k) = (5, 9, 7); // all ragged for any mr/nr in use
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![1.0f32; k * n];
        b[3 * n + (n - 1)] = f32::INFINITY; // last (padded-side) column
        a[(m - 1) * k] = 1.0; // last (padded-side) row is non-zero
        let mut acc = vec![0.0f32; m * n];
        matmul_acc(&a, &b, &mut acc, m, n, k);
        for i in 0..m {
            assert!(acc[i * n + n - 1].is_nan() || acc[i * n + n - 1].is_infinite(),
                "row {i}: non-finite lost at ragged edge: {}", acc[i * n + n - 1]);
        }
        assert_eq!(acc[(m - 1) * n], 1.0, "real edge-row output wrong");
    }

    #[test]
    #[should_panic(expected = "A shape mismatch")]
    fn shape_mismatch_panics() {
        let mut acc = vec![0.0f32; 4];
        matmul_acc(&[1.0; 3], &[1.0; 4], &mut acc, 2, 2, 2);
    }
}

//! The dense accumulate kernel shared by every GEMM path.
//!
//! All higher-level routines reduce to `acc += A · B` on dense row-major
//! operands (`A`: m×k, `B`: k×n, `acc`: m×n, no padding). The kernel uses
//! the row-major *ikj* loop order — the C row being produced and the B row
//! being streamed are both contiguous, so the inner loop auto-vectorises —
//! and parallelises over row blocks of C with rayon. Accumulation happens
//! in the element type (`f32` for the emulated systolic paths, which
//! matches XMX hardware accumulating BF16/TF32 products in FP32).

use dcmesh_numerics::Real;
use rayon::prelude::*;

/// Work (in scalar MACs) below which threading overhead dominates and the
/// kernel runs sequentially.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Rows of C per parallel task. Large enough to amortise task overhead,
/// small enough to load-balance tall-skinny shapes.
const ROW_BLOCK: usize = 16;

/// Inner-dimension tile: keeps the active slice of B within L2 while a
/// row block of C is updated.
const K_BLOCK: usize = 256;

/// `acc += a · b` for dense row-major operands.
///
/// * `a`: `m × k` (ld = k)
/// * `b`: `k × n` (ld = n)
/// * `acc`: `m × n` (ld = n), accumulated in place
pub fn matmul_acc<T: Real>(a: &[T], b: &[T], acc: &mut [T], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert_eq!(acc.len(), m * n, "C shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    if m * n * k < PAR_THRESHOLD {
        for (i, crow) in acc.chunks_exact_mut(n).enumerate() {
            row_update(&a[i * k..(i + 1) * k], b, crow, n, 0, k);
        }
        return;
    }

    acc.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, cblk)| {
            let i0 = blk * ROW_BLOCK;
            // Tile over k so the streamed B panel stays cache-resident for
            // all rows in the block.
            let mut k0 = 0;
            while k0 < k {
                let k1 = (k0 + K_BLOCK).min(k);
                for (ii, crow) in cblk.chunks_exact_mut(n).enumerate() {
                    let i = i0 + ii;
                    row_update(&a[i * k..(i + 1) * k], b, crow, n, k0, k1);
                }
                k0 = k1;
            }
        });
}

/// `crow += Σ_{kk in [k0,k1)} a_row[kk] * b[kk*n .. kk*n+n]`
#[inline]
fn row_update<T: Real>(a_row: &[T], b: &[T], crow: &mut [T], n: usize, k0: usize, k1: usize) {
    // No zero-skip on `aik`: IEEE demands 0·Inf = 0·NaN = NaN, so skipping
    // zero A entries would silently launder non-finite B values (e.g. a
    // fault-injected Inf) out of the product and hide them from the health
    // checks. Sparse speedups must come from blocking, not from changing
    // the arithmetic.
    for kk in k0..k1 {
        let aik = a_row[kk];
        let brow = &b[kk * n..kk * n + n];
        for (c, &bv) in crow.iter_mut().zip(brow) {
            *c += aik * bv;
        }
    }
}

/// Elementwise `y += alpha * x` over equal-length slices (used to combine
/// product planes).
pub fn axpy_slice<T: Real>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if alpha == T::ZERO {
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Reference (naive, sequential, jik-order) matmul for testing: returns
/// `A · B` as a fresh matrix. Kept deliberately different in loop order
/// from the production kernel so the two are independent implementations.
pub fn matmul_reference<T: Real>(a: &[T], b: &[T], m: usize, n: usize, k: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![T::ZERO; m * n];
    for j in 0..n {
        for i in 0..m {
            let mut s = T::ZERO;
            for kk in 0..k {
                s += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = s;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matches_reference_small() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, n, k) in &[(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 1, 9), (1, 8, 3)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut acc = vec![0.0; m * n];
            matmul_acc(&a, &b, &mut acc, m, n, k);
            let refc = matmul_reference(&a, &b, m, n, k);
            for (x, y) in acc.iter().zip(&refc) {
                assert!((x - y).abs() < 1e-12, "({m},{n},{k})");
            }
        }
    }

    #[test]
    fn matches_reference_parallel_path() {
        // Big enough to exceed PAR_THRESHOLD and exercise k-tiling.
        let (m, n, k) = (70, 65, 300);
        let mut rng = StdRng::seed_from_u64(2);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let mut acc = vec![0.0; m * n];
        matmul_acc(&a, &b, &mut acc, m, n, k);
        let refc = matmul_reference(&a, &b, m, n, k);
        for (i, (x, y)) in acc.iter().zip(&refc).enumerate() {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()), "i={i}: {x} vs {y}");
        }
    }

    #[test]
    fn accumulates_rather_than_overwrites() {
        let a = [1.0f32, 0.0, 0.0, 1.0]; // I2
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut acc = [100.0f32, 100.0, 100.0, 100.0];
        matmul_acc(&a, &b, &mut acc, 2, 2, 2);
        assert_eq!(acc, [105.0, 106.0, 107.0, 108.0]);
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut acc: Vec<f32> = vec![3.0; 6];
        // m == 0: A and C are empty, B still has its k*n elements.
        matmul_acc(&[], &[0.0; 15], &mut acc[..0], 0, 3, 5);
        // k == 0: nothing to accumulate.
        matmul_acc(&[], &[], &mut acc, 2, 3, 0);
        assert!(acc.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn axpy_basics() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 20.0, 30.0];
        axpy_slice(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
        axpy_slice(0.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn zero_row_times_inf_propagates_nan() {
        // A's only row is all zeros; B holds an Inf. IEEE: 0·Inf = NaN,
        // and the kernel must not optimise it away.
        let a = [0.0f32, 0.0];
        let b = [1.0f32, f32::INFINITY, 2.0, 3.0];
        let mut acc = [0.0f32; 2];
        matmul_acc(&a, &b, &mut acc, 1, 2, 2);
        assert_eq!(acc[0], 0.0);
        assert!(acc[1].is_nan(), "0·Inf must produce NaN, got {}", acc[1]);
        // And the reference agrees.
        let r = matmul_reference(&a, &b, 1, 2, 2);
        assert!(r[1].is_nan());
    }

    #[test]
    fn zero_row_times_nan_propagates_on_parallel_path() {
        // Same property above PAR_THRESHOLD, through the k-tiled path.
        let (m, n, k) = (64, 64, 64);
        let a = vec![0.0f64; m * k];
        let mut b = vec![1.0f64; k * n];
        b[5 * n + 7] = f64::NAN;
        let mut acc = vec![0.0f64; m * n];
        matmul_acc(&a, &b, &mut acc, m, n, k);
        for i in 0..m {
            assert!(acc[i * n + 7].is_nan(), "row {i} lost the NaN");
        }
        assert_eq!(acc[0], 0.0, "columns without NaN stay zero");
    }

    #[test]
    #[should_panic(expected = "A shape mismatch")]
    fn shape_mismatch_panics() {
        let mut acc = vec![0.0f32; 4];
        matmul_acc(&[1.0; 3], &[1.0; 4], &mut acc, 2, 2, 2);
    }
}

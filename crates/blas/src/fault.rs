//! Deterministic fault injection into GEMM outputs.
//!
//! Supports the robustness test harness: a seeded [`FaultPlan`]
//! corrupts one output element of chosen GEMM calls — flipping a
//! mantissa bit, or overwriting with NaN/Inf — so that detection,
//! rollback and precision-escalation paths can be exercised
//! reproducibly, with no randomness at run time.
//!
//! Every GEMM call in the process increments a monotonic call counter
//! (cheap relaxed atomic; faults themselves cost nothing while no plan
//! is installed). A plan's triggers are indexed *relative to the
//! counter value at install time*, so a test gets stable indices
//! regardless of what ran earlier in the process. The counter is never
//! reset: after a rollback the re-run's calls have fresh indices, so a
//! [`Trigger::Once`] fault does not re-fire on the retry.
//!
//! Sites can be scoped to a routine (`"CGEMM"`) and/or to the compute
//! mode active at call time. Mode scoping models a fault specific to
//! the low-precision matrix engines: after the supervisor escalates to
//! a stronger mode the fault stops firing.

use crate::mode::ComputeMode;
use dcmesh_numerics::Complex;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// What to do to the targeted output element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR one mantissa bit of the value (bit index taken modulo the
    /// mantissa width of the element type). Bounded corruption: the
    /// value changes by at most a factor of 2.
    FlipMantissaBit(u32),
    /// XOR one bit anywhere in the element word (bit index modulo the
    /// full bit width), exponent and sign included — the silent-data-
    /// corruption model, where a flipped high exponent bit changes the
    /// value by hundreds of orders of magnitude without any NaN/Inf
    /// signature for the non-finite health checks to see.
    FlipBit(u32),
    /// Overwrite with NaN.
    Nan,
    /// Overwrite with +Inf.
    Inf,
}

/// When a fault site fires, in GEMM calls counted from plan install.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Exactly at the given relative call index.
    Once(u64),
    /// At every `offset + i·period` relative call index.
    Every {
        /// Distance between firings (must be non-zero to ever fire).
        period: u64,
        /// First relative call index that fires.
        offset: u64,
    },
}

impl Trigger {
    fn fires(self, rel_call: u64) -> bool {
        match self {
            Trigger::Once(k) => rel_call == k,
            Trigger::Every { period, offset } => {
                period > 0 && rel_call >= offset && (rel_call - offset).is_multiple_of(period)
            }
        }
    }
}

/// One fault-injection rule.
#[derive(Clone, Debug)]
pub struct FaultSite {
    /// When the site fires.
    pub trigger: Trigger,
    /// The corruption applied.
    pub kind: FaultKind,
    /// Restrict to one routine name (`"SGEMM"`, `"CGEMM"`, ...); `None`
    /// matches all.
    pub routine: Option<&'static str>,
    /// Restrict to calls made while this compute mode is active; `None`
    /// matches all modes.
    pub mode: Option<ComputeMode>,
}

impl FaultSite {
    /// A site firing once at relative call `call`.
    pub fn once(call: u64, kind: FaultKind) -> FaultSite {
        FaultSite { trigger: Trigger::Once(call), kind, routine: None, mode: None }
    }

    /// A site firing every `period` calls starting at relative call 0.
    pub fn every(period: u64, kind: FaultKind) -> FaultSite {
        FaultSite { trigger: Trigger::Every { period, offset: 0 }, kind, routine: None, mode: None }
    }

    /// Restricts the site to one routine.
    pub fn on_routine(mut self, routine: &'static str) -> FaultSite {
        self.routine = Some(routine);
        self
    }

    /// Restricts the site to calls made under `mode`.
    pub fn in_mode(mut self, mode: ComputeMode) -> FaultSite {
        self.mode = Some(mode);
        self
    }
}

/// A seeded, deterministic set of fault sites.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    sites: Vec<FaultSite>,
}

impl FaultPlan {
    /// An empty plan; the seed picks which output element each firing
    /// corrupts.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, sites: Vec::new() }
    }

    /// Adds a site (builder style).
    pub fn with_site(mut self, site: FaultSite) -> FaultPlan {
        self.sites.push(site);
        self
    }

    /// The configured sites.
    pub fn sites(&self) -> &[FaultSite] {
        &self.sites
    }
}

/// One scheduled raw bit flip: GEMM call `call` (relative to plan
/// install), bit `bit` of the targeted element's word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BitFlip {
    /// Relative GEMM call index the flip lands on.
    pub call: u64,
    /// Bit index within the element word (modulo the type's width).
    pub bit: u32,
}

/// A deterministic silent-data-corruption plan: raw single-bit flips in
/// GEMM outputs, exponent and sign bits included.
///
/// The chaos-testing counterpart of [`FaultPlan`] for the SDC defense:
/// where `FlipMantissaBit`/`Nan`/`Inf` model faults the non-finite and
/// divergence health checks can see, a raw [`FaultKind::FlipBit`]
/// produces a finite but wildly wrong value that only the ABFT checksum
/// (or a `verify_bursts` replay) can catch. Like `RankKillPlan` it has
/// a text spec grammar so coordinators can pass plans to worker
/// processes through the environment:
///
/// ```text
/// <seed>:<call>@<bit>[,<call>@<bit>...]      e.g.  "7:12@62,40@30"
/// ```
///
/// Each flip fires once, at its relative call index. The shared GEMM
/// call counter is never reset, so after a supervisor rollback the
/// replayed calls have fresh indices and the flip does **not** re-fire —
/// recovery from a detected flip is bit-identical to a clean run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitFlipPlan {
    seed: u64,
    flips: Vec<BitFlip>,
}

impl BitFlipPlan {
    /// An empty plan; the seed picks which output element each flip
    /// corrupts (and, for complex elements, which component).
    pub fn new(seed: u64) -> BitFlipPlan {
        BitFlipPlan { seed, flips: Vec::new() }
    }

    /// Adds a flip (builder style).
    pub fn with_flip(mut self, call: u64, bit: u32) -> BitFlipPlan {
        self.flips.push(BitFlip { call, bit });
        self
    }

    /// The scheduled flips.
    pub fn flips(&self) -> &[BitFlip] {
        &self.flips
    }

    /// The seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Parses the `<seed>:<call>@<bit>,...` spec. The `<seed>:` prefix
    /// is optional (defaults to 0); an empty flip list is allowed
    /// (`"7:"` is a plan that never fires).
    pub fn parse(spec: &str) -> Result<BitFlipPlan, String> {
        let (seed_part, flips_part) = match spec.split_once(':') {
            Some((s, rest)) => (Some(s), rest),
            None => (None, spec),
        };
        let seed = match seed_part {
            Some(s) => s
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad bit-flip seed {s:?} in {spec:?}"))?,
            None => 0,
        };
        let mut plan = BitFlipPlan::new(seed);
        for item in flips_part.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let (call, bit) = item
                .split_once('@')
                .ok_or_else(|| format!("bad bit-flip item {item:?} (want <call>@<bit>)"))?;
            let call = call
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad call index in bit-flip item {item:?}"))?;
            let bit = bit
                .trim()
                .parse::<u32>()
                .map_err(|_| format!("bad bit index in bit-flip item {item:?}"))?;
            plan = plan.with_flip(call, bit);
        }
        Ok(plan)
    }

    /// The spec string [`BitFlipPlan::parse`] round-trips.
    pub fn to_spec(&self) -> String {
        let items: Vec<String> =
            self.flips.iter().map(|f| format!("{}@{}", f.call, f.bit)).collect();
        format!("{}:{}", self.seed, items.join(","))
    }

    /// Lowers the plan onto the [`FaultPlan`] machinery (one
    /// [`Trigger::Once`] site per flip).
    pub fn to_fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed);
        for f in &self.flips {
            plan = plan.with_site(FaultSite::once(f.call, FaultKind::FlipBit(f.bit)));
        }
        plan
    }
}

/// Installs a [`BitFlipPlan`], replacing any installed [`FaultPlan`].
/// Call indices count GEMM calls from this moment.
pub fn install_bit_flip_plan(plan: &BitFlipPlan) {
    install_fault_plan(plan.to_fault_plan());
}

struct Installed {
    plan: FaultPlan,
    base_call: u64,
}

static INSTALLED: Mutex<Option<Installed>> = Mutex::new(None);
static ACTIVE: AtomicBool = AtomicBool::new(false);
static CALLS: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);

/// Installs `plan`, replacing any previous one. Trigger indices count
/// GEMM calls from this moment.
pub fn install_fault_plan(plan: FaultPlan) {
    let mut guard = INSTALLED.lock();
    *guard = Some(Installed { plan, base_call: CALLS.load(Ordering::Relaxed) });
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Removes the installed plan (normal, fault-free operation).
pub fn clear_fault_plan() {
    let mut guard = INSTALLED.lock();
    *guard = None;
    ACTIVE.store(false, Ordering::Relaxed);
}

/// True while a plan is installed.
pub fn fault_plan_installed() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Total GEMM calls made by this process.
pub fn gemm_call_count() -> u64 {
    CALLS.load(Ordering::Relaxed)
}

/// Total faults injected by this process.
pub fn injected_fault_count() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

/// Element types a fault can corrupt.
pub trait FaultTarget: Copy {
    /// The value after applying `kind`; `entropy` breaks ties (e.g.
    /// which complex component to hit).
    fn corrupted(self, kind: FaultKind, entropy: u64) -> Self;
}

impl FaultTarget for f32 {
    fn corrupted(self, kind: FaultKind, _entropy: u64) -> f32 {
        match kind {
            FaultKind::FlipMantissaBit(bit) => f32::from_bits(self.to_bits() ^ (1 << (bit % 23))),
            FaultKind::FlipBit(bit) => f32::from_bits(self.to_bits() ^ (1 << (bit % 32))),
            FaultKind::Nan => f32::NAN,
            FaultKind::Inf => f32::INFINITY,
        }
    }
}

impl FaultTarget for f64 {
    fn corrupted(self, kind: FaultKind, _entropy: u64) -> f64 {
        match kind {
            FaultKind::FlipMantissaBit(bit) => {
                f64::from_bits(self.to_bits() ^ (1u64 << (bit % 52)))
            }
            FaultKind::FlipBit(bit) => f64::from_bits(self.to_bits() ^ (1u64 << (bit % 64))),
            FaultKind::Nan => f64::NAN,
            FaultKind::Inf => f64::INFINITY,
        }
    }
}

impl<T: FaultTarget> FaultTarget for Complex<T> {
    fn corrupted(mut self, kind: FaultKind, entropy: u64) -> Complex<T> {
        if entropy & 1 == 0 {
            self.re = self.re.corrupted(kind, entropy >> 1);
        } else {
            self.im = self.im.corrupted(kind, entropy >> 1);
        }
        self
    }
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Counts the call and applies any matching fault sites to the logical
/// m×n window of `c`. Invoked by every GEMM wrapper after the product.
pub(crate) fn post_gemm<T: FaultTarget>(
    routine: &'static str,
    c: &mut [T],
    m: usize,
    n: usize,
    ldc: usize,
) {
    let call = CALLS.fetch_add(1, Ordering::Relaxed);
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let guard = INSTALLED.lock();
    let Some(installed) = guard.as_ref() else { return };
    let rel_call = call.saturating_sub(installed.base_call);
    let mode = crate::config::compute_mode();
    for site in &installed.plan.sites {
        if !site.trigger.fires(rel_call)
            || site.routine.is_some_and(|r| r != routine)
            || site.mode.is_some_and(|sm| sm != mode)
            || m == 0
            || n == 0
        {
            continue;
        }
        let h = mix(installed.plan.seed ^ mix(call));
        let (i, j) = (h as usize % m, (h >> 20) as usize % n);
        c[i * ldc + j] = c[i * ldc + j].corrupted(site.kind, h >> 40);
        INJECTED.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_at_expected_indices() {
        assert!(Trigger::Once(3).fires(3));
        assert!(!Trigger::Once(3).fires(4));
        let every = Trigger::Every { period: 5, offset: 2 };
        for call in 0..20 {
            assert_eq!(every.fires(call), call >= 2 && (call - 2) % 5 == 0, "call {call}");
        }
        assert!(!Trigger::Every { period: 0, offset: 0 }.fires(0));
    }

    #[test]
    fn corruption_kinds() {
        let x = 1.5f32;
        assert!(x.corrupted(FaultKind::Nan, 0).is_nan());
        assert_eq!(x.corrupted(FaultKind::Inf, 0), f32::INFINITY);
        let flipped = x.corrupted(FaultKind::FlipMantissaBit(22), 0);
        assert!(flipped != x && flipped.is_finite());
        // Flipping the same bit twice restores the value.
        assert_eq!(flipped.corrupted(FaultKind::FlipMantissaBit(22), 0), x);
        // Complex corruption hits exactly one component.
        let z = Complex { re: 1.0f32, im: 2.0f32 };
        let zc = z.corrupted(FaultKind::Nan, 0);
        assert!(zc.re.is_nan() ^ zc.im.is_nan());
        let zc1 = z.corrupted(FaultKind::Nan, 1);
        assert!(zc1.im.is_nan() && !zc1.re.is_nan());
    }

    #[test]
    fn flip_bit_reaches_exponent_and_sign() {
        let x = 1.5f64;
        // Bit 61 is a high stored exponent bit: clearing it rescales the
        // value by 2^-512 — enormous corruption, yet finite, so invisible
        // to NaN/Inf checks.
        let flipped = x.corrupted(FaultKind::FlipBit(61), 0);
        assert!(flipped.is_finite() && flipped != x);
        assert!(flipped.abs() < 1e-100, "1.5 with exponent bit 61 cleared: {flipped}");
        assert_eq!(flipped.corrupted(FaultKind::FlipBit(61), 0), x);
        // Bit 63 is the sign.
        assert_eq!(x.corrupted(FaultKind::FlipBit(63), 0), -1.5);
        let y = 2.0f32;
        assert_eq!(y.corrupted(FaultKind::FlipBit(31), 0), -2.0);
    }

    #[test]
    fn bit_flip_plan_spec_roundtrips() {
        let plan = BitFlipPlan::new(7).with_flip(12, 62).with_flip(40, 30);
        assert_eq!(plan.to_spec(), "7:12@62,40@30");
        assert_eq!(BitFlipPlan::parse("7:12@62,40@30").unwrap(), plan);
        // Seedless form, whitespace tolerance, empty list.
        assert_eq!(BitFlipPlan::parse("3@5").unwrap(), BitFlipPlan::new(0).with_flip(3, 5));
        assert_eq!(
            BitFlipPlan::parse(" 9 : 1@2 , 3@4 ").unwrap_or_else(|e| panic!("{e}")),
            BitFlipPlan::new(9).with_flip(1, 2).with_flip(3, 4)
        );
        assert_eq!(BitFlipPlan::parse("7:").unwrap(), BitFlipPlan::new(7));
        assert!(BitFlipPlan::parse("x:1@2").is_err());
        assert!(BitFlipPlan::parse("1@").is_err());
        assert!(BitFlipPlan::parse("12").is_err());
    }

    #[test]
    fn bit_flip_plan_lowers_to_once_sites() {
        let plan = BitFlipPlan::new(5).with_flip(3, 61).to_fault_plan();
        assert_eq!(plan.sites().len(), 1);
        assert_eq!(plan.sites()[0].trigger, Trigger::Once(3));
        assert_eq!(plan.sites()[0].kind, FaultKind::FlipBit(61));
        assert_eq!(plan.sites()[0].routine, None);
        assert_eq!(plan.sites()[0].mode, None);
    }

    #[test]
    fn site_builders_scope_correctly() {
        let site = FaultSite::once(7, FaultKind::Nan)
            .on_routine("CGEMM")
            .in_mode(ComputeMode::FloatToBf16);
        assert_eq!(site.trigger, Trigger::Once(7));
        assert_eq!(site.routine, Some("CGEMM"));
        assert_eq!(site.mode, Some(ComputeMode::FloatToBf16));
        let plan = FaultPlan::new(42).with_site(site).with_site(FaultSite::every(3, FaultKind::Inf));
        assert_eq!(plan.sites().len(), 2);
    }
}

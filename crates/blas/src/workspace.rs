//! Reusable GEMM workspaces: thread-local scratch-buffer pools.
//!
//! Every level-3 call in the emulated compute modes needs dense scratch —
//! op-materialised operands, rounded BF16/TF32 copies, split component
//! planes, the product accumulator, and the 3M temporaries in
//! `cgemm`/`zgemm`. Allocating those per call taxes exactly the host-side
//! path the paper times (Figure 3b, Tables VI–VII), so this module keeps
//! them in a per-thread free list: after warm-up, steady-state QD stepping
//! performs **zero heap allocations per BLAS call**.
//!
//! Design notes:
//!
//! * One [`GemmWorkspace`] per thread (a `thread_local!`), holding an
//!   independent [`BufferPool`] per scalar type. Thread-locality means no
//!   locking on the hot path and no cross-thread buffer churn.
//! * Checkout is size-aware LIFO: the most recently returned buffer whose
//!   capacity already fits is taken, so repeated identical call sequences
//!   (a QD step makes the same BLAS calls with the same shapes every step)
//!   stop allocating and stop growing capacities after the first step.
//! * [`PooledBuf`] returns its storage on drop. If the thread-local has
//!   already been torn down (thread exit), the storage is simply freed.
//! * [`with_fresh_workspace`] swaps in an empty workspace for the duration
//!   of a closure — the injection point tests use to measure pool traffic
//!   in isolation (see [`PoolStats`]).

use core::cell::RefCell;
use core::ops::{Deref, DerefMut};

/// Pool traffic counters, used by tests and the `gemm_hostperf` bench as
/// an allocation proxy: in steady state `misses` and `grows` stay flat
/// while `takes` keeps counting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers checked out.
    pub takes: u64,
    /// Checkouts that found the free list empty and allocated a fresh `Vec`.
    pub misses: u64,
    /// Checkouts whose recycled buffer had to grow its capacity.
    pub grows: u64,
    /// Buffers returned to the free list.
    pub returns: u64,
    /// Bytes currently checked out of the pool (capacity of live
    /// [`PooledBuf`]s); buffers freed at thread teardown stay counted.
    pub bytes_outstanding: u64,
}

impl PoolStats {
    /// Checkouts served from the free list.
    pub fn hits(&self) -> u64 {
        self.takes.saturating_sub(self.misses)
    }

    /// Fraction of checkouts served from the free list (1.0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        if self.takes == 0 {
            1.0
        } else {
            self.hits() as f64 / self.takes as f64
        }
    }
}

/// A free list of scratch buffers for one scalar type.
#[derive(Debug, Default)]
pub struct BufferPool<T> {
    free: Vec<Vec<T>>,
    stats: PoolStats,
}

impl<T: Copy + Default> BufferPool<T> {
    fn take(&mut self, len: usize, zeroed: bool) -> Vec<T> {
        self.stats.takes += 1;
        // Zero-length checkouts (e.g. unused split planes) must not consume
        // a pooled buffer: popping one here would starve a later same-call
        // checkout and re-miss on every call, for a buffer nobody reads.
        if len == 0 {
            return Vec::new();
        }
        // Prefer the most recently returned buffer that already fits:
        // plain LIFO can pair a small buffer with a large request forever
        // when a call mixes sizes (m·k vs k·n planes), re-growing on every
        // call. The free list stays small (peak checkout concurrency of
        // one GEMM), so the scan is a handful of pointer reads.
        let mut buf = match self.free.iter().rposition(|b| b.capacity() >= len) {
            Some(i) => self.free.remove(i),
            None => match self.free.pop() {
                Some(b) => b,
                None => {
                    self.stats.misses += 1;
                    Vec::new()
                }
            },
        };
        if buf.capacity() < len {
            self.stats.grows += 1;
        }
        // `resize` only writes elements beyond the current length, so a
        // recycled buffer that is already long enough costs nothing here;
        // `zeroed` callers pay one fill over the logical window.
        buf.truncate(len);
        buf.resize(len, T::default());
        if zeroed {
            buf.fill(T::default());
        }
        // Ledger the checked-out capacity (post-resize, so grows are
        // counted at their real size). `put` reverses this; a buffer that
        // grew *while checked out* (`vec_mut` extends) under-counts by the
        // growth, which saturating_sub absorbs.
        self.stats.bytes_outstanding += (buf.capacity() * core::mem::size_of::<T>()) as u64;
        buf
    }

    fn put(&mut self, buf: Vec<T>) {
        self.stats.returns += 1;
        self.stats.bytes_outstanding = self
            .stats
            .bytes_outstanding
            .saturating_sub((buf.capacity() * core::mem::size_of::<T>()) as u64);
        self.free.push(buf);
    }
}

/// The per-thread workspace: one buffer pool per scalar type used by the
/// level-3 scratch paths (complex GEMMs operate on separated real planes,
/// so only the real element types need pools).
#[derive(Debug, Default)]
pub struct GemmWorkspace {
    f32_pool: BufferPool<f32>,
    f64_pool: BufferPool<f64>,
}

thread_local! {
    static WORKSPACE: RefCell<GemmWorkspace> = RefCell::new(GemmWorkspace::default());
}

/// Scalar types that have a thread-local scratch pool.
pub trait Poolable: Copy + Default + Sized + 'static {
    /// Runs `f` with the calling thread's pool for this type. Returns
    /// `None` only during thread teardown, after the thread-local has been
    /// destroyed (buffers dropped then are freed instead of recycled).
    fn with_pool<R>(f: impl FnOnce(&mut BufferPool<Self>) -> R) -> Option<R>;
}

impl Poolable for f32 {
    fn with_pool<R>(f: impl FnOnce(&mut BufferPool<f32>) -> R) -> Option<R> {
        WORKSPACE.try_with(|w| f(&mut w.borrow_mut().f32_pool)).ok()
    }
}

impl Poolable for f64 {
    fn with_pool<R>(f: impl FnOnce(&mut BufferPool<f64>) -> R) -> Option<R> {
        WORKSPACE.try_with(|w| f(&mut w.borrow_mut().f64_pool)).ok()
    }
}

/// A scratch buffer checked out of the calling thread's pool; returns its
/// storage to the pool on drop. Dereferences to a slice.
#[derive(Debug)]
pub struct PooledBuf<T: Poolable> {
    buf: Vec<T>,
}

impl<T: Poolable> PooledBuf<T> {
    /// Mutable access to the underlying `Vec` for `extend`-style fills
    /// (the materialise helpers build their output this way). The buffer
    /// still returns to the pool on drop with whatever capacity it grew to.
    pub fn vec_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<T: Poolable> Deref for PooledBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.buf
    }
}

impl<T: Poolable> DerefMut for PooledBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

impl<T: Poolable> Drop for PooledBuf<T> {
    fn drop(&mut self) {
        let buf = core::mem::take(&mut self.buf);
        if buf.capacity() > 0 {
            // `with_pool` is None during thread teardown; then the Vec
            // drops normally.
            let _ = T::with_pool(move |p| p.put(buf));
        }
    }
}

fn take<T: Poolable>(len: usize, zeroed: bool) -> PooledBuf<T> {
    let buf = T::with_pool(|p| p.take(len, zeroed))
        // Thread teardown: fall back to a plain allocation.
        .unwrap_or_else(|| {
            let mut b = Vec::new();
            b.resize(len, T::default());
            b
        });
    PooledBuf { buf }
}

/// Checks out a buffer of `len` elements, all `T::default()` (zero for the
/// float types). Use for accumulators the GEMM kernels add into.
pub fn take_zeroed<T: Poolable>(len: usize) -> PooledBuf<T> {
    take(len, true)
}

/// Checks out a buffer of `len` elements with **unspecified (stale but
/// valid) contents** — the zero-cost variant for buffers the caller fully
/// overwrites (rounded copies, split planes, deinterleaved operands).
pub fn take_scratch<T: Poolable>(len: usize) -> PooledBuf<T> {
    take(len, false)
}

/// Checks out an empty (`len == 0`) buffer with at least `capacity`
/// reserved, for `extend`-style fills via [`PooledBuf::vec_mut`].
pub fn take_empty<T: Poolable>(capacity: usize) -> PooledBuf<T> {
    // Checkout at the full capacity so the pool's recycling/grow logic
    // applies, then rewind the length for the caller's `extend`.
    let mut b = take::<T>(capacity, false);
    b.buf.clear();
    b
}

/// A copy of the calling thread's pool counters for `T`.
pub fn stats<T: Poolable>() -> PoolStats {
    T::with_pool(|p| p.stats).unwrap_or_default()
}

/// Clears the calling thread's free list and counters for `T`.
pub fn reset<T: Poolable>() {
    let _ = T::with_pool(|p| *p = BufferPool::default());
}

/// Runs `f` against a fresh, empty [`GemmWorkspace`], restoring the
/// previous workspace afterwards (also on panic). Buffers returned while
/// `f` runs go to the fresh workspace and are freed when it is discarded,
/// so tests observe pool traffic in isolation.
pub fn with_fresh_workspace<R>(f: impl FnOnce() -> R) -> R {
    let saved = WORKSPACE.with(|w| core::mem::take(&mut *w.borrow_mut()));
    struct Restore(Option<GemmWorkspace>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(ws) = self.0.take() {
                let _ = WORKSPACE.try_with(|w| *w.borrow_mut() = ws);
            }
        }
    }
    let _restore = Restore(Some(saved));
    f()
}

/// Combined f32+f64 pool stats for the calling thread.
pub fn combined_stats() -> PoolStats {
    let a = stats::<f32>();
    let b = stats::<f64>();
    PoolStats {
        takes: a.takes + b.takes,
        misses: a.misses + b.misses,
        grows: a.grows + b.grows,
        returns: a.returns + b.returns,
        bytes_outstanding: a.bytes_outstanding + b.bytes_outstanding,
    }
}

/// Publishes the calling thread's pool counters into the telemetry
/// metrics registry (gauges, since the values are thread-local
/// snapshots). Harnesses call this after their measurement loop so the
/// Prometheus dump and `gemm_hostperf` report carry hit/miss/bytes
/// figures.
pub fn publish_metrics() {
    use dcmesh_telemetry::metrics::gauge;
    let s = combined_stats();
    gauge("mkl_pool_takes", "workspace-pool checkouts (thread snapshot)").set(s.takes as f64);
    gauge("mkl_pool_misses", "checkouts that allocated fresh storage").set(s.misses as f64);
    gauge("mkl_pool_grows", "checkouts that regrew a recycled buffer").set(s.grows as f64);
    gauge("mkl_pool_returns", "buffers returned to the free list").set(s.returns as f64);
    gauge("mkl_pool_bytes_outstanding", "bytes currently checked out")
        .set(s.bytes_outstanding as f64);
    gauge("mkl_pool_hit_ratio", "fraction of checkouts served from the free list")
        .set(s.hit_ratio());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_take_reuses_first_buffer() {
        with_fresh_workspace(|| {
            {
                let mut b = take_zeroed::<f32>(100);
                b[0] = 42.0;
            }
            let s = stats::<f32>();
            assert_eq!((s.takes, s.misses, s.returns), (1, 1, 1));
            let b = take_zeroed::<f32>(100);
            let s = stats::<f32>();
            assert_eq!((s.takes, s.misses), (2, 1), "second take must hit the free list");
            assert_eq!(s.grows, 1, "no regrowth on a same-size reuse");
            assert!(b.iter().all(|&x| x == 0.0), "take_zeroed must clear recycled contents");
        });
    }

    #[test]
    fn scratch_take_does_not_clear() {
        with_fresh_workspace(|| {
            {
                let mut b = take_scratch::<f64>(8);
                b.fill(7.0);
            }
            let b = take_scratch::<f64>(8);
            assert!(b.iter().all(|&x| x == 7.0), "stale contents expected");
        });
    }

    #[test]
    fn lifo_checkout_converges_capacities() {
        with_fresh_workspace(|| {
            // Simulate two steps of an identical two-buffer call pattern.
            for _ in 0..2 {
                let _a = take_scratch::<f32>(64);
                let _b = take_scratch::<f32>(256);
            }
            let s = stats::<f32>();
            assert_eq!(s.takes, 4);
            assert_eq!(s.misses, 2, "only the first step allocates");
        });
    }

    #[test]
    fn take_empty_reserves() {
        with_fresh_workspace(|| {
            let mut b = take_empty::<f32>(50);
            assert!(b.is_empty());
            b.vec_mut().extend(std::iter::repeat_n(1.0, 50));
            assert_eq!(b.len(), 50);
        });
    }

    #[test]
    fn bytes_outstanding_tracks_live_checkouts() {
        with_fresh_workspace(|| {
            let a = take_zeroed::<f32>(100);
            let s = stats::<f32>();
            assert!(s.bytes_outstanding >= 400, "100 f32s are out: {s:?}");
            drop(a);
            let s = stats::<f32>();
            assert_eq!(s.bytes_outstanding, 0, "returned buffers leave the ledger");
            assert_eq!(s.hits(), 0);
            assert_eq!(s.hit_ratio(), 0.0, "the only take was a miss");
        });
    }

    #[test]
    fn idle_pool_hit_ratio_is_nan_safe() {
        // With zero takes the ratio must be a well-defined 1.0 (vacuous
        // truth: every checkout so far was served), never NaN or 0 —
        // gemm_hostperf writes it through `{:.4}` into JSON, where a
        // NaN would corrupt the report.
        let s = PoolStats::default();
        assert_eq!(s.takes, 0);
        assert_eq!(s.hit_ratio(), 1.0);
        assert!(s.hit_ratio().is_finite());
        with_fresh_workspace(|| {
            let live = stats::<f32>();
            assert_eq!(live.takes, 0, "fresh workspace has no takes");
            assert_eq!(live.hit_ratio(), 1.0);
        });
    }

    #[test]
    fn publish_metrics_surfaces_pool_gauges() {
        with_fresh_workspace(|| {
            let _b = take_zeroed::<f64>(32);
            publish_metrics();
            let dump = dcmesh_telemetry::metrics::prometheus_dump();
            assert!(dump.contains("mkl_pool_takes"), "{dump}");
            assert!(dump.contains("mkl_pool_bytes_outstanding"), "{dump}");
        });
    }

    #[test]
    fn fresh_workspace_isolates_and_restores() {
        reset::<f32>();
        let _outer = take_zeroed::<f32>(4);
        let outer_stats = stats::<f32>();
        with_fresh_workspace(|| {
            assert_eq!(stats::<f32>(), PoolStats::default(), "fresh workspace starts empty");
            let _b = take_zeroed::<f32>(4);
            assert_eq!(stats::<f32>().takes, 1);
        });
        assert_eq!(stats::<f32>(), outer_stats, "outer workspace restored");
    }
}

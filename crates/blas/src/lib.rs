//! `mkl-lite`: a oneMKL-like BLAS with *alternative compute modes*.
//!
//! This crate is the stand-in for Intel oneMKL in the DCMESH precision
//! study. It provides level-1 and level-3 BLAS routines over `f32`/`f64`
//! and their complex counterparts, written in safe Rust and parallelised
//! with rayon, plus faithful software implementations of oneMKL's
//! alternative compute modes:
//!
//! | Mode | Env value | Input representation | Products kept |
//! |---|---|---|---|
//! | Standard (FP32/FP64) | unset | native | 1 |
//! | BF16 | `FLOAT_TO_BF16` | 1 BF16 term | 1 |
//! | BF16x2 | `FLOAT_TO_BF16X2` | 2 BF16 terms | 3 |
//! | BF16x3 | `FLOAT_TO_BF16X3` | 3 BF16 terms | 6 |
//! | TF32 | `FLOAT_TO_TF32` | 1 TF32 term | 1 |
//! | Complex 3M | `COMPLEX_3M` | native | 3 real GEMMs |
//!
//! As in oneMKL, the mode is selected either through a runtime API
//! ([`set_compute_mode`]) or through the `MKL_BLAS_COMPUTE_MODE`
//! environment variable, and requires **no changes to call sites** — the
//! whole point of the paper's methodology. An `MKL_VERBOSE`-equivalent
//! call log ([`verbose`]) records routine name, dimensions, mode and both
//! measured wall time and (when a device model is installed, see
//! [`device`]) the modelled GPU execution time.
//!
//! Matrices are **row-major** with an explicit leading dimension (`ld` =
//! elements between consecutive rows). Transposition/conjugation follow
//! the BLAS `op()` convention.
//!
//! ```
//! use dcmesh_numerics::{c32, C32};
//! use mkl_lite::{cgemm, with_compute_mode, ComputeMode, Op};
//!
//! // C = A·B for 2x2 complex matrices, first at standard FP32...
//! let a = [c32(1.0, 0.0), c32(0.0, 1.0), c32(0.0, -1.0), c32(1.0, 0.0)];
//! let b = [c32(0.5, 0.5), c32(0.0, 0.0), c32(0.0, 0.0), c32(0.5, 0.5)];
//! let mut c_std = [C32::zero(); 4];
//! cgemm(Op::None, Op::None, 2, 2, 2, C32::one(), &a, 2, &b, 2, C32::zero(), &mut c_std, 2);
//!
//! // ...then in the BF16 compute mode — same call sites, no code changes.
//! let mut c_bf16 = [C32::zero(); 4];
//! with_compute_mode(ComputeMode::FloatToBf16, || {
//!     cgemm(Op::None, Op::None, 2, 2, 2, C32::one(), &a, 2, &b, 2, C32::zero(), &mut c_bf16, 2);
//! });
//! // These inputs are exactly representable in BF16, so the results agree.
//! assert_eq!(c_std, c_bf16);
//! ```

pub mod abft;
pub mod config;
pub mod device;
pub mod fault;
pub mod gemm;
pub mod herk;
pub mod layout;
pub mod level1;
pub mod level2;
pub mod mode;
pub mod verbose;
pub mod workspace;

pub use config::{
    compute_mode, reset_compute_mode, set_compute_mode, try_compute_mode, with_compute_mode,
};
pub use abft::{
    abft_check_count, abft_installed, abft_violation_count, clear_abft, install_abft,
    take_abft_violation, AbftViolation,
};
pub use fault::{
    clear_fault_plan, install_bit_flip_plan, install_fault_plan, BitFlip, BitFlipPlan, FaultKind,
    FaultPlan, FaultSite, Trigger,
};
pub use gemm::{cgemm, dgemm, sgemm, zgemm};
pub use herk::{cherk, zherk, Uplo};
pub use level2::{cgemv, dgemv, sgemv, zgemv};
pub use layout::Op;
pub use mode::{ComputeMode, ParseModeError};

/// The environment variable oneMKL (and this crate) reads the compute mode
/// from.
pub const COMPUTE_MODE_ENV: &str = "MKL_BLAS_COMPUTE_MODE";

/// The environment variable enabling verbose call logging (`MKL_VERBOSE`).
pub const VERBOSE_ENV: &str = "MKL_VERBOSE";

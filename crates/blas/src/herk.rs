//! Hermitian rank-k updates (`CHERK`/`ZHERK`).
//!
//! The subspace projections DCMESH builds (`S = Ψ†Ψ`, `W = R†R`) are
//! Hermitian by construction; a tuned library computes only one triangle
//! and mirrors it. `herk` honours the same compute modes as `gemm` (it is
//! a level-3 routine), and guarantees an exactly Hermitian result with a
//! real diagonal — which the Jacobi eigensolver downstream appreciates.
//!
//! The heavy lifting delegates to [`crate::gemm`], so `herk` inherits the
//! thread-local [`crate::workspace`] pool: its low-precision scratch
//! (rounded copies, split planes, partial products) is recycled across
//! calls rather than reallocated.

use crate::config::compute_mode;
use crate::device::{Domain, GemmDesc};
use crate::layout::{check_matrix, Op};
use crate::mode::ComputeMode;
use crate::verbose::logged;
use dcmesh_numerics::{Complex, C32, C64};

/// Which triangle of C the routine is defined to update (both are filled
/// on return; the parameter controls which one is *computed*).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Uplo {
    /// Compute the upper triangle, mirror into the lower.
    #[default]
    Upper,
    /// Compute the lower triangle, mirror into the upper.
    Lower,
}

/// Single-precision complex Hermitian rank-k update:
///
/// * `trans = Op::None`:      `C ← α·A·A† + β·C` with `A: n × k`
/// * `trans = Op::ConjTrans`: `C ← α·A†·A + β·C` with `A: k × n`
///
/// `alpha`/`beta` are real (BLAS herk semantics); `C` is `n × n` and its
/// imaginary diagonal is forced to zero, as the standard requires.
#[allow(clippy::too_many_arguments)]
pub fn cherk(
    uplo: Uplo,
    trans: Op,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[C32],
    lda: usize,
    beta: f32,
    c: &mut [C32],
    ldc: usize,
) {
    let mode = compute_mode();
    let desc = GemmDesc { domain: Domain::Complex32, m: n, n, k, mode };
    logged("CHERK", trans, trans, desc, || {
        herk_impl(
            uplo,
            trans,
            n,
            k,
            alpha,
            a,
            lda,
            beta,
            c,
            ldc,
            |ta, tb, m2, n2, k2, al, aa, la, bb, lb, be, cc, lc| {
                crate::gemm::cgemm(ta, tb, m2, n2, k2, al, aa, la, bb, lb, be, cc, lc)
            },
        );
    });
}

/// Double-precision complex Hermitian rank-k update (see [`cherk`]).
#[allow(clippy::too_many_arguments)]
pub fn zherk(
    uplo: Uplo,
    trans: Op,
    n: usize,
    k: usize,
    alpha: f64,
    a: &[C64],
    lda: usize,
    beta: f64,
    c: &mut [C64],
    ldc: usize,
) {
    let mode = match compute_mode() {
        ComputeMode::Complex3m => ComputeMode::Complex3m,
        _ => ComputeMode::Standard,
    };
    let desc = GemmDesc { domain: Domain::Complex64, m: n, n, k, mode };
    logged("ZHERK", trans, trans, desc, || {
        herk_impl(
            uplo,
            trans,
            n,
            k,
            alpha,
            a,
            lda,
            beta,
            c,
            ldc,
            |ta, tb, m2, n2, k2, al, aa, la, bb, lb, be, cc, lc| {
                crate::gemm::zgemm(ta, tb, m2, n2, k2, al, aa, la, bb, lb, be, cc, lc)
            },
        );
    });
}

type GemmFn<T> = fn(
    Op,
    Op,
    usize,
    usize,
    usize,
    Complex<T>,
    &[Complex<T>],
    usize,
    &[Complex<T>],
    usize,
    Complex<T>,
    &mut [Complex<T>],
    usize,
);

#[allow(clippy::too_many_arguments)]
fn herk_impl<T: dcmesh_numerics::Real>(
    uplo: Uplo,
    trans: Op,
    n: usize,
    k: usize,
    alpha: T,
    a: &[Complex<T>],
    lda: usize,
    beta: T,
    c: &mut [Complex<T>],
    ldc: usize,
    gemm: GemmFn<T>,
) {
    assert!(
        matches!(trans, Op::None | Op::ConjTrans),
        "herk trans must be N or C (Op::Trans is the *symmetric* update)"
    );
    let (ar, ac) = match trans {
        Op::None => (n, k),
        _ => (k, n),
    };
    check_matrix("A", ar, ac, lda, a.len());
    check_matrix("C", n, n, ldc, c.len());

    // Compute the full product through the mode-aware GEMM path, then
    // enforce the Hermitian contract exactly.
    let (ta, tb) = match trans {
        Op::None => (Op::None, Op::ConjTrans),
        _ => (Op::ConjTrans, Op::None),
    };
    gemm(
        ta,
        tb,
        n,
        n,
        k,
        Complex::from_real(alpha),
        a,
        lda,
        a,
        lda,
        Complex::from_real(beta),
        c,
        ldc,
    );

    // Mirror the computed triangle and zero the diagonal's imaginary part.
    for i in 0..n {
        c[i * ldc + i] = Complex::from_real(c[i * ldc + i].re);
        for j in (i + 1)..n {
            match uplo {
                Uplo::Upper => c[j * ldc + i] = c[i * ldc + j].conj(),
                Uplo::Lower => c[i * ldc + j] = c[j * ldc + i].conj(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::with_compute_mode;
    use dcmesh_numerics::c32;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_c32(rng: &mut StdRng, len: usize) -> Vec<C32> {
        (0..len).map(|_| c32(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn aha_is_hermitian_psd() {
        let mut rng = StdRng::seed_from_u64(1);
        let (n, k) = (6, 20);
        let a = rand_c32(&mut rng, k * n); // A: k x n, use A†A
        let mut c = vec![C32::zero(); n * n];
        with_compute_mode(ComputeMode::Standard, || {
            cherk(Uplo::Upper, Op::ConjTrans, n, k, 1.0, &a, n, 0.0, &mut c, n);
        });
        for i in 0..n {
            assert_eq!(c[i * n + i].im, 0.0, "diagonal must be real");
            assert!(c[i * n + i].re >= 0.0, "A†A diagonal must be non-negative");
            for j in 0..n {
                let d = (c[i * n + j] - c[j * n + i].conj()).abs();
                assert_eq!(d, 0.0, "exact Hermitian symmetry required");
            }
        }
    }

    #[test]
    fn matches_explicit_gemm() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, k) = (5, 12);
        let a = rand_c32(&mut rng, n * k); // A: n x k, use A·A†
        let mut c_herk = vec![C32::zero(); n * n];
        let mut c_gemm = vec![C32::zero(); n * n];
        with_compute_mode(ComputeMode::Standard, || {
            cherk(Uplo::Lower, Op::None, n, k, 2.0, &a, k, 0.0, &mut c_herk, n);
            crate::gemm::cgemm(
                Op::None,
                Op::ConjTrans,
                n,
                n,
                k,
                c32(2.0, 0.0),
                &a,
                k,
                &a,
                k,
                C32::zero(),
                &mut c_gemm,
                n,
            );
        });
        for (x, y) in c_herk.iter().zip(&c_gemm) {
            assert!((x.to_c64() - y.to_c64()).abs() < 1e-5, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn beta_accumulates_hermitian_part() {
        let n = 3;
        let a = vec![c32(1.0, 0.0), c32(0.0, 1.0), c32(1.0, 1.0)]; // 1 x 3 (k=1)
        let mut c = vec![C32::zero(); n * n];
        for i in 0..n {
            c[i * n + i] = c32(10.0, 0.0);
        }
        with_compute_mode(ComputeMode::Standard, || {
            cherk(Uplo::Upper, Op::ConjTrans, n, 1, 1.0, &a, n, 1.0, &mut c, n);
        });
        assert_eq!(c[0], c32(11.0, 0.0)); // 10 + |1|²
        assert_eq!(c[4], c32(11.0, 0.0)); // 10 + |i|²
        assert_eq!(c[8], c32(12.0, 0.0)); // 10 + |1+i|²
    }

    #[test]
    fn honours_compute_modes() {
        let mut rng = StdRng::seed_from_u64(3);
        let (n, k) = (8, 64);
        let a = rand_c32(&mut rng, k * n);
        let run = |mode| {
            let mut c = vec![C32::zero(); n * n];
            with_compute_mode(mode, || {
                cherk(Uplo::Upper, Op::ConjTrans, n, k, 1.0, &a, n, 0.0, &mut c, n);
            });
            c
        };
        let std = run(ComputeMode::Standard);
        let bf = run(ComputeMode::FloatToBf16);
        let max_d = std
            .iter()
            .zip(&bf)
            .map(|(x, y)| (x.to_c64() - y.to_c64()).abs())
            .fold(0.0, f64::max);
        assert!(max_d > 0.0, "BF16 mode ignored by cherk");
        assert!(max_d < 0.5, "BF16 cherk error implausible: {max_d}");
    }

    #[test]
    fn zherk_matches_f64_reference() {
        let n = 4;
        let k = 7;
        let a: Vec<C64> = (0..k * n)
            .map(|i| dcmesh_numerics::c64((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut c = vec![C64::zero(); n * n];
        with_compute_mode(ComputeMode::Standard, || {
            zherk(Uplo::Upper, Op::ConjTrans, n, k, 1.0, &a, n, 0.0, &mut c, n);
        });
        for i in 0..n {
            for j in 0..n {
                let mut s = C64::zero();
                for kk in 0..k {
                    s += a[kk * n + i].conj() * a[kk * n + j];
                }
                assert!((c[i * n + j] - s).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "herk trans")]
    fn plain_transpose_rejected() {
        let a = vec![C32::zero(); 4];
        let mut c = vec![C32::zero(); 4];
        cherk(Uplo::Upper, Op::Trans, 2, 2, 1.0, &a, 2, 0.0, &mut c, 2);
    }
}

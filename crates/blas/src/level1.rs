//! Level-1 BLAS helpers used by the LFD propagator.
//!
//! These are not affected by the alternative compute modes (oneMKL's modes
//! apply to level-3 routines only), but DCMESH's non-BLASified mesh kernels
//! are built on them, so they live here for a single linear-algebra story.

use dcmesh_numerics::{Complex, Real};

/// `y ← α·x + y` (real).
pub fn axpy<T: Real>(alpha: T, x: &[T], y: &mut [T]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    if alpha == T::ZERO {
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// `y ← α·x + y` (complex, complex α).
pub fn caxpy<T: Real>(alpha: Complex<T>, x: &[Complex<T>], y: &mut [Complex<T>]) {
    assert_eq!(x.len(), y.len(), "caxpy length mismatch");
    if alpha == Complex::zero() {
        return;
    }
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha.mul_4m(xv);
    }
}

/// `x ← α·x` (real).
pub fn scal<T: Real>(alpha: T, x: &mut [T]) {
    for v in x {
        *v *= alpha;
    }
}

/// `x ← α·x` (complex, complex α).
pub fn cscal<T: Real>(alpha: Complex<T>, x: &mut [Complex<T>]) {
    for v in x {
        *v = alpha.mul_4m(*v);
    }
}

/// Real dot product `xᵀ·y`.
pub fn dot<T: Real>(x: &[T], y: &[T]) -> T {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let mut s = T::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        s += a * b;
    }
    s
}

/// Conjugated complex dot product `x†·y` (BLAS `dotc`).
pub fn dotc<T: Real>(x: &[Complex<T>], y: &[Complex<T>]) -> Complex<T> {
    assert_eq!(x.len(), y.len(), "dotc length mismatch");
    let mut s = Complex::zero();
    for (&a, &b) in x.iter().zip(y) {
        s += a.conj().mul_4m(b);
    }
    s
}

/// Unconjugated complex dot product `xᵀ·y` (BLAS `dotu`).
pub fn dotu<T: Real>(x: &[Complex<T>], y: &[Complex<T>]) -> Complex<T> {
    assert_eq!(x.len(), y.len(), "dotu length mismatch");
    let mut s = Complex::zero();
    for (&a, &b) in x.iter().zip(y) {
        s += a.mul_4m(b);
    }
    s
}

/// Euclidean norm of a real vector, with scaling against overflow.
pub fn nrm2<T: Real>(x: &[T]) -> T {
    let mut scale = T::ZERO;
    let mut ssq = T::ONE;
    for &v in x {
        if v == T::ZERO {
            continue;
        }
        let a = v.abs();
        if scale < a {
            let r = scale / a;
            ssq = T::ONE + ssq * r * r;
            scale = a;
        } else {
            let r = a / scale;
            ssq += r * r;
        }
    }
    scale * ssq.sqrt()
}

/// Euclidean norm of a complex vector.
pub fn cnrm2<T: Real>(x: &[Complex<T>]) -> T {
    // View as a real vector of twice the length.
    nrm2(dcmesh_numerics::complex::as_interleaved(x))
}

/// Sum of |Re| + |Im| (BLAS `asum` for complex vectors).
pub fn casum<T: Real>(x: &[Complex<T>]) -> T {
    let mut s = T::ZERO;
    for z in x {
        s += z.re.abs() + z.im.abs();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_numerics::{c64, C64};

    #[test]
    fn axpy_and_scal() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [1.0f64, 1.0, 1.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [1.5, 2.5, 3.5]);
    }

    #[test]
    fn dotc_conjugates_left_argument() {
        let x = [c64(0.0, 1.0)];
        let y = [c64(0.0, 1.0)];
        // <i, i> = conj(i)*i = -i*i = 1
        assert_eq!(dotc(&x, &y), c64(1.0, 0.0));
        // dotu: i*i = -1
        assert_eq!(dotu(&x, &y), c64(-1.0, 0.0));
    }

    #[test]
    fn nrm2_overflow_safe() {
        let x = [3.0e200_f64, 4.0e200];
        assert!((nrm2(&x) - 5.0e200).abs() < 1e188);
        let y: [f64; 0] = [];
        assert_eq!(nrm2(&y), 0.0);
    }

    #[test]
    fn cnrm2_matches_manual() {
        let x = [c64(3.0, 0.0), c64(0.0, 4.0)];
        assert!((cnrm2(&x) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn casum_sums_components() {
        let x = [c64(1.0, -2.0), c64(-3.0, 4.0)];
        assert_eq!(casum(&x), 10.0);
    }

    #[test]
    fn caxpy_complex_alpha() {
        let x = [C64::one()];
        let mut y = [C64::zero()];
        caxpy(c64(0.0, 2.0), &x, &mut y);
        assert_eq!(y[0], c64(0.0, 2.0));
    }

    #[test]
    fn cscal_rotates() {
        let mut x = [c64(1.0, 0.0)];
        cscal(c64(0.0, 1.0), &mut x);
        assert_eq!(x[0], c64(0.0, 1.0));
    }
}

//! Device-time modelling hook.
//!
//! The paper's timings come from a real Intel Max 1550 stack; ours come
//! from the `xe-gpu` analytical device model. To keep this crate free of a
//! dependency on the model (and vice versa), the model is injected through
//! the [`DeviceTimeModel`] trait: when one is installed, every GEMM call
//! also receives a *modelled device execution time*, which the verbose log
//! records alongside the measured host wall time. The Fig. 3 / Table VI
//! harnesses read the modelled time; the host time is only diagnostic.

use crate::mode::ComputeMode;
use parking_lot::RwLock;
use std::sync::Arc;

/// Element domain of a GEMM call, for the device model's flop accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Real single precision (SGEMM).
    Real32,
    /// Real double precision (DGEMM).
    Real64,
    /// Complex single precision (CGEMM).
    Complex32,
    /// Complex double precision (ZGEMM).
    Complex64,
}

impl Domain {
    /// Bytes per element.
    pub fn element_bytes(self) -> usize {
        match self {
            Domain::Real32 => 4,
            Domain::Real64 => 8,
            Domain::Complex32 => 8,
            Domain::Complex64 => 16,
        }
    }

    /// Real multiply–add pairs per element-level multiply-accumulate:
    /// 1 for real domains, 4 for complex (3 under `COMPLEX_3M`).
    pub fn real_macs_per_mac(self, mode: ComputeMode) -> f64 {
        match self {
            Domain::Real32 | Domain::Real64 => 1.0,
            Domain::Complex32 | Domain::Complex64 => {
                if mode == ComputeMode::Complex3m {
                    3.0
                } else {
                    4.0
                }
            }
        }
    }

    /// True for complex domains.
    pub fn is_complex(self) -> bool {
        matches!(self, Domain::Complex32 | Domain::Complex64)
    }
}

/// Everything a device model needs to price one GEMM call.
#[derive(Clone, Copy, Debug)]
pub struct GemmDesc {
    /// Element domain.
    pub domain: Domain,
    /// Rows of `op(A)` / C.
    pub m: usize,
    /// Columns of `op(B)` / C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Active compute mode.
    pub mode: ComputeMode,
}

impl GemmDesc {
    /// Real multiply–add count for this call (component products and
    /// complex 3M/4M structure included).
    pub fn real_macs(&self) -> f64 {
        let base = self.m as f64 * self.n as f64 * self.k as f64;
        base * self.domain.real_macs_per_mac(self.mode) * self.mode.component_products() as f64
    }

    /// Bytes moved assuming each operand is read once and C written once
    /// (the capacity-miss-free lower bound a tuned GEMM approaches).
    pub fn min_bytes(&self) -> f64 {
        let e = self.domain.element_bytes() as f64;
        let (m, n, k) = (self.m as f64, self.n as f64, self.k as f64);
        (m * k + k * n + 2.0 * m * n) * e
    }

    /// Arithmetic intensity in real MACs per byte.
    pub fn intensity(&self) -> f64 {
        self.real_macs() / self.min_bytes()
    }
}

/// A model that converts a GEMM description into device execution seconds.
pub trait DeviceTimeModel: Send + Sync {
    /// Predicted device execution time in seconds.
    fn gemm_time(&self, desc: &GemmDesc) -> f64;
}

static MODEL: RwLock<Option<Arc<dyn DeviceTimeModel>>> = RwLock::new(None);

/// Installs (or replaces) the global device time model.
pub fn install_device_model(model: Arc<dyn DeviceTimeModel>) {
    *MODEL.write() = Some(model);
}

/// Removes the global device time model.
pub fn clear_device_model() {
    *MODEL.write() = None;
}

/// Prices a GEMM with the installed model, if any.
pub fn modelled_gemm_time(desc: &GemmDesc) -> Option<f64> {
    MODEL.read().as_ref().map(|m| m.gemm_time(desc))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FlatModel;
    impl DeviceTimeModel for FlatModel {
        fn gemm_time(&self, desc: &GemmDesc) -> f64 {
            desc.real_macs() * 1e-12
        }
    }

    #[test]
    fn desc_flop_accounting() {
        let d = GemmDesc {
            domain: Domain::Complex32,
            m: 128,
            n: 128,
            k: 1000,
            mode: ComputeMode::Standard,
        };
        // 4 real MACs per complex MAC.
        assert_eq!(d.real_macs(), 128.0 * 128.0 * 1000.0 * 4.0);
        let d3 = GemmDesc { mode: ComputeMode::Complex3m, ..d };
        assert_eq!(d3.real_macs(), 128.0 * 128.0 * 1000.0 * 3.0);
    }

    #[test]
    fn split_modes_multiply_work() {
        let base = GemmDesc {
            domain: Domain::Real32,
            m: 64,
            n: 64,
            k: 64,
            mode: ComputeMode::Standard,
        };
        let x3 = GemmDesc { mode: ComputeMode::FloatToBf16x3, ..base };
        assert_eq!(x3.real_macs(), 6.0 * base.real_macs());
    }

    #[test]
    fn install_and_query_model() {
        clear_device_model();
        let d = GemmDesc {
            domain: Domain::Real32,
            m: 10,
            n: 10,
            k: 10,
            mode: ComputeMode::Standard,
        };
        assert!(modelled_gemm_time(&d).is_none());
        install_device_model(Arc::new(FlatModel));
        assert_eq!(modelled_gemm_time(&d), Some(1000.0 * 1e-12));
        clear_device_model();
        assert!(modelled_gemm_time(&d).is_none());
    }

    #[test]
    fn intensity_grows_with_square_size() {
        let small = GemmDesc {
            domain: Domain::Real32,
            m: 32,
            n: 32,
            k: 32,
            mode: ComputeMode::Standard,
        };
        let big = GemmDesc { m: 1024, n: 1024, k: 1024, ..small };
        assert!(big.intensity() > small.intensity());
    }
}

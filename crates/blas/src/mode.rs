//! The alternative BLAS compute modes (paper Table II).

use core::fmt;
use core::str::FromStr;

/// A BLAS level-3 compute mode, mirroring oneMKL's
/// `MKL_BLAS_COMPUTE_MODE` settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ComputeMode {
    /// Standard IEEE arithmetic at the routine's native precision
    /// (the paper's FP32/FP64 baselines).
    #[default]
    Standard,
    /// `FLOAT_TO_BF16`: inputs truncated to one BF16 term, FP32 accumulate.
    FloatToBf16,
    /// `FLOAT_TO_BF16X2`: inputs split into two BF16 terms, the three
    /// leading cross products kept, FP32 accumulate.
    FloatToBf16x2,
    /// `FLOAT_TO_BF16X3`: inputs split into three BF16 terms, the six
    /// leading cross products kept, FP32 accumulate. Accuracy comparable
    /// to standard single precision.
    FloatToBf16x3,
    /// `FLOAT_TO_TF32`: inputs rounded to TF32, FP32 accumulate.
    FloatToTf32,
    /// `COMPLEX_3M`: 3-multiplication complex product (three real GEMMs
    /// instead of four), same input precision.
    Complex3m,
}

impl ComputeMode {
    /// All modes in paper Table II order (plus the Standard baseline first).
    pub const ALL: [ComputeMode; 6] = [
        ComputeMode::Standard,
        ComputeMode::FloatToBf16,
        ComputeMode::FloatToBf16x2,
        ComputeMode::FloatToBf16x3,
        ComputeMode::FloatToTf32,
        ComputeMode::Complex3m,
    ];

    /// The five *alternative* modes studied by the paper (everything except
    /// the Standard baseline).
    pub const ALTERNATIVE: [ComputeMode; 5] = [
        ComputeMode::FloatToBf16,
        ComputeMode::FloatToBf16x2,
        ComputeMode::FloatToBf16x3,
        ComputeMode::FloatToTf32,
        ComputeMode::Complex3m,
    ];

    /// The `MKL_BLAS_COMPUTE_MODE` value selecting this mode, or `None`
    /// for the default mode.
    pub fn env_value(self) -> Option<&'static str> {
        match self {
            ComputeMode::Standard => None,
            ComputeMode::FloatToBf16 => Some("FLOAT_TO_BF16"),
            ComputeMode::FloatToBf16x2 => Some("FLOAT_TO_BF16X2"),
            ComputeMode::FloatToBf16x3 => Some("FLOAT_TO_BF16X3"),
            ComputeMode::FloatToTf32 => Some("FLOAT_TO_TF32"),
            ComputeMode::Complex3m => Some("COMPLEX_3M"),
        }
    }

    /// Short display name as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ComputeMode::Standard => "FP32",
            ComputeMode::FloatToBf16 => "BF16",
            ComputeMode::FloatToBf16x2 => "BF16x2",
            ComputeMode::FloatToBf16x3 => "BF16x3",
            ComputeMode::FloatToTf32 => "TF32",
            ComputeMode::Complex3m => "Complex_3m",
        }
    }

    /// Peak theoretical speedup of a level-3 routine in this mode relative
    /// to FP32 on the vector engines (paper Table II).
    ///
    /// BF16 runs on the matrix engines at 16× FP32 vector throughput; the
    /// x2/x3 splits pay 3 and 6 component products, giving 16/3× and
    /// (16/6 = 8/3)×. TF32 systolic peak is 8× FP32. `COMPLEX_3M` keeps
    /// the element precision but removes a quarter of the real
    /// multiplications, for 4/3×.
    pub fn theoretical_speedup(self) -> f64 {
        match self {
            ComputeMode::Standard => 1.0,
            ComputeMode::FloatToBf16 => 16.0,
            ComputeMode::FloatToBf16x2 => 16.0 / 3.0,
            ComputeMode::FloatToBf16x3 => 8.0 / 3.0,
            ComputeMode::FloatToTf32 => 8.0,
            ComputeMode::Complex3m => 4.0 / 3.0,
        }
    }

    /// Number of BF16/TF32 split terms per input value (`None` when the
    /// mode does not re-represent its inputs).
    pub fn split_depth(self) -> Option<usize> {
        match self {
            ComputeMode::FloatToBf16 => Some(1),
            ComputeMode::FloatToBf16x2 => Some(2),
            ComputeMode::FloatToBf16x3 => Some(3),
            ComputeMode::FloatToTf32 => Some(1),
            ComputeMode::Standard | ComputeMode::Complex3m => None,
        }
    }

    /// Number of component-matrix products a real GEMM in this mode
    /// executes on the (emulated) systolic arrays.
    pub fn component_products(self) -> usize {
        match self {
            ComputeMode::Standard | ComputeMode::Complex3m => 1,
            ComputeMode::FloatToBf16 | ComputeMode::FloatToTf32 => 1,
            ComputeMode::FloatToBf16x2 => 3,
            ComputeMode::FloatToBf16x3 => 6,
        }
    }

    /// Effective significand bits carried by the mode's input
    /// representation (implicit bit included); drives the accuracy
    /// ordering observed in the paper.
    pub fn effective_mantissa_bits(self) -> u32 {
        match self {
            ComputeMode::Standard | ComputeMode::Complex3m => 24,
            ComputeMode::FloatToBf16 => 8,
            ComputeMode::FloatToBf16x2 => 16,
            ComputeMode::FloatToBf16x3 => 24,
            ComputeMode::FloatToTf32 => 11,
        }
    }

    /// True for the modes that execute on the XMX matrix engines.
    pub fn uses_matrix_engines(self) -> bool {
        self.split_depth().is_some()
    }

    /// The default precision-escalation ladder walked by the run
    /// supervisor when a burst diverges: each entry is re-tried under
    /// the next one, ending at the Standard (FP32) baseline.
    pub const ESCALATION_LADDER: [ComputeMode; 5] = [
        ComputeMode::FloatToBf16,
        ComputeMode::FloatToBf16x2,
        ComputeMode::FloatToBf16x3,
        ComputeMode::FloatToTf32,
        ComputeMode::Standard,
    ];

    /// Position of this mode on the escalation ladder; higher ranks are
    /// escalation targets of lower ones. [`ComputeMode::Complex3m`] is
    /// off-ladder: it keeps native element precision but its 3M
    /// structure can cancel catastrophically, so it ranks one step
    /// below Standard (alongside TF32).
    pub fn escalation_rank(self) -> usize {
        match self {
            ComputeMode::FloatToBf16 => 0,
            ComputeMode::FloatToBf16x2 => 1,
            ComputeMode::FloatToBf16x3 => 2,
            ComputeMode::FloatToTf32 | ComputeMode::Complex3m => 3,
            ComputeMode::Standard => 4,
        }
    }

    /// The next-stronger mode on the escalation ladder, or `None` when
    /// already at the Standard baseline. `Complex3m` escalates directly
    /// to Standard (dropping the 3M structure).
    pub fn next_stronger(self) -> Option<ComputeMode> {
        match self {
            ComputeMode::Complex3m => Some(ComputeMode::Standard),
            _ => {
                let pos = ComputeMode::ESCALATION_LADDER.iter().position(|&m| m == self)?;
                ComputeMode::ESCALATION_LADDER.get(pos + 1).copied()
            }
        }
    }

    /// Parses the `MKL_BLAS_COMPUTE_MODE` environment value. Empty or
    /// unset strings mean [`ComputeMode::Standard`]. Unknown values are an
    /// error (oneMKL silently ignores them; we prefer to fail loudly).
    pub fn from_env_value(value: &str) -> Result<ComputeMode, ParseModeError> {
        let v = value.trim();
        if v.is_empty() {
            return Ok(ComputeMode::Standard);
        }
        for mode in ComputeMode::ALTERNATIVE {
            if mode.env_value().is_some_and(|e| e.eq_ignore_ascii_case(v)) {
                return Ok(mode);
            }
        }
        if v.eq_ignore_ascii_case("STANDARD") {
            return Ok(ComputeMode::Standard);
        }
        Err(ParseModeError { value: v.to_string() })
    }
}

impl fmt::Display for ComputeMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for ComputeMode {
    type Err = ParseModeError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // Accept both env-variable spellings and figure labels.
        ComputeMode::from_env_value(s).or_else(|e| {
            ComputeMode::ALL
                .into_iter()
                .find(|m| m.label().eq_ignore_ascii_case(s.trim()))
                .ok_or(e)
        })
    }
}

/// Error returned for an unrecognised compute-mode string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseModeError {
    /// The offending value.
    pub value: String,
}

impl fmt::Display for ParseModeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown MKL_BLAS_COMPUTE_MODE value: {:?} (valid values: ", self.value)?;
        for mode in ComputeMode::ALTERNATIVE {
            write!(f, "{}, ", mode.env_value().expect("alternative modes have env values"))?;
        }
        f.write_str("STANDARD, or unset)")
    }
}

impl std::error::Error for ParseModeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_env_values() {
        assert_eq!(ComputeMode::FloatToBf16.env_value(), Some("FLOAT_TO_BF16"));
        assert_eq!(ComputeMode::FloatToBf16x2.env_value(), Some("FLOAT_TO_BF16X2"));
        assert_eq!(ComputeMode::FloatToBf16x3.env_value(), Some("FLOAT_TO_BF16X3"));
        assert_eq!(ComputeMode::FloatToTf32.env_value(), Some("FLOAT_TO_TF32"));
        assert_eq!(ComputeMode::Complex3m.env_value(), Some("COMPLEX_3M"));
        assert_eq!(ComputeMode::Standard.env_value(), None);
    }

    #[test]
    fn table_ii_theoretical_speedups() {
        assert_eq!(ComputeMode::FloatToBf16.theoretical_speedup(), 16.0);
        assert!((ComputeMode::FloatToBf16x2.theoretical_speedup() - 16.0 / 3.0).abs() < 1e-12);
        assert!((ComputeMode::FloatToBf16x3.theoretical_speedup() - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(ComputeMode::FloatToTf32.theoretical_speedup(), 8.0);
        assert!((ComputeMode::Complex3m.theoretical_speedup() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_env_parse() {
        for mode in ComputeMode::ALTERNATIVE {
            let parsed = ComputeMode::from_env_value(mode.env_value().unwrap()).unwrap();
            assert_eq!(parsed, mode);
        }
        assert_eq!(ComputeMode::from_env_value("").unwrap(), ComputeMode::Standard);
        assert_eq!(
            ComputeMode::from_env_value("float_to_bf16").unwrap(),
            ComputeMode::FloatToBf16
        );
        assert!(ComputeMode::from_env_value("FLOAT_TO_FP8").is_err());
    }

    #[test]
    fn parse_error_lists_valid_values() {
        let e = ComputeMode::from_env_value("FLOAT_TO_FP8").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("FLOAT_TO_FP8"), "offending value missing: {msg}");
        for mode in ComputeMode::ALTERNATIVE {
            assert!(msg.contains(mode.env_value().unwrap()), "{msg}");
        }
        assert!(msg.contains("STANDARD"), "{msg}");
    }

    #[test]
    fn labels_parse_too() {
        assert_eq!("BF16x3".parse::<ComputeMode>().unwrap(), ComputeMode::FloatToBf16x3);
        assert_eq!("Complex_3m".parse::<ComputeMode>().unwrap(), ComputeMode::Complex3m);
        assert_eq!("FP32".parse::<ComputeMode>().unwrap(), ComputeMode::Standard);
    }

    #[test]
    fn split_depth_and_products_consistent() {
        // x2 keeps 3 of 4 cross products, x3 keeps 6 of 9.
        assert_eq!(ComputeMode::FloatToBf16x2.component_products(), 3);
        assert_eq!(ComputeMode::FloatToBf16x3.component_products(), 6);
        // Speedup = systolic peak ratio / products.
        let x2 = ComputeMode::FloatToBf16x2;
        assert!((x2.theoretical_speedup() - 16.0 / x2.component_products() as f64).abs() < 1e-12);
    }

    #[test]
    fn escalation_ladder_ends_at_standard() {
        assert_eq!(*ComputeMode::ESCALATION_LADDER.last().unwrap(), ComputeMode::Standard);
        assert_eq!(ComputeMode::Standard.next_stronger(), None);
        assert_eq!(ComputeMode::Complex3m.next_stronger(), Some(ComputeMode::Standard));
        // Walking next_stronger from the weakest rung visits the whole ladder.
        let mut walked = vec![ComputeMode::FloatToBf16];
        while let Some(next) = walked.last().unwrap().next_stronger() {
            walked.push(next);
        }
        assert_eq!(walked, ComputeMode::ESCALATION_LADDER);
        // Ranks strictly increase along the ladder.
        for pair in ComputeMode::ESCALATION_LADDER.windows(2) {
            assert!(pair[0].escalation_rank() < pair[1].escalation_rank());
        }
        assert!(ComputeMode::Complex3m.escalation_rank() < ComputeMode::Standard.escalation_rank());
    }

    #[test]
    fn accuracy_ordering_matches_paper() {
        use ComputeMode::*;
        let bits = |m: ComputeMode| m.effective_mantissa_bits();
        assert!(bits(FloatToBf16) < bits(FloatToTf32));
        assert!(bits(FloatToTf32) < bits(FloatToBf16x2));
        assert!(bits(FloatToBf16x2) < bits(FloatToBf16x3));
        assert_eq!(bits(FloatToBf16x3), bits(Standard));
    }
}

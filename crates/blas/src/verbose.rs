//! `MKL_VERBOSE`-style call logging.
//!
//! The paper extracts per-call BLAS timings and matrix dimensions from
//! `MKL_VERBOSE=2` output (Tables VI/VII, Figure 3b). This module provides
//! the equivalent: every level-3 call appends a [`CallRecord`] carrying the
//! routine name, `op` letters, `m/n/k`, the active compute mode, the
//! measured host wall time, and — when a device model is installed — the
//! modelled GPU execution time.
//!
//! Recording is enabled either by `MKL_VERBOSE >= 1` in the environment or
//! programmatically via [`set_recording`]; harnesses use the latter so they
//! work without touching the environment. Printing of per-call lines (the
//! actual `MKL_VERBOSE` behaviour) happens at env level >= 1.
//!
//! The record store is a **bounded ring**: a run that makes millions of
//! calls keeps only the most recent [`record_capacity`] records and counts
//! the rest in [`dropped_records`]. Capacity comes from
//! [`MKL_VERBOSE_BUFFER_ENV`] or [`set_record_capacity`].
//!
//! Independently of recording, every call becomes a telemetry span when
//! the `TELEMETRY` level is `full` (shape/mode attributes on the begin
//! event; wall time, modelled device time, and pool-traffic deltas on the
//! end event) and feeds the `mkl_blas_*` metrics at level `events`. At
//! level `events` the span stream is **sampled**: 1 call in N
//! (`TELEMETRY_SAMPLE`, default 16) is recorded with a `sample_weight`
//! attribute so the `profile` folder can rescale totals.

use crate::config::verbose_level;
use crate::device::{Domain, GemmDesc};
use crate::mode::ComputeMode;
use crate::Op;
use dcmesh_telemetry as telemetry;
use dcmesh_telemetry::AttrValue;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Environment variable bounding the in-memory record ring (records).
pub const MKL_VERBOSE_BUFFER_ENV: &str = "MKL_VERBOSE_BUFFER";

/// Default record-ring capacity.
pub const DEFAULT_RECORD_CAPACITY: usize = 1 << 16; // 65 536 records

/// One logged BLAS call.
#[derive(Clone, Debug)]
pub struct CallRecord {
    /// BLAS routine name (`SGEMM`, `CGEMM`, ...).
    pub routine: &'static str,
    /// `op(A)` letter.
    pub transa: char,
    /// `op(B)` letter.
    pub transb: char,
    /// Rows of C.
    pub m: usize,
    /// Columns of C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Compute mode in effect.
    pub mode: ComputeMode,
    /// Element domain.
    pub domain: Domain,
    /// Host wall time of the (emulated) computation.
    pub wall: Duration,
    /// Modelled device execution time, if a device model is installed.
    pub device_seconds: Option<f64>,
}

impl CallRecord {
    /// The timing that experiments should use: modelled device time when
    /// available, host wall time otherwise.
    pub fn effective_seconds(&self) -> f64 {
        self.device_seconds.unwrap_or(self.wall.as_secs_f64())
    }

    /// Formats the record like an `MKL_VERBOSE` line.
    pub fn to_verbose_line(&self) -> String {
        let dev = match self.device_seconds {
            Some(s) => format!(" dev:{:.3}ms", s * 1e3),
            None => String::new(),
        };
        format!(
            "MKL_VERBOSE {}({},{},{},{},{}) mode:{} {:.3}ms{}",
            self.routine,
            self.transa,
            self.transb,
            self.m,
            self.n,
            self.k,
            self.mode.env_value().unwrap_or("STANDARD"),
            self.wall.as_secs_f64() * 1e3,
            dev
        )
    }
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static LOG: Mutex<VecDeque<CallRecord>> = Mutex::new(VecDeque::new());
/// 0 means "not yet initialised from the environment".
static RECORD_CAPACITY: AtomicUsize = AtomicUsize::new(0);
static DROPPED_RECORDS: AtomicU64 = AtomicU64::new(0);

/// Enables or disables in-memory call recording.
pub fn set_recording(on: bool) {
    if on {
        // Register the loss gauge up front so a scrape (or the profile
        // ingester's coverage check) sees an explicit zero rather than a
        // missing series when nothing has been dropped.
        dropped_records_gauge().set(DROPPED_RECORDS.load(Ordering::Relaxed) as f64);
    }
    RECORDING.store(on, Ordering::Release);
}

/// True when calls are being recorded (programmatic or via `MKL_VERBOSE`).
pub fn recording() -> bool {
    RECORDING.load(Ordering::Acquire) || verbose_level() >= 1
}

fn record_capacity_total() -> usize {
    let c = RECORD_CAPACITY.load(Ordering::Relaxed);
    if c != 0 {
        return c;
    }
    let c = std::env::var(MKL_VERBOSE_BUFFER_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_RECORD_CAPACITY);
    RECORD_CAPACITY.store(c, Ordering::Relaxed);
    c
}

/// Sets the record-ring capacity (at least one record). Shrinking takes
/// effect as the next record arrives.
pub fn set_record_capacity(n: usize) {
    RECORD_CAPACITY.store(n.max(1), Ordering::Relaxed);
}

/// Current record-ring capacity.
pub fn record_capacity() -> usize {
    record_capacity_total()
}

/// Records discarded because the ring was full (oldest-first policy).
pub fn dropped_records() -> u64 {
    DROPPED_RECORDS.load(Ordering::Relaxed)
}

fn dropped_records_gauge() -> &'static Arc<telemetry::metrics::Gauge> {
    static G: OnceLock<Arc<telemetry::metrics::Gauge>> = OnceLock::new();
    G.get_or_init(|| {
        telemetry::metrics::gauge(
            "mkl_verbose_dropped_records",
            "call records discarded because the verbose ring was full",
        )
    })
}

/// Appends a record (called by the GEMM wrappers), evicting the oldest
/// records beyond the ring capacity.
pub(crate) fn record(rec: CallRecord) {
    if verbose_level() >= 1 {
        eprintln!("{}", rec.to_verbose_line());
    }
    let cap = record_capacity_total();
    let mut log = LOG.lock();
    let mut dropped = false;
    while log.len() >= cap {
        log.pop_front();
        DROPPED_RECORDS.fetch_add(1, Ordering::Relaxed);
        dropped = true;
    }
    log.push_back(rec);
    if dropped {
        dropped_records_gauge().set(DROPPED_RECORDS.load(Ordering::Relaxed) as f64);
    }
}

/// Removes and returns all recorded calls, oldest first.
pub fn drain() -> Vec<CallRecord> {
    LOG.lock().drain(..).collect()
}

/// Returns a copy of the recorded calls without clearing.
pub fn snapshot() -> Vec<CallRecord> {
    LOG.lock().iter().cloned().collect()
}

/// Clears the log and the dropped-records counter.
pub fn clear() {
    LOG.lock().clear();
    DROPPED_RECORDS.store(0, Ordering::Relaxed);
    dropped_records_gauge().set(0.0);
}

/// Aggregate statistics over a set of call records (per-routine totals, as
/// the paper computes from its `MKL_VERBOSE` dumps).
#[derive(Clone, Debug, Default)]
pub struct CallSummary {
    /// Number of calls.
    pub calls: usize,
    /// Sum of effective times in seconds.
    pub total_seconds: f64,
    /// Sum of real multiply-accumulate operations.
    pub total_macs: f64,
}

impl CallSummary {
    /// Mean effective seconds per call.
    pub fn mean_seconds(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_seconds / self.calls as f64
        }
    }
}

/// Summarises records, grouped by routine name.
pub fn summarize(records: &[CallRecord]) -> Vec<(&'static str, CallSummary)> {
    let mut out: Vec<(&'static str, CallSummary)> = Vec::new();
    for r in records {
        let desc = GemmDesc { domain: r.domain, m: r.m, n: r.n, k: r.k, mode: r.mode };
        let entry = match out.iter_mut().find(|(name, _)| *name == r.routine) {
            Some((_, s)) => s,
            None => {
                out.push((r.routine, CallSummary::default()));
                &mut out.last_mut().expect("just pushed").1
            }
        };
        entry.calls += 1;
        entry.total_seconds += r.effective_seconds();
        entry.total_macs += desc.real_macs();
    }
    out
}

/// `&'static str` spelling of an op letter, for zero-allocation span
/// attributes.
fn op_str(op: Op) -> &'static str {
    match op.letter() {
        'N' => "N",
        'T' => "T",
        _ => "C",
    }
}

fn blas_calls_total() -> &'static Arc<telemetry::metrics::Counter> {
    static C: OnceLock<Arc<telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        telemetry::metrics::counter("mkl_blas_calls_total", "level-3 BLAS calls observed")
    })
}

fn blas_wall_ns() -> &'static Arc<telemetry::metrics::Histogram> {
    static H: OnceLock<Arc<telemetry::metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        telemetry::metrics::histogram("mkl_blas_call_wall_ns", "host wall time per BLAS call")
    })
}

/// Combined f32+f64 pool traffic of the calling thread, for span deltas.
fn pool_traffic() -> (u64, u64) {
    let s32 = crate::workspace::stats::<f32>();
    let s64 = crate::workspace::stats::<f64>();
    (s32.takes + s64.takes, s32.misses + s64.misses)
}

/// Helper used by the GEMM wrappers: wraps a computation with timing,
/// logging, and telemetry. Returns the closure's result.
///
/// The disabled path (no recording, `TELEMETRY=off`) is two relaxed
/// atomic loads and a branch — measured by `telemetry_check
/// --overhead-gate`.
pub(crate) fn logged<R>(
    routine: &'static str,
    transa: Op,
    transb: Op,
    desc: GemmDesc,
    f: impl FnOnce() -> R,
) -> R {
    let events = telemetry::events_enabled();
    if !recording() && !events {
        return f();
    }
    let mode_str = desc.mode.env_value().unwrap_or("STANDARD");
    let callsite = if events { Some(telemetry::callsite_for(routine)) } else { None };
    let mut span = telemetry::sampled_span(routine);
    let pool_before = if span.armed() {
        span = span
            .attr("transa", AttrValue::Str(op_str(transa)))
            .attr("transb", AttrValue::Str(op_str(transb)))
            .attr("m", AttrValue::U64(desc.m as u64))
            .attr("n", AttrValue::U64(desc.n as u64))
            .attr("k", AttrValue::U64(desc.k as u64))
            .attr("mode", AttrValue::Str(mode_str));
        if let Some(cs) = callsite {
            span = span.attr("callsite", AttrValue::Str(cs));
        }
        span = span.enter();
        Some(pool_traffic())
    } else {
        None
    };
    let start = std::time::Instant::now();
    let out = f();
    let wall = start.elapsed();
    let device_seconds = crate::device::modelled_gemm_time(&desc);
    if events {
        blas_calls_total().inc();
        blas_wall_ns().observe(wall.as_nanos() as u64);
        // Ledger statistics fold every call (not sampled): the
        // autotuner reads cost from here, not from sampled spans.
        telemetry::ledger::record_call(
            callsite.expect("set when events"),
            desc.m,
            desc.n,
            desc.k,
            mode_str,
            wall.as_secs_f64(),
            device_seconds,
        );
    }
    if let Some((takes0, misses0)) = pool_before {
        let (takes1, misses1) = pool_traffic();
        span.end_attr("wall_s", AttrValue::F64(wall.as_secs_f64()));
        if let Some(dev) = device_seconds {
            span.end_attr("device_s", AttrValue::F64(dev));
        }
        span.end_attr("pool_takes", AttrValue::U64(takes1.saturating_sub(takes0)));
        span.end_attr("pool_misses", AttrValue::U64(misses1.saturating_sub(misses0)));
    }
    drop(span);
    if recording() {
        record(CallRecord {
            routine,
            transa: transa.letter(),
            transb: transb.letter(),
            m: desc.m,
            n: desc.n,
            k: desc.k,
            mode: desc.mode,
            domain: desc.domain,
            wall,
            device_seconds,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(routine: &'static str, secs: f64) -> CallRecord {
        CallRecord {
            routine,
            transa: 'N',
            transb: 'N',
            m: 2,
            n: 3,
            k: 4,
            mode: ComputeMode::Standard,
            domain: Domain::Real32,
            wall: Duration::from_secs_f64(secs),
            device_seconds: None,
        }
    }

    #[test]
    fn verbose_line_format() {
        let mut r = rec("CGEMM", 0.001);
        r.mode = ComputeMode::FloatToBf16;
        r.device_seconds = Some(0.0005);
        let line = r.to_verbose_line();
        assert!(line.contains("CGEMM(N,N,2,3,4)"), "{line}");
        assert!(line.contains("FLOAT_TO_BF16"), "{line}");
        assert!(line.contains("dev:0.500ms"), "{line}");
    }

    #[test]
    fn summarize_groups_by_routine() {
        let recs = vec![rec("SGEMM", 1.0), rec("CGEMM", 2.0), rec("SGEMM", 3.0)];
        let sum = summarize(&recs);
        assert_eq!(sum.len(), 2);
        let sgemm = &sum.iter().find(|(n, _)| *n == "SGEMM").unwrap().1;
        assert_eq!(sgemm.calls, 2);
        assert!((sgemm.total_seconds - 4.0).abs() < 1e-12);
        assert!((sgemm.mean_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn effective_time_prefers_device() {
        let mut r = rec("SGEMM", 1.0);
        assert_eq!(r.effective_seconds(), 1.0);
        r.device_seconds = Some(0.25);
        assert_eq!(r.effective_seconds(), 0.25);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(CallSummary::default().mean_seconds(), 0.0);
    }

    #[test]
    fn record_ring_bounds_and_counts_drops() {
        // The log is process-global; serialise against other tests that
        // might record by holding the telemetry override lock.
        dcmesh_telemetry::with_level(dcmesh_telemetry::level(), || {
            let saved = record_capacity();
            clear();
            set_record_capacity(3);
            let before = dropped_records();
            for i in 0..5 {
                record(rec("SGEMM", i as f64));
            }
            assert_eq!(dropped_records() - before, 2);
            let kept = drain();
            assert_eq!(kept.len(), 3, "ring keeps only the newest records");
            // Oldest-first drain: the survivors are calls 2, 3, 4.
            assert!((kept[0].wall.as_secs_f64() - 2.0).abs() < 1e-12);
            assert!((kept[2].wall.as_secs_f64() - 4.0).abs() < 1e-12);
            set_record_capacity(saved);
            clear();
        });
    }

    #[test]
    fn drain_preserves_insertion_order() {
        dcmesh_telemetry::with_level(dcmesh_telemetry::level(), || {
            clear();
            record(rec("SGEMM", 1.0));
            record(rec("CGEMM", 2.0));
            let out = drain();
            assert_eq!(out.len(), 2);
            assert_eq!(out[0].routine, "SGEMM");
            assert_eq!(out[1].routine, "CGEMM");
            assert!(drain().is_empty());
        });
    }
}

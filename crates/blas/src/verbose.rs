//! `MKL_VERBOSE`-style call logging.
//!
//! The paper extracts per-call BLAS timings and matrix dimensions from
//! `MKL_VERBOSE=2` output (Tables VI/VII, Figure 3b). This module provides
//! the equivalent: every level-3 call appends a [`CallRecord`] carrying the
//! routine name, `op` letters, `m/n/k`, the active compute mode, the
//! measured host wall time, and — when a device model is installed — the
//! modelled GPU execution time.
//!
//! Recording is enabled either by `MKL_VERBOSE >= 1` in the environment or
//! programmatically via [`set_recording`]; harnesses use the latter so they
//! work without touching the environment. Printing of per-call lines (the
//! actual `MKL_VERBOSE` behaviour) happens at env level >= 1.

use crate::config::verbose_level;
use crate::device::{Domain, GemmDesc};
use crate::mode::ComputeMode;
use crate::Op;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One logged BLAS call.
#[derive(Clone, Debug)]
pub struct CallRecord {
    /// BLAS routine name (`SGEMM`, `CGEMM`, ...).
    pub routine: &'static str,
    /// `op(A)` letter.
    pub transa: char,
    /// `op(B)` letter.
    pub transb: char,
    /// Rows of C.
    pub m: usize,
    /// Columns of C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Compute mode in effect.
    pub mode: ComputeMode,
    /// Element domain.
    pub domain: Domain,
    /// Host wall time of the (emulated) computation.
    pub wall: Duration,
    /// Modelled device execution time, if a device model is installed.
    pub device_seconds: Option<f64>,
}

impl CallRecord {
    /// The timing that experiments should use: modelled device time when
    /// available, host wall time otherwise.
    pub fn effective_seconds(&self) -> f64 {
        self.device_seconds.unwrap_or(self.wall.as_secs_f64())
    }

    /// Formats the record like an `MKL_VERBOSE` line.
    pub fn to_verbose_line(&self) -> String {
        let dev = match self.device_seconds {
            Some(s) => format!(" dev:{:.3}ms", s * 1e3),
            None => String::new(),
        };
        format!(
            "MKL_VERBOSE {}({},{},{},{},{}) mode:{} {:.3}ms{}",
            self.routine,
            self.transa,
            self.transb,
            self.m,
            self.n,
            self.k,
            self.mode.env_value().unwrap_or("STANDARD"),
            self.wall.as_secs_f64() * 1e3,
            dev
        )
    }
}

static RECORDING: AtomicBool = AtomicBool::new(false);
static LOG: Mutex<Vec<CallRecord>> = Mutex::new(Vec::new());

/// Enables or disables in-memory call recording.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Release);
}

/// True when calls are being recorded (programmatic or via `MKL_VERBOSE`).
pub fn recording() -> bool {
    RECORDING.load(Ordering::Acquire) || verbose_level() >= 1
}

/// Appends a record (called by the GEMM wrappers).
pub(crate) fn record(rec: CallRecord) {
    if verbose_level() >= 1 {
        eprintln!("{}", rec.to_verbose_line());
    }
    LOG.lock().push(rec);
}

/// Removes and returns all recorded calls.
pub fn drain() -> Vec<CallRecord> {
    std::mem::take(&mut *LOG.lock())
}

/// Returns a copy of the recorded calls without clearing.
pub fn snapshot() -> Vec<CallRecord> {
    LOG.lock().clone()
}

/// Clears the log.
pub fn clear() {
    LOG.lock().clear();
}

/// Aggregate statistics over a set of call records (per-routine totals, as
/// the paper computes from its `MKL_VERBOSE` dumps).
#[derive(Clone, Debug, Default)]
pub struct CallSummary {
    /// Number of calls.
    pub calls: usize,
    /// Sum of effective times in seconds.
    pub total_seconds: f64,
    /// Sum of real multiply-accumulate operations.
    pub total_macs: f64,
}

impl CallSummary {
    /// Mean effective seconds per call.
    pub fn mean_seconds(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_seconds / self.calls as f64
        }
    }
}

/// Summarises records, grouped by routine name.
pub fn summarize(records: &[CallRecord]) -> Vec<(&'static str, CallSummary)> {
    let mut out: Vec<(&'static str, CallSummary)> = Vec::new();
    for r in records {
        let desc = GemmDesc { domain: r.domain, m: r.m, n: r.n, k: r.k, mode: r.mode };
        let entry = match out.iter_mut().find(|(name, _)| *name == r.routine) {
            Some((_, s)) => s,
            None => {
                out.push((r.routine, CallSummary::default()));
                &mut out.last_mut().expect("just pushed").1
            }
        };
        entry.calls += 1;
        entry.total_seconds += r.effective_seconds();
        entry.total_macs += desc.real_macs();
    }
    out
}

/// Helper used by the GEMM wrappers: wraps a computation with timing and
/// logging. Returns the closure's result.
pub(crate) fn logged<R>(
    routine: &'static str,
    transa: Op,
    transb: Op,
    desc: GemmDesc,
    f: impl FnOnce() -> R,
) -> R {
    if !recording() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    let wall = start.elapsed();
    record(CallRecord {
        routine,
        transa: transa.letter(),
        transb: transb.letter(),
        m: desc.m,
        n: desc.n,
        k: desc.k,
        mode: desc.mode,
        domain: desc.domain,
        wall,
        device_seconds: crate::device::modelled_gemm_time(&desc),
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(routine: &'static str, secs: f64) -> CallRecord {
        CallRecord {
            routine,
            transa: 'N',
            transb: 'N',
            m: 2,
            n: 3,
            k: 4,
            mode: ComputeMode::Standard,
            domain: Domain::Real32,
            wall: Duration::from_secs_f64(secs),
            device_seconds: None,
        }
    }

    #[test]
    fn verbose_line_format() {
        let mut r = rec("CGEMM", 0.001);
        r.mode = ComputeMode::FloatToBf16;
        r.device_seconds = Some(0.0005);
        let line = r.to_verbose_line();
        assert!(line.contains("CGEMM(N,N,2,3,4)"), "{line}");
        assert!(line.contains("FLOAT_TO_BF16"), "{line}");
        assert!(line.contains("dev:0.500ms"), "{line}");
    }

    #[test]
    fn summarize_groups_by_routine() {
        let recs = vec![rec("SGEMM", 1.0), rec("CGEMM", 2.0), rec("SGEMM", 3.0)];
        let sum = summarize(&recs);
        assert_eq!(sum.len(), 2);
        let sgemm = &sum.iter().find(|(n, _)| *n == "SGEMM").unwrap().1;
        assert_eq!(sgemm.calls, 2);
        assert!((sgemm.total_seconds - 4.0).abs() < 1e-12);
        assert!((sgemm.mean_seconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn effective_time_prefers_device() {
        let mut r = rec("SGEMM", 1.0);
        assert_eq!(r.effective_seconds(), 1.0);
        r.device_seconds = Some(0.25);
        assert_eq!(r.effective_seconds(), 0.25);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(CallSummary::default().mean_seconds(), 0.0);
    }
}

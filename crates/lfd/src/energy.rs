//! `calc_energy`: the BLASified energy evaluation.
//!
//! Kinetic energy is evaluated through the Kohn–Sham subspace: the mesh
//! kernel computes `TΨ`, then one large CGEMM forms
//! `M = Ψ†·(TΨ)·ΔV` (`n_orb × n_orb × N_grid`) whose weighted diagonal is
//! `E_kin = Σ_o f_o·M_oo` — this is the BLAS call whose precision the
//! paper probes through the kinetic-energy observable. The nonlocal
//! energy reuses the `nlp_prop` projection matrix in a subspace-sized
//! GEMM, and the potential energy is a pointwise mesh reduction (not
//! BLAS, so identical across compute modes).

use crate::hamiltonian::apply_kinetic;
use crate::nonlocal::{projector_weight, LfdScalar};
use crate::policy::{CallSite, PrecisionPolicy};
use crate::state::{LfdParams, LfdState};
use dcmesh_numerics::{reduce, Complex};
use mkl_lite::Op;

/// Energy breakdown for one QD step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Energies {
    /// Kinetic energy (Hartree) — BLAS-dependent.
    pub ekin: f64,
    /// Local potential energy (Hartree) — mesh reduction.
    pub epot: f64,
    /// Nonlocal pseudopotential energy (Hartree) — BLAS-dependent.
    pub enl: f64,
    /// Total electronic energy.
    pub etot: f64,
    /// Excitation energy measured in the frozen reference spectrum
    /// (Hartree): `Σ_o f_o (P† diag(ε) P)_oo − Σ_occ f·ε` — zero at t = 0,
    /// BLAS-dependent.
    pub eexc: f64,
}

/// Evaluates the energies. `projection` is the `C = Ψ†(0)Ψ·ΔV` matrix
/// returned by the step's `nlp_prop` call (reused to avoid a second
/// grid-sized projection, as DCMESH does); `scratch` holds `TΨ`.
pub fn calc_energy<T: LfdScalar>(
    params: &LfdParams,
    state: &LfdState<T>,
    projection: &[Complex<T>],
    scratch: &mut Vec<Complex<T>>,
) -> Energies {
    calc_energy_with_policy(params, state, projection, scratch, &PrecisionPolicy::Ambient)
}

/// [`calc_energy`] with a per-call-site [`PrecisionPolicy`].
pub fn calc_energy_with_policy<T: LfdScalar>(
    params: &LfdParams,
    state: &LfdState<T>,
    projection: &[Complex<T>],
    scratch: &mut Vec<Complex<T>>,
    policy: &PrecisionPolicy,
) -> Energies {
    let n_orb = params.n_orb;
    let ngrid = params.mesh.len();
    let dv = params.mesh.dv();
    assert_eq!(projection.len(), n_orb * n_orb, "projection shape mismatch");

    // Mesh kernel: TΨ.
    scratch.clear();
    scratch.resize(ngrid * n_orb, Complex::zero());
    apply_kinetic(&params.mesh, n_orb, &state.psi, scratch);

    // BLAS: M = Ψ†(TΨ)·ΔV  (n_orb × n_orb × N_grid).
    let mut m = vec![Complex::<T>::zero(); n_orb * n_orb];
    policy.run(CallSite::EnergyKinetic, || T::gemm(
        Op::ConjTrans,
        Op::None,
        n_orb,
        n_orb,
        ngrid,
        Complex::from_real(T::from_f64(dv)),
        &state.psi,
        n_orb,
        scratch,
        n_orb,
        Complex::zero(),
        &mut m,
        n_orb,
    ));
    let ekin =
        reduce::sum_with(n_orb, |o| state.occ[o].to_f64() * m[o * n_orb + o].re.to_f64());

    // BLAS (subspace): E_nl matrix = C†·(W·C) with W the projector
    // weights; diag gives the per-orbital nonlocal energies.
    let mut wc = vec![Complex::<T>::zero(); n_orb * n_orb];
    for i in 0..n_orb {
        let w = T::from_f64(params.vnl_strength * projector_weight(i, n_orb));
        for j in 0..n_orb {
            wc[i * n_orb + j] = projection[i * n_orb + j].scale(w);
        }
    }
    let mut enl_m = vec![Complex::<T>::zero(); n_orb * n_orb];
    policy.run(CallSite::EnergyNonlocal, || T::gemm(
        Op::ConjTrans,
        Op::None,
        n_orb,
        n_orb,
        n_orb,
        Complex::one(),
        projection,
        n_orb,
        &wc,
        n_orb,
        Complex::zero(),
        &mut enl_m,
        n_orb,
    ));
    let enl =
        reduce::sum_with(n_orb, |o| state.occ[o].to_f64() * enl_m[o * n_orb + o].re.to_f64());

    // BLAS (subspace): excitation-energy transform E = P†·(diag(ε)·P);
    // the weighted diagonal measures the energy of the propagated state
    // in the frozen reference spectrum.
    let mut eps_p = vec![Complex::<T>::zero(); n_orb * n_orb];
    for i in 0..n_orb {
        let e = T::from_f64(state.eps[i]);
        for j in 0..n_orb {
            eps_p[i * n_orb + j] = projection[i * n_orb + j].scale(e);
        }
    }
    let mut exc_m = vec![Complex::<T>::zero(); n_orb * n_orb];
    policy.run(CallSite::EnergyEexc, || T::gemm(
        Op::ConjTrans,
        Op::None,
        n_orb,
        n_orb,
        n_orb,
        Complex::one(),
        projection,
        n_orb,
        &eps_p,
        n_orb,
        Complex::zero(),
        &mut exc_m,
        n_orb,
    ));
    let eexc = reduce::sum_with(n_orb, |o| {
        state.occ[o].to_f64() * (exc_m[o * n_orb + o].re.to_f64() - state.eps[o])
    });

    // Mesh reduction: E_pot = Σ_g V(g)·ρ(g)·ΔV (identical in all modes).
    let epot = dv
        * reduce::sum_with(ngrid, |g| {
            let v = state.vloc[g].to_f64();
            if v == 0.0 {
                return 0.0;
            }
            let mut rho = 0.0f64;
            for o in 0..n_orb {
                let f = state.occ[o].to_f64();
                if f != 0.0 {
                    rho += f * state.psi[g * n_orb + o].norm_sqr().to_f64();
                }
            }
            v * rho
        });

    Energies { ekin, epot, enl, etot: ekin + epot + enl, eexc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::LaserPulse;
    use crate::mesh::Mesh3;
    use crate::nonlocal::nlp_prop;
    use crate::state::cosine_potential;
    use mkl_lite::{set_compute_mode, ComputeMode};

    fn params() -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(10, 0.6),
            n_orb: 8,
            n_occ: 4,
            dt: 0.02,
            vnl_strength: 0.3,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        }
    }

    #[test]
    fn plane_wave_kinetic_energy_analytic() {
        // Initial orbitals are plane waves with known kinetic energies
        // ½|k|²; occupations 2 each.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let c = nlp_prop(&p, &mut st); // also gives the projection at t=0
        // Undo the nlp kick so psi is exactly the plane waves again.
        let mut st2 = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        st2.psi0 = st.psi0.clone();
        let mut scratch = Vec::new();
        let e = calc_energy(&p, &st2, &c, &mut scratch);
        // Occupied modes: k = 0 and the three lowest nonzero |k|² = 1
        // (in units of 2π/L). E = 2·Σ ½k².
        let l = p.mesh.nx as f64 * p.mesh.spacing;
        let k1 = core::f64::consts::TAU / l;
        let expect = 2.0 * (0.0 + 3.0 * 0.5 * k1 * k1);
        assert!(
            (e.ekin - expect).abs() < 1e-4 * expect,
            "ekin {} vs analytic {expect}",
            e.ekin
        );
        assert_eq!(e.epot, 0.0);
    }

    #[test]
    fn potential_energy_of_uniform_density() {
        // With only the k=0 orbital occupied, ρ is uniform: E_pot equals
        // the mean of V times the electron count.
        set_compute_mode(ComputeMode::Standard);
        let mut p = params();
        p.n_occ = 1;
        let v = cosine_potential::<f64>(&p.mesh, 0.5);
        let mean_v: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let st = LfdState::<f64>::initialize(&p, v);
        let c = dcmesh_linalg::ops::identity(p.n_orb).to_vec();
        let mut scratch = Vec::new();
        let e = calc_energy(&p, &st, &c, &mut scratch);
        assert!(
            (e.epot - 2.0 * mean_v).abs() < 1e-10 + 1e-10 * mean_v.abs(),
            "epot {} vs {}",
            e.epot,
            2.0 * mean_v
        );
    }

    #[test]
    fn nonlocal_energy_at_t0() {
        // At t = 0 the projection is the identity, so
        // E_nl = Σ_occ f·v·w_i.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let c: Vec<_> = dcmesh_linalg::ops::identity(p.n_orb);
        let mut scratch = Vec::new();
        let e = calc_energy(&p, &st, &c, &mut scratch);
        let expect: f64 = (0..p.n_occ)
            .map(|i| 2.0 * p.vnl_strength * projector_weight(i, p.n_orb))
            .sum();
        assert!((e.enl - expect).abs() < 1e-9, "enl {} vs {expect}", e.enl);
    }

    #[test]
    fn etot_is_sum_of_parts() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        let c = dcmesh_linalg::ops::identity(p.n_orb);
        let mut scratch = Vec::new();
        let e = calc_energy(&p, &st, &c, &mut scratch);
        assert!((e.etot - (e.ekin + e.epot + e.enl)).abs() < 1e-12);
    }

    #[test]
    fn bf16_mode_changes_only_blas_outputs() {
        // epot comes from the mesh reduction, so it must be bit-identical
        // across compute modes; ekin (BLAS) must differ.
        let p = params();
        let v = cosine_potential::<f32>(&p.mesh, 0.2);
        let st = LfdState::<f32>::initialize(&p, v);
        let c: Vec<Complex<f32>> = dcmesh_linalg::ops::identity(p.n_orb)
            .iter()
            .map(|z| z.to_c32())
            .collect();
        let mut scratch = Vec::new();
        let e_std = mkl_lite::with_compute_mode(ComputeMode::Standard, || {
            calc_energy(&p, &st, &c, &mut scratch)
        });
        let e_bf = mkl_lite::with_compute_mode(ComputeMode::FloatToBf16, || {
            calc_energy(&p, &st, &c, &mut scratch)
        });
        assert_eq!(e_std.epot, e_bf.epot, "non-BLAS output changed with mode");
        assert_ne!(e_std.ekin, e_bf.ekin, "BLAS output did not change with mode");
        let rel = (e_std.ekin - e_bf.ekin).abs() / e_std.ekin.abs();
        assert!(rel < 0.05, "BF16 kinetic energy off by {rel}");
    }
}

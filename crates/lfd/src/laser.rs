//! The external laser pulse.
//!
//! DCMESH studies laser-induced excitation dynamics in lead titanate; the
//! driving field enters in the velocity gauge through a spatially uniform
//! vector potential `A(t)` polarised along z. We use the standard
//! sin²-envelope pulse of TDDFT codes. Atomic units throughout
//! (ħ = e = mₑ = 1; 1 fs ≈ 41.341 a.u. of time).

/// Conversion factor: atomic units of time per femtosecond.
pub const AU_PER_FS: f64 = 41.341_374_575_751;

/// A sin²-envelope laser pulse, linearly polarised along z.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaserPulse {
    /// Peak vector-potential amplitude (a.u.).
    pub amplitude: f64,
    /// Carrier angular frequency (Hartree).
    pub omega: f64,
    /// Pulse duration (a.u. of time); the envelope is zero outside
    /// `[0, duration]`.
    pub duration: f64,
    /// Carrier-envelope phase (radians).
    pub phase: f64,
}

impl LaserPulse {
    /// A pulse specified in experimental units: intensity-equivalent
    /// amplitude (a.u.), photon energy in eV, duration in fs.
    pub fn from_ev_fs(amplitude: f64, photon_ev: f64, duration_fs: f64) -> LaserPulse {
        LaserPulse {
            amplitude,
            omega: photon_ev / 27.211_386,
            duration: duration_fs * AU_PER_FS,
            phase: 0.0,
        }
    }

    /// External vector potential `A_ext(t)` (a.u.).
    pub fn vector_potential(&self, t: f64) -> f64 {
        if t <= 0.0 || t >= self.duration || self.duration <= 0.0 {
            return 0.0;
        }
        let env = (core::f64::consts::PI * t / self.duration).sin().powi(2);
        self.amplitude * env * (self.omega * t + self.phase).cos()
    }

    /// Electric field `E = −dA/dt`, by analytic differentiation.
    pub fn electric_field(&self, t: f64) -> f64 {
        if t <= 0.0 || t >= self.duration || self.duration <= 0.0 {
            return 0.0;
        }
        let pi = core::f64::consts::PI;
        let s = (pi * t / self.duration).sin();
        let c = (pi * t / self.duration).cos();
        let carrier = (self.omega * t + self.phase).cos();
        let dcarrier = -self.omega * (self.omega * t + self.phase).sin();
        let denv = 2.0 * s * c * pi / self.duration;
        -(self.amplitude * (denv * carrier + s * s * dcarrier))
    }

    /// A pulse that is identically zero (field-free propagation).
    pub fn off() -> LaserPulse {
        LaserPulse { amplitude: 0.0, omega: 1.0, duration: 0.0, phase: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulse() -> LaserPulse {
        LaserPulse::from_ev_fs(0.2, 3.1, 5.0)
    }

    #[test]
    fn zero_outside_support() {
        let p = pulse();
        assert_eq!(p.vector_potential(-1.0), 0.0);
        assert_eq!(p.vector_potential(0.0), 0.0);
        assert_eq!(p.vector_potential(p.duration), 0.0);
        assert_eq!(p.vector_potential(p.duration + 5.0), 0.0);
    }

    #[test]
    fn peak_is_near_midpoint_and_bounded() {
        let p = pulse();
        let mut max = 0.0f64;
        for i in 0..10_000 {
            let t = p.duration * i as f64 / 10_000.0;
            max = max.max(p.vector_potential(t).abs());
        }
        assert!(max <= p.amplitude * 1.000_001, "envelope exceeded amplitude: {max}");
        assert!(max >= p.amplitude * 0.9, "peak far below amplitude: {max}");
    }

    #[test]
    fn electric_field_matches_numeric_derivative() {
        let p = pulse();
        let h = 1e-6;
        for frac in [0.2, 0.4, 0.6, 0.8] {
            let t = p.duration * frac;
            let numeric = -(p.vector_potential(t + h) - p.vector_potential(t - h)) / (2.0 * h);
            let analytic = p.electric_field(t);
            assert!(
                (numeric - analytic).abs() < 1e-6 * (1.0 + analytic.abs()),
                "t={t}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn off_pulse_is_zero_everywhere() {
        let p = LaserPulse::off();
        for t in [-1.0, 0.0, 0.5, 100.0] {
            assert_eq!(p.vector_potential(t), 0.0);
            assert_eq!(p.electric_field(t), 0.0);
        }
    }

    #[test]
    fn photon_energy_conversion() {
        let p = LaserPulse::from_ev_fs(0.1, 27.211_386, 1.0);
        assert!((p.omega - 1.0).abs() < 1e-9);
        assert!((p.duration - AU_PER_FS).abs() < 1e-9);
    }
}

//! The local Hamiltonian on the finite-difference mesh.
//!
//! `H(t) = −½∇² − i A(t) ∂z + (V_loc + ½A²)` in the velocity gauge, with
//! the Laplacian and z-gradient discretised by 8th-order central
//! differences on the periodic mesh. These are the "simple data
//! parallelism" kernels of LFD (paper §IV-D) — everything here is a mesh
//! sweep, parallelised over grid slabs with rayon; nothing here is BLAS.

use crate::mesh::Mesh3;
use dcmesh_numerics::{Complex, Real};
use rayon::prelude::*;

/// 8th-order central-difference coefficients for the second derivative:
/// `f''(0) ≈ Σ_s C2[|s|]·f(s·h) / h²` for `s = −4..4`.
pub const C2: [f64; 5] = [
    -205.0 / 72.0,
    8.0 / 5.0,
    -1.0 / 5.0,
    8.0 / 315.0,
    -1.0 / 560.0,
];

/// 8th-order central-difference coefficients for the first derivative:
/// `f'(0) ≈ Σ_{s>0} C1[s]·(f(s·h) − f(−s·h)) / h`.
pub const C1: [f64; 5] = [0.0, 4.0 / 5.0, -1.0 / 5.0, 4.0 / 105.0, -1.0 / 280.0];

/// Stencil radius.
pub const RADIUS: usize = 4;

/// Applies `out = H(t)·ψ` for the whole orbital set.
///
/// * `psi`, `out`: row-major `N_grid × n_orb`.
/// * `vloc`: local potential, length `N_grid`.
/// * `a_total`: total vector potential (external + induced) at `t`.
pub fn apply_h<T: Real>(
    mesh: &Mesh3,
    n_orb: usize,
    vloc: &[T],
    a_total: f64,
    psi: &[Complex<T>],
    out: &mut [Complex<T>],
) {
    let ngrid = mesh.len();
    assert_eq!(psi.len(), ngrid * n_orb, "psi shape mismatch");
    assert_eq!(out.len(), ngrid * n_orb, "out shape mismatch");
    assert_eq!(vloc.len(), ngrid, "vloc shape mismatch");
    assert!(
        mesh.nx > 2 * RADIUS && mesh.ny > 2 * RADIUS && mesh.nz > 2 * RADIUS,
        "mesh smaller than twice the stencil radius"
    );

    let h2_inv = 1.0 / (mesh.spacing * mesh.spacing);
    let h_inv = 1.0 / mesh.spacing;
    let half_a2 = T::from_f64(0.5 * a_total * a_total);
    // −½ ∇²  →  scale C2 by −½/h².
    let lap_c: [T; 5] = core::array::from_fn(|s| T::from_f64(-0.5 * C2[s] * h2_inv));
    // −iA ∂z →  gradient coefficients scaled by A/h; the −i factor is
    // applied per element below.
    let grad_c: [T; 5] = core::array::from_fn(|s| T::from_f64(C1[s] * a_total * h_inv));
    let apply_gradient = a_total != 0.0;

    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    let slab = ny * nz * n_orb; // one x-plane of the state

    out.par_chunks_mut(slab).enumerate().for_each(|(ix, out_slab)| {
        // Periodic x-neighbour plane offsets for this slab.
        let xoff: [usize; 2 * RADIUS + 1] =
            core::array::from_fn(|i| Mesh3::wrap(ix, i as isize - RADIUS as isize, nx));
        for iy in 0..ny {
            let yoff: [usize; 2 * RADIUS + 1] =
                core::array::from_fn(|i| Mesh3::wrap(iy, i as isize - RADIUS as isize, ny));
            for iz in 0..nz {
                let zoff: [usize; 2 * RADIUS + 1] =
                    core::array::from_fn(|i| Mesh3::wrap(iz, i as isize - RADIUS as isize, nz));
                let g = (ix * ny + iy) * nz + iz;
                let row = &mut out_slab[(iy * nz + iz) * n_orb..(iy * nz + iz + 1) * n_orb];
                let center = &psi[g * n_orb..(g + 1) * n_orb];

                // Central terms: potential + ½A² + 3·C2[0] Laplacian tap.
                let diag = vloc[g] + half_a2;
                let lap0 = lap_c[0] * T::from_f64(3.0);
                for (o, r) in row.iter_mut().enumerate() {
                    *r = center[o].scale(diag + lap0);
                }

                // Off-centre Laplacian taps along the three axes.
                for s in 1..=RADIUS {
                    let c = lap_c[s];
                    let neighbours = [
                        ((xoff[RADIUS + s] * ny + iy) * nz + iz),
                        ((xoff[RADIUS - s] * ny + iy) * nz + iz),
                        ((ix * ny + yoff[RADIUS + s]) * nz + iz),
                        ((ix * ny + yoff[RADIUS - s]) * nz + iz),
                        ((ix * ny + iy) * nz + zoff[RADIUS + s]),
                        ((ix * ny + iy) * nz + zoff[RADIUS - s]),
                    ];
                    for gg in neighbours {
                        let src = &psi[gg * n_orb..(gg + 1) * n_orb];
                        for (o, r) in row.iter_mut().enumerate() {
                            *r += src[o].scale(c);
                        }
                    }
                }

                // −iA ∂z: antisymmetric z taps, multiplied by −i.
                if apply_gradient {
                    for s in 1..=RADIUS {
                        let c = grad_c[s];
                        let gp = (ix * ny + iy) * nz + zoff[RADIUS + s];
                        let gm = (ix * ny + iy) * nz + zoff[RADIUS - s];
                        let plus = &psi[gp * n_orb..(gp + 1) * n_orb];
                        let minus = &psi[gm * n_orb..(gm + 1) * n_orb];
                        for (o, r) in row.iter_mut().enumerate() {
                            let d = (plus[o] - minus[o]).scale(c);
                            // −i·d = (d.im, −d.re)
                            *r += Complex { re: d.im, im: -d.re };
                        }
                    }
                }
            }
        }
    });
}

/// Applies only the kinetic operator `out = −½∇²·ψ` (used by
/// `calc_energy`).
pub fn apply_kinetic<T: Real>(
    mesh: &Mesh3,
    n_orb: usize,
    psi: &[Complex<T>],
    out: &mut [Complex<T>],
) {
    let zero_v = vec![T::ZERO; mesh.len()];
    apply_h(mesh, n_orb, &zero_v, 0.0, psi, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_numerics::C64;

    /// Plane wave e^{i 2π m·r/L} on the mesh, one orbital.
    fn plane_wave(mesh: &Mesh3, m: (i32, i32, i32)) -> Vec<C64> {
        let mut psi = vec![C64::zero(); mesh.len()];
        for (g, pg) in psi.iter_mut().enumerate() {
            let (ix, iy, iz) = mesh.coords(g);
            let phase = core::f64::consts::TAU
                * (m.0 as f64 * ix as f64 / mesh.nx as f64
                    + m.1 as f64 * iy as f64 / mesh.ny as f64
                    + m.2 as f64 * iz as f64 / mesh.nz as f64);
            *pg = Complex::cis(phase);
        }
        psi
    }

    #[test]
    fn kinetic_eigenvalue_of_plane_wave() {
        // −½∇² e^{ikz} = ½k² e^{ikz}; 8th-order FD reproduces ½k² to
        // O((kh)^8).
        let mesh = Mesh3::cubic(24, 0.5);
        let m = (0, 0, 2);
        let k = core::f64::consts::TAU * 2.0 / (24.0 * 0.5);
        let psi = plane_wave(&mesh, m);
        let mut out = vec![C64::zero(); psi.len()];
        apply_kinetic(&mesh, 1, &psi, &mut out);
        let expect = 0.5 * k * k;
        for g in 0..mesh.len() {
            let val = out[g] * psi[g].conj(); // |psi|=1 so this is out/psi
            assert!(
                (val.re - expect).abs() < 5e-5 * expect && val.im.abs() < 1e-9,
                "g={g}: {val:?} vs {expect}"
            );
        }
    }

    #[test]
    fn gradient_term_eigenvalue() {
        // −iA ∂z e^{ikz} = A·k e^{ikz}.
        let mesh = Mesh3::cubic(24, 0.5);
        let a = 0.37;
        let m = (0, 0, 1);
        let k = core::f64::consts::TAU / (24.0 * 0.5);
        let psi = plane_wave(&mesh, m);
        let mut h_psi = vec![C64::zero(); psi.len()];
        let vzero = vec![0.0f64; mesh.len()];
        apply_h(&mesh, 1, &vzero, a, &psi, &mut h_psi);
        let expect = 0.5 * k * k + a * k + 0.5 * a * a;
        for g in (0..mesh.len()).step_by(97) {
            let val = h_psi[g] * psi[g].conj();
            assert!(
                (val.re - expect).abs() < 5e-5 * expect.abs() && val.im.abs() < 1e-9,
                "g={g}: {val:?} vs {expect}"
            );
        }
    }

    #[test]
    fn hermiticity_on_random_state() {
        // <φ|Hψ> == conj(<ψ|Hφ>) for the discrete operator.
        let mesh = Mesh3::cubic(10, 0.7);
        let n = mesh.len();
        let mk = |seed: u64| -> Vec<C64> {
            (0..n)
                .map(|g| {
                    let x = ((g as u64).wrapping_mul(6364136223846793005).wrapping_add(seed))
                        >> 33;
                    let a = (x % 1000) as f64 / 500.0 - 1.0;
                    let b = ((x / 1000) % 1000) as f64 / 500.0 - 1.0;
                    dcmesh_numerics::c64(a, b)
                })
                .collect()
        };
        let phi = mk(1);
        let psi = mk(2);
        let vloc: Vec<f64> = (0..n).map(|g| ((g % 7) as f64) * 0.1 - 0.3).collect();
        let mut h_psi = vec![C64::zero(); n];
        let mut h_phi = vec![C64::zero(); n];
        apply_h(&mesh, 1, &vloc, 0.23, &psi, &mut h_psi);
        apply_h(&mesh, 1, &vloc, 0.23, &phi, &mut h_phi);
        let dot = |a: &[C64], b: &[C64]| -> C64 {
            a.iter().zip(b).fold(C64::zero(), |s, (x, y)| s + x.conj() * *y)
        };
        let lhs = dot(&phi, &h_psi);
        let rhs = dot(&h_phi, &psi).conj();
        assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "{lhs:?} vs {rhs:?}");
    }

    #[test]
    fn constant_function_has_zero_laplacian() {
        let mesh = Mesh3::cubic(12, 0.4);
        let psi = vec![C64::one(); mesh.len()];
        let mut out = vec![C64::zero(); mesh.len()];
        apply_kinetic(&mesh, 1, &psi, &mut out);
        for (g, v) in out.iter().enumerate() {
            assert!(v.abs() < 1e-11, "g={g}: {v:?}");
        }
    }

    #[test]
    fn multi_orbital_matches_single() {
        // Applying H to a 2-orbital state must equal per-orbital results.
        let mesh = Mesh3::cubic(10, 0.5);
        let n = mesh.len();
        let p0 = plane_wave(&mesh, (1, 0, 0));
        let p1 = plane_wave(&mesh, (0, 1, 1));
        let vloc: Vec<f64> = (0..n).map(|g| (g % 5) as f64 * 0.07).collect();
        // Interleave.
        let mut both = vec![C64::zero(); n * 2];
        for g in 0..n {
            both[g * 2] = p0[g];
            both[g * 2 + 1] = p1[g];
        }
        let mut out_both = vec![C64::zero(); n * 2];
        apply_h(&mesh, 2, &vloc, 0.1, &both, &mut out_both);
        let mut out0 = vec![C64::zero(); n];
        let mut out1 = vec![C64::zero(); n];
        apply_h(&mesh, 1, &vloc, 0.1, &p0, &mut out0);
        apply_h(&mesh, 1, &vloc, 0.1, &p1, &mut out1);
        for g in 0..n {
            assert!((out_both[g * 2] - out0[g]).abs() < 1e-12);
            assert!((out_both[g * 2 + 1] - out1[g]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "stencil radius")]
    fn tiny_mesh_rejected() {
        let mesh = Mesh3::cubic(6, 0.5);
        let psi = vec![C64::zero(); mesh.len()];
        let mut out = psi.clone();
        apply_kinetic(&mesh, 1, &psi, &mut out);
    }

    #[test]
    fn anisotropic_mesh_kinetic_eigenvalues() {
        // Non-cubic mesh: exercises the index arithmetic with distinct
        // nx/ny/nz. A plane wave with one quantum along each axis has
        // kinetic energy ½(kx² + ky² + kz²) with axis-dependent k.
        let mesh = Mesh3 { nx: 10, ny: 12, nz: 14, spacing: 0.5 };
        let m = (1, 1, 1);
        let psi = plane_wave(&mesh, m);
        let mut out = vec![C64::zero(); psi.len()];
        apply_kinetic(&mesh, 1, &psi, &mut out);
        let k = |n: usize| core::f64::consts::TAU / (n as f64 * mesh.spacing);
        let expect = 0.5 * (k(10).powi(2) + k(12).powi(2) + k(14).powi(2));
        for g in (0..mesh.len()).step_by(61) {
            let val = out[g] * psi[g].conj();
            assert!(
                (val.re - expect).abs() < 5e-4 * expect && val.im.abs() < 1e-9,
                "g={g}: {val:?} vs {expect}"
            );
        }
    }
}

//! Non-BLAS observables: the average current density.
//!
//! `javg` is "not directly computed through BLAS, but is still influenced
//! by computations within BLAS calls" (paper §V-A) — the propagated Ψ
//! carries the BLAS rounding, while the reduction itself is a mesh
//! kernel. In the velocity gauge the z-component of the average current
//! density is
//!
//! ```text
//! j_z = (1/Ω)·Σ_o f_o ∫ [ Im(ψ_o* ∂z ψ_o) + A·|ψ_o|² ] dV
//! ```

use crate::hamiltonian::{C1, RADIUS};
use crate::mesh::Mesh3;
use crate::state::{LfdParams, LfdState};
use dcmesh_numerics::{reduce, Real};

/// Average current density along z (a.u.), including the diamagnetic
/// `A·n/Ω` term.
pub fn current_density<T: Real>(params: &LfdParams, state: &LfdState<T>, a_total: f64) -> f64 {
    let mesh = &params.mesh;
    let n_orb = params.n_orb;
    let (nx, ny, nz) = (mesh.nx, mesh.ny, mesh.nz);
    let h_inv = 1.0 / mesh.spacing;
    let psi = &state.psi;
    let occ: Vec<f64> = state.occ.iter().map(|f| f.to_f64()).collect();

    // Paramagnetic term: Σ f·Im(ψ* ∂z ψ), accumulated in f64. Per-yz
    // planes are computed in parallel, but the plane partials are folded
    // through the fixed reduction tree in ix order — bit-identical at
    // any rayon thread count (scheduling only decides *when* a plane is
    // computed, never how the sum is grouped).
    let para: f64 = reduce::par_map_sum(nx, |ix| {
        let mut acc = 0.0f64;
        for iy in 0..ny {
            for iz in 0..nz {
                let g = (ix * ny + iy) * nz + iz;
                let row = &psi[g * n_orb..(g + 1) * n_orb];
                #[allow(clippy::needless_range_loop)]
                for s in 1..=RADIUS {
                    let zp = (ix * ny + iy) * nz + Mesh3::wrap(iz, s as isize, nz);
                    let zm = (ix * ny + iy) * nz + Mesh3::wrap(iz, -(s as isize), nz);
                    let c = C1[s] * h_inv;
                    let plus = &psi[zp * n_orb..(zp + 1) * n_orb];
                    let minus = &psi[zm * n_orb..(zm + 1) * n_orb];
                    for (o, &f) in occ.iter().enumerate() {
                        if f == 0.0 {
                            continue;
                        }
                        let d_re = (plus[o].re - minus[o].re).to_f64();
                        let d_im = (plus[o].im - minus[o].im).to_f64();
                        // Im(ψ*·dψ) = re·d_im − im·d_re
                        acc += f * c * (row[o].re.to_f64() * d_im - row[o].im.to_f64() * d_re);
                    }
                }
            }
        }
        acc
    });

    let n_elec = state.electron_count(params);
    let volume = mesh.volume();
    (para * mesh.dv() + a_total * n_elec) / volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::LaserPulse;
    use crate::state::LfdState;
    use dcmesh_numerics::Complex;

    fn params(n: usize) -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(n, 0.5),
            n_orb: 2,
            n_occ: 2,
            dt: 0.02,
            vnl_strength: 0.0,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        }
    }

    #[test]
    fn ground_state_carries_no_current() {
        // Real-valued (k = 0) and ±k paired plane waves give zero net
        // paramagnetic current; with A = 0 the total vanishes. Our init
        // takes the two lowest modes: k = 0 and one k ≠ 0, so restrict to
        // the k = 0 orbital.
        let mut p = params(10);
        p.n_orb = 1;
        p.n_occ = 1;
        let st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let j = current_density(&p, &st, 0.0);
        assert!(j.abs() < 1e-12, "ground-state current {j}");
    }

    #[test]
    fn plane_wave_current_is_k_density() {
        // A single orbital e^{ikz} carries current f·k/Ω per electron:
        // j = f·k/Ω (paramagnetic only).
        let mut p = params(12);
        p.n_orb = 1;
        p.n_occ = 1;
        let mut st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let l = p.mesh.nz as f64 * p.mesh.spacing;
        let k = core::f64::consts::TAU / l;
        let norm = 1.0 / p.mesh.volume().sqrt();
        for g in 0..p.mesh.len() {
            let (_, _, iz) = p.mesh.coords(g);
            st.psi[g] = Complex::cis(k * iz as f64 * p.mesh.spacing).scale(norm);
        }
        let j = current_density(&p, &st, 0.0);
        let expect = 2.0 * k / p.mesh.volume();
        assert!(
            (j - expect).abs() < 1e-4 * expect.abs(),
            "plane-wave current {j} vs {expect}"
        );
    }

    #[test]
    fn diamagnetic_term_scales_with_a() {
        let mut p = params(10);
        p.n_orb = 1;
        p.n_occ = 1;
        let st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let a = 0.25;
        let j = current_density(&p, &st, a);
        let expect = a * 2.0 / p.mesh.volume();
        assert!((j - expect).abs() < 1e-12, "{j} vs {expect}");
    }

    #[test]
    fn current_linear_in_occupation() {
        let p = params(10);
        let mut st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let j2 = current_density(&p, &st, 0.1);
        st.occ[0] = 1.0;
        st.occ[1] = 1.0;
        let j1 = current_density(&p, &st, 0.1);
        assert!((j2 - 2.0 * j1).abs() < 1e-12);
    }
}

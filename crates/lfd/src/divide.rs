//! The divide-and-conquer electronic solver — the "DC" in DCMESH.
//!
//! "The most unique characteristic of DCMESH is its implementation of a
//! globally-sparse and locally-dense electronic solver" (paper §II-C).
//! This module implements that structure:
//!
//! * the mesh is **divided** into non-overlapping core domains, each
//!   padded with a buffer region (the locally-dense part: every domain
//!   solves its own Kohn–Sham problem on its buffered subgrid, where the
//!   states are dense);
//! * the global solution is **conquered** by filling electrons into the
//!   union of all local spectra through a single global chemical
//!   potential, and assembling the density from each domain's *core*
//!   points only (a partition of unity — the globally-sparse part: no
//!   global dense object is ever formed);
//! * accuracy is controlled by one parameter, the **buffer width**:
//!   wider buffers capture more of each state's tail, converging to the
//!   global solve (verified by test).
//!
//! The computational win is the scaling the paper's §II-C claims: the
//! global iterative solve costs `O(N_grid · N_orb)` per H-application
//! with `N_orb ∝ N_grid`, i.e. quadratic; the DC solve is a sum of
//! fixed-size local problems, i.e. linear in system size (measured by
//! [`dc_operation_count`]).

use crate::eigensolve::{lowest_eigenpairs, EigenSolution};
use crate::mesh::Mesh3;

/// Configuration of the divide-and-conquer solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DcConfig {
    /// Domain grid: the mesh is split into `d × d × d` core regions.
    pub divisions: usize,
    /// Buffer width in grid points added on every side of a core.
    pub buffer: usize,
    /// Local Kohn–Sham states solved per domain.
    pub states_per_domain: usize,
    /// Subspace-iteration budget of each local solve.
    pub solver_iterations: usize,
}

/// One spatial domain: a core brick plus its buffered halo.
#[derive(Clone, Debug)]
pub struct Domain {
    /// Inclusive core start per axis (global coordinates).
    pub core_start: [usize; 3],
    /// Core extent per axis.
    pub core_size: [usize; 3],
    /// The buffered local mesh this domain solves on.
    pub sub_mesh: Mesh3,
    /// Global flat index of every local point (periodic wrap), local
    /// z-fastest order.
    pub global_index: Vec<usize>,
    /// True for local points belonging to this domain's core.
    pub is_core: Vec<bool>,
}

/// Decomposes a mesh into `divisions³` buffered domains. Panics if the
/// mesh does not divide evenly or buffers would self-overlap around the
/// torus.
pub fn decompose(mesh: &Mesh3, cfg: &DcConfig) -> Vec<Domain> {
    let d = cfg.divisions;
    assert!(d >= 1, "need at least one division");
    assert!(
        mesh.nx.is_multiple_of(d) && mesh.ny.is_multiple_of(d) && mesh.nz.is_multiple_of(d),
        "mesh {}x{}x{} not divisible into {d}^3 domains",
        mesh.nx,
        mesh.ny,
        mesh.nz
    );
    let core = [mesh.nx / d, mesh.ny / d, mesh.nz / d];
    for (axis, &c) in core.iter().enumerate() {
        let n_axis = [mesh.nx, mesh.ny, mesh.nz][axis];
        assert!(
            c + 2 * cfg.buffer <= n_axis,
            "buffer {} too wide for axis {axis} (core {c} of {n_axis})",
            cfg.buffer
        );
    }

    let mut domains = Vec::with_capacity(d * d * d);
    for bx in 0..d {
        for by in 0..d {
            for bz in 0..d {
                let core_start = [bx * core[0], by * core[1], bz * core[2]];
                let ext = [
                    core[0] + 2 * cfg.buffer,
                    core[1] + 2 * cfg.buffer,
                    core[2] + 2 * cfg.buffer,
                ];
                let sub_mesh = Mesh3 { nx: ext[0], ny: ext[1], nz: ext[2], spacing: mesh.spacing };
                let mut global_index = Vec::with_capacity(sub_mesh.len());
                let mut is_core = Vec::with_capacity(sub_mesh.len());
                for lx in 0..ext[0] {
                    let gx = Mesh3::wrap(core_start[0], lx as isize - cfg.buffer as isize, mesh.nx);
                    for ly in 0..ext[1] {
                        let gy =
                            Mesh3::wrap(core_start[1], ly as isize - cfg.buffer as isize, mesh.ny);
                        for lz in 0..ext[2] {
                            let gz = Mesh3::wrap(
                                core_start[2],
                                lz as isize - cfg.buffer as isize,
                                mesh.nz,
                            );
                            global_index.push(mesh.index(gx, gy, gz));
                            let in_core = |l: usize, c: usize| {
                                l >= cfg.buffer && l < cfg.buffer + c
                            };
                            is_core.push(
                                in_core(lx, core[0]) && in_core(ly, core[1]) && in_core(lz, core[2]),
                            );
                        }
                    }
                }
                domains.push(Domain {
                    core_start,
                    core_size: core,
                    sub_mesh,
                    global_index,
                    is_core,
                });
            }
        }
    }
    domains
}

/// The assembled divide-and-conquer ground state.
#[derive(Clone, Debug)]
pub struct DcSolution {
    /// Per-domain local solutions.
    pub local: Vec<EigenSolution>,
    /// Global chemical potential (Fermi level) in Hartree.
    pub fermi: f64,
    /// Band energy `2·Σ_occ ε` (Hartree).
    pub band_energy: f64,
    /// Electron density on the global mesh, assembled from domain cores.
    pub density: Vec<f64>,
    /// Electrons placed (== requested, up to spin degeneracy rounding).
    pub electrons: f64,
}

/// Solves the ground state by divide and conquer.
///
/// Each domain diagonalises `H` restricted to its buffered subgrid
/// (periodic local box — the buffer, not the boundary condition, is the
/// accuracy control), electrons fill the merged spectrum two-per-state
/// through a global Fermi level, and the density is assembled from core
/// points with each domain's states renormalised over its core.
pub fn dc_ground_state(
    mesh: &Mesh3,
    vloc: &[f64],
    n_electrons: usize,
    cfg: &DcConfig,
) -> DcSolution {
    assert_eq!(vloc.len(), mesh.len(), "potential size mismatch");
    assert!(n_electrons >= 2 && n_electrons.is_multiple_of(2), "closed shell only");
    let domains = decompose(mesh, cfg);
    let n_dom = domains.len();
    assert!(
        cfg.states_per_domain * n_dom * 2 >= n_electrons,
        "not enough local states ({} x {n_dom}) for {n_electrons} electrons",
        cfg.states_per_domain
    );

    // --- divide: locally dense solves ---
    let local: Vec<EigenSolution> = domains
        .iter()
        .map(|dom| {
            let v_sub: Vec<f64> =
                dom.global_index.iter().map(|&g| vloc[g]).collect();
            lowest_eigenpairs(
                &dom.sub_mesh,
                &v_sub,
                cfg.states_per_domain,
                cfg.solver_iterations,
                1e-10,
                None,
            )
        })
        .collect();

    // --- conquer: global chemical potential over the merged spectrum ---
    //
    // Buffered domains overlap, so the same physical state appears in
    // several local spectra. The standard DC cure (Yang's partition
    // weights): each local state carries capacity 2·p, where p is the
    // fraction of its norm living on the domain's *core*. Summed over
    // domains the p's of one physical state add to 1, so it is counted
    // exactly once. Electrons fill the weighted levels in energy order,
    // fractionally at the Fermi level.
    let dv = mesh.dv();
    let n = cfg.states_per_domain;
    let mut levels: Vec<(f64, usize, usize, f64)> = Vec::new(); // (ε, dom, state, p)
    for (di, sol) in local.iter().enumerate() {
        let dom = &domains[di];
        for si in 0..n {
            let core_norm: f64 = dom
                .is_core
                .iter()
                .enumerate()
                .filter(|(_, &c)| c)
                .map(|(l, _)| sol.states[l * n + si].norm_sqr())
                .sum::<f64>()
                * dv;
            levels.push((sol.eigenvalues[si], di, si, core_norm.clamp(0.0, 1.0)));
        }
    }
    levels.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));

    let mut remaining = n_electrons as f64;
    let mut occupations = vec![0.0f64; levels.len()];
    let mut fermi = levels.last().expect("states exist").0;
    for (idx, &(e, _, _, p)) in levels.iter().enumerate() {
        if remaining <= 0.0 {
            break;
        }
        let cap = 2.0 * p;
        let take = cap.min(remaining);
        occupations[idx] = take;
        remaining -= take;
        fermi = e;
    }
    assert!(
        remaining < 1e-9,
        "insufficient weighted capacity: {remaining} electrons unplaced          (increase states_per_domain)"
    );
    let band_energy: f64 = levels
        .iter()
        .zip(&occupations)
        .map(|(&(e, _, _, _), &o)| o * e)
        .sum();

    // --- assemble the density from core points only ---
    let mut density = vec![0.0f64; mesh.len()];
    for (&(_, di, si, p), &occ) in levels.iter().zip(&occupations) {
        if occ == 0.0 || p <= 0.0 {
            continue;
        }
        let dom = &domains[di];
        let sol = &local[di];
        // Scale so the state's core integral carries exactly `occ`
        // electrons.
        let w = occ / p;
        for (l, &g) in dom.global_index.iter().enumerate() {
            if dom.is_core[l] {
                density[g] += w * sol.states[l * n + si].norm_sqr();
            }
        }
    }
    let electrons: f64 = density.iter().sum::<f64>() * dv;

    DcSolution { local, fermi, band_energy, density, electrons }
}

/// H-application operation count of the DC solve vs the equivalent
/// global iterative solve (same iteration budget), in stencil-point
/// updates. The DC count is linear in system size at fixed domain size;
/// the global count is quadratic once `N_orb ∝ N_grid` — the paper's
/// scalability argument in one number.
pub fn dc_operation_count(mesh: &Mesh3, cfg: &DcConfig, global_states: usize) -> (f64, f64) {
    let domains = (cfg.divisions * cfg.divisions * cfg.divisions) as f64;
    let sub_points = {
        let c = mesh.nx / cfg.divisions + 2 * cfg.buffer;
        (c * c * c) as f64
    };
    let dc = domains
        * sub_points
        * cfg.states_per_domain as f64
        * cfg.solver_iterations as f64;
    let global = mesh.len() as f64 * global_states as f64 * cfg.solver_iterations as f64;
    (dc, global)
}

/// Helper used by tests and the example: a potential with one Gaussian
/// well centred in every DC core, producing states localised within
/// their buffered domains (the regime DC is built for).
pub fn well_per_domain_potential(mesh: &Mesh3, cfg: &DcConfig, depth: f64, sigma: f64) -> Vec<f64> {
    let d = cfg.divisions;
    let mut v = vec![0.0f64; mesh.len()];
    let centers: Vec<(f64, f64, f64)> = {
        let mut c = Vec::new();
        for bx in 0..d {
            for by in 0..d {
                for bz in 0..d {
                    c.push((
                        (bx as f64 + 0.5) * mesh.nx as f64 / d as f64,
                        (by as f64 + 0.5) * mesh.ny as f64 / d as f64,
                        (bz as f64 + 0.5) * mesh.nz as f64 / d as f64,
                    ));
                }
            }
        }
        c
    };
    for (g, vg) in v.iter_mut().enumerate() {
        let (ix, iy, iz) = mesh.coords(g);
        let mut acc = 0.0;
        for &(cx, cy, cz) in &centers {
            let wrap = |a: f64, n: usize| {
                let mut d = a;
                let n = n as f64;
                d -= n * (d / n).round();
                d
            };
            let dx = wrap(ix as f64 - cx, mesh.nx) * mesh.spacing;
            let dy = wrap(iy as f64 - cy, mesh.ny) * mesh.spacing;
            let dz = wrap(iz as f64 - cz, mesh.nz) * mesh.spacing;
            let r2 = dx * dx + dy * dy + dz * dz;
            acc -= depth * (-r2 / (2.0 * sigma * sigma)).exp();
        }
        *vg = acc;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(divisions: usize, buffer: usize) -> DcConfig {
        DcConfig { divisions, buffer, states_per_domain: 2, solver_iterations: 150 }
    }

    #[test]
    fn decomposition_partitions_cores_exactly() {
        let mesh = Mesh3::cubic(12, 0.5);
        let domains = decompose(&mesh, &cfg(3, 2));
        assert_eq!(domains.len(), 27);
        // Every global point appears in exactly one core.
        let mut owner = vec![0u32; mesh.len()];
        for dom in &domains {
            for (l, &g) in dom.global_index.iter().enumerate() {
                if dom.is_core[l] {
                    owner[g] += 1;
                }
            }
        }
        assert!(owner.iter().all(|&c| c == 1), "core regions must partition the mesh");
    }

    #[test]
    fn buffered_subgrids_have_expected_size() {
        let mesh = Mesh3::cubic(12, 0.5);
        let domains = decompose(&mesh, &cfg(2, 3));
        for dom in &domains {
            assert_eq!(dom.sub_mesh.nx, 6 + 6);
            assert_eq!(dom.global_index.len(), dom.sub_mesh.len());
            let core_points = dom.is_core.iter().filter(|&&c| c).count();
            assert_eq!(core_points, 6 * 6 * 6);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn uneven_division_rejected() {
        decompose(&Mesh3::cubic(10, 0.5), &cfg(3, 1));
    }

    #[test]
    #[should_panic(expected = "buffer")]
    fn oversized_buffer_rejected() {
        decompose(&Mesh3::cubic(12, 0.5), &cfg(3, 5));
    }

    #[test]
    fn dc_matches_global_for_localised_states() {
        // Deep well in each domain core: states are localised, so DC with
        // a reasonable buffer must reproduce the global band energy.
        let mesh = Mesh3::cubic(12, 0.8);
        let c = DcConfig { divisions: 2, buffer: 2, states_per_domain: 2, solver_iterations: 250 };
        let vloc = well_per_domain_potential(&mesh, &c, 2.0, 1.2);
        let n_elec = 16; // 8 domains x 1 occupied state x 2 electrons
        let dc = dc_ground_state(&mesh, &vloc, n_elec, &c);

        let global = lowest_eigenpairs(&mesh, &vloc, n_elec / 2, 250, 1e-10, None);
        let global_band: f64 = global.eigenvalues.iter().map(|e| 2.0 * e).sum();

        let rel = (dc.band_energy - global_band).abs() / global_band.abs();
        assert!(
            rel < 0.05,
            "DC band energy {} vs global {global_band} (rel {rel})",
            dc.band_energy
        );
        // Electron count assembled exactly (core renormalisation).
        assert!((dc.electrons - n_elec as f64).abs() < 1e-9, "{}", dc.electrons);
        // Density non-negative everywhere.
        assert!(dc.density.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn partition_weight_accounting_is_exact() {
        // Invariants of the conquer step: every requested electron is
        // placed (density integral exact), no level is filled beyond its
        // weighted capacity, occupied levels never sit above unoccupied
        // ones, and total weighted capacity grows with the local state
        // count (the knob that removes spill in the large-buffer regime).
        let mesh = Mesh3::cubic(12, 0.8);
        let base = DcConfig { divisions: 2, buffer: 2, states_per_domain: 2, solver_iterations: 200 };
        let vloc = well_per_domain_potential(&mesh, &base, 2.0, 1.2);
        let n_elec = 16;

        let capacity = |states: usize| -> f64 {
            let c = DcConfig { states_per_domain: states, ..base };
            let dc = dc_ground_state(&mesh, &vloc, n_elec, &c);
            assert!((dc.electrons - n_elec as f64).abs() < 1e-9, "{}", dc.electrons);
            // Total weighted capacity from the local solutions.
            let domains = decompose(&mesh, &c);
            let dv = mesh.dv();
            let mut cap = 0.0;
            for (di, sol) in dc.local.iter().enumerate() {
                let dom = &domains[di];
                for si in 0..states {
                    let p: f64 = dom
                        .is_core
                        .iter()
                        .enumerate()
                        .filter(|(_, &cc)| cc)
                        .map(|(l, _)| sol.states[l * states + si].norm_sqr())
                        .sum::<f64>()
                        * dv;
                    cap += 2.0 * p;
                }
            }
            cap
        };
        let cap2 = capacity(2);
        let cap4 = capacity(4);
        assert!(cap2 >= n_elec as f64, "capacity {cap2} below electron count");
        assert!(cap4 > cap2, "capacity must grow with local states: {cap2} -> {cap4}");
    }

    #[test]
    fn fermi_level_separates_occupied() {
        let mesh = Mesh3::cubic(12, 0.8);
        let c = DcConfig { divisions: 2, buffer: 2, states_per_domain: 3, solver_iterations: 150 };
        let vloc = well_per_domain_potential(&mesh, &c, 2.0, 1.2);
        let dc = dc_ground_state(&mesh, &vloc, 16, &c);
        // Exactly 8 levels at or below the Fermi energy.
        let at_or_below: usize = dc
            .local
            .iter()
            .flat_map(|s| s.eigenvalues.iter())
            .filter(|&&e| e <= dc.fermi + 1e-12)
            .count();
        assert!(at_or_below >= 8, "Fermi level misplaced: {at_or_below} levels below");
    }

    #[test]
    fn dc_scaling_beats_global_for_large_systems() {
        // The §II-C argument: at fixed domain size, DC work grows linearly
        // with system size while the global solve grows quadratically
        // (N_orb tracks N_grid). Compare the crossover.
        let cfg_of = |divisions: usize| DcConfig {
            divisions,
            buffer: 2,
            states_per_domain: 4,
            solver_iterations: 100,
        };
        // Small system: 12^3, 2 divisions; large: 48^3, 8 divisions (same
        // per-domain size), electrons ∝ volume.
        let small_mesh = Mesh3::cubic(12, 0.5);
        let (dc_s, gl_s) = dc_operation_count(&small_mesh, &cfg_of(2), 32);
        let large_mesh = Mesh3::cubic(48, 0.5);
        let (dc_l, gl_l) = dc_operation_count(&large_mesh, &cfg_of(8), 32 * 64);
        // DC grows ~64x (linear in volume), global ~4096x.
        let dc_growth = dc_l / dc_s;
        let gl_growth = gl_l / gl_s;
        assert!((60.0..70.0).contains(&dc_growth), "DC growth {dc_growth}");
        assert!(gl_growth > 3000.0, "global growth {gl_growth}");
        assert!(dc_l < gl_l, "DC must win at scale");
    }
}

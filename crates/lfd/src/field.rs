//! The Maxwell side of Maxwell–Ehrenfest: the induced local field.
//!
//! DCMESH couples the electronic current back into the propagating
//! vector potential — that feedback is what makes it a *light–matter*
//! framework rather than a fixed-field TDDFT driver. In the long-
//! wavelength (dipole) limit the induced uniform field obeys
//!
//! ```text
//! d²A_ind/dt² = −4π·κ·j_avg(t)
//! ```
//!
//! with `κ` the coupling constant (`induced_coupling` in the parameters;
//! 0 disables feedback). A velocity-Verlet style leapfrog keeps the field
//! update symplectic alongside the electronic step.

use crate::state::{LfdParams, LfdState};
use dcmesh_numerics::Real;

/// Advances the induced field by one QD step given the current density
/// evaluated at the current time.
pub fn advance_induced_field<T: Real>(params: &LfdParams, state: &mut LfdState<T>, javg: f64) {
    let kappa = params.induced_coupling;
    if kappa == 0.0 {
        return;
    }
    let dt = params.dt;
    let accel = -4.0 * core::f64::consts::PI * kappa * javg;
    // Leapfrog: half-kick, drift, (next step's half-kick uses new j).
    state.a_induced_dot += accel * dt;
    state.a_induced += state.a_induced_dot * dt;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::LaserPulse;
    use crate::mesh::Mesh3;
    use crate::state::LfdState;

    fn params(kappa: f64) -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(9, 0.5),
            n_orb: 2,
            n_occ: 1,
            dt: 0.05,
            vnl_strength: 0.0,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: kappa,
        }
    }

    #[test]
    fn disabled_coupling_freezes_field() {
        let p = params(0.0);
        let mut st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        advance_induced_field(&p, &mut st, 123.0);
        assert_eq!(st.a_induced, 0.0);
        assert_eq!(st.a_induced_dot, 0.0);
    }

    #[test]
    fn constant_current_gives_quadratic_field() {
        let p = params(1.0);
        let mut st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let j = 0.01;
        let steps = 100;
        for _ in 0..steps {
            advance_induced_field(&p, &mut st, j);
        }
        let t = steps as f64 * p.dt;
        let expect = -0.5 * 4.0 * core::f64::consts::PI * j * t * t;
        // Leapfrog on constant acceleration is exact up to the half-step
        // offset (~1/steps relative).
        assert!(
            (st.a_induced - expect).abs() < 0.02 * expect.abs(),
            "{} vs {expect}",
            st.a_induced
        );
    }

    #[test]
    fn field_opposes_current() {
        let p = params(2.0);
        let mut st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        advance_induced_field(&p, &mut st, 1.0);
        assert!(st.a_induced < 0.0, "induced field must oppose the current (Lenz)");
    }
}

//! LFD parameters, state, and per-step observable records.

use crate::laser::LaserPulse;
use crate::mesh::Mesh3;
use dcmesh_numerics::{Complex, Real};

/// Static parameters of an LFD run.
#[derive(Clone, Debug)]
pub struct LfdParams {
    /// The finite-difference mesh (`N_grid = mesh.len()`).
    pub mesh: Mesh3,
    /// Number of Kohn–Sham orbitals propagated (`N_orb`).
    pub n_orb: usize,
    /// Number of initially occupied orbitals (`N_occ`; the paper's
    /// 40-atom system has 128).
    pub n_occ: usize,
    /// QD time step in a.u. (paper Table III: 0.02).
    pub dt: f64,
    /// Strength of the nonlocal pseudopotential correction (Hartree).
    pub vnl_strength: f64,
    /// Order of the Taylor propagator (4 in production).
    pub taylor_order: usize,
    /// The external laser pulse.
    pub laser: LaserPulse,
    /// Coupling of the induced (Maxwell) field to the average current;
    /// zero disables local-field feedback.
    pub induced_coupling: f64,
}

impl LfdParams {
    /// Consistency checks; call after construction.
    pub fn validate(&self) {
        assert!(self.n_orb > 0, "n_orb must be positive");
        assert!(self.n_occ <= self.n_orb, "n_occ {} > n_orb {}", self.n_occ, self.n_orb);
        assert!(self.n_orb <= self.mesh.len(), "more orbitals than grid points");
        assert!(self.dt > 0.0 && self.dt.is_finite(), "bad dt {}", self.dt);
        assert!(self.taylor_order >= 1 && self.taylor_order <= 8, "taylor order out of range");
        assert!(self.mesh.spacing > 0.0, "bad mesh spacing");
    }

    /// Electrons in the system (closed shell: 2 per occupied orbital).
    pub fn n_electrons(&self) -> f64 {
        2.0 * self.n_occ as f64
    }
}

/// The propagating state at element precision `T` (`f32` for the paper's
/// mixed-precision runs, `f64` for its FP64 baseline).
#[derive(Clone, Debug)]
pub struct LfdState<T: Real> {
    /// Wave-function matrix Ψ(t): row-major `N_grid × N_orb`.
    pub psi: Vec<Complex<T>>,
    /// Reference orbitals Ψ(0) used by the nonlocal correction and
    /// `remap_occ`; refreshed by each SCF update.
    pub psi0: Vec<Complex<T>>,
    /// Occupation numbers per orbital (2 for occupied, 0 for virtual).
    pub occ: Vec<T>,
    /// Kohn–Sham eigenvalues of the reference orbitals (Hartree), set by
    /// the SCF; used by the excitation-energy subspace transform.
    pub eps: Vec<f64>,
    /// Shadow-dynamics subspace coefficients (`n_orb × n_orb`), updated
    /// each QD step and consumed by QXMD's force extrapolation between
    /// SCF refreshes.
    pub shadow: Vec<Complex<T>>,
    /// Local potential on the mesh (Hartree).
    pub vloc: Vec<T>,
    /// Induced vector potential and its time derivative (Maxwell side).
    pub a_induced: f64,
    /// d(A_induced)/dt.
    pub a_induced_dot: f64,
    /// Simulation time in a.u.
    pub time: f64,
    /// QD steps taken.
    pub step: u64,
}

/// Per-QD-step output record — the columns DCMESH "prints to the wall"
/// (artifact A2: ekin, epot, etot, eexc, nexc, Aext, javg).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepObservables {
    /// QD step index.
    pub step: u64,
    /// Time in femtoseconds.
    pub time_fs: f64,
    /// Electronic kinetic energy (Hartree) — from `calc_energy`.
    pub ekin: f64,
    /// Local potential energy (Hartree).
    pub epot: f64,
    /// Total electronic energy (Hartree).
    pub etot: f64,
    /// Excitation energy relative to t = 0 (Hartree).
    pub eexc: f64,
    /// Number of excited electrons — from `remap_occ`.
    pub nexc: f64,
    /// External vector potential (a.u.).
    pub aext: f64,
    /// Average current density along z (a.u.).
    pub javg: f64,
}

impl<T: Real> LfdState<T> {
    /// Builds the initial state: orthonormal plane-wave orbitals (the
    /// lowest `n_orb` reciprocal-lattice modes — exact eigenstates of the
    /// kinetic operator, exactly orthonormal on the discrete mesh) over
    /// the supplied local potential. QXMD's SCF then relaxes these into
    /// Kohn–Sham eigenstates of the full Hamiltonian.
    pub fn initialize(params: &LfdParams, vloc: Vec<T>) -> LfdState<T> {
        params.validate();
        let ngrid = params.mesh.len();
        assert_eq!(vloc.len(), ngrid, "potential size mismatch");
        let n_orb = params.n_orb;

        let kvecs = lowest_k_modes(&params.mesh, n_orb);
        let norm = T::from_f64(1.0 / params.mesh.volume().sqrt());
        let mut psi = vec![Complex::<T>::zero(); ngrid * n_orb];
        let (nx, ny, nz) = (params.mesh.nx, params.mesh.ny, params.mesh.nz);
        for g in 0..ngrid {
            let (ix, iy, iz) = params.mesh.coords(g);
            for (o, &(kx, ky, kz)) in kvecs.iter().enumerate() {
                let phase = core::f64::consts::TAU
                    * (kx as f64 * ix as f64 / nx as f64
                        + ky as f64 * iy as f64 / ny as f64
                        + kz as f64 * iz as f64 / nz as f64);
                psi[g * n_orb + o] = Complex::cis(T::from_f64(phase)).scale(norm);
            }
        }

        let mut occ = vec![T::ZERO; n_orb];
        for f in occ.iter_mut().take(params.n_occ) {
            *f = T::from_f64(2.0);
        }

        // Reference eigenvalues: plane-wave kinetic energies ½|k|² until
        // the SCF replaces them with Kohn–Sham values.
        let two_pi = core::f64::consts::TAU;
        let (lx, ly, lz) = (
            nx as f64 * params.mesh.spacing,
            ny as f64 * params.mesh.spacing,
            nz as f64 * params.mesh.spacing,
        );
        let eps: Vec<f64> = kvecs
            .iter()
            .map(|&(kx, ky, kz)| {
                let k2 = (two_pi * kx as f64 / lx).powi(2)
                    + (two_pi * ky as f64 / ly).powi(2)
                    + (two_pi * kz as f64 / lz).powi(2);
                0.5 * k2
            })
            .collect();

        LfdState {
            psi0: psi.clone(),
            psi,
            occ,
            eps,
            shadow: vec![Complex::zero(); n_orb * n_orb],
            vloc,
            a_induced: 0.0,
            a_induced_dot: 0.0,
            time: 0.0,
            step: 0,
        }
    }

    /// Total vector potential seen by the electrons at time `t`.
    pub fn a_total(&self, params: &LfdParams, t: f64) -> f64 {
        params.laser.vector_potential(t) + self.a_induced
    }

    /// Sum of squared norms weighted by occupation: the electron count,
    /// conserved by exact propagation.
    pub fn electron_count(&self, params: &LfdParams) -> f64 {
        let n_orb = params.n_orb;
        let dv = params.mesh.dv();
        let mut total = 0.0f64;
        for o in 0..n_orb {
            let f = self.occ[o].to_f64();
            if f == 0.0 {
                continue;
            }
            let mut s = 0.0f64;
            for g in 0..params.mesh.len() {
                s += self.psi[g * n_orb + o].norm_sqr().to_f64();
            }
            total += f * s * dv;
        }
        total
    }

    /// Copies the current orbitals into the Ψ(0) reference (done by the
    /// SCF refresh).
    pub fn refresh_reference(&mut self) {
        self.psi0.copy_from_slice(&self.psi);
    }
}

/// Enumerates the `n` smallest |k|² integer reciprocal modes, ties broken
/// deterministically.
fn lowest_k_modes(mesh: &Mesh3, n: usize) -> Vec<(i32, i32, i32)> {
    let half = |len: usize| -> i32 { (len as i32) / 2 };
    let (hx, hy, hz) = (half(mesh.nx), half(mesh.ny), half(mesh.nz));
    let mut modes: Vec<(i64, (i32, i32, i32))> = Vec::new();
    for kx in -hx..=hx {
        for ky in -hy..=hy {
            for kz in -hz..=hz {
                let k2 = (kx as i64).pow(2) + (ky as i64).pow(2) + (kz as i64).pow(2);
                modes.push((k2, (kx, ky, kz)));
            }
        }
    }
    modes.sort_by_key(|&(k2, (a, b, c))| (k2, a, b, c));
    assert!(modes.len() >= n, "mesh too small for {n} orbitals");
    modes.truncate(n);
    modes.into_iter().map(|(_, k)| k).collect()
}

/// Convenience: a smooth model potential (sum of cosines) for tests and
/// standalone examples; QXMD supplies the physical ionic potential.
pub fn cosine_potential<T: Real>(mesh: &Mesh3, depth: f64) -> Vec<T> {
    let mut v = vec![T::ZERO; mesh.len()];
    for (g, val) in v.iter_mut().enumerate() {
        let (ix, iy, iz) = mesh.coords(g);
        let f = |i: usize, n: usize| (core::f64::consts::TAU * i as f64 / n as f64).cos();
        *val = T::from_f64(
            -depth * (f(ix, mesh.nx) + f(iy, mesh.ny) + f(iz, mesh.nz)) / 3.0,
        );
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(8, 0.6),
            n_orb: 10,
            n_occ: 4,
            dt: 0.02,
            vnl_strength: 0.05,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        }
    }

    #[test]
    fn initial_orbitals_orthonormal() {
        let p = small_params();
        let st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        let ngrid = p.mesh.len();
        let dv = p.mesh.dv();
        for a in 0..p.n_orb {
            for b in a..p.n_orb {
                let mut s = dcmesh_numerics::C64::zero();
                for g in 0..ngrid {
                    s += st.psi[g * p.n_orb + a].conj() * st.psi[g * p.n_orb + b];
                }
                let s = s.scale(dv);
                let want = if a == b { 1.0 } else { 0.0 };
                assert!(
                    (s.re - want).abs() < 1e-12 && s.im.abs() < 1e-12,
                    "<{a}|{b}> = {s:?}"
                );
            }
        }
    }

    #[test]
    fn electron_count_matches_occupations() {
        let p = small_params();
        let st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        assert!((st.electron_count(&p) - p.n_electrons()).abs() < 1e-10);
    }

    #[test]
    fn k_modes_distinct_and_sorted() {
        let mesh = Mesh3::cubic(8, 1.0);
        let modes = lowest_k_modes(&mesh, 27);
        let mut seen = std::collections::HashSet::new();
        for &m in &modes {
            assert!(seen.insert(m), "duplicate mode {m:?}");
        }
        // First mode is k = 0, lowest possible.
        assert_eq!(modes[0], (0, 0, 0));
    }

    #[test]
    fn f32_initialisation_close_to_f64() {
        let p = small_params();
        let s32 = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        let s64 = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        for (a, b) in s32.psi.iter().zip(&s64.psi) {
            assert!((a.re as f64 - b.re).abs() < 1e-6);
            assert!((a.im as f64 - b.im).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "n_occ")]
    fn invalid_occupation_rejected() {
        let mut p = small_params();
        p.n_occ = 11;
        p.validate();
    }

    #[test]
    fn a_total_combines_external_and_induced() {
        let mut p = small_params();
        p.laser = LaserPulse { amplitude: 0.3, omega: 0.5, duration: 100.0, phase: 0.0 };
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        st.a_induced = 0.01;
        let t = 20.0;
        assert!(
            (st.a_total(&p, t) - (p.laser.vector_potential(t) + 0.01)).abs() < 1e-15
        );
    }
}

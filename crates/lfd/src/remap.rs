//! `remap_occ`: remapping wave functions to occupation numbers.
//!
//! The number of excited electrons is the occupied-subspace weight that
//! has leaked into the initially *unoccupied* reference orbitals. By
//! unitarity this can be measured on the virtual block alone, which is
//! exactly the GEMM shape the paper reports in Table VII
//! (`m = N_occ = 128`, `n = N_orb − N_occ`, `k = N_grid`):
//!
//! ```text
//! R   = Φ_occ†(0) · Ψ_virt(t) · ΔV          (N_occ × N_virt × N_grid)
//! W   = R†·R                                 (subspace-sized)
//! nexc = Σ_a f̄ · W_aa
//! ```
//!
//! where `f̄` is the occupation carried per orbital (2 for a closed
//! shell). Both GEMMs run through `mkl-lite`, so `nexc` inherits the
//! active compute mode's rounding — the second observable of Figure 1.

use crate::nonlocal::LfdScalar;
use crate::policy::{CallSite, PrecisionPolicy};
use crate::state::{LfdParams, LfdState};
use dcmesh_numerics::{reduce, Complex};
use mkl_lite::Op;

/// The GEMM dimensions `(m, n, k)` of the remap projection for a given
/// system size — the row generator of paper Table VII.
pub fn remap_gemm_shape(n_grid: usize, n_orb: usize, n_occ: usize) -> (usize, usize, usize) {
    (n_occ, n_orb - n_occ, n_grid)
}

/// Computes the number of excited electrons.
pub fn remap_occ<T: LfdScalar>(params: &LfdParams, state: &LfdState<T>) -> f64 {
    remap_occ_with_policy(params, state, &PrecisionPolicy::Ambient)
}

/// [`remap_occ`] with a per-call-site [`PrecisionPolicy`].
pub fn remap_occ_with_policy<T: LfdScalar>(
    params: &LfdParams,
    state: &LfdState<T>,
    policy: &PrecisionPolicy,
) -> f64 {
    let n_orb = params.n_orb;
    let n_occ = params.n_occ;
    let n_virt = n_orb - n_occ;
    let ngrid = params.mesh.len();
    if n_virt == 0 {
        // No virtual space: nothing can be excited by construction.
        return 0.0;
    }

    // Strided views: Φ_occ(0) = first n_occ columns of Ψ(0), Ψ_virt(t) =
    // last n_virt columns of Ψ(t). Row-major layout makes both plain
    // leading-dimension tricks.
    let phi_occ0 = &state.psi0; // n_grid × n_occ with ld = n_orb
    let psi_virt = &state.psi[n_occ..]; // n_grid × n_virt with ld = n_orb

    // (1) R = Φ_occ†(0)·Ψ_virt(t)·ΔV — the Table VII call.
    let (m, n, k) = remap_gemm_shape(ngrid, n_orb, n_occ);
    let mut r = vec![Complex::<T>::zero(); m * n];
    policy.run(CallSite::RemapProjection, || T::gemm(
        Op::ConjTrans,
        Op::None,
        m,
        n,
        k,
        Complex::from_real(T::from_f64(params.mesh.dv())),
        phi_occ0,
        n_orb,
        psi_virt,
        n_orb,
        Complex::zero(),
        &mut r,
        n,
    ));

    // (2) W = R†·R (n_virt × n_virt × n_occ); diag gives per-virtual
    // excited weight.
    let mut w = vec![Complex::<T>::zero(); n * n];
    policy.run(CallSite::RemapWeights, || T::gemm(
        Op::ConjTrans,
        Op::None,
        n,
        n,
        m,
        Complex::one(),
        &r,
        n,
        &r,
        n,
        Complex::zero(),
        &mut w,
        n,
    ));

    let per_orbital_occ = 2.0;
    reduce::sum_with(n, |a| per_orbital_occ * w[a * n + a].re.to_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::LaserPulse;
    use crate::mesh::Mesh3;
    use crate::state::cosine_potential;
    use mkl_lite::{set_compute_mode, ComputeMode};

    fn params() -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(9, 0.6),
            n_orb: 8,
            n_occ: 3,
            dt: 0.02,
            vnl_strength: 0.2,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        }
    }

    #[test]
    fn table_vii_shapes() {
        // Paper Table VII, 40-atom system (N_grid = 64³ = 262144,
        // N_occ = 128).
        assert_eq!(remap_gemm_shape(262_144, 256, 128), (128, 128, 262_144));
        assert_eq!(remap_gemm_shape(262_144, 1024, 128), (128, 896, 262_144));
        assert_eq!(remap_gemm_shape(262_144, 2048, 128), (128, 1920, 262_144));
        // The paper quotes n = 3978 for N_orb = 4096 (a handful of
        // orbitals dropped in their run); the ideal shape is 3968.
        assert_eq!(remap_gemm_shape(262_144, 4096, 128), (128, 3968, 262_144));
    }

    #[test]
    fn zero_at_t0() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let nexc = remap_occ(&p, &st);
        assert!(nexc.abs() < 1e-12, "nexc at t=0 must vanish, got {nexc}");
    }

    #[test]
    fn full_swap_excites_all_electrons() {
        // Swap an occupied orbital into a virtual column: its 2 electrons'
        // worth of occupied-reference weight now sits in the virtual block.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let n_orb = p.n_orb;
        for g in 0..p.mesh.len() {
            let row = &mut st.psi[g * n_orb..(g + 1) * n_orb];
            row.swap(0, p.n_occ); // occupied column 0 <-> first virtual
        }
        let nexc = remap_occ(&p, &st);
        assert!((nexc - 2.0).abs() < 1e-10, "expected 2 excited electrons, got {nexc}");
    }

    #[test]
    fn partial_mixing_gives_fractional_nexc() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let n_orb = p.n_orb;
        // Rotate occupied 0 and virtual n_occ by angle θ.
        let theta = 0.3f64;
        let (c, s) = (theta.cos(), theta.sin());
        for g in 0..p.mesh.len() {
            let row = &mut st.psi[g * n_orb..(g + 1) * n_orb];
            let a = row[0];
            let b = row[p.n_occ];
            row[0] = a.scale(c) + b.scale(s);
            row[p.n_occ] = b.scale(c) - a.scale(s);
        }
        let nexc = remap_occ(&p, &st);
        let expect = 2.0 * s * s;
        assert!((nexc - expect).abs() < 1e-10, "nexc {nexc} vs {expect}");
    }

    #[test]
    fn nexc_bounded_by_electron_count() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let nexc = remap_occ(&p, &st);
        assert!(nexc >= -1e-12 && nexc <= p.n_electrons());
    }

    #[test]
    fn no_virtuals_means_no_excitation() {
        set_compute_mode(ComputeMode::Standard);
        let mut p = params();
        p.n_occ = p.n_orb;
        let st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        assert_eq!(remap_occ(&p, &st), 0.0);
    }

    #[test]
    fn mode_sensitivity() {
        let p = params();
        let v = cosine_potential::<f32>(&p.mesh, 0.1);
        let mut st = LfdState::<f32>::initialize(&p, v);
        // Mix some occupied weight into the virtual block so nexc != 0.
        let n_orb = p.n_orb;
        for g in 0..p.mesh.len() {
            let row = &mut st.psi[g * n_orb..(g + 1) * n_orb];
            let a = row[1];
            row[p.n_occ + 1] = row[p.n_occ + 1].scale(0.8) + a.scale(0.6);
        }
        let std = mkl_lite::with_compute_mode(ComputeMode::Standard, || remap_occ(&p, &st));
        let bf = mkl_lite::with_compute_mode(ComputeMode::FloatToBf16, || remap_occ(&p, &st));
        assert_ne!(std, bf, "nexc insensitive to compute mode");
        assert!((std - bf).abs() / std < 0.05, "BF16 nexc error too large");
    }
}

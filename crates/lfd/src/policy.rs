//! Per-call-site precision policies.
//!
//! The paper's study is limited to one compute mode per process, "because
//! the Intel MKL controls are environment variables affecting the library
//! as a whole ... The effects of running different BLAS calls at
//! different levels of precision is left to future work" (§IV-D). A
//! library-level mode control removes that limitation: this module names
//! the nine BLAS call sites of a QD step and lets each carry its own
//! compute mode. The `ext_mixed_precision` harness explores the design
//! space the paper could not.

use mkl_lite::{with_compute_mode, ComputeMode};

/// The nine BLAS call sites of one QD step, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum CallSite {
    /// `nlp_prop` projection `C = Ψ†(0)Ψ·ΔV` (grid-sized).
    NlpProject = 0,
    /// `nlp_prop` subspace phase `C ← D·C`.
    NlpPhase = 1,
    /// `nlp_prop` expansion `Ψ += Ψ(0)·C` (grid-sized).
    NlpExpand = 2,
    /// `calc_energy` kinetic subspace `M = Ψ†(TΨ)·ΔV` (grid-sized).
    EnergyKinetic = 3,
    /// `calc_energy` nonlocal subspace transform.
    EnergyNonlocal = 4,
    /// `calc_energy` excitation-energy subspace transform.
    EnergyEexc = 5,
    /// `remap_occ` projection (the Table VII GEMM).
    RemapProjection = 6,
    /// `remap_occ` weight matrix `W = R†R`.
    RemapWeights = 7,
    /// Shadow-dynamics update `S = C†C`.
    ShadowUpdate = 8,
}

/// Number of call sites.
pub const N_CALL_SITES: usize = 9;

impl CallSite {
    /// All sites in execution order.
    pub const ALL: [CallSite; N_CALL_SITES] = [
        CallSite::NlpProject,
        CallSite::NlpPhase,
        CallSite::NlpExpand,
        CallSite::EnergyKinetic,
        CallSite::EnergyNonlocal,
        CallSite::EnergyEexc,
        CallSite::RemapProjection,
        CallSite::RemapWeights,
        CallSite::ShadowUpdate,
    ];

    /// The sites that move the propagated state (errors here feed back
    /// into the trajectory); the rest only affect measured observables.
    pub fn affects_trajectory(self) -> bool {
        matches!(self, CallSite::NlpProject | CallSite::NlpPhase | CallSite::NlpExpand)
    }

    /// The grid-sized (expensive) sites; the others are subspace-sized.
    pub fn is_grid_sized(self) -> bool {
        matches!(
            self,
            CallSite::NlpProject
                | CallSite::NlpExpand
                | CallSite::EnergyKinetic
                | CallSite::RemapProjection
        )
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            CallSite::NlpProject => "nlp_project",
            CallSite::NlpPhase => "nlp_phase",
            CallSite::NlpExpand => "nlp_expand",
            CallSite::EnergyKinetic => "energy_kinetic",
            CallSite::EnergyNonlocal => "energy_nonlocal",
            CallSite::EnergyEexc => "energy_eexc",
            CallSite::RemapProjection => "remap_projection",
            CallSite::RemapWeights => "remap_weights",
            CallSite::ShadowUpdate => "shadow_update",
        }
    }
}

/// A precision policy: which compute mode each call site runs in.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum PrecisionPolicy {
    /// Use whatever mode is globally active (the paper's env-var
    /// behaviour — one mode for the whole process).
    #[default]
    Ambient,
    /// An explicit mode per call site.
    PerSite([ComputeMode; N_CALL_SITES]),
}

impl PrecisionPolicy {
    /// Every site at the same explicit mode.
    pub fn uniform(mode: ComputeMode) -> PrecisionPolicy {
        PrecisionPolicy::PerSite([mode; N_CALL_SITES])
    }

    /// The "fast propagation" policy: the accelerated mode on the
    /// trajectory-moving sites, FP32 on every measurement site, so the
    /// printed observables are computed at full single precision while
    /// the expensive propagation GEMMs take the speedup.
    pub fn fast_propagation(mode: ComputeMode) -> PrecisionPolicy {
        let mut sites = [ComputeMode::Standard; N_CALL_SITES];
        for s in CallSite::ALL {
            if s.affects_trajectory() {
                sites[s as usize] = mode;
            }
        }
        PrecisionPolicy::PerSite(sites)
    }

    /// The "safe observables" policy: accelerated everywhere except the
    /// three observable-producing subspace reductions.
    pub fn safe_observables(mode: ComputeMode) -> PrecisionPolicy {
        let mut sites = [mode; N_CALL_SITES];
        for s in [CallSite::EnergyKinetic, CallSite::RemapProjection, CallSite::RemapWeights] {
            sites[s as usize] = ComputeMode::Standard;
        }
        PrecisionPolicy::PerSite(sites)
    }

    /// Overrides one site, returning the modified policy (Ambient is
    /// first concretised at `Standard` for the remaining sites).
    pub fn with_site(self, site: CallSite, mode: ComputeMode) -> PrecisionPolicy {
        let mut sites = match self {
            PrecisionPolicy::Ambient => [ComputeMode::Standard; N_CALL_SITES],
            PrecisionPolicy::PerSite(s) => s,
        };
        sites[site as usize] = mode;
        PrecisionPolicy::PerSite(sites)
    }

    /// The mode a site will run in, or `None` for Ambient (decided at
    /// call time by the global configuration).
    pub fn mode_for(&self, site: CallSite) -> Option<ComputeMode> {
        match self {
            PrecisionPolicy::Ambient => None,
            PrecisionPolicy::PerSite(sites) => Some(sites[site as usize]),
        }
    }

    /// Runs `f` with the site's mode in effect.
    pub fn run<R>(&self, site: CallSite, f: impl FnOnce() -> R) -> R {
        match self.mode_for(site) {
            None => f(),
            Some(mode) => with_compute_mode(mode, f),
        }
    }

    /// Raises every site weaker than `floor` (by escalation rank) up to
    /// `floor`, used by the run supervisor when a policy-driven run
    /// diverges. `Ambient` becomes a uniform policy at `floor`, since
    /// the ambient mode is what just failed.
    pub fn escalate_to(&self, floor: ComputeMode) -> PrecisionPolicy {
        match self {
            PrecisionPolicy::Ambient => PrecisionPolicy::uniform(floor),
            PrecisionPolicy::PerSite(sites) => {
                let mut raised = *sites;
                for m in &mut raised {
                    if m.escalation_rank() < floor.escalation_rank() {
                        *m = floor;
                    }
                }
                PrecisionPolicy::PerSite(raised)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_defers_to_global_mode() {
        let p = PrecisionPolicy::Ambient;
        assert_eq!(p.mode_for(CallSite::NlpProject), None);
        mkl_lite::with_compute_mode(ComputeMode::FloatToTf32, || {
            let seen = p.run(CallSite::NlpProject, mkl_lite::compute_mode);
            assert_eq!(seen, ComputeMode::FloatToTf32);
        });
    }

    #[test]
    fn per_site_policy_overrides_global() {
        let p = PrecisionPolicy::uniform(ComputeMode::FloatToBf16);
        mkl_lite::with_compute_mode(ComputeMode::Standard, || {
            let seen = p.run(CallSite::EnergyKinetic, mkl_lite::compute_mode);
            assert_eq!(seen, ComputeMode::FloatToBf16);
        });
        // ... and restores afterwards.
        mkl_lite::set_compute_mode(ComputeMode::Standard);
        assert_eq!(mkl_lite::compute_mode(), ComputeMode::Standard);
    }

    #[test]
    fn fast_propagation_splits_sites() {
        let p = PrecisionPolicy::fast_propagation(ComputeMode::FloatToBf16);
        assert_eq!(p.mode_for(CallSite::NlpProject), Some(ComputeMode::FloatToBf16));
        assert_eq!(p.mode_for(CallSite::NlpExpand), Some(ComputeMode::FloatToBf16));
        assert_eq!(p.mode_for(CallSite::EnergyKinetic), Some(ComputeMode::Standard));
        assert_eq!(p.mode_for(CallSite::RemapProjection), Some(ComputeMode::Standard));
    }

    #[test]
    fn safe_observables_protects_measurements() {
        let p = PrecisionPolicy::safe_observables(ComputeMode::FloatToBf16);
        assert_eq!(p.mode_for(CallSite::NlpProject), Some(ComputeMode::FloatToBf16));
        assert_eq!(p.mode_for(CallSite::EnergyKinetic), Some(ComputeMode::Standard));
        assert_eq!(p.mode_for(CallSite::RemapWeights), Some(ComputeMode::Standard));
        assert_eq!(p.mode_for(CallSite::ShadowUpdate), Some(ComputeMode::FloatToBf16));
    }

    #[test]
    fn with_site_builder() {
        let p = PrecisionPolicy::Ambient
            .with_site(CallSite::NlpExpand, ComputeMode::FloatToTf32);
        assert_eq!(p.mode_for(CallSite::NlpExpand), Some(ComputeMode::FloatToTf32));
        assert_eq!(p.mode_for(CallSite::NlpProject), Some(ComputeMode::Standard));
    }

    #[test]
    fn escalate_to_raises_only_weaker_sites() {
        let p = PrecisionPolicy::fast_propagation(ComputeMode::FloatToBf16);
        let e = p.escalate_to(ComputeMode::FloatToBf16x3);
        // Weak trajectory sites raised to the floor...
        assert_eq!(e.mode_for(CallSite::NlpProject), Some(ComputeMode::FloatToBf16x3));
        // ...already-stronger measurement sites untouched.
        assert_eq!(e.mode_for(CallSite::EnergyKinetic), Some(ComputeMode::Standard));
        // Ambient concretises to a uniform policy at the floor.
        let a = PrecisionPolicy::Ambient.escalate_to(ComputeMode::FloatToTf32);
        assert_eq!(a, PrecisionPolicy::uniform(ComputeMode::FloatToTf32));
        // Escalating to Standard saturates everything.
        let s = p.escalate_to(ComputeMode::Standard);
        for site in CallSite::ALL {
            assert_eq!(s.mode_for(site), Some(ComputeMode::Standard));
        }
    }

    #[test]
    fn site_classification() {
        let grid: Vec<_> = CallSite::ALL.iter().filter(|s| s.is_grid_sized()).collect();
        assert_eq!(grid.len(), 4);
        let traj: Vec<_> = CallSite::ALL.iter().filter(|s| s.affects_trajectory()).collect();
        assert_eq!(traj.len(), 3);
        // Names unique.
        let mut names: Vec<_> = CallSite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_CALL_SITES);
    }
}

//! `dcmesh-lfd`: Local Field Dynamics — the GPU-resident half of DCMESH.
//!
//! LFD propagates the electronic wave functions under a laser field on a
//! finite-difference mesh ("for simple data parallelism", paper §IV-D).
//! The state is the complex `N_grid × N_orb` wave-function matrix Ψ; one
//! quantum-dynamical (QD) step applies
//!
//! 1. the **local** Hamiltonian — kinetic energy via a high-order FD
//!    Laplacian, local potential, and the velocity-gauge laser coupling
//!    `−i A·∇ + A²/2` — through a 4th-order Taylor propagator (mesh
//!    kernels, *not* BLAS);
//! 2. the **nonlocal correction**, which is not mesh-friendly and is
//!    therefore mapped into the Kohn–Sham subspace and executed as CGEMMs
//!    (paper Eq. 1): `Ψ(t) ← Ψ(t) + c·Ψ(0)(Ψ†(0)Ψ(t))` — [`nonlocal`];
//! 3. the BLASified observables: [`energy`] (`calc_energy`) and
//!    [`remap`] (`remap_occ`), plus the non-BLAS current density; and
//! 4. the Maxwell side: a uniform induced vector potential driven by the
//!    average current (the "local field" of Maxwell–Ehrenfest).
//!
//! Exactly **nine CGEMM calls** are issued per QD step, matching the
//! paper's artifact description ("Each QD step contains 9 BLAS calls"),
//! so an `MKL_VERBOSE` dump of this code has the same shape as one from
//! DCMESH itself. The same step structure is exported as a device-kernel
//! [`schedule`] so the `xe-gpu` model can price a QD step at paper scale
//! without executing it.
//!
//! All mesh numerics are generic over `f32`/`f64` ([`dcmesh_numerics::Real`]):
//! the paper's FP32 runs use the `f32` instantiation, its FP64 baseline
//! the `f64` one. The alternative BLAS compute modes act *only* inside
//! the three BLASified routines, exactly as in the paper.

pub mod divide;
pub mod eigensolve;
pub mod energy;
pub mod field;
pub mod hamiltonian;
pub mod laser;
pub mod mesh;
pub mod nonlocal;
pub mod observables;
pub mod policy;
pub mod propagator;
pub mod remap;
pub mod schedule;
pub mod state;

pub use laser::LaserPulse;
pub use mesh::Mesh3;
pub use policy::{CallSite, PrecisionPolicy};
pub use schedule::{qd_step_schedule, LfdPrecision};
pub use state::{LfdParams, LfdState, StepObservables};

//! The quantum-dynamical step.
//!
//! One QD step applies, in order:
//!
//! 1. the local Hamiltonian through a 4th-order Taylor expansion of
//!    `e^{−i·dt·H}` (four mesh-kernel applications of H — not BLAS);
//! 2. the nonlocal correction [`crate::nonlocal::nlp_prop`] (BLAS 1–3);
//! 3. [`crate::energy::calc_energy`] (BLAS 4–6, plus one kinetic sweep);
//! 4. [`crate::remap::remap_occ`] (BLAS 7–8);
//! 5. the shadow-dynamics subspace update (BLAS 9), whose coefficients
//!    QXMD consumes for force extrapolation between SCF refreshes;
//! 6. the current-density reduction and the induced-field leapfrog.
//!
//! Nine BLAS calls per QD step, exactly as the paper's artifact reports
//! for DCMESH.

use crate::energy::{calc_energy_with_policy, Energies};
use crate::field::advance_induced_field;
use crate::hamiltonian::apply_h;
use crate::laser::AU_PER_FS;
use crate::nonlocal::{nlp_prop_with_scratch, LfdScalar, NlpScratch};
use crate::observables::current_density;
use crate::policy::{CallSite, PrecisionPolicy};
use crate::remap::remap_occ_with_policy;
use crate::state::{LfdParams, LfdState, StepObservables};
use dcmesh_numerics::Complex;
use mkl_lite::Op;

/// Reusable buffers for one QD step: three state-sized arrays for the
/// Taylor propagator plus the subspace-sized [`NlpScratch`]. Holding all
/// of them here makes the QD step allocation-free in steady state — the
/// BLAS-internal scratch is pooled by `mkl-lite`'s thread-local
/// workspace, so between the two layers a 500-step burst touches the
/// allocator only while buffers first grow to the problem size.
#[derive(Clone, Debug, Default)]
pub struct QdScratch<T: dcmesh_numerics::Real> {
    term: Vec<Complex<T>>,
    h_out: Vec<Complex<T>>,
    acc: Vec<Complex<T>>,
    nlp: NlpScratch<T>,
}

impl<T: dcmesh_numerics::Real> QdScratch<T> {
    /// Allocates scratch for the given problem size.
    pub fn new(params: &LfdParams) -> Self {
        let len = params.mesh.len() * params.n_orb;
        QdScratch {
            term: vec![Complex::zero(); len],
            h_out: vec![Complex::zero(); len],
            acc: vec![Complex::zero(); len],
            nlp: NlpScratch::default(),
        }
    }
}

/// Applies the Taylor-expanded local propagator
/// `ψ ← Σ_{n=0}^{order} (−i·dt·H)ⁿ/n!·ψ` in place.
pub fn taylor_propagate<T: LfdScalar>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    a_total: f64,
    scratch: &mut QdScratch<T>,
) {
    let len = state.psi.len();
    scratch.term.resize(len, Complex::zero());
    scratch.h_out.resize(len, Complex::zero());
    scratch.acc.resize(len, Complex::zero());

    scratch.term.copy_from_slice(&state.psi);
    scratch.acc.copy_from_slice(&state.psi);
    for n in 1..=params.taylor_order {
        apply_h(
            &params.mesh,
            params.n_orb,
            &state.vloc,
            a_total,
            &scratch.term,
            &mut scratch.h_out,
        );
        // term ← (−i·dt/n)·H·term ; acc += term
        let c = T::from_f64(params.dt / n as f64);
        for (t, h) in scratch.term.iter_mut().zip(&scratch.h_out) {
            // −i·dt/n · h = (dt/n)·(h.im, −h.re)
            *t = Complex { re: h.im * c, im: -(h.re * c) };
        }
        for (a, t) in scratch.acc.iter_mut().zip(&scratch.term) {
            *a += *t;
        }
    }
    state.psi.copy_from_slice(&scratch.acc);
}

/// Shadow-dynamics subspace update (BLAS call 9): `S ← C†·C` where `C`
/// is the step's reference projection. QXMD extrapolates Ehrenfest
/// forces from `S` without pulling Ψ back to the host — the paper's
/// "CPU–GPU data transfers are minimized through the use of shadow
/// dynamics".
pub fn shadow_update<T: LfdScalar>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    projection: &[Complex<T>],
) {
    shadow_update_with_policy(params, state, projection, &PrecisionPolicy::Ambient)
}

/// [`shadow_update`] with a per-call-site [`PrecisionPolicy`].
pub fn shadow_update_with_policy<T: LfdScalar>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    projection: &[Complex<T>],
    policy: &PrecisionPolicy,
) {
    let n = params.n_orb;
    assert_eq!(projection.len(), n * n);
    state.shadow.resize(n * n, Complex::zero());
    policy.run(CallSite::ShadowUpdate, || T::gemm(
        Op::ConjTrans,
        Op::None,
        n,
        n,
        n,
        Complex::one(),
        projection,
        n,
        projection,
        n,
        Complex::zero(),
        &mut state.shadow,
        n,
    ));
}

/// Advances one full QD step and returns the step's observables.
pub fn qd_step<T: LfdScalar>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    scratch: &mut QdScratch<T>,
) -> StepObservables {
    qd_step_with_policy(params, state, scratch, &PrecisionPolicy::Ambient)
}

/// [`qd_step`] with a per-call-site [`PrecisionPolicy`]: every one of the
/// nine BLAS calls runs in the mode the policy assigns it — the mixed-
/// precision configuration space the paper leaves to future work.
pub fn qd_step_with_policy<T: LfdScalar>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    scratch: &mut QdScratch<T>,
    policy: &PrecisionPolicy,
) -> StepObservables {
    let _step_span = dcmesh_telemetry::span("qd_step")
        .attr("step", dcmesh_telemetry::AttrValue::U64(state.step + 1))
        .enter();
    let t_mid = state.time + 0.5 * params.dt;
    let a_mid = state.a_total(params, t_mid);

    // (1) Local propagation — mesh kernels only.
    {
        let _s = dcmesh_telemetry::span("qd_propagate").enter();
        let _p = dcmesh_telemetry::phase_scope("lfd::qd_propagate");
        taylor_propagate(params, state, a_mid, scratch);
    }

    // (2) Nonlocal correction — BLAS 1–3. The projection stays in the
    // scratch so steps (3) and (5) read it without a per-step allocation.
    {
        let _s = dcmesh_telemetry::span("qd_nonlocal").enter();
        let _p = dcmesh_telemetry::phase_scope("lfd::qd_nonlocal");
        nlp_prop_with_scratch(params, state, policy, &mut scratch.nlp);
    }

    // (3) Energies — BLAS 4–6 (+ one kinetic mesh sweep).
    let e: Energies = {
        let _s = dcmesh_telemetry::span("qd_energy").enter();
        let _p = dcmesh_telemetry::phase_scope("lfd::qd_energy");
        calc_energy_with_policy(params, state, &scratch.nlp.projection, &mut scratch.h_out, policy)
    };

    // (4) Occupation remap — BLAS 7–8.
    let nexc = {
        let _s = dcmesh_telemetry::span("qd_remap_occ").enter();
        let _p = dcmesh_telemetry::phase_scope("lfd::qd_remap_occ");
        remap_occ_with_policy(params, state, policy)
    };

    // (5) Shadow dynamics — BLAS 9.
    {
        let _s = dcmesh_telemetry::span("qd_shadow").enter();
        let _p = dcmesh_telemetry::phase_scope("lfd::qd_shadow");
        shadow_update_with_policy(params, state, &scratch.nlp.projection, policy);
    }

    // (6) Current density and the Maxwell feedback.
    let t_next = state.time + params.dt;
    let a_now = state.a_total(params, t_next);
    let javg = {
        let _s = dcmesh_telemetry::span("qd_field").enter();
        let _p = dcmesh_telemetry::phase_scope("lfd::qd_field");
        let javg = current_density(params, state, a_now);
        advance_induced_field(params, state, javg);
        javg
    };

    state.time = t_next;
    state.step += 1;

    StepObservables {
        step: state.step,
        time_fs: state.time / AU_PER_FS,
        ekin: e.ekin,
        epot: e.epot,
        etot: e.etot,
        eexc: e.eexc,
        nexc,
        aext: params.laser.vector_potential(state.time),
        javg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::LaserPulse;
    use crate::mesh::Mesh3;
    use crate::state::cosine_potential;
    use mkl_lite::{set_compute_mode, ComputeMode};

    fn params() -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(9, 0.6),
            n_orb: 6,
            n_occ: 3,
            dt: 0.02,
            vnl_strength: 0.1,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        }
    }

    #[test]
    fn norm_conserved_over_many_steps() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        let mut scratch = QdScratch::new(&p);
        for _ in 0..50 {
            qd_step(&p, &mut st, &mut scratch);
        }
        let n = st.electron_count(&p);
        assert!(
            (n - p.n_electrons()).abs() < 1e-6,
            "electron count drifted to {n} after 50 steps"
        );
    }

    #[test]
    fn field_free_stationary_state_conserves_energy() {
        // Without a laser, etot must be constant to propagator accuracy.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        let mut scratch = QdScratch::new(&p);
        let first = qd_step(&p, &mut st, &mut scratch);
        let mut last = first;
        for _ in 0..30 {
            last = qd_step(&p, &mut st, &mut scratch);
        }
        // Taylor-4 is not exactly unitary; per-step error ~ (dt·||H||)^5
        // accumulates to the 1e-5 scale over 30 steps at this dt.
        let drift = (last.etot - first.etot).abs() / (1.0 + first.etot.abs());
        assert!(drift < 3e-5, "energy drift {drift}");
    }

    #[test]
    fn laser_excites_electrons() {
        set_compute_mode(ComputeMode::Standard);
        let mut p = params();
        p.laser = LaserPulse { amplitude: 0.5, omega: 0.3, duration: 200.0, phase: 0.0 };
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.3));
        let mut scratch = QdScratch::new(&p);
        let mut nexc_end = 0.0;
        let mut ekin_start = 0.0;
        let mut ekin_end = 0.0;
        for i in 0..120 {
            let obs = qd_step(&p, &mut st, &mut scratch);
            if i == 0 {
                ekin_start = obs.ekin;
            }
            nexc_end = obs.nexc;
            ekin_end = obs.ekin;
        }
        assert!(nexc_end > 1e-4, "laser produced no excitation: nexc {nexc_end}");
        assert!(ekin_end > ekin_start, "laser did not heat the electrons");
    }

    #[test]
    fn no_laser_means_no_excitation() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, vec![0.0; p.mesh.len()]);
        let mut scratch = QdScratch::new(&p);
        let mut last = qd_step(&p, &mut st, &mut scratch);
        for _ in 0..20 {
            last = qd_step(&p, &mut st, &mut scratch);
        }
        // Plane waves are exact eigenstates of the free Hamiltonian;
        // without V or laser nothing moves between orbitals.
        assert!(last.nexc.abs() < 1e-9, "spurious excitation {}", last.nexc);
        assert!(last.eexc.abs() < 1e-9, "spurious excitation energy {}", last.eexc);
    }

    #[test]
    fn taylor_order_convergence() {
        // Higher Taylor order conserves energy better for the same dt.
        set_compute_mode(ComputeMode::Standard);
        let drift = |order: usize| -> f64 {
            let mut p = params();
            p.taylor_order = order;
            p.dt = 0.08; // exaggerate the integrator error
            let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.4));
            let mut scratch = QdScratch::new(&p);
            let first = qd_step(&p, &mut st, &mut scratch);
            let mut last = first;
            for _ in 0..20 {
                last = qd_step(&p, &mut st, &mut scratch);
            }
            (last.etot - first.etot).abs()
        };
        let d2 = drift(2);
        let d4 = drift(4);
        assert!(d4 < d2, "order 4 drift {d4} not below order 2 drift {d2}");
    }

    #[test]
    fn exactly_nine_blas_calls_per_qd_step() {
        // The artifact description: "Each QD step contains 9 BLAS calls".
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        let mut scratch = QdScratch::new(&p);
        qd_step(&p, &mut st, &mut scratch); // warm-up outside recording
        mkl_lite::verbose::clear();
        mkl_lite::verbose::set_recording(true);
        qd_step(&p, &mut st, &mut scratch);
        mkl_lite::verbose::set_recording(false);
        let calls = mkl_lite::verbose::drain();
        assert_eq!(calls.len(), 9, "expected 9 BLAS calls, got {}", calls.len());
        // All are complex GEMMs (ZGEMM for the f64 instantiation).
        for c in &calls {
            assert_eq!(c.routine, "ZGEMM");
        }
    }

    #[test]
    fn shadow_matrix_is_near_identity_early() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let mut scratch = QdScratch::new(&p);
        qd_step(&p, &mut st, &mut scratch);
        // S = C†C with C near-unitary, so S ≈ I.
        for i in 0..p.n_orb {
            for j in 0..p.n_orb {
                let want = if i == j { 1.0 } else { 0.0 };
                let got = st.shadow[i * p.n_orb + j];
                assert!(
                    (got.re - want).abs() < 1e-3 && got.im.abs() < 1e-3,
                    "S[{i},{j}] = {got:?}"
                );
            }
        }
    }
}

//! Iterative eigensolver for the mesh Hamiltonian.
//!
//! Dense diagonalisation of `H` is impossible at mesh scale (`N_grid²`
//! entries); production codes find the lowest Kohn–Sham states
//! iteratively using only `H·ψ` applications. This module implements
//! *Chebyshev-filtered subspace iteration* (CheFSI) with Rayleigh–Ritz
//! extraction:
//!
//! ```text
//! repeat:  X ← T_m(t(H))·X     (Chebyshev filter over the unwanted
//!                               interval [a, σ]; wanted states below a
//!                               are amplified ~cosh(m·acosh|t(λ)|))
//!          X ← orthonormalize(X)
//!          Rayleigh–Ritz: diagonalise X†HX, rotate X onto the Ritz basis
//! ```
//!
//! with `σ` an upper bound on the spectrum from Gershgorin's theorem and
//! the filter edge `a` tightened adaptively from the Ritz values.
//! Stencil-only and rapidly convergent — the right trade for the SCF
//! initialisation and for the divide-and-conquer local solvers in
//! [`crate::divide`].

use crate::hamiltonian::{apply_h, C2};
use crate::mesh::Mesh3;
use dcmesh_linalg::hermitian::eigh;
use dcmesh_linalg::orth::{lowdin_orthonormalize, modified_gram_schmidt};
use dcmesh_numerics::{c64, C64};
use dcmesh_telemetry::metrics;
use mkl_lite::{zgemm, Op};
use std::sync::{Arc, OnceLock};

/// Result of an eigensolve.
#[derive(Clone, Debug)]
pub struct EigenSolution {
    /// Ritz values, ascending (Hartree).
    pub eigenvalues: Vec<f64>,
    /// Ritz vectors: row-major `N_grid × n_states`, ⟨·|·⟩ΔV-orthonormal.
    pub states: Vec<C64>,
    /// Final subspace residual estimate `max_i |λ_i^{(k)} − λ_i^{(k−1)}|`.
    pub residual: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Gershgorin-style upper bound on the spectrum of `−½∇² + V`.
pub fn spectral_upper_bound(mesh: &Mesh3, vloc: &[f64]) -> f64 {
    let vmax = vloc.iter().cloned().fold(f64::MIN, f64::max).max(0.0);
    // |−½∇²| ≤ ½·(Σ|c|)·3/h²; Σ|C2| over all taps of one axis.
    let c_sum: f64 = C2[0].abs() + 2.0 * C2[1..].iter().map(|c| c.abs()).sum::<f64>();
    vmax + 0.5 * 3.0 * c_sum / (mesh.spacing * mesh.spacing)
}

/// Finds the `n_states` lowest eigenpairs of `H = −½∇² + V` on the
/// periodic mesh (A = 0), starting from the supplied guess (or plane
/// waves when `guess` is `None`).
///
/// `tol` is the eigenvalue-stagnation tolerance; iteration stops early
/// once the largest per-iteration Ritz-value change falls below it.
pub fn lowest_eigenpairs(
    mesh: &Mesh3,
    vloc: &[f64],
    n_states: usize,
    max_iterations: usize,
    tol: f64,
    guess: Option<Vec<C64>>,
) -> EigenSolution {
    let ngrid = mesh.len();
    assert_eq!(vloc.len(), ngrid, "potential size mismatch");
    assert!(n_states >= 1 && n_states <= ngrid, "bad state count");
    assert!(max_iterations >= 1);
    let mut _span = dcmesh_telemetry::span("eigensolve")
        .attr("ngrid", dcmesh_telemetry::AttrValue::U64(ngrid as u64))
        .attr("n_states", dcmesh_telemetry::AttrValue::U64(n_states as u64))
        .enter();
    let _phase = dcmesh_telemetry::phase_scope("lfd::eigensolve");

    let sqrt_dv = mesh.dv().sqrt();
    let mut x: Vec<C64> = match guess {
        Some(g) => {
            assert_eq!(g.len(), ngrid * n_states, "guess shape mismatch");
            g.iter().map(|z| z.scale(sqrt_dv)).collect()
        }
        None => plane_wave_guess(mesh, n_states)
            .iter()
            .map(|z| z.scale(sqrt_dv))
            .collect(),
    };
    orthonormalize_block(&mut x, ngrid, n_states);

    let sigma = spectral_upper_bound(mesh, vloc);
    let mut h_x = vec![C64::zero(); ngrid * n_states];
    let mut prev: Vec<f64> = vec![f64::INFINITY; n_states];
    let mut residual = f64::INFINITY;
    let mut iterations = 0;
    // Filter split point: everything below `a` is amplified. Starts
    // pessimistic and tightens to the Ritz estimates (CheFSI-style).
    let mut a = sigma * 0.5;

    for it in 1..=max_iterations {
        iterations = it;
        // Chebyshev filter step: amplifies the spectrum below `a`
        // exponentially in the polynomial degree, instead of the painfully
        // flat (σ−λ) ratio of a plain power step.
        chebyshev_filter(mesh, vloc, &mut x, &mut h_x, n_states, CHEB_DEGREE, a, sigma);
        orthonormalize_block(&mut x, ngrid, n_states);

        // Rayleigh–Ritz.
        apply_h(mesh, n_states, vloc, 0.0, &x, &mut h_x);
        let mut h_sub = vec![C64::zero(); n_states * n_states];
        zgemm(
            Op::ConjTrans,
            Op::None,
            n_states,
            n_states,
            ngrid,
            C64::one(),
            &x,
            n_states,
            &h_x,
            n_states,
            C64::zero(),
            &mut h_sub,
            n_states,
        );
        let eig = eigh(&h_sub, n_states);
        // Rotate X onto the Ritz vectors.
        let mut rotated = vec![C64::zero(); ngrid * n_states];
        zgemm(
            Op::None,
            Op::None,
            ngrid,
            n_states,
            n_states,
            C64::one(),
            &x,
            n_states,
            &eig.eigenvectors,
            n_states,
            C64::zero(),
            &mut rotated,
            n_states,
        );
        x = rotated;

        residual = eig
            .eigenvalues
            .iter()
            .zip(&prev)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        let lambda_max = *eig.eigenvalues.last().expect("nonempty spectrum");
        prev = eig.eigenvalues;
        // Tighten the filter edge just above the wanted window.
        a = lambda_max + 0.05 * (sigma - lambda_max).max(1e-6);
        if residual < tol {
            break;
        }
    }

    // Undo the √ΔV fold so states are ⟨·|·⟩ΔV-orthonormal.
    let inv = 1.0 / sqrt_dv;
    for z in &mut x {
        *z = z.scale(inv);
    }
    _span.end_attr("iterations", dcmesh_telemetry::AttrValue::U64(iterations as u64));
    _span.end_attr("residual", dcmesh_telemetry::AttrValue::F64(residual));
    EigenSolution { eigenvalues: prev, states: x, residual, iterations }
}

/// Times the Löwdin orthonormalisation of a CheFSI filter block found a
/// collapsed overlap and fell back to modified Gram–Schmidt. The
/// fallback is benign for convergence (the next filter pass repopulates
/// zeroed columns) but each occurrence is evidence of a rank-deficient
/// block, so it must be visible in run summaries instead of silently
/// swallowed.
pub fn lowdin_fallback_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        metrics::counter(
            "orth_lowdin_fallbacks_total",
            "eigensolver blocks whose Löwdin orthonormalisation collapsed and fell back to MGS",
        )
    })
}

/// Löwdin-orthonormalises the filter block, falling back to modified
/// Gram–Schmidt when the overlap matrix has collapsed. The Chebyshev
/// filter amplifies the wanted subspace so aggressively that a block can
/// go numerically rank-deficient mid-iteration; unlike the SCF refresh
/// (where a singular overlap is a health violation), here MGS simply
/// zeroes the dependent columns and the next filter pass repopulates them.
/// The discarded Löwdin error is recorded — counter plus telemetry
/// instant — so run summaries can surface how often it happened.
fn orthonormalize_block(x: &mut [C64], ngrid: usize, n_states: usize) {
    if let Err(e) = lowdin_orthonormalize(x, ngrid, n_states) {
        lowdin_fallback_counter().inc();
        dcmesh_telemetry::instant(
            "orth_lowdin_fallback",
            vec![dcmesh_telemetry::Attr {
                key: "error",
                value: dcmesh_telemetry::AttrValue::Text(e.to_string()),
            }],
        );
        modified_gram_schmidt(x, ngrid, n_states, 1e-14);
    }
}

/// Chebyshev polynomial degree per outer iteration.
const CHEB_DEGREE: usize = 12;

/// Applies the degree-`m` Chebyshev filter `T_m(t(H))` in place on the
/// block `x`, where `t` maps `[a, b]` to `[−1, 1]`: components with
/// eigenvalues below `a` grow like `cosh(m·acosh|t(λ)|)` while the
/// unwanted interval stays bounded by 1.
#[allow(clippy::too_many_arguments)]
fn chebyshev_filter(
    mesh: &Mesh3,
    vloc: &[f64],
    x: &mut Vec<C64>,
    h_x: &mut [C64],
    n_states: usize,
    degree: usize,
    a: f64,
    b: f64,
) {
    debug_assert!(a < b);
    let e = (b - a) / 2.0; // half-width
    let c = (b + a) / 2.0; // centre
    // T0 = x, T1 = (H − c)/e · x
    let mut t_prev = x.clone();
    apply_h(mesh, n_states, vloc, 0.0, x, h_x);
    let mut t_curr: Vec<C64> = x
        .iter()
        .zip(h_x.iter())
        .map(|(xv, hv)| (*hv - xv.scale(c)).scale(1.0 / e))
        .collect();
    for _ in 2..=degree {
        // T_{j+1} = 2(H − c)/e · T_j − T_{j−1}
        apply_h(mesh, n_states, vloc, 0.0, &t_curr, h_x);
        let t_next: Vec<C64> = t_curr
            .iter()
            .zip(h_x.iter())
            .zip(t_prev.iter())
            .map(|((tc, hv), tp)| (*hv - tc.scale(c)).scale(2.0 / e) - *tp)
            .collect();
        t_prev = t_curr;
        t_curr = t_next;
    }
    *x = t_curr;
}

/// Lowest-|k| plane waves as a starting block (grid-major `N_grid × n`,
/// ⟨·|·⟩ΔV-normalised).
fn plane_wave_guess(mesh: &Mesh3, n: usize) -> Vec<C64> {
    // Reuse the LfdState initialiser's mode enumeration through a tiny
    // local copy (keeps this module free of state-struct coupling).
    let half = |len: usize| -> i32 { (len as i32) / 2 };
    let mut modes: Vec<(i64, (i32, i32, i32))> = Vec::new();
    for kx in -half(mesh.nx)..=half(mesh.nx) {
        for ky in -half(mesh.ny)..=half(mesh.ny) {
            for kz in -half(mesh.nz)..=half(mesh.nz) {
                let k2 = (kx as i64).pow(2) + (ky as i64).pow(2) + (kz as i64).pow(2);
                modes.push((k2, (kx, ky, kz)));
            }
        }
    }
    modes.sort_by_key(|&(k2, t)| (k2, t));
    modes.truncate(n);

    let norm = 1.0 / mesh.volume().sqrt();
    let mut out = vec![C64::zero(); mesh.len() * n];
    for g in 0..mesh.len() {
        let (ix, iy, iz) = mesh.coords(g);
        for (o, &(_, (kx, ky, kz))) in modes.iter().enumerate() {
            let phase = core::f64::consts::TAU
                * (kx as f64 * ix as f64 / mesh.nx as f64
                    + ky as f64 * iy as f64 / mesh.ny as f64
                    + kz as f64 * iz as f64 / mesh.nz as f64);
            // Deterministic symmetry-breaking jitter: pure plane waves
            // carry exact lattice symmetries that the filter preserves,
            // which can lock the block out of entire symmetry sectors
            // (e.g. members of a degenerate well multiplet). A small
            // incoherent perturbation makes every sector reachable.
            let h = (g as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((o as u64).wrapping_mul(0xBF58476D1CE4E5B9));
            let jitter = c64(
                ((h >> 16) % 2048) as f64 / 2048.0 - 0.5,
                ((h >> 40) % 2048) as f64 / 2048.0 - 0.5,
            )
            .scale(0.02 * norm);
            out[g * n + o] = C64::cis(phase).scale(norm) + jitter;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::cosine_potential;

    #[test]
    fn free_particle_spectrum_exact() {
        // H = −½∇² on the periodic mesh: eigenvalues ½|k|² (to FD
        // truncation), with plane waves already exact eigenvectors.
        let mesh = Mesh3::cubic(10, 0.6);
        let vloc = vec![0.0f64; mesh.len()];
        let sol = lowest_eigenpairs(&mesh, &vloc, 4, 30, 1e-12, None);
        let l = 10.0 * 0.6;
        let k1 = core::f64::consts::TAU / l;
        assert!(sol.eigenvalues[0].abs() < 1e-10, "ground state not at 0");
        for i in 1..4 {
            assert!(
                (sol.eigenvalues[i] - 0.5 * k1 * k1).abs() < 1e-4,
                "state {i}: {} vs {}",
                sol.eigenvalues[i],
                0.5 * k1 * k1
            );
        }
    }

    #[test]
    fn converges_on_nontrivial_potential() {
        let mesh = Mesh3::cubic(9, 0.7);
        let vloc: Vec<f64> = cosine_potential(&mesh, 0.6);
        let sol = lowest_eigenpairs(&mesh, &vloc, 5, 400, 1e-11, None);
        assert!(sol.residual < 1e-10, "residual {}", sol.residual);
        // Sorted and bounded by the spectral bound.
        let sigma = spectral_upper_bound(&mesh, &vloc);
        for w in sol.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!(sol.eigenvalues.iter().all(|&e| e < sigma));
        // Potential lowers the ground state below zero kinetic floor.
        assert!(sol.eigenvalues[0] < 0.0, "well did not bind: {}", sol.eigenvalues[0]);
    }

    #[test]
    fn states_satisfy_eigen_equation() {
        let mesh = Mesh3::cubic(9, 0.7);
        let vloc: Vec<f64> = cosine_potential(&mesh, 0.5);
        let n = 3;
        let sol = lowest_eigenpairs(&mesh, &vloc, n, 500, 1e-12, None);
        let mut h_x = vec![C64::zero(); mesh.len() * n];
        apply_h(&mesh, n, &vloc, 0.0, &sol.states, &mut h_x);
        for s in 0..n {
            // ‖Hψ − λψ‖ / ‖ψ‖ small.
            let mut num = 0.0f64;
            let mut den = 0.0f64;
            for g in 0..mesh.len() {
                let r = h_x[g * n + s] - sol.states[g * n + s].scale(sol.eigenvalues[s]);
                num += r.norm_sqr();
                den += sol.states[g * n + s].norm_sqr();
            }
            let rel = (num / den).sqrt();
            assert!(rel < 1e-4, "state {s} residual {rel}");
        }
    }

    #[test]
    fn matches_variational_bound_with_more_iterations() {
        // More iterations can only lower (or hold) the Ritz values.
        let mesh = Mesh3::cubic(9, 0.7);
        let vloc: Vec<f64> = cosine_potential(&mesh, 0.5);
        let rough = lowest_eigenpairs(&mesh, &vloc, 3, 5, 0.0, None);
        let tight = lowest_eigenpairs(&mesh, &vloc, 3, 120, 0.0, None);
        for (a, b) in tight.eigenvalues.iter().zip(&rough.eigenvalues) {
            assert!(a <= &(b + 1e-9), "Ritz value rose: {a} vs {b}");
        }
    }

    #[test]
    fn warm_start_accepted() {
        let mesh = Mesh3::cubic(9, 0.7);
        let vloc: Vec<f64> = cosine_potential(&mesh, 0.5);
        let first = lowest_eigenpairs(&mesh, &vloc, 3, 150, 1e-11, None);
        let warm = lowest_eigenpairs(&mesh, &vloc, 3, 5, 1e-11, Some(first.states.clone()));
        for (a, b) in warm.eigenvalues.iter().zip(&first.eigenvalues) {
            assert!((a - b).abs() < 1e-8, "warm start drifted: {a} vs {b}");
        }
    }

    #[test]
    fn spectral_bound_dominates() {
        let mesh = Mesh3::cubic(9, 0.5);
        let vloc: Vec<f64> = (0..mesh.len()).map(|g| (g % 7) as f64 * 0.1).collect();
        let sigma = spectral_upper_bound(&mesh, &vloc);
        // Apply H to a random state and Rayleigh-quotient it: must be < σ.
        let psi: Vec<C64> = (0..mesh.len())
            .map(|g| c64(((g * 37 % 11) as f64) - 5.0, ((g * 17 % 7) as f64) - 3.0))
            .collect();
        let mut h = vec![C64::zero(); mesh.len()];
        apply_h(&mesh, 1, &vloc, 0.0, &psi, &mut h);
        let num: f64 = psi.iter().zip(&h).map(|(a, b)| (a.conj() * *b).re).sum();
        let den: f64 = psi.iter().map(|a| a.norm_sqr()).sum();
        assert!(num / den < sigma, "Rayleigh quotient exceeded Gershgorin bound");
    }
}

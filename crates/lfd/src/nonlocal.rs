//! `nlp_prop`: the BLASified nonlocal correction (paper Eq. 1).
//!
//! The nonlocal pseudopotential is awkward on the finite-difference mesh,
//! so DCMESH applies it in the vector space spanned by the Kohn–Sham
//! reference orbitals Ψ(0): with `P = Ψ(0)Ψ†(0)·ΔV` a projector
//! (Ψ(0) orthonormal), the propagator factor is exactly
//!
//! ```text
//! e^{−i·dt·v·P} = 1 + (e^{−i·dt·v} − 1)·P
//! ```
//!
//! which is Eq. 1's `Ψ(t) ← Ψ(t) + c·Ψ(0)(Ψ†(0)Ψ(t))` with the complex
//! scalar `c = e^{−i·dt·v} − 1`. Per-orbital strengths `v_i` generalise
//! `c` to a diagonal subspace matrix without changing the GEMM structure.
//!
//! Three BLAS calls implement it (all routed through `mkl-lite`, so the
//! active compute mode applies — this is where the precision study bites):
//!
//! 1. **project** — `C = Ψ†(0)·Ψ(t)·ΔV`  (`n_orb × n_orb × N_grid`)
//! 2. **phase**  — `C ← D·C`, `D = diag(e^{−i dt v_i} − 1)` (subspace-sized)
//! 3. **expand** — `Ψ(t) ← Ψ(t) + Ψ(0)·C`  (`N_grid × n_orb × n_orb`)

use crate::policy::{CallSite, PrecisionPolicy};
use crate::state::{LfdParams, LfdState};
use dcmesh_numerics::{Complex, Real};
use mkl_lite::Op;

/// GEMM dispatch for the two LFD element widths: `f32` state goes through
/// CGEMM (and therefore honours every alternative compute mode), `f64`
/// state through ZGEMM (3M only), exactly mirroring oneMKL's behaviour.
pub trait LfdScalar: Real {
    /// `C ← α·op(A)·op(B) + β·C` on row-major complex matrices.
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        transa: Op,
        transb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex<Self>,
        a: &[Complex<Self>],
        lda: usize,
        b: &[Complex<Self>],
        ldb: usize,
        beta: Complex<Self>,
        c: &mut [Complex<Self>],
        ldc: usize,
    );
}

impl LfdScalar for f32 {
    #[inline]
    fn gemm(
        transa: Op,
        transb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex<f32>,
        a: &[Complex<f32>],
        lda: usize,
        b: &[Complex<f32>],
        ldb: usize,
        beta: Complex<f32>,
        c: &mut [Complex<f32>],
        ldc: usize,
    ) {
        mkl_lite::cgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    }
}

impl LfdScalar for f64 {
    #[inline]
    fn gemm(
        transa: Op,
        transb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: Complex<f64>,
        a: &[Complex<f64>],
        lda: usize,
        b: &[Complex<f64>],
        ldb: usize,
        beta: Complex<f64>,
        c: &mut [Complex<f64>],
        ldc: usize,
    ) {
        mkl_lite::zgemm(transa, transb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    }
}

/// Reusable subspace buffers for [`nlp_prop_with_scratch`]: the
/// projection `C`, the diagonal phase matrix `D` and the product `D·C`,
/// all `n_orb × n_orb`. Small individually, but three fresh heap
/// allocations per QD step add up over a 500-step burst — the same
/// steady-state-allocation discipline the BLAS workspace pool enforces
/// one layer down.
#[derive(Clone, Debug, Default)]
pub struct NlpScratch<T: Real> {
    /// The step's projection `C = Ψ†(0)Ψ·ΔV` *before* the phase factor.
    /// Valid after [`nlp_prop_with_scratch`] returns; `calc_energy` and
    /// the shadow update consume it without re-projecting.
    pub projection: Vec<Complex<T>>,
    d: Vec<Complex<T>>,
    dc: Vec<Complex<T>>,
}

/// Applies the nonlocal correction for one QD step (in place on
/// `state.psi`). Returns the subspace projection matrix `C = Ψ†(0)Ψ·ΔV`
/// *before* the phase factor, which `calc_energy` reuses for the nonlocal
/// energy. Uses the globally active compute mode for all three calls.
pub fn nlp_prop<T: LfdScalar>(params: &LfdParams, state: &mut LfdState<T>) -> Vec<Complex<T>> {
    nlp_prop_with_policy(params, state, &PrecisionPolicy::Ambient)
}

/// [`nlp_prop`] with a per-call-site [`PrecisionPolicy`] — the mixed-
/// precision capability the paper defers to future work. Allocates fresh
/// subspace buffers; the run loop uses [`nlp_prop_with_scratch`].
pub fn nlp_prop_with_policy<T: LfdScalar>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    policy: &PrecisionPolicy,
) -> Vec<Complex<T>> {
    let mut scratch = NlpScratch::default();
    nlp_prop_with_scratch(params, state, policy, &mut scratch);
    scratch.projection
}

/// [`nlp_prop_with_policy`] writing into caller-owned [`NlpScratch`]:
/// zero heap allocation once the scratch has reached the problem size.
/// The projection lands in `scratch.projection` instead of a returned
/// `Vec`.
pub fn nlp_prop_with_scratch<T: LfdScalar>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    policy: &PrecisionPolicy,
    scratch: &mut NlpScratch<T>,
) {
    let n_orb = params.n_orb;
    let ngrid = params.mesh.len();
    let dv = Complex::from_real(T::from_f64(params.mesh.dv()));
    let sub = n_orb * n_orb;
    scratch.projection.resize(sub, Complex::zero());
    scratch.d.resize(sub, Complex::zero());
    scratch.dc.resize(sub, Complex::zero());

    // (1) project: C = Ψ†(0) Ψ(t) · ΔV (β = 0 overwrites stale contents).
    let c = &mut scratch.projection;
    policy.run(CallSite::NlpProject, || T::gemm(
        Op::ConjTrans,
        Op::None,
        n_orb,
        n_orb,
        ngrid,
        dv,
        &state.psi0,
        n_orb,
        &state.psi,
        n_orb,
        Complex::zero(),
        c,
        n_orb,
    ));

    // (2) phase: C ← D·C with D = diag(e^{−i dt v_i} − 1), done as a
    // subspace GEMM (DCMESH keeps this on the device as a BLAS call; the
    // diagonal matrix is materialised once per step).
    scratch.d.fill(Complex::zero());
    for i in 0..n_orb {
        let v_i = params.vnl_strength * projector_weight(i, n_orb);
        let phase = Complex::<T>::cis(T::from_f64(-params.dt * v_i)) - Complex::one();
        scratch.d[i * n_orb + i] = phase;
    }
    policy.run(CallSite::NlpPhase, || T::gemm(
        Op::None,
        Op::None,
        n_orb,
        n_orb,
        n_orb,
        Complex::one(),
        &scratch.d,
        n_orb,
        &scratch.projection,
        n_orb,
        Complex::zero(),
        &mut scratch.dc,
        n_orb,
    ));

    // (3) expand: Ψ ← Ψ + Ψ(0)·(D·C)
    policy.run(CallSite::NlpExpand, || T::gemm(
        Op::None,
        Op::None,
        ngrid,
        n_orb,
        n_orb,
        Complex::one(),
        &state.psi0,
        n_orb,
        &scratch.dc,
        n_orb,
        Complex::one(),
        &mut state.psi,
        n_orb,
    ));
}

/// Relative strength of the i-th reference projector. The lowest (most
/// core-like) orbitals couple hardest to the nonlocal pseudopotential;
/// the tail decays smoothly. Normalised so weight(0) = 1.
pub fn projector_weight(i: usize, n_orb: usize) -> f64 {
    let x = i as f64 / n_orb as f64;
    1.0 / (1.0 + 4.0 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::LaserPulse;
    use crate::mesh::Mesh3;
    use crate::state::cosine_potential;
    use mkl_lite::{set_compute_mode, ComputeMode};

    fn params() -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(9, 0.7),
            n_orb: 6,
            n_occ: 3,
            dt: 0.02,
            vnl_strength: 0.4,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        }
    }

    #[test]
    fn preserves_orthonormality() {
        // The correction is unitary (projector exponential), so the
        // orbital set must remain orthonormal.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        for _ in 0..25 {
            nlp_prop(&p, &mut st);
        }
        let n = st.electron_count(&p);
        assert!((n - p.n_electrons()).abs() < 1e-9, "electron count drifted: {n}");
    }

    #[test]
    fn identity_when_strength_zero() {
        set_compute_mode(ComputeMode::Standard);
        let mut p = params();
        p.vnl_strength = 0.0;
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let before = st.psi.clone();
        nlp_prop(&p, &mut st);
        for (a, b) in st.psi.iter().zip(&before) {
            assert!((*a - *b).abs() < 1e-13);
        }
    }

    #[test]
    fn projection_matrix_is_identity_at_t0() {
        // At t = 0, Ψ = Ψ(0), so C = Ψ†(0)Ψ(0)ΔV = I.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let c = nlp_prop(&p, &mut st);
        for i in 0..p.n_orb {
            for j in 0..p.n_orb {
                let want = if i == j { 1.0 } else { 0.0 };
                let got = c[i * p.n_orb + j];
                assert!(
                    (got.re - want).abs() < 1e-10 && got.im.abs() < 1e-10,
                    "C[{i},{j}] = {got:?}"
                );
            }
        }
    }

    #[test]
    fn matches_direct_projector_exponential() {
        // For a state inside the reference span, nlp_prop must multiply
        // each reference component by e^{-i dt v_i}.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        nlp_prop(&p, &mut st);
        // Ψ started equal to Ψ0, so column i must now be e^{-i dt v_i} φ_i.
        for o in 0..p.n_orb {
            let v = p.vnl_strength * projector_weight(o, p.n_orb);
            let expect = dcmesh_numerics::C64::cis(-p.dt * v);
            for g in (0..p.mesh.len()).step_by(53) {
                let got = st.psi[g * p.n_orb + o];
                let reference = st.psi0[g * p.n_orb + o] * expect;
                assert!((got - reference).abs() < 1e-10, "orb {o}, g {g}");
            }
        }
    }

    #[test]
    fn f32_bf16_mode_perturbs_but_preserves_norm_scale() {
        let p = params();
        let v = cosine_potential::<f32>(&p.mesh, 0.1);
        let mut st_std = LfdState::<f32>::initialize(&p, v.clone());
        let mut st_bf = LfdState::<f32>::initialize(&p, v);
        mkl_lite::with_compute_mode(ComputeMode::Standard, || {
            nlp_prop(&p, &mut st_std);
        });
        mkl_lite::with_compute_mode(ComputeMode::FloatToBf16, || {
            nlp_prop(&p, &mut st_bf);
        });
        let mut max_d = 0.0f64;
        for (a, b) in st_std.psi.iter().zip(&st_bf.psi) {
            max_d = max_d.max((a.to_c64() - b.to_c64()).abs());
        }
        assert!(max_d > 0.0, "BF16 mode produced identical results — mode not applied?");
        assert!(max_d < 1e-2, "BF16 deviation implausibly large: {max_d}");
        let n = st_bf.electron_count(&p);
        assert!((n - p.n_electrons()).abs() < 1e-2, "norm broke: {n}");
    }

    #[test]
    fn projector_weights_decay() {
        assert_eq!(projector_weight(0, 100), 1.0);
        for i in 1..100 {
            assert!(projector_weight(i, 100) < projector_weight(i - 1, 100));
        }
        assert!(projector_weight(99, 100) > 0.1);
    }
}

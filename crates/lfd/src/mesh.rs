//! The periodic 3-D finite-difference mesh.

/// A periodic Cartesian mesh with uniform spacing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mesh3 {
    /// Points along x.
    pub nx: usize,
    /// Points along y.
    pub ny: usize,
    /// Points along z.
    pub nz: usize,
    /// Grid spacing in bohr.
    pub spacing: f64,
}

impl Mesh3 {
    /// A cubic mesh (the paper's 64³ and 96³ grids).
    pub fn cubic(n: usize, spacing: f64) -> Mesh3 {
        Mesh3 { nx: n, ny: n, nz: n, spacing }
    }

    /// Total number of grid points (the paper's `N_grid`).
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True if the mesh has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Volume element `h³` in bohr³.
    pub fn dv(&self) -> f64 {
        self.spacing * self.spacing * self.spacing
    }

    /// Cell volume.
    pub fn volume(&self) -> f64 {
        self.dv() * self.len() as f64
    }

    /// Flat index of `(ix, iy, iz)`; z is the fastest-varying axis.
    #[inline]
    pub fn index(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny && iz < self.nz);
        (ix * self.ny + iy) * self.nz + iz
    }

    /// Coordinates of a flat index.
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let iz = idx % self.nz;
        let iy = (idx / self.nz) % self.ny;
        let ix = idx / (self.nz * self.ny);
        (ix, iy, iz)
    }

    /// Periodic wrap of a signed offset along an axis of length `n`.
    #[inline]
    pub fn wrap(i: usize, off: isize, n: usize) -> usize {
        let m = n as isize;
        (((i as isize + off) % m + m) % m) as usize
    }

    /// Physical position of a grid point (cell corner at the origin).
    pub fn position(&self, idx: usize) -> (f64, f64, f64) {
        let (ix, iy, iz) = self.coords(idx);
        (ix as f64 * self.spacing, iy as f64 * self.spacing, iz as f64 * self.spacing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_coords_roundtrip() {
        let m = Mesh3 { nx: 3, ny: 4, nz: 5, spacing: 0.5 };
        for idx in 0..m.len() {
            let (x, y, z) = m.coords(idx);
            assert_eq!(m.index(x, y, z), idx);
        }
    }

    #[test]
    fn z_is_fastest_axis() {
        let m = Mesh3::cubic(4, 1.0);
        assert_eq!(m.index(0, 0, 1) - m.index(0, 0, 0), 1);
        assert_eq!(m.index(0, 1, 0) - m.index(0, 0, 0), 4);
        assert_eq!(m.index(1, 0, 0) - m.index(0, 0, 0), 16);
    }

    #[test]
    fn wrap_is_periodic() {
        assert_eq!(Mesh3::wrap(0, -1, 8), 7);
        assert_eq!(Mesh3::wrap(7, 1, 8), 0);
        assert_eq!(Mesh3::wrap(3, -11, 8), 0);
        assert_eq!(Mesh3::wrap(3, 16, 8), 3);
    }

    #[test]
    fn paper_grid_sizes() {
        // Table V: 64^3 for 40 atoms, 96^3 for 135 atoms.
        assert_eq!(Mesh3::cubic(64, 0.25).len(), 262_144);
        assert_eq!(Mesh3::cubic(96, 0.25).len(), 884_736);
    }

    #[test]
    fn volume_scales_with_spacing() {
        let m = Mesh3::cubic(10, 0.5);
        assert!((m.volume() - 1000.0 * 0.125).abs() < 1e-12);
    }
}

//! The device-kernel schedule of one QD step.
//!
//! This module is the single source of truth connecting the numerical
//! propagator to the `xe-gpu` performance model: it enumerates, for a
//! given system size and precision, exactly the kernels
//! [`crate::propagator::qd_step`] launches — five stencil sweeps (four
//! Taylor applications of H plus the kinetic sweep of `calc_energy`), the
//! current/potential reductions, and the nine BLAS calls. The Figure 3a
//! harness prices this schedule at the paper's full 40/135-atom sizes
//! without executing the arithmetic; the accuracy runner executes the same
//! structure numerically at reduced size.

use crate::state::LfdParams;
use mkl_lite::device::{Domain, GemmDesc};
use mkl_lite::ComputeMode;
use xe_gpu::kernels::{KernelDesc, StreamKernel, STENCIL_BW_EFF};

/// Precision configuration of an LFD run, as in the paper's sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LfdPrecision {
    /// Everything at FP64 (the paper's `LFD_ENABLE_MIXED_PRECISION=OFF`
    /// build).
    Fp64,
    /// State at FP32, BLAS calls in the given compute mode (`Standard`
    /// reproduces the paper's FP32 baseline).
    Fp32(ComputeMode),
}

impl LfdPrecision {
    /// Bytes per complex state element.
    pub fn element_bytes(self) -> f64 {
        match self {
            LfdPrecision::Fp64 => 16.0,
            LfdPrecision::Fp32(_) => 8.0,
        }
    }

    /// GEMM element domain.
    pub fn domain(self) -> Domain {
        match self {
            LfdPrecision::Fp64 => Domain::Complex64,
            LfdPrecision::Fp32(_) => Domain::Complex32,
        }
    }

    /// Effective compute mode of the BLAS calls.
    pub fn mode(self) -> ComputeMode {
        match self {
            LfdPrecision::Fp64 => ComputeMode::Standard,
            LfdPrecision::Fp32(m) => m,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            LfdPrecision::Fp64 => "FP64",
            LfdPrecision::Fp32(m) => m.label(),
        }
    }

    /// The seven configurations of Figure 3a, in the paper's order.
    pub fn figure3a_set() -> [LfdPrecision; 7] {
        [
            LfdPrecision::Fp64,
            LfdPrecision::Fp32(ComputeMode::Standard),
            LfdPrecision::Fp32(ComputeMode::FloatToBf16),
            LfdPrecision::Fp32(ComputeMode::FloatToBf16x2),
            LfdPrecision::Fp32(ComputeMode::FloatToBf16x3),
            LfdPrecision::Fp32(ComputeMode::FloatToTf32),
            LfdPrecision::Fp32(ComputeMode::Complex3m),
        ]
    }
}

/// System dimensions relevant to the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystemShape {
    /// Grid points (`N_grid`).
    pub n_grid: usize,
    /// Orbitals (`N_orb`).
    pub n_orb: usize,
    /// Occupied orbitals (`N_occ`).
    pub n_occ: usize,
}

impl SystemShape {
    /// Extracts the shape from run parameters.
    pub fn of(params: &LfdParams) -> SystemShape {
        SystemShape { n_grid: params.mesh.len(), n_orb: params.n_orb, n_occ: params.n_occ }
    }

    /// The paper's 40-atom lead-titanate system (Table V).
    pub fn pto40() -> SystemShape {
        SystemShape { n_grid: 64 * 64 * 64, n_orb: 256, n_occ: 128 }
    }

    /// The paper's 135-atom lead-titanate system (Table V).
    pub fn pto135() -> SystemShape {
        SystemShape { n_grid: 96 * 96 * 96, n_orb: 1024, n_occ: 432 }
    }
}

/// Effective HBM passes of one high-order stencil sweep over the state:
/// the ±4 x-taps reach across planes larger than L2, so the read side
/// streams ~7 effective passes, plus the accumulate read and the write.
const STENCIL_PASSES: f64 = 9.0;

/// Occupancy derating for small problems: a sweep over `w` state elements
/// only saturates the stack's bandwidth once `w` comfortably exceeds the
/// thread capacity.
fn occupancy(w: f64) -> f64 {
    w / (w + 3.0e7)
}

/// Builds the device-kernel schedule of one QD step.
pub fn qd_step_schedule(shape: SystemShape, precision: LfdPrecision) -> Vec<KernelDesc> {
    qd_step_schedule_with_policy(shape, precision, &crate::policy::PrecisionPolicy::Ambient)
}

/// [`qd_step_schedule`] with a per-call-site [`crate::policy::PrecisionPolicy`]:
/// each of the nine GEMMs gets the mode its site is assigned, so mixed-
/// precision configurations can be priced at paper scale.
pub fn qd_step_schedule_with_policy(
    shape: SystemShape,
    precision: LfdPrecision,
    policy: &crate::policy::PrecisionPolicy,
) -> Vec<KernelDesc> {
    let SystemShape { n_grid, n_orb, n_occ } = shape;
    let w = (n_grid * n_orb) as f64; // complex state elements
    let eb = precision.element_bytes();
    let fp64 = matches!(precision, LfdPrecision::Fp64);
    let occ_f = occupancy(w);
    let domain = precision.domain();
    let mode = precision.mode();

    let stencil = |name: &'static str, flops_per_elem: f64| {
        let mut k = StreamKernel::stencil(name, w, eb, STENCIL_PASSES, flops_per_elem, fp64);
        k.bandwidth_efficiency = STENCIL_BW_EFF * occ_f;
        KernelDesc::Stream(k)
    };
    let pointwise = |name: &'static str, passes: f64, flops_per_elem: f64| {
        let mut k = StreamKernel::pointwise(name, w, eb, passes, flops_per_elem, fp64);
        k.bandwidth_efficiency *= occ_f;
        KernelDesc::Stream(k)
    };
    let site_mode = |site: crate::policy::CallSite| match precision {
        // An FP64 build runs everything at FP64 regardless of policy.
        LfdPrecision::Fp64 => ComputeMode::Standard,
        LfdPrecision::Fp32(_) => policy.mode_for(site).unwrap_or(mode),
    };
    let gemm = |name: &'static str, site: crate::policy::CallSite, m: usize, n: usize, k: usize| {
        KernelDesc::Gemm(name, GemmDesc { domain, m, n, k, mode: site_mode(site) })
    };

    let n_virt = n_orb - n_occ;
    vec![
        // Local propagation: 4 Taylor applications of H.
        stencil("taylor_h_apply_1", 180.0),
        stencil("taylor_h_apply_2", 180.0),
        stencil("taylor_h_apply_3", 180.0),
        stencil("taylor_h_apply_4", 180.0),
        // Nonlocal correction (nlp_prop): BLAS 1-3.
        gemm("nlp_project", crate::policy::CallSite::NlpProject, n_orb, n_orb, n_grid),
        gemm("nlp_phase", crate::policy::CallSite::NlpPhase, n_orb, n_orb, n_orb),
        gemm("nlp_expand", crate::policy::CallSite::NlpExpand, n_grid, n_orb, n_orb),
        // calc_energy: kinetic sweep + BLAS 4-6 + potential reduction.
        stencil("energy_kinetic_apply", 150.0),
        gemm("energy_kinetic_subspace", crate::policy::CallSite::EnergyKinetic, n_orb, n_orb, n_grid),
        gemm("energy_nonlocal_subspace", crate::policy::CallSite::EnergyNonlocal, n_orb, n_orb, n_orb),
        gemm("energy_eexc_subspace", crate::policy::CallSite::EnergyEexc, n_orb, n_orb, n_orb),
        pointwise("energy_potential_reduce", 1.25, 10.0),
        // remap_occ: BLAS 7-8.
        gemm("remap_projection", crate::policy::CallSite::RemapProjection, n_occ, n_virt.max(1), n_grid),
        gemm("remap_weights", crate::policy::CallSite::RemapWeights, n_virt.max(1), n_virt.max(1), n_occ),
        // Shadow dynamics: BLAS 9.
        gemm("shadow_update", crate::policy::CallSite::ShadowUpdate, n_orb, n_orb, n_orb),
        // Current density + induced-field update.
        stencil("current_density", 40.0),
        pointwise("field_update", 0.01, 4.0),
    ]
}

/// Prices one QD step with the given device model, returning total
/// seconds (also recording each kernel into `tracer` when provided).
pub fn price_qd_step(
    model: &xe_gpu::XeStackModel,
    schedule: &[KernelDesc],
    tracer: Option<&xe_gpu::Tracer>,
) -> f64 {
    let mut total = 0.0;
    for k in schedule {
        let t = match k {
            KernelDesc::Gemm(_, desc) => model.gemm_seconds(desc),
            KernelDesc::Stream(s) => model.stream_seconds(s),
        };
        if let Some(tr) = tracer {
            tr.record(k.name(), t);
        }
        total += t;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use xe_gpu::{XeStackModel, MAX_1550_STACK};

    fn model() -> XeStackModel {
        XeStackModel::new(MAX_1550_STACK)
    }

    fn step_seconds(shape: SystemShape, p: LfdPrecision) -> f64 {
        price_qd_step(&model(), &qd_step_schedule(shape, p), None)
    }

    #[test]
    fn schedule_contains_exactly_nine_gemms() {
        let sched = qd_step_schedule(SystemShape::pto40(), LfdPrecision::Fp32(ComputeMode::Standard));
        let gemms = sched.iter().filter(|k| matches!(k, KernelDesc::Gemm(..))).count();
        assert_eq!(gemms, 9, "artifact: each QD step contains 9 BLAS calls");
    }

    #[test]
    fn fig3a_135_atom_absolute_times() {
        // Paper §V-C: "over 2800 seconds at FP64 precision, 1472 seconds
        // at FP32, and 972 seconds when using the BF16 compute mode" for
        // 500 QD steps of the 135-atom system. The FP32 point anchors the
        // calibration; FP64 and BF16 are emergent. Bands are ±20%.
        let s = SystemShape::pto135();
        let t32 = 500.0 * step_seconds(s, LfdPrecision::Fp32(ComputeMode::Standard));
        let t64 = 500.0 * step_seconds(s, LfdPrecision::Fp64);
        let tbf = 500.0 * step_seconds(s, LfdPrecision::Fp32(ComputeMode::FloatToBf16));
        assert!((1472.0 * 0.8..=1472.0 * 1.2).contains(&t32), "FP32 500-step time {t32}");
        assert!((2800.0 * 0.7..=2800.0 * 1.3).contains(&t64), "FP64 500-step time {t64}");
        assert!((972.0 * 0.75..=972.0 * 1.25).contains(&tbf), "BF16 500-step time {tbf}");
    }

    #[test]
    fn fig3a_135_atom_mode_ordering() {
        // Artifact A1: fastest BF16, then TF32, BF16X2, BF16X3,
        // Complex_3M, FP32, FP64.
        let s = SystemShape::pto135();
        let times: Vec<(String, f64)> = LfdPrecision::figure3a_set()
            .iter()
            .map(|&p| (p.label().to_string(), step_seconds(s, p)))
            .collect();
        let get = |label: &str| times.iter().find(|(l, _)| l == label).expect("label").1;
        let order = ["BF16", "TF32", "BF16x2", "BF16x3", "Complex_3m", "FP32", "FP64"];
        for w in order.windows(2) {
            assert!(
                get(w[0]) < get(w[1]),
                "{} ({}) should be faster than {} ({})",
                w[0],
                get(w[0]),
                w[1],
                get(w[1])
            );
        }
    }

    #[test]
    fn fig3a_40_atom_modes_change_little() {
        // Paper: "In the 40 atom system, very little performance change is
        // observed between FP32 and the runs with different BLAS compute
        // modes" while FP64 is clearly slower.
        let s = SystemShape::pto40();
        let t32 = step_seconds(s, LfdPrecision::Fp32(ComputeMode::Standard));
        for mode in ComputeMode::ALTERNATIVE {
            let t = step_seconds(s, LfdPrecision::Fp32(mode));
            let rel = (t32 - t).abs() / t32;
            assert!(rel < 0.15, "{mode:?} changes 40-atom time by {rel}");
        }
        let t64 = step_seconds(s, LfdPrecision::Fp64);
        assert!(t64 / t32 > 1.5, "FP64/FP32 at 40 atoms only {}", t64 / t32);
    }

    #[test]
    fn bf16_speedup_at_135_atoms_matches_paper_band() {
        let s = SystemShape::pto135();
        let t32 = step_seconds(s, LfdPrecision::Fp32(ComputeMode::Standard));
        let tbf = step_seconds(s, LfdPrecision::Fp32(ComputeMode::FloatToBf16));
        let speedup = t32 / tbf;
        // Paper quotes 1.35x in the abstract and 1472/972 = 1.51x in §V-C.
        assert!((1.3..=1.7).contains(&speedup), "end-to-end BF16 speedup {speedup}");
    }

    #[test]
    fn pricing_records_into_tracer() {
        let tracer = xe_gpu::Tracer::new();
        let sched = qd_step_schedule(SystemShape::pto40(), LfdPrecision::Fp32(ComputeMode::Standard));
        let total = price_qd_step(&model(), &sched, Some(&tracer));
        assert_eq!(tracer.event_count(), sched.len());
        assert!((tracer.total_seconds() - total).abs() < 1e-12);
    }

    #[test]
    fn schedule_scales_with_system() {
        let small = step_seconds(SystemShape::pto40(), LfdPrecision::Fp32(ComputeMode::Standard));
        let large = step_seconds(SystemShape::pto135(), LfdPrecision::Fp32(ComputeMode::Standard));
        assert!(large > 5.0 * small, "135-atom step must dwarf 40-atom step");
    }
}

//! Property-based tests of the LFD physics invariants: the quantities
//! exact quantum dynamics conserves must survive our discretisation (to
//! integrator accuracy) for *any* admissible parameter set, not just the
//! hand-picked test decks.

use dcmesh_lfd::propagator::{qd_step, QdScratch};
use dcmesh_lfd::state::cosine_potential;
use dcmesh_lfd::{LaserPulse, LfdParams, LfdState, Mesh3};
use mkl_lite::{with_compute_mode, ComputeMode};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = LfdParams> {
    (
        9usize..12,          // mesh points per axis
        2usize..8,           // n_orb
        0.3f64..0.8,         // spacing
        0.0f64..0.5,         // vnl strength
        0.0f64..0.5,         // laser amplitude
        0.05f64..0.6,        // potential depth (through cosine_potential)
    )
        .prop_map(|(mesh_n, n_orb, spacing, vnl, amp, _depth)| LfdParams {
            mesh: Mesh3::cubic(mesh_n, spacing),
            n_orb,
            n_occ: (n_orb / 2).max(1),
            dt: 0.02,
            vnl_strength: vnl,
            taylor_order: 4,
            laser: LaserPulse { amplitude: amp, omega: 0.4, duration: 50.0, phase: 0.0 },
            induced_coupling: 0.0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn electron_count_conserved(p in params_strategy(), depth in 0.05f64..0.5) {
        with_compute_mode(ComputeMode::Standard, || {
            let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, depth));
            let mut scratch = QdScratch::new(&p);
            for _ in 0..10 {
                qd_step(&p, &mut st, &mut scratch);
            }
            let n = st.electron_count(&p);
            prop_assert!(
                (n - p.n_electrons()).abs() < 1e-7 * p.n_electrons().max(1.0),
                "count {} vs {}", n, p.n_electrons()
            );
            Ok(())
        })?;
    }

    #[test]
    fn nexc_physical_bounds(p in params_strategy(), depth in 0.05f64..0.5) {
        with_compute_mode(ComputeMode::Standard, || {
            let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, depth));
            let mut scratch = QdScratch::new(&p);
            for _ in 0..8 {
                let obs = qd_step(&p, &mut st, &mut scratch);
                prop_assert!(obs.nexc >= -1e-9, "negative nexc {}", obs.nexc);
                prop_assert!(obs.nexc <= p.n_electrons() + 1e-9, "nexc over count");
                prop_assert!(obs.ekin.is_finite() && obs.javg.is_finite());
            }
            Ok(())
        })?;
    }

    #[test]
    fn all_modes_stay_finite_and_close(p in params_strategy(), depth in 0.05f64..0.5) {
        // Robustness sweep: no mode may blow up or drift grossly from the
        // FP32 trajectory over a short burst.
        let run = |mode: ComputeMode| -> f64 {
            with_compute_mode(mode, || {
                let mut st = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, depth));
                let mut scratch = QdScratch::new(&p);
                let mut last = 0.0;
                for _ in 0..6 {
                    last = qd_step(&p, &mut st, &mut scratch).ekin;
                }
                last
            })
        };
        let reference = run(ComputeMode::Standard);
        prop_assert!(reference.is_finite());
        for mode in ComputeMode::ALTERNATIVE {
            let v = run(mode);
            prop_assert!(v.is_finite(), "{mode:?} diverged");
            let rel = (v - reference).abs() / (1.0 + reference.abs());
            prop_assert!(rel < 0.05, "{mode:?} ekin off by {rel}");
        }
    }

    #[test]
    fn time_axis_and_step_counter(p in params_strategy(), depth in 0.05f64..0.5) {
        with_compute_mode(ComputeMode::Standard, || {
            let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, depth));
            let mut scratch = QdScratch::new(&p);
            let mut prev_t = -1.0;
            for i in 1..=5u64 {
                let obs = qd_step(&p, &mut st, &mut scratch);
                prop_assert_eq!(obs.step, i);
                prop_assert!(obs.time_fs > prev_t);
                prev_t = obs.time_fs;
            }
            Ok(())
        })?;
    }
}

//! Checkpoint corruption and recovery.
//!
//! A long run's resume path must survive whatever the filesystem does
//! to its newest checkpoint: truncation (death mid-write), header
//! damage, and silent payload bit rot (caught by the format's
//! checksum). In every case the corrupt file is quarantined to
//! `.ck.bad` and the run falls back to the next-newest checkpoint — or
//! a fresh start — and still reproduces the uninterrupted trajectory
//! bit-for-bit.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::{run_simulation, run_with_checkpoints};
use dcmesh_lfd::PrecisionPolicy;
use mkl_lite::{set_compute_mode, ComputeMode};
use std::path::{Path, PathBuf};

fn tiny() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 8;
    cfg.n_occ = 4;
    cfg.total_qd_steps = 60;
    cfg.qd_steps_per_md = 20;
    cfg.laser_duration_fs = 0.03;
    cfg.laser_amplitude = 0.4;
    cfg
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcmesh-recov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes checkpoints for the first 40 of 60 steps: dcmesh-20.ck and
/// dcmesh-40.ck.
fn first_leg(cfg: &RunConfig, dir: &Path) {
    let mut leg = cfg.clone();
    leg.total_qd_steps = 40;
    run_with_checkpoints::<f32>(&leg, &PrecisionPolicy::Ambient, dir).expect("first leg");
    assert!(dir.join("dcmesh-20.ck").exists() && dir.join("dcmesh-40.ck").exists());
}

fn flip_byte(path: &Path, idx_from_end: usize) {
    let mut raw = std::fs::read(path).expect("read checkpoint");
    let idx = raw.len() - 1 - idx_from_end;
    raw[idx] ^= 0x10;
    std::fs::write(path, raw).expect("rewrite checkpoint");
}

#[test]
fn payload_bitflip_quarantines_newest_and_resumes_from_older() {
    set_compute_mode(ComputeMode::Standard);
    let cfg = tiny();
    let straight = run_simulation::<f32>(&cfg).expect("straight run");
    let dir = scratch_dir("payload");
    first_leg(&cfg, &dir);

    // Rot a bit deep in the newest checkpoint's payload. Only the
    // checksum can notice — every field still parses.
    flip_byte(&dir.join("dcmesh-40.ck"), 200);

    let resumed =
        run_with_checkpoints::<f32>(&cfg, &PrecisionPolicy::Ambient, &dir).expect("resume");
    assert!(dir.join("dcmesh-40.ck.bad").exists(), "corrupt checkpoint not quarantined");
    // (a fresh, valid dcmesh-40.ck reappears — the resumed run rewrites
    // its own boundary checkpoints)
    assert_eq!(resumed.records.len(), 40, "should resume from step 20, not 40");

    // The recovered trajectory matches the uninterrupted run exactly.
    for (got, want) in resumed.records.iter().zip(&straight.records[20..]) {
        assert_eq!(got.step, want.step);
        assert_eq!(got.ekin.to_bits(), want.ekin.to_bits(), "step {}", got.step);
        assert_eq!(got.nexc.to_bits(), want.nexc.to_bits(), "step {}", got.step);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_and_bad_magic_checkpoints_force_fresh_start() {
    set_compute_mode(ComputeMode::Standard);
    let cfg = tiny();
    let straight = run_simulation::<f32>(&cfg).expect("straight run");
    let dir = scratch_dir("fresh");
    first_leg(&cfg, &dir);

    // Newest: cut off mid-write. Older: magic destroyed.
    let newest = dir.join("dcmesh-40.ck");
    let raw = std::fs::read(&newest).expect("read");
    std::fs::write(&newest, &raw[..raw.len() / 2]).expect("truncate");
    let older = dir.join("dcmesh-20.ck");
    let mut raw = std::fs::read(&older).expect("read");
    raw[0] ^= 0xFF;
    std::fs::write(&older, raw).expect("rewrite");

    let rerun =
        run_with_checkpoints::<f32>(&cfg, &PrecisionPolicy::Ambient, &dir).expect("fresh run");
    assert!(dir.join("dcmesh-40.ck.bad").exists() && dir.join("dcmesh-20.ck.bad").exists());
    assert_eq!(rerun.records.len(), 60, "no usable checkpoint means a full fresh run");
    for (got, want) in rerun.records.iter().zip(&straight.records) {
        assert_eq!(got.ekin.to_bits(), want.ekin.to_bits(), "step {}", got.step);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_version_rejected_and_older_used() {
    set_compute_mode(ComputeMode::Standard);
    let cfg = tiny();
    let dir = scratch_dir("version");
    first_leg(&cfg, &dir);

    // Byte 8 is the low byte of the little-endian version field.
    let newest = dir.join("dcmesh-40.ck");
    let mut raw = std::fs::read(&newest).expect("read");
    raw[8] ^= 0xFF;
    std::fs::write(&newest, raw).expect("rewrite");

    let resumed =
        run_with_checkpoints::<f32>(&cfg, &PrecisionPolicy::Ambient, &dir).expect("resume");
    assert!(dir.join("dcmesh-40.ck.bad").exists());
    assert_eq!(resumed.records.len(), 40, "should fall back to the step-20 checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
}

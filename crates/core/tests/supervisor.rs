//! Supervisor end-to-end: fault injection → divergence detection →
//! rollback → precision escalation → completed run with an audit trail.
//!
//! The fault plan is process-global state, so every test that installs
//! (or must be isolated from) one serializes on `FAULT_LOCK`.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::runner::run_simulation;
use dcmesh::supervisor::{run_supervised, SupervisorConfig};
use dcmesh::{HealthViolation, RunError};
use mkl_lite::fault::injected_fault_count;
use mkl_lite::{
    clear_fault_plan, install_fault_plan, with_compute_mode, ComputeMode, FaultKind, FaultPlan,
    FaultSite,
};
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny() -> RunConfig {
    let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
    cfg.mesh_points = 10;
    cfg.n_orb = 8;
    cfg.n_occ = 4;
    cfg.total_qd_steps = 60;
    cfg.qd_steps_per_md = 20;
    cfg.laser_duration_fs = 0.03;
    cfg.laser_amplitude = 0.4;
    cfg
}

#[test]
fn clean_supervised_run_matches_unsupervised_bit_for_bit() {
    let _g = lock();
    let cfg = tiny();
    let plain = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))
        .expect("plain run");
    let sup = run_supervised::<f32>(&cfg, ComputeMode::Standard, &SupervisorConfig::default())
        .expect("supervised run");

    assert!(sup.escalations.is_empty(), "clean run must not escalate: {:?}", sup.escalations);
    assert_eq!(sup.final_mode, ComputeMode::Standard);
    assert_eq!(sup.result.records.len(), plain.records.len());
    for (a, b) in sup.result.records.iter().zip(&plain.records) {
        assert_eq!(a.ekin.to_bits(), b.ekin.to_bits(), "step {}", a.step);
        assert_eq!(a.nexc.to_bits(), b.nexc.to_bits(), "step {}", a.step);
    }
}

/// The acceptance scenario: a NaN injected into a mid-run GEMM under the
/// weak mode trips the health monitor; the supervisor rolls the burst
/// back, escalates one rung, and — because the fault is scoped to the
/// weak mode, modelling a matrix-engine-specific failure — completes the
/// deck cleanly, with the escalation on record.
#[test]
fn nan_injection_rolls_back_escalates_and_completes() {
    let _g = lock();
    let cfg = tiny();
    let clean = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))
        .expect("clean FP32 run");

    let injected_before = injected_fault_count();
    install_fault_plan(FaultPlan::new(7).with_site(
        FaultSite::every(1, FaultKind::Nan)
            .on_routine("CGEMM")
            .in_mode(ComputeMode::FloatToBf16),
    ));
    let out = run_supervised::<f32>(&cfg, ComputeMode::FloatToBf16, &SupervisorConfig::default());
    clear_fault_plan();
    let out = out.expect("supervised run should recover from the injected fault");

    assert!(injected_fault_count() > injected_before, "fault plan never fired");

    // Audit trail: exactly one escalation, off the poisoned mode.
    assert_eq!(out.escalations.len(), 1, "{:?}", out.escalations);
    let ev = &out.escalations[0];
    assert_eq!(ev.from, ComputeMode::FloatToBf16);
    assert_eq!(ev.to, ComputeMode::FloatToBf16x2);
    assert_eq!(ev.attempt, 1);
    assert!(
        matches!(ev.violation, HealthViolation::NonFinite { .. }),
        "expected a NaN detection, got {}",
        ev.violation
    );
    assert_eq!(out.final_mode, ComputeMode::FloatToBf16x2);

    // The completed run is whole, finite, and tracks the clean FP32
    // trajectory within the usual low-precision envelope.
    assert_eq!(out.result.records.len(), cfg.total_qd_steps);
    assert!(out.result.records.iter().all(|o| {
        o.ekin.is_finite() && o.etot.is_finite() && o.nexc.is_finite() && o.javg.is_finite()
    }));
    let got = out.result.last().expect("records");
    let want = clean.last().expect("records");
    let rel = (got.ekin - want.ekin).abs() / want.ekin.abs().max(1e-30);
    assert!(rel < 0.1, "escalated run drifted {rel} from the clean FP32 run");
}

#[test]
fn unescapable_fault_exhausts_the_ladder() {
    let _g = lock();
    let cfg = tiny();

    // No mode scope: the fault follows the run up every rung.
    install_fault_plan(
        FaultPlan::new(11).with_site(FaultSite::every(1, FaultKind::Nan).on_routine("CGEMM")),
    );
    let out = run_supervised::<f32>(&cfg, ComputeMode::FloatToBf16, &SupervisorConfig::default());
    clear_fault_plan();

    match out {
        Err(RunError::EscalationExhausted { mode, attempts, .. }) => {
            // BF16 -> x2 -> x3 -> TF32 -> FP32, still failing at FP32.
            assert_eq!(mode, ComputeMode::Standard);
            assert_eq!(attempts, 5);
        }
        other => panic!("expected EscalationExhausted, got {other:?}"),
    }
}

/// Satellite acceptance: a fault-injected supervised run at
/// `TELEMETRY=full` leaves the escalation (and its rollback) in the
/// exported Chrome trace, alongside burst spans and BLAS call spans
/// carrying mode/shape attributes.
#[test]
fn fault_injected_run_emits_escalation_in_trace() {
    use dcmesh_telemetry as telemetry;
    let _g = lock();
    let cfg = tiny();
    telemetry::with_level(telemetry::TelemetryLevel::Full, || {
        telemetry::sink::clear();
        install_fault_plan(FaultPlan::new(7).with_site(
            FaultSite::every(1, FaultKind::Nan)
                .on_routine("CGEMM")
                .in_mode(ComputeMode::FloatToBf16),
        ));
        let out =
            run_supervised::<f32>(&cfg, ComputeMode::FloatToBf16, &SupervisorConfig::default());
        clear_fault_plan();
        let out = out.expect("supervised run should recover");
        assert_eq!(out.escalations.len(), 1);

        let events = telemetry::sink::drain();
        let esc = events.iter().find(|e| e.name == "escalation").expect("escalation event");
        assert_eq!(
            esc.attr("from"),
            Some(&telemetry::AttrValue::Str("FLOAT_TO_BF16")),
            "{esc:?}"
        );
        assert_eq!(
            esc.attr("to"),
            Some(&telemetry::AttrValue::Str("FLOAT_TO_BF16X2")),
            "{esc:?}"
        );
        assert!(events.iter().any(|e| e.name == "rollback"), "rollback event missing");
        assert!(events.iter().any(|e| e.name == "health_violation"), "violation event missing");

        let burst = events
            .iter()
            .find(|e| e.name == "burst" && e.kind == telemetry::EventKind::SpanBegin)
            .expect("burst span");
        assert!(burst.attr("burst_index").is_some() && burst.attr("mode").is_some());

        let blas = events
            .iter()
            .find(|e| e.name == "CGEMM" && e.kind == telemetry::EventKind::SpanBegin)
            .expect("BLAS call span");
        assert!(blas.attr("m").is_some() && blas.attr("k").is_some(), "{blas:?}");
        assert!(blas.attr("mode").is_some(), "{blas:?}");

        assert!(
            events
                .iter()
                .any(|e| e.name == "qd_step" && e.kind == telemetry::EventKind::SpanBegin),
            "qd_step spans missing"
        );

        // The whole thing exports to loadable Chrome-trace JSON with the
        // escalation on it.
        let trace = telemetry::export::chrome_trace(&events);
        telemetry::json::parse(&trace).expect("valid Chrome trace JSON");
        assert!(trace.contains("\"escalation\""), "escalation missing from trace");
    });
}

/// Satellite acceptance: with `deescalate_after` set, the supervisor
/// steps back down the ladder after clean bursts at the escalated mode
/// — and because this fault is scoped to the weak mode (it models a
/// persistent matrix-engine defect), the weak mode fails again on
/// re-entry and the supervisor re-escalates: the audit trail records the
/// full down-up-down history, and the default sticky policy stays
/// untouched (covered by the other tests, which never de-escalate).
#[test]
fn deescalation_steps_back_down_after_clean_bursts() {
    use dcmesh_telemetry as telemetry;
    let _g = lock();
    let cfg = tiny(); // 3 bursts of 20 QD steps

    telemetry::with_level(telemetry::TelemetryLevel::Full, || {
        telemetry::sink::clear();
        install_fault_plan(FaultPlan::new(7).with_site(
            FaultSite::every(1, FaultKind::Nan)
                .on_routine("CGEMM")
                .in_mode(ComputeMode::FloatToBf16),
        ));
        let sup = SupervisorConfig { deescalate_after: Some(1), ..SupervisorConfig::default() };
        let out = run_supervised::<f32>(&cfg, ComputeMode::FloatToBf16, &sup);
        clear_fault_plan();
        let out = out.expect("supervised run should complete despite the persistent fault");

        // Every burst: BF16 trips the fault -> escalate to BF16x2 ->
        // clean burst -> step back down. 3 bursts, 3 full cycles.
        assert_eq!(out.escalations.len(), 3, "{:?}", out.escalations);
        assert_eq!(out.deescalations.len(), 3, "{:?}", out.deescalations);
        for de in &out.deescalations {
            assert_eq!(de.from, ComputeMode::FloatToBf16x2);
            assert_eq!(de.to, ComputeMode::FloatToBf16);
            assert_eq!(de.clean_bursts, 1);
        }
        // The second escalation proves the de-escalated mode really ran
        // the next burst (and failed there again).
        assert_eq!(out.escalations[1].from, ComputeMode::FloatToBf16);
        assert_eq!(out.final_mode, ComputeMode::FloatToBf16, "ends stepped-down");
        assert_eq!(out.result.records.len(), cfg.total_qd_steps);
        assert!(out.result.records.iter().all(|o| o.ekin.is_finite() && o.nexc.is_finite()));

        // The de-escalation is on the telemetry stream...
        let events = telemetry::sink::drain();
        let de = events.iter().find(|e| e.name == "deescalation").expect("deescalation event");
        assert_eq!(de.attr("from"), Some(&telemetry::AttrValue::Str("FLOAT_TO_BF16X2")));
        assert_eq!(de.attr("to"), Some(&telemetry::AttrValue::Str("FLOAT_TO_BF16")));

        // ...and in the Prometheus dump, alongside the defect histogram.
        let dump = telemetry::export::prometheus_dump();
        assert!(dump.contains("supervisor_deescalations_total"), "{dump}");
        assert!(dump.contains("supervisor_scf_defect_picounits"), "{dump}");
    });
}

#[test]
fn supervised_run_resumes_from_its_checkpoints() {
    let _g = lock();
    let cfg = tiny();
    let plain = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))
        .expect("plain run");

    let dir = std::env::temp_dir().join(format!("dcmesh-sup-ck-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sup = SupervisorConfig { checkpoint_dir: Some(dir.clone()), ..SupervisorConfig::default() };

    let mut first_leg = cfg.clone();
    first_leg.total_qd_steps = 40;
    run_supervised::<f32>(&first_leg, ComputeMode::Standard, &sup).expect("first leg");
    assert!(dir.join("dcmesh-40.ck").exists());

    let second = run_supervised::<f32>(&cfg, ComputeMode::Standard, &sup).expect("second leg");
    assert_eq!(second.result.records.len(), 20, "resume should run only the tail");
    for (got, want) in second.result.records.iter().zip(&plain.records[40..]) {
        assert_eq!(got.ekin.to_bits(), want.ekin.to_bits(), "step {}", got.step);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

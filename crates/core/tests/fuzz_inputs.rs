//! Failure-injection and fuzz-style tests: the framework's input
//! surfaces (decks, checkpoints, CSV) must reject malformed data with
//! errors, never panic, and never silently accept corruption.

use bytes::Bytes;
use dcmesh::checkpoint::Checkpoint;
use dcmesh::config::RunConfig;
use dcmesh::output::read_csv;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn deck_parser_never_panics(text in "\\PC{0,400}") {
        // Arbitrary printable input: Ok or Err, never a panic.
        let _ = RunConfig::parse(&text);
    }

    #[test]
    fn deck_parser_never_panics_on_structured_garbage(
        key in "[a-z_]{1,20}",
        value in "\\PC{0,30}",
    ) {
        let text = format!("system = pto40-small\n{key} = {value}\n");
        let _ = RunConfig::parse(&text);
    }

    #[test]
    fn checkpoint_decoder_never_panics(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = Checkpoint::<f32>::decode(Bytes::from(data.clone()));
        let _ = Checkpoint::<f64>::decode(Bytes::from(data));
    }

    #[test]
    fn checkpoint_decoder_rejects_header_bitflips(
        flip_byte in 0usize..32,
        flip_bit in 0u8..8,
    ) {
        // Build a real checkpoint, corrupt one header bit, decode.
        use dcmesh_lfd::state::cosine_potential;
        use dcmesh_lfd::{LaserPulse, LfdParams, LfdState, Mesh3};
        let p = LfdParams {
            mesh: Mesh3::cubic(9, 0.5),
            n_orb: 2,
            n_occ: 1,
            dt: 0.02,
            vnl_strength: 0.1,
            taylor_order: 2,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        };
        let state = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, 0.1));
        let ck =
            Checkpoint { state, system: dcmesh_qxmd::pto_supercell(1), steps_done: 0, nexc: 0.0 };
        let mut raw = ck.encode().to_vec();
        if flip_byte < raw.len() {
            raw[flip_byte] ^= 1 << flip_bit;
        }
        // Must not panic; magic/version/width flips must error.
        let result = Checkpoint::<f32>::decode(Bytes::from(raw));
        if flip_byte < 13 {
            prop_assert!(result.is_err(), "header corruption at byte {flip_byte} accepted");
        }
    }

    #[test]
    fn csv_reader_never_panics(text in "\\PC{0,400}") {
        let _ = read_csv(&text);
    }

    #[test]
    fn csv_reader_never_panics_with_valid_header(body in "\\PC{0,200}") {
        let text = format!("step,time_fs,ekin,epot,etot,eexc,nexc,aext,javg\n{body}");
        let _ = read_csv(&text);
    }
}

#[test]
fn deck_parser_good_and_bad_examples() {
    assert!(RunConfig::parse("system = pto40-small").is_ok());
    assert!(RunConfig::parse("").is_err());
    assert!(RunConfig::parse("system = pto9000").is_err());
    assert!(RunConfig::parse("system = pto40\ndt = banana").is_err());
    assert!(RunConfig::parse("system = pto40\ndt = -1").is_err());
    assert!(RunConfig::parse("system = pto40\nrecord_every = 0").is_err());
}

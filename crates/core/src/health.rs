//! Numerical health monitoring.
//!
//! Low-precision compute modes fail in recognisable ways: NaN/Inf from
//! overflowed BF16 products, excitation counts blowing past the
//! electron count, the per-step excitation rate spiking, or the
//! orthonormality defect / shadow drift absorbed at an MD boundary
//! running away. The [`HealthMonitor`] checks every QD step's
//! observables and every boundary's drift figures against configurable
//! bounds; the [`crate::supervisor`] turns a violation into a rollback
//! plus precision escalation instead of a corrupted (or crashed) run.
//!
//! Step checks run **before** the observables enter the run record and
//! before the FP64 SCF refresh touches the state — a NaN wave function
//! must never reach the eigensolver.

use dcmesh_lfd::StepObservables;
use std::fmt;

/// Bounds the monitor enforces. The defaults only catch certain
/// divergence (non-finite values, unphysical excitation counts); the
/// rate and drift bounds are opt-in because their natural scale depends
/// on the deck.
#[derive(Clone, Debug)]
pub struct HealthConfig {
    /// Upper bound on `nexc` as a multiple of the deck's electron
    /// count (occupied orbitals × 2). `nexc` beyond the electron count
    /// is unphysical; the default of 2× leaves slack for transient
    /// remap overshoot.
    pub max_nexc_fraction: f64,
    /// Upper bound on the per-QD-step change of `nexc`; `None`
    /// disables the rate check.
    pub max_nexc_rate: Option<f64>,
    /// Upper bound on the orthonormality defect an SCF refresh absorbs
    /// at an MD boundary; `None` disables.
    pub max_scf_defect: Option<f64>,
    /// Upper bound on the shadow-matrix drift at an MD boundary;
    /// `None` disables.
    pub max_shadow_drift: Option<f64>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            max_nexc_fraction: 2.0,
            max_nexc_rate: None,
            max_scf_defect: None,
            max_shadow_drift: None,
        }
    }
}

/// A specific bound violation.
#[derive(Clone, Debug, PartialEq)]
pub enum HealthViolation {
    /// An observable is NaN or Inf.
    NonFinite {
        /// Which observable.
        what: &'static str,
        /// QD step where it appeared.
        step: u64,
    },
    /// `nexc` exceeded the configured multiple of the electron count.
    ExcitationBlowup {
        /// QD step.
        step: u64,
        /// Observed value.
        nexc: f64,
        /// The configured bound (absolute).
        bound: f64,
    },
    /// `|Δnexc|` between consecutive steps exceeded the rate bound.
    ExcitationRate {
        /// QD step.
        step: u64,
        /// Observed per-step change.
        delta: f64,
        /// The configured bound.
        bound: f64,
    },
    /// The SCF refresh absorbed more orthonormality defect than allowed.
    ScfDefectRunaway {
        /// Observed defect.
        defect: f64,
        /// The configured bound.
        bound: f64,
    },
    /// Shadow-matrix drift at the boundary exceeded its bound.
    ShadowDriftRunaway {
        /// Observed drift.
        drift: f64,
        /// The configured bound.
        bound: f64,
    },
    /// The FP64 SCF refresh found the orbital overlap matrix numerically
    /// singular — the state was already destroyed when the boundary was
    /// reached (accumulated low-precision error or an injected fault).
    SingularOverlap {
        /// The orthonormalisation error, including the eigenvalue evidence.
        detail: String,
    },
    /// Silent data corruption: an ABFT row-checksum on a sampled GEMM
    /// failed, or a `verify_bursts` replay produced different bits.
    /// Unlike the divergence violations this is *not* a precision
    /// problem — the supervisor rolls back and retries at the **same**
    /// compute mode instead of escalating.
    SilentCorruption {
        /// What was detected and where (checksum defect, routine, call
        /// index, or the replay mismatch evidence).
        detail: String,
    },
}

impl HealthViolation {
    /// Stable snake_case kind label, used as the ledger attribution key
    /// and in telemetry attributes.
    pub fn kind(&self) -> &'static str {
        match self {
            HealthViolation::NonFinite { .. } => "non_finite",
            HealthViolation::ExcitationBlowup { .. } => "excitation_blowup",
            HealthViolation::ExcitationRate { .. } => "excitation_rate",
            HealthViolation::ScfDefectRunaway { .. } => "scf_defect_runaway",
            HealthViolation::ShadowDriftRunaway { .. } => "shadow_drift_runaway",
            HealthViolation::SingularOverlap { .. } => "singular_overlap",
            HealthViolation::SilentCorruption { .. } => "silent_corruption",
        }
    }
}

impl fmt::Display for HealthViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthViolation::NonFinite { what, step } => {
                write!(f, "non-finite {what} at QD step {step}")
            }
            HealthViolation::ExcitationBlowup { step, nexc, bound } => {
                write!(f, "nexc = {nexc:e} exceeds bound {bound:e} at QD step {step}")
            }
            HealthViolation::ExcitationRate { step, delta, bound } => {
                write!(f, "|dnexc| = {delta:e} per step exceeds bound {bound:e} at QD step {step}")
            }
            HealthViolation::ScfDefectRunaway { defect, bound } => {
                write!(f, "SCF orthonormality defect {defect:e} exceeds bound {bound:e}")
            }
            HealthViolation::ShadowDriftRunaway { drift, bound } => {
                write!(f, "shadow drift {drift:e} exceeds bound {bound:e}")
            }
            HealthViolation::SingularOverlap { detail } => {
                write!(f, "SCF refresh failed: {detail}")
            }
            HealthViolation::SilentCorruption { detail } => {
                write!(f, "silent data corruption: {detail}")
            }
        }
    }
}

/// Stateful checker fed each step's observables and each boundary's
/// drift figures.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    n_electrons: f64,
    last_nexc: Option<f64>,
}

impl HealthMonitor {
    /// A monitor for a deck with the given electron count.
    pub fn new(cfg: HealthConfig, n_electrons: f64) -> HealthMonitor {
        HealthMonitor { cfg, n_electrons, last_nexc: None }
    }

    /// Checks one QD step's observables. Call on *every* step, in
    /// order — the rate check needs consecutive values.
    pub fn check_step(&mut self, obs: &StepObservables) -> Result<(), HealthViolation> {
        for (what, value) in [
            ("ekin", obs.ekin),
            ("etot", obs.etot),
            ("nexc", obs.nexc),
            ("javg", obs.javg),
        ] {
            if !value.is_finite() {
                return Err(HealthViolation::NonFinite { what, step: obs.step });
            }
        }
        let bound = self.cfg.max_nexc_fraction * self.n_electrons;
        if obs.nexc.abs() > bound {
            return Err(HealthViolation::ExcitationBlowup { step: obs.step, nexc: obs.nexc, bound });
        }
        if let (Some(rate), Some(prev)) = (self.cfg.max_nexc_rate, self.last_nexc) {
            let delta = (obs.nexc - prev).abs();
            if delta > rate {
                return Err(HealthViolation::ExcitationRate { step: obs.step, delta, bound: rate });
            }
        }
        self.last_nexc = Some(obs.nexc);
        Ok(())
    }

    /// Checks the drift figures produced at an MD boundary.
    pub fn check_boundary(
        &self,
        scf_defect: f64,
        shadow_drift: f64,
    ) -> Result<(), HealthViolation> {
        if !scf_defect.is_finite() {
            return Err(HealthViolation::ScfDefectRunaway { defect: scf_defect, bound: f64::MAX });
        }
        if let Some(bound) = self.cfg.max_scf_defect {
            if scf_defect > bound {
                return Err(HealthViolation::ScfDefectRunaway { defect: scf_defect, bound });
            }
        }
        if let Some(bound) = self.cfg.max_shadow_drift {
            if shadow_drift > bound {
                return Err(HealthViolation::ShadowDriftRunaway { drift: shadow_drift, bound });
            }
        }
        Ok(())
    }

    /// Forgets rate history — call after a rollback, so the first step
    /// of the re-run is not compared against the diverged trajectory.
    pub fn reset(&mut self) {
        self.last_nexc = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(step: u64, nexc: f64) -> StepObservables {
        StepObservables {
            step,
            time_fs: step as f64 * 0.01,
            ekin: 1.0,
            epot: -2.0,
            etot: -1.0,
            eexc: 0.1,
            nexc,
            aext: 0.0,
            javg: 0.01,
        }
    }

    #[test]
    fn finite_physical_steps_pass() {
        let mut mon = HealthMonitor::new(HealthConfig::default(), 8.0);
        for step in 0..10 {
            mon.check_step(&obs(step, 0.1 * step as f64)).expect("healthy step");
        }
        mon.check_boundary(1e-7, 1e-9).expect("healthy boundary");
    }

    #[test]
    fn nan_and_inf_detected() {
        let mut mon = HealthMonitor::new(HealthConfig::default(), 8.0);
        let mut bad = obs(3, 0.1);
        bad.nexc = f64::NAN;
        assert_eq!(
            mon.check_step(&bad),
            Err(HealthViolation::NonFinite { what: "nexc", step: 3 })
        );
        let mut inf = obs(4, 0.1);
        inf.ekin = f64::INFINITY;
        assert_eq!(
            mon.check_step(&inf),
            Err(HealthViolation::NonFinite { what: "ekin", step: 4 })
        );
    }

    #[test]
    fn excitation_blowup_detected() {
        let mut mon = HealthMonitor::new(HealthConfig::default(), 8.0);
        let e = mon.check_step(&obs(5, 17.0)).unwrap_err();
        assert!(matches!(e, HealthViolation::ExcitationBlowup { step: 5, .. }), "{e}");
    }

    #[test]
    fn rate_check_uses_consecutive_steps_and_resets() {
        let cfg = HealthConfig { max_nexc_rate: Some(0.5), ..HealthConfig::default() };
        let mut mon = HealthMonitor::new(cfg, 8.0);
        mon.check_step(&obs(0, 0.0)).expect("first step has no rate");
        let e = mon.check_step(&obs(1, 1.0)).unwrap_err();
        assert!(matches!(e, HealthViolation::ExcitationRate { .. }), "{e}");
        // After reset the same jump is a fresh baseline, not a rate.
        mon.reset();
        mon.check_step(&obs(2, 1.0)).expect("post-reset baseline");
    }

    #[test]
    fn boundary_bounds_enforced() {
        let cfg = HealthConfig {
            max_scf_defect: Some(1e-3),
            max_shadow_drift: Some(1e-4),
            ..HealthConfig::default()
        };
        let mon = HealthMonitor::new(cfg, 8.0);
        assert!(mon.check_boundary(1e-4, 1e-5).is_ok());
        assert!(matches!(
            mon.check_boundary(1e-2, 1e-5),
            Err(HealthViolation::ScfDefectRunaway { .. })
        ));
        assert!(matches!(
            mon.check_boundary(1e-4, 1e-3),
            Err(HealthViolation::ShadowDriftRunaway { .. })
        ));
        // NaN defect is fatal even with no explicit bound.
        let lax = HealthMonitor::new(HealthConfig::default(), 8.0);
        assert!(lax.check_boundary(f64::NAN, 0.0).is_err());
    }
}

//! Structured run errors.
//!
//! Production runs previously panicked on bad input, missing records or
//! unrecoverable numerics. Every failure a run can hit is now a
//! [`RunError`] variant, threaded through the runner, the sweep harness
//! and the supervisor, so callers (the bench binaries, batch drivers)
//! can distinguish "fix your deck" from "the numerics diverged" from
//! "the filesystem failed" without parsing panic messages.

use crate::checkpoint::CheckpointError;
use crate::config::DeckError;
use crate::health::HealthViolation;
use mkl_lite::{ComputeMode, ParseModeError};
use std::fmt;

/// Any failure of a simulation run.
#[derive(Debug)]
pub enum RunError {
    /// The deck failed validation before the run started.
    InvalidConfig(DeckError),
    /// `MKL_BLAS_COMPUTE_MODE` holds an unrecognised value. Surfaced
    /// before any BLAS call runs, so a typo in the environment cannot
    /// silently compute at the wrong precision (or crash mid-run).
    InvalidComputeMode(ParseModeError),
    /// `DCMESH_RANK` holds a value that does not parse as a rank id. A
    /// mis-launched rank must fail fast instead of silently running (and
    /// stamping its telemetry) as rank 0.
    InvalidRank {
        /// The offending environment value.
        value: String,
    },
    /// Checkpoint I/O failed (directory creation, write, rename).
    Io(std::io::Error),
    /// A checkpoint decoded but could not be used.
    Checkpoint(CheckpointError),
    /// The numerical health monitor detected divergence.
    Diverged {
        /// QD step at which the violation was detected.
        step: u64,
        /// Compute mode active when it happened.
        mode: ComputeMode,
        /// What tripped.
        violation: HealthViolation,
    },
    /// The supervisor ran out of escalation ladder or retry budget.
    EscalationExhausted {
        /// QD step of the final, fatal violation.
        step: u64,
        /// The strongest mode tried.
        mode: ComputeMode,
        /// The violation that still fired there.
        violation: HealthViolation,
        /// Re-run attempts consumed.
        attempts: u32,
    },
    /// A fault-injection crash point fired (testing only): the run
    /// stopped as if the process had died, checkpoints intact.
    SimulatedCrash {
        /// QD steps completed (and checkpointed) before the crash.
        steps_done: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            RunError::InvalidComputeMode(e) => write!(f, "invalid compute mode: {e}"),
            RunError::InvalidRank { value } => write!(
                f,
                "invalid {}: {value:?} does not parse as a rank id (unset the variable \
                 for a single-rank run)",
                crate::runner::DCMESH_RANK_ENV
            ),
            RunError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            RunError::Checkpoint(e) => write!(f, "{e}"),
            RunError::Diverged { step, mode, violation } => {
                write!(f, "run diverged at QD step {step} under {mode}: {violation}")
            }
            RunError::EscalationExhausted { step, mode, violation, attempts } => write!(
                f,
                "escalation exhausted after {attempts} attempts; still diverging at QD step \
                 {step} under {mode}: {violation}"
            ),
            RunError::SimulatedCrash { steps_done } => {
                write!(f, "simulated crash after {steps_done} QD steps")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidConfig(e) => Some(e),
            RunError::InvalidComputeMode(e) => Some(e),
            RunError::Io(e) => Some(e),
            RunError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeckError> for RunError {
    fn from(e: DeckError) -> Self {
        RunError::InvalidConfig(e)
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io(e)
    }
}

impl From<CheckpointError> for RunError {
    fn from(e: CheckpointError) -> Self {
        RunError::Checkpoint(e)
    }
}

impl From<ParseModeError> for RunError {
    fn from(e: ParseModeError) -> Self {
        RunError::InvalidComputeMode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RunError::Diverged {
            step: 42,
            mode: ComputeMode::FloatToBf16,
            violation: HealthViolation::NonFinite { what: "nexc", step: 42 },
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("BF16") && s.contains("nexc"), "{s}");

        let io: RunError = std::io::Error::other("disk on fire").into();
        assert!(io.to_string().contains("disk on fire"));
        assert!(std::error::Error::source(&io).is_some());
    }
}

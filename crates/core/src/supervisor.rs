//! The run supervisor: health monitoring, rollback and automatic
//! precision escalation.
//!
//! The paper's methodology assumes each compute mode either completes
//! the deck or is discarded by hand when it diverges (§IV). Production
//! runs need the middle path: detect divergence *as it happens*, roll
//! the burst back, and re-run it under the next-stronger mode on the
//! escalation ladder `BF16 → BF16x2 → BF16x3 → TF32 → FP32` — paying
//! full precision only where the physics demands it, and recording an
//! audit trail of every escalation so the accuracy analysis knows which
//! bursts ran in which mode.
//!
//! Rollback granularity is one MD burst: before each burst the
//! supervisor snapshots the electronic and ionic state in memory (and
//! optionally persists checkpoints to disk, sharing the
//! [`crate::runner::run_with_checkpoints`] format and resume scan). A
//! restored burst re-runs bit-for-bit identically under the same mode —
//! the same guarantee the checkpoint tests establish — so escalation
//! changes results only through the precision change itself.

use crate::checkpoint::Checkpoint;
use crate::config::RunConfig;
use crate::error::RunError;
use crate::health::{HealthConfig, HealthMonitor, HealthViolation};
use crate::runner::{
    excitation_fraction, fresh_start, run_burst, scan_and_load, ResultMark, RunResult,
};
use dcmesh_lfd::nonlocal::LfdScalar;
use dcmesh_lfd::policy::PrecisionPolicy;
use dcmesh_lfd::propagator::QdScratch;
use dcmesh_qxmd::MdIntegrator;
use mkl_lite::{with_compute_mode, ComputeMode};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Escalations performed across all supervised runs in this process.
pub fn escalation_counter() -> &'static Arc<dcmesh_telemetry::metrics::Counter> {
    static C: OnceLock<Arc<dcmesh_telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        dcmesh_telemetry::metrics::counter(
            "supervisor_escalations_total",
            "precision escalations performed by the supervisor",
        )
    })
}

/// Burst rollbacks performed across all supervised runs in this process.
pub fn rollback_counter() -> &'static Arc<dcmesh_telemetry::metrics::Counter> {
    static C: OnceLock<Arc<dcmesh_telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        dcmesh_telemetry::metrics::counter(
            "supervisor_rollbacks_total",
            "burst rollbacks performed by the supervisor",
        )
    })
}

/// De-escalations performed across all supervised runs in this process.
pub fn deescalation_counter() -> &'static Arc<dcmesh_telemetry::metrics::Counter> {
    static C: OnceLock<Arc<dcmesh_telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        dcmesh_telemetry::metrics::counter(
            "supervisor_deescalations_total",
            "precision de-escalations performed by the supervisor",
        )
    })
}

/// Silent-data-corruption recoveries (same-mode rollbacks) performed
/// across all supervised runs in this process.
pub fn sdc_recovery_counter() -> &'static Arc<dcmesh_telemetry::metrics::Counter> {
    static C: OnceLock<Arc<dcmesh_telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        dcmesh_telemetry::metrics::counter(
            "supervisor_sdc_recoveries_total",
            "same-mode rollbacks after detected silent data corruption",
        )
    })
}

/// Burst replays performed by the `verify_bursts` sampler.
pub fn burst_verification_counter() -> &'static Arc<dcmesh_telemetry::metrics::Counter> {
    static C: OnceLock<Arc<dcmesh_telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        dcmesh_telemetry::metrics::counter(
            "supervisor_burst_verifications_total",
            "bursts replayed from snapshot and bit-compared by verify_bursts",
        )
    })
}

/// Per-burst SCF orthonormality defect, observed in picounits (defect ×
/// 1e12) so the log₂ buckets resolve the 1e-12…1e-3 range the study
/// spans. The de-escalation policy reads its own recent window; the
/// histogram is the cross-run view a Prometheus scrape sees.
pub fn scf_defect_histogram() -> &'static Arc<dcmesh_telemetry::metrics::Histogram> {
    static H: OnceLock<Arc<dcmesh_telemetry::metrics::Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        dcmesh_telemetry::metrics::histogram(
            "supervisor_scf_defect_picounits",
            "per-burst SCF orthonormality defect (defect * 1e12)",
        )
    })
}

/// Supervisor policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Bounds the health monitor enforces.
    pub health: HealthConfig,
    /// Modes available for escalation, weakest to strongest. On
    /// divergence the supervisor moves to the first entry strictly
    /// stronger (by [`ComputeMode::escalation_rank`]) than the mode
    /// that failed. Defaults to the full ladder ending at FP32.
    pub ladder: Vec<ComputeMode>,
    /// Re-run budget for a single burst; exceeding it fails the run
    /// with [`RunError::EscalationExhausted`].
    pub max_retries_per_burst: u32,
    /// When set, checkpoints are written here at every MD boundary and
    /// the run resumes from the newest loadable checkpoint, exactly as
    /// [`crate::runner::run_with_checkpoints`] does.
    pub checkpoint_dir: Option<PathBuf>,
    /// Metrics-driven de-escalation: after `Some(n)` consecutive clean
    /// bursts at an escalated mode — with the per-burst SCF-defect trend
    /// over those bursts not increasing — the supervisor steps back
    /// *down* one ladder rung (never below the run's start mode). Any
    /// rollback resets the streak, so a mode that still misbehaves is
    /// re-escalated by the ordinary machinery. `None` (the default)
    /// keeps escalation sticky, the conservative paper-faithful policy.
    pub deescalate_after: Option<u32>,
    /// Silent-data-corruption defense, part 1: `Some(n)` installs ABFT
    /// row-checksum verification on every `n`-th GEMM call for the
    /// duration of the run (an O(n²) check of O(n³) work, see
    /// [`mkl_lite::abft`]). A checksum violation surfaces as
    /// [`HealthViolation::SilentCorruption`]: the supervisor rolls the
    /// burst back and retries at the **same** mode — corruption is
    /// transient, not a precision problem. `None` (default) disables.
    pub abft_check_period: Option<u64>,
    /// Silent-data-corruption defense, part 2: `Some(n)` replays every
    /// `n`-th clean burst from its pre-burst snapshot and bit-compares
    /// the resulting state. A mismatch means one of the two executions
    /// was corrupted (this catches flips *below* the ABFT rounding
    /// bound); it is handled exactly like a checksum violation. `None`
    /// (default) disables.
    pub verify_bursts: Option<u64>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            health: HealthConfig::default(),
            ladder: ComputeMode::ESCALATION_LADDER.to_vec(),
            max_retries_per_burst: ComputeMode::ESCALATION_LADDER.len() as u32,
            checkpoint_dir: None,
            deescalate_after: None,
            abft_check_period: None,
            verify_bursts: None,
        }
    }
}

/// One entry of the escalation audit trail.
#[derive(Clone, Debug)]
pub struct EscalationEvent {
    /// QD step at which the violation was detected.
    pub step: u64,
    /// Mode that diverged.
    pub from: ComputeMode,
    /// Mode the burst was re-run under.
    pub to: ComputeMode,
    /// What tripped the monitor.
    pub violation: HealthViolation,
    /// Retry attempt number for the burst (1-based).
    pub attempt: u32,
}

impl fmt::Display for EscalationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: {} -> {} (attempt {}): {}",
            self.step,
            self.from.label(),
            self.to.label(),
            self.attempt,
            self.violation
        )
    }
}

/// One entry of the de-escalation audit trail.
#[derive(Clone, Debug)]
pub struct DeescalationEvent {
    /// QD step count at the boundary where the step-down happened.
    pub step: u64,
    /// Escalated mode being stepped down from.
    pub from: ComputeMode,
    /// Weaker mode the next bursts run under.
    pub to: ComputeMode,
    /// Clean-burst streak that justified the step-down.
    pub clean_bursts: u32,
}

impl fmt::Display for DeescalationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: {} -> {} after {} clean burst(s)",
            self.step,
            self.from.label(),
            self.to.label(),
            self.clean_bursts
        )
    }
}

/// A completed supervised run.
#[derive(Clone, Debug)]
pub struct SupervisedRun {
    /// The run record (same shape as an unsupervised run's).
    pub result: RunResult,
    /// Every escalation that occurred, in order.
    pub escalations: Vec<EscalationEvent>,
    /// Every de-escalation that occurred, in order (empty unless
    /// [`SupervisorConfig::deescalate_after`] is set).
    pub deescalations: Vec<DeescalationEvent>,
    /// The mode the run finished in — `start_mode` if it never
    /// escalated.
    pub final_mode: ComputeMode,
    /// The QD-step count of the checkpoint this invocation resumed from,
    /// or `None` for a fresh start. Shard workers report this so a
    /// recovered rank can prove it replayed from the shared checkpoint.
    pub resumed_from_step: Option<u64>,
    /// Same-mode rollbacks after detected silent data corruption (ABFT
    /// checksum violations and `verify_bursts` replay mismatches).
    pub sdc_recoveries: u64,
    /// Eigensolver blocks whose Löwdin orthonormalisation collapsed and
    /// fell back to modified Gram–Schmidt during this run (counter delta
    /// of `orth_lowdin_fallbacks_total`). Nonzero values mean the
    /// orthonormality the SCF refresh reports was maintained by the
    /// fallback path — worth knowing when reading the drift columns.
    pub lowdin_fallbacks: u64,
}

/// Hooks a caller can attach to the supervised burst loop. The shard
/// worker uses this to stamp its heartbeat with run progress and to fire
/// deterministic [`crate::shard::RankKillPlan`] kill points; tests can
/// use it to observe the loop without patching the supervisor.
///
/// Both hooks default to no-ops, and `()` is the canonical do-nothing
/// observer.
pub trait BurstObserver {
    /// Called once per burst, just before its pre-burst snapshot is
    /// taken (so the burst about to run is *not yet* checkpointed —
    /// dying here leaves it in-flight). `burst_index` counts MD bursts
    /// from the start of the deck; a resumed run starts mid-sequence.
    fn burst_starting(&mut self, _burst_index: u64, _steps_done: u64) {}
    /// Called after a burst completed cleanly and — when a checkpoint
    /// directory is configured — its checkpoint reached disk.
    fn burst_committed(&mut self, _burst_index: u64, _steps_done: u64) {}
}

impl BurstObserver for () {}

/// Runs the deck under `start_mode` with health monitoring, burst-level
/// rollback and automatic precision escalation. Escalation is sticky:
/// once a burst needed a stronger mode, the remaining bursts keep it —
/// the conservative choice for a trajectory that has entered a regime
/// the weak mode cannot represent.
pub fn run_supervised<T: LfdScalar>(
    cfg: &RunConfig,
    start_mode: ComputeMode,
    sup: &SupervisorConfig,
) -> Result<SupervisedRun, RunError> {
    run_supervised_observed::<T>(cfg, start_mode, sup, &mut ())
}

/// [`run_supervised`] with a [`BurstObserver`] attached to the burst
/// loop — the entry point shard workers use for heartbeat progress
/// stamping and deterministic rank-kill injection.
pub fn run_supervised_observed<T: LfdScalar>(
    cfg: &RunConfig,
    start_mode: ComputeMode,
    sup: &SupervisorConfig,
    observer: &mut dyn BurstObserver,
) -> Result<SupervisedRun, RunError> {
    cfg.validate()?;
    crate::runner::init_rank_from_env()?;
    mkl_lite::try_compute_mode().map_err(RunError::InvalidComputeMode)?;
    if let Some(hash) = cfg.deck_hash() {
        dcmesh_telemetry::ledger::set_deck_hash(&hash);
    }
    let params = cfg.lfd_params();
    params.validate();

    // SDC defense: sampled GEMM checksums for the duration of the run.
    // The guard clears the process-global installation on every exit
    // path so an error return cannot leak checks into later runs.
    struct AbftGuard(bool);
    impl Drop for AbftGuard {
        fn drop(&mut self) {
            if self.0 {
                mkl_lite::clear_abft();
            }
        }
    }
    let _abft_guard = match sup.abft_check_period {
        Some(period) => {
            mkl_lite::install_abft(period.max(1));
            AbftGuard(true)
        }
        None => AbftGuard(false),
    };
    let lowdin_base = dcmesh_lfd::eigensolve::lowdin_fallback_counter().get();

    if let Some(dir) = &sup.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
    }
    let resumed = match &sup.checkpoint_dir {
        Some(dir) => scan_and_load::<T>(dir, &params)?,
        None => None,
    };
    let resumed_from_step = resumed.as_ref().map(|(_, _, steps, _)| *steps as u64);
    let (mut system, mut state, mut steps_done, mut last_nexc) = match resumed {
        Some(r) => r,
        None => {
            let (system, state, steps) = fresh_start::<T>(cfg, &params)?;
            (system, state, steps, 0.0)
        }
    };

    let md_dt = cfg.qd_steps_per_md as f64 * cfg.dt;
    // Seed the integrator's force field with the (checkpointed)
    // excitation so a resumed run is bit-exact; zero on a fresh start.
    let mut md = MdIntegrator::resume(
        &system,
        md_dt,
        cfg.ehrenfest_softening,
        excitation_fraction(last_nexc, &params),
    );
    let mut scratch = QdScratch::new(&params);

    let policy = PrecisionPolicy::Ambient;
    let mut current = start_mode;
    let mut result =
        RunResult::new(&cfg.label, current, cfg.total_qd_steps / cfg.record_every + 1);
    let mut monitor = HealthMonitor::new(sup.health.clone(), params.n_electrons());
    let mut escalations: Vec<EscalationEvent> = Vec::new();
    let mut deescalations: Vec<DeescalationEvent> = Vec::new();
    // Per-burst SCF defects observed since the last rollback or mode
    // change — the window the de-escalation trend check reads.
    let mut clean_defects: Vec<f64> = Vec::new();
    let mut sdc_recoveries = 0u64;

    while steps_done < cfg.total_qd_steps {
        let burst_index = (steps_done / cfg.qd_steps_per_md.max(1)) as u64;
        observer.burst_starting(burst_index, steps_done as u64);

        // Burst-boundary snapshot: everything a rollback must restore.
        let snap_state = state.clone();
        let snap_system = system.clone();
        let snap_steps = steps_done;
        let snap_nexc = last_nexc;
        let mark = ResultMark::take(&result);

        let mut attempt = 0u32;
        loop {
            let burst_out = with_compute_mode(current, || {
                run_burst(
                    cfg,
                    &params,
                    &policy,
                    &mut system,
                    &mut state,
                    &mut md,
                    &mut scratch,
                    &mut steps_done,
                    &mut last_nexc,
                    &mut result,
                    Some(&mut monitor),
                )
            });
            // SDC defense, part 2: replay sampled clean bursts from the
            // snapshot and demand identical bits.
            let burst_out = burst_out.and_then(|()| {
                let sampled = sup
                    .verify_bursts
                    .is_some_and(|every| every > 0 && burst_index.is_multiple_of(every));
                if !sampled {
                    return Ok(());
                }
                verify_burst_replay(
                    cfg,
                    &params,
                    &policy,
                    current,
                    md_dt,
                    &snap_state,
                    &snap_system,
                    snap_steps,
                    snap_nexc,
                    &state,
                    &system,
                    &mut scratch,
                )
            });
            match burst_out {
                Ok(()) => break,
                Err(RunError::Diverged { step, mode, violation }) => {
                    // Roll the burst back to the snapshot. Rebuilding
                    // the integrator from the restored system — seeded
                    // with the snapshot excitation — is the checkpoint
                    // resume path, which is bit-exact.
                    state = snap_state.clone();
                    system = snap_system.clone();
                    steps_done = snap_steps;
                    last_nexc = snap_nexc;
                    mark.restore(&mut result);
                    md = MdIntegrator::resume(
                        &system,
                        md_dt,
                        cfg.ehrenfest_softening,
                        excitation_fraction(snap_nexc, &params),
                    );
                    monitor.reset();
                    clean_defects.clear();
                    rollback_counter().inc();
                    // Feed the ledger: the violation and the rollback are
                    // attributed to the suspect callsite when the BLAS
                    // layer flagged one (ABFT violation or non-finite
                    // output), else to a supervisor row. The suspect is
                    // kept until the escalation decision below consumes
                    // it.
                    if dcmesh_telemetry::events_enabled() {
                        let mode_label = mode.env_value().unwrap_or("STANDARD");
                        dcmesh_telemetry::ledger::record_health_violation(
                            violation.kind(),
                            mode_label,
                        );
                        dcmesh_telemetry::ledger::record_rollback(mode_label);
                    }
                    dcmesh_telemetry::instant(
                        "rollback",
                        vec![
                            dcmesh_telemetry::Attr {
                                key: "step",
                                value: dcmesh_telemetry::AttrValue::U64(step),
                            },
                            dcmesh_telemetry::Attr {
                                key: "mode",
                                value: dcmesh_telemetry::AttrValue::Str(
                                    mode.env_value().unwrap_or("STANDARD"),
                                ),
                            },
                        ],
                    );

                    attempt += 1;
                    // Silent corruption is transient, not a precision
                    // problem: retry the burst at the *same* mode. The
                    // GEMM call counter is never reset, so a one-shot
                    // injected flip does not re-fire on the retry — the
                    // recovered burst is bit-identical to a clean run.
                    if matches!(violation, HealthViolation::SilentCorruption { .. }) {
                        sdc_recoveries += 1;
                        sdc_recovery_counter().inc();
                        dcmesh_telemetry::instant(
                            "sdc_rollback",
                            vec![
                                dcmesh_telemetry::Attr {
                                    key: "step",
                                    value: dcmesh_telemetry::AttrValue::U64(step),
                                },
                                dcmesh_telemetry::Attr {
                                    key: "detail",
                                    value: dcmesh_telemetry::AttrValue::Text(
                                        violation.to_string(),
                                    ),
                                },
                                dcmesh_telemetry::Attr {
                                    key: "attempt",
                                    value: dcmesh_telemetry::AttrValue::U64(attempt as u64),
                                },
                            ],
                        );
                        if attempt > sup.max_retries_per_burst {
                            return Err(RunError::EscalationExhausted {
                                step,
                                mode,
                                violation,
                                attempts: attempt,
                            });
                        }
                        continue;
                    }
                    let next = sup
                        .ladder
                        .iter()
                        .copied()
                        .find(|m| m.escalation_rank() > current.escalation_rank());
                    let next = match next {
                        Some(n) if attempt <= sup.max_retries_per_burst => n,
                        _ => {
                            return Err(RunError::EscalationExhausted {
                                step,
                                mode,
                                violation,
                                attempts: attempt,
                            })
                        }
                    };
                    escalation_counter().inc();
                    if dcmesh_telemetry::events_enabled() {
                        dcmesh_telemetry::ledger::record_escalation(
                            current.env_value().unwrap_or("STANDARD"),
                            next.env_value().unwrap_or("STANDARD"),
                        );
                    }
                    dcmesh_telemetry::instant(
                        "escalation",
                        vec![
                            dcmesh_telemetry::Attr {
                                key: "step",
                                value: dcmesh_telemetry::AttrValue::U64(step),
                            },
                            dcmesh_telemetry::Attr {
                                key: "from",
                                value: dcmesh_telemetry::AttrValue::Str(
                                    current.env_value().unwrap_or("STANDARD"),
                                ),
                            },
                            dcmesh_telemetry::Attr {
                                key: "to",
                                value: dcmesh_telemetry::AttrValue::Str(
                                    next.env_value().unwrap_or("STANDARD"),
                                ),
                            },
                            dcmesh_telemetry::Attr {
                                key: "attempt",
                                value: dcmesh_telemetry::AttrValue::U64(attempt as u64),
                            },
                        ],
                    );
                    escalations.push(EscalationEvent {
                        step,
                        from: current,
                        to: next,
                        violation,
                        attempt,
                    });
                    current = next;
                }
                Err(other) => return Err(other),
            }
        }

        // The burst completed cleanly: feed the SCF-defect histogram and
        // the de-escalation policy.
        let defect = result.scf_drift.last().copied().unwrap_or(0.0);
        scf_defect_histogram().observe((defect.max(0.0) * 1e12) as u64);
        if dcmesh_telemetry::events_enabled() {
            dcmesh_telemetry::ledger::record_scf_defect(
                current.env_value().unwrap_or("STANDARD"),
                defect,
            );
        }
        if let Some(next) = consider_deescalation(sup, start_mode, current, defect, &mut clean_defects)
        {
            deescalation_counter().inc();
            let n = sup.deescalate_after.unwrap_or(0);
            dcmesh_telemetry::instant(
                "deescalation",
                vec![
                    dcmesh_telemetry::Attr {
                        key: "step",
                        value: dcmesh_telemetry::AttrValue::U64(steps_done as u64),
                    },
                    dcmesh_telemetry::Attr {
                        key: "from",
                        value: dcmesh_telemetry::AttrValue::Str(
                            current.env_value().unwrap_or("STANDARD"),
                        ),
                    },
                    dcmesh_telemetry::Attr {
                        key: "to",
                        value: dcmesh_telemetry::AttrValue::Str(
                            next.env_value().unwrap_or("STANDARD"),
                        ),
                    },
                    dcmesh_telemetry::Attr {
                        key: "clean_bursts",
                        value: dcmesh_telemetry::AttrValue::U64(n as u64),
                    },
                ],
            );
            deescalations.push(DeescalationEvent {
                step: steps_done as u64,
                from: current,
                to: next,
                clean_bursts: n,
            });
            current = next;
            clean_defects.clear();
        }

        if let Some(dir) = &sup.checkpoint_dir {
            let ck = Checkpoint {
                state: state.clone(),
                system: system.clone(),
                steps_done: steps_done as u64,
                nexc: last_nexc,
            };
            ck.save(&dir.join(format!("dcmesh-{steps_done}.ck")))?;
            dcmesh_telemetry::instant(
                "checkpoint",
                vec![dcmesh_telemetry::Attr {
                    key: "step",
                    value: dcmesh_telemetry::AttrValue::U64(steps_done as u64),
                }],
            );
        }
        observer.burst_committed(burst_index, steps_done as u64);
    }

    Ok(SupervisedRun {
        result,
        escalations,
        deescalations,
        final_mode: current,
        resumed_from_step,
        sdc_recoveries,
        lowdin_fallbacks: dcmesh_lfd::eigensolve::lowdin_fallback_counter()
            .get()
            .saturating_sub(lowdin_base),
    })
}

/// Replays a just-completed burst from its pre-burst snapshot and
/// bit-compares the resulting electronic and ionic state against the
/// primary execution. The replay rebuilds its integrator from the
/// snapshot system — the checkpoint resume path, which is bit-exact — so
/// any difference means one of the two executions was silently
/// corrupted.
#[allow(clippy::too_many_arguments)]
fn verify_burst_replay<T: LfdScalar>(
    cfg: &RunConfig,
    params: &dcmesh_lfd::LfdParams,
    policy: &PrecisionPolicy,
    mode: ComputeMode,
    md_dt: f64,
    snap_state: &dcmesh_lfd::LfdState<T>,
    snap_system: &dcmesh_qxmd::AtomicSystem,
    snap_steps: usize,
    snap_nexc: f64,
    state: &dcmesh_lfd::LfdState<T>,
    system: &dcmesh_qxmd::AtomicSystem,
    scratch: &mut QdScratch<T>,
) -> Result<(), RunError> {
    burst_verification_counter().inc();
    let mut v_state = snap_state.clone();
    let mut v_system = snap_system.clone();
    let mut v_steps = snap_steps;
    let mut v_nexc = snap_nexc;
    let mut v_md = MdIntegrator::resume(
        &v_system,
        md_dt,
        cfg.ehrenfest_softening,
        excitation_fraction(snap_nexc, params),
    );
    let mut v_result = RunResult::new(&cfg.label, mode, 0);
    with_compute_mode(mode, || {
        run_burst(
            cfg,
            params,
            policy,
            &mut v_system,
            &mut v_state,
            &mut v_md,
            scratch,
            &mut v_steps,
            &mut v_nexc,
            &mut v_result,
            None,
        )
    })?;
    // A checksum violation during the (unmonitored) replay must not
    // linger into the next monitored step.
    let detail = if let Some(v) = mkl_lite::take_abft_violation() {
        Some(format!("burst replay tripped the GEMM checksum: {v}"))
    } else {
        replay_mismatch(state, system, &v_state, &v_system)
    };
    if let Some(detail) = detail {
        dcmesh_telemetry::instant(
            "verify_burst_mismatch",
            vec![
                dcmesh_telemetry::Attr {
                    key: "step",
                    value: dcmesh_telemetry::AttrValue::U64(v_steps as u64),
                },
                dcmesh_telemetry::Attr {
                    key: "detail",
                    value: dcmesh_telemetry::AttrValue::Text(detail.clone()),
                },
            ],
        );
        return Err(RunError::Diverged {
            step: v_steps as u64,
            mode,
            violation: HealthViolation::SilentCorruption { detail },
        });
    }
    Ok(())
}

/// Bit-compares the evolving state of the primary execution against the
/// replay: wave function, ionic positions and velocities. (Occupations,
/// reference spectrum and the local potential are derived from these.)
fn replay_mismatch<T: LfdScalar>(
    state: &dcmesh_lfd::LfdState<T>,
    system: &dcmesh_qxmd::AtomicSystem,
    v_state: &dcmesh_lfd::LfdState<T>,
    v_system: &dcmesh_qxmd::AtomicSystem,
) -> Option<String> {
    for (i, (a, b)) in state.psi.iter().zip(&v_state.psi).enumerate() {
        if a.re.to_f64().to_bits() != b.re.to_f64().to_bits()
            || a.im.to_f64().to_bits() != b.im.to_f64().to_bits()
        {
            return Some(format!(
                "burst replay produced different bits at psi[{i}]: \
                 primary ({:e}, {:e}) vs replay ({:e}, {:e})",
                a.re.to_f64(),
                a.im.to_f64(),
                b.re.to_f64(),
                b.im.to_f64()
            ));
        }
    }
    for (name, prim, rep) in [
        ("position", &system.positions, &v_system.positions),
        ("velocity", &system.velocities, &v_system.velocities),
    ] {
        for (i, (a, b)) in prim.iter().zip(rep.iter()).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Some(format!(
                    "burst replay produced different bits at {name}[{i}]: \
                     primary {a:e} vs replay {b:e}"
                ));
            }
        }
    }
    None
}

/// Decides whether the supervisor should step down one ladder rung after
/// a clean burst. Pushes `defect` into the streak window and, once the
/// streak reaches [`SupervisorConfig::deescalate_after`] with a
/// non-increasing defect trend (last ≤ 1.1 × first of the window), picks
/// the strongest ladder mode strictly weaker than `current` but no
/// weaker than `start_mode`.
fn consider_deescalation(
    sup: &SupervisorConfig,
    start_mode: ComputeMode,
    current: ComputeMode,
    defect: f64,
    clean_defects: &mut Vec<f64>,
) -> Option<ComputeMode> {
    let n = sup.deescalate_after? as usize;
    if current.escalation_rank() <= start_mode.escalation_rank() {
        clean_defects.clear();
        return None;
    }
    clean_defects.push(defect);
    if clean_defects.len() < n.max(1) {
        return None;
    }
    let window = &clean_defects[clean_defects.len() - n.max(1)..];
    let first = window.first().copied().unwrap_or(0.0);
    let last = window.last().copied().unwrap_or(0.0);
    if last > first * 1.1 + f64::EPSILON {
        return None; // defect is trending up: hold the strong mode
    }
    sup.ladder
        .iter()
        .copied()
        .filter(|m| {
            m.escalation_rank() < current.escalation_rank()
                && m.escalation_rank() >= start_mode.escalation_rank()
        })
        .max_by_key(|m| m.escalation_rank())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_ends_at_fp32() {
        let sup = SupervisorConfig::default();
        assert_eq!(sup.ladder.last(), Some(&ComputeMode::Standard));
        assert!(sup.max_retries_per_burst >= sup.ladder.len() as u32 - 1);
    }

    #[test]
    fn escalation_event_displays_the_transition() {
        let ev = EscalationEvent {
            step: 40,
            from: ComputeMode::FloatToBf16,
            to: ComputeMode::FloatToBf16x2,
            violation: HealthViolation::NonFinite { what: "nexc", step: 40 },
            attempt: 1,
        };
        let s = ev.to_string();
        assert!(s.contains("BF16") && s.contains("BF16x2") && s.contains("nexc"), "{s}");
    }
}

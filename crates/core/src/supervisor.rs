//! The run supervisor: health monitoring, rollback and automatic
//! precision escalation.
//!
//! The paper's methodology assumes each compute mode either completes
//! the deck or is discarded by hand when it diverges (§IV). Production
//! runs need the middle path: detect divergence *as it happens*, roll
//! the burst back, and re-run it under the next-stronger mode on the
//! escalation ladder `BF16 → BF16x2 → BF16x3 → TF32 → FP32` — paying
//! full precision only where the physics demands it, and recording an
//! audit trail of every escalation so the accuracy analysis knows which
//! bursts ran in which mode.
//!
//! Rollback granularity is one MD burst: before each burst the
//! supervisor snapshots the electronic and ionic state in memory (and
//! optionally persists checkpoints to disk, sharing the
//! [`crate::runner::run_with_checkpoints`] format and resume scan). A
//! restored burst re-runs bit-for-bit identically under the same mode —
//! the same guarantee the checkpoint tests establish — so escalation
//! changes results only through the precision change itself.

use crate::checkpoint::Checkpoint;
use crate::config::RunConfig;
use crate::error::RunError;
use crate::health::{HealthConfig, HealthMonitor, HealthViolation};
use crate::runner::{fresh_start, run_burst, scan_and_load, ResultMark, RunResult};
use dcmesh_lfd::nonlocal::LfdScalar;
use dcmesh_lfd::policy::PrecisionPolicy;
use dcmesh_lfd::propagator::QdScratch;
use dcmesh_qxmd::MdIntegrator;
use mkl_lite::{with_compute_mode, ComputeMode};
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

/// Escalations performed across all supervised runs in this process.
pub fn escalation_counter() -> &'static Arc<dcmesh_telemetry::metrics::Counter> {
    static C: OnceLock<Arc<dcmesh_telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        dcmesh_telemetry::metrics::counter(
            "supervisor_escalations_total",
            "precision escalations performed by the supervisor",
        )
    })
}

/// Burst rollbacks performed across all supervised runs in this process.
pub fn rollback_counter() -> &'static Arc<dcmesh_telemetry::metrics::Counter> {
    static C: OnceLock<Arc<dcmesh_telemetry::metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        dcmesh_telemetry::metrics::counter(
            "supervisor_rollbacks_total",
            "burst rollbacks performed by the supervisor",
        )
    })
}

/// Supervisor policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Bounds the health monitor enforces.
    pub health: HealthConfig,
    /// Modes available for escalation, weakest to strongest. On
    /// divergence the supervisor moves to the first entry strictly
    /// stronger (by [`ComputeMode::escalation_rank`]) than the mode
    /// that failed. Defaults to the full ladder ending at FP32.
    pub ladder: Vec<ComputeMode>,
    /// Re-run budget for a single burst; exceeding it fails the run
    /// with [`RunError::EscalationExhausted`].
    pub max_retries_per_burst: u32,
    /// When set, checkpoints are written here at every MD boundary and
    /// the run resumes from the newest loadable checkpoint, exactly as
    /// [`crate::runner::run_with_checkpoints`] does.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            health: HealthConfig::default(),
            ladder: ComputeMode::ESCALATION_LADDER.to_vec(),
            max_retries_per_burst: ComputeMode::ESCALATION_LADDER.len() as u32,
            checkpoint_dir: None,
        }
    }
}

/// One entry of the escalation audit trail.
#[derive(Clone, Debug)]
pub struct EscalationEvent {
    /// QD step at which the violation was detected.
    pub step: u64,
    /// Mode that diverged.
    pub from: ComputeMode,
    /// Mode the burst was re-run under.
    pub to: ComputeMode,
    /// What tripped the monitor.
    pub violation: HealthViolation,
    /// Retry attempt number for the burst (1-based).
    pub attempt: u32,
}

impl fmt::Display for EscalationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: {} -> {} (attempt {}): {}",
            self.step,
            self.from.label(),
            self.to.label(),
            self.attempt,
            self.violation
        )
    }
}

/// A completed supervised run.
#[derive(Clone, Debug)]
pub struct SupervisedRun {
    /// The run record (same shape as an unsupervised run's).
    pub result: RunResult,
    /// Every escalation that occurred, in order.
    pub escalations: Vec<EscalationEvent>,
    /// The mode the run finished in — `start_mode` if it never
    /// escalated.
    pub final_mode: ComputeMode,
}

/// Runs the deck under `start_mode` with health monitoring, burst-level
/// rollback and automatic precision escalation. Escalation is sticky:
/// once a burst needed a stronger mode, the remaining bursts keep it —
/// the conservative choice for a trajectory that has entered a regime
/// the weak mode cannot represent.
pub fn run_supervised<T: LfdScalar>(
    cfg: &RunConfig,
    start_mode: ComputeMode,
    sup: &SupervisorConfig,
) -> Result<SupervisedRun, RunError> {
    cfg.validate()?;
    mkl_lite::try_compute_mode().map_err(RunError::InvalidComputeMode)?;
    let params = cfg.lfd_params();
    params.validate();

    if let Some(dir) = &sup.checkpoint_dir {
        std::fs::create_dir_all(dir)?;
    }
    let resumed = match &sup.checkpoint_dir {
        Some(dir) => scan_and_load::<T>(dir, &params)?,
        None => None,
    };
    let (mut system, mut state, mut steps_done) = match resumed {
        Some(r) => r,
        None => fresh_start::<T>(cfg, &params)?,
    };

    let md_dt = cfg.qd_steps_per_md as f64 * cfg.dt;
    let mut md = MdIntegrator::new(&system, md_dt, cfg.ehrenfest_softening);
    let mut scratch = QdScratch::new(&params);

    let policy = PrecisionPolicy::Ambient;
    let mut current = start_mode;
    let mut result =
        RunResult::new(&cfg.label, current, cfg.total_qd_steps / cfg.record_every + 1);
    let mut monitor = HealthMonitor::new(sup.health.clone(), params.n_electrons());
    let mut escalations: Vec<EscalationEvent> = Vec::new();
    let mut last_nexc = 0.0f64;

    while steps_done < cfg.total_qd_steps {
        // Burst-boundary snapshot: everything a rollback must restore.
        let snap_state = state.clone();
        let snap_system = system.clone();
        let snap_steps = steps_done;
        let snap_nexc = last_nexc;
        let mark = ResultMark::take(&result);

        let mut attempt = 0u32;
        loop {
            let burst_out = with_compute_mode(current, || {
                run_burst(
                    cfg,
                    &params,
                    &policy,
                    &mut system,
                    &mut state,
                    &mut md,
                    &mut scratch,
                    &mut steps_done,
                    &mut last_nexc,
                    &mut result,
                    Some(&mut monitor),
                )
            });
            match burst_out {
                Ok(()) => break,
                Err(RunError::Diverged { step, mode, violation }) => {
                    // Roll the burst back to the snapshot. Rebuilding
                    // the integrator from the restored system is the
                    // checkpoint resume path, which is bit-exact.
                    state = snap_state.clone();
                    system = snap_system.clone();
                    steps_done = snap_steps;
                    last_nexc = snap_nexc;
                    mark.restore(&mut result);
                    md = MdIntegrator::new(&system, md_dt, cfg.ehrenfest_softening);
                    monitor.reset();
                    rollback_counter().inc();
                    dcmesh_telemetry::instant(
                        "rollback",
                        vec![dcmesh_telemetry::Attr {
                            key: "step",
                            value: dcmesh_telemetry::AttrValue::U64(step),
                        }],
                    );

                    attempt += 1;
                    let next = sup
                        .ladder
                        .iter()
                        .copied()
                        .find(|m| m.escalation_rank() > current.escalation_rank());
                    let next = match next {
                        Some(n) if attempt <= sup.max_retries_per_burst => n,
                        _ => {
                            return Err(RunError::EscalationExhausted {
                                step,
                                mode,
                                violation,
                                attempts: attempt,
                            })
                        }
                    };
                    escalation_counter().inc();
                    dcmesh_telemetry::instant(
                        "escalation",
                        vec![
                            dcmesh_telemetry::Attr {
                                key: "step",
                                value: dcmesh_telemetry::AttrValue::U64(step),
                            },
                            dcmesh_telemetry::Attr {
                                key: "from",
                                value: dcmesh_telemetry::AttrValue::Str(
                                    current.env_value().unwrap_or("STANDARD"),
                                ),
                            },
                            dcmesh_telemetry::Attr {
                                key: "to",
                                value: dcmesh_telemetry::AttrValue::Str(
                                    next.env_value().unwrap_or("STANDARD"),
                                ),
                            },
                            dcmesh_telemetry::Attr {
                                key: "attempt",
                                value: dcmesh_telemetry::AttrValue::U64(attempt as u64),
                            },
                        ],
                    );
                    escalations.push(EscalationEvent {
                        step,
                        from: current,
                        to: next,
                        violation,
                        attempt,
                    });
                    current = next;
                }
                Err(other) => return Err(other),
            }
        }

        if let Some(dir) = &sup.checkpoint_dir {
            let ck = Checkpoint {
                state: state.clone(),
                system: system.clone(),
                steps_done: steps_done as u64,
            };
            ck.save(&dir.join(format!("dcmesh-{steps_done}.ck")))?;
            dcmesh_telemetry::instant(
                "checkpoint",
                vec![dcmesh_telemetry::Attr {
                    key: "step",
                    value: dcmesh_telemetry::AttrValue::U64(steps_done as u64),
                }],
            );
        }
    }

    Ok(SupervisedRun { result, escalations, final_mode: current })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ladder_ends_at_fp32() {
        let sup = SupervisorConfig::default();
        assert_eq!(sup.ladder.last(), Some(&ComputeMode::Standard));
        assert!(sup.max_retries_per_burst >= sup.ladder.len() as u32 - 1);
    }

    #[test]
    fn escalation_event_displays_the_transition() {
        let ev = EscalationEvent {
            step: 40,
            from: ComputeMode::FloatToBf16,
            to: ComputeMode::FloatToBf16x2,
            violation: HealthViolation::NonFinite { what: "nexc", step: 40 },
            attempt: 1,
        };
        let s = ev.to_string();
        assert!(s.contains("BF16") && s.contains("BF16x2") && s.contains("nexc"), "{s}");
    }
}

//! `dcmesh`: the divide-and-conquer Maxwell–Ehrenfest framework driver.
//!
//! This crate ties the workspace together the way DCMESH ties LFD and
//! QXMD together:
//!
//! * [`config`] — input decks (the stand-ins for the paper's
//!   `PTOquick.dc` / `CONFIG` / `lfd.in`), including the published 40- and
//!   135-atom lead-titanate configurations and laptop-scale variants;
//! * [`runner`] — the production loop: initial SCF, then MD steps each
//!   spanning 500 QD steps of LFD, with an FP64 SCF refresh at every MD
//!   boundary (the multiple-time-scale splitting of §II-C);
//! * [`output`] — the per-QD-step record writer (`ekin epot etot eexc
//!   nexc Aext javg`, the columns the artifact says to read "off the
//!   wall"), console and CSV;
//! * [`analysis`] — deviation-from-reference series, the machinery behind
//!   Figures 1 and 2;
//! * [`perf`] — paper-scale performance assembly on the `xe-gpu` device
//!   model: Figure 3a/3b and Tables VI/VII;
//! * [`shard`] — multi-rank sharded runs (the `dcmesh-shard` binary):
//!   divide-and-conquer domains spread across worker processes with
//!   heartbeat-based failure detection, checkpoint-replay recovery, and
//!   graceful degradation to fewer ranks.
//!
//! Switching BLAS precision requires **no code changes**: set
//! `MKL_BLAS_COMPUTE_MODE=FLOAT_TO_BF16` (etc.) in the environment, or
//! use the scoped [`mkl_lite::with_compute_mode`] the sweep harnesses
//! prefer.

//! ```no_run
//! use dcmesh::config::{RunConfig, SystemPreset};
//! use dcmesh::runner::run_simulation;
//! use mkl_lite::{with_compute_mode, ComputeMode};
//!
//! # fn main() -> Result<(), dcmesh::RunError> {
//! // The paper's experiment in four lines: the same deck under FP32 and
//! // under the BF16 compute mode, ready for deviation analysis.
//! let cfg = RunConfig::preset(SystemPreset::Pto40Small);
//! let reference = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))?;
//! let bf16 = with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg))?;
//! let (a, b) = (reference.last().unwrap(), bf16.last().unwrap());
//! println!("Δekin = {:e}", (a.ekin - b.ekin).abs());
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod health;
pub mod output;
pub mod perf;
pub mod runner;
pub mod shard;
pub mod spectrum;
pub mod supervisor;
pub mod sweep;

pub use checkpoint::Checkpoint;
pub use config::{RunConfig, SystemPreset};
pub use error::RunError;
pub use health::{HealthConfig, HealthMonitor, HealthViolation};
pub use runner::{
    run_simulation, run_simulation_with_policy, run_with_checkpoints,
    run_with_checkpoints_crashing, CrashPlan, RunResult, DCMESH_RANK_ENV,
};
pub use shard::{
    run_coordinator, DomainOutcome, RankKillPlan, ShardConfig, ShardError, ShardReport,
};
pub use supervisor::{
    run_supervised, run_supervised_observed, BurstObserver, DeescalationEvent, EscalationEvent,
    SupervisedRun, SupervisorConfig,
};

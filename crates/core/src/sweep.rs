//! Mode sweeps: the paper's experimental protocol as a library call.
//!
//! The paper's method is always the same loop — run the identical deck
//! once per compute mode, subtract the FP32 reference, analyse the
//! deviations. The figure harnesses, the precision-sweep example and
//! downstream users all want that loop; this module provides it once,
//! with the reference run shared and the deviation series pre-built.

use crate::analysis::{DeviationSeries, Metric};
use crate::config::RunConfig;
use crate::error::RunError;
use crate::runner::{run_simulation, RunResult};
use dcmesh_lfd::nonlocal::LfdScalar;
use mkl_lite::{with_compute_mode, ComputeMode};

/// The outcome of one full mode sweep.
#[derive(Clone, Debug)]
pub struct ModeSweep {
    /// The FP32 reference run.
    pub reference: RunResult,
    /// One run per alternative mode, in [`ComputeMode::ALTERNATIVE`] order.
    pub runs: Vec<(ComputeMode, RunResult)>,
}

impl ModeSweep {
    /// Deviation series of `metric` for every alternative mode.
    pub fn deviations(&self, metric: Metric) -> Vec<(ComputeMode, DeviationSeries)> {
        self.runs
            .iter()
            .map(|(mode, run)| {
                (*mode, DeviationSeries::build(metric, &run.records, &self.reference.records))
            })
            .collect()
    }

    /// Max |deviation| of `metric` for one mode, or `None` if the mode
    /// is not part of the sweep.
    pub fn max_deviation(&self, mode: ComputeMode, metric: Metric) -> Option<f64> {
        self.runs.iter().find(|(m, _)| *m == mode).map(|(_, run)| {
            DeviationSeries::build(metric, &run.records, &self.reference.records).max_abs()
        })
    }

    /// The summary rows of Figure 1: `(mode, max|Δnexc|, max|Δjavg|,
    /// max|Δekin|)`.
    pub fn figure1_summary(&self) -> Vec<(ComputeMode, f64, f64, f64)> {
        self.runs
            .iter()
            .map(|(mode, run)| {
                let max =
                    |metric| DeviationSeries::build(metric, &run.records, &self.reference.records)
                        .max_abs();
                (*mode, max(Metric::Nexc), max(Metric::Javg), max(Metric::Ekin))
            })
            .collect()
    }
}

/// Runs the deck once at FP32 and once per alternative compute mode —
/// "the exact same computations were performed in each, to ensure a fair
/// comparison" (§V-A). `progress` is invoked with each configuration's
/// label before its run starts (for harness logging; pass `|_| {}` to
/// silence).
pub fn run_mode_sweep<T: LfdScalar>(
    cfg: &RunConfig,
    mut progress: impl FnMut(&str),
) -> Result<ModeSweep, RunError> {
    progress("FP32");
    let reference = with_compute_mode(ComputeMode::Standard, || run_simulation::<T>(cfg))?;
    let runs = ComputeMode::ALTERNATIVE
        .iter()
        .map(|&mode| {
            progress(mode.label());
            with_compute_mode(mode, || run_simulation::<T>(cfg)).map(|run| (mode, run))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ModeSweep { reference, runs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemPreset;

    fn tiny() -> RunConfig {
        let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
        cfg.mesh_points = 10;
        cfg.n_orb = 8;
        cfg.n_occ = 4;
        cfg.total_qd_steps = 30;
        cfg.qd_steps_per_md = 15;
        cfg.laser_duration_fs = 0.015;
        cfg.laser_amplitude = 0.4;
        cfg
    }

    #[test]
    fn sweep_covers_all_modes_and_aligns_records() {
        let mut labels = Vec::new();
        let sweep = run_mode_sweep::<f32>(&tiny(), |l| labels.push(l.to_string())).expect("sweep");
        assert_eq!(sweep.runs.len(), ComputeMode::ALTERNATIVE.len());
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], "FP32");
        for (_, run) in &sweep.runs {
            assert_eq!(run.records.len(), sweep.reference.records.len());
        }
    }

    #[test]
    fn figure1_summary_shape_and_positivity() {
        let sweep = run_mode_sweep::<f32>(&tiny(), |_| {}).expect("sweep");
        let summary = sweep.figure1_summary();
        assert_eq!(summary.len(), 5);
        for (mode, nexc, javg, ekin) in summary {
            assert!(nexc >= 0.0 && javg >= 0.0 && ekin >= 0.0, "{mode:?}");
            // Every alternative mode must differ from FP32 in at least one
            // observable over a driven run.
            assert!(
                nexc > 0.0 || javg > 0.0 || ekin > 0.0,
                "{mode:?} bit-identical to the reference"
            );
        }
    }

    #[test]
    fn deviations_accessor_matches_direct_build() {
        let sweep = run_mode_sweep::<f32>(&tiny(), |_| {}).expect("sweep");
        let via_list = &sweep.deviations(Metric::Ekin)[0];
        let direct = sweep.max_deviation(via_list.0, Metric::Ekin);
        assert_eq!(Some(via_list.1.max_abs()), direct);
        // A mode outside the sweep is None, not a panic.
        assert_eq!(sweep.max_deviation(ComputeMode::Standard, Metric::Ekin), None);
    }
}

//! Deviation-from-reference analysis (Figures 1 and 2).
//!
//! The paper's accuracy results plot, per compute mode, the difference
//! between an observable's trajectory and the FP32 reference trajectory
//! over simulation time — with "the exact same computations performed in
//! each" run so that the BLAS mode is the only varying factor. This
//! module aligns two run records and produces those series plus summary
//! statistics.

use dcmesh_lfd::StepObservables;

/// Which observable a deviation series tracks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Number of excited electrons (Figure 1a).
    Nexc,
    /// Average current density (Figures 1b and 2).
    Javg,
    /// Kinetic energy (Figure 1c).
    Ekin,
    /// Excitation energy.
    Eexc,
    /// Total energy.
    Etot,
}

impl Metric {
    /// Extracts the metric from a record.
    pub fn get(self, o: &StepObservables) -> f64 {
        match self {
            Metric::Nexc => o.nexc,
            Metric::Javg => o.javg,
            Metric::Ekin => o.ekin,
            Metric::Eexc => o.eexc,
            Metric::Etot => o.etot,
        }
    }

    /// The three metrics of Figure 1, in the paper's panel order.
    pub const FIGURE1: [Metric; 3] = [Metric::Nexc, Metric::Javg, Metric::Ekin];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Nexc => "nexc",
            Metric::Javg => "javg",
            Metric::Ekin => "ekin",
            Metric::Eexc => "eexc",
            Metric::Etot => "etot",
        }
    }
}

/// One deviation point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviationPoint {
    /// Time in femtoseconds.
    pub time_fs: f64,
    /// `|x_mode − x_ref|`.
    pub abs_deviation: f64,
    /// Reference value at the same step (for relative error).
    pub reference: f64,
}

/// The deviation series of one metric for one mode.
#[derive(Clone, Debug)]
pub struct DeviationSeries {
    /// Metric tracked.
    pub metric: Metric,
    /// Points over simulation time.
    pub points: Vec<DeviationPoint>,
}

impl DeviationSeries {
    /// Builds the series from a run and its reference. Records are
    /// aligned by step index; both runs must have recorded the same
    /// steps ("the exact same computations were performed in each").
    pub fn build(metric: Metric, run: &[StepObservables], reference: &[StepObservables]) -> DeviationSeries {
        assert_eq!(run.len(), reference.len(), "runs recorded different step counts");
        let points = run
            .iter()
            .zip(reference)
            .map(|(a, b)| {
                assert_eq!(a.step, b.step, "misaligned records");
                DeviationPoint {
                    time_fs: b.time_fs,
                    abs_deviation: (metric.get(a) - metric.get(b)).abs(),
                    reference: metric.get(b),
                }
            })
            .collect();
        DeviationSeries { metric, points }
    }

    /// Maximum absolute deviation over the run.
    pub fn max_abs(&self) -> f64 {
        self.points.iter().map(|p| p.abs_deviation).fold(0.0, f64::max)
    }

    /// Final-time absolute deviation.
    pub fn final_abs(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.abs_deviation)
    }

    /// Maximum deviation relative to the reference magnitude (the paper's
    /// "deviations relative to the absolute values ... in the order of
    /// 1%" check).
    pub fn max_relative(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.reference.abs() > 0.0)
            .map(|p| p.abs_deviation / p.reference.abs())
            .fold(0.0, f64::max)
    }

    /// log₁₀ of the deviations (Figure 2's y-axis); zero deviations clamp
    /// to the given floor.
    pub fn log10_series(&self, floor: f64) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.time_fs, p.abs_deviation.max(floor).log10()))
            .collect()
    }

    /// Whether the deviation grows over the run (compares the mean of the
    /// last quarter against the first quarter) — Figure 1's qualitative
    /// "deviation increases over the course of the simulation".
    pub fn grows_over_time(&self) -> bool {
        let n = self.points.len();
        if n < 8 {
            return false;
        }
        let q = n / 4;
        let mean = |s: &[DeviationPoint]| s.iter().map(|p| p.abs_deviation).sum::<f64>() / s.len() as f64;
        mean(&self.points[n - q..]) > mean(&self.points[..q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_run(offset: f64, slope: f64) -> Vec<StepObservables> {
        (1..=100u64)
            .map(|i| StepObservables {
                step: i,
                time_fs: i as f64 * 0.01,
                ekin: 10.0 + offset + slope * i as f64,
                epot: -1.0,
                etot: 9.0,
                eexc: 0.0,
                nexc: 0.1,
                aext: 0.0,
                javg: 1e-4,
            })
            .collect()
    }

    #[test]
    fn zero_deviation_for_identical_runs() {
        let a = make_run(0.0, 0.0);
        let s = DeviationSeries::build(Metric::Ekin, &a, &a);
        assert_eq!(s.max_abs(), 0.0);
        assert!(!s.grows_over_time());
    }

    #[test]
    fn constant_offset_detected() {
        let reference = make_run(0.0, 0.0);
        let run = make_run(0.5, 0.0);
        let s = DeviationSeries::build(Metric::Ekin, &run, &reference);
        assert!((s.max_abs() - 0.5).abs() < 1e-12);
        assert!((s.final_abs() - 0.5).abs() < 1e-12);
        assert!((s.max_relative() - 0.05).abs() < 1e-3);
    }

    #[test]
    fn growing_deviation_detected() {
        let reference = make_run(0.0, 0.0);
        let run = make_run(0.0, 0.01);
        let s = DeviationSeries::build(Metric::Ekin, &run, &reference);
        assert!(s.grows_over_time());
        assert!((s.final_abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_series_clamps_zeros() {
        let a = make_run(0.0, 0.0);
        let s = DeviationSeries::build(Metric::Javg, &a, &a);
        let log = s.log10_series(1e-12);
        assert!(log.iter().all(|&(_, y)| (y + 12.0).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "different step counts")]
    fn misaligned_runs_rejected() {
        let a = make_run(0.0, 0.0);
        let b = &a[..50];
        DeviationSeries::build(Metric::Ekin, &a, b);
    }

    #[test]
    fn figure1_metric_set() {
        assert_eq!(Metric::FIGURE1.map(|m| m.name()), ["nexc", "javg", "ekin"]);
    }
}

//! `dcmesh-shard` — multi-rank sharded DCMESH runs.
//!
//! The coordinator shards the divide-and-conquer domains across worker
//! ranks (real OS processes — this same binary, re-invoked), detects
//! dead ranks by heartbeat timeout, respawns them with bounded retries,
//! and degrades to fewer ranks when a respawn budget runs out. See
//! `dcmesh::shard` for the protocol and `DESIGN.md` § Distributed runs.
//!
//! ```text
//! dcmesh-shard --run-dir out/shard --ranks 4 --domains 4 --tiny
//! dcmesh-shard --run-dir out/shard --ranks 4 --domains 4 --tiny --kill 1@1
//! ```
//!
//! With `TELEMETRY=events`, per-rank traces land in
//! `<run-dir>/trace/events-rank<r>.jsonl`, ready for `profile merge`.

use dcmesh::config::{RunConfig, SystemPreset};
use dcmesh::shard::{self, RankKillPlan, ShardConfig, ShardReport};
use mkl_lite::ComputeMode;
use std::path::PathBuf;
use std::time::Duration;

struct Options {
    run_dir: PathBuf,
    ranks: usize,
    domains: usize,
    deck: RunConfig,
    mode: ComputeMode,
    kill: RankKillPlan,
    heartbeat_ms: Option<u64>,
    timeout_ms: Option<u64>,
    backoff_ms: Option<u64>,
    max_respawns: Option<u32>,
    max_wall_s: Option<u64>,
}

fn fail(msg: &str) -> ! {
    eprintln!("dcmesh-shard: {msg}");
    eprintln!(
        "usage: dcmesh-shard --run-dir DIR [--ranks N] [--domains M] \
         [--preset NAME | --deck FILE] [--tiny] [--mode MODE] [--kill SPEC] \
         [--steps N] [--steps-per-burst N] [--heartbeat-ms N] [--timeout-ms N] \
         [--backoff-ms N] [--max-respawns N] [--max-wall-s N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut run_dir: Option<PathBuf> = None;
    let mut ranks = 4usize;
    let mut domains: Option<usize> = None;
    let mut deck = RunConfig::preset(SystemPreset::Pto40Small);
    let mut mode = ComputeMode::Standard;
    let mut kill = RankKillPlan::default();
    let mut heartbeat_ms = None;
    let mut timeout_ms = None;
    let mut backoff_ms = None;
    let mut max_respawns = None;
    let mut max_wall_s = None;
    let mut steps: Option<usize> = None;
    let mut steps_per_burst: Option<usize> = None;
    let mut tiny = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match arg.as_str() {
            "--run-dir" => run_dir = Some(PathBuf::from(value("--run-dir"))),
            "--ranks" => {
                ranks = value("--ranks").parse().unwrap_or_else(|_| fail("bad --ranks"))
            }
            "--domains" => {
                domains =
                    Some(value("--domains").parse().unwrap_or_else(|_| fail("bad --domains")))
            }
            "--preset" => {
                let name = value("--preset");
                let preset = SystemPreset::from_name(&name)
                    .unwrap_or_else(|| fail(&format!("unknown preset {name:?}")));
                deck = RunConfig::preset(preset);
            }
            "--deck" => {
                let path = value("--deck");
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| fail(&format!("reading deck {path}: {e}")));
                deck = RunConfig::parse(&text)
                    .unwrap_or_else(|e| fail(&format!("parsing deck {path}: {e}")));
            }
            "--tiny" => tiny = true,
            "--mode" => {
                let name = value("--mode");
                mode = name.parse().unwrap_or_else(|_| fail(&format!("unknown mode {name:?}")));
            }
            "--kill" => {
                let spec = value("--kill");
                kill = RankKillPlan::parse(&spec)
                    .unwrap_or_else(|e| fail(&format!("bad --kill: {e}")));
            }
            "--steps" => {
                steps = Some(value("--steps").parse().unwrap_or_else(|_| fail("bad --steps")))
            }
            "--steps-per-burst" => {
                steps_per_burst = Some(
                    value("--steps-per-burst")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --steps-per-burst")),
                )
            }
            "--heartbeat-ms" => {
                heartbeat_ms =
                    Some(value("--heartbeat-ms").parse().unwrap_or_else(|_| fail("bad ms")))
            }
            "--timeout-ms" => {
                timeout_ms = Some(value("--timeout-ms").parse().unwrap_or_else(|_| fail("bad ms")))
            }
            "--backoff-ms" => {
                backoff_ms = Some(value("--backoff-ms").parse().unwrap_or_else(|_| fail("bad ms")))
            }
            "--max-respawns" => {
                max_respawns =
                    Some(value("--max-respawns").parse().unwrap_or_else(|_| fail("bad count")))
            }
            "--max-wall-s" => {
                max_wall_s = Some(value("--max-wall-s").parse().unwrap_or_else(|_| fail("bad s")))
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    if tiny {
        // The CI-smoke deck: small enough that a 4-rank fleet with an
        // injected kill finishes in seconds, large enough for 3 bursts.
        deck.mesh_points = 10;
        deck.n_orb = 8;
        deck.n_occ = 4;
        deck.total_qd_steps = 60;
        deck.qd_steps_per_md = 20;
    }
    if let Some(s) = steps {
        deck.total_qd_steps = s;
    }
    if let Some(s) = steps_per_burst {
        deck.qd_steps_per_md = s;
    }

    let run_dir = run_dir.unwrap_or_else(|| fail("--run-dir is required"));
    Options {
        run_dir,
        ranks,
        domains: domains.unwrap_or(ranks),
        deck,
        mode,
        kill,
        heartbeat_ms,
        timeout_ms,
        backoff_ms,
        max_respawns,
        max_wall_s,
    }
}

fn print_report(report: &ShardReport) {
    println!(
        "shard run complete in {:.2}s: {} domain(s), {} restart(s), {} heartbeat miss(es)",
        report.elapsed.as_secs_f64(),
        report.domains.len(),
        report.restarts,
        report.heartbeat_misses,
    );
    for d in &report.domains {
        let resumed = match d.resumed_from_step {
            Some(s) => format!(" (resumed from step {s})"),
            None => String::new(),
        };
        println!(
            "  domain {}: {} by rank {} inc {}{} final_step {} etot_bits 0x{:016x}",
            d.domain,
            if d.ok { "ok" } else { "FAILED" },
            d.rank,
            d.incarnation,
            resumed,
            d.final_step,
            d.etot_bits,
        );
    }
    if !report.degraded_ranks.is_empty() {
        println!(
            "  degraded rank(s) {:?}: respawn budget exhausted, run completed on fewer ranks",
            report.degraded_ranks
        );
    }
}

fn main() {
    // Worker path: the coordinator re-invokes this binary with
    // DCMESH_SHARD_WORKER=1; this call never returns in that case.
    shard::maybe_run_worker();

    let opts = parse_args();
    let mut cfg = ShardConfig::new(opts.deck, opts.ranks, opts.domains, opts.run_dir);
    cfg.start_mode = opts.mode;
    cfg.kill_plan = opts.kill;
    if let Some(ms) = opts.heartbeat_ms {
        cfg.heartbeat_interval = Duration::from_millis(ms);
    }
    if let Some(ms) = opts.timeout_ms {
        cfg.heartbeat_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = opts.backoff_ms {
        cfg.backoff_base = Duration::from_millis(ms);
    }
    if let Some(n) = opts.max_respawns {
        cfg.max_respawns = n;
    }
    if let Some(s) = opts.max_wall_s {
        cfg.max_wall = Some(Duration::from_secs(s));
    }

    match shard::run_coordinator(&cfg) {
        Ok(report) => {
            print_report(&report);
            if !report.failed_domains().is_empty() {
                eprintln!("dcmesh-shard: domain failure(s): {:?}", report.failed_domains());
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("dcmesh-shard: {e}");
            std::process::exit(1);
        }
    }
}

//! The production run loop.
//!
//! Mirrors DCMESH's multiple-time-scale splitting: the wave function is
//! initialised by SCF at FP64, then each MD step runs 500 QD steps of LFD
//! (at FP32 plus the active BLAS compute mode — or all-FP64), executes the
//! FP64 SCF refresh, and advances the ions on the shadow potential. The
//! per-QD-step observables form the run record that the Figure 1/2
//! analysis consumes.

use crate::config::RunConfig;
use dcmesh_lfd::nonlocal::LfdScalar;
use dcmesh_lfd::policy::PrecisionPolicy;
use dcmesh_lfd::propagator::{qd_step_with_policy, QdScratch};
use dcmesh_lfd::{LfdState, StepObservables};
use dcmesh_qxmd::scf::{initial_scf, scf_refresh};
use dcmesh_qxmd::shadow::{shadow_drift, sync_with_shadow, TransferLedger};
use dcmesh_qxmd::{pto_supercell, MdIntegrator};
use mkl_lite::ComputeMode;

/// Everything a finished run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Label echoed from the configuration plus the compute mode.
    pub label: String,
    /// Compute mode the BLAS calls ran in.
    pub mode: ComputeMode,
    /// Per-QD-step observables (every `record_every`-th step).
    pub records: Vec<StepObservables>,
    /// Orthonormality defect absorbed by each SCF refresh — the
    /// accumulated low-precision drift per 500-step burst.
    pub scf_drift: Vec<f64>,
    /// Shadow-matrix drift sampled at each MD boundary.
    pub shadow_drift: Vec<f64>,
    /// Ionic temperature (K) per MD step.
    pub ion_temperature: Vec<f64>,
    /// CPU↔GPU transfer ledger (shadow-dynamics accounting).
    pub transfers: TransferLedger,
}

impl RunResult {
    /// The last recorded observables.
    pub fn last(&self) -> &StepObservables {
        self.records.last().expect("run produced no records")
    }
}

/// Runs the full simulation at element width `T` (`f32` for the paper's
/// mixed-precision configurations, `f64` for its FP64 baseline) under the
/// *currently active* compute mode. Sweeps use
/// [`mkl_lite::with_compute_mode`] around this call.
pub fn run_simulation<T: LfdScalar>(cfg: &RunConfig) -> RunResult {
    run_simulation_with_policy::<T>(cfg, &PrecisionPolicy::Ambient)
}

/// [`run_simulation`] with a per-call-site [`PrecisionPolicy`] — each of
/// the nine BLAS calls per QD step runs in the mode the policy assigns
/// it. This is the mixed-precision configuration space the paper's
/// env-var methodology could not reach (§IV-D).
pub fn run_simulation_with_policy<T: LfdScalar>(
    cfg: &RunConfig,
    policy: &PrecisionPolicy,
) -> RunResult {
    cfg.validate().expect("invalid configuration");
    let params = cfg.lfd_params();
    params.validate();

    // QXMD side: ions and their potential on the mesh.
    let mut system = pto_supercell(cfg.supercell);
    let vloc: Vec<T> = system.local_potential(&params.mesh, cfg.vloc_depth);

    // LFD side: wave functions, initialised by SCF (FP64).
    let mut state = LfdState::<T>::initialize(&params, vloc);
    initial_scf(&params, &mut state, 3, 1e-10);

    let mut md = MdIntegrator::new(&system, cfg.qd_steps_per_md as f64 * cfg.dt, cfg.ehrenfest_softening);
    let mut scratch = QdScratch::new(&params);

    let mode = mkl_lite::compute_mode();
    let mut result = RunResult {
        label: format!("{}/{}", cfg.label, mode.label()),
        mode,
        records: Vec::with_capacity(cfg.total_qd_steps / cfg.record_every + 1),
        scf_drift: Vec::new(),
        shadow_drift: Vec::new(),
        ion_temperature: Vec::new(),
        transfers: TransferLedger::default(),
    };

    let mut steps_done = 0usize;
    let mut last_nexc = 0.0f64;
    while steps_done < cfg.total_qd_steps {
        let burst = cfg.qd_steps_per_md.min(cfg.total_qd_steps - steps_done);
        // --- LFD: one burst of QD steps on the "GPU" ---
        for s in 0..burst {
            let obs = qd_step_with_policy(&params, &mut state, &mut scratch, policy);
            last_nexc = obs.nexc;
            if (steps_done + s) % cfg.record_every == 0 {
                result.records.push(obs);
            }
        }
        steps_done += burst;

        // --- boundary: shadow sync, FP64 SCF refresh, ionic step ---
        result.shadow_drift.push(shadow_drift(&state, params.n_orb));
        sync_with_shadow(&mut result.transfers, params.mesh.len(), params.n_orb, system.len());

        let report = scf_refresh(&params, &mut state);
        result.scf_drift.push(report.defect_before);

        let excitation_fraction = (last_nexc / params.n_electrons()).clamp(0.0, 1.0);
        md.step(&mut system, excitation_fraction);
        result.ion_temperature.push(md.temperature(&system));

        // Ion motion updates the potential the electrons feel.
        let new_vloc: Vec<T> = system.local_potential(&params.mesh, cfg.vloc_depth);
        state.vloc = new_vloc;
    }
    result
}


/// Runs the simulation with periodic checkpointing: a
/// [`crate::checkpoint::Checkpoint`] is written to `dir/dcmesh-<step>.ck`
/// at every MD boundary, and — if a newer checkpoint for this deck shape
/// already exists in `dir` — the run **resumes** from it instead of
/// starting over. Resumed runs continue bit-for-bit identically to an
/// uninterrupted run (guaranteed by the checkpoint tests), so the paper's
/// 2-day-per-mode accuracy runs survive job-time limits without
/// corrupting the deviation analysis.
///
/// Returns the run result covering only the steps executed *in this
/// invocation* (records from before the resume point live in the earlier
/// invocation's output).
pub fn run_with_checkpoints<T: LfdScalar>(
    cfg: &RunConfig,
    policy: &PrecisionPolicy,
    dir: &std::path::Path,
) -> std::io::Result<RunResult> {
    use crate::checkpoint::Checkpoint;

    cfg.validate().expect("invalid configuration");
    let params = cfg.lfd_params();
    params.validate();
    std::fs::create_dir_all(dir)?;

    // Look for the newest resumable checkpoint.
    let mut newest: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if let Some(step) = name
            .strip_prefix("dcmesh-")
            .and_then(|r| r.strip_suffix(".ck"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            if newest.as_ref().is_none_or(|(s, _)| step > *s) {
                newest = Some((step, path));
            }
        }
    }

    let (mut system, mut state, mut steps_done) = match newest {
        Some((_, path)) => match Checkpoint::<T>::load(&path) {
            Ok(ck) if ck.validate(&params).is_ok() => {
                (ck.system, ck.state, ck.steps_done as usize)
            }
            _ => fresh_start::<T>(cfg, &params),
        },
        None => fresh_start::<T>(cfg, &params),
    };

    let mut md = MdIntegrator::new(
        &system,
        cfg.qd_steps_per_md as f64 * cfg.dt,
        cfg.ehrenfest_softening,
    );
    let mut scratch = QdScratch::new(&params);
    let mode = mkl_lite::compute_mode();
    let mut result = RunResult {
        label: format!("{}/{}", cfg.label, mode.label()),
        mode,
        records: Vec::new(),
        scf_drift: Vec::new(),
        shadow_drift: Vec::new(),
        ion_temperature: Vec::new(),
        transfers: TransferLedger::default(),
    };

    let mut last_nexc = 0.0f64;
    while steps_done < cfg.total_qd_steps {
        let burst = cfg.qd_steps_per_md.min(cfg.total_qd_steps - steps_done);
        for s in 0..burst {
            let obs = qd_step_with_policy(&params, &mut state, &mut scratch, policy);
            last_nexc = obs.nexc;
            if (steps_done + s) % cfg.record_every == 0 {
                result.records.push(obs);
            }
        }
        steps_done += burst;

        result.shadow_drift.push(shadow_drift(&state, params.n_orb));
        sync_with_shadow(&mut result.transfers, params.mesh.len(), params.n_orb, system.len());
        let report = scf_refresh(&params, &mut state);
        result.scf_drift.push(report.defect_before);

        let excitation_fraction = (last_nexc / params.n_electrons()).clamp(0.0, 1.0);
        md.step(&mut system, excitation_fraction);
        result.ion_temperature.push(md.temperature(&system));
        state.vloc = system.local_potential(&params.mesh, cfg.vloc_depth);

        // Checkpoint the boundary state.
        let ck = Checkpoint {
            state: state.clone(),
            system: system.clone(),
            steps_done: steps_done as u64,
        };
        ck.save(&dir.join(format!("dcmesh-{steps_done}.ck")))?;
    }
    Ok(result)
}

fn fresh_start<T: LfdScalar>(
    cfg: &RunConfig,
    params: &dcmesh_lfd::LfdParams,
) -> (dcmesh_qxmd::AtomicSystem, LfdState<T>, usize) {
    let system = pto_supercell(cfg.supercell);
    let vloc: Vec<T> = system.local_potential(&params.mesh, cfg.vloc_depth);
    let mut state = LfdState::<T>::initialize(params, vloc);
    initial_scf(params, &mut state, 3, 1e-10);
    (system, state, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemPreset;
    use mkl_lite::{set_compute_mode, with_compute_mode};

    fn tiny_config() -> RunConfig {
        let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
        cfg.mesh_points = 10;
        cfg.n_orb = 8;
        cfg.n_occ = 4;
        cfg.total_qd_steps = 60;
        cfg.qd_steps_per_md = 20;
        cfg.laser_duration_fs = 0.03;
        cfg.laser_amplitude = 0.4;
        cfg
    }

    #[test]
    fn run_produces_complete_record() {
        set_compute_mode(ComputeMode::Standard);
        let cfg = tiny_config();
        let r = run_simulation::<f32>(&cfg);
        assert_eq!(r.records.len(), 60);
        assert_eq!(r.scf_drift.len(), 3);
        assert_eq!(r.ion_temperature.len(), 3);
        assert_eq!(r.last().step, 60);
        // Monotone time axis.
        for w in r.records.windows(2) {
            assert!(w[1].time_fs > w[0].time_fs);
        }
        // Shadow dynamics kept transfers far below one full Ψ round trip.
        let psi_bytes = (cfg.mesh_points.pow(3) * cfg.n_orb * 8) as u64;
        assert!(r.transfers.total() < psi_bytes, "transfers {}", r.transfers.total());
    }

    #[test]
    fn laser_run_is_physical() {
        set_compute_mode(ComputeMode::Standard);
        let cfg = tiny_config();
        let r = run_simulation::<f64>(&cfg);
        let first = &r.records[0];
        let last = r.last();
        assert!(last.nexc > first.nexc, "no excitation built up");
        assert!(last.nexc < 2.0 * cfg.n_occ as f64, "nexc exceeds electron count");
        assert!(last.ekin > 0.0);
        assert!(r.records.iter().all(|o| o.nexc >= -1e-6), "negative nexc");
    }

    #[test]
    fn modes_produce_distinct_but_close_observables() {
        let cfg = tiny_config();
        let base = with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg));
        let bf16 = with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg));
        let d_ekin = (base.last().ekin - bf16.last().ekin).abs();
        assert!(d_ekin > 0.0, "BF16 produced identical kinetic energy");
        let rel = d_ekin / base.last().ekin.abs().max(1e-30);
        assert!(rel < 0.1, "BF16 kinetic energy deviates {rel}");
    }

    #[test]
    fn record_every_thins_output() {
        set_compute_mode(ComputeMode::Standard);
        let mut cfg = tiny_config();
        cfg.record_every = 5;
        let r = run_simulation::<f32>(&cfg);
        assert_eq!(r.records.len(), 12);
    }

    #[test]
    fn scf_drift_nonzero_under_low_precision() {
        let cfg = tiny_config();
        let r = with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg));
        assert!(
            r.scf_drift.iter().all(|&d| d > 0.0),
            "BF16 bursts should leave measurable drift: {:?}",
            r.scf_drift
        );
    }

    #[test]
    fn checkpointed_run_matches_straight_run() {
        set_compute_mode(ComputeMode::Standard);
        let cfg = tiny_config(); // 60 steps, 20 per MD
        let policy = dcmesh_lfd::PrecisionPolicy::Ambient;
        let straight = run_simulation::<f32>(&cfg);

        let dir = std::env::temp_dir().join(format!("dcmesh-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First invocation: stop after 40 steps by shortening the deck.
        let mut first_leg = cfg.clone();
        first_leg.total_qd_steps = 40;
        run_with_checkpoints::<f32>(&first_leg, &policy, &dir).expect("first leg");
        // Second invocation: full deck resumes from the 40-step checkpoint.
        let second = run_with_checkpoints::<f32>(&cfg, &policy, &dir).expect("second leg");
        assert_eq!(second.records.len(), 20, "resume should run only the tail");

        // The tail must match the straight run bit-for-bit.
        for (got, want) in second.records.iter().zip(&straight.records[40..]) {
            assert_eq!(got.step, want.step);
            assert_eq!(got.ekin.to_bits(), want.ekin.to_bits(), "step {}", got.step);
            assert_eq!(got.nexc.to_bits(), want.nexc.to_bits(), "step {}", got.step);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The production run loop.
//!
//! Mirrors DCMESH's multiple-time-scale splitting: the wave function is
//! initialised by SCF at FP64, then each MD step runs 500 QD steps of LFD
//! (at FP32 plus the active BLAS compute mode — or all-FP64), executes the
//! FP64 SCF refresh, and advances the ions on the shadow potential. The
//! per-QD-step observables form the run record that the Figure 1/2
//! analysis consumes.
//!
//! Every entry point returns [`RunError`] instead of panicking, and the
//! shared burst body ([`run_burst`]) optionally feeds a
//! [`HealthMonitor`] so the [`crate::supervisor`] can detect divergence
//! mid-burst and roll back.

use crate::config::RunConfig;
use crate::error::RunError;
use crate::health::{HealthMonitor, HealthViolation};
use dcmesh_lfd::nonlocal::LfdScalar;
use dcmesh_lfd::policy::PrecisionPolicy;
use dcmesh_lfd::propagator::{qd_step_with_policy, QdScratch};
use dcmesh_lfd::{LfdParams, LfdState, StepObservables};
use dcmesh_qxmd::scf::{initial_scf, scf_refresh};
use dcmesh_qxmd::shadow::{shadow_drift, sync_with_shadow, TransferLedger};
use dcmesh_qxmd::{pto_supercell, AtomicSystem, MdIntegrator};
use mkl_lite::ComputeMode;
use std::path::Path;

/// Environment variable carrying this process's rank / divide-and-conquer
/// domain id. Stamped into the telemetry stream's metadata so the
/// `profile merge` multi-rank merger can tell the streams apart.
pub const DCMESH_RANK_ENV: &str = "DCMESH_RANK";

/// Reads `DCMESH_RANK` into the telemetry sink's rank field. Called by
/// every run entry point. An absent variable leaves the default rank 0;
/// a malformed value is a structured [`RunError::InvalidRank`] so a
/// mis-launched rank fails fast instead of masquerading as rank-unset
/// and polluting another rank's merged timeline.
pub(crate) fn init_rank_from_env() -> Result<(), RunError> {
    match std::env::var(DCMESH_RANK_ENV) {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(rank) => {
                dcmesh_telemetry::sink::set_rank(rank);
                Ok(())
            }
            Err(_) => Err(RunError::InvalidRank { value: raw }),
        },
        Err(std::env::VarError::NotPresent) => Ok(()),
        Err(std::env::VarError::NotUnicode(v)) => {
            Err(RunError::InvalidRank { value: v.to_string_lossy().into_owned() })
        }
    }
}

/// Everything a finished run produced.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Label echoed from the configuration plus the compute mode.
    pub label: String,
    /// Compute mode the BLAS calls ran in.
    pub mode: ComputeMode,
    /// Per-QD-step observables (every `record_every`-th step).
    pub records: Vec<StepObservables>,
    /// Orthonormality defect absorbed by each SCF refresh — the
    /// accumulated low-precision drift per 500-step burst.
    pub scf_drift: Vec<f64>,
    /// Shadow-matrix drift sampled at each MD boundary.
    pub shadow_drift: Vec<f64>,
    /// Ionic temperature (K) per MD step.
    pub ion_temperature: Vec<f64>,
    /// CPU↔GPU transfer ledger (shadow-dynamics accounting).
    pub transfers: TransferLedger,
}

impl RunResult {
    pub(crate) fn new(label: &str, mode: ComputeMode, capacity: usize) -> RunResult {
        RunResult {
            label: format!("{label}/{}", mode.label()),
            mode,
            records: Vec::with_capacity(capacity),
            scf_drift: Vec::new(),
            shadow_drift: Vec::new(),
            ion_temperature: Vec::new(),
            transfers: TransferLedger::default(),
        }
    }

    /// The last recorded observables, or `None` for a run that recorded
    /// nothing (e.g. a resume that found the deck already complete).
    pub fn last(&self) -> Option<&StepObservables> {
        self.records.last()
    }
}

/// Lengths of the result vectors plus the transfer ledger — enough to
/// roll a [`RunResult`] back to an MD-boundary snapshot.
pub(crate) struct ResultMark {
    records: usize,
    scf_drift: usize,
    shadow_drift: usize,
    ion_temperature: usize,
    transfers: TransferLedger,
}

impl ResultMark {
    pub(crate) fn take(result: &RunResult) -> ResultMark {
        ResultMark {
            records: result.records.len(),
            scf_drift: result.scf_drift.len(),
            shadow_drift: result.shadow_drift.len(),
            ion_temperature: result.ion_temperature.len(),
            transfers: result.transfers,
        }
    }

    pub(crate) fn restore(&self, result: &mut RunResult) {
        result.records.truncate(self.records);
        result.scf_drift.truncate(self.scf_drift);
        result.shadow_drift.truncate(self.shadow_drift);
        result.ion_temperature.truncate(self.ion_temperature);
        result.transfers = self.transfers;
    }
}

/// Surfaces a pending ABFT checksum violation as a
/// [`HealthViolation::SilentCorruption`] divergence. Polled after every
/// QD step and after the boundary SCF refresh in supervised runs, so a
/// corrupted GEMM output is caught within one step of the sampled call
/// that detected it — before the next checkpoint can absorb it.
pub(crate) fn poll_abft(step: u64) -> Result<(), RunError> {
    let Some(v) = mkl_lite::take_abft_violation() else { return Ok(()) };
    let violation = HealthViolation::SilentCorruption { detail: v.to_string() };
    dcmesh_telemetry::instant(
        "health_violation",
        vec![
            dcmesh_telemetry::Attr {
                key: "step",
                value: dcmesh_telemetry::AttrValue::U64(step),
            },
            dcmesh_telemetry::Attr {
                key: "detail",
                value: dcmesh_telemetry::AttrValue::Text(violation.to_string()),
            },
        ],
    );
    Err(RunError::Diverged { step, mode: mkl_lite::compute_mode(), violation })
}

/// The excitation fraction the ionic integrator softens its forces
/// with: the latest shadow-channel excitation count over the electron
/// count. Every site that (re)builds an [`MdIntegrator`] mid-trajectory
/// must seed it with this exact value ([`MdIntegrator::resume`]) or the
/// rebuild is not bit-exact.
pub(crate) fn excitation_fraction(last_nexc: f64, params: &LfdParams) -> f64 {
    (last_nexc / params.n_electrons()).clamp(0.0, 1.0)
}

/// One MD burst: `qd_steps_per_md` QD steps (with record thinning),
/// then the boundary work — shadow sync, FP64 SCF refresh, ionic step,
/// potential update. The operation order is exactly the historical run
/// loop's, so checkpointed and supervised runs stay bit-for-bit
/// compatible with straight runs.
///
/// With a monitor attached, each step's observables are checked
/// *before* they are recorded (a diverged step never enters the run
/// record) and the boundary drift figures are checked after the SCF
/// refresh reports them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_burst<T: LfdScalar>(
    cfg: &RunConfig,
    params: &LfdParams,
    policy: &PrecisionPolicy,
    system: &mut AtomicSystem,
    state: &mut LfdState<T>,
    md: &mut MdIntegrator,
    scratch: &mut QdScratch<T>,
    steps_done: &mut usize,
    last_nexc: &mut f64,
    result: &mut RunResult,
    mut monitor: Option<&mut HealthMonitor>,
) -> Result<(), RunError> {
    let burst = cfg.qd_steps_per_md.min(cfg.total_qd_steps - *steps_done);
    let burst_index = *steps_done / cfg.qd_steps_per_md.max(1);
    let mut _burst_span = dcmesh_telemetry::span("burst")
        .attr("burst_index", dcmesh_telemetry::AttrValue::U64(burst_index as u64))
        .attr("qd_steps", dcmesh_telemetry::AttrValue::U64(burst as u64))
        .attr(
            "mode",
            dcmesh_telemetry::AttrValue::Str(
                mkl_lite::compute_mode().env_value().unwrap_or("STANDARD"),
            ),
        )
        .enter();

    // --- LFD: one burst of QD steps on the "GPU" ---
    for s in 0..burst {
        let obs = qd_step_with_policy(params, state, scratch, policy);
        if let Some(mon) = monitor.as_deref_mut() {
            // ABFT first: a corrupted GEMM also corrupts the observables,
            // and the downstream symptom (blowup, NaN) must not be
            // misattributed as a precision problem — SilentCorruption
            // retries the same mode, the health violations escalate.
            poll_abft(obs.step)?;
            mon.check_step(&obs).map_err(|violation| {
                dcmesh_telemetry::instant(
                    "health_violation",
                    vec![
                        dcmesh_telemetry::Attr {
                            key: "step",
                            value: dcmesh_telemetry::AttrValue::U64(obs.step),
                        },
                        dcmesh_telemetry::Attr {
                            key: "detail",
                            value: dcmesh_telemetry::AttrValue::Text(violation.to_string()),
                        },
                    ],
                );
                RunError::Diverged {
                    step: obs.step,
                    mode: mkl_lite::compute_mode(),
                    violation,
                }
            })?;
        }
        *last_nexc = obs.nexc;
        if (*steps_done + s).is_multiple_of(cfg.record_every) {
            result.records.push(obs);
        }
    }
    *steps_done += burst;

    // --- boundary: shadow sync, FP64 SCF refresh, ionic step ---
    let drift = shadow_drift(state, params.n_orb);
    result.shadow_drift.push(drift);
    sync_with_shadow(&mut result.transfers, params.mesh.len(), params.n_orb, system.len());

    // A singular overlap means the state was already destroyed when the
    // boundary arrived; surface it as a divergence so the supervisor's
    // rollback-and-escalate machinery handles it like any other blowup.
    let report = scf_refresh(params, state).map_err(|e| RunError::Diverged {
        step: *steps_done as u64,
        mode: mkl_lite::compute_mode(),
        violation: HealthViolation::SingularOverlap { detail: e.to_string() },
    })?;
    _burst_span.end_attr("scf_drift", dcmesh_telemetry::AttrValue::F64(report.defect_before));
    _burst_span.end_attr("shadow_drift", dcmesh_telemetry::AttrValue::F64(drift));
    result.scf_drift.push(report.defect_before);
    if let Some(mon) = monitor.as_mut() {
        // Same ordering as the step check: checksum evidence outranks
        // the boundary drift symptoms it may have caused.
        poll_abft(*steps_done as u64)?;
        mon.check_boundary(report.defect_before, drift).map_err(|violation| {
            dcmesh_telemetry::instant(
                "health_violation",
                vec![dcmesh_telemetry::Attr {
                    key: "detail",
                    value: dcmesh_telemetry::AttrValue::Text(violation.to_string()),
                }],
            );
            RunError::Diverged {
                step: *steps_done as u64,
                mode: mkl_lite::compute_mode(),
                violation,
            }
        })?;
    }

    md.step(system, excitation_fraction(*last_nexc, params));
    result.ion_temperature.push(md.temperature(system));

    // Ion motion updates the potential the electrons feel.
    state.vloc = system.local_potential(&params.mesh, cfg.vloc_depth);
    Ok(())
}

/// Runs the full simulation at element width `T` (`f32` for the paper's
/// mixed-precision configurations, `f64` for its FP64 baseline) under the
/// *currently active* compute mode. Sweeps use
/// [`mkl_lite::with_compute_mode`] around this call.
pub fn run_simulation<T: LfdScalar>(cfg: &RunConfig) -> Result<RunResult, RunError> {
    run_simulation_with_policy::<T>(cfg, &PrecisionPolicy::Ambient)
}

/// [`run_simulation`] with a per-call-site [`PrecisionPolicy`] — each of
/// the nine BLAS calls per QD step runs in the mode the policy assigns
/// it. This is the mixed-precision configuration space the paper's
/// env-var methodology could not reach (§IV-D).
pub fn run_simulation_with_policy<T: LfdScalar>(
    cfg: &RunConfig,
    policy: &PrecisionPolicy,
) -> Result<RunResult, RunError> {
    cfg.validate()?;
    init_rank_from_env()?;
    // Fail fast on a malformed MKL_BLAS_COMPUTE_MODE before any state is
    // built — a typo'd mode must be a structured error, not a panic deep
    // inside the first BLAS call.
    mkl_lite::try_compute_mode()?;
    let params = cfg.lfd_params();
    params.validate();

    let (mut system, mut state, mut steps_done) = fresh_start::<T>(cfg, &params)?;
    let mut md = MdIntegrator::new(
        &system,
        cfg.qd_steps_per_md as f64 * cfg.dt,
        cfg.ehrenfest_softening,
    );
    let mut scratch = QdScratch::new(&params);

    let mode = mkl_lite::compute_mode();
    let mut result =
        RunResult::new(&cfg.label, mode, cfg.total_qd_steps / cfg.record_every + 1);

    let mut last_nexc = 0.0f64;
    while steps_done < cfg.total_qd_steps {
        run_burst(
            cfg,
            &params,
            policy,
            &mut system,
            &mut state,
            &mut md,
            &mut scratch,
            &mut steps_done,
            &mut last_nexc,
            &mut result,
            None,
        )?;
    }
    Ok(result)
}

/// When (if ever) a checkpointed run should pretend the process died:
/// after the Nth checkpoint write of this invocation, the run stops with
/// [`RunError::SimulatedCrash`], checkpoints intact on disk. The default
/// never crashes. Exists so restart-robustness tests exercise the real
/// resume path instead of hand-built checkpoint files.
#[derive(Clone, Debug, Default)]
pub struct CrashPlan {
    /// Crash after this many MD-boundary checkpoint writes (counted per
    /// invocation, not per deck); `None` disables.
    pub crash_after_bursts: Option<u32>,
}

/// Runs the simulation with periodic checkpointing: a
/// [`crate::checkpoint::Checkpoint`] is written to `dir/dcmesh-<step>.ck`
/// at every MD boundary, and — if a newer checkpoint for this deck shape
/// already exists in `dir` — the run **resumes** from it instead of
/// starting over. Resumed runs continue bit-for-bit identically to an
/// uninterrupted run (guaranteed by the checkpoint tests), so the paper's
/// 2-day-per-mode accuracy runs survive job-time limits without
/// corrupting the deviation analysis.
///
/// A checkpoint that fails to load (truncated, corrupted, wrong deck) is
/// **quarantined** — renamed to `<name>.ck.bad` with a warning — and the
/// next-newest checkpoint is tried, falling back to a fresh start only
/// when none survive.
///
/// Returns the run result covering only the steps executed *in this
/// invocation* (records from before the resume point live in the earlier
/// invocation's output).
pub fn run_with_checkpoints<T: LfdScalar>(
    cfg: &RunConfig,
    policy: &PrecisionPolicy,
    dir: &Path,
) -> Result<RunResult, RunError> {
    run_with_checkpoints_crashing::<T>(cfg, policy, dir, &CrashPlan::default())
}

/// [`run_with_checkpoints`] with a [`CrashPlan`] — the fault-injection
/// entry point restart tests use to kill the run at a chosen boundary.
pub fn run_with_checkpoints_crashing<T: LfdScalar>(
    cfg: &RunConfig,
    policy: &PrecisionPolicy,
    dir: &Path,
    crash: &CrashPlan,
) -> Result<RunResult, RunError> {
    use crate::checkpoint::Checkpoint;

    cfg.validate()?;
    init_rank_from_env()?;
    mkl_lite::try_compute_mode()?;
    let params = cfg.lfd_params();
    params.validate();
    std::fs::create_dir_all(dir)?;

    let (mut system, mut state, mut steps_done, mut last_nexc) =
        match scan_and_load::<T>(dir, &params)? {
            Some(resumed) => resumed,
            None => {
                let (system, state, steps) = fresh_start::<T>(cfg, &params)?;
                (system, state, steps, 0.0)
            }
        };

    // Reseed the integrator's force field with the checkpointed
    // excitation so resume is bit-exact (zero on a fresh start).
    let mut md = MdIntegrator::resume(
        &system,
        cfg.qd_steps_per_md as f64 * cfg.dt,
        cfg.ehrenfest_softening,
        excitation_fraction(last_nexc, &params),
    );
    let mut scratch = QdScratch::new(&params);
    let mode = mkl_lite::compute_mode();
    let mut result = RunResult::new(&cfg.label, mode, 0);

    let mut bursts_this_invocation = 0u32;
    while steps_done < cfg.total_qd_steps {
        run_burst(
            cfg,
            &params,
            policy,
            &mut system,
            &mut state,
            &mut md,
            &mut scratch,
            &mut steps_done,
            &mut last_nexc,
            &mut result,
            None,
        )?;

        // Checkpoint the boundary state.
        let ck = Checkpoint {
            state: state.clone(),
            system: system.clone(),
            steps_done: steps_done as u64,
            nexc: last_nexc,
        };
        ck.save(&dir.join(format!("dcmesh-{steps_done}.ck")))?;

        bursts_this_invocation += 1;
        if crash.crash_after_bursts == Some(bursts_this_invocation) {
            return Err(RunError::SimulatedCrash { steps_done: steps_done as u64 });
        }
    }
    Ok(result)
}

/// Scans `dir` for `dcmesh-<step>.ck` files and loads the newest that
/// decodes and matches the deck. Failures are quarantined (renamed to
/// `.ck.bad`) so a corrupt newest checkpoint cannot wedge every future
/// resume, and older checkpoints are tried in turn.
/// A restart point as the run loops consume it: ionic state, electronic
/// state, QD steps completed, and the boundary excitation count that
/// reseeds the integrator's force field.
pub(crate) type ResumePoint<T> = (AtomicSystem, LfdState<T>, usize, f64);

pub(crate) fn scan_and_load<T: LfdScalar>(
    dir: &Path,
    params: &LfdParams,
) -> Result<Option<ResumePoint<T>>, RunError> {
    use crate::checkpoint::Checkpoint;

    let mut found: Vec<(u64, std::path::PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if let Some(step) = name
            .strip_prefix("dcmesh-")
            .and_then(|r| r.strip_suffix(".ck"))
            .and_then(|r| r.parse::<u64>().ok())
        {
            found.push((step, path));
        }
    }
    found.sort_by_key(|e| std::cmp::Reverse(e.0));

    for (_, path) in found {
        let problem = match Checkpoint::<T>::load(&path) {
            Ok(ck) => match ck.validate(params) {
                Ok(()) => {
                    return Ok(Some((ck.system, ck.state, ck.steps_done as usize, ck.nexc)))
                }
                Err(e) => e.to_string(),
            },
            Err(e) => e.to_string(),
        };
        quarantine(&path, &problem);
    }
    Ok(None)
}

/// Renames a bad checkpoint out of the resume scan's pattern space.
fn quarantine(path: &Path, why: &str) {
    let bad = path.with_extension("ck.bad");
    eprintln!(
        "warning: quarantining unusable checkpoint {} -> {}: {why}",
        path.display(),
        bad.display()
    );
    if let Err(e) = std::fs::rename(path, &bad) {
        eprintln!("warning: could not quarantine {}: {e}", path.display());
    }
}

pub(crate) fn fresh_start<T: LfdScalar>(
    cfg: &RunConfig,
    params: &dcmesh_lfd::LfdParams,
) -> Result<(dcmesh_qxmd::AtomicSystem, LfdState<T>, usize), RunError> {
    let system = pto_supercell(cfg.supercell);
    let vloc: Vec<T> = system.local_potential(&params.mesh, cfg.vloc_depth);
    let mut state = LfdState::<T>::initialize(params, vloc);
    // The plane-wave initial guess always has a well-conditioned overlap,
    // so a singular overlap here points at the deck, not the run — but it
    // must still be an error, not a panic.
    initial_scf(params, &mut state, 3, 1e-10).map_err(|e| RunError::Diverged {
        step: 0,
        mode: mkl_lite::compute_mode(),
        violation: HealthViolation::SingularOverlap { detail: e.to_string() },
    })?;
    Ok((system, state, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemPreset;
    use mkl_lite::{set_compute_mode, with_compute_mode};

    fn tiny_config() -> RunConfig {
        let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
        cfg.mesh_points = 10;
        cfg.n_orb = 8;
        cfg.n_occ = 4;
        cfg.total_qd_steps = 60;
        cfg.qd_steps_per_md = 20;
        cfg.laser_duration_fs = 0.03;
        cfg.laser_amplitude = 0.4;
        cfg
    }

    #[test]
    fn run_produces_complete_record() {
        set_compute_mode(ComputeMode::Standard);
        let cfg = tiny_config();
        let r = run_simulation::<f32>(&cfg).expect("run");
        assert_eq!(r.records.len(), 60);
        assert_eq!(r.scf_drift.len(), 3);
        assert_eq!(r.ion_temperature.len(), 3);
        assert_eq!(r.last().expect("records").step, 60);
        // Monotone time axis.
        for w in r.records.windows(2) {
            assert!(w[1].time_fs > w[0].time_fs);
        }
        // Shadow dynamics kept transfers far below one full Ψ round trip.
        let psi_bytes = (cfg.mesh_points.pow(3) * cfg.n_orb * 8) as u64;
        assert!(r.transfers.total() < psi_bytes, "transfers {}", r.transfers.total());
    }

    #[test]
    fn invalid_config_is_an_error_not_a_panic() {
        let mut cfg = tiny_config();
        cfg.n_occ = cfg.n_orb + 1;
        let e = run_simulation::<f32>(&cfg).unwrap_err();
        assert!(matches!(e, RunError::InvalidConfig(_)), "{e}");
    }

    #[test]
    fn empty_result_has_no_last_record() {
        let r = RunResult::new("x", ComputeMode::Standard, 0);
        assert!(r.last().is_none());
    }

    #[test]
    fn laser_run_is_physical() {
        set_compute_mode(ComputeMode::Standard);
        let cfg = tiny_config();
        let r = run_simulation::<f64>(&cfg).expect("run");
        let first = &r.records[0];
        let last = r.last().expect("records");
        assert!(last.nexc > first.nexc, "no excitation built up");
        assert!(last.nexc < 2.0 * cfg.n_occ as f64, "nexc exceeds electron count");
        assert!(last.ekin > 0.0);
        assert!(r.records.iter().all(|o| o.nexc >= -1e-6), "negative nexc");
    }

    #[test]
    fn modes_produce_distinct_but_close_observables() {
        let cfg = tiny_config();
        let base =
            with_compute_mode(ComputeMode::Standard, || run_simulation::<f32>(&cfg))
                .expect("fp32 run");
        let bf16 =
            with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg))
                .expect("bf16 run");
        let base_ekin = base.last().expect("records").ekin;
        let d_ekin = (base_ekin - bf16.last().expect("records").ekin).abs();
        assert!(d_ekin > 0.0, "BF16 produced identical kinetic energy");
        let rel = d_ekin / base_ekin.abs().max(1e-30);
        assert!(rel < 0.1, "BF16 kinetic energy deviates {rel}");
    }

    #[test]
    fn record_every_thins_output() {
        set_compute_mode(ComputeMode::Standard);
        let mut cfg = tiny_config();
        cfg.record_every = 5;
        let r = run_simulation::<f32>(&cfg).expect("run");
        assert_eq!(r.records.len(), 12);
    }

    #[test]
    fn scf_drift_nonzero_under_low_precision() {
        let cfg = tiny_config();
        let r = with_compute_mode(ComputeMode::FloatToBf16, || run_simulation::<f32>(&cfg))
            .expect("run");
        assert!(
            r.scf_drift.iter().all(|&d| d > 0.0),
            "BF16 bursts should leave measurable drift: {:?}",
            r.scf_drift
        );
    }

    #[test]
    fn checkpointed_run_matches_straight_run() {
        set_compute_mode(ComputeMode::Standard);
        let cfg = tiny_config(); // 60 steps, 20 per MD
        let policy = dcmesh_lfd::PrecisionPolicy::Ambient;
        let straight = run_simulation::<f32>(&cfg).expect("straight run");

        let dir = std::env::temp_dir().join(format!("dcmesh-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First invocation: stop after 40 steps by shortening the deck.
        let mut first_leg = cfg.clone();
        first_leg.total_qd_steps = 40;
        run_with_checkpoints::<f32>(&first_leg, &policy, &dir).expect("first leg");
        // Second invocation: full deck resumes from the 40-step checkpoint.
        let second = run_with_checkpoints::<f32>(&cfg, &policy, &dir).expect("second leg");
        assert_eq!(second.records.len(), 20, "resume should run only the tail");

        // The tail must match the straight run bit-for-bit.
        for (got, want) in second.records.iter().zip(&straight.records[40..]) {
            assert_eq!(got.step, want.step);
            assert_eq!(got.ekin.to_bits(), want.ekin.to_bits(), "step {}", got.step);
            assert_eq!(got.nexc.to_bits(), want.nexc.to_bits(), "step {}", got.step);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulated_crash_stops_after_the_requested_burst() {
        set_compute_mode(ComputeMode::Standard);
        let cfg = tiny_config();
        let policy = dcmesh_lfd::PrecisionPolicy::Ambient;
        let dir = std::env::temp_dir().join(format!("dcmesh-crash-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let crash = CrashPlan { crash_after_bursts: Some(1) };
        let e = run_with_checkpoints_crashing::<f32>(&cfg, &policy, &dir, &crash).unwrap_err();
        assert!(matches!(e, RunError::SimulatedCrash { steps_done: 20 }), "{e}");
        assert!(dir.join("dcmesh-20.ck").exists(), "crash must leave the checkpoint behind");

        // The straight resume completes the deck and matches an
        // uninterrupted run bit-for-bit.
        let straight = run_simulation::<f32>(&cfg).expect("straight run");
        let resumed = run_with_checkpoints::<f32>(&cfg, &policy, &dir).expect("resume");
        assert_eq!(resumed.records.len(), 40);
        for (got, want) in resumed.records.iter().zip(&straight.records[20..]) {
            assert_eq!(got.ekin.to_bits(), want.ekin.to_bits(), "step {}", got.step);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Run-record writers.
//!
//! DCMESH "prints to the wall": each QD step emits
//! `ekin epot etot eexc nexc Aext javg` (artifact A2, in that order).
//! The console writer reproduces those lines; the CSV writer adds a
//! header for downstream plotting.

use dcmesh_lfd::StepObservables;
use std::io::{self, Write};

/// The column order the artifact documents.
pub const COLUMNS: [&str; 9] =
    ["step", "time_fs", "ekin", "epot", "etot", "eexc", "nexc", "aext", "javg"];

/// Formats one record as a DCMESH-style console line.
pub fn console_line(o: &StepObservables) -> String {
    format!(
        "QD {:>7}  t={:8.4} fs  ekin={:+.8e} epot={:+.8e} etot={:+.8e} eexc={:+.8e} nexc={:+.8e} Aext={:+.6e} javg={:+.8e}",
        o.step, o.time_fs, o.ekin, o.epot, o.etot, o.eexc, o.nexc, o.aext, o.javg
    )
}

/// Writes records as CSV with a header.
pub fn write_csv<W: Write>(mut w: W, records: &[StepObservables]) -> io::Result<()> {
    writeln!(w, "{}", COLUMNS.join(","))?;
    for o in records {
        writeln!(
            w,
            "{},{:.6},{:.10e},{:.10e},{:.10e},{:.10e},{:.10e},{:.10e},{:.10e}",
            o.step, o.time_fs, o.ekin, o.epot, o.etot, o.eexc, o.nexc, o.aext, o.javg
        )?;
    }
    Ok(())
}

/// Parses a CSV produced by [`write_csv`] (used by the analysis tools to
/// reload saved reference runs).
pub fn read_csv(text: &str) -> Result<Vec<StepObservables>, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty CSV")?;
    if header.trim() != COLUMNS.join(",") {
        return Err(format!("unexpected CSV header {header:?}"));
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != COLUMNS.len() {
            return Err(format!("row {}: expected {} fields, got {}", i + 2, COLUMNS.len(), fields.len()));
        }
        let num =
            |j: usize| -> Result<f64, String> { fields[j].trim().parse().map_err(|e| format!("row {}: {e}", i + 2)) };
        out.push(StepObservables {
            step: fields[0].trim().parse().map_err(|e| format!("row {}: {e}", i + 2))?,
            time_fs: num(1)?,
            ekin: num(2)?,
            epot: num(3)?,
            etot: num(4)?,
            eexc: num(5)?,
            nexc: num(6)?,
            aext: num(7)?,
            javg: num(8)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<StepObservables> {
        (1..=3)
            .map(|i| StepObservables {
                step: i,
                time_fs: i as f64 * 0.001,
                ekin: 1.5 * i as f64,
                epot: -2.0,
                etot: 1.5 * i as f64 - 2.0,
                eexc: 0.01 * i as f64,
                nexc: 0.001 * i as f64,
                aext: 0.1,
                javg: -1e-5 * i as f64,
            })
            .collect()
    }

    #[test]
    fn csv_roundtrip() {
        let records = sample();
        let mut buf = Vec::new();
        write_csv(&mut buf, &records).unwrap();
        let parsed = read_csv(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed.len(), records.len());
        for (a, b) in parsed.iter().zip(&records) {
            assert_eq!(a.step, b.step);
            assert!((a.ekin - b.ekin).abs() < 1e-12);
            assert!((a.javg - b.javg).abs() < 1e-18);
        }
    }

    #[test]
    fn console_line_has_all_columns() {
        let line = console_line(&sample()[0]);
        for key in ["ekin", "epot", "etot", "eexc", "nexc", "Aext", "javg"] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }

    #[test]
    fn bad_header_rejected() {
        assert!(read_csv("nope\n1,2,3\n").is_err());
    }

    #[test]
    fn short_row_rejected() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &sample()).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("1,2,3\n");
        assert!(read_csv(&text).is_err());
    }
}

//! Checkpoint / restart.
//!
//! The paper's full accuracy runs take two days per compute mode on the
//! GPU; a production framework must survive job-time limits. This module
//! serialises the complete propagation state — wave functions, reference
//! orbitals, eigenvalues, occupations, potential, induced field, clock,
//! and the ionic subsystem — into a versioned little-endian binary
//! format, such that a restored run continues **bit-for-bit** identically
//! (verified by test): essential for a deviation-based precision study,
//! where a restart artefact would masquerade as precision error.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dcmesh_lfd::{LfdParams, LfdState};
use dcmesh_numerics::{Complex, Real};
use dcmesh_qxmd::{AtomicSystem, Species};
use std::fmt;

/// File magic: "DCMESHCK".
const MAGIC: &[u8; 8] = b"DCMESHCK";
/// Format version. Version 3 added the boundary excitation count, which
/// reseeds the resumed integrator's force field — without it a resumed
/// excited trajectory silently diverges from the uninterrupted one on
/// the first half-kick. Version 2 added the payload checksum. Older
/// files are rejected.
const VERSION: u32 = 3;

/// FNV-1a/64 over the payload — detects any bit flip in the body, so a
/// corrupted checkpoint is quarantined at load instead of silently
/// seeding a wrong-but-plausible resumed trajectory. Also reused by
/// [`crate::config::RunConfig::deck_hash`] to fingerprint decks for the
/// ledger archive.
pub(crate) fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A complete restart point.
#[derive(Clone, Debug)]
pub struct Checkpoint<T: Real> {
    /// Electronic state.
    pub state: LfdState<T>,
    /// Ionic state.
    pub system: AtomicSystem,
    /// QD steps completed when the checkpoint was taken.
    pub steps_done: u64,
    /// Shadow-channel excitation count (`nexc`) at the boundary — the
    /// value the last ionic step softened its forces with. Seeds
    /// [`dcmesh_qxmd::MdIntegrator::resume`] so the resumed integrator's
    /// cached force field is bit-identical to the one the interrupted
    /// run carried.
    pub nexc: f64,
}

/// Checkpoint decoding error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

fn err(msg: impl Into<String>) -> CheckpointError {
    CheckpointError(msg.into())
}

/// Element-width marker stored in the header.
fn width_of<T: Real>() -> u8 {
    core::mem::size_of::<T>() as u8
}

fn put_f64_slice(buf: &mut BytesMut, v: &[f64]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        buf.put_f64_le(x);
    }
}

fn get_f64_vec(buf: &mut Bytes) -> Result<Vec<f64>, CheckpointError> {
    if buf.remaining() < 8 {
        return Err(err("truncated length"));
    }
    let n = usize::try_from(buf.get_u64_le()).map_err(|_| err("length overflow"))?;
    let need = n.checked_mul(8).ok_or_else(|| err("length overflow"))?;
    if buf.remaining() < need {
        return Err(err("truncated f64 array"));
    }
    Ok((0..n).map(|_| buf.get_f64_le()).collect())
}

fn put_scalar_slice<T: Real>(buf: &mut BytesMut, v: &[T]) {
    buf.put_u64_le(v.len() as u64);
    for &x in v {
        // Stored at the state's own width to keep restarts bit-exact.
        if width_of::<T>() == 4 {
            buf.put_f32_le(x.to_f64() as f32);
        } else {
            buf.put_f64_le(x.to_f64());
        }
    }
}

fn get_scalar_vec<T: Real>(buf: &mut Bytes) -> Result<Vec<T>, CheckpointError> {
    if buf.remaining() < 8 {
        return Err(err("truncated length"));
    }
    let n = usize::try_from(buf.get_u64_le()).map_err(|_| err("length overflow"))?;
    let w = width_of::<T>() as usize;
    let need = n.checked_mul(w).ok_or_else(|| err("length overflow"))?;
    if buf.remaining() < need {
        return Err(err("truncated scalar array"));
    }
    Ok((0..n)
        .map(|_| {
            if w == 4 {
                T::from_f64(buf.get_f32_le() as f64)
            } else {
                T::from_f64(buf.get_f64_le())
            }
        })
        .collect())
}

fn put_complex_slice<T: Real>(buf: &mut BytesMut, v: &[Complex<T>]) {
    buf.put_u64_le(v.len() as u64);
    for z in v {
        if width_of::<T>() == 4 {
            buf.put_f32_le(z.re.to_f64() as f32);
            buf.put_f32_le(z.im.to_f64() as f32);
        } else {
            buf.put_f64_le(z.re.to_f64());
            buf.put_f64_le(z.im.to_f64());
        }
    }
}

fn get_complex_vec<T: Real>(buf: &mut Bytes) -> Result<Vec<Complex<T>>, CheckpointError> {
    if buf.remaining() < 8 {
        return Err(err("truncated length"));
    }
    let n = usize::try_from(buf.get_u64_le()).map_err(|_| err("length overflow"))?;
    let w = 2 * width_of::<T>() as usize;
    let need = n.checked_mul(w).ok_or_else(|| err("length overflow"))?;
    if buf.remaining() < need {
        return Err(err("truncated complex array"));
    }
    Ok((0..n)
        .map(|_| {
            if width_of::<T>() == 4 {
                Complex {
                    re: T::from_f64(buf.get_f32_le() as f64),
                    im: T::from_f64(buf.get_f32_le() as f64),
                }
            } else {
                Complex { re: T::from_f64(buf.get_f64_le()), im: T::from_f64(buf.get_f64_le()) }
            }
        })
        .collect())
}

fn species_tag(s: Species) -> u8 {
    match s {
        Species::Pb => 0,
        Species::Ti => 1,
        Species::O => 2,
    }
}

fn species_from_tag(t: u8) -> Result<Species, CheckpointError> {
    match t {
        0 => Ok(Species::Pb),
        1 => Ok(Species::Ti),
        2 => Ok(Species::O),
        other => Err(err(format!("unknown species tag {other}"))),
    }
}

impl<T: Real> Checkpoint<T> {
    /// Serialises to bytes: an 8-byte magic, version, element width and
    /// payload checksum, then the checksummed payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.steps_done);
        buf.put_f64_le(self.nexc);

        // Electronic state.
        let st = &self.state;
        put_complex_slice(&mut buf, &st.psi);
        put_complex_slice(&mut buf, &st.psi0);
        put_scalar_slice(&mut buf, &st.occ);
        put_f64_slice(&mut buf, &st.eps);
        put_complex_slice(&mut buf, &st.shadow);
        put_scalar_slice(&mut buf, &st.vloc);
        buf.put_f64_le(st.a_induced);
        buf.put_f64_le(st.a_induced_dot);
        buf.put_f64_le(st.time);
        buf.put_u64_le(st.step);

        // Ionic state.
        let sys = &self.system;
        buf.put_u64_le(sys.species.len() as u64);
        for &s in &sys.species {
            buf.put_u8(species_tag(s));
        }
        put_f64_slice(&mut buf, &sys.positions);
        put_f64_slice(&mut buf, &sys.velocities);
        buf.put_f64_le(sys.box_length);

        let payload = buf.freeze();
        let mut framed = BytesMut::new();
        framed.put_slice(MAGIC);
        framed.put_u32_le(VERSION);
        framed.put_u8(width_of::<T>());
        framed.put_u64_le(fnv1a64(payload.as_ref()));
        framed.put_slice(payload.as_ref());
        framed.freeze()
    }

    /// Deserialises, validating magic, version, element width and the
    /// payload checksum.
    pub fn decode(mut buf: Bytes) -> Result<Checkpoint<T>, CheckpointError> {
        if buf.remaining() < MAGIC.len() + 4 + 1 + 8 + 8 {
            return Err(err("file too short"));
        }
        let mut magic = [0u8; 8];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(err("bad magic (not a DCMESH checkpoint)"));
        }
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(err(format!("unsupported version {version}")));
        }
        let width = buf.get_u8();
        if width != width_of::<T>() {
            return Err(err(format!(
                "element width mismatch: file has {width}-byte reals, caller expects {}",
                width_of::<T>()
            )));
        }
        let checksum = buf.get_u64_le();
        let actual = fnv1a64(buf.as_ref());
        if checksum != actual {
            return Err(err(format!(
                "payload checksum mismatch (stored {checksum:#018x}, computed {actual:#018x}) — \
                 file is corrupt"
            )));
        }
        let steps_done = buf.get_u64_le();
        if buf.remaining() < 8 {
            return Err(err("truncated excitation count"));
        }
        let nexc = buf.get_f64_le();

        let psi = get_complex_vec::<T>(&mut buf)?;
        let psi0 = get_complex_vec::<T>(&mut buf)?;
        let occ = get_scalar_vec::<T>(&mut buf)?;
        let eps = get_f64_vec(&mut buf)?;
        let shadow = get_complex_vec::<T>(&mut buf)?;
        let vloc = get_scalar_vec::<T>(&mut buf)?;
        if buf.remaining() < 4 * 8 {
            return Err(err("truncated trailer"));
        }
        let a_induced = buf.get_f64_le();
        let a_induced_dot = buf.get_f64_le();
        let time = buf.get_f64_le();
        let step = buf.get_u64_le();

        if buf.remaining() < 8 {
            return Err(err("truncated species count"));
        }
        let n_atoms = usize::try_from(buf.get_u64_le()).map_err(|_| err("length overflow"))?;
        if buf.remaining() < n_atoms {
            return Err(err("truncated species list"));
        }
        let species = (0..n_atoms)
            .map(|_| species_from_tag(buf.get_u8()))
            .collect::<Result<Vec<_>, _>>()?;
        let positions = get_f64_vec(&mut buf)?;
        let velocities = get_f64_vec(&mut buf)?;
        if buf.remaining() < 8 {
            return Err(err("truncated box length"));
        }
        let box_length = buf.get_f64_le();

        if positions.len() != 3 * n_atoms || velocities.len() != 3 * n_atoms {
            return Err(err("ionic array sizes inconsistent with atom count"));
        }

        Ok(Checkpoint {
            state: LfdState {
                psi,
                psi0,
                occ,
                eps,
                shadow,
                vloc,
                a_induced,
                a_induced_dot,
                time,
                step,
            },
            system: AtomicSystem { species, positions, velocities, box_length },
            steps_done,
            nexc,
        })
    }

    /// Validates internal consistency against run parameters.
    pub fn validate(&self, params: &LfdParams) -> Result<(), CheckpointError> {
        let expect = params.mesh.len() * params.n_orb;
        if self.state.psi.len() != expect {
            return Err(err(format!(
                "state size {} does not match deck ({} x {})",
                self.state.psi.len(),
                params.mesh.len(),
                params.n_orb
            )));
        }
        if self.state.occ.len() != params.n_orb || self.state.eps.len() != params.n_orb {
            return Err(err("per-orbital array sizes do not match the deck"));
        }
        if self.state.vloc.len() != params.mesh.len() {
            return Err(err("potential size does not match the mesh"));
        }
        Ok(())
    }

    /// Writes to a file, crash-atomically: the bytes go to a `.tmp`
    /// sibling first, are fsynced, and only then renamed into place. A
    /// process killed mid-write can therefore never leave a torn `.ck`
    /// behind — the resume scanner either sees the complete old file, the
    /// complete new file, or a leftover `.tmp` it ignores — which is what
    /// lets crashed ranks of a sharded run resume from a *shared*
    /// checkpoint directory without tripping the quarantine path.
    pub fn save(&self, path: &std::path::Path) -> Result<(), std::io::Error> {
        use std::io::Write;
        let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("checkpoint path {} has no file name", path.display()),
            )
        })?;
        let tmp = path.with_file_name(format!("{name}.tmp"));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(self.encode().as_ref())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Best-effort directory sync so the rename itself survives a
        // power cut; failure here (exotic filesystems) is not fatal.
        if let Some(dir) = path.parent() {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads from a file.
    pub fn load(path: &std::path::Path) -> Result<Checkpoint<T>, Box<dyn std::error::Error>> {
        let data = std::fs::read(path)?;
        Ok(Checkpoint::decode(Bytes::from(data))?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_lfd::propagator::{qd_step, QdScratch};
    use dcmesh_lfd::state::cosine_potential;
    use dcmesh_lfd::{LaserPulse, Mesh3};
    use dcmesh_qxmd::pto_supercell;
    use mkl_lite::{set_compute_mode, ComputeMode};

    fn params() -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(9, 0.6),
            n_orb: 6,
            n_occ: 3,
            dt: 0.02,
            vnl_strength: 0.2,
            taylor_order: 4,
            laser: LaserPulse { amplitude: 0.3, omega: 0.4, duration: 100.0, phase: 0.0 },
            induced_coupling: 1e-4,
        }
    }

    fn make_checkpoint() -> (LfdParams, Checkpoint<f32>) {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut state = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, 0.2));
        let mut scratch = QdScratch::new(&p);
        for _ in 0..7 {
            qd_step(&p, &mut state, &mut scratch);
        }
        let ck = Checkpoint { state, system: pto_supercell(2), steps_done: 7, nexc: 0.125 };
        (p, ck)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (_, ck) = make_checkpoint();
        let bytes = ck.encode();
        let back = Checkpoint::<f32>::decode(bytes).expect("decode");
        assert_eq!(back.steps_done, 7);
        assert_eq!(back.nexc.to_bits(), ck.nexc.to_bits());
        assert_eq!(back.state.step, ck.state.step);
        assert_eq!(back.state.time.to_bits(), ck.state.time.to_bits());
        for (a, b) in back.state.psi.iter().zip(&ck.state.psi) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        assert_eq!(back.system.positions, ck.system.positions);
        assert_eq!(back.system.species, ck.system.species);
    }

    #[test]
    fn restart_continues_bitwise_identically() {
        // 7 + 5 steps straight through vs 7, checkpoint, restore, 5 more.
        set_compute_mode(ComputeMode::Standard);
        let (p, ck) = make_checkpoint();
        let mut straight = ck.state.clone();
        let mut scratch = QdScratch::new(&p);
        let mut straight_obs = Vec::new();
        for _ in 0..5 {
            straight_obs.push(qd_step(&p, &mut straight, &mut scratch));
        }
        let mut restored = Checkpoint::<f32>::decode(ck.encode()).expect("decode").state;
        let mut scratch2 = QdScratch::new(&p);
        for (i, want) in straight_obs.iter().enumerate() {
            let got = qd_step(&p, &mut restored, &mut scratch2);
            assert_eq!(got.ekin.to_bits(), want.ekin.to_bits(), "step {i}");
            assert_eq!(got.nexc.to_bits(), want.nexc.to_bits(), "step {i}");
            assert_eq!(got.javg.to_bits(), want.javg.to_bits(), "step {i}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let (_, ck) = make_checkpoint();
        let mut raw = ck.encode().to_vec();
        raw[0] ^= 0xFF;
        let e = Checkpoint::<f32>::decode(Bytes::from(raw)).unwrap_err();
        assert!(e.0.contains("magic"), "{e}");
    }

    #[test]
    fn payload_bitflip_detected() {
        let (_, ck) = make_checkpoint();
        let header = MAGIC.len() + 4 + 1 + 8;
        let mut raw = ck.encode().to_vec();
        // Flip a single bit deep inside the wave-function payload — a
        // plausible value that only the checksum can catch.
        let idx = header + (raw.len() - header) / 2;
        raw[idx] ^= 0x01;
        let e = Checkpoint::<f32>::decode(Bytes::from(raw)).unwrap_err();
        assert!(e.0.contains("checksum"), "{e}");
        // A flipped checksum field itself is likewise rejected.
        let mut raw2 = ck.encode().to_vec();
        raw2[header - 1] ^= 0x80;
        let e2 = Checkpoint::<f32>::decode(Bytes::from(raw2)).unwrap_err();
        assert!(e2.0.contains("checksum"), "{e2}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let (_, ck) = make_checkpoint();
        let e = Checkpoint::<f64>::decode(ck.encode()).unwrap_err();
        assert!(e.0.contains("width"), "{e}");
    }

    #[test]
    fn truncation_rejected_not_panicking() {
        let (_, ck) = make_checkpoint();
        let raw = ck.encode();
        for cut in [0usize, 5, 13, 64, raw.len() / 2, raw.len() - 1] {
            let sliced = raw.slice(..cut);
            assert!(
                Checkpoint::<f32>::decode(sliced).is_err(),
                "truncation at {cut} must error"
            );
        }
    }

    #[test]
    fn validate_against_deck() {
        let (p, ck) = make_checkpoint();
        ck.validate(&p).expect("consistent");
        let mut wrong = params();
        wrong.n_orb = 5;
        wrong.n_occ = 2;
        assert!(ck.validate(&wrong).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let (_, ck) = make_checkpoint();
        let dir = std::env::temp_dir().join("dcmesh-ck-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("state.ck");
        ck.save(&path).expect("save");
        let back = Checkpoint::<f32>::load(&path).expect("load");
        assert_eq!(back.steps_done, ck.steps_done);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_tmp_sibling() {
        let (_, ck) = make_checkpoint();
        let dir = std::env::temp_dir().join(format!("dcmesh-ck-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("dcmesh-7.ck");
        ck.save(&path).expect("save");
        // The staging file must be gone and the final file complete.
        assert!(!dir.join("dcmesh-7.ck.tmp").exists(), "tmp sibling left behind");
        Checkpoint::<f32>::load(&path).expect("renamed file decodes");
        // Overwriting an existing checkpoint goes through the same path.
        ck.save(&path).expect("overwrite");
        assert!(!dir.join("dcmesh-7.ck.tmp").exists());
        // A leftover `.tmp` from a hypothetical mid-write kill is invisible
        // to the resume scanner's `dcmesh-<step>.ck` pattern.
        std::fs::write(dir.join("dcmesh-9.ck.tmp"), b"torn").expect("plant torn tmp");
        let p = params();
        let found = crate::runner::scan_and_load::<f32>(&dir, &p).expect("scan");
        assert!(found.is_some(), "real checkpoint still resumes");
        assert!(dir.join("dcmesh-9.ck.tmp").exists(), "tmp must not be quarantined/consumed");
        std::fs::remove_dir_all(&dir).ok();
    }
}

//! Multi-rank sharded execution with rank-failure detection and
//! checkpoint-replay recovery.
//!
//! The paper ran DCMESH on a single GPU stack; `ext_multistack` only
//! *models* multi-stack scaling. This module actually runs distributed:
//! a **coordinator** process shards the divide-and-conquer domains
//! (contiguous blocks of the orbital space, each an independently
//! propagated sub-deck) across N **worker ranks** — real OS processes —
//! and coordinates them through a shared run directory:
//!
//! ```text
//! run_dir/
//!   MANIFEST.json            deck + shard parameters (workers read this)
//!   coord.log                append-only coordination log (JSONL)
//!   queue/domain-<d>.todo            unclaimed domain
//!   queue/domain-<d>.claimed.rank<r> domain claimed by rank r
//!   done/domain-<d>.json             completed domain + final observables
//!   ck/domain-<d>/dcmesh-<step>.ck   shared v2 checkpoints (crash-atomic)
//!   hb/rank-<r>.hb           heartbeat (atomically renamed; mtime = liveness)
//!   hb/rank-<r>.exit         clean-completion marker
//!   trace/events-rank<r>.jsonl       per-rank telemetry for `profile merge`
//!   trace/events-coord.jsonl         coordinator lifecycle events
//!   trace/metrics-coord.prom         heartbeat-miss / restart / degraded counters
//!   report.json              final [`ShardReport`]
//! ```
//!
//! Robustness is the headline:
//!
//! * **Dead-rank detection** is by heartbeat timeout: every worker runs a
//!   heartbeat thread atomically rewriting its heartbeat file; the
//!   coordinator watches the file's *mtime* for change and declares a
//!   rank dead when it stops changing for
//!   [`ShardConfig::heartbeat_timeout`], measured on the coordinator's
//!   own monotonic clock. Stamps are compared only against the previous
//!   stamp — never against wall-clock time — so worker and coordinator
//!   clocks need not agree, and a worker whose heartbeat *content* is
//!   torn or unparsable but still being rewritten counts as alive. A
//!   killed *or hung* process looks the same either way. Process exit
//!   status alone is never trusted as liveness.
//! * **Respawn with bounded retries and exponential backoff**: a dead
//!   rank is relaunched up to [`ShardConfig::max_respawns`] times, with
//!   `backoff_base · 2^k` (capped) between attempts. Its claimed domains
//!   stay claimed across the respawn, so the recovered rank adopts them,
//!   resumes from the newest shared checkpoint (through the existing
//!   quarantine-and-fallback loader) and replays the in-flight burst.
//! * **Graceful degradation**: a rank that exhausts its respawn budget is
//!   marked degraded and its claimed domains are returned to the queue,
//!   where the surviving ranks pick them up — the run completes on fewer
//!   ranks instead of hanging or aborting.
//! * **Deterministic fault injection**: a [`RankKillPlan`] ("kill rank r
//!   at burst b", mirroring [`crate::runner::CrashPlan`] /
//!   `mkl_lite::FaultPlan`) makes every recovery path testable — the
//!   chaos tests assert bit-identical observables against an
//!   uninterrupted run.
//!
//! Each worker keeps the full per-rank supervisor (health monitoring,
//! burst rollback, the BF16→…→FP32 escalation ladder) via
//! [`run_supervised_observed`]; domain results are fully determined by
//! the domain deck, so *which* rank completes a domain never changes the
//! numbers — that is what makes work stealing and replay safe.

use crate::config::RunConfig;
use crate::runner::DCMESH_RANK_ENV;
use crate::supervisor::{run_supervised_observed, BurstObserver, SupervisorConfig};
use dcmesh_numerics::reduce;
use dcmesh_telemetry::json::{self, JsonValue};
use dcmesh_telemetry::{export, instant, metrics, sink, Attr, AttrValue};
use mkl_lite::ComputeMode;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// Set to `1` in a worker process's environment by the coordinator.
/// Binaries that can serve as workers call [`maybe_run_worker`] first
/// thing in `main`.
pub const SHARD_WORKER_ENV: &str = "DCMESH_SHARD_WORKER";
/// The shared run directory.
pub const SHARD_DIR_ENV: &str = "DCMESH_SHARD_DIR";
/// 0-based incarnation of this rank process (0 = first spawn).
pub const SHARD_INCARNATION_ENV: &str = "DCMESH_SHARD_INCARNATION";
/// [`RankKillPlan`] spec passed through to workers.
pub const SHARD_KILL_ENV: &str = "DCMESH_SHARD_KILL";
/// Optional `mkl_lite::BitFlipPlan` spec every worker installs at
/// startup — silent-data-corruption injection for the CI chaos smoke.
/// Workers inherit the coordinator's environment, so exporting this on
/// the coordinator arms the whole fleet.
pub const SHARD_BITFLIP_ENV: &str = "DCMESH_BITFLIP";
/// Optional ABFT sampling period ([`SupervisorConfig::abft_check_period`])
/// applied in every worker's supervisor; unset, empty or `0` = off.
pub const SHARD_ABFT_ENV: &str = "DCMESH_ABFT_PERIOD";
/// Optional replay-verification cadence
/// ([`SupervisorConfig::verify_bursts`]) applied in every worker's
/// supervisor; unset, empty or `0` = off.
pub const SHARD_VERIFY_ENV: &str = "DCMESH_VERIFY_BURSTS";

/// Exit code of a worker dying to an injected [`RankKillPlan`] kill —
/// distinguishable in logs from a clean exit or a panic.
pub const KILL_EXIT_CODE: i32 = 86;

// ---------------------------------------------------------------------------
// Errors

/// Any failure of the sharded-run machinery itself (worker-side numeric
/// failures are *not* here — they land in the affected domain's
/// [`DomainOutcome`] so one bad domain cannot abort the fleet).
#[derive(Debug)]
pub enum ShardError {
    /// Run-directory or coordination-file I/O failed.
    Io(std::io::Error),
    /// The shard configuration is unusable.
    InvalidConfig(String),
    /// `MANIFEST.json` (or another coordination file) did not parse.
    Manifest(String),
    /// Every rank is dead with its respawn budget exhausted while
    /// domains remain unfinished.
    RanksExhausted {
        /// Domains still without a done record.
        unfinished: usize,
    },
    /// The coordinator hit [`ShardConfig::max_wall`].
    WallClockExceeded {
        /// Configured limit.
        limit: Duration,
        /// Domains still without a done record.
        unfinished: usize,
    },
    /// A worker-side error outside any domain run (bad manifest, bad
    /// environment).
    Worker(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io(e) => write!(f, "shard I/O: {e}"),
            ShardError::InvalidConfig(m) => write!(f, "invalid shard configuration: {m}"),
            ShardError::Manifest(m) => write!(f, "shard manifest: {m}"),
            ShardError::RanksExhausted { unfinished } => write!(
                f,
                "all ranks dead with respawn budgets exhausted; {unfinished} domain(s) unfinished"
            ),
            ShardError::WallClockExceeded { limit, unfinished } => write!(
                f,
                "sharded run exceeded the {:.1}s wall-clock limit with {unfinished} domain(s) \
                 unfinished",
                limit.as_secs_f64()
            ),
            ShardError::Worker(m) => write!(f, "shard worker: {m}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Rank-kill fault injection

/// One scheduled rank death.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankKill {
    /// Rank to kill.
    pub rank: usize,
    /// 0-based index of the burst — counted across all domains the rank
    /// executes within one incarnation — at whose start the process
    /// hard-exits. The burst is in flight (not yet checkpointed) when
    /// the kill fires, so recovery must replay it.
    pub burst: u64,
    /// Kill **every** incarnation at that burst (exhausts the respawn
    /// budget and forces the degradation path) instead of only the
    /// first.
    pub every_incarnation: bool,
}

/// Deterministic "kill rank r at burst b" schedules, mirroring
/// [`crate::runner::CrashPlan`] and `mkl_lite::FaultPlan`: rank-level
/// fault injection so every recovery path is testable. The spec grammar
/// is a comma list of `r@b` (first incarnation only) or `r@b*` (every
/// incarnation), e.g. `"1@2,3@0*"`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankKillPlan {
    /// Scheduled kills; empty = never kill.
    pub kills: Vec<RankKill>,
}

impl RankKillPlan {
    /// Parses the `r@b[*][,r@b[*]...]` spec; an empty string is the
    /// empty plan.
    pub fn parse(spec: &str) -> Result<RankKillPlan, ShardError> {
        let mut kills = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (body, every) = match part.strip_suffix('*') {
                Some(b) => (b, true),
                None => (part, false),
            };
            let (r, b) = body.split_once('@').ok_or_else(|| {
                ShardError::InvalidConfig(format!("kill spec {part:?}: expected r@b or r@b*"))
            })?;
            let rank = r.trim().parse::<usize>().map_err(|_| {
                ShardError::InvalidConfig(format!("kill spec {part:?}: bad rank {r:?}"))
            })?;
            let burst = b.trim().parse::<u64>().map_err(|_| {
                ShardError::InvalidConfig(format!("kill spec {part:?}: bad burst {b:?}"))
            })?;
            kills.push(RankKill { rank, burst, every_incarnation: every });
        }
        Ok(RankKillPlan { kills })
    }

    /// Renders back to the spec grammar (for the worker environment).
    pub fn to_spec(&self) -> String {
        self.kills
            .iter()
            .map(|k| {
                format!("{}@{}{}", k.rank, k.burst, if k.every_incarnation { "*" } else { "" })
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// The burst at which `rank` (in the given incarnation) should die,
    /// if any.
    pub fn kill_burst_for(&self, rank: usize, incarnation: u32) -> Option<u64> {
        self.kills
            .iter()
            .find(|k| k.rank == rank && (k.every_incarnation || incarnation == 0))
            .map(|k| k.burst)
    }
}

// ---------------------------------------------------------------------------
// Configuration

/// Everything a sharded run needs. Durations are coordinator-side knobs;
/// the deck and domain count are shared with workers via the manifest.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// The global deck; domains are carved out of its orbital space by
    /// [`domain_config`].
    pub deck: RunConfig,
    /// Worker processes to spawn.
    pub ranks: usize,
    /// Divide-and-conquer domains to shard. Must be ≥ `ranks` for every
    /// rank to get initial work, and ≤ `deck.n_occ` so every domain
    /// holds at least one occupied orbital.
    pub n_domains: usize,
    /// Compute mode each per-rank supervisor starts in (its escalation
    /// ladder still applies on divergence).
    pub start_mode: ComputeMode,
    /// Shared coordination directory.
    pub run_dir: PathBuf,
    /// Worker executable; defaults to `current_exe()` (the coordinator
    /// binary doubles as the worker via [`maybe_run_worker`]). Tests
    /// point this at the `dcmesh-shard` binary.
    pub worker_exe: Option<PathBuf>,
    /// How often workers bump their heartbeat.
    pub heartbeat_interval: Duration,
    /// Heartbeat silence after which a rank is declared dead. Must
    /// comfortably exceed `heartbeat_interval`.
    pub heartbeat_timeout: Duration,
    /// Coordinator poll cadence (and worker idle-wait cadence).
    pub poll_interval: Duration,
    /// Respawns allowed per rank before it is degraded away.
    pub max_respawns: u32,
    /// First respawn delay; doubles per subsequent respawn of the same
    /// rank.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Hard wall-clock limit for the whole run (`None` = unlimited).
    /// Keeps a wedged fleet from hanging CI forever.
    pub max_wall: Option<Duration>,
    /// Deterministic rank-death schedule (testing only; default never
    /// kills).
    pub kill_plan: RankKillPlan,
    /// Passed through to each worker's [`SupervisorConfig`].
    pub deescalate_after: Option<u32>,
}

impl ShardConfig {
    /// A configuration with production-lean timing defaults.
    pub fn new(deck: RunConfig, ranks: usize, n_domains: usize, run_dir: PathBuf) -> ShardConfig {
        ShardConfig {
            deck,
            ranks,
            n_domains,
            start_mode: ComputeMode::Standard,
            run_dir,
            worker_exe: None,
            heartbeat_interval: Duration::from_millis(250),
            heartbeat_timeout: Duration::from_secs(3),
            poll_interval: Duration::from_millis(50),
            max_respawns: 2,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            max_wall: Some(Duration::from_secs(600)),
            kill_plan: RankKillPlan::default(),
            deescalate_after: None,
        }
    }

    fn validate(&self) -> Result<(), ShardError> {
        let err = |m: String| Err(ShardError::InvalidConfig(m));
        if self.ranks == 0 {
            return err("ranks must be positive".into());
        }
        if self.n_domains < self.ranks {
            return err(format!(
                "{} domains cannot feed {} ranks (every rank needs initial work)",
                self.n_domains, self.ranks
            ));
        }
        if self.heartbeat_timeout < self.heartbeat_interval * 2 {
            return err("heartbeat_timeout must be at least 2x heartbeat_interval".into());
        }
        // Validates domain count against the deck (and each sub-deck).
        for d in 0..self.n_domains {
            domain_config(&self.deck, d, self.n_domains)?;
        }
        Ok(())
    }
}

/// Balanced contiguous split: part `idx` of `total` split `parts` ways
/// (remainder front-loaded).
fn split_part(total: usize, parts: usize, idx: usize) -> usize {
    total / parts + usize::from(idx < total % parts)
}

/// The deck for divide-and-conquer domain `domain` of `n_domains`: a
/// balanced contiguous block of the orbital space, propagated as an
/// independent sub-deck (block orthonormalisation — the same
/// approximation the divide step of the DC solver makes spatially).
/// Because `n_occ ≤ n_orb` and both splits front-load their remainders,
/// every domain keeps `n_occ ≤ n_orb`.
pub fn domain_config(
    base: &RunConfig,
    domain: usize,
    n_domains: usize,
) -> Result<RunConfig, ShardError> {
    if n_domains == 0 || domain >= n_domains {
        return Err(ShardError::InvalidConfig(format!(
            "domain {domain} out of range for {n_domains} domain(s)"
        )));
    }
    if n_domains > base.n_occ {
        return Err(ShardError::InvalidConfig(format!(
            "{} domains but only {} occupied orbitals — every domain needs at least one",
            n_domains, base.n_occ
        )));
    }
    let mut cfg = base.clone();
    cfg.label = format!("{}~dom{domain}", base.label);
    cfg.n_orb = split_part(base.n_orb, n_domains, domain);
    cfg.n_occ = split_part(base.n_occ, n_domains, domain);
    cfg.validate()
        .map_err(|e| ShardError::InvalidConfig(format!("domain {domain} deck: {e}")))?;
    Ok(cfg)
}

// ---------------------------------------------------------------------------
// Run-directory layout

fn queue_dir(run: &Path) -> PathBuf {
    run.join("queue")
}
fn done_dir(run: &Path) -> PathBuf {
    run.join("done")
}
fn hb_dir(run: &Path) -> PathBuf {
    run.join("hb")
}
fn trace_dir(run: &Path) -> PathBuf {
    run.join("trace")
}
fn ck_dir(run: &Path, domain: usize) -> PathBuf {
    run.join("ck").join(format!("domain-{domain}"))
}
fn todo_path(run: &Path, domain: usize) -> PathBuf {
    queue_dir(run).join(format!("domain-{domain}.todo"))
}
fn claimed_path(run: &Path, domain: usize, rank: usize) -> PathBuf {
    queue_dir(run).join(format!("domain-{domain}.claimed.rank{rank}"))
}
fn done_path(run: &Path, domain: usize) -> PathBuf {
    done_dir(run).join(format!("domain-{domain}.json"))
}
fn hb_path(run: &Path, rank: usize) -> PathBuf {
    hb_dir(run).join(format!("rank-{rank}.hb"))
}
fn exit_path(run: &Path, rank: usize) -> PathBuf {
    hb_dir(run).join(format!("rank-{rank}.exit"))
}
fn manifest_path(run: &Path) -> PathBuf {
    run.join("MANIFEST.json")
}
/// Path of the per-rank telemetry dump `profile merge` consumes.
pub fn rank_events_path(run: &Path, rank: usize) -> PathBuf {
    trace_dir(run).join(format!("events-rank{rank}.jsonl"))
}
/// Path of the per-rank precision-ledger snapshot `profile archive`
/// merges into one cross-rank ledger when folding a sharded run.
pub fn rank_ledger_path(run: &Path, rank: usize) -> PathBuf {
    trace_dir(run).join(format!("ledger-rank{rank}.json"))
}
/// Path of the final machine-readable [`ShardReport`].
pub fn report_path(run: &Path) -> PathBuf {
    run.join("report.json")
}

/// Parses `domain-<d>.<suffix>` names back to the domain id.
fn domain_of(name: &str, suffix: &str) -> Option<usize> {
    name.strip_prefix("domain-")?.strip_suffix(suffix)?.parse().ok()
}

/// Atomically writes `content` (tmp sibling + rename) so readers never
/// observe a torn file.
fn write_atomic(path: &Path, content: &str) -> Result<(), std::io::Error> {
    let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let tmp = path.with_file_name(format!("{name}.wtmp"));
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

fn count_done(run: &Path) -> Result<usize, std::io::Error> {
    let mut n = 0;
    for entry in fs::read_dir(done_dir(run))? {
        let name = entry?.file_name();
        if domain_of(&name.to_string_lossy(), ".json").is_some() {
            n += 1;
        }
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Manifest

struct Manifest {
    deck: RunConfig,
    n_domains: usize,
    ranks: usize,
    start_mode: ComputeMode,
    heartbeat_interval: Duration,
    poll_interval: Duration,
    deescalate_after: Option<u32>,
}

impl Manifest {
    fn write(cfg: &ShardConfig) -> Result<(), ShardError> {
        let deck_text = cfg
            .deck
            .to_deck_text()
            .map_err(|e| ShardError::InvalidConfig(format!("deck does not round-trip: {e}")))?;
        let deesc = match cfg.deescalate_after {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let body = format!(
            "{{\"deck\":{},\"n_domains\":{},\"ranks\":{},\"start_mode\":{},\
             \"heartbeat_interval_ms\":{},\"poll_interval_ms\":{},\"deescalate_after\":{}}}",
            json::escape_string(&deck_text),
            cfg.n_domains,
            cfg.ranks,
            json::escape_string(cfg.start_mode.env_value().unwrap_or("STANDARD")),
            cfg.heartbeat_interval.as_millis(),
            cfg.poll_interval.as_millis(),
            deesc,
        );
        write_atomic(&manifest_path(&cfg.run_dir), &body)?;
        Ok(())
    }

    fn read(run: &Path) -> Result<Manifest, ShardError> {
        let text = fs::read_to_string(manifest_path(run))?;
        let doc = json::parse(&text)
            .map_err(|e| ShardError::Manifest(format!("MANIFEST.json does not parse: {e:?}")))?;
        let field = |k: &str| {
            doc.get(k).ok_or_else(|| ShardError::Manifest(format!("missing field {k:?}")))
        };
        let deck_text = field("deck")?
            .as_str()
            .ok_or_else(|| ShardError::Manifest("deck is not a string".into()))?;
        let deck = RunConfig::parse(deck_text)
            .map_err(|e| ShardError::Manifest(format!("embedded deck: {e}")))?;
        let num = |k: &str| -> Result<u64, ShardError> {
            field(k)?
                .as_f64()
                .map(|v| v as u64)
                .ok_or_else(|| ShardError::Manifest(format!("{k} is not a number")))
        };
        let mode_s = field("start_mode")?
            .as_str()
            .ok_or_else(|| ShardError::Manifest("start_mode is not a string".into()))?;
        let start_mode = ComputeMode::from_env_value(mode_s)
            .map_err(|e| ShardError::Manifest(format!("start_mode: {e}")))?;
        let deescalate_after = match doc.get("deescalate_after") {
            Some(JsonValue::Null) | None => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| {
                ShardError::Manifest("deescalate_after is not a number".into())
            })? as u32),
        };
        Ok(Manifest {
            deck,
            n_domains: num("n_domains")? as usize,
            ranks: num("ranks")? as usize,
            start_mode,
            heartbeat_interval: Duration::from_millis(num("heartbeat_interval_ms")?),
            poll_interval: Duration::from_millis(num("poll_interval_ms")?),
            deescalate_after,
        })
    }
}

// ---------------------------------------------------------------------------
// Telemetry

/// Heartbeat timeouts declared by the coordinator across this process.
pub fn heartbeat_miss_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        metrics::counter(
            "shard_heartbeat_misses_total",
            "rank deaths declared via heartbeat timeout",
        )
    })
}

/// Rank respawns performed by the coordinator across this process.
pub fn rank_restart_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        metrics::counter("shard_rank_restarts_total", "dead ranks respawned by the coordinator")
    })
}

/// Ranks degraded away (respawn budget exhausted) across this process.
pub fn rank_degraded_counter() -> &'static Arc<metrics::Counter> {
    static C: OnceLock<Arc<metrics::Counter>> = OnceLock::new();
    C.get_or_init(|| {
        metrics::counter(
            "shard_ranks_degraded_total",
            "ranks removed after exhausting their respawn budget",
        )
    })
}

fn rank_instant(name: &'static str, rank: usize, incarnation: u32) {
    instant(
        name,
        vec![
            Attr { key: "rank", value: AttrValue::U64(rank as u64) },
            Attr { key: "incarnation", value: AttrValue::U64(incarnation as u64) },
        ],
    );
}

// ---------------------------------------------------------------------------
// Coordination log

/// Append-only JSONL coordination log (`coord.log`). One writer (the
/// coordinator); workers never touch it — their channel is the queue and
/// heartbeat files.
struct CoordLog {
    file: fs::File,
    t0: Instant,
}

impl CoordLog {
    fn open(run: &Path) -> Result<CoordLog, std::io::Error> {
        let file = fs::OpenOptions::new().create(true).append(true).open(run.join("coord.log"))?;
        Ok(CoordLog { file, t0: Instant::now() })
    }

    /// `fields` are pre-rendered JSON values (numbers or quoted strings).
    fn log(&mut self, event: &str, fields: &[(&str, String)]) {
        let mut line = format!(
            "{{\"t_ms\":{},\"event\":{}",
            self.t0.elapsed().as_millis(),
            json::escape_string(event)
        );
        for (k, v) in fields {
            line.push_str(&format!(",{}:{}", json::escape_string(k), v));
        }
        line.push_str("}\n");
        // A lost log line must not take the run down.
        let _ = self.file.write_all(line.as_bytes());
        let _ = self.file.flush();
    }
}

// ---------------------------------------------------------------------------
// Worker

/// If this process was launched as a shard worker (the coordinator set
/// [`SHARD_WORKER_ENV`]), runs the worker protocol to completion and
/// **exits the process**; returns immediately otherwise. Worker-capable
/// binaries (`dcmesh-shard`) call this first thing in `main`.
pub fn maybe_run_worker() {
    if std::env::var(SHARD_WORKER_ENV).as_deref() != Ok("1") {
        return;
    }
    match worker_main_from_env() {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("shard worker: fatal: {e}");
            std::process::exit(1);
        }
    }
}

fn req_env(key: &str) -> Result<String, ShardError> {
    std::env::var(key).map_err(|_| ShardError::Worker(format!("missing environment {key}")))
}

/// An optional positive-integer knob from the environment (absent,
/// empty, unparsable, or zero all mean "off").
fn env_period(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse::<u64>().ok().filter(|&v| v > 0)
}

fn worker_main_from_env() -> Result<(), ShardError> {
    let run_dir = PathBuf::from(req_env(SHARD_DIR_ENV)?);
    let rank: usize = req_env(DCMESH_RANK_ENV)?
        .trim()
        .parse()
        .map_err(|_| ShardError::Worker(format!("bad {DCMESH_RANK_ENV}")))?;
    let incarnation: u32 = req_env(SHARD_INCARNATION_ENV)?
        .trim()
        .parse()
        .map_err(|_| ShardError::Worker(format!("bad {SHARD_INCARNATION_ENV}")))?;
    let kill = RankKillPlan::parse(&std::env::var(SHARD_KILL_ENV).unwrap_or_default())?;
    worker_main(&run_dir, rank, incarnation, &kill)
}

/// Shared worker progress the heartbeat thread publishes.
struct HbState {
    seq: AtomicU64,
    bursts: AtomicU64,
    /// Current domain, `u64::MAX` when idle.
    domain: AtomicU64,
    stop: AtomicBool,
}

fn write_heartbeat(run: &Path, rank: usize, pid: u32, hb: &HbState) {
    let seq = hb.seq.fetch_add(1, Ordering::Relaxed) + 1;
    let domain = hb.domain.load(Ordering::Relaxed);
    let body = format!(
        "{{\"seq\":{seq},\"pid\":{pid},\"bursts\":{},\"domain\":{}}}",
        hb.bursts.load(Ordering::Relaxed),
        if domain == u64::MAX { "null".to_string() } else { domain.to_string() },
    );
    let _ = write_atomic(&hb_path(run, rank), &body);
}

/// The burst observer a worker attaches to each supervised domain run:
/// bumps the heartbeat's progress counters, fires the deterministic
/// kill point, and flushes the rank's accumulated telemetry to its
/// event stream at every commit so `profile watch` can tail the run
/// live. Burst counting spans domains within one incarnation.
struct WorkerObserver {
    hb: Arc<HbState>,
    kill_at: Option<u64>,
    rank: usize,
    run: PathBuf,
}

impl BurstObserver for WorkerObserver {
    fn burst_starting(&mut self, _burst_index: u64, _steps_done: u64) {
        let n = self.hb.bursts.fetch_add(1, Ordering::Relaxed);
        if self.kill_at == Some(n) {
            // A real death, not an error return: the heartbeat thread
            // dies with the process and the coordinator must notice via
            // the timeout. The burst that was about to run is in flight
            // and uncheckpointed — recovery replays it.
            eprintln!("shard worker rank {}: injected kill at burst {n}", self.rank);
            std::process::exit(KILL_EXIT_CODE);
        }
    }

    fn burst_committed(&mut self, _burst_index: u64, _steps_done: u64) {
        // Telemetry loss here only degrades the live view; the run
        // itself must not fail over an observability append.
        let _ = flush_worker_events(&self.run, self.rank);
    }
}

/// The worker protocol: adopt own orphaned claims, then claim domains
/// from the queue until every domain is done, idling (rather than
/// exiting) while other ranks hold unfinished claims so released work
/// can still be picked up. Runs domains under the full per-rank
/// supervisor with shared checkpoints.
pub fn worker_main(
    run_dir: &Path,
    rank: usize,
    incarnation: u32,
    kill: &RankKillPlan,
) -> Result<(), ShardError> {
    let m = Manifest::read(run_dir)?;
    if rank >= m.ranks {
        return Err(ShardError::Worker(format!(
            "rank {rank} out of range for a {}-rank fleet",
            m.ranks
        )));
    }
    // CI chaos smoke: a BitFlipPlan spec in the environment arms the GEMM
    // bit-flip injector in this worker; the supervisor's ABFT sampling and
    // rollback must then recover to the same bits as a clean fleet.
    if let Ok(spec) = std::env::var(SHARD_BITFLIP_ENV) {
        if !spec.trim().is_empty() {
            let plan = mkl_lite::BitFlipPlan::parse(&spec)
                .map_err(|e| ShardError::Worker(format!("bad {SHARD_BITFLIP_ENV}: {e}")))?;
            mkl_lite::install_bit_flip_plan(&plan);
        }
    }
    let hb = Arc::new(HbState {
        seq: AtomicU64::new(0),
        bursts: AtomicU64::new(0),
        domain: AtomicU64::new(u64::MAX),
        stop: AtomicBool::new(false),
    });
    let pid = std::process::id();

    // Liveness heartbeat: a killed or wedged-at-exit process stops
    // bumping `seq`; the coordinator's timeout does the rest.
    write_heartbeat(run_dir, rank, pid, &hb);
    let hb_thread = {
        let hb = hb.clone();
        let run = run_dir.to_path_buf();
        let interval = m.heartbeat_interval;
        std::thread::spawn(move || {
            while !hb.stop.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                write_heartbeat(&run, rank, pid, &hb);
            }
        })
    };

    // Stamp this process's rank into the telemetry metadata before the
    // stream header is written, so tailers and the merger can tell the
    // per-rank streams apart without trusting filenames. The fleet size
    // goes into the ledger header the same way — each rank's ledger
    // snapshot then documents the fleet it was part of.
    sink::set_rank(rank as u64);
    dcmesh_telemetry::ledger::set_rank_count(m.ranks as u64);
    rank_instant("worker_start", rank, incarnation);
    // Start this incarnation's event stream fresh: its `telemetry_meta`
    // header carries *this* process's run epoch, and a dead
    // incarnation's tail must not prefix it (the clocks would not
    // align). Live tailers detect the truncation and re-read.
    let _ = fs::write(rank_events_path(run_dir, rank), export::jsonl(&sink::drain()));
    let kill_at = kill.kill_burst_for(rank, incarnation);

    loop {
        if count_done(run_dir)? >= m.n_domains {
            break;
        }
        let claimed = match adopt_own_claim(run_dir, rank)? {
            Some(d) => Some(d),
            None => claim_next(run_dir, m.n_domains, rank)?,
        };
        match claimed {
            Some(domain) => run_domain(run_dir, &m, domain, rank, incarnation, kill_at, &hb)?,
            // Nothing claimable right now — but unfinished domains may
            // return to the queue if their rank dies, so wait, don't exit.
            None => std::thread::sleep(m.poll_interval),
        }
    }

    // Clean completion: stop the heartbeat, export this rank's telemetry
    // for `profile merge`, and leave the completion marker so the
    // coordinator can tell "finished" from "died quietly".
    hb.stop.store(true, Ordering::Relaxed);
    let _ = hb_thread.join();
    export_worker_trace(run_dir, rank)?;
    write_atomic(&exit_path(run_dir, rank), "{\"status\":\"complete\"}")?;
    Ok(())
}

/// A respawned rank re-adopts a domain it already claimed (its claim
/// marker survives the respawn), resuming from the shared checkpoint.
fn adopt_own_claim(run: &Path, rank: usize) -> Result<Option<usize>, std::io::Error> {
    let suffix = format!(".claimed.rank{rank}");
    let mut found: Vec<usize> = Vec::new();
    for entry in fs::read_dir(queue_dir(run))? {
        let name = entry?.file_name();
        if let Some(d) = domain_of(&name.to_string_lossy(), &suffix) {
            found.push(d);
        }
    }
    found.sort_unstable();
    Ok(found.first().copied())
}

/// Claims the lowest-numbered unclaimed domain by atomic rename —
/// exactly one contender can win each `todo` file.
fn claim_next(run: &Path, n_domains: usize, rank: usize) -> Result<Option<usize>, std::io::Error> {
    let mut todos: Vec<usize> = Vec::new();
    for entry in fs::read_dir(queue_dir(run))? {
        let name = entry?.file_name();
        if let Some(d) = domain_of(&name.to_string_lossy(), ".todo") {
            if d < n_domains {
                todos.push(d);
            }
        }
    }
    todos.sort_unstable();
    for d in todos {
        if fs::rename(todo_path(run, d), claimed_path(run, d, rank)).is_ok() {
            return Ok(Some(d));
        }
    }
    Ok(None)
}

#[allow(clippy::too_many_arguments)]
fn run_domain(
    run: &Path,
    m: &Manifest,
    domain: usize,
    rank: usize,
    incarnation: u32,
    kill_at: Option<u64>,
    hb: &Arc<HbState>,
) -> Result<(), ShardError> {
    let cfg = domain_config(&m.deck, domain, m.n_domains)?;
    let sup = SupervisorConfig {
        checkpoint_dir: Some(ck_dir(run, domain)),
        deescalate_after: m.deescalate_after,
        abft_check_period: env_period(SHARD_ABFT_ENV),
        verify_bursts: env_period(SHARD_VERIFY_ENV),
        ..SupervisorConfig::default()
    };
    hb.domain.store(domain as u64, Ordering::Relaxed);
    let mut observer =
        WorkerObserver { hb: hb.clone(), kill_at, rank, run: run.to_path_buf() };
    // Element width f32: the paper's mixed-precision configuration (the
    // FP64 baseline has no low-precision modes to escalate between).
    let out = run_supervised_observed::<f32>(&cfg, m.start_mode, &sup, &mut observer);
    hb.domain.store(u64::MAX, Ordering::Relaxed);

    let body = match &out {
        Ok(run_out) => {
            // A resumed invocation records only the tail; the boundary
            // observables still come from the final step either way.
            let last = run_out.result.records.last();
            let resumed = match run_out.resumed_from_step {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            };
            format!(
                "{{\"domain\":{domain},\"status\":\"ok\",\"rank\":{rank},\
                 \"incarnation\":{incarnation},\"resumed_from_step\":{resumed},\
                 \"final_step\":{},\"ekin_bits\":{},\"nexc_bits\":{},\"etot_bits\":{},\
                 \"escalations\":{},\"sdc_recoveries\":{},\"lowdin_fallbacks\":{},\
                 \"final_mode\":{},\"label\":{}}}",
                last.map(|o| o.step).unwrap_or(0),
                bits_hex(last.map(|o| o.ekin).unwrap_or(0.0)),
                bits_hex(last.map(|o| o.nexc).unwrap_or(0.0)),
                bits_hex(last.map(|o| o.etot).unwrap_or(0.0)),
                run_out.escalations.len(),
                run_out.sdc_recoveries,
                run_out.lowdin_fallbacks,
                json::escape_string(run_out.final_mode.env_value().unwrap_or("STANDARD")),
                json::escape_string(&run_out.result.label),
            )
        }
        Err(e) => format!(
            "{{\"domain\":{domain},\"status\":\"failed\",\"rank\":{rank},\
             \"incarnation\":{incarnation},\"error\":{}}}",
            json::escape_string(&e.to_string()),
        ),
    };
    write_atomic(&done_path(run, domain), &body)?;
    instant(
        if out.is_ok() { "domain_done" } else { "domain_failed" },
        vec![
            Attr { key: "domain", value: AttrValue::U64(domain as u64) },
            Attr { key: "rank", value: AttrValue::U64(rank as u64) },
        ],
    );
    // Claim marker last: even if the process dies between the done write
    // and this removal, a re-run of the domain is deterministic and the
    // done rewrite is idempotent.
    let _ = fs::remove_file(claimed_path(run, domain, rank));
    Ok(())
}

/// `f64` bit pattern as a hex-string JSON value — JSON numbers are f64
/// and cannot carry 64 significant bits losslessly.
fn bits_hex(v: f64) -> String {
    format!("\"0x{:016x}\"", v.to_bits())
}

fn parse_bits_hex(v: Option<&JsonValue>) -> Option<u64> {
    u64::from_str_radix(v?.as_str()?.strip_prefix("0x")?, 16).ok()
}

/// Appends this rank's accumulated telemetry to its event stream. The
/// first flush of an incarnation writes the `telemetry_meta` header;
/// later flushes append body lines only, so the stream stays a single
/// well-formed JSONL dump that `profile merge` ingests whole and
/// `profile watch` tails incrementally. Called after every committed
/// burst and once more at clean worker exit.
fn flush_worker_events(run: &Path, rank: usize) -> Result<(), std::io::Error> {
    use std::io::Write as _;
    let events = sink::drain();
    let path = rank_events_path(run, rank);
    let fresh = !path.exists();
    if !fresh && events.is_empty() {
        return Ok(());
    }
    let mut f = fs::OpenOptions::new().create(true).append(true).open(path)?;
    let text =
        if fresh { export::jsonl(&events) } else { export::jsonl_body(&events) };
    f.write_all(text.as_bytes())
}

/// Exports this rank's telemetry (events at whatever `TELEMETRY` level
/// the fleet runs at) for the multi-rank `profile merge`: the final
/// flush of whatever the per-burst appends have not yet drained, plus
/// this rank's precision-ledger snapshot (atomic — an archiver folding
/// a finished run never reads a torn document).
fn export_worker_trace(run: &Path, rank: usize) -> Result<(), std::io::Error> {
    flush_worker_events(run, rank)?;
    write_atomic(
        &rank_ledger_path(run, rank),
        &dcmesh_telemetry::ledger::ledger_json(),
    )
}

// ---------------------------------------------------------------------------
// Coordinator

/// Per-rank coordinator-side state machine.
enum RankState {
    Running {
        child: Child,
        incarnation: u32,
        /// Heartbeat-file mtime at the last observed *change* (`None`
        /// until the file is first seen). Only ever compared against the
        /// next observation — never against wall-clock time.
        last_stamp: Option<SystemTime>,
        /// Coordinator-local monotonic instant of that change; the
        /// timeout is measured from here.
        last_change: Instant,
    },
    Backoff { incarnation: u32, until: Instant },
    Finished,
    Degraded,
}

/// Final outcome of one domain, read back from its done file.
#[derive(Clone, Debug)]
pub struct DomainOutcome {
    /// Domain id.
    pub domain: usize,
    /// Whether the domain's supervised run succeeded.
    pub ok: bool,
    /// Rank that produced the done record.
    pub rank: usize,
    /// That rank's incarnation (> 0 means a respawned process finished
    /// the domain).
    pub incarnation: u32,
    /// Checkpoint step the finishing invocation resumed from (`Some` ⇒
    /// the domain replayed from the shared checkpoint).
    pub resumed_from_step: Option<u64>,
    /// Final QD step recorded.
    pub final_step: u64,
    /// Bit patterns of the final observables — bit-exact comparison is
    /// the whole point of deterministic recovery.
    pub ekin_bits: u64,
    /// Final `nexc` bit pattern.
    pub nexc_bits: u64,
    /// Final `etot` bit pattern.
    pub etot_bits: u64,
    /// Escalations the per-rank supervisor performed on this domain.
    pub escalations: u64,
    /// Silent-data-corruption rollbacks (ABFT checksum violations or
    /// replay mismatches) the supervisor recovered from on this domain.
    pub sdc_recoveries: u64,
    /// Löwdin→Gram-Schmidt orthonormalisation fallbacks during the
    /// domain run — previously discarded silently, now surfaced.
    pub lowdin_fallbacks: u64,
    /// Error text for failed domains.
    pub error: Option<String>,
}

/// Per-rank summary.
#[derive(Clone, Debug)]
pub struct RankSummary {
    /// Rank id.
    pub rank: usize,
    /// Incarnations spawned (1 = never died).
    pub incarnations: u32,
    /// Whether the rank was degraded away.
    pub degraded: bool,
}

/// What a sharded run did, written to `report.json` and returned by
/// [`run_coordinator`].
#[derive(Clone, Debug)]
pub struct ShardReport {
    /// Every domain's outcome, ordered by domain id.
    pub domains: Vec<DomainOutcome>,
    /// Every rank's lifecycle summary.
    pub ranks: Vec<RankSummary>,
    /// Heartbeat timeouts declared.
    pub heartbeat_misses: u64,
    /// Respawns performed.
    pub restarts: u64,
    /// Ranks degraded away.
    pub degraded_ranks: Vec<usize>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

/// Cross-rank deterministic merge of one per-domain observable: the
/// domains' final values combined through the fixed-shape reduction tree
/// **in domain-id order**. The tree's shape depends only on the domain
/// count — never on which ranks produced the outcomes, how many ranks
/// survived, or in what order domains finished — so a degraded 2-rank
/// fleet merges to exactly the same bits as a healthy 4-rank one.
/// Failed domains contribute their zeroed bit pattern (+0.0).
fn merge_domain_bits(domains: &[DomainOutcome], field: fn(&DomainOutcome) -> u64) -> u64 {
    debug_assert!(domains.windows(2).all(|w| w[0].domain < w[1].domain));
    reduce::sum_with(domains.len(), |i| f64::from_bits(field(&domains[i]))).to_bits()
}

impl ShardReport {
    /// The fleet-level merged observables `(ekin, nexc, etot)` as bit
    /// patterns — see [`merge_domain_bits`]. Derived from the domain
    /// outcomes, so a parsed report agrees with the one that was written.
    pub fn merged_bits(&self) -> (u64, u64, u64) {
        (
            merge_domain_bits(&self.domains, |d| d.ekin_bits),
            merge_domain_bits(&self.domains, |d| d.nexc_bits),
            merge_domain_bits(&self.domains, |d| d.etot_bits),
        )
    }
    /// Domains whose supervised run failed (not rank deaths — those are
    /// recovered; these are numeric/IO failures reported by the worker).
    pub fn failed_domains(&self) -> Vec<usize> {
        self.domains.iter().filter(|d| !d.ok).map(|d| d.domain).collect()
    }

    fn to_json(&self) -> String {
        let domains: Vec<String> = self
            .domains
            .iter()
            .map(|d| {
                let resumed = match d.resumed_from_step {
                    Some(s) => s.to_string(),
                    None => "null".to_string(),
                };
                let error = match &d.error {
                    Some(e) => json::escape_string(e),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"domain\":{},\"ok\":{},\"rank\":{},\"incarnation\":{},\
                     \"resumed_from_step\":{resumed},\"final_step\":{},\"ekin_bits\":{},\
                     \"nexc_bits\":{},\"etot_bits\":{},\"escalations\":{},\
                     \"sdc_recoveries\":{},\"lowdin_fallbacks\":{},\"error\":{error}}}",
                    d.domain,
                    d.ok,
                    d.rank,
                    d.incarnation,
                    d.final_step,
                    bits_hex(f64::from_bits(d.ekin_bits)),
                    bits_hex(f64::from_bits(d.nexc_bits)),
                    bits_hex(f64::from_bits(d.etot_bits)),
                    d.escalations,
                    d.sdc_recoveries,
                    d.lowdin_fallbacks,
                )
            })
            .collect();
        let ranks: Vec<String> = self
            .ranks
            .iter()
            .map(|r| {
                format!(
                    "{{\"rank\":{},\"incarnations\":{},\"degraded\":{}}}",
                    r.rank, r.incarnations, r.degraded
                )
            })
            .collect();
        let (me, mn, mt) = self.merged_bits();
        format!(
            "{{\"completed\":{},\"heartbeat_misses\":{},\"restarts\":{},\
             \"degraded_ranks\":[{}],\"elapsed_ms\":{},\
             \"merged_ekin_bits\":{},\"merged_nexc_bits\":{},\"merged_etot_bits\":{},\
             \"domains\":[{}],\"ranks\":[{}]}}",
            self.failed_domains().is_empty(),
            self.heartbeat_misses,
            self.restarts,
            self.degraded_ranks.iter().map(ToString::to_string).collect::<Vec<_>>().join(","),
            self.elapsed.as_millis(),
            bits_hex(f64::from_bits(me)),
            bits_hex(f64::from_bits(mn)),
            bits_hex(f64::from_bits(mt)),
            domains.join(","),
            ranks.join(","),
        )
    }

    /// Parses a `report.json` written by [`run_coordinator`].
    pub fn parse(text: &str) -> Result<ShardReport, ShardError> {
        let doc = json::parse(text)
            .map_err(|e| ShardError::Manifest(format!("report.json does not parse: {e:?}")))?;
        let num = |v: Option<&JsonValue>| v.and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
        let mut domains = Vec::new();
        for d in doc.get("domains").and_then(JsonValue::as_array).unwrap_or(&[]) {
            domains.push(DomainOutcome {
                domain: num(d.get("domain")) as usize,
                ok: d.get("ok") == Some(&JsonValue::Bool(true)),
                rank: num(d.get("rank")) as usize,
                incarnation: num(d.get("incarnation")) as u32,
                resumed_from_step: d
                    .get("resumed_from_step")
                    .and_then(JsonValue::as_f64)
                    .map(|v| v as u64),
                final_step: num(d.get("final_step")),
                ekin_bits: parse_bits_hex(d.get("ekin_bits")).unwrap_or(0),
                nexc_bits: parse_bits_hex(d.get("nexc_bits")).unwrap_or(0),
                etot_bits: parse_bits_hex(d.get("etot_bits")).unwrap_or(0),
                escalations: num(d.get("escalations")),
                sdc_recoveries: num(d.get("sdc_recoveries")),
                lowdin_fallbacks: num(d.get("lowdin_fallbacks")),
                error: d.get("error").and_then(JsonValue::as_str).map(String::from),
            });
        }
        let mut ranks = Vec::new();
        for r in doc.get("ranks").and_then(JsonValue::as_array).unwrap_or(&[]) {
            ranks.push(RankSummary {
                rank: num(r.get("rank")) as usize,
                incarnations: num(r.get("incarnations")) as u32,
                degraded: r.get("degraded") == Some(&JsonValue::Bool(true)),
            });
        }
        Ok(ShardReport {
            domains,
            ranks,
            heartbeat_misses: num(doc.get("heartbeat_misses")),
            restarts: num(doc.get("restarts")),
            degraded_ranks: doc
                .get("degraded_ranks")
                .and_then(JsonValue::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|v| v.as_f64().map(|f| f as usize))
                .collect(),
            elapsed: Duration::from_millis(num(doc.get("elapsed_ms"))),
        })
    }
}

fn spawn_worker(cfg: &ShardConfig, rank: usize, incarnation: u32) -> Result<Child, std::io::Error> {
    let exe = match &cfg.worker_exe {
        Some(p) => p.clone(),
        None => std::env::current_exe()?,
    };
    Command::new(exe)
        .env(SHARD_WORKER_ENV, "1")
        .env(SHARD_DIR_ENV, &cfg.run_dir)
        .env(DCMESH_RANK_ENV, rank.to_string())
        .env(SHARD_INCARNATION_ENV, incarnation.to_string())
        .env(SHARD_KILL_ENV, cfg.kill_plan.to_spec())
        .stdout(Stdio::null())
        .spawn()
}

/// Reads a heartbeat file's modification stamp (`None` when absent).
/// Liveness is *mtime-change detection*: each atomic rewrite of the
/// heartbeat bumps the mtime, so a stamp different from the last one
/// observed means the worker made progress — even if the file content is
/// torn or unparsable. The stamp is never compared against the
/// coordinator's wall clock (filesystem and coordinator clocks need not
/// agree); staleness is judged by the coordinator-local monotonic delta
/// since the last observed change.
fn read_hb_stamp(run: &Path, rank: usize) -> Option<SystemTime> {
    fs::metadata(hb_path(run, rank)).and_then(|m| m.modified()).ok()
}

/// Returns the dead rank's claimed domains to the open queue (used on
/// degradation — while a respawn is still pending, claims are *kept* so
/// the recovered rank adopts its own in-flight work).
fn release_claims(
    run: &Path,
    rank: usize,
    log: &mut CoordLog,
) -> Result<Vec<usize>, std::io::Error> {
    let suffix = format!(".claimed.rank{rank}");
    let mut released = Vec::new();
    for entry in fs::read_dir(queue_dir(run))? {
        let name = entry?.file_name();
        if let Some(d) = domain_of(&name.to_string_lossy(), &suffix) {
            // The domain may already be done (death after done-write but
            // before marker removal): drop the stale claim instead of
            // re-queueing finished work.
            if done_path(run, d).exists() {
                let _ = fs::remove_file(claimed_path(run, d, rank));
                continue;
            }
            if fs::rename(claimed_path(run, d, rank), todo_path(run, d)).is_ok() {
                released.push(d);
                log.log(
                    "domain_reassigned",
                    &[("domain", d.to_string()), ("from_rank", rank.to_string())],
                );
                instant(
                    "domain_reassigned",
                    vec![
                        Attr { key: "domain", value: AttrValue::U64(d as u64) },
                        Attr { key: "rank", value: AttrValue::U64(rank as u64) },
                    ],
                );
            }
        }
    }
    Ok(released)
}

fn backoff_for(cfg: &ShardConfig, deaths: u32) -> Duration {
    let exp = deaths.saturating_sub(1).min(16);
    cfg.backoff_base.saturating_mul(1u32 << exp).min(cfg.backoff_max)
}

/// Runs the full sharded run: seeds the queue, spawns the ranks, and
/// supervises them to completion. Returns the aggregated report (also
/// persisted as `report.json`); worker-side domain failures are reported
/// in it, not raised — only coordination-level failures are `Err`.
///
/// Domains `0..ranks` are pre-claimed one per rank so the initial
/// assignment is deterministic; the remainder are open-queue and
/// work-stolen. Re-running a coordinator over a partially complete run
/// directory resumes it: done domains stay done, stale claims return to
/// the queue.
pub fn run_coordinator(cfg: &ShardConfig) -> Result<ShardReport, ShardError> {
    cfg.validate()?;
    let run = cfg.run_dir.as_path();
    for d in [run.to_path_buf(), queue_dir(run), done_dir(run), hb_dir(run), trace_dir(run)] {
        fs::create_dir_all(d)?;
    }
    let mut log = CoordLog::open(run)?;
    Manifest::write(cfg)?;
    // Register the shard counters up front so the final Prometheus dump
    // always carries all three series, zeros included.
    heartbeat_miss_counter();
    rank_restart_counter();
    rank_degraded_counter();

    // Stale state from a previous coordinator over this directory.
    for entry in fs::read_dir(hb_dir(run))? {
        let _ = fs::remove_file(entry?.path());
    }
    for entry in fs::read_dir(queue_dir(run))? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if let Some(at) = name.find(".claimed.rank") {
            if let Some(d) = domain_of(&format!("{}.todo", &name[..at]), ".todo") {
                let _ = fs::rename(&path, todo_path(run, d));
            }
        }
    }

    // Seed the queue. Initial assignment is deterministic: domain r is
    // pre-claimed for rank r; the tail is open for work stealing.
    let mut seeded = 0usize;
    for d in 0..cfg.n_domains {
        if done_path(run, d).exists() {
            continue;
        }
        // A todo recovered from a previous coordinator stays open-queue;
        // pre-claiming it too would double-run the domain.
        let todo = todo_path(run, d);
        let target = if d < cfg.ranks && !todo.exists() { claimed_path(run, d, d) } else { todo };
        if !target.exists() {
            write_atomic(&target, "{}")?;
        }
        seeded += 1;
    }
    log.log(
        "run_start",
        &[
            ("ranks", cfg.ranks.to_string()),
            ("domains", cfg.n_domains.to_string()),
            ("seeded", seeded.to_string()),
            ("kill_plan", json::escape_string(&cfg.kill_plan.to_spec())),
        ],
    );

    let t0 = Instant::now();
    let mut slots: Vec<RankState> = Vec::with_capacity(cfg.ranks);
    let mut deaths: Vec<u32> = vec![0; cfg.ranks];
    let mut restarts = 0u64;
    let mut heartbeat_misses = 0u64;
    for rank in 0..cfg.ranks {
        slots.push(spawn_slot(cfg, rank, 0, &mut log, &mut deaths)?);
    }

    let report = loop {
        std::thread::sleep(cfg.poll_interval);
        let done = count_done(run)?;
        if done >= cfg.n_domains {
            break finalize(cfg, run, &mut slots, &mut log, t0, heartbeat_misses, restarts, &deaths);
        }
        if let Some(limit) = cfg.max_wall {
            if t0.elapsed() > limit {
                for s in &mut slots {
                    if let RankState::Running { child, .. } = s {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                }
                log.log("wall_clock_exceeded", &[("done", done.to_string())]);
                return Err(ShardError::WallClockExceeded {
                    limit,
                    unfinished: cfg.n_domains - done,
                });
            }
        }

        let mut any_alive = false;
        for rank in 0..cfg.ranks {
            match &mut slots[rank] {
                RankState::Running { child, incarnation, last_stamp, last_change } => {
                    // Clean completion: the exit marker is written before
                    // the process exits, so marker + reaped child is
                    // unambiguous. Death detection itself never trusts
                    // exit status — only the heartbeat.
                    if exit_path(run, rank).exists()
                        && child.try_wait().ok().flatten().is_some()
                    {
                        log.log("rank_finished", &[("rank", rank.to_string())]);
                        rank_instant("rank_finished", rank, *incarnation);
                        slots[rank] = RankState::Finished;
                        continue;
                    }
                    let stamp = read_hb_stamp(run, rank);
                    if stamp != *last_stamp {
                        *last_stamp = stamp;
                        *last_change = Instant::now();
                    } else if last_change.elapsed() > cfg.heartbeat_timeout {
                        // Dead (or wedged): declared via heartbeat
                        // timeout, exactly as a hung-but-running process
                        // would be.
                        heartbeat_misses += 1;
                        heartbeat_miss_counter().inc();
                        let inc = *incarnation;
                        let _ = child.kill();
                        let _ = child.wait();
                        log.log(
                            "heartbeat_miss",
                            &[
                                ("rank", rank.to_string()),
                                ("incarnation", inc.to_string()),
                                ("stale_ms", last_change.elapsed().as_millis().to_string()),
                            ],
                        );
                        rank_instant("heartbeat_miss", rank, inc);
                        rank_instant("rank_dead", rank, inc);
                        deaths[rank] += 1;
                        if deaths[rank] <= cfg.max_respawns {
                            // Claims are kept: the respawned rank adopts
                            // its in-flight domain and replays it from
                            // the shared checkpoint.
                            let until = Instant::now() + backoff_for(cfg, deaths[rank]);
                            log.log(
                                "rank_backoff",
                                &[
                                    ("rank", rank.to_string()),
                                    (
                                        "delay_ms",
                                        backoff_for(cfg, deaths[rank]).as_millis().to_string(),
                                    ),
                                ],
                            );
                            slots[rank] = RankState::Backoff { incarnation: inc + 1, until };
                        } else {
                            rank_degraded_counter().inc();
                            log.log(
                                "rank_degraded",
                                &[("rank", rank.to_string()), ("deaths", deaths[rank].to_string())],
                            );
                            rank_instant("rank_degraded", rank, inc);
                            release_claims(run, rank, &mut log)?;
                            slots[rank] = RankState::Degraded;
                        }
                    }
                    any_alive = true;
                }
                RankState::Backoff { incarnation, until } => {
                    any_alive = true;
                    if Instant::now() >= *until {
                        let inc = *incarnation;
                        restarts += 1;
                        rank_restart_counter().inc();
                        rank_instant("rank_respawn", rank, inc);
                        slots[rank] = spawn_slot(cfg, rank, inc, &mut log, &mut deaths)?;
                    }
                }
                RankState::Finished | RankState::Degraded => {}
            }
        }

        if !any_alive {
            // Ranks may all have finished during this scan, after the
            // done count at the loop top went stale — recount before
            // declaring the fleet exhausted.
            let done = count_done(run)?;
            if done >= cfg.n_domains {
                continue;
            }
            log.log("ranks_exhausted", &[("done", done.to_string())]);
            return Err(ShardError::RanksExhausted { unfinished: cfg.n_domains - done });
        }
    };

    Ok(report)
}

/// Spawns rank `rank` at `incarnation`; a spawn failure is treated like
/// an immediate death (backoff or degradation) rather than aborting the
/// fleet.
fn spawn_slot(
    cfg: &ShardConfig,
    rank: usize,
    incarnation: u32,
    log: &mut CoordLog,
    deaths: &mut [u32],
) -> Result<RankState, ShardError> {
    match spawn_worker(cfg, rank, incarnation) {
        Ok(child) => {
            log.log(
                "rank_spawn",
                &[("rank", rank.to_string()), ("incarnation", incarnation.to_string())],
            );
            rank_instant("rank_spawn", rank, incarnation);
            Ok(RankState::Running {
                child,
                incarnation,
                last_stamp: None,
                last_change: Instant::now(),
            })
        }
        Err(e) => {
            log.log(
                "rank_spawn_failed",
                &[("rank", rank.to_string()), ("error", json::escape_string(&e.to_string()))],
            );
            deaths[rank] += 1;
            if deaths[rank] <= cfg.max_respawns {
                Ok(RankState::Backoff {
                    incarnation: incarnation + 1,
                    until: Instant::now() + backoff_for(cfg, deaths[rank]),
                })
            } else {
                rank_degraded_counter().inc();
                rank_instant("rank_degraded", rank, incarnation);
                Ok(RankState::Degraded)
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    cfg: &ShardConfig,
    run: &Path,
    slots: &mut [RankState],
    log: &mut CoordLog,
    t0: Instant,
    heartbeat_misses: u64,
    restarts: u64,
    deaths: &[u32],
) -> ShardReport {
    // Workers exit on their own once they observe the full done set;
    // give them a grace period, then insist.
    let deadline = Instant::now() + cfg.heartbeat_timeout;
    for (rank, slot) in slots.iter_mut().enumerate() {
        if let RankState::Running { child, incarnation, .. } = slot {
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    _ if Instant::now() > deadline => {
                        let _ = child.kill();
                        let _ = child.wait();
                        break;
                    }
                    _ => std::thread::sleep(cfg.poll_interval),
                }
            }
            log.log("rank_finished", &[("rank", rank.to_string())]);
            rank_instant("rank_finished", rank, *incarnation);
            *slot = RankState::Finished;
        }
    }

    let mut domains: Vec<DomainOutcome> = Vec::with_capacity(cfg.n_domains);
    for d in 0..cfg.n_domains {
        match fs::read_to_string(done_path(run, d)).ok().and_then(|t| json::parse(&t).ok()) {
            Some(doc) => {
                let num =
                    |v: Option<&JsonValue>| v.and_then(JsonValue::as_f64).unwrap_or(0.0) as u64;
                domains.push(DomainOutcome {
                    domain: d,
                    ok: doc.get("status").and_then(JsonValue::as_str) == Some("ok"),
                    rank: num(doc.get("rank")) as usize,
                    incarnation: num(doc.get("incarnation")) as u32,
                    resumed_from_step: doc
                        .get("resumed_from_step")
                        .and_then(JsonValue::as_f64)
                        .map(|v| v as u64),
                    final_step: num(doc.get("final_step")),
                    ekin_bits: parse_bits_hex(doc.get("ekin_bits")).unwrap_or(0),
                    nexc_bits: parse_bits_hex(doc.get("nexc_bits")).unwrap_or(0),
                    etot_bits: parse_bits_hex(doc.get("etot_bits")).unwrap_or(0),
                    escalations: num(doc.get("escalations")),
                    sdc_recoveries: num(doc.get("sdc_recoveries")),
                    lowdin_fallbacks: num(doc.get("lowdin_fallbacks")),
                    error: doc.get("error").and_then(JsonValue::as_str).map(String::from),
                });
            }
            None => domains.push(DomainOutcome {
                domain: d,
                ok: false,
                rank: 0,
                incarnation: 0,
                resumed_from_step: None,
                final_step: 0,
                ekin_bits: 0,
                nexc_bits: 0,
                etot_bits: 0,
                escalations: 0,
                sdc_recoveries: 0,
                lowdin_fallbacks: 0,
                error: Some("done file missing or unparsable".into()),
            }),
        }
    }

    let degraded_ranks: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, RankState::Degraded))
        .map(|(r, _)| r)
        .collect();
    let ranks: Vec<RankSummary> = (0..cfg.ranks)
        .map(|r| RankSummary {
            rank: r,
            incarnations: deaths[r].min(cfg.max_respawns) + 1,
            degraded: degraded_ranks.contains(&r),
        })
        .collect();
    let report = ShardReport {
        domains,
        ranks,
        heartbeat_misses,
        restarts,
        degraded_ranks,
        elapsed: t0.elapsed(),
    };
    log.log(
        "run_complete",
        &[
            ("restarts", restarts.to_string()),
            ("heartbeat_misses", heartbeat_misses.to_string()),
            ("failed_domains", report.failed_domains().len().to_string()),
        ],
    );
    instant(
        "shard_complete",
        vec![
            Attr { key: "restarts", value: AttrValue::U64(restarts) },
            Attr { key: "heartbeat_misses", value: AttrValue::U64(heartbeat_misses) },
        ],
    );

    let _ = write_atomic(&report_path(run), &report.to_json());
    // The coordinator's own lifecycle telemetry, for `telemetry_check
    // --shard-dir` and dashboards.
    let events = sink::drain();
    let _ = fs::write(trace_dir(run).join("events-coord.jsonl"), export::jsonl(&events));
    let _ = fs::write(trace_dir(run).join("metrics-coord.prom"), export::prometheus_dump());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemPreset;

    fn tiny_deck() -> RunConfig {
        let mut cfg = RunConfig::preset(SystemPreset::Pto40Small);
        cfg.mesh_points = 10;
        cfg.n_orb = 8;
        cfg.n_occ = 4;
        cfg.total_qd_steps = 60;
        cfg.qd_steps_per_md = 20;
        cfg
    }

    #[test]
    fn kill_plan_spec_roundtrips() {
        let plan = RankKillPlan::parse("1@2, 3@0*").expect("parse");
        assert_eq!(
            plan.kills,
            vec![
                RankKill { rank: 1, burst: 2, every_incarnation: false },
                RankKill { rank: 3, burst: 0, every_incarnation: true },
            ]
        );
        assert_eq!(RankKillPlan::parse(&plan.to_spec()).expect("reparse"), plan);
        assert_eq!(RankKillPlan::parse("").expect("empty"), RankKillPlan::default());
        assert!(RankKillPlan::parse("nope").is_err());
        assert!(RankKillPlan::parse("1@x").is_err());

        assert_eq!(plan.kill_burst_for(1, 0), Some(2));
        assert_eq!(plan.kill_burst_for(1, 1), None, "plain kills hit only incarnation 0");
        assert_eq!(plan.kill_burst_for(3, 5), Some(0), "starred kills hit every incarnation");
        assert_eq!(plan.kill_burst_for(0, 0), None);
    }

    #[test]
    fn domain_split_is_balanced_and_valid() {
        let deck = tiny_deck();
        let mut orb = 0;
        let mut occ = 0;
        for d in 0..4 {
            let cfg = domain_config(&deck, d, 4).expect("domain deck");
            assert!(cfg.n_occ >= 1 && cfg.n_occ <= cfg.n_orb);
            assert_eq!(cfg.label, format!("{}~dom{d}", deck.label));
            orb += cfg.n_orb;
            occ += cfg.n_occ;
        }
        assert_eq!(orb, deck.n_orb, "orbital blocks must partition the space");
        assert_eq!(occ, deck.n_occ);

        // Uneven splits stay valid for every (orb, occ, parts) we allow.
        for parts in 1..=4 {
            for d in 0..parts {
                let cfg = domain_config(&deck, d, parts).expect("deck");
                assert!(cfg.n_occ <= cfg.n_orb);
            }
        }
        assert!(domain_config(&deck, 0, 5).is_err(), "more domains than occupied orbitals");
        assert!(domain_config(&deck, 4, 4).is_err(), "domain index out of range");
    }

    #[test]
    fn manifest_roundtrips_through_the_run_dir() {
        let dir = std::env::temp_dir().join(format!("dcmesh-manifest-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("dir");
        let mut cfg = ShardConfig::new(tiny_deck(), 2, 4, dir.clone());
        cfg.start_mode = ComputeMode::FloatToBf16;
        cfg.deescalate_after = Some(3);
        Manifest::write(&cfg).expect("write");
        let m = Manifest::read(&dir).expect("read");
        assert_eq!(m.n_domains, 4);
        assert_eq!(m.ranks, 2);
        assert_eq!(m.start_mode, ComputeMode::FloatToBf16);
        assert_eq!(m.deescalate_after, Some(3));
        assert_eq!(m.heartbeat_interval, cfg.heartbeat_interval);
        assert_eq!(m.deck.n_orb, 8);
        assert_eq!(m.deck.total_qd_steps, 60);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn claims_are_atomic_and_adoption_prefers_own_rank() {
        let dir = std::env::temp_dir().join(format!("dcmesh-claim-{}", std::process::id()));
        fs::create_dir_all(queue_dir(&dir)).expect("dir");
        for d in 0..3 {
            write_atomic(&todo_path(&dir, d), "{}").expect("seed");
        }
        assert_eq!(claim_next(&dir, 3, 0).expect("claim"), Some(0));
        assert_eq!(claim_next(&dir, 3, 1).expect("claim"), Some(1));
        // Rank 0's claim survives; adoption finds it, not rank 1's.
        assert_eq!(adopt_own_claim(&dir, 0).expect("adopt"), Some(0));
        assert_eq!(adopt_own_claim(&dir, 2).expect("adopt"), None);
        // Only one todo left.
        assert_eq!(claim_next(&dir, 3, 2).expect("claim"), Some(2));
        assert_eq!(claim_next(&dir, 3, 2).expect("claim"), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_json_roundtrips_bit_patterns() {
        let report = ShardReport {
            domains: vec![DomainOutcome {
                domain: 0,
                ok: true,
                rank: 1,
                incarnation: 2,
                resumed_from_step: Some(20),
                final_step: 60,
                ekin_bits: 0x3ff5_5555_5555_5555,
                nexc_bits: f64::to_bits(-0.0),
                etot_bits: u64::MAX,
                escalations: 1,
                sdc_recoveries: 2,
                lowdin_fallbacks: 3,
                error: None,
            }],
            ranks: vec![RankSummary { rank: 0, incarnations: 1, degraded: false }],
            heartbeat_misses: 1,
            restarts: 2,
            degraded_ranks: vec![3],
            elapsed: Duration::from_millis(1234),
        };
        let back = ShardReport::parse(&report.to_json()).expect("parse");
        let d = &back.domains[0];
        assert_eq!(d.ekin_bits, 0x3ff5_5555_5555_5555);
        assert_eq!(d.nexc_bits, f64::to_bits(-0.0));
        assert_eq!(d.etot_bits, u64::MAX, "NaN patterns survive the hex encoding");
        assert_eq!(d.resumed_from_step, Some(20));
        assert_eq!(d.sdc_recoveries, 2);
        assert_eq!(d.lowdin_fallbacks, 3);
        assert_eq!(back.restarts, 2);
        assert_eq!(back.degraded_ranks, vec![3]);
        assert!(back.failed_domains().is_empty());
        assert_eq!(back.merged_bits(), report.merged_bits(), "merge survives the roundtrip");
    }

    #[test]
    fn merged_bits_depend_only_on_domain_observables() {
        let outcome = |domain: usize, rank: usize, v: f64| DomainOutcome {
            domain,
            ok: true,
            rank,
            incarnation: rank as u32,
            resumed_from_step: None,
            final_step: 60,
            ekin_bits: v.to_bits(),
            nexc_bits: (v * 0.25).to_bits(),
            etot_bits: (-v).to_bits(),
            escalations: 0,
            sdc_recoveries: 0,
            lowdin_fallbacks: 0,
            error: None,
        };
        let vals: Vec<f64> = (0..6).map(|i| 0.1 + (i as f64) * 0.7).collect();
        // A healthy fleet: each domain done by its own rank...
        let healthy: Vec<_> =
            vals.iter().enumerate().map(|(d, &v)| outcome(d, d % 4, v)).collect();
        // ...and a degraded fleet where two survivors finished everything
        // (different ranks/incarnations, same observables).
        let degraded: Vec<_> =
            vals.iter().enumerate().map(|(d, &v)| outcome(d, d % 2, v)).collect();
        let m = |d: &[DomainOutcome]| {
            (
                merge_domain_bits(d, |o| o.ekin_bits),
                merge_domain_bits(d, |o| o.nexc_bits),
                merge_domain_bits(d, |o| o.etot_bits),
            )
        };
        assert_eq!(m(&healthy), m(&degraded), "merge must ignore which rank did the work");
        // The merge is the fixed-shape tree over domain-id order.
        assert_eq!(m(&healthy).0, reduce::sum_f64(&vals).to_bits());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let mut cfg = ShardConfig::new(tiny_deck(), 1, 1, PathBuf::from("/nonexistent"));
        cfg.backoff_base = Duration::from_millis(100);
        cfg.backoff_max = Duration::from_millis(450);
        assert_eq!(backoff_for(&cfg, 1), Duration::from_millis(100));
        assert_eq!(backoff_for(&cfg, 2), Duration::from_millis(200));
        assert_eq!(backoff_for(&cfg, 3), Duration::from_millis(400));
        assert_eq!(backoff_for(&cfg, 4), Duration::from_millis(450), "capped");
    }

    #[test]
    fn config_validation_rejects_unworkable_fleets() {
        let deck = tiny_deck();
        assert!(ShardConfig::new(deck.clone(), 0, 4, PathBuf::new()).validate().is_err());
        assert!(
            ShardConfig::new(deck.clone(), 4, 2, PathBuf::new()).validate().is_err(),
            "fewer domains than ranks"
        );
        let mut cfg = ShardConfig::new(deck.clone(), 2, 4, PathBuf::new());
        cfg.heartbeat_timeout = cfg.heartbeat_interval;
        assert!(cfg.validate().is_err(), "timeout must exceed the interval");
        assert!(ShardConfig::new(deck, 2, 4, PathBuf::new()).validate().is_ok());
    }
}

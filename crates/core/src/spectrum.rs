//! Optical response from the current trace.
//!
//! The physical payoff of Maxwell–Ehrenfest dynamics is spectroscopy:
//! the Fourier transform of the laser-induced average current gives the
//! system's optical response (in the dipole limit, the absorption
//! spectrum is `∝ ω·Im[ĵ(ω)/Ê(ω)]`). This module provides the damped
//! discrete Fourier analysis TDDFT codes apply to their `javg` traces —
//! and gives the precision study a *spectral* observable: peak positions
//! are far more robust to BLAS precision than pointwise trajectories,
//! which is exactly what a practitioner wants to know before enabling
//! BF16.

use dcmesh_lfd::laser::AU_PER_FS;
use dcmesh_lfd::StepObservables;

/// A single-sided amplitude spectrum.
#[derive(Clone, Debug)]
pub struct Spectrum {
    /// Angular frequencies (Hartree / ħ, i.e. a.u.).
    pub omega: Vec<f64>,
    /// `|ĵ(ω)|` at each frequency.
    pub amplitude: Vec<f64>,
}

impl Spectrum {
    /// The frequency of the strongest peak.
    pub fn peak_omega(&self) -> f64 {
        let (idx, _) = self
            .amplitude
            .iter()
            .enumerate()
            .fold((0usize, f64::MIN), |best, (i, &a)| if a > best.1 { (i, a) } else { best });
        self.omega[idx]
    }

    /// The peak amplitude.
    pub fn peak_amplitude(&self) -> f64 {
        self.amplitude.iter().cloned().fold(0.0, f64::max)
    }
}

/// Computes the damped Fourier amplitude of a uniformly sampled signal.
///
/// `dt` in a.u.; `damping` is the exponential window rate `γ` (a.u.⁻¹)
/// that regularises the finite observation time (Lorentzian broadening
/// `γ` in the spectrum).
pub fn damped_fourier(signal: &[f64], dt: f64, omegas: &[f64], damping: f64) -> Spectrum {
    assert!(dt > 0.0 && dt.is_finite(), "bad sampling step");
    assert!(damping >= 0.0, "damping must be non-negative");
    let amplitude = omegas
        .iter()
        .map(|&w| {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for (i, &x) in signal.iter().enumerate() {
                let t = i as f64 * dt;
                let win = (-damping * t).exp();
                re += x * win * (w * t).cos();
                im += x * win * (w * t).sin();
            }
            (re * re + im * im).sqrt() * dt
        })
        .collect();
    Spectrum { omega: omegas.to_vec(), amplitude }
}

/// Builds the current spectrum of a run record over `n_omega` frequencies
/// up to `omega_max` (a.u.). The record must be uniformly sampled
/// (`record_every` constant), which it is by construction.
pub fn current_spectrum(
    records: &[StepObservables],
    n_omega: usize,
    omega_max: f64,
    damping: f64,
) -> Spectrum {
    assert!(records.len() >= 4, "need a few samples for a spectrum");
    assert!(n_omega >= 2 && omega_max > 0.0);
    let dt = (records[1].time_fs - records[0].time_fs) * AU_PER_FS;
    // Subtract the mean so the DC component does not mask real peaks.
    let mean = records.iter().map(|r| r.javg).sum::<f64>() / records.len() as f64;
    let signal: Vec<f64> = records.iter().map(|r| r.javg - mean).collect();
    let omegas: Vec<f64> =
        (0..n_omega).map(|i| omega_max * (i + 1) as f64 / n_omega as f64).collect();
    damped_fourier(&signal, dt, &omegas, damping)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_records(omega0: f64, steps: usize, dt_au: f64) -> Vec<StepObservables> {
        (0..steps)
            .map(|i| {
                let t = i as f64 * dt_au;
                StepObservables {
                    step: i as u64 + 1,
                    time_fs: t / AU_PER_FS,
                    ekin: 0.0,
                    epot: 0.0,
                    etot: 0.0,
                    eexc: 0.0,
                    nexc: 0.0,
                    aext: 0.0,
                    javg: (omega0 * t).sin() + 0.3,
                }
            })
            .collect()
    }

    #[test]
    fn sinusoid_peaks_at_its_frequency() {
        let omega0 = 0.35;
        let recs = synthetic_records(omega0, 4000, 0.05);
        let spec = current_spectrum(&recs, 200, 1.0, 0.002);
        let peak = spec.peak_omega();
        assert!(
            (peak - omega0).abs() < 0.02,
            "peak at {peak}, expected {omega0}"
        );
    }

    #[test]
    fn dc_offset_removed() {
        // A constant signal must produce a (near-)flat, tiny spectrum.
        let recs = synthetic_records(0.0, 1000, 0.05); // sin(0)=0 => javg = 0.3 const
        let spec = current_spectrum(&recs, 50, 1.0, 0.002);
        assert!(spec.peak_amplitude() < 1e-9, "DC leaked: {}", spec.peak_amplitude());
    }

    #[test]
    fn two_tone_resolves_both() {
        let (w1, w2) = (0.2f64, 0.6f64);
        let recs: Vec<StepObservables> = (0..6000)
            .map(|i| {
                let t = i as f64 * 0.05;
                StepObservables {
                    step: i as u64 + 1,
                    time_fs: t / AU_PER_FS,
                    ekin: 0.0,
                    epot: 0.0,
                    etot: 0.0,
                    eexc: 0.0,
                    nexc: 0.0,
                    aext: 0.0,
                    javg: (w1 * t).sin() + 0.5 * (w2 * t).sin(),
                }
            })
            .collect();
        let spec = current_spectrum(&recs, 400, 1.0, 0.002);
        // Local maxima near both tones.
        let amp_near = |w: f64| {
            spec.omega
                .iter()
                .zip(&spec.amplitude)
                .filter(|(&o, _)| (o - w).abs() < 0.03)
                .map(|(_, &a)| a)
                .fold(0.0, f64::max)
        };
        let background = spec
            .omega
            .iter()
            .zip(&spec.amplitude)
            .filter(|(&o, _)| (o - w1).abs() > 0.1 && (o - w2).abs() > 0.1)
            .map(|(_, &a)| a)
            .fold(0.0, f64::max);
        assert!(amp_near(w1) > 3.0 * background, "w1 peak lost");
        assert!(amp_near(w2) > 2.0 * background, "w2 peak lost");
    }

    #[test]
    fn damping_broadens_but_preserves_peak() {
        let recs = synthetic_records(0.4, 3000, 0.05);
        let sharp = current_spectrum(&recs, 300, 1.0, 0.001);
        let broad = current_spectrum(&recs, 300, 1.0, 0.02);
        assert!((sharp.peak_omega() - broad.peak_omega()).abs() < 0.05);
        assert!(broad.peak_amplitude() < sharp.peak_amplitude());
    }

    #[test]
    #[should_panic(expected = "need a few samples")]
    fn too_short_record_rejected() {
        current_spectrum(&[], 10, 1.0, 0.01);
    }
}

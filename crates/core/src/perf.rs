//! Paper-scale performance assembly on the device model.
//!
//! These functions regenerate the paper's performance artifacts at the
//! *published* problem sizes by pricing the LFD kernel schedule with the
//! `xe-gpu` model — the substitution for the Max 1550 stack the paper
//! measured on. Nothing here executes wave-function arithmetic.

use dcmesh_lfd::schedule::{price_qd_step, qd_step_schedule, LfdPrecision, SystemShape};
use mkl_lite::device::Domain;
use mkl_lite::ComputeMode;
use xe_gpu::{Tracer, XeStackModel, MAX_1550_STACK};

/// One bar of Figure 3a.
#[derive(Clone, Debug)]
pub struct Fig3aPoint {
    /// Precision label (FP64, FP32, BF16, ...).
    pub label: &'static str,
    /// Modelled seconds for 500 QD steps.
    pub seconds_500_steps: f64,
}

/// Figure 3a: time to complete 500 QD steps, per precision, for one
/// system. `supercell_atoms` picks 40 or 135.
pub fn figure3a(shape: SystemShape) -> Vec<Fig3aPoint> {
    let model = XeStackModel::new(MAX_1550_STACK);
    LfdPrecision::figure3a_set()
        .iter()
        .map(|&p| Fig3aPoint {
            label: p.label(),
            seconds_500_steps: 500.0 * price_qd_step(&model, &qd_step_schedule(shape, p), None),
        })
        .collect()
}

/// One curve point of Figure 3b: BLAS speedup vs FP32 for the
/// `remap_occ` GEMM at a given orbital count.
#[derive(Clone, Debug)]
pub struct Fig3bPoint {
    /// Orbital count (x-axis).
    pub n_orb: usize,
    /// GEMM dimensions (Table VII row).
    pub mnk: (usize, usize, usize),
    /// Modelled speedup vs FP32.
    pub speedup: f64,
}

/// The orbital counts of the paper's 40-atom sweep.
pub const FIG3B_ORBITALS: [usize; 4] = [256, 1024, 2048, 4096];

/// Figure 3b: per-call speedups across the 40-atom orbital sweep for one
/// compute mode.
pub fn figure3b(mode: ComputeMode) -> Vec<Fig3bPoint> {
    let model = XeStackModel::new(MAX_1550_STACK);
    let n_grid = 64 * 64 * 64;
    let n_occ = 128;
    FIG3B_ORBITALS
        .iter()
        .map(|&n_orb| {
            let (m, n, k) = dcmesh_lfd::remap::remap_gemm_shape(n_grid, n_orb, n_occ);
            Fig3bPoint {
                n_orb,
                mnk: (m, n, k),
                speedup: model.gemm_speedup_vs_fp32(Domain::Complex32, m, n, k, mode),
            }
        })
        .collect()
}

/// One row of Table VI: maximum observed vs theoretical speedup.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Compute mode.
    pub mode: ComputeMode,
    /// Maximum speedup observed across the sweep.
    pub max_observed: f64,
    /// Peak theoretical speedup (Table II).
    pub theoretical: f64,
}

/// Table VI: max observed BLAS speedups over the Figure 3b sweep.
pub fn table6() -> Vec<Table6Row> {
    ComputeMode::ALTERNATIVE
        .iter()
        .map(|&mode| {
            let max_observed = figure3b(mode)
                .iter()
                .map(|p| p.speedup)
                .fold(0.0, f64::max);
            Table6Row {
                mode,
                max_observed,
                theoretical: MAX_1550_STACK.theoretical_speedup(mode),
            }
        })
        .collect()
}

/// Prices a full 500-step burst into a unitrace-style dump (the artifact
/// A1 workflow: `unitrace -k ../../../bin/dcehd` and read Total L0 Time).
pub fn unitrace_500_steps(shape: SystemShape, precision: LfdPrecision) -> Tracer {
    let model = XeStackModel::new(MAX_1550_STACK);
    let tracer = Tracer::new();
    let schedule = qd_step_schedule(shape, precision);
    for _ in 0..500 {
        price_qd_step(&model, &schedule, Some(&tracer));
    }
    tracer
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3a_has_all_seven_bars() {
        let pts = figure3a(SystemShape::pto135());
        assert_eq!(pts.len(), 7);
        let labels: Vec<_> = pts.iter().map(|p| p.label).collect();
        assert!(labels.contains(&"FP64") && labels.contains(&"BF16"));
    }

    #[test]
    fn figure3b_monotone_for_bf16() {
        let pts = figure3b(ComputeMode::FloatToBf16);
        assert_eq!(pts.len(), 4);
        for w in pts.windows(2) {
            assert!(w[1].speedup > w[0].speedup, "{pts:?}");
        }
        // Table VII shapes embedded.
        assert_eq!(pts[0].mnk, (128, 128, 262_144));
        assert_eq!(pts[1].mnk, (128, 896, 262_144));
    }

    #[test]
    fn table6_bf16_row_matches_paper() {
        let rows = table6();
        let bf16 = rows.iter().find(|r| r.mode == ComputeMode::FloatToBf16).unwrap();
        assert!((3.4..=4.4).contains(&bf16.max_observed), "BF16 max {}", bf16.max_observed);
        // 419/26 ≈ 16.1; the paper rounds to 16x.
        assert!((bf16.theoretical - 16.0).abs() < 0.2, "{}", bf16.theoretical);
        for r in &rows {
            assert!(r.max_observed <= r.theoretical, "{:?}", r);
            assert!(r.max_observed >= 1.0, "{:?}", r);
        }
    }

    #[test]
    fn unitrace_totals_match_figure3a() {
        let shape = SystemShape::pto40();
        let p = LfdPrecision::Fp32(ComputeMode::Standard);
        let tracer = unitrace_500_steps(shape, p);
        let fig = figure3a(shape);
        let fp32 = fig.iter().find(|x| x.label == "FP32").unwrap();
        assert!(
            (tracer.total_seconds() - fp32.seconds_500_steps).abs() < 1e-9 * fp32.seconds_500_steps,
            "{} vs {}",
            tracer.total_seconds(),
            fp32.seconds_500_steps
        );
        // 17 kernels per step.
        assert_eq!(tracer.event_count(), 500 * 17);
    }
}

//! Input decks.
//!
//! DCMESH reads `PTOquick.dc` / `CONFIG` / `lfd.in`; those files are
//! authors-only, so this module ships equivalent decks built from the
//! published parameters (paper Tables III and V) in a Fortran-ish
//! `key = value` format, parsed by hand. Comments start with `#`, keys
//! are case-insensitive, unknown keys are an error (silently ignored
//! typos would corrupt a precision study).

use dcmesh_lfd::{LaserPulse, LfdParams, Mesh3};
use std::collections::BTreeMap;
use std::fmt;

/// Named system configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemPreset {
    /// Paper Table V row 1: 40 atoms, 64³ mesh, 256 orbitals. Full scale —
    /// for the performance model, not for CPU execution.
    Pto40,
    /// Paper Table V row 2: 135 atoms, 96³ mesh, 1024 orbitals.
    Pto135,
    /// Laptop-scale deck preserving the 40-atom structure (2×2×2
    /// supercell, same physics, reduced mesh/orbitals) — the default for
    /// accuracy experiments.
    Pto40Small,
    /// Laptop-scale deck preserving the 135-atom structure (3×3×3).
    Pto135Small,
}

impl SystemPreset {
    /// Parses a preset name.
    pub fn from_name(s: &str) -> Option<SystemPreset> {
        match s.to_ascii_lowercase().as_str() {
            "pto40" => Some(SystemPreset::Pto40),
            "pto135" => Some(SystemPreset::Pto135),
            "pto40-small" | "pto40_small" => Some(SystemPreset::Pto40Small),
            "pto135-small" | "pto135_small" => Some(SystemPreset::Pto135Small),
            _ => None,
        }
    }

    /// (supercell multiplicity, mesh points per axis, N_orb, N_occ).
    pub fn dimensions(self) -> (usize, usize, usize, usize) {
        match self {
            SystemPreset::Pto40 => (2, 64, 256, 128),
            SystemPreset::Pto135 => (3, 96, 1024, 432),
            SystemPreset::Pto40Small => (2, 12, 16, 8),
            SystemPreset::Pto135Small => (3, 14, 24, 12),
        }
    }
}

/// A fully resolved run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Human-readable label.
    pub label: String,
    /// PbTiO₃ supercell multiplicity (2 → 40 atoms, 3 → 135).
    pub supercell: usize,
    /// Mesh points per axis.
    pub mesh_points: usize,
    /// Orbitals.
    pub n_orb: usize,
    /// Occupied orbitals.
    pub n_occ: usize,
    /// QD time step (a.u.) — Table III: 0.02.
    pub dt: f64,
    /// Total QD steps — Table III: 21 000 (≈ 10 fs).
    pub total_qd_steps: usize,
    /// QD steps per MD step / SCF refresh — 500.
    pub qd_steps_per_md: usize,
    /// Laser amplitude (a.u.).
    pub laser_amplitude: f64,
    /// Laser photon energy (eV).
    pub laser_photon_ev: f64,
    /// Laser duration (fs).
    pub laser_duration_fs: f64,
    /// Nonlocal correction strength (Hartree).
    pub vnl_strength: f64,
    /// Local-potential depth scale.
    pub vloc_depth: f64,
    /// Maxwell feedback coupling.
    pub induced_coupling: f64,
    /// Ehrenfest bond-softening coefficient for the ionic shadow force.
    pub ehrenfest_softening: f64,
    /// Record observables every N QD steps (1 = every step).
    pub record_every: usize,
}

impl RunConfig {
    /// The configuration for a named preset with the paper's Table III
    /// run control.
    pub fn preset(preset: SystemPreset) -> RunConfig {
        let (supercell, mesh_points, n_orb, n_occ) = preset.dimensions();
        let full_scale = matches!(preset, SystemPreset::Pto40 | SystemPreset::Pto135);
        RunConfig {
            label: format!("{preset:?}"),
            supercell,
            mesh_points,
            n_orb,
            n_occ,
            dt: 0.02,
            total_qd_steps: if full_scale { 21_000 } else { 1_500 },
            qd_steps_per_md: 500,
            laser_amplitude: 0.25,
            laser_photon_ev: 3.1,
            laser_duration_fs: if full_scale { 8.0 } else { 0.55 },
            vnl_strength: 0.35,
            vloc_depth: 0.12,
            induced_coupling: 2.0e-4,
            ehrenfest_softening: 0.3,
            record_every: 1,
        }
    }

    /// Builds the LFD parameter block.
    pub fn lfd_params(&self) -> LfdParams {
        let box_length = self.supercell as f64 * dcmesh_qxmd::lattice::PTO_LATTICE_BOHR;
        let spacing = box_length / self.mesh_points as f64;
        LfdParams {
            mesh: Mesh3::cubic(self.mesh_points, spacing),
            n_orb: self.n_orb,
            n_occ: self.n_occ,
            dt: self.dt,
            vnl_strength: self.vnl_strength,
            taylor_order: 4,
            laser: LaserPulse::from_ev_fs(
                self.laser_amplitude,
                self.laser_photon_ev,
                self.laser_duration_fs,
            ),
            induced_coupling: self.induced_coupling,
        }
    }

    /// Number of MD steps (SCF refreshes) the run performs.
    pub fn md_steps(&self) -> usize {
        self.total_qd_steps.div_ceil(self.qd_steps_per_md)
    }

    /// Total simulated time in femtoseconds (Table III: 10 fs at full
    /// scale).
    pub fn total_time_fs(&self) -> f64 {
        self.total_qd_steps as f64 * self.dt / dcmesh_lfd::laser::AU_PER_FS
    }

    /// Parses a deck from text. Unknown keys error; omitted keys keep the
    /// preset's defaults. A `system = <preset>` line must come first.
    pub fn parse(text: &str) -> Result<RunConfig, DeckError> {
        let mut pairs: BTreeMap<String, String> = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| DeckError::new(lineno + 1, format!("expected key = value, got {line:?}")))?;
            pairs.insert(key.trim().to_ascii_lowercase(), value.trim().to_string());
        }
        let system = pairs
            .remove("system")
            .ok_or_else(|| DeckError::new(0, "missing required key: system".into()))?;
        let preset = SystemPreset::from_name(&system)
            .ok_or_else(|| DeckError::new(0, format!("unknown system preset {system:?}")))?;
        let mut cfg = RunConfig::preset(preset);

        macro_rules! take {
            ($key:literal, $field:ident, $ty:ty) => {
                if let Some(v) = pairs.remove($key) {
                    cfg.$field = v
                        .parse::<$ty>()
                        .map_err(|e| DeckError::new(0, format!("bad {}: {e}", $key)))?;
                }
            };
        }
        take!("label", label, String);
        take!("supercell", supercell, usize);
        take!("mesh", mesh_points, usize);
        take!("norb", n_orb, usize);
        take!("nocc", n_occ, usize);
        take!("dt", dt, f64);
        take!("total_qd_steps", total_qd_steps, usize);
        take!("qd_steps_per_md", qd_steps_per_md, usize);
        take!("laser_amplitude", laser_amplitude, f64);
        take!("laser_photon_ev", laser_photon_ev, f64);
        take!("laser_duration_fs", laser_duration_fs, f64);
        take!("vnl_strength", vnl_strength, f64);
        take!("vloc_depth", vloc_depth, f64);
        take!("induced_coupling", induced_coupling, f64);
        take!("ehrenfest_softening", ehrenfest_softening, f64);
        take!("record_every", record_every, usize);

        if let Some((key, _)) = pairs.into_iter().next() {
            return Err(DeckError::new(0, format!("unknown key {key:?}")));
        }
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serialises the configuration back into deck text that
    /// [`RunConfig::parse`] accepts. Every field is written explicitly
    /// (the `system =` line only anchors the parser), so the receiving
    /// side never depends on preset defaults drifting. The shard
    /// coordinator embeds this in its run-directory manifest so worker
    /// ranks reconstruct the exact deck. Labels containing `#` or a
    /// newline cannot round-trip through the deck grammar and are
    /// rejected.
    pub fn to_deck_text(&self) -> Result<String, DeckError> {
        if self.label.contains('#') || self.label.contains('\n') {
            return Err(DeckError::new(
                0,
                format!("label {:?} cannot round-trip through deck text", self.label),
            ));
        }
        Ok(format!(
            "system = pto40-small\nlabel = {}\nsupercell = {}\nmesh = {}\nnorb = {}\n\
             nocc = {}\ndt = {}\ntotal_qd_steps = {}\nqd_steps_per_md = {}\n\
             laser_amplitude = {}\nlaser_photon_ev = {}\nlaser_duration_fs = {}\n\
             vnl_strength = {}\nvloc_depth = {}\ninduced_coupling = {}\n\
             ehrenfest_softening = {}\nrecord_every = {}\n",
            self.label,
            self.supercell,
            self.mesh_points,
            self.n_orb,
            self.n_occ,
            self.dt,
            self.total_qd_steps,
            self.qd_steps_per_md,
            self.laser_amplitude,
            self.laser_photon_ev,
            self.laser_duration_fs,
            self.vnl_strength,
            self.vloc_depth,
            self.induced_coupling,
            self.ehrenfest_softening,
            self.record_every,
        ))
    }

    /// FNV-1a/64 fingerprint of the canonical deck text, as
    /// `"0x{:016x}"`. Two configs hash equal exactly when their
    /// round-tripped decks are byte-identical, so the run archive can
    /// group runs of the same physics across fleet shapes and mode
    /// policies. `None` when the label cannot round-trip through deck
    /// text (such a config cannot be sharded or archived by deck).
    pub fn deck_hash(&self) -> Option<String> {
        let text = self.to_deck_text().ok()?;
        Some(format!("0x{:016x}", crate::checkpoint::fnv1a64(text.as_bytes())))
    }

    /// Sanity checks.
    pub fn validate(&self) -> Result<(), DeckError> {
        let err = |msg: String| Err(DeckError::new(0, msg));
        if self.n_occ > self.n_orb {
            return err(format!("nocc {} > norb {}", self.n_occ, self.n_orb));
        }
        if self.qd_steps_per_md == 0 || self.total_qd_steps == 0 {
            return err("step counts must be positive".into());
        }
        if self.record_every == 0 {
            return err("record_every must be positive".into());
        }
        if self.dt.is_nan() || self.dt <= 0.0 {
            return err(format!("bad dt {}", self.dt));
        }
        Ok(())
    }
}

/// Input-deck parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeckError {
    /// 1-based line number (0 when not line-specific).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl DeckError {
    fn new(line: usize, message: String) -> DeckError {
        DeckError { line, message }
    }
}

impl fmt::Display for DeckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "deck line {}: {}", self.line, self.message)
        } else {
            write!(f, "deck: {}", self.message)
        }
    }
}

impl std::error::Error for DeckError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_iii_values() {
        let cfg = RunConfig::preset(SystemPreset::Pto135);
        assert_eq!(cfg.dt, 0.02);
        assert_eq!(cfg.total_qd_steps, 21_000);
        assert_eq!(cfg.qd_steps_per_md, 500);
        // Table III: total simulation time 10 fs.
        assert!((cfg.total_time_fs() - 10.16).abs() < 0.2, "{}", cfg.total_time_fs());
    }

    #[test]
    fn paper_table_v_dimensions() {
        assert_eq!(SystemPreset::Pto40.dimensions(), (2, 64, 256, 128));
        assert_eq!(SystemPreset::Pto135.dimensions(), (3, 96, 1024, 432));
    }

    #[test]
    fn deck_roundtrip() {
        let text = "
            # test deck
            system = pto40-small
            total_qd_steps = 100   # short
            laser_amplitude = 0.5
        ";
        let cfg = RunConfig::parse(text).expect("valid deck");
        assert_eq!(cfg.total_qd_steps, 100);
        assert_eq!(cfg.laser_amplitude, 0.5);
        assert_eq!(cfg.supercell, 2);
    }

    #[test]
    fn deck_text_roundtrips_every_field() {
        let mut cfg = RunConfig::preset(SystemPreset::Pto135Small);
        cfg.label = "chaos~dom3".to_string();
        cfg.dt = 0.017; // not representable in a short decimal chain
        cfg.laser_amplitude = 1.0 / 3.0;
        cfg.record_every = 7;
        let text = cfg.to_deck_text().expect("deck text");
        let back = RunConfig::parse(&text).expect("reparse");
        assert_eq!(back.label, cfg.label);
        assert_eq!(back.supercell, cfg.supercell);
        assert_eq!(back.mesh_points, cfg.mesh_points);
        assert_eq!(back.n_orb, cfg.n_orb);
        assert_eq!(back.n_occ, cfg.n_occ);
        // Rust's float Display is shortest-roundtrip, so these are bit-exact.
        assert_eq!(back.dt.to_bits(), cfg.dt.to_bits());
        assert_eq!(back.laser_amplitude.to_bits(), cfg.laser_amplitude.to_bits());
        assert_eq!(back.induced_coupling.to_bits(), cfg.induced_coupling.to_bits());
        assert_eq!(back.total_qd_steps, cfg.total_qd_steps);
        assert_eq!(back.record_every, cfg.record_every);

        let mut bad = cfg.clone();
        bad.label = "has # comment".to_string();
        assert!(bad.to_deck_text().is_err(), "unroundtrippable label must be rejected");
    }

    #[test]
    fn unknown_key_rejected() {
        let e = RunConfig::parse("system = pto40\nflux_capacitor = 1\n").unwrap_err();
        assert!(e.message.contains("flux_capacitor"), "{e}");
    }

    #[test]
    fn missing_system_rejected() {
        assert!(RunConfig::parse("dt = 0.02\n").is_err());
    }

    #[test]
    fn malformed_line_reports_lineno() {
        let e = RunConfig::parse("system = pto40\nthis is not a pair\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn invalid_occupation_rejected() {
        let e = RunConfig::parse("system = pto40-small\nnocc = 99\n").unwrap_err();
        assert!(e.message.contains("nocc"), "{e}");
    }

    #[test]
    fn lfd_params_mesh_spans_supercell() {
        let cfg = RunConfig::preset(SystemPreset::Pto40Small);
        let p = cfg.lfd_params();
        let box_len = 2.0 * dcmesh_qxmd::lattice::PTO_LATTICE_BOHR;
        assert!((p.mesh.nx as f64 * p.mesh.spacing - box_len).abs() < 1e-12);
        p.validate();
    }

    #[test]
    fn md_step_count() {
        let cfg = RunConfig::preset(SystemPreset::Pto135);
        assert_eq!(cfg.md_steps(), 42); // 21000 / 500
    }
}

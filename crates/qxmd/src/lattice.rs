//! Lead-titanate supercells and the ionic local potential.
//!
//! PbTiO₃ is a cubic perovskite (paper §IV-E: "Exposing a material such
//! as lead titanate to laser-induced excitation dynamics..."): Pb on the
//! corner, Ti at the body centre, O on the three face centres. The
//! paper's two systems are the 2×2×2 (40-atom) and 3×3×3 (135-atom)
//! supercells.

use crate::species::Species;
use dcmesh_lfd::Mesh3;
use dcmesh_numerics::Real;
use rayon::prelude::*;

/// A periodic collection of atoms in a cubic box.
#[derive(Clone, Debug)]
pub struct AtomicSystem {
    /// Species per atom.
    pub species: Vec<Species>,
    /// Positions in bohr, flattened `[x0, y0, z0, x1, ...]`.
    pub positions: Vec<f64>,
    /// Velocities in a.u., same layout.
    pub velocities: Vec<f64>,
    /// Cubic box edge in bohr.
    pub box_length: f64,
}

/// Cubic PbTiO₃ lattice constant in bohr (≈ 3.9 Å).
pub const PTO_LATTICE_BOHR: f64 = 7.37;

/// Builds an `n×n×n` PbTiO₃ supercell (5n³ atoms).
pub fn pto_supercell(n: usize) -> AtomicSystem {
    assert!(n > 0, "supercell multiplicity must be positive");
    let a = PTO_LATTICE_BOHR;
    // Fractional basis of the perovskite cell.
    let basis: [(Species, [f64; 3]); 5] = [
        (Species::Pb, [0.0, 0.0, 0.0]),
        (Species::Ti, [0.5, 0.5, 0.5]),
        (Species::O, [0.5, 0.5, 0.0]),
        (Species::O, [0.5, 0.0, 0.5]),
        (Species::O, [0.0, 0.5, 0.5]),
    ];
    let mut species = Vec::with_capacity(5 * n * n * n);
    let mut positions = Vec::with_capacity(15 * n * n * n);
    for cx in 0..n {
        for cy in 0..n {
            for cz in 0..n {
                for (sp, frac) in basis {
                    species.push(sp);
                    positions.push((cx as f64 + frac[0]) * a);
                    positions.push((cy as f64 + frac[1]) * a);
                    positions.push((cz as f64 + frac[2]) * a);
                }
            }
        }
    }
    let n_atoms = species.len();
    AtomicSystem {
        species,
        positions,
        velocities: vec![0.0; 3 * n_atoms],
        box_length: n as f64 * a,
    }
}

impl AtomicSystem {
    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.species.len()
    }

    /// True when the system has no atoms.
    pub fn is_empty(&self) -> bool {
        self.species.is_empty()
    }

    /// Total valence electrons.
    pub fn n_electrons(&self) -> u32 {
        self.species.iter().map(|s| s.valence()).sum()
    }

    /// Number of doubly occupied orbitals.
    pub fn n_occupied(&self) -> usize {
        (self.n_electrons() / 2) as usize
    }

    /// Minimum-image displacement `r_j − r_i` component-wise.
    pub fn min_image(&self, i: usize, j: usize) -> [f64; 3] {
        let l = self.box_length;
        core::array::from_fn(|c| {
            let mut d = self.positions[3 * j + c] - self.positions[3 * i + c];
            d -= l * (d / l).round();
            d
        })
    }

    /// Builds the ionic local potential on an LFD mesh: a sum of soft
    /// Gaussian wells, `v(r) = −Z_eff·exp(−|r−R|²/2σ²)/norm`, minimum
    /// image, evaluated in parallel. Generic over the LFD element width.
    pub fn local_potential<T: Real>(&self, mesh: &Mesh3, depth_scale: f64) -> Vec<T> {
        let l = self.box_length;
        let mut v = vec![T::ZERO; mesh.len()];
        v.par_iter_mut().enumerate().for_each(|(g, out)| {
            let (px, py, pz) = mesh.position(g);
            // Map mesh coordinates onto the atomic box (the mesh spans it).
            let scale = l / (mesh.nx as f64 * mesh.spacing);
            let (px, py, pz) = (px * scale, py * scale, pz * scale);
            let mut acc = 0.0f64;
            for (a, sp) in self.species.iter().enumerate() {
                let sigma = sp.core_radius();
                let cutoff2 = (5.0 * sigma) * (5.0 * sigma);
                let mut dx = self.positions[3 * a] - px;
                let mut dy = self.positions[3 * a + 1] - py;
                let mut dz = self.positions[3 * a + 2] - pz;
                dx -= l * (dx / l).round();
                dy -= l * (dy / l).round();
                dz -= l * (dz / l).round();
                let r2 = dx * dx + dy * dy + dz * dz;
                if r2 < cutoff2 {
                    acc -= sp.z_eff() * (-r2 / (2.0 * sigma * sigma)).exp();
                }
            }
            *out = T::from_f64(acc * depth_scale);
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_atom_counts() {
        // Table V: 40 and 135 atoms.
        assert_eq!(pto_supercell(2).len(), 40);
        assert_eq!(pto_supercell(3).len(), 135);
    }

    #[test]
    fn paper_occupation_counts() {
        assert_eq!(pto_supercell(2).n_occupied(), 128);
        assert_eq!(pto_supercell(3).n_occupied(), 432);
    }

    #[test]
    fn stoichiometry() {
        let s = pto_supercell(2);
        let count = |sp: Species| s.species.iter().filter(|&&x| x == sp).count();
        assert_eq!(count(Species::Pb), 8);
        assert_eq!(count(Species::Ti), 8);
        assert_eq!(count(Species::O), 24);
    }

    #[test]
    fn atoms_inside_box() {
        let s = pto_supercell(3);
        for (i, &p) in s.positions.iter().enumerate() {
            assert!(p >= 0.0 && p < s.box_length, "coordinate {i} = {p} outside box");
        }
    }

    #[test]
    fn min_image_antisymmetric_and_bounded() {
        let s = pto_supercell(2);
        let d = s.min_image(0, 7);
        let dr = s.min_image(7, 0);
        for c in 0..3 {
            assert!((d[c] + dr[c]).abs() < 1e-12);
            assert!(d[c].abs() <= s.box_length / 2.0 + 1e-12);
        }
    }

    #[test]
    fn potential_is_negative_and_periodic() {
        let s = pto_supercell(2);
        let mesh = Mesh3::cubic(12, s.box_length / 12.0);
        let v: Vec<f64> = s.local_potential(&mesh, 0.05);
        assert!(v.iter().all(|&x| x <= 0.0), "wells must be attractive");
        assert!(v.iter().any(|&x| x < -1e-4), "potential vanished");
    }

    #[test]
    fn deeper_scale_deepens_wells() {
        let s = pto_supercell(2);
        let mesh = Mesh3::cubic(10, s.box_length / 10.0);
        let v1: Vec<f64> = s.local_potential(&mesh, 0.05);
        let v2: Vec<f64> = s.local_potential(&mesh, 0.10);
        let min1 = v1.iter().cloned().fold(0.0f64, f64::min);
        let min2 = v2.iter().cloned().fold(0.0f64, f64::min);
        assert!((min2 - 2.0 * min1).abs() < 1e-12);
    }
}

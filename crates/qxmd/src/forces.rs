//! Ionic forces: short-range pair potential with Ehrenfest coupling.
//!
//! Between SCF refreshes the ions move on a classical *shadow* potential:
//! a Born–Mayer repulsion plus a screened-Coulomb attraction between
//! unlike charges, softened by the electronic excitation level (laser
//! heating weakens the bonds — the Ehrenfest back-coupling, here in its
//! simplest bond-softening form). Full Hellmann–Feynman forces would need
//! Ψ on the host; the shadow form is what lets DCMESH avoid that
//! transfer.

use crate::lattice::AtomicSystem;
use crate::species::Species;

/// Output of one force evaluation.
#[derive(Clone, Debug)]
pub struct ForceField {
    /// Forces in a.u., flattened like positions.
    pub forces: Vec<f64>,
    /// Classical potential energy (Hartree).
    pub potential: f64,
}

/// Pair interaction cutoff (bohr).
pub const CUTOFF: f64 = 12.0;

/// Effective point charges for the screened electrostatic term (formal
/// charges scaled by 0.4, a common shell-model compromise).
fn charge(sp: Species) -> f64 {
    match sp {
        Species::Pb => 2.0 * 0.4,
        Species::Ti => 4.0 * 0.4,
        Species::O => -2.0 * 0.4,
    }
}

/// Screening length (bohr) of the Yukawa electrostatic term.
const SCREENING: f64 = 6.0;

/// Pair energy and radial derivative at separation `r` (unshifted).
fn pair_terms(si: Species, sj: Species, r: f64, soft: f64) -> (f64, f64) {
    // Born–Mayer repulsion: A·exp(−r/ρ) with mixed parameters.
    let a_ij = (si.repulsion_a() * sj.repulsion_a()).sqrt();
    let rho_ij = 0.5 * (si.repulsion_rho() + sj.repulsion_rho());
    let rep = a_ij * (-r / rho_ij).exp();
    // Screened Coulomb (Yukawa): q_i·q_j·exp(−r/λ)/r, softened.
    let qq = charge(si) * charge(sj) * soft;
    let yuk = qq * (-r / SCREENING).exp() / r;
    let d_rep = -rep / rho_ij;
    let d_yuk = -yuk * (1.0 / r + 1.0 / SCREENING);
    (rep + yuk, d_rep + d_yuk)
}

/// Evaluates forces and potential energy.
///
/// `excitation_fraction` ∈ [0, 1] is `nexc / n_electrons`; the attractive
/// part of the potential is scaled by `(1 − softening·excitation)`,
/// transferring laser energy into the lattice (bond softening).
///
/// The sum runs over *all* periodic images within the cutoff (the ±1
/// shell suffices because `CUTOFF < 2·box`), not minimum image only —
/// minimum image tie-breaks at exactly L/2 would break the ideal
/// lattice's inversion symmetry. The pair energy is shifted to zero at
/// the cutoff so the potential is continuous.
pub fn evaluate(
    system: &AtomicSystem,
    excitation_fraction: f64,
    softening: f64,
) -> ForceField {
    let n = system.len();
    let l = system.box_length;
    assert!(
        CUTOFF < 2.0 * l,
        "cutoff {CUTOFF} needs more than the ±1 image shell for box {l}"
    );
    let mut forces = vec![0.0f64; 3 * n];
    let mut potential = 0.0f64;
    let soft = (1.0 - softening * excitation_fraction).max(0.0);

    for i in 0..n {
        for j in (i + 1)..n {
            let (si, sj) = (system.species[i], system.species[j]);
            // Energy shift making U(CUTOFF) = 0 for this species pair.
            let (u_cut, _) = pair_terms(si, sj, CUTOFF, soft);
            let base: [f64; 3] = core::array::from_fn(|c| {
                system.positions[3 * j + c] - system.positions[3 * i + c]
            });
            for sx in -1i32..=1 {
                for sy in -1i32..=1 {
                    for sz in -1i32..=1 {
                        let d = [
                            base[0] + sx as f64 * l,
                            base[1] + sy as f64 * l,
                            base[2] + sz as f64 * l,
                        ];
                        let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                        if !(1e-12..=CUTOFF * CUTOFF).contains(&r2) {
                            continue;
                        }
                        let r = r2.sqrt();
                        let (u, du) = pair_terms(si, sj, r, soft);
                        potential += u - u_cut;
                        let f_over_r = -du / r;
                        for c in 0..3 {
                            // d = r_j − r_i (+image); repulsion pushes j
                            // along +d.
                            forces[3 * j + c] += f_over_r * d[c];
                            forces[3 * i + c] -= f_over_r * d[c];
                        }
                    }
                }
            }
        }
    }
    ForceField { forces, potential }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::pto_supercell;

    #[test]
    fn newton_third_law() {
        let s = pto_supercell(2);
        let ff = evaluate(&s, 0.0, 0.0);
        for c in 0..3 {
            let total: f64 = (0..s.len()).map(|i| ff.forces[3 * i + c]).sum();
            assert!(total.abs() < 1e-9, "net force component {c} = {total}");
        }
    }

    #[test]
    fn perfect_lattice_forces_vanish_by_symmetry() {
        // Every atom in the ideal perovskite sits on an inversion-symmetric
        // site of the periodic supercell, so forces cancel.
        let s = pto_supercell(2);
        let ff = evaluate(&s, 0.0, 0.0);
        let max = ff.forces.iter().fold(0.0f64, |m, &f| m.max(f.abs()));
        assert!(max < 1e-9, "ideal lattice max force {max}");
    }

    #[test]
    fn displaced_atom_is_pulled_back_or_pushed() {
        let mut s = pto_supercell(2);
        let ff0 = evaluate(&s, 0.0, 0.0);
        s.positions[0] += 0.3; // displace first Pb along x
        let ff = evaluate(&s, 0.0, 0.0);
        assert!(
            ff.forces[0].abs() > 1e-4,
            "displacement produced no restoring force: {}",
            ff.forces[0]
        );
        assert!(ff.potential > ff0.potential, "displacement must raise the energy");
    }

    #[test]
    fn force_is_negative_energy_gradient() {
        let mut s = pto_supercell(2);
        s.positions[4] += 0.21; // break symmetry first
        let h = 1e-5;
        let idx = 3; // x of the second atom
        let f_analytic = evaluate(&s, 0.0, 0.0).forces[idx];
        s.positions[idx] += h;
        let e_plus = evaluate(&s, 0.0, 0.0).potential;
        s.positions[idx] -= 2.0 * h;
        let e_minus = evaluate(&s, 0.0, 0.0).potential;
        s.positions[idx] += h;
        let f_numeric = -(e_plus - e_minus) / (2.0 * h);
        assert!(
            (f_analytic - f_numeric).abs() < 1e-6 * (1.0 + f_numeric.abs()),
            "{f_analytic} vs {f_numeric}"
        );
    }

    #[test]
    fn excitation_softens_binding() {
        let mut s = pto_supercell(2);
        s.positions[0] += 0.4;
        let cold = evaluate(&s, 0.0, 0.5);
        let hot = evaluate(&s, 0.5, 0.5);
        // Softening scales the (mostly attractive) Yukawa term down, so
        // the two energies must differ.
        assert_ne!(cold.potential, hot.potential);
    }

    #[test]
    fn cutoff_limits_interaction() {
        // Two isolated atoms beyond the cutoff feel nothing.
        let s = AtomicSystem {
            species: vec![Species::O, Species::O],
            positions: vec![0.0, 0.0, 0.0, 13.0, 0.0, 0.0],
            velocities: vec![0.0; 6],
            box_length: 40.0,
        };
        let ff = evaluate(&s, 0.0, 0.0);
        assert_eq!(ff.potential, 0.0);
        assert!(ff.forces.iter().all(|&f| f == 0.0));
    }
}

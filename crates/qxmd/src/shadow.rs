//! Shadow dynamics and CPU↔GPU transfer accounting.
//!
//! "In the latest implementation, LFD runs on the GPU and QXMD runs on
//! the CPU, and CPU-GPU data transfers are minimized through the use of
//! shadow dynamics" (paper §II-C). Instead of shipping the full
//! `N_grid × N_orb` wave function to the host every MD step, LFD keeps a
//! small subspace *shadow* matrix (`S = C†C`, BLAS call 9 of each QD
//! step) whose drift from the identity tells QXMD how far the electronic
//! state has rotated; the scalar observables (nexc, energies) ride along.
//! The [`TransferLedger`] makes the saving measurable.

use dcmesh_lfd::state::LfdState;
use dcmesh_numerics::Real;

/// Byte counter for host↔device traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TransferLedger {
    /// Bytes uploaded host → device.
    pub host_to_device: u64,
    /// Bytes downloaded device → host.
    pub device_to_host: u64,
    /// Individual transfer events.
    pub events: u64,
}

impl TransferLedger {
    /// Records an upload.
    pub fn upload(&mut self, bytes: u64) {
        self.host_to_device += bytes;
        self.events += 1;
    }

    /// Records a download.
    pub fn download(&mut self, bytes: u64) {
        self.device_to_host += bytes;
        self.events += 1;
    }

    /// Total bytes in both directions.
    pub fn total(&self) -> u64 {
        self.host_to_device + self.device_to_host
    }
}

/// Complex-element byte width of the LFD state on the device.
const C32_BYTES: u64 = 8;
/// Complex-double width of host-side subspace matrices.
const C64_BYTES: u64 = 16;

/// Records the per-MD-step synchronisation traffic *with* shadow
/// dynamics: the subspace shadow matrix and observables come down, the
/// refreshed potential and (at SCF boundaries) the reference rotation go
/// up. No grid-sized array crosses the bus between refreshes.
pub fn sync_with_shadow(ledger: &mut TransferLedger, n_grid: usize, n_orb: usize, n_atoms: usize) {
    let _ = n_grid; // the whole point: no N_grid-sized transfer
    ledger.download((n_orb * n_orb) as u64 * C64_BYTES); // shadow matrix
    ledger.download(64); // scalar observables (ekin…javg)
    ledger.upload((n_atoms * 3) as u64 * 8); // new ionic positions
    ledger.upload((n_orb * n_orb) as u64 * C64_BYTES); // SCF rotation
}

/// The naive alternative: ship the full wave function down and back up
/// every MD step.
pub fn sync_full_state(ledger: &mut TransferLedger, n_grid: usize, n_orb: usize, n_atoms: usize) {
    ledger.download((n_grid * n_orb) as u64 * C32_BYTES);
    ledger.upload((n_grid * n_orb) as u64 * C32_BYTES);
    ledger.upload((n_atoms * 3) as u64 * 8);
}

/// Max deviation of the shadow matrix from the identity — how far the
/// propagated subspace has rotated since the last refresh. QXMD uses
/// this to decide whether force extrapolation is still trustworthy.
pub fn shadow_drift<T: Real>(state: &LfdState<T>, n_orb: usize) -> f64 {
    let mut d = 0.0f64;
    for i in 0..n_orb {
        for j in 0..n_orb {
            let want = if i == j { 1.0 } else { 0.0 };
            let s = state.shadow[i * n_orb + j];
            let dev = ((s.re.to_f64() - want).powi(2) + s.im.to_f64().powi(2)).sqrt();
            d = d.max(dev);
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_lfd::propagator::{qd_step, QdScratch};
    use dcmesh_lfd::state::cosine_potential;
    use dcmesh_lfd::{LaserPulse, LfdParams, Mesh3};
    use mkl_lite::{set_compute_mode, ComputeMode};

    #[test]
    fn shadow_transfers_orders_of_magnitude_smaller() {
        // Paper-scale 135-atom system.
        let (n_grid, n_orb, n_atoms) = (96 * 96 * 96, 1024, 135);
        let mut with = TransferLedger::default();
        let mut without = TransferLedger::default();
        for _ in 0..42 {
            sync_with_shadow(&mut with, n_grid, n_orb, n_atoms);
            sync_full_state(&mut without, n_grid, n_orb, n_atoms);
        }
        let ratio = without.total() as f64 / with.total() as f64;
        assert!(ratio > 100.0, "shadow dynamics saves only {ratio}x");
    }

    #[test]
    fn ledger_accumulates() {
        let mut l = TransferLedger::default();
        l.upload(100);
        l.download(50);
        assert_eq!(l.total(), 150);
        assert_eq!(l.events, 2);
    }

    #[test]
    fn drift_grows_with_propagation() {
        set_compute_mode(ComputeMode::Standard);
        let p = LfdParams {
            mesh: Mesh3::cubic(9, 0.6),
            n_orb: 6,
            n_occ: 3,
            dt: 0.02,
            vnl_strength: 0.2,
            taylor_order: 4,
            laser: LaserPulse { amplitude: 0.4, omega: 0.4, duration: 500.0, phase: 0.0 },
            induced_coupling: 0.0,
        };
        let mut st = dcmesh_lfd::LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.3));
        let mut scratch = QdScratch::new(&p);
        qd_step(&p, &mut st, &mut scratch);
        let early = shadow_drift(&st, p.n_orb);
        for _ in 0..60 {
            qd_step(&p, &mut st, &mut scratch);
        }
        let late = shadow_drift(&st, p.n_orb);
        assert!(
            late > early,
            "drift should grow under driving: early {early}, late {late}"
        );
    }
}

//! Velocity-Verlet molecular dynamics for the ionic subsystem.

use crate::forces::{evaluate, ForceField};
use crate::lattice::AtomicSystem;

/// A velocity-Verlet integrator with cached forces.
#[derive(Clone, Debug)]
pub struct MdIntegrator {
    /// Ionic time step in a.u. (one MD step spans 500 QD steps in the
    /// paper's multiple time-scale splitting).
    pub dt: f64,
    /// Ehrenfest bond-softening coefficient.
    pub softening: f64,
    field: ForceField,
}

impl MdIntegrator {
    /// Creates an integrator and evaluates initial forces (at zero
    /// excitation — correct for a trajectory that has not stepped yet).
    pub fn new(system: &AtomicSystem, dt: f64, softening: f64) -> MdIntegrator {
        MdIntegrator::resume(system, dt, softening, 0.0)
    }

    /// Rebuilds an integrator mid-trajectory. The cached force field is
    /// re-evaluated at `excitation_fraction` — the value the **last**
    /// [`MdIntegrator::step`] used. Positions do not move between that
    /// step's force evaluation and the next one, and `evaluate` is a
    /// pure function, so the rebuilt field is bit-identical to the one
    /// the replaced integrator carried. This is what makes checkpoint
    /// resume, supervisor rollback and burst-replay verification
    /// bit-exact; `new` (excitation 0) would silently diverge on the
    /// first half-kick of any excited trajectory.
    pub fn resume(
        system: &AtomicSystem,
        dt: f64,
        softening: f64,
        excitation_fraction: f64,
    ) -> MdIntegrator {
        assert!(dt > 0.0 && dt.is_finite(), "bad MD timestep");
        let field = evaluate(system, excitation_fraction, softening);
        MdIntegrator { dt, softening, field }
    }

    /// Advances one MD step. `excitation_fraction` comes from the latest
    /// LFD `remap_occ` (through the shadow channel).
    pub fn step(&mut self, system: &mut AtomicSystem, excitation_fraction: f64) {
        let _span = dcmesh_telemetry::span("md_step")
            .attr("atoms", dcmesh_telemetry::AttrValue::U64(system.len() as u64))
            .attr("nexc", dcmesh_telemetry::AttrValue::F64(excitation_fraction))
            .enter();
        let _phase = dcmesh_telemetry::phase_scope("qxmd::md_step");
        let n = system.len();
        let dt = self.dt;
        // Half kick + drift.
        for i in 0..n {
            let inv_m = 1.0 / system.species[i].mass();
            for c in 0..3 {
                system.velocities[3 * i + c] += 0.5 * dt * self.field.forces[3 * i + c] * inv_m;
                system.positions[3 * i + c] += dt * system.velocities[3 * i + c];
                // Wrap into the box.
                let l = system.box_length;
                system.positions[3 * i + c] = system.positions[3 * i + c].rem_euclid(l);
            }
        }
        // New forces + second half kick.
        self.field = evaluate(system, excitation_fraction, self.softening);
        for i in 0..n {
            let inv_m = 1.0 / system.species[i].mass();
            for c in 0..3 {
                system.velocities[3 * i + c] += 0.5 * dt * self.field.forces[3 * i + c] * inv_m;
            }
        }
    }

    /// Ionic kinetic energy (Hartree), accumulated over the fixed-shape
    /// reduction tree (feeds the `ekin` observable — part of the
    /// bit-reproducibility contract).
    pub fn kinetic_energy(&self, system: &AtomicSystem) -> f64 {
        dcmesh_numerics::reduce::sum_with(system.len(), |i| {
            let m = system.species[i].mass();
            let v2 = system.velocities[3 * i].powi(2)
                + system.velocities[3 * i + 1].powi(2)
                + system.velocities[3 * i + 2].powi(2);
            0.5 * m * v2
        })
    }

    /// Classical potential energy from the last force evaluation.
    pub fn potential_energy(&self) -> f64 {
        self.field.potential
    }

    /// Instantaneous temperature in Kelvin.
    pub fn temperature(&self, system: &AtomicSystem) -> f64 {
        const HARTREE_PER_KELVIN: f64 = 3.166_811_563e-6;
        let dof = (3 * system.len()) as f64;
        2.0 * self.kinetic_energy(system) / (dof * HARTREE_PER_KELVIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::pto_supercell;

    #[test]
    fn energy_conserved_without_excitation() {
        let mut s = pto_supercell(2);
        // Perturb to get dynamics going.
        s.positions[0] += 0.2;
        s.positions[22] -= 0.15;
        let mut md = MdIntegrator::new(&s, 10.0, 0.0);
        let e0 = md.kinetic_energy(&s) + md.potential_energy();
        for _ in 0..200 {
            md.step(&mut s, 0.0);
        }
        let e1 = md.kinetic_energy(&s) + md.potential_energy();
        let drift = (e1 - e0).abs() / (1.0 + e0.abs());
        assert!(drift < 1e-5, "MD energy drift {drift}");
    }

    #[test]
    fn static_lattice_stays_static() {
        let mut s = pto_supercell(2);
        let mut md = MdIntegrator::new(&s, 10.0, 0.0);
        let p0 = s.positions.clone();
        for _ in 0..10 {
            md.step(&mut s, 0.0);
        }
        for (a, b) in s.positions.iter().zip(&p0) {
            // Compare periodically: a coordinate at 0 may wrap to L under
            // an epsilon-sized step.
            let mut d = (a - b).abs();
            d = d.min((d - s.box_length).abs());
            assert!(d < 1e-9, "ideal lattice moved: {b} -> {a}");
        }
    }

    #[test]
    fn displaced_atom_oscillates() {
        let mut s = pto_supercell(2);
        s.positions[2] += 0.3; // z of the first Pb
        let mut md = MdIntegrator::new(&s, 20.0, 0.0);
        // The displaced coordinate should move back toward (and past) the
        // lattice site within a phonon half-period.
        let start = s.positions[2];
        let mut min_seen = start;
        for _ in 0..2000 {
            md.step(&mut s, 0.0);
            min_seen = min_seen.min(s.positions[2]);
        }
        assert!(min_seen < start - 0.05, "no oscillation: min {min_seen} from {start}");
    }

    #[test]
    fn resume_rebuilds_the_live_integrator_bit_exactly() {
        let mut s = pto_supercell(2);
        s.positions[0] += 0.2;
        let mut md = MdIntegrator::new(&s, 10.0, 0.5);
        for _ in 0..5 {
            md.step(&mut s, 0.3);
        }

        // Rebuild from the system alone, seeding the force field with the
        // excitation fraction the last step used, and advance both.
        let mut s_resumed = s.clone();
        let mut md_resumed = MdIntegrator::resume(&s_resumed, 10.0, 0.5, 0.3);
        let mut s_fresh = s.clone();
        let mut md_fresh = MdIntegrator::new(&s_fresh, 10.0, 0.5);
        md.step(&mut s, 0.35);
        md_resumed.step(&mut s_resumed, 0.35);
        md_fresh.step(&mut s_fresh, 0.35);

        for (a, b) in s.positions.iter().zip(&s_resumed.positions) {
            assert_eq!(a.to_bits(), b.to_bits(), "resume diverged in positions");
        }
        for (a, b) in s.velocities.iter().zip(&s_resumed.velocities) {
            assert_eq!(a.to_bits(), b.to_bits(), "resume diverged in velocities");
        }
        // ...whereas a `new` integrator (zero-excitation field) is not
        // bit-exact mid-trajectory — the hazard `resume` exists to close.
        assert!(
            s.velocities.iter().zip(&s_fresh.velocities).any(|(a, b)| a.to_bits() != b.to_bits()),
            "zero-excitation rebuild unexpectedly matched — test lost its discriminating power"
        );
    }

    #[test]
    fn temperature_positive_when_moving() {
        let mut s = pto_supercell(2);
        for v in s.velocities.iter_mut() {
            *v = 1e-5;
        }
        let md = MdIntegrator::new(&s, 10.0, 0.0);
        assert!(md.temperature(&s) > 0.0);
        assert!(md.kinetic_energy(&s) > 0.0);
    }
}

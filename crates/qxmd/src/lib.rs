//! `dcmesh-qxmd`: the CPU-resident FP64 half of DCMESH.
//!
//! QXMD owns everything the paper keeps at double precision on the host:
//!
//! * the **ionic system** — lead-titanate (PbTiO₃) supercells matching the
//!   paper's 40- and 135-atom configurations ([`lattice`]),
//! * **molecular dynamics** — velocity-Verlet with a short-range pair
//!   potential plus an Ehrenfest bond-softening coupling to the electronic
//!   excitation ([`forces`], [`md`]),
//! * the **SCF wave-function refresh** — executed every 500 QD steps at
//!   FP64, re-orthonormalising (Löwdin) and re-diagonalising
//!   (Rayleigh–Ritz) the propagated orbitals. This is the paper's stated
//!   mechanism that "prevents the buildup of truncation errors which may
//!   otherwise accumulate through the use of lower precision calculations"
//!   ([`scf`]),
//! * **shadow dynamics** — force extrapolation from the subspace shadow
//!   matrix so ionic steps between refreshes need no Ψ transfer, with
//!   explicit CPU↔GPU byte accounting ([`shadow`]).

pub mod diagnostics;
pub mod forces;
pub mod lattice;
pub mod md;
pub mod scf;
pub mod shadow;
pub mod species;

pub use lattice::{pto_supercell, AtomicSystem};
pub use md::MdIntegrator;
pub use scf::{initial_scf, scf_refresh, ScfReport};
pub use species::Species;

//! Atomic species of lead titanate.

/// The three species of PbTiO₃.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Species {
    /// Lead.
    Pb,
    /// Titanium.
    Ti,
    /// Oxygen.
    O,
}

/// Atomic mass unit in electron masses (a.u.).
pub const AMU: f64 = 1_822.888_486;

impl Species {
    /// Mass in atomic units (electron masses).
    pub fn mass(self) -> f64 {
        match self {
            Species::Pb => 207.2 * AMU,
            Species::Ti => 47.867 * AMU,
            Species::O => 15.999 * AMU,
        }
    }

    /// Valence electrons contributed by the pseudopotential. Chosen so a
    /// PbTiO₃ formula unit carries 32 electrons: the paper's 40-atom
    /// (8-cell) system then has 256 electrons → N_occ = 128, matching the
    /// m = 128 of Table VII; the 135-atom (27-cell) system has 864 →
    /// N_occ = 432.
    pub fn valence(self) -> u32 {
        match self {
            Species::Pb => 4,  // 6s² 6p²
            Species::Ti => 10, // 3p⁶ 3d² 4s²
            Species::O => 6,   // 2s² 2p⁴
        }
    }

    /// Effective ionic charge for the local pseudopotential well (same as
    /// the valence for a norm-conserving local part).
    pub fn z_eff(self) -> f64 {
        self.valence() as f64
    }

    /// Gaussian width (bohr) of the soft local pseudopotential.
    pub fn core_radius(self) -> f64 {
        match self {
            Species::Pb => 2.2,
            Species::Ti => 1.8,
            Species::O => 1.2,
        }
    }

    /// Born–Mayer short-range repulsion prefactor (Hartree).
    pub fn repulsion_a(self) -> f64 {
        match self {
            Species::Pb => 12.0,
            Species::Ti => 9.0,
            Species::O => 5.0,
        }
    }

    /// Born–Mayer decay length (bohr).
    pub fn repulsion_rho(self) -> f64 {
        match self {
            Species::Pb => 0.62,
            Species::Ti => 0.55,
            Species::O => 0.45,
        }
    }

    /// Chemical symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Species::Pb => "Pb",
            Species::Ti => "Ti",
            Species::O => "O",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_unit_has_32_valence_electrons() {
        let cell = Species::Pb.valence() + Species::Ti.valence() + 3 * Species::O.valence();
        assert_eq!(cell, 32);
    }

    #[test]
    fn paper_system_electron_counts() {
        let per_cell = 32;
        assert_eq!(8 * per_cell / 2, 128, "40-atom system must give N_occ = 128");
        assert_eq!(27 * per_cell / 2, 432, "135-atom system must give N_occ = 432");
    }

    #[test]
    fn masses_ordered() {
        assert!(Species::Pb.mass() > Species::Ti.mass());
        assert!(Species::Ti.mass() > Species::O.mass());
        // Pb in electron masses is ~3.8e5.
        assert!((Species::Pb.mass() / AMU - 207.2).abs() < 1e-9);
    }

    #[test]
    fn symbols() {
        assert_eq!(Species::Pb.symbol(), "Pb");
        assert_eq!(Species::Ti.symbol(), "Ti");
        assert_eq!(Species::O.symbol(), "O");
    }
}

//! Classical MD diagnostics: radial distribution and displacement
//! analysis.
//!
//! Standard tooling for judging whether the ionic subsystem behaves
//! physically over a run — the lattice should stay crystalline at low
//! excitation and disorder progressively as the Ehrenfest coupling pumps
//! laser energy into the phonons.

use crate::lattice::AtomicSystem;
use crate::species::Species;

/// A radial distribution function g(r) histogram.
#[derive(Clone, Debug)]
pub struct Rdf {
    /// Bin centres in bohr.
    pub r: Vec<f64>,
    /// g(r) values (normalised to 1 at the ideal-gas density).
    pub g: Vec<f64>,
}

/// Computes g(r) over all pairs (optionally restricted to one species
/// pair), with minimum-image distances up to `r_max < box/2`.
pub fn radial_distribution(
    system: &AtomicSystem,
    pair: Option<(Species, Species)>,
    r_max: f64,
    bins: usize,
) -> Rdf {
    assert!(bins >= 1, "need at least one bin");
    assert!(
        r_max > 0.0 && r_max <= system.box_length / 2.0,
        "r_max must lie in (0, box/2]"
    );
    let n = system.len();
    let dr = r_max / bins as f64;
    let mut counts = vec![0usize; bins];
    let mut n_selected_pairs = 0usize;

    let selected = |a: Species, b: Species| match pair {
        None => true,
        Some((x, y)) => (a == x && b == y) || (a == y && b == x),
    };

    for i in 0..n {
        for j in (i + 1)..n {
            if !selected(system.species[i], system.species[j]) {
                continue;
            }
            n_selected_pairs += 1;
            let d = system.min_image(i, j);
            let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            if r < r_max {
                counts[(r / dr) as usize] += 1;
            }
        }
    }

    let volume = system.box_length.powi(3);
    // Ideal-gas pair density for the selected pair set.
    let pair_density = n_selected_pairs as f64 / volume;
    let mut r_out = Vec::with_capacity(bins);
    let mut g_out = Vec::with_capacity(bins);
    for (b, &c) in counts.iter().enumerate() {
        let r_lo = b as f64 * dr;
        let r_hi = r_lo + dr;
        let shell = 4.0 / 3.0 * core::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
        r_out.push(r_lo + dr / 2.0);
        g_out.push(if pair_density > 0.0 { c as f64 / (shell * pair_density) } else { 0.0 });
    }
    Rdf { r: r_out, g: g_out }
}

/// Mean-square displacement of the current positions from a reference
/// snapshot (minimum image), in bohr².
pub fn mean_square_displacement(system: &AtomicSystem, reference: &[f64]) -> f64 {
    assert_eq!(reference.len(), system.positions.len(), "reference size mismatch");
    let n = system.len();
    if n == 0 {
        return 0.0;
    }
    let l = system.box_length;
    let mut acc = 0.0;
    for (&p, &r) in system.positions[..3 * n].iter().zip(&reference[..3 * n]) {
        let mut d = p - r;
        d -= l * (d / l).round();
        acc += d * d;
    }
    acc / n as f64
}

/// The Lindemann ratio: RMS displacement over the nearest-neighbour
/// distance — the classic melting indicator (≈0.1 at melting).
pub fn lindemann_ratio(system: &AtomicSystem, reference: &[f64], neighbour_distance: f64) -> f64 {
    mean_square_displacement(system, reference).sqrt() / neighbour_distance
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{pto_supercell, PTO_LATTICE_BOHR};

    #[test]
    fn perfect_lattice_rdf_has_sharp_peaks() {
        let s = pto_supercell(2);
        let rdf = radial_distribution(&s, None, s.box_length / 2.0, 60);
        // The ideal perovskite has discrete shells: most bins empty, a few
        // strongly peaked.
        let occupied = rdf.g.iter().filter(|&&g| g > 0.0).count();
        assert!(occupied < rdf.g.len() / 2, "too many occupied bins: {occupied}");
        let peak = rdf.g.iter().cloned().fold(0.0f64, f64::max);
        assert!(peak > 3.0, "no sharp shell structure: peak {peak}");
    }

    #[test]
    fn ti_o_first_shell_at_half_lattice_constant() {
        // Ti sits at the cell centre, O on face centres: nearest Ti-O
        // distance is a/2.
        let s = pto_supercell(2);
        let rdf = radial_distribution(&s, Some((Species::Ti, Species::O)), 6.0, 120);
        let (idx, _) = rdf
            .g
            .iter()
            .enumerate()
            .fold((0, 0.0f64), |best, (i, &g)| if g > best.1 { (i, g) } else { best });
        let peak_r = rdf.r[idx];
        assert!(
            (peak_r - PTO_LATTICE_BOHR / 2.0).abs() < 0.2,
            "Ti-O first shell at {peak_r}, expected {}",
            PTO_LATTICE_BOHR / 2.0
        );
    }

    #[test]
    fn msd_zero_for_identical_positions() {
        let s = pto_supercell(2);
        assert_eq!(mean_square_displacement(&s, &s.positions.clone()), 0.0);
    }

    #[test]
    fn msd_counts_uniform_shift_periodically() {
        let mut s = pto_supercell(2);
        let reference = s.positions.clone();
        for p in s.positions.iter_mut() {
            *p = (*p + 0.5).rem_euclid(s.box_length);
        }
        // Each coordinate moved 0.5 -> MSD = 3 * 0.25.
        let msd = mean_square_displacement(&s, &reference);
        assert!((msd - 0.75).abs() < 1e-9, "{msd}");
        // A full box-length shift is no displacement at all (periodic).
        let mut s2 = pto_supercell(2);
        for p in s2.positions.iter_mut() {
            *p = (*p + s2.box_length).rem_euclid(s2.box_length);
        }
        assert!(mean_square_displacement(&s2, &reference) < 1e-18);
    }

    #[test]
    fn lindemann_grows_with_disorder() {
        let s0 = pto_supercell(2);
        let reference = s0.positions.clone();
        let nn = PTO_LATTICE_BOHR / 2.0;
        let mut s = s0.clone();
        for (i, p) in s.positions.iter_mut().enumerate() {
            *p += 0.1 * ((i % 7) as f64 / 7.0 - 0.5);
        }
        let small = lindemann_ratio(&s, &reference, nn);
        for (i, p) in s.positions.iter_mut().enumerate() {
            *p += 0.6 * ((i % 5) as f64 / 5.0 - 0.5);
        }
        let large = lindemann_ratio(&s, &reference, nn);
        assert!(large > small && small > 0.0);
    }

    #[test]
    #[should_panic(expected = "r_max")]
    fn rdf_beyond_half_box_rejected() {
        let s = pto_supercell(2);
        radial_distribution(&s, None, s.box_length, 10);
    }
}

//! The FP64 SCF wave-function refresh.
//!
//! Every 500 QD steps DCMESH executes "Self-Consistent Field (SCF) at
//! FP64 to update the wave function ... Updating the wavefunction with
//! FP64 precision prevents the buildup of truncation errors which may
//! otherwise accumulate through the use of lower precision calculations.
//! This is the fundamental reason why the code is able to run with
//! alternative BLAS precision modes" (paper §V). This module implements
//! that mechanism:
//!
//! 1. promote Ψ to complex double,
//! 2. Löwdin-orthonormalise (the minimal-perturbation choice),
//! 3. Rayleigh–Ritz: diagonalise `H` in the orbital subspace at FP64 and
//!    rotate Ψ onto the eigenvectors,
//! 4. demote back to the LFD element width and refresh the Ψ(0)
//!    reference and its eigenvalues.
//!
//! The subspace Hamiltonian uses the field-free `H₀` (the laser enters
//! only the real-time propagation). Everything here runs on the "CPU
//! side" of the model at full double precision, regardless of the LFD
//! compute mode.

use dcmesh_lfd::hamiltonian::apply_h;
use dcmesh_lfd::state::{LfdParams, LfdState};
use dcmesh_linalg::hermitian::eigh;
use dcmesh_linalg::orth::{lowdin_orthonormalize, orthonormality_defect, OrthError};
use dcmesh_numerics::{c64, Complex, Real, C64};
use mkl_lite::{zgemm, Op};

/// Diagnostics of one SCF refresh.
#[derive(Clone, Debug)]
pub struct ScfReport {
    /// `|Ψ†Ψ·ΔV − I|_max` before the refresh — the accumulated
    /// low-precision drift this refresh absorbed.
    pub defect_before: f64,
    /// Same measure after the refresh (≈ machine epsilon).
    pub defect_after: f64,
    /// Kohn–Sham eigenvalues after diagonalisation (Hartree).
    pub eigenvalues: Vec<f64>,
    /// Max |ΔΨ| the refresh applied (how much correction was needed).
    pub max_correction: f64,
}

/// Performs one FP64 refresh of the propagated orbitals.
///
/// Fails with [`OrthError`] when the orbital overlap matrix has gone
/// numerically singular — the signature of a state already destroyed by
/// accumulated low-precision error (or an injected fault). The state is
/// left untouched in that case so a supervisor can roll back to a
/// checkpoint and escalate the compute mode.
pub fn scf_refresh<T: Real>(
    params: &LfdParams,
    state: &mut LfdState<T>,
) -> Result<ScfReport, OrthError> {
    let _span = dcmesh_telemetry::span("scf_refresh")
        .attr("n_orb", dcmesh_telemetry::AttrValue::U64(params.n_orb as u64))
        .enter();
    let _phase = dcmesh_telemetry::phase_scope("qxmd::scf_refresh");
    let n_orb = params.n_orb;
    let ngrid = params.mesh.len();
    let dv = params.mesh.dv();
    let sqrt_dv = dv.sqrt();

    // (1) Promote, folding in √ΔV so plain l2 orthonormality equals the
    // physical ⟨·|·⟩ΔV inner product.
    let mut psi64: Vec<C64> = state
        .psi
        .iter()
        .map(|z| c64(z.re.to_f64() * sqrt_dv, z.im.to_f64() * sqrt_dv))
        .collect();
    let defect_before = orthonormality_defect(&psi64, ngrid, n_orb);

    // (2) Löwdin orthonormalisation at FP64. A singular overlap aborts the
    // refresh before `state.psi` is written.
    lowdin_orthonormalize(&mut psi64, ngrid, n_orb)?;

    // (3) Rayleigh–Ritz on H₀ at FP64.
    let vloc64: Vec<f64> = state.vloc.iter().map(|v| v.to_f64()).collect();
    let mut h_psi = vec![C64::zero(); ngrid * n_orb];
    apply_h(&params.mesh, n_orb, &vloc64, 0.0, &psi64, &mut h_psi);
    let mut h_sub = vec![C64::zero(); n_orb * n_orb];
    zgemm(
        Op::ConjTrans,
        Op::None,
        n_orb,
        n_orb,
        ngrid,
        C64::one(),
        &psi64,
        n_orb,
        &h_psi,
        n_orb,
        C64::zero(),
        &mut h_sub,
        n_orb,
    );
    let eig = eigh(&h_sub, n_orb);

    // Rotate Ψ onto the eigenvectors: Ψ ← Ψ·V.
    let mut rotated = vec![C64::zero(); ngrid * n_orb];
    zgemm(
        Op::None,
        Op::None,
        ngrid,
        n_orb,
        n_orb,
        C64::one(),
        &psi64,
        n_orb,
        &eig.eigenvectors,
        n_orb,
        C64::zero(),
        &mut rotated,
        n_orb,
    );
    let defect_after = orthonormality_defect(&rotated, ngrid, n_orb);

    // (4) Demote (undoing the √ΔV fold) and refresh the reference.
    let inv_sqrt_dv = 1.0 / sqrt_dv;
    let mut max_correction = 0.0f64;
    for (dst, src) in state.psi.iter_mut().zip(&rotated) {
        let new = Complex {
            re: T::from_f64(src.re * inv_sqrt_dv),
            im: T::from_f64(src.im * inv_sqrt_dv),
        };
        let d = (dst.re.to_f64() - new.re.to_f64()).abs()
            .max((dst.im.to_f64() - new.im.to_f64()).abs());
        max_correction = max_correction.max(d);
        *dst = new;
    }
    state.refresh_reference();
    state.eps = eig.eigenvalues.clone();

    Ok(ScfReport {
        defect_before,
        defect_after,
        eigenvalues: eig.eigenvalues,
        max_correction,
    })
}

/// Initial SCF: iterates refresh passes until the eigenvalues settle,
/// producing the Kohn–Sham ground state the dynamics starts from ("the
/// wavefunction is initialized by the SCF method", paper §IV-C). With a
/// fixed (density-independent) Hamiltonian two passes converge exactly;
/// the loop guards the general case.
pub fn initial_scf<T: Real>(
    params: &LfdParams,
    state: &mut LfdState<T>,
    max_iterations: usize,
    tolerance: f64,
) -> Result<ScfReport, OrthError> {
    assert!(max_iterations >= 1);
    let _span = dcmesh_telemetry::span("initial_scf").enter();
    let _phase = dcmesh_telemetry::phase_scope("qxmd::initial_scf");
    let mut report = scf_refresh(params, state)?;
    for _ in 1..max_iterations {
        let next = scf_refresh(params, state)?;
        let delta = next
            .eigenvalues
            .iter()
            .zip(&report.eigenvalues)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        report = next;
        if delta < tolerance {
            break;
        }
    }
    // Ground-state occupations fill from the bottom of the new spectrum;
    // plane-wave initialisation already orders them, the rotation keeps
    // the convention.
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_lfd::propagator::{qd_step, QdScratch};
    use dcmesh_lfd::state::cosine_potential;
    use dcmesh_lfd::{LaserPulse, Mesh3};
    use mkl_lite::{set_compute_mode, with_compute_mode, ComputeMode};

    fn params() -> LfdParams {
        LfdParams {
            mesh: Mesh3::cubic(9, 0.7),
            n_orb: 6,
            n_occ: 3,
            dt: 0.02,
            vnl_strength: 0.1,
            taylor_order: 4,
            laser: LaserPulse::off(),
            induced_coupling: 0.0,
        }
    }

    #[test]
    fn refresh_restores_orthonormality() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f32>::initialize(&p, cosine_potential(&p.mesh, 0.3));
        // Damage the state with a noticeable perturbation.
        for (i, z) in st.psi.iter_mut().enumerate() {
            if i % 7 == 0 {
                z.re += 1e-3;
            }
        }
        let rep = scf_refresh(&p, &mut st).expect("overlap healthy");
        assert!(rep.defect_before > 1e-5, "perturbation not visible: {}", rep.defect_before);
        assert!(rep.defect_after < 1e-10, "refresh left defect {}", rep.defect_after);
        let n = st.electron_count(&p);
        assert!((n - p.n_electrons()).abs() < 1e-4, "electron count {n}");
    }

    #[test]
    fn initial_scf_finds_eigenstates() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.3));
        let rep = initial_scf(&p, &mut st, 4, 1e-12).expect("overlap healthy");
        // Eigenvalues sorted ascending and reproducible under one more
        // refresh (fixed point).
        for w in rep.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let rep2 = scf_refresh(&p, &mut st).expect("overlap healthy");
        for (a, b) in rep.eigenvalues.iter().zip(&rep2.eigenvalues) {
            assert!((a - b).abs() < 1e-9, "not converged: {a} vs {b}");
        }
        // Note: max_correction need not vanish — the plane-wave spectrum
        // is degenerate, and any rotation within a degenerate eigenspace
        // is a fixed point of the refresh.
        assert!(rep2.defect_after < 1e-10);
    }

    #[test]
    fn scf_reduces_field_free_excitation() {
        // Ritz states of H are far closer to stationary than the raw
        // plane waves: under field-free propagation, the SCF-initialised
        // run must show much less spurious "excitation" from the
        // potential's orbital coupling.
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let run = |do_scf: bool| -> f64 {
            let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.3));
            if do_scf {
                initial_scf(&p, &mut st, 4, 1e-12).expect("overlap healthy");
            }
            let mut scratch = QdScratch::new(&p);
            let mut last = qd_step(&p, &mut st, &mut scratch);
            for _ in 0..30 {
                last = qd_step(&p, &mut st, &mut scratch);
            }
            last.nexc
        };
        let raw = run(false);
        let scf = run(true);
        assert!(
            scf < raw * 0.2 + 1e-12,
            "SCF did not suppress spurious excitation: raw {raw}, scf {scf}"
        );
    }

    #[test]
    fn refresh_resets_low_precision_drift() {
        // The paper's central mechanism: run at BF16 until the
        // orthonormality defect accumulates, refresh at FP64, and verify
        // the defect collapses.
        let p = params();
        let mut st = LfdState::<f32>::initialize(
            &p,
            cosine_potential(&p.mesh, 0.3),
        );
        with_compute_mode(ComputeMode::FloatToBf16, || {
            let mut scratch = QdScratch::new(&p);
            for _ in 0..30 {
                qd_step(&p, &mut st, &mut scratch);
            }
        });
        let rep = scf_refresh(&p, &mut st).expect("overlap healthy");
        assert!(
            rep.defect_before > rep.defect_after * 10.0,
            "no drift to absorb: before {} after {}",
            rep.defect_before,
            rep.defect_after
        );
        assert!(rep.defect_after < 1e-9);
    }

    #[test]
    fn eps_updated_by_refresh() {
        set_compute_mode(ComputeMode::Standard);
        let p = params();
        let mut st = LfdState::<f64>::initialize(&p, cosine_potential(&p.mesh, 0.4));
        let plane_wave_eps = st.eps.clone();
        let rep = initial_scf(&p, &mut st, 3, 1e-12).expect("overlap healthy");
        assert_eq!(st.eps, rep.eigenvalues);
        // The potential must shift the spectrum away from the free values.
        let moved = st
            .eps
            .iter()
            .zip(&plane_wave_eps)
            .any(|(a, b)| (a - b).abs() > 1e-6);
        assert!(moved, "SCF did not move the eigenvalues off the free spectrum");
    }
}

//! Property-based tests for the FP64 dense substrate.

use dcmesh_linalg::cholesky::{cholesky_factor, cholesky_solve};
use dcmesh_linalg::hermitian::eigh;
use dcmesh_linalg::ops::{dagger, hermitian_from_fn, matmul, max_abs_diff, unitarity_defect};
use dcmesh_linalg::orth::{lowdin_orthonormalize, modified_gram_schmidt, orthonormality_defect};
use dcmesh_numerics::{c64, C64};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random complex matrix from a seeded RNG.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Vec<C64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows * cols)
        .map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Builds a deterministic Hermitian matrix from a seed.
fn hermitian(n: usize, seed: u64) -> Vec<C64> {
    hermitian_from_fn(n, |i, j| {
        let h = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((i * 131 + j * 17) as u64)
            .wrapping_mul(2862933555777941757);
        let re = ((h >> 16) % 2000) as f64 / 1000.0 - 1.0;
        let im = if i == j { 0.0 } else { ((h >> 40) % 2000) as f64 / 1000.0 - 1.0 };
        c64(re, im)
    })
}

/// A well-conditioned HPD matrix: H†H + n·I.
fn hpd(n: usize, seed: u64) -> Vec<C64> {
    let h = hermitian(n, seed);
    let hh = dagger(&h, n, n);
    let mut a = matmul(&hh, &h, n, n, n);
    for i in 0..n {
        a[i * n + i] += c64(n as f64, 0.0);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eigh_reconstructs(n in 1usize..14, seed in 0u64..1000) {
        let a = hermitian(n, seed);
        let r = eigh(&a, n);
        prop_assert!(unitarity_defect(&r.eigenvectors, n) < 1e-11);
        // A·V = V·diag(λ)
        let av = matmul(&a, &r.eigenvectors, n, n, n);
        let mut vl = r.eigenvectors.clone();
        for i in 0..n {
            for j in 0..n {
                vl[i * n + j] = vl[i * n + j].scale(r.eigenvalues[j]);
            }
        }
        prop_assert!(max_abs_diff(&av, &vl) < 1e-10 * (n as f64));
    }

    #[test]
    fn eigh_trace_and_ordering(n in 1usize..14, seed in 0u64..1000) {
        let a = hermitian(n, seed);
        let r = eigh(&a, n);
        let tr: f64 = (0..n).map(|i| a[i * n + i].re).sum();
        let sum: f64 = r.eigenvalues.iter().sum();
        prop_assert!((tr - sum).abs() < 1e-9 * (1.0 + tr.abs()));
        for w in r.eigenvalues.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn cholesky_roundtrip_and_solve(n in 1usize..12, seed in 0u64..1000) {
        let a = hpd(n, seed);
        let l = cholesky_factor(&a, n).expect("HPD by construction");
        let lh = dagger(&l, n, n);
        let back = matmul(&l, &lh, n, n, n);
        prop_assert!(max_abs_diff(&a, &back) < 1e-9 * (n as f64));
        // Solve against a known x.
        let x: Vec<C64> = (0..n).map(|i| c64(i as f64 - 1.5, 0.25 * i as f64)).collect();
        let mut b = vec![C64::zero(); n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j] * x[j];
            }
        }
        cholesky_solve(&l, n, &mut b);
        for (g, w) in b.iter().zip(&x) {
            prop_assert!((*g - *w).abs() < 1e-8 * (1.0 + w.abs()));
        }
    }

    #[test]
    fn lowdin_and_mgs_both_orthonormalise(rows in 8usize..30, cols in 1usize..6, seed in 0u64..500) {
        let make = || random_matrix(rows, cols, seed);
        let mut a = make();
        lowdin_orthonormalize(&mut a, rows, cols).expect("random matrix is full rank");
        prop_assert!(orthonormality_defect(&a, rows, cols) < 1e-10);

        let mut b = make();
        let dropped = modified_gram_schmidt(&mut b, rows, cols, 1e-12);
        prop_assert_eq!(dropped, 0);
        prop_assert!(orthonormality_defect(&b, rows, cols) < 1e-10);
    }

    #[test]
    fn lowdin_preserves_already_orthonormal(rows in 8usize..24, cols in 1usize..5, seed in 0u64..500) {
        let mut a = random_matrix(rows, cols, seed.wrapping_add(7777));
        modified_gram_schmidt(&mut a, rows, cols, 1e-12);
        let before = a.clone();
        lowdin_orthonormalize(&mut a, rows, cols).expect("orthonormal set is full rank");
        // Already orthonormal input is a fixed point of Löwdin.
        let d: f64 = a.iter().zip(&before).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max);
        prop_assert!(d < 1e-10, "lowdin moved an orthonormal set by {}", d);
    }
}

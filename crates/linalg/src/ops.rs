//! Small dense helpers over row-major `C64` matrices.

use dcmesh_numerics::{c64, reduce, C64};
use mkl_lite::{zgemm, Op};

/// Returns the `n × n` identity.
pub fn identity(n: usize) -> Vec<C64> {
    let mut m = vec![C64::zero(); n * n];
    for i in 0..n {
        m[i * n + i] = C64::one();
    }
    m
}

/// Dense product `A · B` for `A: m×k`, `B: k×n` (row-major, no padding).
pub fn matmul(a: &[C64], b: &[C64], m: usize, k: usize, n: usize) -> Vec<C64> {
    let mut c = vec![C64::zero(); m * n];
    zgemm(Op::None, Op::None, m, n, k, C64::one(), a, k, b, n, C64::zero(), &mut c, n);
    c
}

/// Dense product `A† · B` for `A: k×m`, `B: k×n`.
pub fn matmul_hermitian_left(a: &[C64], b: &[C64], m: usize, k: usize, n: usize) -> Vec<C64> {
    let mut c = vec![C64::zero(); m * n];
    zgemm(Op::ConjTrans, Op::None, m, n, k, C64::one(), a, m, b, n, C64::zero(), &mut c, n);
    c
}

/// Conjugate transpose of an `m × n` matrix.
pub fn dagger(a: &[C64], m: usize, n: usize) -> Vec<C64> {
    assert_eq!(a.len(), m * n);
    let mut out = vec![C64::zero(); n * m];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j].conj();
        }
    }
    out
}

/// Max elementwise modulus of `A − B`.
pub fn max_abs_diff(a: &[C64], b: &[C64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (*x - *y).abs()).fold(0.0, f64::max)
}

/// Frobenius norm (deterministic fixed-shape accumulation).
pub fn frobenius_norm(a: &[C64]) -> f64 {
    reduce::sum_norm_sqr(a).sqrt()
}

/// Max deviation of `A` from Hermitian symmetry (`|A − A†|_max`).
pub fn hermitian_defect(a: &[C64], n: usize) -> f64 {
    assert_eq!(a.len(), n * n);
    let mut d = 0.0f64;
    for i in 0..n {
        for j in i..n {
            d = d.max((a[i * n + j] - a[j * n + i].conj()).abs());
        }
    }
    d
}

/// Max deviation of `Q` (n×n) from unitarity (`|Q†Q − I|_max`).
pub fn unitarity_defect(q: &[C64], n: usize) -> f64 {
    let qhq = matmul_hermitian_left(q, q, n, n, n);
    max_abs_diff(&qhq, &identity(n))
}

/// Builds a random Hermitian matrix from a deterministic counter sequence
/// (test helper, but used by benches too so it lives in the library).
pub fn hermitian_from_fn(n: usize, mut f: impl FnMut(usize, usize) -> C64) -> Vec<C64> {
    let mut a = vec![C64::zero(); n * n];
    for i in 0..n {
        for j in i..n {
            let v = f(i, j);
            if i == j {
                a[i * n + i] = c64(v.re, 0.0);
            } else {
                a[i * n + j] = v;
                a[j * n + i] = v.conj();
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_unitary() {
        assert_eq!(unitarity_defect(&identity(5), 5), 0.0);
    }

    #[test]
    fn dagger_involution() {
        let a: Vec<C64> = (0..6).map(|i| c64(i as f64, -(i as f64) * 0.5)).collect();
        let back = dagger(&dagger(&a, 2, 3), 3, 2);
        assert_eq!(a, back);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a: Vec<C64> = (0..9).map(|i| c64(i as f64, 1.0)).collect();
        let p = matmul(&a, &identity(3), 3, 3, 3);
        assert!(max_abs_diff(&a, &p) < 1e-14);
    }

    #[test]
    fn hermitian_from_fn_is_hermitian() {
        let a = hermitian_from_fn(6, |i, j| c64((i + j) as f64, (i as f64) - (j as f64)));
        assert_eq!(hermitian_defect(&a, 6), 0.0);
    }

    #[test]
    fn matmul_hermitian_left_matches_manual() {
        // A: 2x2, B: 2x2 — check A†B by hand.
        let a = [c64(1.0, 1.0), c64(0.0, 0.0), c64(0.0, 0.0), c64(2.0, 0.0)];
        let b = [c64(3.0, 0.0), c64(0.0, 0.0), c64(0.0, 0.0), c64(0.0, 4.0)];
        let c = matmul_hermitian_left(&a, &b, 2, 2, 2);
        assert_eq!(c[0], c64(3.0, -3.0)); // conj(1+i)*3
        assert_eq!(c[3], c64(0.0, 8.0)); // conj(2)*4i
    }

    #[test]
    fn frobenius_matches_manual() {
        let a = [c64(3.0, 0.0), c64(0.0, 4.0)];
        assert!((frobenius_norm(&a) - 5.0).abs() < 1e-15);
    }
}

//! Hermitian eigendecomposition via cyclic Jacobi with complex rotations.
//!
//! Jacobi is the right tool for the SCF subspace problems: the matrices
//! are modest (N_orb × N_orb), unconditional numerical stability matters
//! more than asymptotic speed (this *is* the error-resetting step the
//! whole precision study leans on), and the method delivers small
//! eigenvalue error and nearly orthonormal eigenvectors by construction.
//!
//! Each rotation exactly diagonalises one 2×2 Hermitian block
//! `[[α, β], [β̄, γ]]` with the closed-form unitary
//! `R = [v | w]`, `v = (β, r−δ)/‖·‖`, `w = (−(r−δ), β̄)/‖·‖` where
//! `δ = (α−γ)/2`, `r = √(δ² + |β|²)`; sweeps repeat until the
//! off-diagonal Frobenius mass is negligible.

use dcmesh_numerics::{c64, C64};

/// Result of [`eigh`]: eigenvalues ascending, eigenvectors as columns.
#[derive(Clone, Debug)]
pub struct EighResult {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Row-major `n × n` matrix whose **columns** are the corresponding
    /// orthonormal eigenvectors.
    pub eigenvectors: Vec<C64>,
}

/// Off-diagonal squared Frobenius mass.
fn off_diagonal_mass(a: &[C64], n: usize) -> f64 {
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[i * n + j].norm_sqr();
            }
        }
    }
    s
}

/// Eigendecomposition of a Hermitian matrix (row-major `n × n`).
///
/// The input must be Hermitian to machine precision; the strictly lower
/// triangle is ignored in favour of the conjugated upper triangle, so
/// tiny asymmetries are harmless. Panics if convergence is not reached
/// (which for Jacobi on Hermitian input indicates NaN/Inf data).
pub fn eigh(a: &[C64], n: usize) -> EighResult {
    assert_eq!(a.len(), n * n, "eigh: matrix shape mismatch");
    if n == 0 {
        return EighResult { eigenvalues: Vec::new(), eigenvectors: Vec::new() };
    }

    // Work on a symmetrised copy.
    let mut m = vec![C64::zero(); n * n];
    for i in 0..n {
        m[i * n + i] = c64(a[i * n + i].re, 0.0);
        for j in (i + 1)..n {
            let v = a[i * n + j];
            m[i * n + j] = v;
            m[j * n + i] = v.conj();
        }
    }
    for z in &m {
        assert!(z.is_finite(), "eigh: non-finite input entry");
    }

    let mut v = crate::ops::identity(n);
    let scale: f64 = m.iter().map(|z| z.norm_sqr()).sum::<f64>().max(1e-300);
    let tol = scale * 1e-28;

    const MAX_SWEEPS: usize = 64;
    let mut converged = false;
    for _ in 0..MAX_SWEEPS {
        if off_diagonal_mass(&m, n) <= tol {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let beta = m[p * n + q];
                if beta.norm_sqr() <= tol / (n * n) as f64 {
                    continue;
                }
                let alpha = m[p * n + p].re;
                let gamma = m[q * n + q].re;
                let delta = (alpha - gamma) / 2.0;
                let r = (delta * delta + beta.norm_sqr()).sqrt();
                // Eigenvector (β, r−δ) of the 2x2 block for λ = (α+γ)/2 + r.
                // Pick the branch avoiding cancellation when δ > 0.
                let (v1, v2) = if delta >= 0.0 {
                    // r − δ may cancel; use (β(r+δ), |β|²)/… equivalent form.
                    (beta.scale(r + delta), c64(beta.norm_sqr(), 0.0))
                } else {
                    (beta, c64(r - delta, 0.0))
                };
                let norm = (v1.norm_sqr() + v2.norm_sqr()).sqrt();
                if norm == 0.0 {
                    continue;
                }
                let v1 = v1.scale(1.0 / norm);
                let v2 = v2.scale(1.0 / norm);
                // Unitary R columns: u = (v1, v2), w = (−v̄2, v̄1).
                let w1 = -v2.conj();
                let w2 = v1.conj();

                // A ← R† A R: first columns (A R), then rows (R† ·).
                for i in 0..n {
                    let aip = m[i * n + p];
                    let aiq = m[i * n + q];
                    m[i * n + p] = aip.mul_4m(v1) + aiq.mul_4m(v2);
                    m[i * n + q] = aip.mul_4m(w1) + aiq.mul_4m(w2);
                }
                for j in 0..n {
                    let apj = m[p * n + j];
                    let aqj = m[q * n + j];
                    m[p * n + j] = v1.conj().mul_4m(apj) + v2.conj().mul_4m(aqj);
                    m[q * n + j] = w1.conj().mul_4m(apj) + w2.conj().mul_4m(aqj);
                }
                // Clean the annihilated pair and enforce real diagonal.
                m[p * n + q] = C64::zero();
                m[q * n + p] = C64::zero();
                m[p * n + p] = c64(m[p * n + p].re, 0.0);
                m[q * n + q] = c64(m[q * n + q].re, 0.0);

                // V ← V R (columns p, q).
                for i in 0..n {
                    let vip = v[i * n + p];
                    let viq = v[i * n + q];
                    v[i * n + p] = vip.mul_4m(v1) + viq.mul_4m(v2);
                    v[i * n + q] = vip.mul_4m(w1) + viq.mul_4m(w2);
                }
            }
        }
    }
    assert!(
        converged || off_diagonal_mass(&m, n) <= tol * 1e4,
        "eigh: Jacobi failed to converge"
    );

    // Extract and sort ascending.
    let mut order: Vec<usize> = (0..n).collect();
    let evals: Vec<f64> = (0..n).map(|i| m[i * n + i].re).collect();
    order.sort_by(|&i, &j| evals[i].partial_cmp(&evals[j]).expect("finite eigenvalues"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| evals[i]).collect();
    let mut eigenvectors = vec![C64::zero(); n * n];
    for (new_col, &old_col) in order.iter().enumerate() {
        for i in 0..n {
            eigenvectors[i * n + new_col] = v[i * n + old_col];
        }
    }
    EighResult { eigenvalues, eigenvectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{hermitian_from_fn, matmul, max_abs_diff, unitarity_defect};

    fn reconstruct(r: &EighResult, n: usize) -> Vec<C64> {
        // A = V diag(λ) V†
        let mut vl = r.eigenvectors.clone();
        for i in 0..n {
            for j in 0..n {
                vl[i * n + j] = vl[i * n + j].scale(r.eigenvalues[j]);
            }
        }
        let vh = crate::ops::dagger(&r.eigenvectors, n, n);
        matmul(&vl, &vh, n, n, n)
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let n = 4;
        let mut a = vec![C64::zero(); n * n];
        for (i, lam) in [3.0, -1.0, 2.0, 0.5].iter().enumerate() {
            a[i * n + i] = c64(*lam, 0.0);
        }
        let r = eigh(&a, n);
        assert_eq!(r.eigenvalues, vec![-1.0, 0.5, 2.0, 3.0]);
        assert!(unitarity_defect(&r.eigenvectors, n) < 1e-14);
    }

    #[test]
    fn known_2x2_complex() {
        // [[0, -i], [i, 0]] has eigenvalues ±1.
        let a = vec![c64(0.0, 0.0), c64(0.0, -1.0), c64(0.0, 1.0), c64(0.0, 0.0)];
        let r = eigh(&a, 2);
        assert!((r.eigenvalues[0] + 1.0).abs() < 1e-14);
        assert!((r.eigenvalues[1] - 1.0).abs() < 1e-14);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        for n in [1usize, 2, 3, 8, 24] {
            let a = hermitian_from_fn(n, |i, j| {
                let x = ((3 * i + 7 * j + 1) % 13) as f64 / 13.0 - 0.5;
                let y = if i == j { 0.0 } else { ((5 * i + 2 * j) % 11) as f64 / 11.0 - 0.5 };
                c64(x, y)
            });
            let r = eigh(&a, n);
            assert!(unitarity_defect(&r.eigenvectors, n) < 1e-12, "n={n}");
            let back = reconstruct(&r, n);
            assert!(max_abs_diff(&a, &back) < 1e-11, "n={n}");
            for w in r.eigenvalues.windows(2) {
                assert!(w[0] <= w[1], "eigenvalues not sorted: {:?}", r.eigenvalues);
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let n = 16;
        let a = hermitian_from_fn(n, |i, j| c64((i * j % 7) as f64, (i as f64 - j as f64) / 4.0));
        let tr: f64 = (0..n).map(|i| a[i * n + i].re).sum();
        let r = eigh(&a, n);
        let sum: f64 = r.eigenvalues.iter().sum();
        assert!((tr - sum).abs() < 1e-10 * (1.0 + tr.abs()));
    }

    #[test]
    fn degenerate_eigenvalues_handled() {
        // 3x3 with a double eigenvalue: A = diag(1,1,2) rotated.
        let n = 3;
        let a = hermitian_from_fn(n, |i, j| {
            // Projector-based: A = I + P where P = vv†, v = (1,1,1)/sqrt 3.
            let base = if i == j { 1.0 } else { 0.0 };
            c64(base + 1.0 / 3.0, 0.0)
        });
        let r = eigh(&a, n);
        // Eigenvalues: 1 (x2) and 2.
        assert!((r.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[1] - 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[2] - 2.0).abs() < 1e-12);
        assert!(unitarity_defect(&r.eigenvectors, n) < 1e-12);
    }

    #[test]
    fn empty_matrix() {
        let r = eigh(&[], 0);
        assert!(r.eigenvalues.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let a = vec![c64(f64::NAN, 0.0)];
        eigh(&a, 1);
    }
}

//! Cholesky factorisation of Hermitian positive-definite matrices.
//!
//! Used by QXMD for overlap-matrix inversion during orthonormalisation
//! (the `S = L L†` route, the cheap alternative to Löwdin).

use dcmesh_numerics::{c64, C64};

/// Error for a non-positive-definite input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot index at which the factorisation broke down.
    pub pivot: usize,
}

impl core::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "matrix is not positive definite (pivot {})", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Computes the lower-triangular `L` with `A = L L†` for Hermitian
/// positive-definite `A` (row-major `n × n`). The strict upper triangle of
/// the result is zero.
pub fn cholesky_factor(a: &[C64], n: usize) -> Result<Vec<C64>, NotPositiveDefinite> {
    assert_eq!(a.len(), n * n, "cholesky: shape mismatch");
    let mut l = vec![C64::zero(); n * n];
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[j * n + j].re;
        for k in 0..j {
            d -= l[j * n + k].norm_sqr();
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite { pivot: j });
        }
        let dj = d.sqrt();
        l[j * n + j] = c64(dj, 0.0);
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= l[i * n + k].mul_4m(l[j * n + k].conj());
            }
            l[i * n + j] = s.scale(1.0 / dj);
        }
    }
    Ok(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then
/// back substitution). `b` is overwritten with the solution.
pub fn cholesky_solve(l: &[C64], n: usize, b: &mut [C64]) {
    assert_eq!(l.len(), n * n);
    assert_eq!(b.len(), n);
    // L y = b
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k].mul_4m(b[k]);
        }
        b[i] = s.scale(1.0 / l[i * n + i].re);
    }
    // L† x = y
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[k * n + i].conj().mul_4m(b[k]);
        }
        b[i] = s.scale(1.0 / l[i * n + i].re);
    }
}


/// Right-solves `X · L† = A` in place on the rows of `a` (`rows × n`,
/// row-major), for the lower-triangular `L` of a Cholesky factorisation.
/// This is the BLAS `trsm(right, lower, conj-trans)` case — the workhorse
/// of Cholesky-based orthonormalisation.
pub fn trsm_right_lower_conjtrans(l: &[C64], n: usize, a: &mut [C64], rows: usize) {
    assert_eq!(l.len(), n * n, "trsm: factor shape mismatch");
    assert_eq!(a.len(), rows * n, "trsm: rhs shape mismatch");
    // L† is upper triangular with entries U[k][j] = conj(L[j][k]); forward
    // substitution across each row's columns.
    for r in 0..rows {
        let row = &mut a[r * n..(r + 1) * n];
        for j in 0..n {
            let mut s = row[j];
            for k in 0..j {
                s -= row[k].mul_4m(l[j * n + k].conj());
            }
            row[j] = s.scale(1.0 / l[j * n + j].re);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{dagger, hermitian_from_fn, matmul, max_abs_diff};

    /// A well-conditioned HPD matrix: B†B + n·I.
    fn hpd(n: usize) -> Vec<C64> {
        let b = hermitian_from_fn(n, |i, j| c64(((i * 5 + j * 3) % 7) as f64 / 7.0, ((i + 2 * j) % 5) as f64 / 5.0));
        let bh = dagger(&b, n, n);
        let mut a = matmul(&bh, &b, n, n, n);
        for i in 0..n {
            a[i * n + i] += c64(n as f64, 0.0);
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        for n in [1usize, 2, 5, 12] {
            let a = hpd(n);
            let l = cholesky_factor(&a, n).expect("HPD");
            let lh = dagger(&l, n, n);
            let back = matmul(&l, &lh, n, n, n);
            assert!(max_abs_diff(&a, &back) < 1e-10, "n={n}");
            // Strict upper triangle of L is zero; diagonal real positive.
            for i in 0..n {
                assert!(l[i * n + i].re > 0.0 && l[i * n + i].im == 0.0);
                for j in (i + 1)..n {
                    assert_eq!(l[i * n + j], C64::zero());
                }
            }
        }
    }

    #[test]
    fn solve_inverts() {
        let n = 8;
        let a = hpd(n);
        let l = cholesky_factor(&a, n).expect("HPD");
        let x_true: Vec<C64> = (0..n).map(|i| c64(i as f64 - 2.0, 0.5 * i as f64)).collect();
        // b = A x
        let mut b = vec![C64::zero(); n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j].mul_4m(x_true[j]);
            }
        }
        cholesky_solve(&l, n, &mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((*got - *want).abs() < 1e-10);
        }
    }

    #[test]
    fn indefinite_matrix_rejected() {
        let a = vec![c64(1.0, 0.0), c64(2.0, 0.0), c64(2.0, 0.0), c64(1.0, 0.0)];
        let err = cholesky_factor(&a, 2).unwrap_err();
        assert_eq!(err.pivot, 1);
    }

    #[test]
    fn negative_diagonal_rejected_at_first_pivot() {
        let a = vec![c64(-1.0, 0.0)];
        assert_eq!(cholesky_factor(&a, 1).unwrap_err().pivot, 0);
    }

    #[test]
    fn trsm_right_solves() {
        let n = 6;
        let a = hpd(n);
        let l = cholesky_factor(&a, n).expect("HPD");
        // X·L† = B with known X.
        let rows = 3;
        let x_true: Vec<C64> = (0..rows * n)
            .map(|i| c64(0.3 * i as f64 - 1.0, 0.11 * i as f64))
            .collect();
        // B = X·L†
        let mut b = vec![C64::zero(); rows * n];
        for r in 0..rows {
            for j in 0..n {
                let mut s = C64::zero();
                for k in 0..n {
                    // (L†)[k][j] = conj(L[j][k]) (upper triangular)
                    if k <= j {
                        s += x_true[r * n + k].mul_4m(l[j * n + k].conj());
                    }
                }
                b[r * n + j] = s;
            }
        }
        trsm_right_lower_conjtrans(&l, n, &mut b, rows);
        for (g, w) in b.iter().zip(&x_true) {
            assert!((*g - *w).abs() < 1e-10, "{g:?} vs {w:?}");
        }
    }
}

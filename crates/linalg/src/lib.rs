//! `dcmesh-linalg`: dense double-precision linear algebra for the CPU
//! (QXMD) side of DCMESH.
//!
//! The paper's accuracy mechanism hinges on a *full-precision* SCF refresh
//! every 500 QD steps: the wave function is re-orthonormalised and
//! re-diagonalised in FP64, which stops the low-precision BLAS error from
//! accumulating. This crate provides that substrate:
//!
//! * [`hermitian::eigh`] — eigendecomposition of a Hermitian complex
//!   matrix (cyclic Jacobi with complex rotations: unconditionally stable,
//!   and the subspace matrices here are small).
//! * [`orth`] — modified Gram–Schmidt and Löwdin (S^{-1/2}) symmetric
//!   orthonormalisation.
//! * [`cholesky`] — Hermitian positive-definite factorisation and solves.
//! * [`ops`] — small dense helpers shared by the above.
//!
//! Matrices are row-major `Vec<C64>` slices with explicit dimension, the
//! same convention as `mkl-lite`.

pub mod cholesky;
pub mod hermitian;
pub mod ops;
pub mod orth;

pub use cholesky::{cholesky_factor, cholesky_solve, trsm_right_lower_conjtrans};
pub use hermitian::{eigh, EighResult};
pub use orth::{cholesky_orthonormalize, lowdin_orthonormalize, modified_gram_schmidt, OrthError};

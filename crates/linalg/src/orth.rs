//! Orthonormalisation of wave-function column sets.
//!
//! QXMD's SCF refresh re-orthonormalises the propagated orbitals at FP64
//! before the Rayleigh–Ritz step. Two standard schemes are provided:
//!
//! * **Modified Gram–Schmidt** — sequential, numerically robust for
//!   mildly ill-conditioned sets; changes the span order-dependently.
//! * **Löwdin (symmetric) orthonormalisation** — `Ψ ← Ψ S^{-1/2}` with
//!   `S = Ψ†Ψ`; the unique orthonormal set closest to the input in the
//!   Frobenius sense, which is why quantum-dynamics codes prefer it (it
//!   perturbs the propagated state least).
//!
//! Matrices are row-major `rows × cols`, orbitals stored as **columns**.
//!
//! All inner-product and projection accumulations run through
//! [`dcmesh_numerics::reduce`]'s fixed-shape trees, so both schemes are
//! bit-deterministic regardless of how the surrounding run is threaded.

use crate::cholesky::{cholesky_factor, trsm_right_lower_conjtrans};
use crate::hermitian::eigh;
use crate::ops::matmul_hermitian_left;
use dcmesh_numerics::{reduce, C64};
use std::fmt;

/// Why an orthonormalisation could not be performed.
///
/// A degenerate overlap matrix means the orbital set has already collapsed
/// — typically the footprint of accumulated low-precision error — so the
/// caller must treat it as a health violation (roll back, escalate the
/// compute mode), not paper over it.
#[derive(Clone, Debug, PartialEq)]
pub enum OrthError {
    /// The overlap matrix `S = A†A` is numerically singular: its smallest
    /// eigenvalue is below `1e-12` of the largest.
    SingularOverlap {
        /// Smallest eigenvalue of the overlap matrix.
        min_eigenvalue: f64,
        /// Largest eigenvalue of the overlap matrix.
        max_eigenvalue: f64,
    },
    /// The Cholesky factorisation found the overlap matrix not positive
    /// definite.
    NotPositiveDefinite {
        /// Description from the factorisation (pivot index and value).
        detail: String,
    },
}

impl fmt::Display for OrthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrthError::SingularOverlap { min_eigenvalue, max_eigenvalue } => write!(
                f,
                "overlap matrix numerically singular (min ev {min_eigenvalue}, max ev {max_eigenvalue})"
            ),
            OrthError::NotPositiveDefinite { detail } => {
                write!(f, "overlap matrix not positive definite ({detail})")
            }
        }
    }
}

impl std::error::Error for OrthError {}

/// In-place modified Gram–Schmidt on the columns of `a` (`rows × cols`).
///
/// Returns the number of columns that were numerically dependent (their
/// norm collapsed below `tol` after projection; they are replaced with
/// zeros rather than noise).
pub fn modified_gram_schmidt(a: &mut [C64], rows: usize, cols: usize, tol: f64) -> usize {
    assert_eq!(a.len(), rows * cols, "mgs: shape mismatch");
    let mut dropped = 0;
    for j in 0..cols {
        // Project out previously orthonormalised columns.
        for prev in 0..j {
            // <prev, j>, over the fixed reduction tree.
            let dot =
                reduce::sum_with(rows, |i| a[i * cols + prev].conj().mul_4m(a[i * cols + j]));
            for i in 0..rows {
                let p = a[i * cols + prev].mul_4m(dot);
                a[i * cols + j] -= p;
            }
        }
        let norm = reduce::sum_with(rows, |i| a[i * cols + j].norm_sqr()).sqrt();
        if norm <= tol {
            for i in 0..rows {
                a[i * cols + j] = C64::zero();
            }
            dropped += 1;
        } else {
            let inv = 1.0 / norm;
            for i in 0..rows {
                a[i * cols + j] = a[i * cols + j].scale(inv);
            }
        }
    }
    dropped
}

/// Löwdin symmetric orthonormalisation: `A ← A·S^{-1/2}`, `S = A†A`.
///
/// Fails with [`OrthError::SingularOverlap`] if the overlap matrix is
/// numerically singular (smallest eigenvalue below `1e-12` of the
/// largest): a collapsed orbital set indicates the propagation has already
/// failed, and the error carries the eigenvalue evidence so a supervisor
/// can roll back and escalate instead of crashing. On error `a` is left
/// unmodified.
pub fn lowdin_orthonormalize(a: &mut [C64], rows: usize, cols: usize) -> Result<(), OrthError> {
    assert_eq!(a.len(), rows * cols, "lowdin: shape mismatch");
    if cols == 0 {
        return Ok(());
    }
    // S = A†A (cols × cols), Hermitian positive semi-definite.
    let s = matmul_hermitian_left(a, a, cols, rows, cols);
    let eig = eigh(&s, cols);
    let max_ev = eig.eigenvalues.last().copied().unwrap_or(0.0);
    if eig.eigenvalues[0] <= 1e-12 * max_ev.max(1e-300) {
        return Err(OrthError::SingularOverlap {
            min_eigenvalue: eig.eigenvalues[0],
            max_eigenvalue: max_ev,
        });
    }

    // S^{-1/2} = V diag(1/√λ) V†
    let n = cols;
    let v = &eig.eigenvectors;
    let mut s_inv_half = vec![C64::zero(); n * n];
    for i in 0..n {
        for j in 0..n {
            s_inv_half[i * n + j] = reduce::sum_with(n, |k| {
                let w = 1.0 / eig.eigenvalues[k].sqrt();
                v[i * n + k].scale(w).mul_4m(v[j * n + k].conj())
            });
        }
    }

    // A ← A · S^{-1/2}, row by row (each row of A is independent).
    let mut row_buf = vec![C64::zero(); n];
    for r in 0..rows {
        let row = &a[r * n..(r + 1) * n];
        for (j, out) in row_buf.iter_mut().enumerate() {
            *out = reduce::sum_with(n, |k| row[k].mul_4m(s_inv_half[k * n + j]));
        }
        a[r * n..(r + 1) * n].copy_from_slice(&row_buf);
    }
    Ok(())
}


/// Cholesky orthonormalisation: `A ← A·L^{-†}` with `S = A†A = L·L†`.
///
/// Cheaper than Löwdin (one factorisation + triangular solve instead of
/// an eigendecomposition) and the usual production choice when the
/// minimal-perturbation property is not needed. Fails with
/// [`OrthError::NotPositiveDefinite`] if the overlap is not numerically
/// positive definite; `a` is left unmodified in that case.
pub fn cholesky_orthonormalize(a: &mut [C64], rows: usize, cols: usize) -> Result<(), OrthError> {
    assert_eq!(a.len(), rows * cols, "cholesky orth: shape mismatch");
    if cols == 0 {
        return Ok(());
    }
    let s = matmul_hermitian_left(a, a, cols, rows, cols);
    let l = cholesky_factor(&s, cols)
        .map_err(|e| OrthError::NotPositiveDefinite { detail: e.to_string() })?;
    trsm_right_lower_conjtrans(&l, cols, a, rows);
    Ok(())
}

/// Measures `|A†A − I|_max` of a column set — 0 for perfectly orthonormal.
pub fn orthonormality_defect(a: &[C64], rows: usize, cols: usize) -> f64 {
    let s = matmul_hermitian_left(a, a, cols, rows, cols);
    let mut d = 0.0f64;
    for i in 0..cols {
        for j in 0..cols {
            let target = if i == j { C64::one() } else { C64::zero() };
            d = d.max((s[i * cols + j] - target).abs());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcmesh_numerics::c64;

    fn skewed_columns(rows: usize, cols: usize) -> Vec<C64> {
        let mut a = vec![C64::zero(); rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                let t = (i as f64 + 1.0) * (j as f64 + 1.0);
                a[i * cols + j] = c64((t * 0.37).sin() + 0.1, (t * 0.11).cos() * 0.3);
            }
        }
        a
    }

    #[test]
    fn mgs_orthonormalises() {
        let (rows, cols) = (40, 6);
        let mut a = skewed_columns(rows, cols);
        let dropped = modified_gram_schmidt(&mut a, rows, cols, 1e-12);
        assert_eq!(dropped, 0);
        assert!(orthonormality_defect(&a, rows, cols) < 1e-12);
    }

    #[test]
    fn mgs_detects_dependent_columns() {
        let rows = 10;
        let cols = 3;
        let mut a = vec![C64::zero(); rows * cols];
        for i in 0..rows {
            a[i * cols] = c64(1.0, 0.0);
            a[i * cols + 1] = c64(2.0, 0.0); // parallel to column 0
            a[i * cols + 2] = c64(i as f64, 1.0);
        }
        let dropped = modified_gram_schmidt(&mut a, rows, cols, 1e-10);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn lowdin_orthonormalises() {
        let (rows, cols) = (50, 8);
        let mut a = skewed_columns(rows, cols);
        lowdin_orthonormalize(&mut a, rows, cols).unwrap();
        assert!(orthonormality_defect(&a, rows, cols) < 1e-11);
    }

    #[test]
    fn lowdin_is_minimal_perturbation_vs_mgs() {
        // For a nearly orthonormal input, Löwdin's output stays closer to
        // the input than Gram–Schmidt's (its defining property).
        let (rows, cols) = (30, 5);
        let mut base = skewed_columns(rows, cols);
        modified_gram_schmidt(&mut base, rows, cols, 1e-12);
        // Perturb slightly.
        let mut perturbed = base.clone();
        for (idx, z) in perturbed.iter_mut().enumerate() {
            let e = ((idx * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            *z += c64(1e-3 * e, -5e-4 * e);
        }
        let mut via_lowdin = perturbed.clone();
        lowdin_orthonormalize(&mut via_lowdin, rows, cols).unwrap();
        let mut via_mgs = perturbed.clone();
        modified_gram_schmidt(&mut via_mgs, rows, cols, 1e-12);
        let dist = |x: &[C64]| -> f64 {
            x.iter().zip(&perturbed).map(|(a, b)| (*a - *b).norm_sqr()).sum::<f64>().sqrt()
        };
        assert!(
            dist(&via_lowdin) <= dist(&via_mgs) + 1e-12,
            "lowdin {} vs mgs {}",
            dist(&via_lowdin),
            dist(&via_mgs)
        );
    }

    #[test]
    fn lowdin_preserves_span() {
        // Orthonormalising [e1, e1 + 0.1 e2] must keep span{e1, e2}.
        let rows = 4;
        let cols = 2;
        let mut a = vec![C64::zero(); rows * cols];
        a[0] = c64(1.0, 0.0); // col 0 = e1
        a[1] = c64(1.0, 0.0); // col 1 = e1 + 0.1 e2
        a[cols + 1] = c64(0.1, 0.0);
        lowdin_orthonormalize(&mut a, rows, cols).unwrap();
        assert!(orthonormality_defect(&a, rows, cols) < 1e-12);
        // Rows 2, 3 (outside the span) stay zero.
        for i in 2..rows {
            for j in 0..cols {
                assert_eq!(a[i * cols + j], C64::zero());
            }
        }
    }

    #[test]
    fn lowdin_rejects_rank_deficient() {
        let rows = 6;
        let cols = 2;
        let mut a = vec![C64::zero(); rows * cols];
        for i in 0..rows {
            a[i * cols] = c64(1.0, 0.0);
            a[i * cols + 1] = c64(1.0, 0.0);
        }
        let before = a.clone();
        let err = lowdin_orthonormalize(&mut a, rows, cols).unwrap_err();
        match err {
            OrthError::SingularOverlap { min_eigenvalue, max_eigenvalue } => {
                assert!(min_eigenvalue <= 1e-12 * max_eigenvalue, "{min_eigenvalue} vs {max_eigenvalue}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(a, before, "input must be untouched on error");
        assert!(err.to_string().contains("singular"), "{err}");
    }

    #[test]
    fn cholesky_orthonormalises() {
        let (rows, cols) = (40, 7);
        let mut a = skewed_columns(rows, cols);
        cholesky_orthonormalize(&mut a, rows, cols).unwrap();
        assert!(orthonormality_defect(&a, rows, cols) < 1e-10);
    }

    #[test]
    fn cholesky_orth_preserves_span() {
        // Same span as Lowdin: project one result onto the other's
        // orthogonal complement -> zero.
        let (rows, cols) = (30, 4);
        let mut via_chol = skewed_columns(rows, cols);
        let mut via_lowdin = via_chol.clone();
        cholesky_orthonormalize(&mut via_chol, rows, cols).unwrap();
        lowdin_orthonormalize(&mut via_lowdin, rows, cols).unwrap();
        // Overlap matrix between the two bases must be unitary.
        let mut overlap = vec![C64::zero(); cols * cols];
        for i in 0..cols {
            for j in 0..cols {
                let mut s = C64::zero();
                for r in 0..rows {
                    s += via_chol[r * cols + i].conj().mul_4m(via_lowdin[r * cols + j]);
                }
                overlap[i * cols + j] = s;
            }
        }
        let defect = crate::ops::unitarity_defect(&overlap, cols);
        assert!(defect < 1e-10, "span differs: unitarity defect {defect}");
    }

    #[test]
    fn cholesky_orth_rejects_rank_deficient() {
        let rows = 6;
        let cols = 2;
        let mut a = vec![C64::zero(); rows * cols];
        for i in 0..rows {
            a[i * cols] = c64(1.0, 0.0);
            a[i * cols + 1] = c64(1.0, 0.0);
        }
        let before = a.clone();
        let err = cholesky_orthonormalize(&mut a, rows, cols).unwrap_err();
        assert!(matches!(err, OrthError::NotPositiveDefinite { .. }), "{err:?}");
        assert_eq!(a, before, "input must be untouched on error");
        assert!(err.to_string().contains("positive definite"), "{err}");
    }
}

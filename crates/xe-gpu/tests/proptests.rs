//! Property-based tests of the device model: physical sanity over the
//! whole shape space, not just the paper's points.

use mkl_lite::device::{Domain, GemmDesc};
use mkl_lite::ComputeMode;
use proptest::prelude::*;
use xe_gpu::{MultiStackModel, XeStackModel, HDR_FABRIC, MAX_1550_STACK, XE_LINK};

fn model() -> XeStackModel {
    XeStackModel::new(MAX_1550_STACK)
}

fn mode_strategy() -> impl Strategy<Value = ComputeMode> {
    prop::sample::select(ComputeMode::ALL.to_vec())
}

fn domain_strategy() -> impl Strategy<Value = Domain> {
    prop::sample::select(vec![Domain::Real32, Domain::Real64, Domain::Complex32, Domain::Complex64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn gemm_time_positive_and_finite(
        m in 1usize..5000, n in 1usize..5000, k in 1usize..500_000,
        mode in mode_strategy(), domain in domain_strategy(),
    ) {
        let d = GemmDesc { domain, m, n, k, mode };
        let t = model().gemm_seconds(&d);
        prop_assert!(t.is_finite() && t > 0.0, "t = {t}");
        // Never faster than the absolute rooflines.
        let flops = 2.0 * d.real_macs();
        let absolute_floor = flops / 419.0e12;
        prop_assert!(t >= absolute_floor * 0.99, "t {t} beats the systolic peak");
    }

    #[test]
    fn speedup_never_exceeds_theoretical(
        m in 1usize..4096, n in 1usize..4096, k in 64usize..500_000,
    ) {
        let mdl = model();
        for mode in ComputeMode::ALTERNATIVE {
            let s = mdl.gemm_speedup_vs_fp32(Domain::Complex32, m, n, k, mode);
            let t = MAX_1550_STACK.theoretical_speedup(mode);
            prop_assert!(s <= t * 1.0001, "{mode:?} at ({m},{n},{k}): {s} > {t}");
        }
    }

    #[test]
    fn gemm_time_monotone_in_each_dimension(
        m in 1usize..2048, n in 1usize..2048, k in 1usize..100_000,
        mode in mode_strategy(),
    ) {
        let mdl = model();
        let t = |m, n, k| mdl.gemm_seconds(&GemmDesc { domain: Domain::Complex32, m, n, k, mode });
        let base = t(m, n, k);
        prop_assert!(t(2 * m, n, k) >= base);
        prop_assert!(t(m, 2 * n, k) >= base);
        prop_assert!(t(m, n, 2 * k) >= base);
    }

    #[test]
    fn traffic_at_least_native_operands(
        m in 1usize..2048, n in 1usize..2048, k in 1usize..100_000,
        mode in mode_strategy(),
    ) {
        let mdl = model();
        let d = GemmDesc { domain: Domain::Complex32, m, n, k, mode };
        let base = GemmDesc { mode: ComputeMode::Standard, ..d };
        prop_assert!(mdl.gemm_traffic_bytes(&d) >= mdl.gemm_traffic_bytes(&base));
    }

    #[test]
    fn fp64_never_faster_than_fp32(
        m in 1usize..2048, n in 1usize..2048, k in 1usize..100_000,
    ) {
        let mdl = model();
        let t32 = mdl.gemm_seconds(&GemmDesc {
            domain: Domain::Complex32, m, n, k, mode: ComputeMode::Standard,
        });
        let t64 = mdl.gemm_seconds(&GemmDesc {
            domain: Domain::Complex64, m, n, k, mode: ComputeMode::Standard,
        });
        prop_assert!(t64 >= t32 * 0.999, "ZGEMM {t64} beat CGEMM {t32}");
    }

    #[test]
    fn multistack_grid_gemm_never_slower_with_more_stacks_on_xelink(
        // DCMESH-scale shapes only: tiny GEMMs are latency-dominated and
        // legitimately anti-scale (more stacks = more all-reduce hops).
        n_orb in 256usize..2048, k_exp in 17u32..20,
    ) {
        let n_grid = 1usize << k_exp;
        let d = GemmDesc {
            domain: Domain::Complex32,
            m: n_orb,
            n: n_orb,
            k: n_grid,
            mode: ComputeMode::Standard,
        };
        let kd = xe_gpu::KernelDesc::Gemm("p", d);
        let mut prev = f64::INFINITY;
        for s in [1usize, 2, 4, 8] {
            let t = MultiStackModel::new(MAX_1550_STACK, s, XE_LINK)
                .kernel_seconds(&kd, n_grid, n_orb, 8.0);
            // Allow a small tolerance: at tiny sizes latency can win.
            prop_assert!(t <= prev * 1.1, "scaling reversed at {s} stacks: {t} > {prev}");
            prev = t;
        }
    }

    #[test]
    fn allreduce_linear_in_bytes(bytes in 1.0e3f64..1.0e10, s in 2usize..32) {
        let m = MultiStackModel::new(MAX_1550_STACK, s, HDR_FABRIC);
        let t1 = m.allreduce_seconds(bytes);
        let t2 = m.allreduce_seconds(2.0 * bytes);
        // 2x payload must cost less than 2x time (latency amortises) but
        // more than 1x.
        prop_assert!(t2 > t1);
        prop_assert!(t2 < 2.0 * t1 + 1e-12);
    }
}

//! Microarchitectural derivation of the Table I peaks.
//!
//! The artifact description notes that Tables I and II "do not require
//! execution of the code to determine. These can be calculated based on
//! the hardware specifications. These include the number of EUs, peak
//! frequency, and the precision in question." This module performs that
//! calculation — peak = engines × ops/clock × boost clock — and the test
//! suite checks it against the published Table I numbers, closing the
//! loop between the micro-architecture description (§III-A) and the
//! throughput table.

use crate::device::DeviceSpec;

/// Per-engine operations per clock for each precision class on Xe-HPC.
#[derive(Clone, Copy, Debug)]
pub struct OpsPerClock {
    /// FP64 on the 512-bit vector engines (8 lanes × 2 FMA × 2-pipe).
    pub fp64_vector: f64,
    /// FP32 on the vector engines (16 lanes × 2 FMA).
    pub fp32_vector: f64,
    /// TF32 on the XMX systolic array.
    pub tf32_matrix: f64,
    /// BF16/FP16 on the XMX systolic array.
    pub bf16_matrix: f64,
    /// INT8 on the XMX systolic array.
    pub int8_matrix: f64,
}

/// Xe-HPC (Ponte Vecchio) per-engine throughput: the vector engines issue
/// 32 FP32 or FP64 FLOP/clock (512-bit SIMD with dual-issue FMA; FP64
/// runs at full rate on PVC, unlike client parts), the matrix engines
/// 256 TF32, 512 BF16/FP16 and 1024 INT8 ops/clock.
pub const XE_HPC_OPS: OpsPerClock = OpsPerClock {
    fp64_vector: 32.0,
    fp32_vector: 32.0,
    tf32_matrix: 256.0,
    bf16_matrix: 512.0,
    int8_matrix: 1024.0,
};

/// Boost clock the Table I peaks are quoted at (GHz). §III-A quotes "up
/// to 1.6 GHz" for sustained operation; the headline peaks correspond to
/// the 1.8 GHz boost bin.
pub const TABLE1_BOOST_GHZ: f64 = 1.8;

/// Derived peak throughputs (FLOP/s or OP/s).
#[derive(Clone, Copy, Debug)]
pub struct DerivedPeaks {
    /// FP64 vector peak.
    pub fp64: f64,
    /// FP32 vector peak.
    pub fp32: f64,
    /// TF32 systolic peak.
    pub tf32: f64,
    /// BF16/FP16 systolic peak.
    pub bf16: f64,
    /// INT8 systolic peak.
    pub int8: f64,
}

/// Derives the Table I peaks from engine counts, ops/clock and the boost
/// clock: `peak = engines × ops_per_clock × f`.
pub fn derive_peaks(spec: &DeviceSpec, ops: &OpsPerClock, boost_ghz: f64) -> DerivedPeaks {
    let f = boost_ghz * 1e9;
    DerivedPeaks {
        fp64: spec.vector_engines as f64 * ops.fp64_vector * f,
        fp32: spec.vector_engines as f64 * ops.fp32_vector * f,
        tf32: spec.matrix_engines as f64 * ops.tf32_matrix * f,
        bf16: spec.matrix_engines as f64 * ops.bf16_matrix * f,
        int8: spec.matrix_engines as f64 * ops.int8_matrix * f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MAX_1550_STACK;

    fn within(derived: f64, published: f64, tol: f64) -> bool {
        (derived - published).abs() <= tol * published
    }

    #[test]
    fn derivation_reproduces_table_i() {
        let d = derive_peaks(&MAX_1550_STACK, &XE_HPC_OPS, TABLE1_BOOST_GHZ);
        // 448 × 32 × 1.8 GHz = 25.8 TF ≈ 26 TF (published rounds up).
        assert!(within(d.fp64, MAX_1550_STACK.peak_fp64, 0.05), "fp64 {:.1e}", d.fp64);
        assert!(within(d.fp32, MAX_1550_STACK.peak_fp32, 0.05), "fp32 {:.1e}", d.fp32);
        // 448 × 256 × 1.8 = 206 TF ≈ 209.
        assert!(within(d.tf32, MAX_1550_STACK.peak_tf32, 0.05), "tf32 {:.1e}", d.tf32);
        // 448 × 512 × 1.8 = 413 TF ≈ 419.
        assert!(within(d.bf16, MAX_1550_STACK.peak_bf16, 0.05), "bf16 {:.1e}", d.bf16);
        // 448 × 1024 × 1.8 = 826 TOPs ≈ 839.
        assert!(within(d.int8, MAX_1550_STACK.peak_int8, 0.05), "int8 {:.1e}", d.int8);
    }

    #[test]
    fn table_ii_ratios_follow_from_ops_per_clock() {
        // The Table II theoretical speedups are ratios of ops/clock:
        // 512/32 = 16x (BF16), 256/32 = 8x (TF32).
        assert_eq!(XE_HPC_OPS.bf16_matrix / XE_HPC_OPS.fp32_vector, 16.0);
        assert_eq!(XE_HPC_OPS.tf32_matrix / XE_HPC_OPS.fp32_vector, 8.0);
        assert_eq!(XE_HPC_OPS.int8_matrix / XE_HPC_OPS.bf16_matrix, 2.0);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn sustained_clock_below_boost() {
        assert!(MAX_1550_STACK.max_ghz <= TABLE1_BOOST_GHZ);
    }
}

//! Power and energy-to-solution model.
//!
//! The paper names power limits as one of the two reasons observed
//! speedups fall short of theory ("power limitations are tied to hardware
//! design"). This module makes the power side explicit: each kernel draws
//! a fraction of the stack's TDP depending on which resource it saturates,
//! and energy-to-solution is the time-weighted integral. Since the
//! accelerated modes light up the (hungrier) XMX arrays but finish sooner,
//! whether BF16 saves *energy* as well as time is a quantitative question
//! — answered by the `ext_energy` harness.

use crate::device::Engine;
use crate::kernels::{KernelDesc, StreamKernel};
use crate::perf::XeStackModel;
use mkl_lite::device::GemmDesc;

/// Power-draw description of one stack.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Thermal design power of the stack, watts (Max 1550: 600 W/card,
    /// two stacks).
    pub tdp: f64,
    /// Idle/leakage floor as a fraction of TDP.
    pub idle_fraction: f64,
    /// Draw of a vector-engine-saturated kernel (fraction of TDP).
    pub vector_fraction: f64,
    /// Draw of an XMX-saturated kernel — the systolic arrays run at the
    /// power cap, which is precisely why their sustained clocks drop.
    pub matrix_fraction: f64,
    /// Draw of an HBM-bandwidth-bound kernel.
    pub memory_fraction: f64,
}

/// One stack of the Max 1550.
pub const MAX_1550_STACK_POWER: PowerModel = PowerModel {
    tdp: 300.0,
    idle_fraction: 0.15,
    vector_fraction: 0.80,
    matrix_fraction: 1.00,
    memory_fraction: 0.62,
};

impl PowerModel {
    /// Average watts drawn by a GEMM, from which resource bounds it.
    pub fn gemm_watts(&self, model: &XeStackModel, desc: &GemmDesc) -> f64 {
        let memory_bound = model.gemm_memory_seconds(desc) > model.gemm_compute_seconds(desc);
        let fraction = if memory_bound {
            self.memory_fraction
        } else {
            match model.spec.engine_for_mode(desc.mode) {
                Engine::Vector => self.vector_fraction,
                Engine::Matrix => self.matrix_fraction,
            }
        };
        self.tdp * fraction.max(self.idle_fraction)
    }

    /// Average watts drawn by a streaming kernel (bandwidth-bound by
    /// construction).
    pub fn stream_watts(&self, _kernel: &StreamKernel) -> f64 {
        self.tdp * self.memory_fraction
    }

    /// Energy in joules to execute a schedule once.
    pub fn schedule_energy_joules(&self, model: &XeStackModel, schedule: &[KernelDesc]) -> f64 {
        schedule
            .iter()
            .map(|k| match k {
                KernelDesc::Gemm(_, d) => model.gemm_seconds(d) * self.gemm_watts(model, d),
                KernelDesc::Stream(s) => model.stream_seconds(s) * self.stream_watts(s),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MAX_1550_STACK;
    use mkl_lite::device::Domain;
    use mkl_lite::ComputeMode;

    fn model() -> XeStackModel {
        XeStackModel::new(MAX_1550_STACK)
    }

    #[test]
    fn matrix_engines_draw_more_than_vector() {
        let pm = MAX_1550_STACK_POWER;
        let mdl = model();
        // Compute-bound shapes for both engines.
        let big = |mode| GemmDesc { domain: Domain::Complex32, m: 4096, n: 4096, k: 262_144, mode };
        let w_vec = pm.gemm_watts(&mdl, &big(ComputeMode::Standard));
        let w_mat = pm.gemm_watts(&mdl, &big(ComputeMode::FloatToBf16));
        assert!(w_mat > w_vec, "XMX must draw more: {w_mat} vs {w_vec}");
        assert!(w_mat <= pm.tdp, "cannot exceed TDP");
    }

    #[test]
    fn memory_bound_draws_less() {
        let pm = MAX_1550_STACK_POWER;
        let mdl = model();
        // m = 128 BF16 call is bandwidth-bound (paper's shape).
        let bw = GemmDesc {
            domain: Domain::Complex32,
            m: 128,
            n: 3968,
            k: 262_144,
            mode: ComputeMode::FloatToBf16,
        };
        let w = pm.gemm_watts(&mdl, &bw);
        assert!((w - pm.tdp * pm.memory_fraction).abs() < 1e-9);
    }

    #[test]
    fn energy_positive_and_time_consistent() {
        let pm = MAX_1550_STACK_POWER;
        let mdl = model();
        let d = GemmDesc {
            domain: Domain::Complex32,
            m: 1024,
            n: 1024,
            k: 262_144,
            mode: ComputeMode::Standard,
        };
        let sched = vec![KernelDesc::Gemm("g", d)];
        let e = pm.schedule_energy_joules(&mdl, &sched);
        let t = mdl.gemm_seconds(&d);
        assert!(e > 0.0);
        assert!(e >= t * pm.tdp * pm.idle_fraction);
        assert!(e <= t * pm.tdp);
    }
}
